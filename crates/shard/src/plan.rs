//! Partitioning and placement: cut a graph into per-device pieces,
//! choose devices for the pieces, and materialize explicit transfer
//! nodes at every cross-device edge.

use std::collections::HashMap;

use ngb_graph::{op_cost, Graph, Node, NodeId, OpKind};
use ngb_platform::DeviceModel;
use ngb_profiler::{ModelProfile, NodeProfile, StagePhase};
use ngb_tensor::TensorError;

use crate::{link_latency, Strategy};

/// Default microbatch count for pipeline execution (and the modeled
/// bubble accounting).
pub const DEFAULT_MICROBATCHES: usize = 4;

/// Partitioner knobs.
#[derive(Debug, Clone, Default)]
pub struct ShardOptions {
    /// Pipeline only: skip the device-permutation placement search and
    /// assign stage `i` to device `i` (useful for deterministic tests on
    /// heterogeneous rosters).
    pub identity_placement: bool,
}

/// One device's share of a plan, for reports.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Device index (roster order).
    pub device: usize,
    /// Plan nodes owned by the device.
    pub nodes: usize,
    /// Modeled compute seconds for one microbatch, including collective
    /// kernels and the PCIe charge of incoming transfers.
    pub modeled_s: f64,
}

/// Modeled performance of a plan at a given microbatch count.
#[derive(Debug, Clone)]
pub struct ModeledEstimate {
    /// Microbatches the estimate assumes.
    pub microbatches: usize,
    /// Modeled sharded wall-clock seconds for all microbatches.
    pub wall_s: f64,
    /// Modeled best-single-device wall for the same work.
    pub single_wall_s: f64,
    /// `single_wall_s / wall_s`.
    pub speedup: f64,
    /// Pipeline fill/drain bubble fraction (`(S−1)/(m+S−1)`; 0 for
    /// tensor plans).
    pub bubble_fraction: f64,
    /// Modeled link seconds per microbatch.
    pub transfer_s: f64,
    /// Activation bytes crossing device links per microbatch.
    pub transfer_bytes: u64,
}

/// A partitioned, placed, transfer-materialized execution plan.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The plan graph: the input graph rewritten with `LinearShard` /
    /// `AllGather` nodes (tensor strategy) and an explicit [`OpKind::Transfer`]
    /// at every cross-device edge.
    pub graph: Graph,
    /// Owning device of every plan node.
    pub device_of: Vec<usize>,
    /// Plan node → node of the *input* graph whose value it carries
    /// (`None` for inserted shard/transfer machinery). Output nodes
    /// always map back, which is how runs are compared bit-for-bit
    /// against single-device execution.
    pub origin: Vec<Option<NodeId>>,
    /// Partitioning strategy.
    pub strategy: Strategy,
    /// Device roster (index = device id).
    pub devices: Vec<DeviceModel>,
    /// `Linear` layers split by the tensor strategy (0 for pipeline).
    pub splits: usize,
    /// Modeled seconds charged to each device for one microbatch.
    device_s: Vec<f64>,
    /// Modeled one-microbatch serialized plan time (shard groups run in
    /// parallel; everything else in sequence) — the tensor wall model.
    serial_s: f64,
    /// Modeled link seconds per microbatch.
    transfer_s: f64,
    /// Bytes crossing links per microbatch.
    transfer_bytes: u64,
    /// Best single-device modeled seconds for the *input* graph.
    single_s: f64,
}

impl ShardPlan {
    /// Number of devices that own at least one node.
    pub fn active_devices(&self) -> usize {
        self.device_s.iter().filter(|&&s| s > 0.0).count().max(1)
    }

    /// Per-device stage summary, in device order.
    pub fn stages(&self) -> Vec<Stage> {
        (0..self.devices.len())
            .map(|d| Stage {
                device: d,
                nodes: self.device_of.iter().filter(|&&x| x == d).count(),
                modeled_s: self.device_s[d],
            })
            .collect()
    }

    /// Modeled performance at `microbatches` replays.
    pub fn modeled(&self, microbatches: usize) -> ModeledEstimate {
        let m = microbatches.max(1);
        let s_eff = self.active_devices();
        let bottleneck = self
            .device_s
            .iter()
            .cloned()
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let (wall_s, bubble_fraction) = match self.strategy {
            // fill + drain: the slowest stage paces every step
            Strategy::Pipeline => (
                (m + s_eff - 1) as f64 * bottleneck,
                (s_eff - 1) as f64 / (m + s_eff - 1) as f64,
            ),
            // shards run concurrently inside each microbatch; microbatches
            // are sequential
            Strategy::Tensor => (m as f64 * self.serial_s.max(1e-12), 0.0),
        };
        let single_wall_s = m as f64 * self.single_s;
        ModeledEstimate {
            microbatches: m,
            wall_s,
            single_wall_s,
            speedup: single_wall_s / wall_s,
            bubble_fraction,
            transfer_s: self.transfer_s,
            transfer_bytes: self.transfer_bytes,
        }
    }

    /// Analytic per-node profile of the plan on its devices, with the
    /// profiler's `device` dimension set and every transfer node charged
    /// its link's modeled PCIe latency.
    pub fn profile(&self) -> ModelProfile {
        let mut cursor = 0.0f64;
        let nodes = self
            .graph
            .iter()
            .map(|n| {
                let d = self.device_of[n.id.0];
                let dev = &self.devices[d];
                let (latency_s, transfer_s) = self.node_model_s(n);
                let util = if n.class().is_gemm() { 0.9 } else { 0.35 };
                let start_s = cursor;
                cursor += latency_s + transfer_s;
                NodeProfile {
                    id: n.id,
                    name: n.name.clone(),
                    op: n.op.name(),
                    class: n.class(),
                    latency_s,
                    transfer_s,
                    energy_j: dev.energy(latency_s + transfer_s, util),
                    placement: device_kind_label(dev),
                    start_s,
                    tid: d,
                    out_shape: n.out_shape.clone(),
                    intra_chunks: 0,
                    intra_parallelism: 0,
                    bytes_materialized: 0,
                    attribution: Vec::new(),
                    stage: StagePhase::Prefill,
                    device: d,
                }
            })
            .collect();
        ModelProfile {
            model: self.graph.name.clone(),
            platform: format!(
                "{} devices ({})",
                self.devices.len(),
                self.devices
                    .iter()
                    .map(device_kind_label)
                    .collect::<Vec<_>>()
                    .join("+")
            ),
            flow: format!("shard-{}", self.strategy),
            batch: self
                .graph
                .iter()
                .next()
                .map(|n| n.out_shape.first().copied().unwrap_or(1))
                .unwrap_or(1),
            nodes,
            peak_memory_bytes: self.graph.peak_activation_bytes(),
        }
    }

    /// Modeled `(kernel, link)` seconds of one plan node on its device.
    fn node_model_s(&self, n: &Node) -> (f64, f64) {
        let d = self.device_of[n.id.0];
        let cost = node_cost(&self.graph, n);
        let kernel = self.devices[d].op_latency(&cost, n.class().is_gemm());
        let link = if matches!(n.op, OpKind::Transfer) {
            let src = self.device_of[n.inputs[0].0];
            link_latency(
                &self.devices[src],
                &self.devices[d],
                value_bytes(&n.out_shape) as f64,
            )
        } else {
            0.0
        };
        (kernel, link)
    }
}

fn device_kind_label(d: &DeviceModel) -> &'static str {
    match d.kind {
        ngb_platform::DeviceKind::Cpu => "cpu",
        ngb_platform::DeviceKind::Gpu => "gpu",
        ngb_platform::DeviceKind::Npu => "npu",
    }
}

/// Partitions `graph` across `devices` with `strategy`, places the pieces,
/// and materializes cross-device transfers. The returned plan executes
/// bit-identically to the single-device interpreter on the input graph
/// (column-split shards reconstruct the unsplit GEMM exactly; pipeline
/// stages never change any node's math).
///
/// # Errors
///
/// Fails on an empty graph or empty roster.
pub fn partition(
    graph: &Graph,
    devices: &[DeviceModel],
    strategy: Strategy,
    options: &ShardOptions,
) -> Result<ShardPlan, TensorError> {
    if graph.is_empty() {
        return Err(TensorError::InvalidArgument(
            "cannot shard an empty graph".into(),
        ));
    }
    if devices.is_empty() {
        return Err(TensorError::InvalidArgument(
            "device roster is empty".into(),
        ));
    }
    let (pre_graph, pre_dev, pre_origin, splits) = match strategy {
        Strategy::Pipeline => {
            let stage_of = pipeline_stages(graph, devices.len().min(graph.len()));
            let stage_to_dev = if options.identity_placement {
                (0..devices.len()).collect()
            } else {
                place_pipeline(graph, &stage_of, devices)
            };
            let dev: Vec<usize> = stage_of.iter().map(|&s| stage_to_dev[s]).collect();
            let origin: Vec<Option<NodeId>> = graph.iter().map(|n| Some(n.id)).collect();
            (graph.clone(), dev, origin, 0)
        }
        Strategy::Tensor => tensor_partition(graph, devices),
    };
    let (plan_graph, device_of, origin, transfer_bytes) =
        materialize_transfers(&pre_graph, &pre_dev, &pre_origin);

    // modeled accounting on the final plan
    let mut device_s = vec![0.0f64; devices.len()];
    let mut transfer_s = 0.0f64;
    let mut serial_s = 0.0f64;
    // LinearShard groups (keyed by seed identity) overlap in the serial
    // model: only the slowest member contributes
    let mut shard_group_max: HashMap<usize, f64> = HashMap::new();
    for n in plan_graph.iter() {
        let d = device_of[n.id.0];
        let cost = node_cost(&plan_graph, n);
        let mut t = devices[d].op_latency(&cost, n.class().is_gemm());
        if matches!(n.op, OpKind::Transfer) {
            let src = device_of[n.inputs[0].0];
            let link = link_latency(&devices[src], &devices[d], value_bytes(&n.out_shape) as f64);
            t += link;
            transfer_s += link;
        }
        device_s[d] += t;
        if matches!(n.op, OpKind::LinearShard { .. }) {
            let key = n.seed_hint.unwrap_or(n.id).0;
            let slot = shard_group_max.entry(key).or_insert(0.0);
            *slot = slot.max(t);
        } else {
            serial_s += t;
        }
    }
    serial_s += shard_group_max.values().sum::<f64>();

    // best single device running the whole input graph
    let single_s = devices
        .iter()
        .map(|dev| {
            graph
                .iter()
                .map(|n| dev.op_latency(&node_cost(graph, n), n.class().is_gemm()))
                .sum::<f64>()
        })
        .fold(f64::INFINITY, f64::min);

    Ok(ShardPlan {
        graph: plan_graph,
        device_of,
        origin,
        strategy,
        devices: devices.to_vec(),
        splits,
        device_s,
        serial_s,
        transfer_s,
        transfer_bytes,
        single_s,
    })
}

/// Device-independent cost of one node (producer shapes from the graph).
fn node_cost(graph: &Graph, n: &Node) -> ngb_ops::OpCost {
    let inputs: Vec<Vec<usize>> = n
        .inputs
        .iter()
        .map(|&i| graph.nodes[i.0].out_shape.clone())
        .collect();
    op_cost(&n.op, &inputs, &n.out_shape)
}

/// f32-equivalent bytes of one value.
fn value_bytes(shape: &[usize]) -> u64 {
    ngb_tensor::num_elements(shape) as u64 * 4
}

/// Scheduling weight of a node: FLOPs + logical traffic, floored at 1.
fn node_weight(graph: &Graph, n: &Node) -> f64 {
    let c = node_cost(graph, n);
    (c.flops + c.memory_bytes()).max(1.0)
}

/// Splits node ids `0..n` into `s` contiguous, non-empty stages: a DP
/// that minimizes the maximum stage weight (compute balance) and breaks
/// ties toward the smallest total activation bytes crossing the cuts —
/// the minimum-cut part of the pipeline objective. Returns each node's
/// stage index. Ids are topological, so contiguous prefixes are valid
/// stages by construction.
fn pipeline_stages(graph: &Graph, s: usize) -> Vec<usize> {
    let n = graph.len();
    let s = s.clamp(1, n);
    let weights: Vec<f64> = graph.iter().map(|nd| node_weight(graph, nd)).collect();
    let mut prefix = vec![0.0f64; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + weights[i];
    }
    // cut_bytes[p]: activation bytes alive across the boundary after node
    // p — every u ≤ p whose farthest consumer is beyond p contributes its
    // output. Built with a difference array over the [u, max_consumer)
    // ranges.
    let mut diff = vec![0i64; n + 1];
    for node in graph.iter() {
        for &i in &node.inputs {
            let (u, c) = (i.0, node.id.0);
            // contributes to every boundary p with u <= p < c; widen to
            // the *latest* consumer by accumulating max ranges below
            let b = value_bytes(&graph.nodes[u].out_shape) as i64;
            // overlapping per-edge ranges would double-count a value
            // consumed twice downstream, so track the farthest consumer
            // instead — handled after this loop
            let _ = (b, u, c);
        }
    }
    let mut last_use = vec![0usize; n];
    for node in graph.iter() {
        for &i in &node.inputs {
            last_use[i.0] = last_use[i.0].max(node.id.0);
        }
    }
    for (u, &lu) in last_use.iter().enumerate() {
        if lu > u {
            let b = value_bytes(&graph.nodes[u].out_shape) as i64;
            diff[u] += b;
            diff[lu] -= b;
        }
    }
    let mut cut_bytes = vec![0i64; n]; // boundary after node p
    let mut acc = 0i64;
    for (p, slot) in cut_bytes.iter_mut().enumerate() {
        acc += diff[p];
        *slot = acc;
    }

    // dp[k][e]: best (max stage weight, total cut bytes) splitting nodes
    // 0..e into k stages. e ranges 1..=n.
    const INF: f64 = f64::INFINITY;
    let mut best = vec![(INF, i64::MAX); n + 1];
    let mut choice = vec![vec![0usize; n + 1]; s + 1];
    best[0] = (0.0, 0);
    for e in 1..=n {
        best[e] = (prefix[e], 0); // one stage covering 0..e
    }
    let mut prev = best.clone();
    #[allow(clippy::needless_range_loop)]
    for k in 2..=s {
        let mut cur = vec![(INF, i64::MAX); n + 1];
        for e in k..=n {
            // last stage is q..e, previous k-1 stages cover 0..q
            for q in (k - 1)..e {
                let (pm, pb) = prev[q];
                if pm == INF {
                    continue;
                }
                let m = pm.max(prefix[e] - prefix[q]);
                let b = pb.saturating_add(cut_bytes[q - 1]);
                if m < cur[e].0 || (m == cur[e].0 && b < cur[e].1) {
                    cur[e] = (m, b);
                    choice[k][e] = q;
                }
            }
        }
        prev = cur;
    }
    // reconstruct boundaries
    let mut bounds = Vec::with_capacity(s + 1);
    bounds.push(n);
    let mut e = n;
    for k in (2..=s).rev() {
        e = choice[k][e];
        bounds.push(e);
    }
    bounds.push(0);
    bounds.reverse(); // [0, q1, q2, ..., n]
    let mut stage_of = vec![0usize; n];
    for (stage, win) in bounds.windows(2).enumerate() {
        for item in stage_of.iter_mut().take(win[1]).skip(win[0]) {
            *item = stage;
        }
    }
    stage_of
}

/// Chooses which device runs each pipeline stage: exhaustive search over
/// injective stage→device assignments minimizing the modeled bottleneck
/// (slowest stage compute + its incoming PCIe transfers), which paces a
/// microbatched pipeline. Falls back to the identity assignment for
/// rosters too large to enumerate.
fn place_pipeline(graph: &Graph, stage_of: &[usize], devices: &[DeviceModel]) -> Vec<usize> {
    let s = stage_of.iter().copied().max().unwrap_or(0) + 1;
    let d = devices.len();
    if d > 6 {
        return (0..d).collect();
    }
    // stage compute on each candidate device
    let mut stage_cost = vec![vec![0.0f64; d]; s];
    for n in graph.iter() {
        let c = node_cost(graph, n);
        for (di, dev) in devices.iter().enumerate() {
            stage_cost[stage_of[n.id.0]][di] += dev.op_latency(&c, n.class().is_gemm());
        }
    }
    // bytes entering each stage from earlier stages
    let mut in_bytes = vec![0u64; s];
    for n in graph.iter() {
        for &i in &n.inputs {
            let (su, sc) = (stage_of[i.0], stage_of[n.id.0]);
            if su != sc {
                in_bytes[sc] += value_bytes(&graph.nodes[i.0].out_shape);
            }
        }
    }
    let mut assign: Vec<usize> = (0..s).map(|i| i.min(d - 1)).collect();
    let mut best_assign = assign.clone();
    let mut best = f64::INFINITY;
    let mut used = vec![false; d];
    #[allow(clippy::too_many_arguments)]
    fn rec(
        stage: usize,
        s: usize,
        d: usize,
        assign: &mut Vec<usize>,
        used: &mut Vec<bool>,
        stage_cost: &[Vec<f64>],
        in_bytes: &[u64],
        devices: &[DeviceModel],
        best: &mut f64,
        best_assign: &mut Vec<usize>,
    ) {
        if stage == s {
            let mut bottleneck = 0.0f64;
            for st in 0..s {
                let dev = assign[st];
                let mut t = stage_cost[st][dev];
                if st > 0 {
                    t += link_latency(&devices[assign[st - 1]], &devices[dev], in_bytes[st] as f64);
                }
                bottleneck = bottleneck.max(t);
            }
            if bottleneck < *best {
                *best = bottleneck;
                best_assign.clone_from(assign);
            }
            return;
        }
        for dev in 0..d {
            if used[dev] {
                continue;
            }
            used[dev] = true;
            assign[stage] = dev;
            rec(
                stage + 1,
                s,
                d,
                assign,
                used,
                stage_cost,
                in_bytes,
                devices,
                best,
                best_assign,
            );
            used[dev] = false;
        }
    }
    rec(
        0,
        s,
        d,
        &mut assign,
        &mut used,
        &stage_cost,
        &in_bytes,
        devices,
        &mut best,
        &mut best_assign,
    );
    best_assign
}

/// Rewrites every splittable primitive `Linear` into per-device
/// [`OpKind::LinearShard`] nodes joined by an [`OpKind::AllGather`], then
/// places the remaining nodes greedily: each picks the device minimizing
/// its own modeled latency plus the PCIe cost of reaching its producers —
/// the generalized ORT CPU-fallback objective. Shards stay pinned to
/// their part's device.
fn tensor_partition(
    graph: &Graph,
    devices: &[DeviceModel],
) -> (Graph, Vec<usize>, Vec<Option<NodeId>>, usize) {
    let parts = devices.len();
    let mut nodes: Vec<Node> = Vec::with_capacity(graph.len());
    let mut dev: Vec<usize> = Vec::with_capacity(graph.len());
    let mut pinned: Vec<bool> = Vec::with_capacity(graph.len());
    let mut origin: Vec<Option<NodeId>> = Vec::with_capacity(graph.len());
    let mut remap: Vec<NodeId> = vec![NodeId(0); graph.len()];
    let mut splits = 0usize;
    for node in graph.iter() {
        let seed = node.seed_hint.unwrap_or(node.id);
        match node.op {
            OpKind::Linear { in_f, out_f, bias } if parts >= 2 && out_f >= parts => {
                splits += 1;
                let x = remap[node.inputs[0].0];
                let mut shard_ids = Vec::with_capacity(parts);
                for part in 0..parts {
                    let (_, len) = ngb_graph::shard_span(out_f, part, parts);
                    let mut shape = node.out_shape.clone();
                    *shape.last_mut().expect("linear output has a last dim") = len;
                    let id = NodeId(nodes.len());
                    nodes.push(Node {
                        id,
                        op: OpKind::LinearShard {
                            in_f,
                            out_f,
                            bias,
                            part,
                            parts,
                            row_split: false,
                        },
                        inputs: vec![x],
                        out_shape: shape,
                        name: format!("{}.shard{part}", node.name),
                        seed_hint: Some(seed),
                    });
                    dev.push(part);
                    pinned.push(true);
                    origin.push(None);
                    shard_ids.push(id);
                }
                let id = NodeId(nodes.len());
                nodes.push(Node {
                    id,
                    op: OpKind::AllGather {
                        dim: node.out_shape.len() - 1,
                    },
                    inputs: shard_ids,
                    out_shape: node.out_shape.clone(),
                    name: format!("{}.all_gather", node.name),
                    seed_hint: None,
                });
                dev.push(0);
                pinned.push(true);
                origin.push(Some(node.id));
                remap[node.id.0] = id;
            }
            _ => {
                let id = NodeId(nodes.len());
                nodes.push(Node {
                    id,
                    op: node.op.clone(),
                    inputs: node.inputs.iter().map(|&i| remap[i.0]).collect(),
                    out_shape: node.out_shape.clone(),
                    name: node.name.clone(),
                    seed_hint: Some(seed),
                });
                dev.push(0);
                pinned.push(false);
                origin.push(Some(node.id));
                remap[node.id.0] = id;
            }
        }
    }
    let plan = Graph {
        nodes,
        name: graph.name.clone(),
    };
    // greedy placement for unpinned nodes
    for pos in 0..plan.len() {
        if pinned[pos] {
            continue;
        }
        let n = &plan.nodes[pos];
        let c = node_cost(&plan, n);
        let mut best = (f64::INFINITY, 0usize);
        for (di, d) in devices.iter().enumerate() {
            let mut t = d.op_latency(&c, n.class().is_gemm());
            for &i in &n.inputs {
                if dev[i.0] != di {
                    t += link_latency(
                        &devices[dev[i.0]],
                        d,
                        value_bytes(&plan.nodes[i.0].out_shape) as f64,
                    );
                }
            }
            if t < best.0 {
                best = (t, di);
            }
        }
        dev[pos] = best.1;
    }
    (plan, dev, origin, splits)
}

/// Rebuilds `graph` with an explicit [`OpKind::Transfer`] node on the
/// consuming device for every cross-device edge (one per `(producer,
/// destination)` pair), renumbering so ids stay positions. After this
/// pass the *only* cross-device edges are `producer → Transfer`, which is
/// what lets the executor route every inter-device move through one
/// channel hop. Returns the plan graph, its device map, its origin map,
/// and the activation bytes crossing links.
fn materialize_transfers(
    graph: &Graph,
    dev: &[usize],
    origin: &[Option<NodeId>],
) -> (Graph, Vec<usize>, Vec<Option<NodeId>>, u64) {
    let n = graph.len();
    // destination devices needing each node's value
    let mut dests: Vec<Vec<usize>> = vec![Vec::new(); n];
    for node in graph.iter() {
        let d = dev[node.id.0];
        for &i in &node.inputs {
            if dev[i.0] != d && !dests[i.0].contains(&d) {
                dests[i.0].push(d);
            }
        }
    }
    for list in &mut dests {
        list.sort_unstable();
    }
    let mut nodes: Vec<Node> = Vec::with_capacity(n);
    let mut pdev = Vec::with_capacity(n);
    let mut porigin = Vec::with_capacity(n);
    let mut local: Vec<NodeId> = vec![NodeId(0); n];
    let mut remote: HashMap<(usize, usize), NodeId> = HashMap::new();
    let mut transfer_bytes = 0u64;
    for node in graph.iter() {
        let d = dev[node.id.0];
        let inputs = node
            .inputs
            .iter()
            .map(|&i| {
                if dev[i.0] == d {
                    local[i.0]
                } else {
                    remote[&(i.0, d)]
                }
            })
            .collect();
        let id = NodeId(nodes.len());
        nodes.push(Node {
            id,
            op: node.op.clone(),
            inputs,
            out_shape: node.out_shape.clone(),
            name: node.name.clone(),
            seed_hint: Some(node.seed_hint.unwrap_or(node.id)),
        });
        pdev.push(d);
        porigin.push(origin[node.id.0]);
        local[node.id.0] = id;
        for &dst in &dests[node.id.0] {
            let tid = NodeId(nodes.len());
            nodes.push(Node {
                id: tid,
                op: OpKind::Transfer,
                inputs: vec![id],
                out_shape: node.out_shape.clone(),
                name: format!("{}.to_dev{dst}", node.name),
                seed_hint: None,
            });
            pdev.push(dst);
            porigin.push(None);
            remote.insert((node.id.0, dst), tid);
            transfer_bytes += value_bytes(&node.out_shape);
        }
    }
    (
        Graph {
            nodes,
            name: graph.name.clone(),
        },
        pdev,
        porigin,
        transfer_bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceSpec;
    use ngb_graph::GraphBuilder;

    fn chain(n_linear: usize) -> Graph {
        let mut b = GraphBuilder::new("chain");
        let mut x = b.input(&[1, 8]);
        for i in 0..n_linear {
            x = b
                .push(
                    OpKind::Linear {
                        in_f: 8,
                        out_f: 8,
                        bias: true,
                    },
                    &[x],
                    &format!("fc{i}"),
                )
                .unwrap();
            x = b.push(OpKind::Gelu, &[x], &format!("act{i}")).unwrap();
        }
        b.finish()
    }

    #[test]
    fn pipeline_stages_are_contiguous_and_cover() {
        let g = chain(4);
        let stages = pipeline_stages(&g, 2);
        assert_eq!(stages.len(), g.len());
        assert_eq!(stages[0], 0);
        assert_eq!(*stages.last().unwrap(), 1);
        // monotone non-decreasing, steps of at most 1
        for w in stages.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
    }

    #[test]
    fn pipeline_plan_validates_and_places_every_node() {
        let g = chain(4);
        let devices = DeviceSpec::parse("2xgpu").unwrap().roster();
        let plan = partition(&g, &devices, Strategy::Pipeline, &ShardOptions::default()).unwrap();
        plan.graph.validate().expect("plan graph is well-formed");
        assert_eq!(plan.device_of.len(), plan.graph.len());
        assert!(plan.graph.len() > g.len(), "cut must insert transfers");
        let transfers = plan
            .graph
            .iter()
            .filter(|n| matches!(n.op, OpKind::Transfer))
            .count();
        assert!(transfers >= 1);
        let m = plan.modeled(DEFAULT_MICROBATCHES);
        assert!(m.bubble_fraction > 0.0 && m.bubble_fraction < 1.0);
        assert!(m.transfer_bytes > 0);
    }

    #[test]
    fn tensor_plan_splits_linears_and_validates() {
        let g = chain(3);
        let devices = DeviceSpec::parse("2xgpu").unwrap().roster();
        let plan = partition(&g, &devices, Strategy::Tensor, &ShardOptions::default()).unwrap();
        plan.graph.validate().expect("plan graph is well-formed");
        assert_eq!(plan.splits, 3);
        let shards = plan
            .graph
            .iter()
            .filter(|n| matches!(n.op, OpKind::LinearShard { .. }))
            .count();
        assert_eq!(shards, 6);
        let gathers = plan
            .graph
            .iter()
            .filter(|n| matches!(n.op, OpKind::AllGather { .. }))
            .count();
        assert_eq!(gathers, 3);
        // shard part k must sit on device k
        for n in plan.graph.iter() {
            if let OpKind::LinearShard { part, .. } = n.op {
                assert_eq!(plan.device_of[n.id.0], part);
            }
        }
        let m = plan.modeled(1);
        assert_eq!(m.bubble_fraction, 0.0);
    }

    #[test]
    fn heterogeneous_placement_prefers_the_faster_device_for_gemms() {
        let g = chain(4);
        let devices = DeviceSpec::parse("gpu+cpu").unwrap().roster();
        let plan = partition(&g, &devices, Strategy::Pipeline, &ShardOptions::default()).unwrap();
        // the placement search must beat or match identity on the modeled
        // bottleneck
        let identity = partition(
            &g,
            &devices,
            Strategy::Pipeline,
            &ShardOptions {
                identity_placement: true,
            },
        )
        .unwrap();
        let placed = plan.modeled(4).wall_s;
        let ident = identity.modeled(4).wall_s;
        assert!(placed <= ident * (1.0 + 1e-9), "{placed} > {ident}");
    }

    #[test]
    fn plan_profile_carries_the_device_dimension() {
        let g = chain(2);
        let devices = DeviceSpec::parse("2xgpu").unwrap().roster();
        let plan = partition(&g, &devices, Strategy::Pipeline, &ShardOptions::default()).unwrap();
        let prof = plan.profile();
        assert_eq!(prof.nodes.len(), plan.graph.len());
        let devices_used: std::collections::BTreeSet<usize> =
            prof.nodes.iter().map(|n| n.device).collect();
        assert_eq!(devices_used.len(), 2);
        // transfer nodes carry a positive modeled link charge
        assert!(prof
            .nodes
            .iter()
            .filter(|n| n.op == "transfer")
            .all(|n| n.transfer_s > 0.0));
    }
}
