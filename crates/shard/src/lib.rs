//! # ngb-shard
//!
//! Multi-device sharding for NonGEMM Bench: partitions an operator
//! [`Graph`](ngb_graph::Graph) across N simulated devices, places the
//! pieces on a heterogeneous roster of [`DeviceModel`]s, and **executes**
//! the plan — the collective and transfer operators the split introduces
//! become first-class, profiled non-GEMM nodes instead of an invisible
//! runtime tax.
//!
//! Two strategies:
//!
//! * **Pipeline parallel** ([`Strategy::Pipeline`]) — contiguous stages
//!   split at minimum-activation-bytes cut points (a balance-first DP with
//!   a min-transfer tie-break), run as a microbatched schedule whose
//!   bubble fraction the executor measures.
//! * **Tensor parallel** ([`Strategy::Tensor`]) — each primitive `Linear`
//!   layer's weight is column-split across devices into
//!   [`OpKind::LinearShard`](ngb_graph::OpKind::LinearShard) nodes joined
//!   by an explicit [`OpKind::AllGather`](ngb_graph::OpKind::AllGather);
//!   shard weights are bitwise slices of the unsplit layer, so the
//!   gathered result is **bit-identical** to single-device execution.
//!
//! Cross-device edges are materialized as explicit
//! [`OpKind::Transfer`](ngb_graph::OpKind::Transfer) nodes owned by the
//! consuming device; the executor moves the tensors over channels and the
//! profile charges each transfer the modeled PCIe latency of its link.
//! Both strategies are verified bit-identical to the single-device
//! interpreter for all 18 benchmark models (see `tests/shard.rs` and the
//! `shard` CI stage).
//!
//! # Examples
//!
//! ```
//! use ngb_shard::{partition, DeviceSpec, ShardOptions, Strategy};
//! use ngb_graph::{GraphBuilder, OpKind};
//!
//! # fn main() -> Result<(), ngb_tensor::TensorError> {
//! let mut b = GraphBuilder::new("tiny");
//! let x = b.input(&[1, 8]);
//! let h = b.push(OpKind::Linear { in_f: 8, out_f: 8, bias: true }, &[x], "fc1")?;
//! let a = b.push(OpKind::Gelu, &[h], "act")?;
//! b.push(OpKind::Linear { in_f: 8, out_f: 4, bias: true }, &[a], "fc2")?;
//! let graph = b.finish();
//!
//! let devices = DeviceSpec::parse("2xgpu").unwrap().roster();
//! let plan = partition(&graph, &devices, Strategy::Pipeline, &ShardOptions::default())?;
//! let run = ngb_shard::execute(&plan, 0x5eed, 4)?;
//! assert_eq!(run.outputs.len(), 1); // same outputs as the plain interpreter
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod plan;
mod run;

pub use plan::{partition, ModeledEstimate, ShardOptions, ShardPlan, Stage, DEFAULT_MICROBATCHES};
pub use run::{execute, ShardRun};

use ngb_platform::{DeviceKind, DeviceModel};

/// How the partitioner splits the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Contiguous stages, one per device, microbatched.
    Pipeline,
    /// Column-split `Linear` weights joined by `AllGather`.
    Tensor,
}

impl Strategy {
    /// Parses `"pipeline"` or `"tensor"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Strategy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "pipeline" | "pp" => Some(Strategy::Pipeline),
            "tensor" | "tp" => Some(Strategy::Tensor),
            _ => None,
        }
    }

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Pipeline => "pipeline",
            Strategy::Tensor => "tensor",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed `--devices` / `NGB_DEVICES` roster: `2xgpu`, `gpu+cpu`,
/// `4xgpu`, `gpu+gpu+npu`, … Each element names a device class; `Nx`
/// prefixes repeat it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Device kinds in roster order (device index order).
    pub kinds: Vec<DeviceKind>,
}

impl DeviceSpec {
    /// Parses a roster spec. Terms are separated by `+`; each term is a
    /// kind name (`cpu`, `gpu`, `npu`) with an optional `<count>x` repeat
    /// prefix. Returns `None` on empty, unknown, or zero-count specs.
    pub fn parse(spec: &str) -> Option<DeviceSpec> {
        let mut kinds = Vec::new();
        for term in spec.trim().to_ascii_lowercase().split('+') {
            let term = term.trim();
            let (count, name) = match term.split_once('x') {
                Some((n, rest)) if n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty() => {
                    (n.parse::<usize>().ok()?, rest.trim())
                }
                _ => (1, term),
            };
            let kind = match name {
                "cpu" => DeviceKind::Cpu,
                "gpu" => DeviceKind::Gpu,
                "npu" => DeviceKind::Npu,
                _ => return None,
            };
            if count == 0 {
                return None;
            }
            kinds.extend(std::iter::repeat_n(kind, count));
        }
        if kinds.is_empty() {
            None
        } else {
            Some(DeviceSpec { kinds })
        }
    }

    /// Number of devices in the roster.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the roster is empty (never true for parsed specs).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Concrete [`DeviceModel`]s for the roster: GPUs are A100s, CPUs are
    /// EPYC 7763s, NPUs are the edge-NPU model — the data-center column
    /// of Table 3 extended with the NPU class.
    pub fn roster(&self) -> Vec<DeviceModel> {
        self.kinds
            .iter()
            .map(|k| match k {
                DeviceKind::Cpu => DeviceModel::epyc7763(),
                DeviceKind::Gpu => DeviceModel::a100(),
                DeviceKind::Npu => DeviceModel::edge_npu(),
            })
            .collect()
    }

    /// Canonical display form, e.g. `"gpu+gpu+cpu"`.
    pub fn label(&self) -> String {
        let names: Vec<&str> = self
            .kinds
            .iter()
            .map(|k| match k {
                DeviceKind::Cpu => "cpu",
                DeviceKind::Gpu => "gpu",
                DeviceKind::Npu => "npu",
            })
            .collect();
        names.join("+")
    }
}

/// Reads the device roster from `NGB_DEVICES`, falling back to `fallback`
/// when the variable is unset or unparsable.
pub fn env_devices(fallback: &str) -> DeviceSpec {
    let spec = std::env::var("NGB_DEVICES").unwrap_or_default();
    DeviceSpec::parse(&spec)
        .or_else(|| DeviceSpec::parse(fallback))
        .expect("fallback device spec must parse")
}

/// Modeled latency of moving `bytes` from `src` to `dst`: each non-CPU
/// endpoint pays one PCIe hop (CPU↔CPU shares host memory and is free;
/// accelerator↔accelerator bounces through the host, two hops).
pub fn link_latency(src: &DeviceModel, dst: &DeviceModel, bytes: f64) -> f64 {
    src.transfer_latency(bytes) + dst.transfer_latency(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_accepts_the_documented_forms() {
        assert_eq!(
            DeviceSpec::parse("2xgpu").unwrap().kinds,
            vec![DeviceKind::Gpu, DeviceKind::Gpu]
        );
        assert_eq!(
            DeviceSpec::parse("gpu+cpu").unwrap().kinds,
            vec![DeviceKind::Gpu, DeviceKind::Cpu]
        );
        assert_eq!(DeviceSpec::parse("4xgpu").unwrap().len(), 4);
        assert_eq!(
            DeviceSpec::parse("2xGPU + NPU").unwrap().label(),
            "gpu+gpu+npu"
        );
        assert!(DeviceSpec::parse("").is_none());
        assert!(DeviceSpec::parse("0xgpu").is_none());
        assert!(DeviceSpec::parse("tpu").is_none());
    }

    #[test]
    fn roster_matches_kinds() {
        let r = DeviceSpec::parse("gpu+cpu+npu").unwrap().roster();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].kind, DeviceKind::Gpu);
        assert_eq!(r[1].kind, DeviceKind::Cpu);
        assert_eq!(r[2].kind, DeviceKind::Npu);
    }

    #[test]
    fn strategy_round_trips() {
        for s in [Strategy::Pipeline, Strategy::Tensor] {
            assert_eq!(Strategy::parse(s.name()), Some(s));
        }
        assert!(Strategy::parse("ring").is_none());
    }

    #[test]
    fn link_latency_is_zero_only_between_cpus() {
        let (cpu, gpu) = (DeviceModel::epyc7763(), DeviceModel::a100());
        assert_eq!(link_latency(&cpu, &cpu, 1e6), 0.0);
        assert!(link_latency(&cpu, &gpu, 1e6) > 0.0);
        let two_hop = link_latency(&gpu, &gpu, 1e6);
        assert!((two_hop - 2.0 * link_latency(&cpu, &gpu, 1e6)).abs() < 1e-12);
    }
}
