//! The sharded executor: runs a [`ShardPlan`] on one thread per device,
//! moving cross-device activations over channels through the plan's
//! explicit [`OpKind::Transfer`] nodes.
//!
//! Every node executes through [`ngb_exec::run_node`] — the same
//! dispatch, RNG seeding, and arena recycling as the single-device
//! engines — so a sharded run is bit-identical to
//! [`Interpreter::run`](ngb_exec::Interpreter::run) on the unsharded
//! graph (microbatches are request-level replays and all produce the
//! same values; outputs are reported once).

use std::collections::HashMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use ngb_exec::{run_node, Arena, Quant};
use ngb_graph::{NodeId, OpKind};
use ngb_tensor::{num_elements, Tensor, TensorError};

use crate::ShardPlan;

/// How long a device thread waits on its inbox before declaring the run
/// wedged (only reachable if a peer thread died mid-plan).
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Result of executing a [`ShardPlan`].
#[derive(Debug)]
pub struct ShardRun {
    /// Output values keyed by the *original* graph's node ids, in id
    /// order — directly comparable to
    /// [`ExecutionTrace::outputs`](ngb_exec::ExecutionTrace::outputs).
    pub outputs: Vec<(NodeId, Tensor)>,
    /// Microbatches executed (request-level replays).
    pub microbatches: usize,
    /// Wall-clock seconds for the whole schedule.
    pub wall_s: f64,
    /// Seconds each device spent executing kernels (roster order).
    pub busy_s: Vec<f64>,
    /// Measured idle fraction across the devices that own work:
    /// `1 − Σ busy / (active × wall)` — the executed pipeline bubble.
    pub bubble_fraction: f64,
    /// Bytes actually moved across device links, all microbatches.
    pub transfer_bytes: u64,
}

/// Message on a device's inbox: `(microbatch, transfer-node position,
/// value)`.
type Packet = (usize, usize, Tensor);

/// Per-device result: busy seconds, bytes sent over the interconnect,
/// and this device's microbatch-0 outputs mapped to original node ids.
type DeviceResult = Result<(f64, u64, Vec<(NodeId, Tensor)>), TensorError>;

/// Executes `plan` with `microbatches` request-level replays and returns
/// the microbatch-0 outputs mapped back to the original graph's node ids.
///
/// # Errors
///
/// Propagates kernel errors from any device thread; fails if a thread
/// starves on its inbox (peer died) or a plan output has no origin.
pub fn execute(plan: &ShardPlan, seed: u64, microbatches: usize) -> Result<ShardRun, TensorError> {
    let m = microbatches.max(1);
    let n = plan.graph.len();
    let n_dev = plan.devices.len();
    let quant = ngb_exec::env_quant(Quant::None);

    // per-device node lists, id order (ids are topological)
    let mut device_nodes: Vec<Vec<usize>> = vec![Vec::new(); n_dev];
    for (pos, &d) in plan.device_of.iter().enumerate() {
        device_nodes[d].push(pos);
    }
    // producer position → transfers fed remotely, and per-node local
    // consumer counts (every non-transfer edge is same-device by
    // construction)
    let mut remote_sends: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    let mut local_uses = vec![0usize; n];
    let mut total_uses = vec![0usize; n];
    for node in plan.graph.iter() {
        for &i in &node.inputs {
            total_uses[i.0] += 1;
            if matches!(node.op, OpKind::Transfer)
                && plan.device_of[i.0] != plan.device_of[node.id.0]
            {
                remote_sends[i.0].push((node.id.0, plan.device_of[node.id.0]));
            } else {
                local_uses[i.0] += 1;
            }
        }
    }
    let is_output: Vec<bool> = total_uses.iter().map(|&u| u == 0).collect();

    let mut senders = Vec::with_capacity(n_dev);
    let mut receivers = Vec::with_capacity(n_dev);
    for _ in 0..n_dev {
        let (tx, rx) = mpsc::channel::<Packet>();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let t0 = Instant::now();
    let per_device: Vec<DeviceResult> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_dev);
        for d in 0..n_dev {
            let rx = receivers[d].take().expect("receiver consumed once");
            let txs = senders.clone();
            let my_nodes = &device_nodes[d];
            let remote_sends = &remote_sends;
            let local_uses = &local_uses;
            let is_output = &is_output;
            handles.push(scope.spawn(move || {
                run_device(
                    plan,
                    seed,
                    quant,
                    m,
                    my_nodes,
                    rx,
                    &txs,
                    remote_sends,
                    local_uses,
                    is_output,
                )
            }));
        }
        drop(senders); // threads own their clones
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(TensorError::InvalidArgument(
                        "device thread panicked".into(),
                    ))
                })
            })
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64().max(1e-12);

    let mut busy_s = Vec::with_capacity(n_dev);
    let mut transfer_bytes = 0u64;
    let mut outputs: Vec<(NodeId, Tensor)> = Vec::new();
    for r in per_device {
        let (busy, moved, outs) = r?;
        busy_s.push(busy);
        transfer_bytes += moved;
        outputs.extend(outs);
    }
    outputs.sort_by_key(|(id, _)| *id);
    let active = device_nodes.iter().filter(|v| !v.is_empty()).count().max(1);
    let bubble_fraction =
        (1.0 - busy_s.iter().sum::<f64>() / (active as f64 * wall_s)).clamp(0.0, 1.0);
    Ok(ShardRun {
        outputs,
        microbatches: m,
        wall_s,
        busy_s,
        bubble_fraction,
        transfer_bytes,
    })
}

/// One device's schedule: its plan nodes in id order, `m` microbatches.
#[allow(clippy::too_many_arguments)]
fn run_device(
    plan: &ShardPlan,
    seed: u64,
    quant: Quant,
    m: usize,
    my_nodes: &[usize],
    rx: mpsc::Receiver<Packet>,
    txs: &[mpsc::Sender<Packet>],
    remote_sends: &[Vec<(usize, usize)>],
    local_uses: &[usize],
    is_output: &[bool],
) -> DeviceResult {
    let arena = Arena::default();
    // values from peers that arrived ahead of this device's schedule
    let mut early: HashMap<(usize, usize), Tensor> = HashMap::new();
    let mut busy = Duration::ZERO;
    let mut moved = 0u64;
    let mut outs = Vec::new();
    for mb in 0..m {
        let mut values: HashMap<usize, Tensor> = HashMap::new();
        let mut uses: HashMap<usize, usize> = HashMap::new();
        for &pos in my_nodes {
            let node = &plan.graph.nodes[pos];
            let args: Vec<Tensor> = if matches!(node.op, OpKind::Transfer) {
                // the input is on another device by construction; block on
                // the inbox until this (microbatch, node) value lands
                let want = (mb, pos);
                loop {
                    if let Some(v) = early.remove(&want) {
                        break vec![v];
                    }
                    match rx.recv_timeout(RECV_TIMEOUT) {
                        Ok((mbx, px, t)) => {
                            early.insert((mbx, px), t);
                        }
                        Err(_) => {
                            return Err(TensorError::InvalidArgument(format!(
                                "device inbox starved waiting for {} (mb {mb})",
                                plan.graph.nodes[pos].name
                            )))
                        }
                    }
                }
            } else {
                node.inputs
                    .iter()
                    .map(|&i| {
                        values.get(&i.0).cloned().ok_or_else(|| {
                            TensorError::InvalidArgument(format!(
                                "missing local value {} for {}",
                                i, node.name
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?
            };
            let started = Instant::now();
            let out = run_node(seed, node, &args, None, &arena, quant)?;
            busy += started.elapsed();
            drop(args);
            for &(tpos, dst) in &remote_sends[pos] {
                moved += num_elements(out.shape()) as u64 * 4;
                txs[dst].send((mb, tpos, out.clone())).map_err(|_| {
                    TensorError::InvalidArgument(format!(
                        "device {dst} hung up mid-plan (sending {})",
                        node.name
                    ))
                })?;
            }
            if is_output[pos] && mb == 0 {
                let origin = plan.origin[pos].ok_or_else(|| {
                    TensorError::InvalidArgument(format!(
                        "plan output {} has no origin node",
                        node.name
                    ))
                })?;
                outs.push((origin, out.clone()));
            }
            // drop-at-last-use against local consumers only; remote
            // consumers already hold their clone in the channel
            for &i in &node.inputs {
                if let Some(slot) = uses.get_mut(&i.0) {
                    *slot -= 1;
                    if *slot == 0 {
                        uses.remove(&i.0);
                        if let Some(dead) = values.remove(&i.0) {
                            arena.reclaim(dead);
                        }
                    }
                }
            }
            if local_uses[pos] > 0 {
                uses.insert(pos, local_uses[pos]);
                values.insert(pos, out);
            }
        }
    }
    Ok((busy.as_secs_f64(), moved, outs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition, DeviceSpec, ShardOptions, Strategy};
    use ngb_exec::Interpreter;
    use ngb_graph::{Graph, GraphBuilder};

    fn mlp() -> Graph {
        let mut b = GraphBuilder::new("mlp");
        let x = b.input(&[2, 16]);
        let mut h = x;
        for i in 0..4 {
            h = b
                .push(
                    OpKind::Linear {
                        in_f: 16,
                        out_f: 16,
                        bias: true,
                    },
                    &[h],
                    &format!("fc{i}"),
                )
                .unwrap();
            h = b.push(OpKind::Gelu, &[h], &format!("act{i}")).unwrap();
            h = b
                .push(OpKind::LayerNorm { dim: 16 }, &[h], &format!("ln{i}"))
                .unwrap();
        }
        b.finish()
    }

    fn assert_bit_identical(strategy: Strategy, spec: &str, microbatches: usize) {
        let g = mlp();
        let reference = Interpreter::default().run(&g).expect("reference run");
        let devices = DeviceSpec::parse(spec).unwrap().roster();
        let plan = partition(&g, &devices, strategy, &ShardOptions::default()).unwrap();
        let run = execute(&plan, 0x5eed, microbatches).expect("sharded run");
        assert_eq!(run.outputs.len(), reference.outputs.len());
        for ((sid, sval), (rid, rval)) in run.outputs.iter().zip(reference.outputs.iter()) {
            assert_eq!(sid, rid);
            assert_eq!(
                sval.to_vec_f32(),
                rval.to_vec_f32(),
                "{strategy} on {spec} diverged at node {sid}"
            );
        }
    }

    #[test]
    fn pipeline_two_gpus_is_bit_identical() {
        assert_bit_identical(Strategy::Pipeline, "2xgpu", 4);
    }

    #[test]
    fn pipeline_heterogeneous_is_bit_identical() {
        assert_bit_identical(Strategy::Pipeline, "gpu+cpu", 3);
    }

    #[test]
    fn tensor_split_is_bit_identical() {
        assert_bit_identical(Strategy::Tensor, "2xgpu", 1);
        assert_bit_identical(Strategy::Tensor, "4xgpu", 2);
    }

    #[test]
    fn run_reports_schedule_accounting() {
        let g = mlp();
        let devices = DeviceSpec::parse("2xgpu").unwrap().roster();
        let plan = partition(&g, &devices, Strategy::Pipeline, &ShardOptions::default()).unwrap();
        let run = execute(&plan, 0x5eed, 4).unwrap();
        assert_eq!(run.microbatches, 4);
        assert_eq!(run.busy_s.len(), 2);
        assert!(run.wall_s > 0.0);
        assert!(run.transfer_bytes > 0, "pipeline cut must move activations");
        assert!((0.0..=1.0).contains(&run.bubble_fraction));
    }
}
