//! Decode-session graph bundles: pairs a full-sequence (prefill /
//! reference) graph with the matching single-token decode-step graph and
//! aligns their weight RNG streams so both materialize **bit-identical
//! parameters**.
//!
//! The decode-step graph is built once per session and re-executed per
//! token; a runtime driver discovers its cache slots, mask, and position
//! inputs purely by node-name convention (`*.kv.k_cache`, `*.kv.v_cache`,
//! `mask`, `pos`), so `ngb-runtime` never needs a dependency on this
//! crate's builders.

use ngb_graph::Graph;
use ngb_tensor::TensorError;

use crate::registry::{ModelId, Scale};
use crate::{gpt2::Gpt2Config, llama::LlamaConfig};

type Result<T> = std::result::Result<T, TensorError>;

/// A reference graph + decode-step graph pair with aligned weight seeds.
#[derive(Debug, Clone)]
pub struct DecodeBundle {
    /// Full-sequence graph at `seq == total_len` — the uncached
    /// recompute reference (also the prefill workload).
    pub reference: Graph,
    /// Single-token decode-step graph with cache capacity
    /// `total_len - 1`.
    pub decode: Graph,
    /// Total positions the session can produce (prompt + generated).
    pub total_len: usize,
}

/// Copies weight/input RNG identities from `reference` into `decode` by
/// exact node-name match: every decode node that materializes parameters
/// (or is an `Input`/`InputIds`) whose name also appears in `reference`
/// gets `seed_hint = Some(reference id)`. Returns how many nodes were
/// aligned. Cache, mask, and other decode-only inputs have no reference
/// counterpart and keep their own identity (the driver overrides them
/// every step anyway).
pub fn align_decode_seeds(decode: &mut Graph, reference: &Graph) -> usize {
    use std::collections::HashMap;
    let by_name: HashMap<&str, ngb_graph::NodeId> =
        reference.iter().map(|n| (n.name.as_str(), n.id)).collect();
    let mut aligned = 0;
    for node in &mut decode.nodes {
        let wants_seed = node.op.param_count() > 0
            || matches!(
                node.op,
                ngb_graph::OpKind::Input | ngb_graph::OpKind::InputIds { .. }
            );
        if !wants_seed {
            continue;
        }
        if let Some(&rid) = by_name.get(node.name.as_str()) {
            node.seed_hint = Some(rid);
            aligned += 1;
        }
    }
    aligned
}

/// Builds the reference/decode graph pair for a decode-capable LM at
/// `total_len` total positions (prompt + generated tokens). Returns
/// `None` for models without an autoregressive decode path.
///
/// # Errors
///
/// Propagates graph-construction failures from the model builders.
pub fn decode_bundle(
    id: ModelId,
    scale: Scale,
    batch: usize,
    total_len: usize,
) -> Option<Result<DecodeBundle>> {
    if total_len == 0 {
        return Some(Err(TensorError::InvalidArgument(
            "decode_bundle requires total_len >= 1".into(),
        )));
    }
    let build = |reference: Result<Graph>, decode: Result<Graph>| -> Result<DecodeBundle> {
        let reference = reference?;
        let mut decode = decode?;
        align_decode_seeds(&mut decode, &reference);
        Ok(DecodeBundle {
            reference,
            decode,
            total_len,
        })
    };
    match id {
        ModelId::Gpt2 | ModelId::Gpt2Large | ModelId::Gpt2Xl => {
            let mut cfg = match (id, scale) {
                (_, Scale::Tiny) => Gpt2Config::toy(),
                (ModelId::Gpt2, _) => Gpt2Config::base(),
                (ModelId::Gpt2Large, _) => Gpt2Config::large(),
                _ => Gpt2Config::xl(),
            };
            cfg.seq = total_len;
            Some(build(
                cfg.build(batch),
                cfg.build_decode(batch, total_len - 1),
            ))
        }
        ModelId::Llama2_7b => {
            let mut cfg = match scale {
                Scale::Tiny => LlamaConfig::toy(),
                Scale::Full => LlamaConfig::llama2_7b(),
            };
            cfg.seq = total_len;
            Some(build(
                cfg.build(batch),
                cfg.build_decode(batch, total_len - 1),
            ))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_aligns_every_parameter_node() {
        let bundle = decode_bundle(ModelId::Gpt2, Scale::Tiny, 1, 8)
            .unwrap()
            .unwrap();
        for node in bundle.decode.iter() {
            if node.op.param_count() > 0 {
                let hint = node.seed_hint.expect("weight node aligned");
                assert_eq!(bundle.reference.node(hint).name, node.name);
            }
        }
    }

    #[test]
    fn cache_inputs_keep_their_own_identity() {
        let bundle = decode_bundle(ModelId::Llama2_7b, Scale::Tiny, 1, 6)
            .unwrap()
            .unwrap();
        for node in bundle.decode.iter() {
            if node.name.ends_with(".kv.k_cache") || node.name == "mask" {
                assert!(node.seed_hint.is_none(), "{} should not alias", node.name);
            }
        }
    }

    #[test]
    fn non_lm_models_have_no_bundle() {
        assert!(decode_bundle(ModelId::ResNet50, Scale::Tiny, 1, 8).is_none());
        assert!(decode_bundle(ModelId::Bert, Scale::Tiny, 1, 8).is_none());
    }
}
