//! Computer-vision model families.

pub mod detection;
pub mod mobilenet;
pub mod resnet;
pub mod segmentation;
pub mod swin;
pub mod vit;
