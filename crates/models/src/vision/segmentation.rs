//! Image-segmentation models (Table 1): SegFormer (MiT-B0) and MaskFormer.
//!
//! SegFormer reproduces the paper's Table 2 entries for the model:
//! `LayerNorm [2, 16384, 32]`, `TrueDiv [2, 1, 16384, 256]`-style attention
//! scaling, `BatchNorm2d`/`Interpolate [2, 256, 128, 128]` in the decode
//! head, and `Contiguous`/`Add` throughout the Mix-FFN.

use ngb_graph::{Graph, GraphBuilder, NodeId, OpKind};

use crate::common::{cross_attention, Result};
use crate::vision::resnet::{backbone_pyramid, ResNet50Config};

/// SegFormer (MiT) configuration.
#[derive(Debug, Clone)]
pub struct SegformerConfig {
    /// Input resolution (512 for ADE20K-style runs).
    pub image: usize,
    /// Per-stage embedding dims (B0: `[32, 64, 160, 256]`).
    pub dims: Vec<usize>,
    /// Per-stage depths (B0: `[2, 2, 2, 2]`).
    pub depths: Vec<usize>,
    /// Per-stage heads (B0: `[1, 2, 5, 8]`).
    pub heads: Vec<usize>,
    /// Per-stage spatial-reduction ratios (B0: `[8, 4, 2, 1]`).
    pub sr: Vec<usize>,
    /// Decode-head channel width (256).
    pub decoder: usize,
    /// Segmentation classes.
    pub classes: usize,
}

impl SegformerConfig {
    /// Paper-scale SegFormer-B0 (3.7 M parameters).
    pub fn b0() -> Self {
        SegformerConfig {
            image: 512,
            dims: vec![32, 64, 160, 256],
            depths: vec![2, 2, 2, 2],
            heads: vec![1, 2, 5, 8],
            sr: vec![8, 4, 2, 1],
            decoder: 256,
            classes: 150,
        }
    }

    /// Executable toy preset.
    pub fn toy() -> Self {
        SegformerConfig {
            image: 32,
            dims: vec![4, 8],
            depths: vec![1, 1],
            heads: vec![1, 2],
            sr: vec![2, 1],
            decoder: 8,
            classes: 5,
        }
    }

    /// Builds the segmentation graph for `batch` images.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build(&self, batch: usize) -> Result<Graph> {
        let mut b = GraphBuilder::new("segformer");
        let x = b.input(&[batch, 3, self.image, self.image]);
        let mut h = x;
        let mut in_c = 3;
        let mut res = self.image;
        let mut stage_feats: Vec<(NodeId, usize, usize)> = Vec::new(); // (tokens node, res, dim)

        for (s, ((&dim, &depth), (&heads, &sr))) in self
            .dims
            .iter()
            .zip(&self.depths)
            .zip(self.heads.iter().zip(&self.sr))
            .enumerate()
        {
            // Overlapped patch embedding: k7 s4 at stage 0, k3 s2 after.
            let (k, stride, pad) = if s == 0 { (7, 4, 3) } else { (3, 2, 1) };
            let pe = b.push(
                OpKind::Conv2d {
                    in_c,
                    out_c: dim,
                    kernel: k,
                    stride,
                    padding: pad,
                    groups: 1,
                    bias: true,
                },
                &[h],
                &format!("encoder.{s}.patch_embed.proj"),
            )?;
            res /= stride;
            let t = res * res;
            let fl = b.push(
                OpKind::Reshape {
                    shape: vec![batch, dim, t],
                },
                &[pe],
                &format!("encoder.{s}.patch_embed.flatten"),
            )?;
            let pm = b.push(
                OpKind::Permute {
                    perm: vec![0, 2, 1],
                },
                &[fl],
                &format!("encoder.{s}.patch_embed.permute"),
            )?;
            let pc = b.push(
                OpKind::Contiguous,
                &[pm],
                &format!("encoder.{s}.patch_embed.contiguous"),
            )?;
            let mut tok = b.push(
                OpKind::LayerNorm { dim },
                &[pc],
                &format!("encoder.{s}.patch_embed.norm"),
            )?;

            for blk in 0..depth {
                tok = self.mit_block(
                    &mut b,
                    tok,
                    batch,
                    res,
                    dim,
                    heads,
                    sr,
                    &format!("encoder.{s}.block.{blk}"),
                )?;
            }
            tok = b.push(
                OpKind::LayerNorm { dim },
                &[tok],
                &format!("encoder.{s}.norm"),
            )?;
            stage_feats.push((tok, res, dim));
            // back to NCHW for the next stage's conv
            let bp = b.push(
                OpKind::Permute {
                    perm: vec![0, 2, 1],
                },
                &[tok],
                &format!("encoder.{s}.to_map.permute"),
            )?;
            let bc = b.push(
                OpKind::Contiguous,
                &[bp],
                &format!("encoder.{s}.to_map.contiguous"),
            )?;
            h = b.push(
                OpKind::Reshape {
                    shape: vec![batch, dim, res, res],
                },
                &[bc],
                &format!("encoder.{s}.to_map.reshape"),
            )?;
            in_c = dim;
        }

        // ---- All-MLP decode head: per-stage linear -> upsample -> concat
        let target = stage_feats[0].1; // stride-4 resolution
        let mut ups = Vec::new();
        for (i, &(tok, sres, dim)) in stage_feats.iter().enumerate() {
            let proj = b.push(
                OpKind::Linear {
                    in_f: dim,
                    out_f: self.decoder,
                    bias: true,
                },
                &[tok],
                &format!("decode_head.linear_c{i}"),
            )?;
            let pm = b.push(
                OpKind::Permute {
                    perm: vec![0, 2, 1],
                },
                &[proj],
                &format!("decode_head.c{i}.permute"),
            )?;
            let pc = b.push(
                OpKind::Contiguous,
                &[pm],
                &format!("decode_head.c{i}.contiguous"),
            )?;
            let map = b.push(
                OpKind::Reshape {
                    shape: vec![batch, self.decoder, sres, sres],
                },
                &[pc],
                &format!("decode_head.c{i}.reshape"),
            )?;
            let up = if sres != target {
                b.push(
                    OpKind::InterpolateBilinear {
                        oh: target,
                        ow: target,
                    },
                    &[map],
                    &format!("decode_head.c{i}.upsample"),
                )?
            } else {
                map
            };
            ups.push(up);
        }
        ups.reverse(); // deepest first, as in the reference implementation
        let fused_in = b.push(OpKind::Cat { dim: 1 }, &ups, "decode_head.concat")?;
        let fuse = b.push(
            OpKind::Conv2d {
                in_c: self.decoder * self.dims.len(),
                out_c: self.decoder,
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 1,
                bias: false,
            },
            &[fused_in],
            "decode_head.linear_fuse",
        )?;
        let bn = b.push(
            OpKind::BatchNorm2d { c: self.decoder },
            &[fuse],
            "decode_head.bn",
        )?;
        let act = b.push(OpKind::Relu, &[bn], "decode_head.relu")?;
        let logits = b.push(
            OpKind::Conv2d {
                in_c: self.decoder,
                out_c: self.classes,
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 1,
                bias: true,
            },
            &[act],
            "decode_head.classifier",
        )?;
        let up = b.push(
            OpKind::InterpolateBilinear {
                oh: self.image,
                ow: self.image,
            },
            &[logits],
            "upsample_logits",
        )?;
        b.push(OpKind::Argmax { dim: 1 }, &[up], "segmentation_map")?;
        Ok(b.finish())
    }

    /// MiT block: efficient (spatially-reduced) attention + Mix-FFN with a
    /// depthwise conv.
    #[allow(clippy::too_many_arguments)]
    fn mit_block(
        &self,
        b: &mut GraphBuilder,
        x: NodeId,
        batch: usize,
        res: usize,
        dim: usize,
        heads: usize,
        sr: usize,
        name: &str,
    ) -> Result<NodeId> {
        let t = res * res;
        let ln1 = b.push(OpKind::LayerNorm { dim }, &[x], &format!("{name}.norm1"))?;
        // spatial reduction of k/v: tokens -> map -> conv(sr, sr) -> tokens
        let kv = if sr > 1 {
            let pm = b.push(
                OpKind::Permute {
                    perm: vec![0, 2, 1],
                },
                &[ln1],
                &format!("{name}.sr.permute"),
            )?;
            let pc = b.push(OpKind::Contiguous, &[pm], &format!("{name}.sr.contiguous"))?;
            let map = b.push(
                OpKind::Reshape {
                    shape: vec![batch, dim, res, res],
                },
                &[pc],
                &format!("{name}.sr.reshape"),
            )?;
            let red = b.push(
                OpKind::Conv2d {
                    in_c: dim,
                    out_c: dim,
                    kernel: sr,
                    stride: sr,
                    padding: 0,
                    groups: 1,
                    bias: true,
                },
                &[map],
                &format!("{name}.sr.conv"),
            )?;
            let rr = res / sr;
            let fl = b.push(
                OpKind::Reshape {
                    shape: vec![batch, dim, rr * rr],
                },
                &[red],
                &format!("{name}.sr.flatten"),
            )?;
            let bp = b.push(
                OpKind::Permute {
                    perm: vec![0, 2, 1],
                },
                &[fl],
                &format!("{name}.sr.back"),
            )?;
            let bc = b.push(
                OpKind::Contiguous,
                &[bp],
                &format!("{name}.sr.back.contiguous"),
            )?;
            b.push(OpKind::LayerNorm { dim }, &[bc], &format!("{name}.sr.norm"))?
        } else {
            ln1
        };
        let tk = b.shape(kv)[1];
        let att = cross_attention(
            b,
            ln1,
            kv,
            batch,
            t,
            tk,
            dim,
            heads,
            &format!("{name}.attn"),
        )?;
        let x1 = b.push(OpKind::Add, &[x, att], &format!("{name}.add1"))?;

        // Mix-FFN: linear -> dwconv 3x3 -> GELU -> linear
        let ln2 = b.push(OpKind::LayerNorm { dim }, &[x1], &format!("{name}.norm2"))?;
        let hidden = 4 * dim;
        let fc1 = b.push(
            OpKind::Linear {
                in_f: dim,
                out_f: hidden,
                bias: true,
            },
            &[ln2],
            &format!("{name}.mlp.fc1"),
        )?;
        let pm = b.push(
            OpKind::Permute {
                perm: vec![0, 2, 1],
            },
            &[fc1],
            &format!("{name}.mlp.dw.permute"),
        )?;
        let pc = b.push(
            OpKind::Contiguous,
            &[pm],
            &format!("{name}.mlp.dw.contiguous"),
        )?;
        let map = b.push(
            OpKind::Reshape {
                shape: vec![batch, hidden, res, res],
            },
            &[pc],
            &format!("{name}.mlp.dw.reshape"),
        )?;
        let dw = b.push(
            OpKind::Conv2d {
                in_c: hidden,
                out_c: hidden,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: hidden,
                bias: true,
            },
            &[map],
            &format!("{name}.mlp.dwconv"),
        )?;
        let fl = b.push(
            OpKind::Reshape {
                shape: vec![batch, hidden, t],
            },
            &[dw],
            &format!("{name}.mlp.dw.flatten"),
        )?;
        let bp = b.push(
            OpKind::Permute {
                perm: vec![0, 2, 1],
            },
            &[fl],
            &format!("{name}.mlp.dw.back"),
        )?;
        let bc = b.push(
            OpKind::Contiguous,
            &[bp],
            &format!("{name}.mlp.dw.back.contiguous"),
        )?;
        let act = b.push(OpKind::Gelu, &[bc], &format!("{name}.mlp.act"))?;
        let fc2 = b.push(
            OpKind::Linear {
                in_f: hidden,
                out_f: dim,
                bias: true,
            },
            &[act],
            &format!("{name}.mlp.fc2"),
        )?;
        b.push(OpKind::Add, &[x1, fc2], &format!("{name}.add2"))
    }
}

/// MaskFormer configuration (Cheng et al., 102 M parameters with the R50
/// backbone).
#[derive(Debug, Clone)]
pub struct MaskformerConfig {
    /// Input resolution.
    pub image: usize,
    /// Transformer hidden size (256).
    pub d: usize,
    /// Decoder depth (6).
    pub layers: usize,
    /// Attention heads (8).
    pub heads: usize,
    /// Mask queries (100).
    pub queries: usize,
    /// Segmentation classes + no-object.
    pub classes: usize,
    /// Backbone config.
    pub backbone: ResNet50Config,
}

impl MaskformerConfig {
    /// Paper-scale MaskFormer-R50.
    pub fn full() -> Self {
        MaskformerConfig {
            image: 512,
            d: 256,
            layers: 6,
            heads: 8,
            queries: 100,
            classes: 134,
            backbone: ResNet50Config {
                image: 512,
                ..ResNet50Config::full()
            },
        }
    }

    /// Executable toy preset.
    pub fn toy() -> Self {
        MaskformerConfig {
            image: 64,
            d: 16,
            layers: 1,
            heads: 2,
            queries: 4,
            classes: 5,
            backbone: ResNet50Config {
                image: 64,
                stem: 8,
                blocks: [1, 1, 1, 1],
                classes: 5,
                norm_frozen: false,
            },
        }
    }

    /// Builds the MaskFormer graph for `batch` images.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build(&self, batch: usize) -> Result<Graph> {
        let mut b = GraphBuilder::new("maskformer");
        let x = b.input(&[batch, 3, self.image, self.image]);
        let stages = backbone_pyramid(&mut b, x, &self.backbone, "backbone")?;

        // ---- pixel decoder: FPN with GroupNorm + ReLU, producing a
        // stride-4 per-pixel embedding
        let mut prev: Option<NodeId> = None;
        for (i, &(node, c)) in stages.iter().enumerate().rev() {
            let l = b.push(
                OpKind::Conv2d {
                    in_c: c,
                    out_c: self.d,
                    kernel: 1,
                    stride: 1,
                    padding: 0,
                    groups: 1,
                    bias: false,
                },
                &[node],
                &format!("pixel_decoder.lateral{i}"),
            )?;
            let gn = b.push(
                OpKind::GroupNorm {
                    groups: 8.min(self.d),
                    c: self.d,
                },
                &[l],
                &format!("pixel_decoder.gn{i}"),
            )?;
            let fused = if let Some(p) = prev {
                let shape = b.shape(gn).to_vec();
                let up = b.push(
                    OpKind::InterpolateNearest {
                        oh: shape[2],
                        ow: shape[3],
                    },
                    &[p],
                    &format!("pixel_decoder.up{i}"),
                )?;
                b.push(OpKind::Add, &[gn, up], &format!("pixel_decoder.add{i}"))?
            } else {
                gn
            };
            let out = b.push(
                OpKind::Conv2d {
                    in_c: self.d,
                    out_c: self.d,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                    groups: 1,
                    bias: false,
                },
                &[fused],
                &format!("pixel_decoder.output{i}"),
            )?;
            let act = b.push(OpKind::Relu, &[out], &format!("pixel_decoder.relu{i}"))?;
            prev = Some(act);
        }
        let pixel_emb = prev.expect("four stages");
        let pshape = b.shape(pixel_emb).to_vec();
        let (ph, pw) = (pshape[2], pshape[3]);

        // ---- transformer decoder on C5 tokens
        let (c5, c5_c) = *stages.last().expect("four stages");
        let c5s = b.shape(c5).to_vec();
        let t = c5s[2] * c5s[3];
        let proj = b.push(
            OpKind::Conv2d {
                in_c: c5_c,
                out_c: self.d,
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 1,
                bias: true,
            },
            &[c5],
            "transformer.input_proj",
        )?;
        let fl = b.push(
            OpKind::Reshape {
                shape: vec![batch, self.d, t],
            },
            &[proj],
            "transformer.flatten",
        )?;
        let pm = b.push(
            OpKind::Permute {
                perm: vec![0, 2, 1],
            },
            &[fl],
            "transformer.permute",
        )?;
        let memory = b.push(OpKind::Contiguous, &[pm], "transformer.contiguous")?;

        let queries = b.input(&[1, self.queries, self.d]);
        let qe = b.push(
            OpKind::Expand {
                shape: vec![batch, self.queries, self.d],
            },
            &[queries],
            "queries.expand",
        )?;
        let mut q = b.push(OpKind::Contiguous, &[qe], "queries.contiguous")?;
        for l in 0..self.layers {
            let ca = cross_attention(
                &mut b,
                q,
                memory,
                batch,
                self.queries,
                t,
                self.d,
                self.heads,
                &format!("decoder.{l}.cross_attn"),
            )?;
            let a = b.push(OpKind::Add, &[q, ca], &format!("decoder.{l}.add"))?;
            let n = b.push(
                OpKind::LayerNorm { dim: self.d },
                &[a],
                &format!("decoder.{l}.norm"),
            )?;
            let fc = b.push(
                OpKind::Linear {
                    in_f: self.d,
                    out_f: self.d * 4,
                    bias: true,
                },
                &[n],
                &format!("decoder.{l}.ffn.fc1"),
            )?;
            let act = b.push(OpKind::Relu, &[fc], &format!("decoder.{l}.ffn.relu"))?;
            let fc2 = b.push(
                OpKind::Linear {
                    in_f: self.d * 4,
                    out_f: self.d,
                    bias: true,
                },
                &[act],
                &format!("decoder.{l}.ffn.fc2"),
            )?;
            q = b.push(OpKind::Add, &[n, fc2], &format!("decoder.{l}.ffn.add"))?;
        }

        // ---- heads: classes + mask embeddings × pixel embeddings
        let cls = b.push(
            OpKind::Linear {
                in_f: self.d,
                out_f: self.classes,
                bias: true,
            },
            &[q],
            "class_head",
        )?;
        b.push(OpKind::Softmax { dim: 2 }, &[cls], "class_probs")?;
        let membed = b.push(
            OpKind::Linear {
                in_f: self.d,
                out_f: self.d,
                bias: true,
            },
            &[q],
            "mask_embed",
        )?;
        let pixels = b.push(
            OpKind::Reshape {
                shape: vec![batch, self.d, ph * pw],
            },
            &[pixel_emb],
            "pixels.flatten",
        )?;
        let masks = b.push(OpKind::Bmm, &[membed, pixels], "mask_logits")?;
        let mm = b.push(
            OpKind::Reshape {
                shape: vec![batch * self.queries, 1, ph, pw],
            },
            &[masks],
            "masks.reshape",
        )?;
        let up = b.push(
            OpKind::InterpolateBilinear {
                oh: self.image / 2,
                ow: self.image / 2,
            },
            &[mm],
            "masks.upsample",
        )?;
        b.push(OpKind::Sigmoid, &[up], "masks.probs")?;
        Ok(b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_exec::Interpreter;
    use ngb_graph::NonGemmGroup;

    #[test]
    fn segformer_b0_params_near_reference() {
        let g = SegformerConfig::b0().build(2).unwrap();
        g.validate().unwrap();
        let params = g.param_count();
        // reference 3.7M
        assert!((2_800_000..5_000_000).contains(&params), "{params}");
    }

    #[test]
    fn segformer_matches_table2_shapes() {
        let g = SegformerConfig::b0().build(2).unwrap();
        // Table 2: LayerNorm [2, 16384, 32] at stage 0
        assert!(g.iter().any(
            |n| matches!(n.op, OpKind::LayerNorm { dim: 32 }) && n.out_shape == [2, 16384, 32]
        ));
        // Table 2: Interpolate [2, 256, 128, 128] in the decode head
        assert!(g
            .iter()
            .any(|n| matches!(n.op, OpKind::InterpolateBilinear { .. })
                && n.out_shape == [2, 256, 128, 128]));
        assert!(g
            .iter()
            .any(|n| matches!(n.op, OpKind::BatchNorm2d { c: 256 })));
    }

    #[test]
    fn segformer_toy_executes() {
        let g = SegformerConfig::toy().build(1).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        // final argmax map [1, 32, 32] as i64
        assert!(t.outputs.iter().any(|(_, v)| v.shape() == [1, 32, 32]));
    }

    #[test]
    fn maskformer_full_structure() {
        let g = MaskformerConfig::full().build(1).unwrap();
        g.validate().unwrap();
        assert!(g.group_count(NonGemmGroup::Memory) > 40);
        assert!(g.iter().any(|n| matches!(n.op, OpKind::GroupNorm { .. })));
        let params = g.param_count();
        // reference 102M (our pixel decoder is lighter than detectron2's)
        assert!((30_000_000..120_000_000).contains(&params), "{params}");
    }

    #[test]
    fn maskformer_toy_executes() {
        let g = MaskformerConfig::toy().build(1).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        assert!(t.outputs.iter().any(|(_, v)| v.rank() == 4));
    }
}
