//! MobileNetV2 image classifier (Sandler et al., Table 1): inverted
//! residual blocks with depthwise convolutions and ReLU6.

use ngb_graph::{Graph, GraphBuilder, NodeId, OpKind};

use crate::common::Result;

/// MobileNetV2 configuration.
#[derive(Debug, Clone)]
pub struct MobileNetV2Config {
    /// Input resolution.
    pub image: usize,
    /// Width multiplier applied to every channel count.
    pub width: f32,
    /// Output classes.
    pub classes: usize,
}

impl MobileNetV2Config {
    /// Paper-scale MobileNetV2 (width 1.0, 224², 1000 classes, 3.4 M params).
    pub fn full() -> Self {
        MobileNetV2Config {
            image: 224,
            width: 1.0,
            classes: 1000,
        }
    }

    /// Executable toy preset.
    pub fn tiny() -> Self {
        MobileNetV2Config {
            image: 32,
            width: 0.125,
            classes: 10,
        }
    }

    fn ch(&self, c: usize) -> usize {
        ((c as f32 * self.width).round() as usize).max(4)
    }

    /// Builds the classifier graph for `batch` images.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build(&self, batch: usize) -> Result<Graph> {
        // (expansion t, out channels c, repeats n, stride s) — Table 2 of the
        // MobileNetV2 paper.
        const SETTINGS: [(usize, usize, usize, usize); 7] = [
            (1, 16, 1, 1),
            (6, 24, 2, 2),
            (6, 32, 3, 2),
            (6, 64, 4, 2),
            (6, 96, 3, 1),
            (6, 160, 3, 2),
            (6, 320, 1, 1),
        ];
        let mut b = GraphBuilder::new("mobilenet_v2");
        let x = b.input(&[batch, 3, self.image, self.image]);
        let stem_c = self.ch(32);
        let mut h = conv_bn_relu6(&mut b, x, 3, stem_c, 3, 2, 1, 1, "stem")?;
        let mut in_c = stem_c;
        for (bi, &(t, c, n, s)) in SETTINGS.iter().enumerate() {
            let out_c = self.ch(c);
            for r in 0..n {
                let stride = if r == 0 { s } else { 1 };
                h = inverted_residual(
                    &mut b,
                    h,
                    in_c,
                    out_c,
                    t,
                    stride,
                    &format!("features.{bi}.{r}"),
                )?;
                in_c = out_c;
            }
        }
        let head_c = self.ch(1280);
        h = conv_bn_relu6(&mut b, h, in_c, head_c, 1, 1, 0, 1, "head")?;
        let pooled = b.push(OpKind::AdaptiveAvgPool2d { oh: 1, ow: 1 }, &[h], "avgpool")?;
        let flat = b.push(
            OpKind::Reshape {
                shape: vec![batch, head_c],
            },
            &[pooled],
            "flatten",
        )?;
        let logits = b.push(
            OpKind::Linear {
                in_f: head_c,
                out_f: self.classes,
                bias: true,
            },
            &[flat],
            "classifier",
        )?;
        b.push(OpKind::Softmax { dim: 1 }, &[logits], "probs")?;
        Ok(b.finish())
    }
}

#[allow(clippy::too_many_arguments)]
fn conv_bn_relu6(
    b: &mut GraphBuilder,
    x: NodeId,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    groups: usize,
    name: &str,
) -> Result<NodeId> {
    let c = b.push(
        OpKind::Conv2d {
            in_c,
            out_c,
            kernel,
            stride,
            padding,
            groups,
            bias: false,
        },
        &[x],
        &format!("{name}.conv"),
    )?;
    let n = b.push(
        OpKind::BatchNorm2d { c: out_c },
        &[c],
        &format!("{name}.bn"),
    )?;
    b.push(OpKind::Relu6, &[n], &format!("{name}.relu6"))
}

fn inverted_residual(
    b: &mut GraphBuilder,
    x: NodeId,
    in_c: usize,
    out_c: usize,
    expand: usize,
    stride: usize,
    name: &str,
) -> Result<NodeId> {
    let hidden = in_c * expand;
    let mut h = x;
    if expand != 1 {
        h = conv_bn_relu6(b, h, in_c, hidden, 1, 1, 0, 1, &format!("{name}.expand"))?;
    }
    // depthwise
    h = conv_bn_relu6(
        b,
        h,
        hidden,
        hidden,
        3,
        stride,
        1,
        hidden,
        &format!("{name}.dw"),
    )?;
    // linear bottleneck (no activation)
    let pc = b.push(
        OpKind::Conv2d {
            in_c: hidden,
            out_c,
            kernel: 1,
            stride: 1,
            padding: 0,
            groups: 1,
            bias: false,
        },
        &[h],
        &format!("{name}.project.conv"),
    )?;
    let pn = b.push(
        OpKind::BatchNorm2d { c: out_c },
        &[pc],
        &format!("{name}.project.bn"),
    )?;
    if stride == 1 && in_c == out_c {
        b.push(OpKind::Add, &[x, pn], &format!("{name}.residual"))
    } else {
        Ok(pn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_exec::Interpreter;

    #[test]
    fn full_param_count_near_reference() {
        let g = MobileNetV2Config::full().build(1).unwrap();
        g.validate().unwrap();
        let params = g.param_count();
        // reference: 3.4M
        assert!((2_500_000..4_500_000).contains(&params), "{params}");
    }

    #[test]
    fn uses_depthwise_convs_and_relu6() {
        let g = MobileNetV2Config::full().build(1).unwrap();
        assert!(g
            .iter()
            .any(|n| matches!(n.op, OpKind::Conv2d { groups, .. } if groups > 1)));
        assert!(g.iter().any(|n| n.op == OpKind::Relu6));
        assert!(g.iter().any(|n| n.op == OpKind::Add)); // residuals
    }

    #[test]
    fn tiny_executes() {
        let g = MobileNetV2Config::tiny().build(2).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        assert_eq!(t.outputs[0].1.shape(), &[2, 10]);
    }

    #[test]
    fn output_resolution_halves_five_times() {
        let g = MobileNetV2Config::full().build(1).unwrap();
        // the last conv feature map before pooling is 7x7 at 224 input
        let pool = g.iter().find(|n| n.name == "avgpool").unwrap();
        let feat = g.node(pool.inputs[0]);
        assert_eq!(&feat.out_shape[2..], &[7, 7]);
    }
}
