//! Swin Transformer classifiers (Liu et al.): tiny, small, and base
//! variants from Table 1. Windowed attention is expressed through the same
//! view/permute/contiguous memory-operator choreography as the PyTorch
//! implementation (window partition and reverse), which is what gives Swin
//! its heavy Memory-group footprint in the paper's profiles.

use ngb_graph::{Graph, GraphBuilder, NodeId, OpKind};

use crate::common::{mlp, self_attention, Attention, MlpAct, Result};

/// Swin Transformer configuration.
#[derive(Debug, Clone)]
pub struct SwinConfig {
    /// Model alias used as the graph name.
    pub name: &'static str,
    /// Input resolution.
    pub image: usize,
    /// Patch size (4 in all published variants).
    pub patch: usize,
    /// Stage-1 embedding dim (`C`).
    pub embed: usize,
    /// Blocks per stage.
    pub depths: Vec<usize>,
    /// Heads per stage.
    pub heads: Vec<usize>,
    /// Attention window (7 in all published variants).
    pub window: usize,
    /// Output classes.
    pub classes: usize,
}

impl SwinConfig {
    /// Swin-Tiny: 29 M parameters, depths `[2,2,6,2]`, C = 96.
    pub fn tiny_224() -> Self {
        SwinConfig {
            name: "swin_t",
            image: 224,
            patch: 4,
            embed: 96,
            depths: vec![2, 2, 6, 2],
            heads: vec![3, 6, 12, 24],
            window: 7,
            classes: 1000,
        }
    }

    /// Swin-Small: 50 M parameters, depths `[2,2,18,2]`, C = 96.
    pub fn small_224() -> Self {
        SwinConfig {
            depths: vec![2, 2, 18, 2],
            name: "swin_s",
            ..SwinConfig::tiny_224()
        }
    }

    /// Swin-Base: 88 M parameters, depths `[2,2,18,2]`, C = 128.
    pub fn base_224() -> Self {
        SwinConfig {
            name: "swin_b",
            embed: 128,
            depths: vec![2, 2, 18, 2],
            heads: vec![4, 8, 16, 32],
            ..SwinConfig::small_224()
        }
    }

    /// Executable toy preset.
    pub fn toy() -> Self {
        SwinConfig {
            name: "swin_toy",
            image: 16,
            patch: 4,
            embed: 8,
            depths: vec![1, 1],
            heads: vec![2, 4],
            window: 2,
            classes: 10,
        }
    }

    /// Builds the classifier graph for `batch` images.
    ///
    /// # Errors
    ///
    /// Fails when the window does not tile a stage resolution.
    pub fn build(&self, batch: usize) -> Result<Graph> {
        let mut b = GraphBuilder::new(self.name);
        let x = b.input(&[batch, 3, self.image, self.image]);
        let mut res = self.image / self.patch;
        let mut c = self.embed;

        // Patch embedding conv + flatten to tokens
        let pe = b.push(
            OpKind::Conv2d {
                in_c: 3,
                out_c: c,
                kernel: self.patch,
                stride: self.patch,
                padding: 0,
                groups: 1,
                bias: true,
            },
            &[x],
            "patch_embed.proj",
        )?;
        let r = b.push(
            OpKind::Reshape {
                shape: vec![batch, c, res * res],
            },
            &[pe],
            "patch_embed.flatten",
        )?;
        let p = b.push(
            OpKind::Permute {
                perm: vec![0, 2, 1],
            },
            &[r],
            "patch_embed.permute",
        )?;
        let pc = b.push(OpKind::Contiguous, &[p], "patch_embed.contiguous")?;
        let mut h = b.push(OpKind::LayerNorm { dim: c }, &[pc], "patch_embed.norm")?;

        for (stage, (&depth, &heads)) in self.depths.iter().zip(&self.heads).enumerate() {
            for blk in 0..depth {
                // Swin alternates W-MSA and SW-MSA: odd blocks cyclically
                // shift the feature map by half a window before
                // partitioning and shift back after (torch.roll)
                let shifted = blk % 2 == 1 && res > self.window;
                h = self.swin_block(
                    &mut b,
                    h,
                    batch,
                    res,
                    c,
                    heads,
                    shifted,
                    &format!("layers.{stage}.blocks.{blk}"),
                )?;
            }
            // Patch merging between stages (not after the last)
            if stage + 1 < self.depths.len() {
                h = patch_merging(
                    &mut b,
                    h,
                    batch,
                    res,
                    c,
                    &format!("layers.{stage}.downsample"),
                )?;
                res /= 2;
                c *= 2;
            }
        }
        let ln = b.push(OpKind::LayerNorm { dim: c }, &[h], "norm")?;
        let mean = b.push(
            OpKind::MeanDim {
                dim: 1,
                keepdim: false,
            },
            &[ln],
            "avgpool",
        )?;
        let logits = b.push(
            OpKind::Linear {
                in_f: c,
                out_f: self.classes,
                bias: true,
            },
            &[mean],
            "head",
        )?;
        b.push(OpKind::Softmax { dim: 1 }, &[logits], "probs")?;
        Ok(b.finish())
    }

    /// One Swin block: LN → (shift) → window partition → W-MSA → window
    /// reverse → (unshift) → residual; LN → MLP → residual.
    #[allow(clippy::too_many_arguments)]
    fn swin_block(
        &self,
        b: &mut GraphBuilder,
        x: NodeId,
        batch: usize,
        res: usize,
        c: usize,
        heads: usize,
        shifted: bool,
        name: &str,
    ) -> Result<NodeId> {
        let w = self.window.min(res);
        if !res.is_multiple_of(w) {
            return Err(ngb_tensor::TensorError::InvalidArgument(format!(
                "window {w} does not tile resolution {res}"
            )));
        }
        let nw = res / w;
        let ln1 = b.push(OpKind::LayerNorm { dim: c }, &[x], &format!("{name}.norm1"))?;
        // SW-MSA: cyclic shift the [B, H, W, C] map by half a window
        let shift = (w / 2) as isize;
        let ln1 = if shifted {
            let map = b.push(
                OpKind::View {
                    shape: vec![batch, res, res, c],
                },
                &[ln1],
                &format!("{name}.shift.view"),
            )?;
            let r1 = b.push(
                OpKind::Roll {
                    shift: -shift,
                    dim: 1,
                },
                &[map],
                &format!("{name}.shift.roll_h"),
            )?;
            let r2 = b.push(
                OpKind::Roll {
                    shift: -shift,
                    dim: 2,
                },
                &[r1],
                &format!("{name}.shift.roll_w"),
            )?;
            b.push(
                OpKind::Reshape {
                    shape: vec![batch, res * res, c],
                },
                &[r2],
                &format!("{name}.shift.merge"),
            )?
        } else {
            ln1
        };
        // window partition: [B, H*W, C] -> [B*nW*nW, w*w, C]
        let v = b.push(
            OpKind::View {
                shape: vec![batch, nw, w, nw, w, c],
            },
            &[ln1],
            &format!("{name}.win.view"),
        )?;
        let perm = b.push(
            OpKind::Permute {
                perm: vec![0, 1, 3, 2, 4, 5],
            },
            &[v],
            &format!("{name}.win.permute"),
        )?;
        let cont = b.push(
            OpKind::Contiguous,
            &[perm],
            &format!("{name}.win.contiguous"),
        )?;
        let windows = b.push(
            OpKind::View {
                shape: vec![batch * nw * nw, w * w, c],
            },
            &[cont],
            &format!("{name}.win.merge"),
        )?;
        let att = self_attention(
            b,
            windows,
            batch * nw * nw,
            w * w,
            Attention {
                d: c,
                heads,
                causal: false,
                gpt2_conv1d: false,
                bias: true,
                rotary: false,
            },
            &format!("{name}.attn"),
        )?;
        // window reverse
        let rv = b.push(
            OpKind::View {
                shape: vec![batch, nw, nw, w, w, c],
            },
            &[att],
            &format!("{name}.rev.view"),
        )?;
        let rp = b.push(
            OpKind::Permute {
                perm: vec![0, 1, 3, 2, 4, 5],
            },
            &[rv],
            &format!("{name}.rev.permute"),
        )?;
        let rc = b.push(OpKind::Contiguous, &[rp], &format!("{name}.rev.contiguous"))?;
        let mut tokens = b.push(
            OpKind::View {
                shape: vec![batch, res * res, c],
            },
            &[rc],
            &format!("{name}.rev.merge"),
        )?;
        if shifted {
            // undo the cyclic shift
            let map = b.push(
                OpKind::View {
                    shape: vec![batch, res, res, c],
                },
                &[tokens],
                &format!("{name}.unshift.view"),
            )?;
            let r1 = b.push(
                OpKind::Roll { shift, dim: 1 },
                &[map],
                &format!("{name}.unshift.roll_h"),
            )?;
            let r2 = b.push(
                OpKind::Roll { shift, dim: 2 },
                &[r1],
                &format!("{name}.unshift.roll_w"),
            )?;
            tokens = b.push(
                OpKind::Reshape {
                    shape: vec![batch, res * res, c],
                },
                &[r2],
                &format!("{name}.unshift.merge"),
            )?;
        }
        let x1 = b.push(OpKind::Add, &[x, tokens], &format!("{name}.add1"))?;
        let ln2 = b.push(
            OpKind::LayerNorm { dim: c },
            &[x1],
            &format!("{name}.norm2"),
        )?;
        let ff = mlp(
            b,
            ln2,
            c,
            4 * c,
            MlpAct::Gelu,
            false,
            &format!("{name}.mlp"),
        )?;
        b.push(OpKind::Add, &[x1, ff], &format!("{name}.add2"))
    }
}

/// Patch merging: gathers 2×2 token neighborhoods (slice + cat), normalizes,
/// and halves the token count while doubling channels.
fn patch_merging(
    b: &mut GraphBuilder,
    x: NodeId,
    batch: usize,
    res: usize,
    c: usize,
    name: &str,
) -> Result<NodeId> {
    // [B, H*W, C] -> [B, H/2, 2, W/2, 2, C] -> [B, H/2, W/2, 2, 2, C]
    let v = b.push(
        OpKind::View {
            shape: vec![batch, res / 2, 2, res / 2, 2, c],
        },
        &[x],
        &format!("{name}.view"),
    )?;
    let p = b.push(
        OpKind::Permute {
            perm: vec![0, 1, 3, 2, 4, 5],
        },
        &[v],
        &format!("{name}.permute"),
    )?;
    let pc = b.push(OpKind::Contiguous, &[p], &format!("{name}.contiguous"))?;
    let merged = b.push(
        OpKind::View {
            shape: vec![batch, (res / 2) * (res / 2), 4 * c],
        },
        &[pc],
        &format!("{name}.merge"),
    )?;
    let ln = b.push(
        OpKind::LayerNorm { dim: 4 * c },
        &[merged],
        &format!("{name}.norm"),
    )?;
    b.push(
        OpKind::Linear {
            in_f: 4 * c,
            out_f: 2 * c,
            bias: false,
        },
        &[ln],
        &format!("{name}.reduction"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_exec::Interpreter;
    use ngb_graph::NonGemmGroup;

    #[test]
    fn published_param_counts() {
        let t = SwinConfig::tiny_224().build(1).unwrap().param_count();
        assert!((25_000_000..33_000_000).contains(&t), "T: {t}");
        let s = SwinConfig::small_224().build(1).unwrap().param_count();
        assert!((44_000_000..55_000_000).contains(&s), "S: {s}");
        let bb = SwinConfig::base_224().build(1).unwrap().param_count();
        assert!((80_000_000..95_000_000).contains(&bb), "B: {bb}");
    }

    #[test]
    fn memory_ops_are_plentiful() {
        // window partition/reverse makes Swin memory-op heavy
        let g = SwinConfig::tiny_224().build(1).unwrap();
        g.validate().unwrap();
        let mem = g.group_count(NonGemmGroup::Memory);
        assert!(mem > 150, "memory ops: {mem}");
    }

    #[test]
    fn toy_executes() {
        let g = SwinConfig::toy().build(1).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        assert_eq!(t.outputs[0].1.shape(), &[1, 10]);
    }

    #[test]
    fn stage_resolutions_tile() {
        // 224/4 = 56 -> 28 -> 14 -> 7, all divisible by window 7
        let cfg = SwinConfig::base_224();
        let g = cfg.build(1).unwrap();
        assert!(g.len() > 400);
    }
}
