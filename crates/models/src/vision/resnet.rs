//! ResNet-50 image classifier (He et al., Table 1).

use ngb_graph::{Graph, GraphBuilder, NodeId, OpKind};

use crate::common::{bottleneck, conv_norm_act, CnnNorm, Result};

/// ResNet-50 configuration.
#[derive(Debug, Clone)]
pub struct ResNet50Config {
    /// Input resolution (square).
    pub image: usize,
    /// Stem output channels (64 in the paper).
    pub stem: usize,
    /// Bottleneck blocks per stage (`[3, 4, 6, 3]` for ResNet-50).
    pub blocks: [usize; 4],
    /// Output classes.
    pub classes: usize,
    /// Normalization flavor (frozen for detection backbones).
    pub norm_frozen: bool,
}

impl ResNet50Config {
    /// Paper-scale ResNet-50 on 224×224 ImageNet.
    pub fn full() -> Self {
        ResNet50Config {
            image: 224,
            stem: 64,
            blocks: [3, 4, 6, 3],
            classes: 1000,
            norm_frozen: false,
        }
    }

    /// Executable toy preset (same topology, one block per stage, 32×32).
    pub fn tiny() -> Self {
        ResNet50Config {
            image: 32,
            stem: 8,
            blocks: [1, 1, 1, 1],
            classes: 10,
            norm_frozen: false,
        }
    }

    /// Builds the classifier graph for `batch` images.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build(&self, batch: usize) -> Result<Graph> {
        let mut b = GraphBuilder::new("resnet50");
        let x = b.input(&[batch, 3, self.image, self.image]);
        let (feat, c_out) = backbone(&mut b, x, self, "backbone")?;
        let pooled = b.push(
            OpKind::AdaptiveAvgPool2d { oh: 1, ow: 1 },
            &[feat],
            "avgpool",
        )?;
        let flat = b.push(
            OpKind::Reshape {
                shape: vec![batch, c_out],
            },
            &[pooled],
            "flatten",
        )?;
        let logits = b.push(
            OpKind::Linear {
                in_f: c_out,
                out_f: self.classes,
                bias: true,
            },
            &[flat],
            "fc",
        )?;
        b.push(OpKind::Softmax { dim: 1 }, &[logits], "probs")?;
        Ok(b.finish())
    }
}

/// Builds the 4-stage ResNet-50 trunk from an existing input node; returns
/// the final feature map and its channel count. Reused by the detection and
/// segmentation models.
pub(crate) fn backbone(
    b: &mut GraphBuilder,
    x: NodeId,
    cfg: &ResNet50Config,
    name: &str,
) -> Result<(NodeId, usize)> {
    let norm = if cfg.norm_frozen {
        CnnNorm::Frozen
    } else {
        CnnNorm::Batch
    };
    let stem = conv_norm_act(
        b,
        x,
        3,
        cfg.stem,
        7,
        2,
        3,
        norm,
        true,
        &format!("{name}.stem"),
    )?;
    let mut h = b.push(
        OpKind::MaxPool2d {
            kernel: 3,
            stride: 2,
            padding: 1,
        },
        &[stem],
        &format!("{name}.maxpool"),
    )?;
    let mut in_c = cfg.stem;
    for (stage, &n_blocks) in cfg.blocks.iter().enumerate() {
        let mid = cfg.stem << stage;
        let out_c = mid * 4;
        for blk in 0..n_blocks {
            let stride = if blk == 0 && stage > 0 { 2 } else { 1 };
            h = bottleneck(
                b,
                h,
                in_c,
                mid,
                out_c,
                stride,
                norm,
                &format!("{name}.layer{}.{blk}", stage + 1),
            )?;
            in_c = out_c;
        }
    }
    Ok((h, in_c))
}

/// Builds all four stage outputs (C2..C5) for FPN-style necks.
pub(crate) fn backbone_pyramid(
    b: &mut GraphBuilder,
    x: NodeId,
    cfg: &ResNet50Config,
    name: &str,
) -> Result<Vec<(NodeId, usize)>> {
    let norm = if cfg.norm_frozen {
        CnnNorm::Frozen
    } else {
        CnnNorm::Batch
    };
    let stem = conv_norm_act(
        b,
        x,
        3,
        cfg.stem,
        7,
        2,
        3,
        norm,
        true,
        &format!("{name}.stem"),
    )?;
    let mut h = b.push(
        OpKind::MaxPool2d {
            kernel: 3,
            stride: 2,
            padding: 1,
        },
        &[stem],
        &format!("{name}.maxpool"),
    )?;
    let mut in_c = cfg.stem;
    let mut outs = Vec::with_capacity(4);
    for (stage, &n_blocks) in cfg.blocks.iter().enumerate() {
        let mid = cfg.stem << stage;
        let out_c = mid * 4;
        for blk in 0..n_blocks {
            let stride = if blk == 0 && stage > 0 { 2 } else { 1 };
            h = bottleneck(
                b,
                h,
                in_c,
                mid,
                out_c,
                stride,
                norm,
                &format!("{name}.layer{}.{blk}", stage + 1),
            )?;
            in_c = out_c;
        }
        outs.push((h, in_c));
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_exec::Interpreter;
    use ngb_graph::NonGemmGroup;

    #[test]
    fn full_graph_has_expected_structure() {
        let g = ResNet50Config::full().build(1).unwrap();
        g.validate().unwrap();
        // 53 convs in ResNet-50 (49 + 4 downsample) + fc
        let h = g.op_histogram();
        assert_eq!(h["conv2d"], 53);
        assert_eq!(h["linear"], 1);
        assert!(g.group_count(NonGemmGroup::Normalization) >= 53);
        assert!(g.group_count(NonGemmGroup::Activation) >= 49);
        // ~25.6M params for the real model; ours matches the conv/fc layout
        let params = g.param_count();
        assert!((20_000_000..30_000_000).contains(&params), "{params}");
    }

    #[test]
    fn final_shape_is_classes() {
        let g = ResNet50Config::full().build(2).unwrap();
        let last = g.nodes.last().unwrap();
        assert_eq!(last.out_shape, vec![2, 1000]);
    }

    #[test]
    fn tiny_executes() {
        let g = ResNet50Config::tiny().build(1).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        let (_, probs) = &t.outputs[0];
        assert_eq!(probs.shape(), &[1, 10]);
        let s: f32 = probs.to_vec_f32().unwrap().iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn frozen_variant_swaps_norm() {
        let mut cfg = ResNet50Config::tiny();
        cfg.norm_frozen = true;
        let g = cfg.build(1).unwrap();
        assert!(g
            .iter()
            .any(|n| matches!(n.op, OpKind::FrozenBatchNorm2d { .. })));
        assert!(!g.iter().any(|n| matches!(n.op, OpKind::BatchNorm2d { .. })));
    }
}
