//! Vision Transformer classifiers (Dosovitskiy et al.): ViT-B/16, ViT-L/16,
//! ViT-H/14 from Table 1.

use ngb_graph::{Graph, GraphBuilder, OpKind};

use crate::common::{pre_ln_block, Result};

/// ViT configuration.
#[derive(Debug, Clone)]
pub struct VitConfig {
    /// Model alias used as the graph name.
    pub name: &'static str,
    /// Input resolution.
    pub image: usize,
    /// Patch size.
    pub patch: usize,
    /// Hidden size.
    pub d: usize,
    /// Encoder depth.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP hidden size.
    pub mlp: usize,
    /// Output classes.
    pub classes: usize,
}

impl VitConfig {
    /// ViT-Base/16: 86 M parameters, 12 × 768.
    pub fn base16() -> Self {
        VitConfig {
            name: "vit_b16",
            image: 224,
            patch: 16,
            d: 768,
            layers: 12,
            heads: 12,
            mlp: 3072,
            classes: 1000,
        }
    }

    /// ViT-Large/16: 307 M parameters, 24 × 1024.
    pub fn large16() -> Self {
        VitConfig {
            name: "vit_l16",
            image: 224,
            patch: 16,
            d: 1024,
            layers: 24,
            heads: 16,
            mlp: 4096,
            classes: 1000,
        }
    }

    /// ViT-Huge/14: 632 M parameters, 32 × 1280.
    pub fn huge14() -> Self {
        VitConfig {
            name: "vit_h14",
            image: 224,
            patch: 14,
            d: 1280,
            layers: 32,
            heads: 16,
            mlp: 5120,
            classes: 1000,
        }
    }

    /// Executable toy preset.
    pub fn tiny() -> Self {
        VitConfig {
            name: "vit_tiny",
            image: 32,
            patch: 8,
            d: 32,
            layers: 2,
            heads: 4,
            mlp: 64,
            classes: 10,
        }
    }

    /// Number of tokens (patches + CLS).
    pub fn tokens(&self) -> usize {
        (self.image / self.patch) * (self.image / self.patch) + 1
    }

    /// Builds the classifier graph for `batch` images.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build(&self, batch: usize) -> Result<Graph> {
        let mut b = GraphBuilder::new(self.name);
        let grid = self.image / self.patch;
        let t = self.tokens();
        let x = b.input(&[batch, 3, self.image, self.image]);

        // Patch embedding: conv(patch, stride patch) -> [B, D, g, g]
        let pe = b.push(
            OpKind::Conv2d {
                in_c: 3,
                out_c: self.d,
                kernel: self.patch,
                stride: self.patch,
                padding: 0,
                groups: 1,
                bias: true,
            },
            &[x],
            "patch_embed.proj",
        )?;
        // [B, D, g, g] -> [B, D, g*g] -> [B, g*g, D] (the Reshape/Permute
        // entries of Table 2 for ViT-b16)
        let r = b.push(
            OpKind::Reshape {
                shape: vec![batch, self.d, grid * grid],
            },
            &[pe],
            "patch_embed.reshape",
        )?;
        let p = b.push(
            OpKind::Permute {
                perm: vec![0, 2, 1],
            },
            &[r],
            "patch_embed.permute",
        )?;
        let pc = b.push(OpKind::Contiguous, &[p], "patch_embed.contiguous")?;

        // CLS token: expand + cat (the Expand entry of Table 2)
        let cls = b.input(&[1, 1, self.d]);
        let cls_e = b.push(
            OpKind::Expand {
                shape: vec![batch, 1, self.d],
            },
            &[cls],
            "cls_token.expand",
        )?;
        let tokens = b.push(OpKind::Cat { dim: 1 }, &[cls_e, pc], "cat_cls")?;

        // Positional embedding add
        let pos = b.input(&[1, t, self.d]);
        let mut h = b.push(OpKind::Add, &[tokens, pos], "pos_embed.add")?;

        for l in 0..self.layers {
            h = pre_ln_block(
                &mut b,
                h,
                batch,
                t,
                self.d,
                self.heads,
                self.mlp,
                &format!("encoder.{l}"),
            )?;
        }
        let ln = b.push(OpKind::LayerNorm { dim: self.d }, &[h], "ln_final")?;
        // classification on the CLS token
        let cls_tok = b.push(
            OpKind::Slice {
                dim: 1,
                start: 0,
                len: 1,
            },
            &[ln],
            "take_cls",
        )?;
        let sq = b.push(OpKind::Squeeze { dim: 1 }, &[cls_tok], "squeeze")?;
        let logits = b.push(
            OpKind::Linear {
                in_f: self.d,
                out_f: self.classes,
                bias: true,
            },
            &[sq],
            "head",
        )?;
        b.push(OpKind::Softmax { dim: 1 }, &[logits], "probs")?;
        Ok(b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_exec::Interpreter;
    use ngb_graph::NonGemmGroup;

    #[test]
    fn parameter_counts_track_published_sizes() {
        // ViT-L/16 is 307M, ViT-H/14 is 632M (Table 1)
        let l = VitConfig::large16().build(1).unwrap().param_count();
        assert!((280_000_000..330_000_000).contains(&l), "L: {l}");
        let h = VitConfig::huge14().build(1).unwrap().param_count();
        assert!((600_000_000..680_000_000).contains(&h), "H: {h}");
        let base = VitConfig::base16().build(1).unwrap().param_count();
        assert!((80_000_000..95_000_000).contains(&base), "B: {base}");
    }

    #[test]
    fn token_counts() {
        assert_eq!(VitConfig::base16().tokens(), 197);
        assert_eq!(VitConfig::huge14().tokens(), 257);
    }

    #[test]
    fn graph_contains_paper_table2_ops() {
        let g = VitConfig::base16().build(1).unwrap();
        g.validate().unwrap();
        for op in [
            "gelu",
            "layer_norm",
            "permute",
            "reshape",
            "expand",
            "softmax",
            "bmm",
        ] {
            assert!(g.op_histogram().contains_key(op), "missing {op}");
        }
        assert!(g.group_count(NonGemmGroup::Memory) > 50);
    }

    #[test]
    fn tiny_executes_to_distribution() {
        let g = VitConfig::tiny().build(2).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        let probs = &t.outputs[0].1;
        assert_eq!(probs.shape(), &[2, 10]);
        for r in 0..2 {
            let s: f32 = probs
                .select(0, r)
                .unwrap()
                .to_vec_f32()
                .unwrap()
                .iter()
                .sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn batch_scales_shapes() {
        let g = VitConfig::tiny().build(8).unwrap();
        assert_eq!(g.nodes.last().unwrap().out_shape, vec![8, 10]);
    }
}
