//! Object-detection models (Table 1): FasterRCNN, MaskRCNN, and DETR.
//!
//! The R-CNN variants reproduce the three properties the paper attributes
//! their GPU profiles to: a `FrozenBatchNorm2d`-laden backbone (custom
//! normalization → Normalization dominates, §4.1.2), an FPN full of
//! interpolation and element-wise adds, and a dynamic RoI pipeline
//! (sigmoid → top-k → NMS → RoIAlign).

use ngb_graph::{Graph, GraphBuilder, NodeId, OpKind};

use crate::common::{cross_attention, mlp, self_attention, Attention, MlpAct, Result};
use crate::vision::resnet::{backbone_pyramid, ResNet50Config};

/// Shared configuration of the two R-CNN variants.
#[derive(Debug, Clone)]
pub struct RcnnConfig {
    /// Input resolution (torchvision resizes COCO images to ~800).
    pub image: usize,
    /// FPN channel width (256).
    pub fpn: usize,
    /// Proposals kept after RPN NMS.
    pub proposals: usize,
    /// Final detections kept.
    pub detections: usize,
    /// COCO classes + background.
    pub classes: usize,
    /// Whether to append the mask head (MaskRCNN).
    pub mask_head: bool,
    /// Backbone config (frozen-norm ResNet-50).
    pub backbone: ResNet50Config,
}

impl RcnnConfig {
    /// Paper-scale FasterRCNN (42 M parameters).
    pub fn faster_rcnn() -> Self {
        RcnnConfig {
            image: 800,
            fpn: 256,
            proposals: 1000,
            detections: 100,
            classes: 91,
            mask_head: false,
            backbone: ResNet50Config {
                norm_frozen: true,
                image: 800,
                ..ResNet50Config::full()
            },
        }
    }

    /// Paper-scale MaskRCNN (44 M parameters).
    pub fn mask_rcnn() -> Self {
        RcnnConfig {
            mask_head: true,
            ..RcnnConfig::faster_rcnn()
        }
    }

    /// Executable toy preset.
    pub fn toy(mask_head: bool) -> Self {
        RcnnConfig {
            image: 64,
            fpn: 16,
            proposals: 32,
            detections: 8,
            classes: 5,
            mask_head,
            backbone: ResNet50Config {
                norm_frozen: true,
                image: 64,
                stem: 8,
                blocks: [1, 1, 1, 1],
                classes: 5,
            },
        }
    }

    /// Builds the detector graph for `batch` images.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build(&self, batch: usize) -> Result<Graph> {
        let name = if self.mask_head {
            "mask_rcnn"
        } else {
            "faster_rcnn"
        };
        let mut b = GraphBuilder::new(name);
        let x = b.input(&[batch, 3, self.image, self.image]);
        let stages = backbone_pyramid(&mut b, x, &self.backbone, "backbone")?;
        let pyramid = fpn(&mut b, &stages, self.fpn, "fpn")?;

        // ---- RPN over every pyramid level
        let anchors = 3;
        let mut level_proposals = Vec::new();
        for (li, &level) in pyramid.iter().enumerate() {
            let shape = b.shape(level).to_vec();
            let (h, w) = (shape[2], shape[3]);
            let conv = b.push(
                OpKind::Conv2d {
                    in_c: self.fpn,
                    out_c: self.fpn,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                    groups: 1,
                    bias: true,
                },
                &[level],
                &format!("rpn.head.{li}.conv"),
            )?;
            let act = b.push(OpKind::Relu, &[conv], &format!("rpn.head.{li}.relu"))?;
            let logits = b.push(
                OpKind::Conv2d {
                    in_c: self.fpn,
                    out_c: anchors,
                    kernel: 1,
                    stride: 1,
                    padding: 0,
                    groups: 1,
                    bias: true,
                },
                &[act],
                &format!("rpn.head.{li}.cls"),
            )?;
            let deltas = b.push(
                OpKind::Conv2d {
                    in_c: self.fpn,
                    out_c: 4 * anchors,
                    kernel: 1,
                    stride: 1,
                    padding: 0,
                    groups: 1,
                    bias: true,
                },
                &[act],
                &format!("rpn.head.{li}.bbox"),
            )?;
            // objectness: [B, A, H, W] -> [B*A*H*W] scores
            let n_anchors = batch * anchors * h * w;
            let flat = b.push(
                OpKind::Reshape {
                    shape: vec![n_anchors],
                },
                &[logits],
                &format!("rpn.{li}.flatten"),
            )?;
            let scores = b.push(OpKind::Sigmoid, &[flat], &format!("rpn.{li}.sigmoid"))?;
            // decode deltas into boxes: permute + reshape + arithmetic
            let dp = b.push(
                OpKind::Permute {
                    perm: vec![0, 2, 3, 1],
                },
                &[deltas],
                &format!("rpn.{li}.deltas.permute"),
            )?;
            let dc = b.push(
                OpKind::Contiguous,
                &[dp],
                &format!("rpn.{li}.deltas.contiguous"),
            )?;
            let boxes = b.push(
                OpKind::Reshape {
                    shape: vec![n_anchors, 4],
                },
                &[dc],
                &format!("rpn.{li}.deltas.reshape"),
            )?;
            let scaled = b.push(
                OpKind::MulScalar(16.0),
                &[boxes],
                &format!("rpn.{li}.decode.scale"),
            )?;
            let decoded = b.push(
                OpKind::AddScalar(0.5),
                &[scaled],
                &format!("rpn.{li}.decode.shift"),
            )?;
            // pre-NMS top-k per level
            let pre = self.proposals.min(n_anchors);
            let top_scores = b.push(
                OpKind::Reshape {
                    shape: vec![1, n_anchors],
                },
                &[scores],
                &format!("rpn.{li}.scores.reshape"),
            )?;
            let topk = b.push(
                OpKind::TopK { k: pre },
                &[top_scores],
                &format!("rpn.{li}.topk"),
            )?;
            let topk_flat = b.push(
                OpKind::Reshape { shape: vec![pre] },
                &[topk],
                &format!("rpn.{li}.topk.flatten"),
            )?;
            let cand = b.push(
                OpKind::Slice {
                    dim: 0,
                    start: 0,
                    len: pre,
                },
                &[decoded],
                &format!("rpn.{li}.candidates"),
            )?;
            let keep = b.push(
                OpKind::Nms {
                    iou_threshold: 0.7,
                    nominal_keep: pre / 2,
                },
                &[cand, topk_flat],
                &format!("rpn.{li}.nms"),
            )?;
            let _ = keep;
            let kept_boxes = b.push(
                OpKind::Slice {
                    dim: 0,
                    start: 0,
                    len: pre / 2,
                },
                &[cand],
                &format!("rpn.{li}.kept"),
            )?;
            level_proposals.push(kept_boxes);
        }
        let all = b.push(OpKind::Cat { dim: 0 }, &level_proposals, "rpn.cat_levels")?;
        let total = b.shape(all)[0];
        let n_props = self.proposals.min(total);
        let props = b.push(
            OpKind::Slice {
                dim: 0,
                start: 0,
                len: n_props,
            },
            &[all],
            "rpn.proposals",
        )?;

        // ---- RoI heads: align on the mid-pyramid level (RoIs are
        // gathered per image, so take the first image's map as the
        // representative feature — torchvision iterates images here)
        let feat = pyramid[1];
        let fshape = b.shape(feat).to_vec();
        let first = b.push(
            OpKind::Slice {
                dim: 0,
                start: 0,
                len: 1,
            },
            &[feat],
            "roi.image0",
        )?;
        let fmap = b.push(
            OpKind::Reshape {
                shape: vec![fshape[1], fshape[2], fshape[3]],
            },
            &[first],
            "roi.feature",
        )?;
        let aligned = b.push(
            OpKind::RoiAlign {
                out: 7,
                spatial_scale: 0.125,
            },
            &[fmap, props],
            "roi.align",
        )?;
        let flat = b.push(
            OpKind::Reshape {
                shape: vec![n_props, self.fpn * 49],
            },
            &[aligned],
            "roi.flatten",
        )?;
        let fc6 = b.push(
            OpKind::Linear {
                in_f: self.fpn * 49,
                out_f: 1024,
                bias: true,
            },
            &[flat],
            "roi.box_head.fc6",
        )?;
        let r6 = b.push(OpKind::Relu, &[fc6], "roi.box_head.relu6")?;
        let fc7 = b.push(
            OpKind::Linear {
                in_f: 1024,
                out_f: 1024,
                bias: true,
            },
            &[r6],
            "roi.box_head.fc7",
        )?;
        let r7 = b.push(OpKind::Relu, &[fc7], "roi.box_head.relu7")?;
        let cls = b.push(
            OpKind::Linear {
                in_f: 1024,
                out_f: self.classes,
                bias: true,
            },
            &[r7],
            "roi.predictor.cls",
        )?;
        let probs = b.push(OpKind::Softmax { dim: 1 }, &[cls], "roi.predictor.softmax")?;
        let bbox = b.push(
            OpKind::Linear {
                in_f: 1024,
                out_f: 4 * self.classes,
                bias: true,
            },
            &[r7],
            "roi.predictor.bbox",
        )?;
        // final filtering: best class score per proposal, decode, NMS
        let best = b.push(OpKind::TopK { k: 1 }, &[probs], "post.best_score")?;
        let best_flat = b.push(
            OpKind::Reshape {
                shape: vec![n_props],
            },
            &[best],
            "post.scores",
        )?;
        let boxes4 = b.push(
            OpKind::Slice {
                dim: 1,
                start: 0,
                len: 4,
            },
            &[bbox],
            "post.take_boxes",
        )?;
        let decoded = b.push(OpKind::MulScalar(8.0), &[boxes4], "post.decode")?;
        let keep = b.push(
            OpKind::Nms {
                iou_threshold: 0.5,
                nominal_keep: self.detections,
            },
            &[decoded, best_flat],
            "post.nms",
        )?;
        let _ = keep;
        let final_boxes = b.push(
            OpKind::Slice {
                dim: 0,
                start: 0,
                len: self.detections.min(n_props),
            },
            &[decoded],
            "post.detections",
        )?;

        if self.mask_head {
            let n_det = self.detections.min(n_props);
            let maligned = b.push(
                OpKind::RoiAlign {
                    out: 14,
                    spatial_scale: 0.125,
                },
                &[fmap, final_boxes],
                "mask.align",
            )?;
            let mut h = maligned;
            for i in 0..4 {
                let c = b.push(
                    OpKind::Conv2d {
                        in_c: self.fpn,
                        out_c: self.fpn,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                        groups: 1,
                        bias: true,
                    },
                    &[h],
                    &format!("mask.fcn{i}.conv"),
                )?;
                h = b.push(OpKind::Relu, &[c], &format!("mask.fcn{i}.relu"))?;
            }
            let up = b.push(
                OpKind::InterpolateBilinear { oh: 28, ow: 28 },
                &[h],
                "mask.upsample",
            )?;
            let logits = b.push(
                OpKind::Conv2d {
                    in_c: self.fpn,
                    out_c: self.classes,
                    kernel: 1,
                    stride: 1,
                    padding: 0,
                    groups: 1,
                    bias: true,
                },
                &[up],
                "mask.predictor",
            )?;
            let masks = b.push(OpKind::Sigmoid, &[logits], "mask.probs")?;
            let _ = (masks, n_det);
        }
        Ok(b.finish())
    }
}

/// Feature pyramid network: lateral 1×1 convs + nearest-neighbor top-down
/// fusion + 3×3 output convs (+ P6 pool level).
fn fpn(
    b: &mut GraphBuilder,
    stages: &[(NodeId, usize)],
    out_c: usize,
    name: &str,
) -> Result<Vec<NodeId>> {
    // lateral projections, from deepest to shallowest
    let mut laterals = Vec::new();
    for (i, &(node, c)) in stages.iter().enumerate() {
        let l = b.push(
            OpKind::Conv2d {
                in_c: c,
                out_c,
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 1,
                bias: true,
            },
            &[node],
            &format!("{name}.lateral{i}"),
        )?;
        laterals.push(l);
    }
    let mut outs = vec![*laterals.last().expect("nonempty pyramid")];
    for i in (0..laterals.len() - 1).rev() {
        let below = outs[0];
        let shape = b.shape(laterals[i]).to_vec();
        let up = b.push(
            OpKind::InterpolateNearest {
                oh: shape[2],
                ow: shape[3],
            },
            &[below],
            &format!("{name}.upsample{i}"),
        )?;
        let sum = b.push(OpKind::Add, &[laterals[i], up], &format!("{name}.add{i}"))?;
        outs.insert(0, sum);
    }
    let mut smoothed = Vec::new();
    for (i, &o) in outs.iter().enumerate() {
        let s = b.push(
            OpKind::Conv2d {
                in_c: out_c,
                out_c,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
                bias: true,
            },
            &[o],
            &format!("{name}.output{i}"),
        )?;
        smoothed.push(s);
    }
    Ok(smoothed)
}

/// DETR configuration (Carion et al., 41 M parameters).
#[derive(Debug, Clone)]
pub struct DetrConfig {
    /// Input resolution.
    pub image: usize,
    /// Transformer hidden size (256).
    pub d: usize,
    /// Attention heads (8).
    pub heads: usize,
    /// Encoder/decoder depth (6 each).
    pub layers: usize,
    /// Object queries (100).
    pub queries: usize,
    /// FFN hidden size (2048).
    pub ffn: usize,
    /// COCO classes + no-object.
    pub classes: usize,
    /// Backbone config.
    pub backbone: ResNet50Config,
}

impl DetrConfig {
    /// Paper-scale DETR-R50.
    pub fn full() -> Self {
        DetrConfig {
            image: 800,
            d: 256,
            heads: 8,
            layers: 6,
            queries: 100,
            ffn: 2048,
            classes: 92,
            backbone: ResNet50Config {
                norm_frozen: true,
                image: 800,
                ..ResNet50Config::full()
            },
        }
    }

    /// Executable toy preset.
    pub fn toy() -> Self {
        DetrConfig {
            image: 64,
            d: 16,
            heads: 2,
            layers: 1,
            queries: 4,
            ffn: 32,
            classes: 5,
            backbone: ResNet50Config {
                norm_frozen: true,
                image: 64,
                stem: 8,
                blocks: [1, 1, 1, 1],
                classes: 5,
            },
        }
    }

    /// Builds the DETR graph for `batch` images.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build(&self, batch: usize) -> Result<Graph> {
        let mut b = GraphBuilder::new("detr");
        let x = b.input(&[batch, 3, self.image, self.image]);
        let stages = backbone_pyramid(&mut b, x, &self.backbone, "backbone")?;
        let (c5, c5_c) = *stages.last().expect("four stages");
        let shape = b.shape(c5).to_vec();
        let (h, w) = (shape[2], shape[3]);
        let t = h * w;

        let proj = b.push(
            OpKind::Conv2d {
                in_c: c5_c,
                out_c: self.d,
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 1,
                bias: true,
            },
            &[c5],
            "input_proj",
        )?;
        let flat = b.push(
            OpKind::Reshape {
                shape: vec![batch, self.d, t],
            },
            &[proj],
            "flatten",
        )?;
        let perm = b.push(
            OpKind::Permute {
                perm: vec![0, 2, 1],
            },
            &[flat],
            "permute",
        )?;
        let tokens = b.push(OpKind::Contiguous, &[perm], "contiguous")?;
        let pos = b.input(&[1, t, self.d]);
        let mut memory = b.push(OpKind::Add, &[tokens, pos], "pos_embed")?;

        // post-norm encoder with ReLU FFN (DETR's Table 2 entries: ReLU and
        // LayerNorm on [2, 850, 256]-like shapes)
        for l in 0..self.layers {
            let att = self_attention(
                &mut b,
                memory,
                batch,
                t,
                Attention {
                    d: self.d,
                    heads: self.heads,
                    causal: false,
                    gpt2_conv1d: false,
                    bias: true,
                    rotary: false,
                },
                &format!("encoder.{l}.attn"),
            )?;
            let a1 = b.push(OpKind::Add, &[memory, att], &format!("encoder.{l}.add1"))?;
            let n1 = b.push(
                OpKind::LayerNorm { dim: self.d },
                &[a1],
                &format!("encoder.{l}.norm1"),
            )?;
            let ff = mlp(
                &mut b,
                n1,
                self.d,
                self.ffn,
                MlpAct::Relu,
                false,
                &format!("encoder.{l}.ffn"),
            )?;
            let a2 = b.push(OpKind::Add, &[n1, ff], &format!("encoder.{l}.add2"))?;
            memory = b.push(
                OpKind::LayerNorm { dim: self.d },
                &[a2],
                &format!("encoder.{l}.norm2"),
            )?;
        }

        // decoder over object queries
        let queries = b.input(&[1, self.queries, self.d]);
        let mut q = b.push(
            OpKind::Expand {
                shape: vec![batch, self.queries, self.d],
            },
            &[queries],
            "query_embed.expand",
        )?;
        q = b.push(OpKind::Contiguous, &[q], "query_embed.contiguous")?;
        for l in 0..self.layers {
            let sa = self_attention(
                &mut b,
                q,
                batch,
                self.queries,
                Attention {
                    d: self.d,
                    heads: self.heads,
                    causal: false,
                    gpt2_conv1d: false,
                    bias: true,
                    rotary: false,
                },
                &format!("decoder.{l}.self_attn"),
            )?;
            let a1 = b.push(OpKind::Add, &[q, sa], &format!("decoder.{l}.add1"))?;
            let n1 = b.push(
                OpKind::LayerNorm { dim: self.d },
                &[a1],
                &format!("decoder.{l}.norm1"),
            )?;
            let ca = cross_attention(
                &mut b,
                n1,
                memory,
                batch,
                self.queries,
                t,
                self.d,
                self.heads,
                &format!("decoder.{l}.cross_attn"),
            )?;
            let a2 = b.push(OpKind::Add, &[n1, ca], &format!("decoder.{l}.add2"))?;
            let n2 = b.push(
                OpKind::LayerNorm { dim: self.d },
                &[a2],
                &format!("decoder.{l}.norm2"),
            )?;
            let ff = mlp(
                &mut b,
                n2,
                self.d,
                self.ffn,
                MlpAct::Relu,
                false,
                &format!("decoder.{l}.ffn"),
            )?;
            let a3 = b.push(OpKind::Add, &[n2, ff], &format!("decoder.{l}.add3"))?;
            q = b.push(
                OpKind::LayerNorm { dim: self.d },
                &[a3],
                &format!("decoder.{l}.norm3"),
            )?;
        }

        // prediction heads
        let cls = b.push(
            OpKind::Linear {
                in_f: self.d,
                out_f: self.classes,
                bias: true,
            },
            &[q],
            "class_head",
        )?;
        b.push(OpKind::Softmax { dim: 2 }, &[cls], "class_probs")?;
        let mut bh = q;
        for i in 0..2 {
            let fc = b.push(
                OpKind::Linear {
                    in_f: self.d,
                    out_f: self.d,
                    bias: true,
                },
                &[bh],
                &format!("bbox_head.{i}"),
            )?;
            bh = b.push(OpKind::Relu, &[fc], &format!("bbox_head.{i}.relu"))?;
        }
        let raw = b.push(
            OpKind::Linear {
                in_f: self.d,
                out_f: 4,
                bias: true,
            },
            &[bh],
            "bbox_head.out",
        )?;
        let sig = b.push(OpKind::Sigmoid, &[raw], "bbox_sigmoid")?;
        let flat_boxes = b.push(
            OpKind::Reshape {
                shape: vec![batch * self.queries, 4],
            },
            &[sig],
            "bbox_flatten",
        )?;
        b.push(OpKind::BoxConvert, &[flat_boxes], "box_convert")?;
        Ok(b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_exec::Interpreter;
    use ngb_graph::NonGemmGroup;

    #[test]
    fn faster_rcnn_full_structure() {
        let g = RcnnConfig::faster_rcnn().build(1).unwrap();
        g.validate().unwrap();
        assert!(g
            .iter()
            .any(|n| matches!(n.op, OpKind::FrozenBatchNorm2d { .. })));
        assert!(g.iter().any(|n| matches!(n.op, OpKind::Nms { .. })));
        assert!(g.iter().any(|n| matches!(n.op, OpKind::RoiAlign { .. })));
        assert!(g.group_count(NonGemmGroup::Normalization) >= 53);
        let params = g.param_count();
        assert!((30_000_000..55_000_000).contains(&params), "{params}");
    }

    #[test]
    fn mask_rcnn_adds_mask_head() {
        let f = RcnnConfig::faster_rcnn().build(1).unwrap();
        let m = RcnnConfig::mask_rcnn().build(1).unwrap();
        assert!(m.len() > f.len());
        assert!(m.iter().any(|n| n.name.starts_with("mask.")));
        assert!(m.param_count() > f.param_count());
    }

    #[test]
    fn rcnn_toy_executes() {
        let g = RcnnConfig::toy(false).build(1).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        assert!(!t.outputs.is_empty());
    }

    #[test]
    fn mask_rcnn_toy_executes() {
        let g = RcnnConfig::toy(true).build(1).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        // mask output present: [det, classes, 28, 28]-shaped sigmoid map
        assert!(t
            .outputs
            .iter()
            .any(|(_, v)| v.rank() == 4 && v.shape()[2] == 28));
    }

    #[test]
    fn detr_full_structure() {
        let g = DetrConfig::full().build(2).unwrap();
        g.validate().unwrap();
        let params = g.param_count();
        assert!((35_000_000..50_000_000).contains(&params), "{params}");
        // DETR's table-2 ops: ReLU FFN + LayerNorm + FrozenBatchNorm2d
        assert!(g.iter().any(|n| n.op == OpKind::Relu));
        assert!(g.iter().any(|n| matches!(n.op, OpKind::LayerNorm { .. })));
        assert!(g
            .iter()
            .any(|n| matches!(n.op, OpKind::FrozenBatchNorm2d { .. })));
        assert!(g.iter().any(|n| n.op == OpKind::BoxConvert));
    }

    #[test]
    fn detr_toy_executes() {
        let g = DetrConfig::toy().build(1).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        // box output in corner format [queries, 4]
        assert!(t.outputs.iter().any(|(_, v)| v.shape() == [4, 4]));
    }
}
