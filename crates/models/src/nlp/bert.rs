//! BERT-base encoder (Devlin et al., Table 1's 110 M entry): post-LayerNorm
//! encoder blocks with separate q/k/v linears, fused GELU, and the
//! word/position/type embedding adds that make element-wise Arithmetic
//! BERT's top non-GEMM group in the paper (Table 4).

use ngb_graph::{Graph, GraphBuilder, OpKind};

use crate::common::{mlp, self_attention, Attention, MlpAct, Result};

/// BERT configuration.
#[derive(Debug, Clone)]
pub struct BertConfig {
    /// Model alias used as the graph name.
    pub name: &'static str,
    /// WordPiece vocabulary (30522).
    pub vocab: usize,
    /// Hidden size.
    pub d: usize,
    /// Encoder depth.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length profiled.
    pub seq: usize,
}

impl BertConfig {
    /// BERT-base-uncased: 110 M parameters, 12 × 768.
    pub fn base() -> Self {
        BertConfig {
            name: "bert_base",
            vocab: 30522,
            d: 768,
            layers: 12,
            heads: 12,
            seq: 128,
        }
    }

    /// Executable toy preset.
    pub fn toy() -> Self {
        BertConfig {
            name: "bert_toy",
            vocab: 64,
            d: 16,
            layers: 2,
            heads: 2,
            seq: 8,
        }
    }

    /// Builds the encoder graph for `batch` sequences.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build(&self, batch: usize) -> Result<Graph> {
        let mut b = GraphBuilder::new(self.name);
        let ids = b.input_ids(&[batch, self.seq], self.vocab);
        let we = b.push(
            OpKind::Embedding {
                vocab: self.vocab,
                dim: self.d,
            },
            &[ids],
            "embeddings.word",
        )?;
        let pos = b.input(&[1, self.seq, self.d]);
        let tok_type = b.input(&[1, self.seq, self.d]);
        let e1 = b.push(OpKind::Add, &[we, pos], "embeddings.add_pos")?;
        let e2 = b.push(OpKind::Add, &[e1, tok_type], "embeddings.add_type")?;
        let mut h = b.push(OpKind::LayerNorm { dim: self.d }, &[e2], "embeddings.norm")?;

        for l in 0..self.layers {
            // post-norm: attn -> add -> LN -> mlp -> add -> LN
            let att = self_attention(
                &mut b,
                h,
                batch,
                self.seq,
                Attention {
                    d: self.d,
                    heads: self.heads,
                    causal: false,
                    gpt2_conv1d: false,
                    bias: true,
                    rotary: false,
                },
                &format!("encoder.{l}.attention"),
            )?;
            let a1 = b.push(OpKind::Add, &[h, att], &format!("encoder.{l}.add1"))?;
            let n1 = b.push(
                OpKind::LayerNorm { dim: self.d },
                &[a1],
                &format!("encoder.{l}.attention.output.norm"),
            )?;
            let ff = mlp(
                &mut b,
                n1,
                self.d,
                4 * self.d,
                MlpAct::Gelu,
                false,
                &format!("encoder.{l}.ffn"),
            )?;
            let a2 = b.push(OpKind::Add, &[n1, ff], &format!("encoder.{l}.add2"))?;
            h = b.push(
                OpKind::LayerNorm { dim: self.d },
                &[a2],
                &format!("encoder.{l}.output.norm"),
            )?;
        }
        // pooler: first token -> linear -> tanh-ish (sigmoid as proxy) + MLM head
        let cls = b.push(
            OpKind::Slice {
                dim: 1,
                start: 0,
                len: 1,
            },
            &[h],
            "pooler.take_cls",
        )?;
        let cls_sq = b.push(OpKind::Squeeze { dim: 1 }, &[cls], "pooler.squeeze")?;
        let pooled = b.push(
            OpKind::Linear {
                in_f: self.d,
                out_f: self.d,
                bias: true,
            },
            &[cls_sq],
            "pooler.dense",
        )?;
        b.push(OpKind::Sigmoid, &[pooled], "pooler.activation")?;
        let logits = b.push(
            OpKind::Linear {
                in_f: self.d,
                out_f: self.vocab,
                bias: true,
            },
            &[h],
            "mlm_head",
        )?;
        b.push(OpKind::Softmax { dim: 2 }, &[logits], "probs")?;
        Ok(b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_exec::Interpreter;
    use ngb_graph::NonGemmGroup;

    #[test]
    fn published_parameter_count() {
        let g = BertConfig::base().build(1).unwrap();
        g.validate().unwrap();
        let p = g.param_count();
        // 110M + MLM head
        assert!((100_000_000..145_000_000).contains(&p), "{p}");
    }

    #[test]
    fn embedding_adds_present() {
        let g = BertConfig::base().build(1).unwrap();
        let adds = g.group_count(NonGemmGroup::Arithmetic);
        assert!(adds >= 2 + 2 * 12, "{adds}"); // embeddings + residuals
        assert!(g.iter().any(|n| n.name == "embeddings.add_type"));
    }

    #[test]
    fn toy_executes() {
        let g = BertConfig::toy().build(1).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        assert!(t.outputs.iter().any(|(_, v)| v.shape() == [1, 8, 64]));
        assert!(t.outputs.iter().any(|(_, v)| v.shape() == [1, 16]));
    }

    #[test]
    fn uses_separate_qkv_linears() {
        let g = BertConfig::base().build(1).unwrap();
        assert!(!g.op_histogram().contains_key("conv1d_gpt2"));
        // 4 attn linears + 2 mlp per layer + pooler + mlm head
        assert_eq!(g.op_histogram()["linear"], 6 * 12 + 2);
    }
}
