//! Language-model families.

pub mod bert;
pub mod gpt2;
pub mod llama;
