//! Llama-2 decoder-only language model (Touvron et al., Table 1's 7 B
//! entry).
//!
//! Reproduces the eager-mode characteristics the paper attributes Llama's
//! GPU profile to: the decomposed `LlamaRMSNorm` (§4.1.4), rotary position
//! embeddings whose `rotate_half` emits the Table 2 `Neg` on
//! `[1, 32, 10, 64]`-like shapes, SiLU-gated MLPs with an element-wise
//! `Mul` on `[1, 10, 11008]`, and bias-free projections.

use ngb_graph::{Graph, GraphBuilder, OpKind};

use crate::common::{self_attention, Attention, Result};

/// Llama-2 configuration.
#[derive(Debug, Clone)]
pub struct LlamaConfig {
    /// Model alias used as the graph name.
    pub name: &'static str,
    /// Vocabulary size (32000).
    pub vocab: usize,
    /// Hidden size.
    pub d: usize,
    /// Gated-MLP intermediate size (11008 for 7B).
    pub intermediate: usize,
    /// Decoder depth.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length profiled (the paper's Table 2 uses 10).
    pub seq: usize,
}

impl LlamaConfig {
    /// Llama-2-7B: 32 × 4096, intermediate 11008.
    pub fn llama2_7b() -> Self {
        LlamaConfig {
            name: "llama2_7b",
            vocab: 32000,
            d: 4096,
            intermediate: 11008,
            layers: 32,
            heads: 32,
            seq: 10,
        }
    }

    /// Executable toy preset.
    pub fn toy() -> Self {
        LlamaConfig {
            name: "llama_toy",
            vocab: 64,
            d: 16,
            intermediate: 40,
            layers: 2,
            heads: 2,
            seq: 5,
        }
    }

    /// Builds the causal LM graph for `batch` sequences.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build(&self, batch: usize) -> Result<Graph> {
        let mut b = GraphBuilder::new(self.name);
        let ids = b.input_ids(&[batch, self.seq], self.vocab);
        let mut h = b.push(
            OpKind::Embedding {
                vocab: self.vocab,
                dim: self.d,
            },
            &[ids],
            "embed_tokens",
        )?;

        for l in 0..self.layers {
            let n1 = b.push(
                OpKind::LlamaRmsNorm { dim: self.d },
                &[h],
                &format!("layers.{l}.input_layernorm"),
            )?;
            let att = self_attention(
                &mut b,
                n1,
                batch,
                self.seq,
                Attention {
                    d: self.d,
                    heads: self.heads,
                    causal: true,
                    gpt2_conv1d: false,
                    bias: false,
                    rotary: true,
                },
                &format!("layers.{l}.self_attn"),
            )?;
            let x1 = b.push(OpKind::Add, &[h, att], &format!("layers.{l}.add_attn"))?;
            let n2 = b.push(
                OpKind::LlamaRmsNorm { dim: self.d },
                &[x1],
                &format!("layers.{l}.post_attention_layernorm"),
            )?;
            // SwiGLU MLP: silu(gate(x)) * up(x) -> down
            let gate = b.push(
                OpKind::Linear {
                    in_f: self.d,
                    out_f: self.intermediate,
                    bias: false,
                },
                &[n2],
                &format!("layers.{l}.mlp.gate_proj"),
            )?;
            let act = b.push(OpKind::Silu, &[gate], &format!("layers.{l}.mlp.act"))?;
            let up = b.push(
                OpKind::Linear {
                    in_f: self.d,
                    out_f: self.intermediate,
                    bias: false,
                },
                &[n2],
                &format!("layers.{l}.mlp.up_proj"),
            )?;
            let gated = b.push(OpKind::Mul, &[act, up], &format!("layers.{l}.mlp.mul"))?;
            let down = b.push(
                OpKind::Linear {
                    in_f: self.intermediate,
                    out_f: self.d,
                    bias: false,
                },
                &[gated],
                &format!("layers.{l}.mlp.down_proj"),
            )?;
            h = b.push(OpKind::Add, &[x1, down], &format!("layers.{l}.add_mlp"))?;
        }
        let norm = b.push(OpKind::LlamaRmsNorm { dim: self.d }, &[h], "norm")?;
        let logits = b.push(
            OpKind::Linear {
                in_f: self.d,
                out_f: self.vocab,
                bias: false,
            },
            &[norm],
            "lm_head",
        )?;
        b.push(OpKind::Softmax { dim: 2 }, &[logits], "probs")?;
        Ok(b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_exec::Interpreter;

    #[test]
    fn seven_billion_parameters() {
        let g = LlamaConfig::llama2_7b().build(1).unwrap();
        g.validate().unwrap();
        let p = g.param_count();
        assert!((6_400_000_000..7_200_000_000).contains(&p), "{p}");
    }

    #[test]
    fn table2_operator_shapes() {
        let g = LlamaConfig::llama2_7b().build(1).unwrap();
        // Table 2: SiLU and Mul on [1, 10, 11008]
        assert!(g
            .iter()
            .any(|n| n.op == OpKind::Silu && n.out_shape == [1, 10, 11008]));
        assert!(g
            .iter()
            .any(|n| n.op == OpKind::Mul && n.out_shape == [1, 10, 11008]));
        // Table 2: LlamaRMSNorm on [1, 10, 4096]
        assert!(g
            .iter()
            .any(|n| matches!(n.op, OpKind::LlamaRmsNorm { .. }) && n.out_shape == [1, 10, 4096]));
        // Table 2: Neg from rotate_half on the merged head layout [32, 10, 64]
        assert!(g
            .iter()
            .any(|n| n.op == OpKind::Neg && n.out_shape == [32, 10, 64]));
        // bias-free projections
        assert!(g
            .iter()
            .all(|n| !matches!(n.op, OpKind::Linear { bias: true, .. }) || n.name == "lm_head"));
    }

    #[test]
    fn uses_decomposed_rms_norm() {
        let g = LlamaConfig::llama2_7b().build(1).unwrap();
        let h = g.op_histogram();
        assert_eq!(h["llama_rms_norm"], 2 * 32 + 1);
        assert!(!h.contains_key("rms_norm"));
        assert!(!h.contains_key("layer_norm"));
    }

    #[test]
    fn toy_executes() {
        let g = LlamaConfig::toy().build(2).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        let probs = &t.outputs[0].1;
        assert_eq!(probs.shape(), &[2, 5, 64]);
        assert!(probs.to_vec_f32().unwrap().iter().all(|v| v.is_finite()));
    }
}
