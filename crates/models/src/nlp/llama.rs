//! Llama-2 decoder-only language model (Touvron et al., Table 1's 7 B
//! entry).
//!
//! Reproduces the eager-mode characteristics the paper attributes Llama's
//! GPU profile to: the decomposed `LlamaRMSNorm` (§4.1.4), rotary position
//! embeddings whose `rotate_half` emits the Table 2 `Neg` on
//! `[1, 32, 10, 64]`-like shapes, SiLU-gated MLPs with an element-wise
//! `Mul` on `[1, 10, 11008]`, and bias-free projections.

use ngb_graph::{Graph, GraphBuilder, OpKind};

use crate::common::{self_attention, Attention, Result};

/// Llama-2 configuration.
#[derive(Debug, Clone)]
pub struct LlamaConfig {
    /// Model alias used as the graph name.
    pub name: &'static str,
    /// Vocabulary size (32000).
    pub vocab: usize,
    /// Hidden size.
    pub d: usize,
    /// Gated-MLP intermediate size (11008 for 7B).
    pub intermediate: usize,
    /// Decoder depth.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length profiled (the paper's Table 2 uses 10).
    pub seq: usize,
}

impl LlamaConfig {
    /// Llama-2-7B: 32 × 4096, intermediate 11008.
    pub fn llama2_7b() -> Self {
        LlamaConfig {
            name: "llama2_7b",
            vocab: 32000,
            d: 4096,
            intermediate: 11008,
            layers: 32,
            heads: 32,
            seq: 10,
        }
    }

    /// Executable toy preset.
    pub fn toy() -> Self {
        LlamaConfig {
            name: "llama_toy",
            vocab: 64,
            d: 16,
            intermediate: 40,
            layers: 2,
            heads: 2,
            seq: 5,
        }
    }

    /// Builds the causal LM graph for `batch` sequences.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build(&self, batch: usize) -> Result<Graph> {
        let mut b = GraphBuilder::new(self.name);
        let ids = b.input_ids(&[batch, self.seq], self.vocab);
        let mut h = b.push(
            OpKind::Embedding {
                vocab: self.vocab,
                dim: self.d,
            },
            &[ids],
            "embed_tokens",
        )?;

        for l in 0..self.layers {
            let n1 = b.push(
                OpKind::LlamaRmsNorm { dim: self.d },
                &[h],
                &format!("layers.{l}.input_layernorm"),
            )?;
            let att = self_attention(
                &mut b,
                n1,
                batch,
                self.seq,
                Attention {
                    d: self.d,
                    heads: self.heads,
                    causal: true,
                    gpt2_conv1d: false,
                    bias: false,
                    rotary: true,
                },
                &format!("layers.{l}.self_attn"),
            )?;
            let x1 = b.push(OpKind::Add, &[h, att], &format!("layers.{l}.add_attn"))?;
            let n2 = b.push(
                OpKind::LlamaRmsNorm { dim: self.d },
                &[x1],
                &format!("layers.{l}.post_attention_layernorm"),
            )?;
            // SwiGLU MLP: silu(gate(x)) * up(x) -> down
            let gate = b.push(
                OpKind::Linear {
                    in_f: self.d,
                    out_f: self.intermediate,
                    bias: false,
                },
                &[n2],
                &format!("layers.{l}.mlp.gate_proj"),
            )?;
            let act = b.push(OpKind::Silu, &[gate], &format!("layers.{l}.mlp.act"))?;
            let up = b.push(
                OpKind::Linear {
                    in_f: self.d,
                    out_f: self.intermediate,
                    bias: false,
                },
                &[n2],
                &format!("layers.{l}.mlp.up_proj"),
            )?;
            let gated = b.push(OpKind::Mul, &[act, up], &format!("layers.{l}.mlp.mul"))?;
            let down = b.push(
                OpKind::Linear {
                    in_f: self.intermediate,
                    out_f: self.d,
                    bias: false,
                },
                &[gated],
                &format!("layers.{l}.mlp.down_proj"),
            )?;
            h = b.push(OpKind::Add, &[x1, down], &format!("layers.{l}.add_mlp"))?;
        }
        let norm = b.push(OpKind::LlamaRmsNorm { dim: self.d }, &[h], "norm")?;
        let logits = b.push(
            OpKind::Linear {
                in_f: self.d,
                out_f: self.vocab,
                bias: false,
            },
            &[norm],
            "lm_head",
        )?;
        b.push(OpKind::Softmax { dim: 2 }, &[logits], "probs")?;
        Ok(b.finish())
    }

    /// Builds a **single decode step** against a KV cache of capacity
    /// `past` tokens. Mirrors [`LlamaConfig::build`]'s per-layer operator
    /// stream — separate bias-free q/k/v projections, rotary embedding on
    /// q and the fresh k (the cache stores post-rotary keys, so rotation
    /// happens once per token), SwiGLU MLP — with the same fixed-capacity
    /// cache inputs (`layers.{l}.kv.k_cache` / `v_cache`), additive
    /// `mask` input, and `layers.{l}.kv.k_out` / `v_out` append outputs
    /// as the GPT-2 decode graph. Node names match `build` so weight RNG
    /// streams can be aligned across the two graphs.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build_decode(&self, batch: usize, past: usize) -> Result<Graph> {
        use ngb_graph::NodeId;
        let d = self.d;
        let heads = self.heads;
        let hd = d / heads;
        let mut b = GraphBuilder::new(format!("{}_decode", self.name));
        let ids = b.input_ids(&[batch, 1], self.vocab);
        let mut h = b.push(
            OpKind::Embedding {
                vocab: self.vocab,
                dim: d,
            },
            &[ids],
            "embed_tokens",
        )?;
        let mask = b.input_named(&[1, 1, past + 1], "mask");

        for l in 0..self.layers {
            let name = format!("layers.{l}.self_attn");
            let n1 = b.push(
                OpKind::LlamaRmsNorm { dim: d },
                &[h],
                &format!("layers.{l}.input_layernorm"),
            )?;
            let proj = |b: &mut GraphBuilder, tag: &str| {
                b.push(
                    OpKind::Linear {
                        in_f: d,
                        out_f: d,
                        bias: false,
                    },
                    &[n1],
                    &format!("{name}.{tag}"),
                )
            };
            let q = proj(&mut b, "q")?;
            let k = proj(&mut b, "k")?;
            let v = proj(&mut b, "v")?;
            // [B, 1, D] -> [B*H, 1, hd]
            let to_heads = |b: &mut GraphBuilder, x: NodeId, tag: &str| -> Result<NodeId> {
                let v4 = b.push(
                    OpKind::View {
                        shape: vec![batch, 1, heads, hd],
                    },
                    &[x],
                    &format!("{name}.{tag}.view"),
                )?;
                let p = b.push(
                    OpKind::Permute {
                        perm: vec![0, 2, 1, 3],
                    },
                    &[v4],
                    &format!("{name}.{tag}.permute"),
                )?;
                b.push(
                    OpKind::Reshape {
                        shape: vec![batch * heads, 1, hd],
                    },
                    &[p],
                    &format!("{name}.{tag}.merge"),
                )
            };
            let mut qh = to_heads(&mut b, q, "q")?;
            let mut kh = to_heads(&mut b, k, "k")?;
            let vh = to_heads(&mut b, v, "v")?;
            // rotary embedding (position-independent stand-in, matching
            // `common::self_attention`): rotate_half + two muls + add
            let rotate = |b: &mut GraphBuilder, x: NodeId, tag: &str| -> Result<NodeId> {
                let lo = b.push(
                    OpKind::Slice {
                        dim: 2,
                        start: 0,
                        len: hd / 2,
                    },
                    &[x],
                    &format!("{name}.rot.{tag}.lo"),
                )?;
                let hi = b.push(
                    OpKind::Slice {
                        dim: 2,
                        start: hd / 2,
                        len: hd - hd / 2,
                    },
                    &[x],
                    &format!("{name}.rot.{tag}.hi"),
                )?;
                let neg = b.push(OpKind::Neg, &[hi], &format!("{name}.rot.{tag}.neg"))?;
                let rotated = b.push(
                    OpKind::Cat { dim: 2 },
                    &[neg, lo],
                    &format!("{name}.rot.{tag}.cat"),
                )?;
                let cos_part = b.push(
                    OpKind::MulScalar(0.7),
                    &[x],
                    &format!("{name}.rot.{tag}.cos"),
                )?;
                let sin_part = b.push(
                    OpKind::MulScalar(0.7),
                    &[rotated],
                    &format!("{name}.rot.{tag}.sin"),
                )?;
                b.push(
                    OpKind::Add,
                    &[cos_part, sin_part],
                    &format!("{name}.rot.{tag}.add"),
                )
            };
            qh = rotate(&mut b, qh, "q")?;
            kh = rotate(&mut b, kh, "k")?;
            b.push(OpKind::Contiguous, &[kh], &format!("layers.{l}.kv.k_out"))?;
            b.push(OpKind::Contiguous, &[vh], &format!("layers.{l}.kv.v_out"))?;
            let k_cache = b.input_named(
                &[batch * heads, past, hd],
                &format!("layers.{l}.kv.k_cache"),
            );
            let v_cache = b.input_named(
                &[batch * heads, past, hd],
                &format!("layers.{l}.kv.v_cache"),
            );
            let k_all = b.push(
                OpKind::Cat { dim: 1 },
                &[k_cache, kh],
                &format!("layers.{l}.kv.k_cat"),
            )?;
            let v_all = b.push(
                OpKind::Cat { dim: 1 },
                &[v_cache, vh],
                &format!("layers.{l}.kv.v_cat"),
            )?;
            let kt = b.push(
                OpKind::Transpose { d0: 1, d1: 2 },
                &[k_all],
                &format!("{name}.k_t"),
            )?;
            let scores = b.push(OpKind::Bmm, &[qh, kt], &format!("{name}.scores"))?;
            let scaled = b.push(
                OpKind::DivScalar((hd as f32).sqrt()),
                &[scores],
                &format!("{name}.scale"),
            )?;
            let masked = b.push(OpKind::Add, &[scaled, mask], &format!("{name}.mask"))?;
            let probs = b.push(
                OpKind::Softmax { dim: 2 },
                &[masked],
                &format!("{name}.softmax"),
            )?;
            let ctx = b.push(OpKind::Bmm, &[probs, v_all], &format!("{name}.context"))?;
            let c4 = b.push(
                OpKind::View {
                    shape: vec![batch, heads, 1, hd],
                },
                &[ctx],
                &format!("{name}.ctx.view"),
            )?;
            let cp = b.push(
                OpKind::Permute {
                    perm: vec![0, 2, 1, 3],
                },
                &[c4],
                &format!("{name}.ctx.permute"),
            )?;
            let cc = b.push(OpKind::Contiguous, &[cp], &format!("{name}.ctx.contiguous"))?;
            let merged = b.push(
                OpKind::View {
                    shape: vec![batch, 1, d],
                },
                &[cc],
                &format!("{name}.ctx.merge"),
            )?;
            let att = b.push(
                OpKind::Linear {
                    in_f: d,
                    out_f: d,
                    bias: false,
                },
                &[merged],
                &format!("{name}.proj"),
            )?;
            let x1 = b.push(OpKind::Add, &[h, att], &format!("layers.{l}.add_attn"))?;
            let n2 = b.push(
                OpKind::LlamaRmsNorm { dim: d },
                &[x1],
                &format!("layers.{l}.post_attention_layernorm"),
            )?;
            let gate = b.push(
                OpKind::Linear {
                    in_f: d,
                    out_f: self.intermediate,
                    bias: false,
                },
                &[n2],
                &format!("layers.{l}.mlp.gate_proj"),
            )?;
            let act = b.push(OpKind::Silu, &[gate], &format!("layers.{l}.mlp.act"))?;
            let up = b.push(
                OpKind::Linear {
                    in_f: d,
                    out_f: self.intermediate,
                    bias: false,
                },
                &[n2],
                &format!("layers.{l}.mlp.up_proj"),
            )?;
            let gated = b.push(OpKind::Mul, &[act, up], &format!("layers.{l}.mlp.mul"))?;
            let down = b.push(
                OpKind::Linear {
                    in_f: self.intermediate,
                    out_f: d,
                    bias: false,
                },
                &[gated],
                &format!("layers.{l}.mlp.down_proj"),
            )?;
            h = b.push(OpKind::Add, &[x1, down], &format!("layers.{l}.add_mlp"))?;
        }
        let norm = b.push(OpKind::LlamaRmsNorm { dim: d }, &[h], "norm")?;
        let logits = b.push(
            OpKind::Linear {
                in_f: d,
                out_f: self.vocab,
                bias: false,
            },
            &[norm],
            "lm_head",
        )?;
        b.push(OpKind::Softmax { dim: 2 }, &[logits], "probs")?;
        Ok(b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_exec::Interpreter;

    #[test]
    fn seven_billion_parameters() {
        let g = LlamaConfig::llama2_7b().build(1).unwrap();
        g.validate().unwrap();
        let p = g.param_count();
        assert!((6_400_000_000..7_200_000_000).contains(&p), "{p}");
    }

    #[test]
    fn table2_operator_shapes() {
        let g = LlamaConfig::llama2_7b().build(1).unwrap();
        // Table 2: SiLU and Mul on [1, 10, 11008]
        assert!(g
            .iter()
            .any(|n| n.op == OpKind::Silu && n.out_shape == [1, 10, 11008]));
        assert!(g
            .iter()
            .any(|n| n.op == OpKind::Mul && n.out_shape == [1, 10, 11008]));
        // Table 2: LlamaRMSNorm on [1, 10, 4096]
        assert!(g
            .iter()
            .any(|n| matches!(n.op, OpKind::LlamaRmsNorm { .. }) && n.out_shape == [1, 10, 4096]));
        // Table 2: Neg from rotate_half on the merged head layout [32, 10, 64]
        assert!(g
            .iter()
            .any(|n| n.op == OpKind::Neg && n.out_shape == [32, 10, 64]));
        // bias-free projections
        assert!(g
            .iter()
            .all(|n| !matches!(n.op, OpKind::Linear { bias: true, .. }) || n.name == "lm_head"));
    }

    #[test]
    fn uses_decomposed_rms_norm() {
        let g = LlamaConfig::llama2_7b().build(1).unwrap();
        let h = g.op_histogram();
        assert_eq!(h["llama_rms_norm"], 2 * 32 + 1);
        assert!(!h.contains_key("rms_norm"));
        assert!(!h.contains_key("layer_norm"));
    }

    #[test]
    fn toy_executes() {
        let g = LlamaConfig::toy().build(2).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        let probs = &t.outputs[0].1;
        assert_eq!(probs.shape(), &[2, 5, 64]);
        assert!(probs.to_vec_f32().unwrap().iter().all(|v| v.is_finite()));
    }
}
