//! GPT-2 decoder-only language models (Radford et al.): base, Large, and
//! X-Large variants from Table 1.
//!
//! Faithfully reproduces the Hugging Face eager-mode operator stream the
//! paper profiles: fused-qkv `Conv1D` projections followed by `split`/
//! `view`/`permute` head reshuffles (Table 2's GPT2-XL Memory entries),
//! per-head `bmm` attention with a `TrueDiv` scale and causal mask, and the
//! hand-written `NewGELU` activation that decomposes into many element-wise
//! kernels (§4.1.4).

use ngb_graph::{Graph, GraphBuilder, OpKind};

use crate::common::{mlp, self_attention, Attention, MlpAct, Result};

/// GPT-2 configuration.
#[derive(Debug, Clone)]
pub struct Gpt2Config {
    /// Model alias used as the graph name.
    pub name: &'static str,
    /// Vocabulary size (50257).
    pub vocab: usize,
    /// Hidden size.
    pub d: usize,
    /// Decoder depth.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length profiled (the paper's Table 2 uses 8).
    pub seq: usize,
}

impl Gpt2Config {
    /// GPT-2 base: 117 M parameters, 12 × 768.
    pub fn base() -> Self {
        Gpt2Config {
            name: "gpt2",
            vocab: 50257,
            d: 768,
            layers: 12,
            heads: 12,
            seq: 8,
        }
    }

    /// GPT-2 Large: 762 M parameters, 36 × 1280.
    pub fn large() -> Self {
        Gpt2Config {
            name: "gpt2_large",
            vocab: 50257,
            d: 1280,
            layers: 36,
            heads: 20,
            seq: 8,
        }
    }

    /// GPT-2 X-Large: 1.5 B parameters, 48 × 1600.
    pub fn xl() -> Self {
        Gpt2Config {
            name: "gpt2_xl",
            vocab: 50257,
            d: 1600,
            layers: 48,
            heads: 25,
            seq: 8,
        }
    }

    /// Executable toy preset.
    pub fn toy() -> Self {
        Gpt2Config {
            name: "gpt2_toy",
            vocab: 100,
            d: 16,
            layers: 2,
            heads: 2,
            seq: 6,
        }
    }

    /// Builds the causal LM graph for `batch` sequences.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build(&self, batch: usize) -> Result<Graph> {
        let mut b = GraphBuilder::new(self.name);
        let ids = b.input_ids(&[batch, self.seq], self.vocab);
        let wte = b.push(
            OpKind::Embedding {
                vocab: self.vocab,
                dim: self.d,
            },
            &[ids],
            "wte",
        )?;
        let pos = b.input_named(&[1, self.seq, self.d], "pos");
        let mut h = b.push(OpKind::Add, &[wte, pos], "wpe.add")?;

        for l in 0..self.layers {
            let ln1 = b.push(
                OpKind::LayerNorm { dim: self.d },
                &[h],
                &format!("h.{l}.ln_1"),
            )?;
            let att = self_attention(
                &mut b,
                ln1,
                batch,
                self.seq,
                Attention {
                    d: self.d,
                    heads: self.heads,
                    causal: true,
                    gpt2_conv1d: true,
                    bias: true,
                    rotary: false,
                },
                &format!("h.{l}.attn"),
            )?;
            let x1 = b.push(OpKind::Add, &[h, att], &format!("h.{l}.add_attn"))?;
            let ln2 = b.push(
                OpKind::LayerNorm { dim: self.d },
                &[x1],
                &format!("h.{l}.ln_2"),
            )?;
            // Hugging Face GPT-2 MLP: Conv1D + NewGELU + Conv1D
            let ff = mlp(
                &mut b,
                ln2,
                self.d,
                4 * self.d,
                MlpAct::NewGelu,
                true,
                &format!("h.{l}.mlp"),
            )?;
            h = b.push(OpKind::Add, &[x1, ff], &format!("h.{l}.add_mlp"))?;
        }
        let lnf = b.push(OpKind::LayerNorm { dim: self.d }, &[h], "ln_f")?;
        let logits = b.push(
            OpKind::Linear {
                in_f: self.d,
                out_f: self.vocab,
                bias: false,
            },
            &[lnf],
            "lm_head",
        )?;
        b.push(OpKind::Softmax { dim: 2 }, &[logits], "probs")?;
        Ok(b.finish())
    }
}

impl Gpt2Config {
    /// Builds a **single decode step** against a KV cache of capacity
    /// `past` tokens — the autoregressive-generation workload. Each layer
    /// projects one new token, concatenates it onto the cached
    /// keys/values (`Cat`, a real memory copy), and attends over
    /// `past + 1` slots. At sequence length 1 every GEMM degenerates to a
    /// matrix–vector product, so the non-GEMM overheads the paper
    /// measures dominate even harder than in the prefill graphs.
    ///
    /// The graph is **built once and re-executed per token**: the cache
    /// tensors are fixed-capacity inputs (`h.{l}.kv.k_cache` /
    /// `h.{l}.kv.v_cache`, `[B*H, past, hd]`), an additive `mask` input
    /// (`[1, 1, past + 1]`, `0.0` on live slots / `-1e9` on empty ones)
    /// selects how much of the capacity is live at the current position,
    /// and each layer's fresh K/V row is exposed as a `h.{l}.kv.k_out` /
    /// `v_out` output for the driver to append. The current token always
    /// occupies the **last** attention slot (`Cat` places it after the
    /// cache), which is what makes a step's softmax lane fold
    /// bit-identical to row `t` of the full-sequence graph.
    ///
    /// # Errors
    ///
    /// Fails only on internally inconsistent configurations.
    pub fn build_decode(&self, batch: usize, past: usize) -> Result<Graph> {
        use ngb_graph::NodeId;
        let d = self.d;
        let heads = self.heads;
        let hd = d / heads;
        let mut b = GraphBuilder::new(format!("{}_decode", self.name));
        let ids = b.input_ids(&[batch, 1], self.vocab);
        let wte = b.push(
            OpKind::Embedding {
                vocab: self.vocab,
                dim: d,
            },
            &[ids],
            "wte",
        )?;
        let pos = b.input_named(&[1, 1, d], "pos");
        let mask = b.input_named(&[1, 1, past + 1], "mask");
        let mut h = b.push(OpKind::Add, &[wte, pos], "wpe.add")?;

        for l in 0..self.layers {
            let ln1 = b.push(OpKind::LayerNorm { dim: d }, &[h], &format!("h.{l}.ln_1"))?;
            let qkv = b.push(
                OpKind::Conv1dGpt2 {
                    in_f: d,
                    out_f: 3 * d,
                },
                &[ln1],
                &format!("h.{l}.attn.c_attn"),
            )?;
            let slice = |b: &mut GraphBuilder, start: usize, tag: &str| {
                b.push(
                    OpKind::Slice {
                        dim: 2,
                        start,
                        len: d,
                    },
                    &[qkv],
                    &format!("h.{l}.attn.split.{tag}"),
                )
            };
            let q = slice(&mut b, 0, "q")?;
            let k_new = slice(&mut b, d, "k")?;
            let v_new = slice(&mut b, 2 * d, "v")?;
            // merge heads: [B, 1, D] -> [B*H, 1, hd]
            let to_heads = |b: &mut GraphBuilder, x: NodeId, tag: &str| -> Result<NodeId> {
                let v4 = b.push(
                    OpKind::View {
                        shape: vec![batch, 1, heads, hd],
                    },
                    &[x],
                    &format!("h.{l}.attn.{tag}.view"),
                )?;
                let pm = b.push(
                    OpKind::Permute {
                        perm: vec![0, 2, 1, 3],
                    },
                    &[v4],
                    &format!("h.{l}.attn.{tag}.permute"),
                )?;
                b.push(
                    OpKind::Reshape {
                        shape: vec![batch * heads, 1, hd],
                    },
                    &[pm],
                    &format!("h.{l}.attn.{tag}.merge"),
                )
            };
            let qh = to_heads(&mut b, q, "q")?;
            let kh = to_heads(&mut b, k_new, "k")?;
            let vh = to_heads(&mut b, v_new, "v")?;
            // fresh K/V rows surface as outputs so the decode driver can
            // append them to the cache without re-running anything
            b.push(OpKind::Contiguous, &[kh], &format!("h.{l}.kv.k_out"))?;
            b.push(OpKind::Contiguous, &[vh], &format!("h.{l}.kv.v_out"))?;
            // KV cache concat: [B*H, past, hd] ++ [B*H, 1, hd]
            let k_cache = b.input_named(&[batch * heads, past, hd], &format!("h.{l}.kv.k_cache"));
            let v_cache = b.input_named(&[batch * heads, past, hd], &format!("h.{l}.kv.v_cache"));
            let k_all = b.push(
                OpKind::Cat { dim: 1 },
                &[k_cache, kh],
                &format!("h.{l}.kv.k_cat"),
            )?;
            let v_all = b.push(
                OpKind::Cat { dim: 1 },
                &[v_cache, vh],
                &format!("h.{l}.kv.v_cat"),
            )?;
            let kt = b.push(
                OpKind::Transpose { d0: 1, d1: 2 },
                &[k_all],
                &format!("h.{l}.attn.k_t"),
            )?;
            let scores = b.push(OpKind::Bmm, &[qh, kt], &format!("h.{l}.attn.scores"))?;
            let scaled = b.push(
                OpKind::DivScalar((hd as f32).sqrt()),
                &[scores],
                &format!("h.{l}.attn.scale"),
            )?;
            // the additive mask hides the cache slots that are not yet
            // live (and leaves the final self slot open)
            let masked = b.push(OpKind::Add, &[scaled, mask], &format!("h.{l}.attn.mask"))?;
            let probs = b.push(
                OpKind::Softmax { dim: 2 },
                &[masked],
                &format!("h.{l}.attn.softmax"),
            )?;
            let ctx = b.push(OpKind::Bmm, &[probs, v_all], &format!("h.{l}.attn.context"))?;
            let cv = b.push(
                OpKind::View {
                    shape: vec![batch, heads, 1, hd],
                },
                &[ctx],
                &format!("h.{l}.attn.ctx.view"),
            )?;
            let cp = b.push(
                OpKind::Permute {
                    perm: vec![0, 2, 1, 3],
                },
                &[cv],
                &format!("h.{l}.attn.ctx.permute"),
            )?;
            let cc = b.push(
                OpKind::Contiguous,
                &[cp],
                &format!("h.{l}.attn.ctx.contiguous"),
            )?;
            let merged = b.push(
                OpKind::View {
                    shape: vec![batch, 1, d],
                },
                &[cc],
                &format!("h.{l}.attn.ctx.merge"),
            )?;
            let att = b.push(
                OpKind::Conv1dGpt2 { in_f: d, out_f: d },
                &[merged],
                &format!("h.{l}.attn.c_proj"),
            )?;
            let x1 = b.push(OpKind::Add, &[h, att], &format!("h.{l}.add_attn"))?;
            let ln2 = b.push(OpKind::LayerNorm { dim: d }, &[x1], &format!("h.{l}.ln_2"))?;
            let fc = b.push(
                OpKind::Conv1dGpt2 {
                    in_f: d,
                    out_f: 4 * d,
                },
                &[ln2],
                &format!("h.{l}.mlp.c_fc"),
            )?;
            let act = b.push(OpKind::NewGelu, &[fc], &format!("h.{l}.mlp.act"))?;
            let proj = b.push(
                OpKind::Conv1dGpt2 {
                    in_f: 4 * d,
                    out_f: d,
                },
                &[act],
                &format!("h.{l}.mlp.c_proj"),
            )?;
            h = b.push(OpKind::Add, &[x1, proj], &format!("h.{l}.add_mlp"))?;
        }
        let lnf = b.push(OpKind::LayerNorm { dim: d }, &[h], "ln_f")?;
        let logits = b.push(
            OpKind::Linear {
                in_f: d,
                out_f: self.vocab,
                bias: false,
            },
            &[lnf],
            "lm_head",
        )?;
        b.push(OpKind::Softmax { dim: 2 }, &[logits], "probs")?;
        Ok(b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_exec::Interpreter;
    use ngb_graph::NonGemmGroup;

    #[test]
    fn published_parameter_counts() {
        // lm_head shares wte in HF, so compare against ~model+vocab*d
        let base = Gpt2Config::base().build(1).unwrap().param_count();
        assert!((120_000_000..210_000_000).contains(&base), "base: {base}");
        let xl = Gpt2Config::xl().build(1).unwrap().param_count();
        assert!((1_400_000_000..1_800_000_000).contains(&xl), "xl: {xl}");
    }

    #[test]
    fn table2_operator_shapes_gpt2_xl() {
        let g = Gpt2Config::xl().build(1).unwrap();
        g.validate().unwrap();
        // Table 2: NewGELU on [1, 8, 6400]
        assert!(g
            .iter()
            .any(|n| n.op == OpKind::NewGelu && n.out_shape == [1, 8, 6400]));
        // Table 2: Split/View on [1, 8, 4800] / [1, 8, 1600]
        assert!(g
            .iter()
            .any(|n| matches!(n.op, OpKind::Slice { .. }) && n.out_shape == [1, 8, 1600]));
        // Table 2: Permute to [1, 8, 25, 64] head layout (then merged)
        assert!(g
            .iter()
            .any(|n| matches!(n.op, OpKind::Permute { .. }) && n.out_shape == [1, 25, 8, 64]));
        // Table 2: TrueDiv on [1, 25, 8, 8] attention scores — ours works on
        // the merged [25, 8, 8] batched layout
        assert!(g
            .iter()
            .any(|n| matches!(n.op, OpKind::DivScalar(_)) && n.out_shape == [25, 8, 8]));
    }

    #[test]
    fn memory_ops_dominate_the_op_count() {
        // §4.2: memory operators are ~80% of GPT2-XL's operator count
        let g = Gpt2Config::xl().build(1).unwrap();
        let mem = g.group_count(NonGemmGroup::Memory) as f64;
        let frac = mem / g.len() as f64;
        assert!(frac > 0.35, "memory fraction {frac}");
    }

    #[test]
    fn toy_executes_to_distribution() {
        let g = Gpt2Config::toy().build(1).unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        let probs = &t.outputs[0].1;
        assert_eq!(probs.shape(), &[1, 6, 100]);
        let sums = probs.reduce_dim(2, false, 0.0, |a, v| a + v).unwrap();
        for s in sums.to_vec_f32().unwrap() {
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn decode_step_builds_and_executes() {
        let cfg = Gpt2Config::toy();
        let g = cfg.build_decode(1, 4).unwrap();
        g.validate().unwrap();
        // one Cat per cached tensor per layer
        assert_eq!(g.op_histogram()["cat"], 2 * cfg.layers);
        let t = ngb_exec::Interpreter::default().run(&g).unwrap();
        let probs = t
            .outputs
            .iter()
            .find(|(_, v)| v.shape() == [1, 1, 100])
            .unwrap();
        let s: f32 = probs.1.to_vec_f32().unwrap().iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn decode_is_more_non_gemm_bound_than_prefill() {
        // at seq 1, every GEMM is a matrix-vector product: generation is
        // even deeper into the non-GEMM regime than prefill
        let cfg = Gpt2Config::base();
        let prefill = cfg.build(1).unwrap();
        let decode = cfg.build_decode(1, 128).unwrap();
        let platform = ngb_platform::Platform::data_center();
        let p =
            ngb_profiler::profile_analytic(&prefill, &platform, ngb_runtime::Flow::Eager, true, 1);
        let d =
            ngb_profiler::profile_analytic(&decode, &platform, ngb_runtime::Flow::Eager, true, 1);
        assert!(
            d.breakdown().non_gemm_frac() >= p.breakdown().non_gemm_frac() - 0.05,
            "decode {:.2} vs prefill {:.2}",
            d.breakdown().non_gemm_frac(),
            p.breakdown().non_gemm_frac()
        );
    }

    #[test]
    fn uses_conv1d_not_linear_in_blocks() {
        let g = Gpt2Config::base().build(1).unwrap();
        let h = g.op_histogram();
        // 4 Conv1D per block (qkv, proj, fc, proj) + lm_head linear
        assert_eq!(h["conv1d_gpt2"], 4 * 12);
        assert_eq!(h["linear"], 1);
        assert_eq!(h["new_gelu"], 12);
        assert_eq!(h["causal_mask"], 12);
    }
}
