//! # ngb-models
//!
//! The NonGEMM Bench model registry: operator-graph builders for the 18
//! models of the paper's Table 1, spanning image classification, object
//! detection, segmentation, and language modeling.
//!
//! Each model family is built from the same primitive [`ngb_graph::OpKind`]
//! vocabulary the paper profiles — including the *custom* operator variants
//! the paper calls out (Hugging Face `NewGELU` in GPT-2, `LlamaRMSNorm` in
//! Llama-2, `FrozenBatchNorm2d` in torchvision detection models).
//!
//! Two scales are provided:
//!
//! * [`Scale::Full`] — the paper's configurations (ViT-H/14's 632 M
//!   parameters, GPT2-XL's 48 layers, Llama-2-7B's 32 × 4096), used with the
//!   analytic platform models, and
//! * [`Scale::Tiny`] — structurally identical graphs at toy dimensions that
//!   execute in milliseconds on the host, used by tests, examples, and the
//!   measured profiling mode.
//!
//! # Examples
//!
//! ```
//! use ngb_models::{ModelId, Scale};
//!
//! let graph = ModelId::VitBase16.build(1, Scale::Tiny)?;
//! assert!(graph.validate().is_ok());
//! # Ok::<(), ngb_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]

mod common;
pub mod decode;
mod nlp;
mod registry;
mod vision;

pub use decode::{align_decode_seeds, decode_bundle, DecodeBundle};
pub use registry::{ModelId, ModelRegistry, ModelSpec, Scale, Task};

pub use nlp::{bert, gpt2, llama};
pub use vision::{detection, mobilenet, resnet, segmentation, swin, vit};
