//! Shared sub-network builders: attention blocks, MLPs, conv-bn-act stacks.

use ngb_graph::{GraphBuilder, NodeId, OpKind};
use ngb_tensor::TensorError;

pub(crate) type Result<T> = std::result::Result<T, TensorError>;

/// Which normalization flavor a CNN block uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CnnNorm {
    /// Library BatchNorm2d (classification backbones).
    Batch,
    /// Torchvision detection models' custom FrozenBatchNorm2d.
    Frozen,
}

impl CnnNorm {
    fn op(self, c: usize) -> OpKind {
        match self {
            CnnNorm::Batch => OpKind::BatchNorm2d { c },
            CnnNorm::Frozen => OpKind::FrozenBatchNorm2d { c },
        }
    }
}

/// conv → norm → optional ReLU.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_norm_act(
    b: &mut GraphBuilder,
    x: NodeId,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    norm: CnnNorm,
    relu: bool,
    name: &str,
) -> Result<NodeId> {
    let c = b.push(
        OpKind::Conv2d {
            in_c,
            out_c,
            kernel,
            stride,
            padding,
            groups: 1,
            bias: false,
        },
        &[x],
        &format!("{name}.conv"),
    )?;
    let n = b.push(norm.op(out_c), &[c], &format!("{name}.bn"))?;
    if relu {
        b.push(OpKind::Relu, &[n], &format!("{name}.relu"))
    } else {
        Ok(n)
    }
}

/// ResNet bottleneck block (1×1 reduce, 3×3, 1×1 expand, residual add).
#[allow(clippy::too_many_arguments)]
pub(crate) fn bottleneck(
    b: &mut GraphBuilder,
    x: NodeId,
    in_c: usize,
    mid_c: usize,
    out_c: usize,
    stride: usize,
    norm: CnnNorm,
    name: &str,
) -> Result<NodeId> {
    let h = conv_norm_act(b, x, in_c, mid_c, 1, 1, 0, norm, true, &format!("{name}.0"))?;
    let h = conv_norm_act(
        b,
        h,
        mid_c,
        mid_c,
        3,
        stride,
        1,
        norm,
        true,
        &format!("{name}.1"),
    )?;
    let h = conv_norm_act(
        b,
        h,
        mid_c,
        out_c,
        1,
        1,
        0,
        norm,
        false,
        &format!("{name}.2"),
    )?;
    let shortcut = if in_c != out_c || stride != 1 {
        conv_norm_act(
            b,
            x,
            in_c,
            out_c,
            1,
            stride,
            0,
            norm,
            false,
            &format!("{name}.down"),
        )?
    } else {
        x
    };
    let s = b.push(OpKind::Add, &[h, shortcut], &format!("{name}.add"))?;
    b.push(OpKind::Relu, &[s], &format!("{name}.out"))
}

/// Configuration of one multi-head attention block over `[B, T, D]`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Attention {
    /// Hidden size.
    pub d: usize,
    /// Number of heads.
    pub heads: usize,
    /// Whether to apply a causal mask before the softmax.
    pub causal: bool,
    /// Use GPT-2 style fused-qkv `Conv1D` projections instead of separate
    /// `Linear` q/k/v.
    pub gpt2_conv1d: bool,
    /// Whether projections carry a bias (Llama: false).
    pub bias: bool,
    /// Insert the rotary-embedding arithmetic (Llama).
    pub rotary: bool,
}

/// Builds a multi-head self-attention block; returns the output `[B, T, D]`.
///
/// Reproduces the memory-operator choreography of Hugging Face attention:
/// qkv projection(s), `view`/`permute` into heads, scaled `bmm`, optional
/// causal mask, `softmax`, `bmm`, `permute`/`contiguous`/`view` back, and
/// the output projection.
pub(crate) fn self_attention(
    b: &mut GraphBuilder,
    x: NodeId,
    batch: usize,
    t: usize,
    cfg: Attention,
    name: &str,
) -> Result<NodeId> {
    let Attention {
        d,
        heads,
        causal,
        gpt2_conv1d,
        bias,
        rotary,
    } = cfg;
    let hd = d / heads;
    let scale = 1.0 / (hd as f32).sqrt();

    let (q, k, v) = if gpt2_conv1d {
        // fused qkv then split (GPT-2)
        let qkv = b.push(
            OpKind::Conv1dGpt2 {
                in_f: d,
                out_f: 3 * d,
            },
            &[x],
            &format!("{name}.c_attn"),
        )?;
        let q = b.push(
            OpKind::Slice {
                dim: 2,
                start: 0,
                len: d,
            },
            &[qkv],
            &format!("{name}.split.q"),
        )?;
        let k = b.push(
            OpKind::Slice {
                dim: 2,
                start: d,
                len: d,
            },
            &[qkv],
            &format!("{name}.split.k"),
        )?;
        let v = b.push(
            OpKind::Slice {
                dim: 2,
                start: 2 * d,
                len: d,
            },
            &[qkv],
            &format!("{name}.split.v"),
        )?;
        (q, k, v)
    } else {
        let q = b.push(
            OpKind::Linear {
                in_f: d,
                out_f: d,
                bias,
            },
            &[x],
            &format!("{name}.q"),
        )?;
        let k = b.push(
            OpKind::Linear {
                in_f: d,
                out_f: d,
                bias,
            },
            &[x],
            &format!("{name}.k"),
        )?;
        let v = b.push(
            OpKind::Linear {
                in_f: d,
                out_f: d,
                bias,
            },
            &[x],
            &format!("{name}.v"),
        )?;
        (q, k, v)
    };

    // [B, T, D] -> [B*H, T, hd]
    let to_heads = |b: &mut GraphBuilder, h: NodeId, tag: &str| -> Result<NodeId> {
        let v4 = b.push(
            OpKind::View {
                shape: vec![batch, t, heads, hd],
            },
            &[h],
            &format!("{name}.{tag}.view"),
        )?;
        let p = b.push(
            OpKind::Permute {
                perm: vec![0, 2, 1, 3],
            },
            &[v4],
            &format!("{name}.{tag}.permute"),
        )?;
        // cuBLAS consumes the strided head layout directly (HF does not
        // call .contiguous() here), so merging is a reshape
        b.push(
            OpKind::Reshape {
                shape: vec![batch * heads, t, hd],
            },
            &[p],
            &format!("{name}.{tag}.merge"),
        )
    };
    let mut qh = to_heads(b, q, "q")?;
    let mut kh = to_heads(b, k, "k")?;
    let vh = to_heads(b, v, "v")?;

    if rotary {
        // Llama rotary embedding: rotate_half uses slice + neg + cat, then
        // two muls and an add per q/k (Table 2's `Neg` entry).
        let rotate = |b: &mut GraphBuilder, h: NodeId, tag: &str| -> Result<NodeId> {
            let lo = b.push(
                OpKind::Slice {
                    dim: 2,
                    start: 0,
                    len: hd / 2,
                },
                &[h],
                &format!("{name}.rot.{tag}.lo"),
            )?;
            let hi = b.push(
                OpKind::Slice {
                    dim: 2,
                    start: hd / 2,
                    len: hd - hd / 2,
                },
                &[h],
                &format!("{name}.rot.{tag}.hi"),
            )?;
            let neg = b.push(OpKind::Neg, &[hi], &format!("{name}.rot.{tag}.neg"))?;
            let rotated = b.push(
                OpKind::Cat { dim: 2 },
                &[neg, lo],
                &format!("{name}.rot.{tag}.cat"),
            )?;
            let cos_part = b.push(
                OpKind::MulScalar(0.7),
                &[h],
                &format!("{name}.rot.{tag}.cos"),
            )?;
            let sin_part = b.push(
                OpKind::MulScalar(0.7),
                &[rotated],
                &format!("{name}.rot.{tag}.sin"),
            )?;
            b.push(
                OpKind::Add,
                &[cos_part, sin_part],
                &format!("{name}.rot.{tag}.add"),
            )
        };
        qh = rotate(b, qh, "q")?;
        kh = rotate(b, kh, "k")?;
    }

    let kt = b.push(
        OpKind::Transpose { d0: 1, d1: 2 },
        &[kh],
        &format!("{name}.k_t"),
    )?;
    let scores = b.push(OpKind::Bmm, &[qh, kt], &format!("{name}.scores"))?;
    let scaled = b.push(
        OpKind::DivScalar(1.0 / scale),
        &[scores],
        &format!("{name}.scale"),
    )?;
    let masked = if causal {
        b.push(OpKind::CausalMask, &[scaled], &format!("{name}.mask"))?
    } else {
        scaled
    };
    let probs = b.push(
        OpKind::Softmax { dim: 2 },
        &[masked],
        &format!("{name}.softmax"),
    )?;
    let ctx = b.push(OpKind::Bmm, &[probs, vh], &format!("{name}.context"))?;

    // [B*H, T, hd] -> [B, T, D]
    let c4 = b.push(
        OpKind::View {
            shape: vec![batch, heads, t, hd],
        },
        &[ctx],
        &format!("{name}.ctx.view"),
    )?;
    let cp = b.push(
        OpKind::Permute {
            perm: vec![0, 2, 1, 3],
        },
        &[c4],
        &format!("{name}.ctx.permute"),
    )?;
    let cc = b.push(OpKind::Contiguous, &[cp], &format!("{name}.ctx.contiguous"))?;
    let merged = b.push(
        OpKind::View {
            shape: vec![batch, t, d],
        },
        &[cc],
        &format!("{name}.ctx.merge"),
    )?;

    if gpt2_conv1d {
        b.push(
            OpKind::Conv1dGpt2 { in_f: d, out_f: d },
            &[merged],
            &format!("{name}.c_proj"),
        )
    } else {
        b.push(
            OpKind::Linear {
                in_f: d,
                out_f: d,
                bias,
            },
            &[merged],
            &format!("{name}.proj"),
        )
    }
}

/// Builds a multi-head cross-attention block: queries `[B, Tq, D]` attend
/// to a memory `[B, Tk, D]` (DETR decoder, SegFormer's spatially-reduced
/// attention, MaskFormer decoder).
#[allow(clippy::too_many_arguments)]
pub(crate) fn cross_attention(
    b: &mut GraphBuilder,
    q_in: NodeId,
    kv_in: NodeId,
    batch: usize,
    tq: usize,
    tk: usize,
    d: usize,
    heads: usize,
    name: &str,
) -> Result<NodeId> {
    let hd = d / heads;
    let q = b.push(
        OpKind::Linear {
            in_f: d,
            out_f: d,
            bias: true,
        },
        &[q_in],
        &format!("{name}.q"),
    )?;
    let k = b.push(
        OpKind::Linear {
            in_f: d,
            out_f: d,
            bias: true,
        },
        &[kv_in],
        &format!("{name}.k"),
    )?;
    let v = b.push(
        OpKind::Linear {
            in_f: d,
            out_f: d,
            bias: true,
        },
        &[kv_in],
        &format!("{name}.v"),
    )?;
    let to_heads = |b: &mut GraphBuilder, h: NodeId, t: usize, tag: &str| -> Result<NodeId> {
        let v4 = b.push(
            OpKind::View {
                shape: vec![batch, t, heads, hd],
            },
            &[h],
            &format!("{name}.{tag}.view"),
        )?;
        let p = b.push(
            OpKind::Permute {
                perm: vec![0, 2, 1, 3],
            },
            &[v4],
            &format!("{name}.{tag}.permute"),
        )?;
        b.push(
            OpKind::Reshape {
                shape: vec![batch * heads, t, hd],
            },
            &[p],
            &format!("{name}.{tag}.merge"),
        )
    };
    let qh = to_heads(b, q, tq, "q")?;
    let kh = to_heads(b, k, tk, "k")?;
    let vh = to_heads(b, v, tk, "v")?;
    let kt = b.push(
        OpKind::Transpose { d0: 1, d1: 2 },
        &[kh],
        &format!("{name}.k_t"),
    )?;
    let scores = b.push(OpKind::Bmm, &[qh, kt], &format!("{name}.scores"))?;
    let scaled = b.push(
        OpKind::DivScalar((hd as f32).sqrt()),
        &[scores],
        &format!("{name}.scale"),
    )?;
    let probs = b.push(
        OpKind::Softmax { dim: 2 },
        &[scaled],
        &format!("{name}.softmax"),
    )?;
    let ctx = b.push(OpKind::Bmm, &[probs, vh], &format!("{name}.context"))?;
    let c4 = b.push(
        OpKind::View {
            shape: vec![batch, heads, tq, hd],
        },
        &[ctx],
        &format!("{name}.ctx.view"),
    )?;
    let cp = b.push(
        OpKind::Permute {
            perm: vec![0, 2, 1, 3],
        },
        &[c4],
        &format!("{name}.ctx.permute"),
    )?;
    let cc = b.push(OpKind::Contiguous, &[cp], &format!("{name}.ctx.contiguous"))?;
    let merged = b.push(
        OpKind::View {
            shape: vec![batch, tq, d],
        },
        &[cc],
        &format!("{name}.ctx.merge"),
    )?;
    b.push(
        OpKind::Linear {
            in_f: d,
            out_f: d,
            bias: true,
        },
        &[merged],
        &format!("{name}.proj"),
    )
}

/// Which activation a transformer MLP uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MlpAct {
    /// Fused exact GELU (ViT, BERT).
    Gelu,
    /// Hugging Face's decomposed NewGELU (GPT-2).
    NewGelu,
    /// ReLU (DETR transformer).
    Relu,
}

impl MlpAct {
    fn op(self) -> OpKind {
        match self {
            MlpAct::Gelu => OpKind::Gelu,
            MlpAct::NewGelu => OpKind::NewGelu,
            MlpAct::Relu => OpKind::Relu,
        }
    }
}

/// Two-layer transformer MLP `D -> hidden -> D`.
pub(crate) fn mlp(
    b: &mut GraphBuilder,
    x: NodeId,
    d: usize,
    hidden: usize,
    act: MlpAct,
    gpt2_conv1d: bool,
    name: &str,
) -> Result<NodeId> {
    let up = if gpt2_conv1d {
        b.push(
            OpKind::Conv1dGpt2 {
                in_f: d,
                out_f: hidden,
            },
            &[x],
            &format!("{name}.c_fc"),
        )?
    } else {
        b.push(
            OpKind::Linear {
                in_f: d,
                out_f: hidden,
                bias: true,
            },
            &[x],
            &format!("{name}.fc1"),
        )?
    };
    let a = b.push(act.op(), &[up], &format!("{name}.act"))?;
    if gpt2_conv1d {
        b.push(
            OpKind::Conv1dGpt2 {
                in_f: hidden,
                out_f: d,
            },
            &[a],
            &format!("{name}.c_proj"),
        )
    } else {
        b.push(
            OpKind::Linear {
                in_f: hidden,
                out_f: d,
                bias: true,
            },
            &[a],
            &format!("{name}.fc2"),
        )
    }
}

/// Pre-LayerNorm transformer encoder block (ViT/Swin style):
/// `x + attn(ln(x))` then `x + mlp(ln(x))`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pre_ln_block(
    b: &mut GraphBuilder,
    x: NodeId,
    batch: usize,
    t: usize,
    d: usize,
    heads: usize,
    mlp_hidden: usize,
    name: &str,
) -> Result<NodeId> {
    let ln1 = b.push(OpKind::LayerNorm { dim: d }, &[x], &format!("{name}.ln1"))?;
    let att = self_attention(
        b,
        ln1,
        batch,
        t,
        Attention {
            d,
            heads,
            causal: false,
            gpt2_conv1d: false,
            bias: true,
            rotary: false,
        },
        &format!("{name}.attn"),
    )?;
    let x1 = b.push(OpKind::Add, &[x, att], &format!("{name}.add1"))?;
    let ln2 = b.push(OpKind::LayerNorm { dim: d }, &[x1], &format!("{name}.ln2"))?;
    let ff = mlp(
        b,
        ln2,
        d,
        mlp_hidden,
        MlpAct::Gelu,
        false,
        &format!("{name}.mlp"),
    )?;
    b.push(OpKind::Add, &[x1, ff], &format!("{name}.add2"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_exec::Interpreter;

    #[test]
    fn attention_block_shapes_and_execution() {
        let mut b = GraphBuilder::new("attn_test");
        let x = b.input(&[2, 5, 16]);
        let out = self_attention(
            &mut b,
            x,
            2,
            5,
            Attention {
                d: 16,
                heads: 4,
                causal: true,
                gpt2_conv1d: true,
                bias: true,
                rotary: false,
            },
            "blk",
        )
        .unwrap();
        assert_eq!(b.shape(out), &[2, 5, 16]);
        let g = b.finish();
        g.validate().unwrap();
        let t = Interpreter::default().run(&g).unwrap();
        assert!(t.outputs[0]
            .1
            .to_vec_f32()
            .unwrap()
            .iter()
            .all(|v| v.is_finite()));
    }

    #[test]
    fn rotary_attention_builds() {
        let mut b = GraphBuilder::new("rot");
        let x = b.input(&[1, 4, 8]);
        let out = self_attention(
            &mut b,
            x,
            1,
            4,
            Attention {
                d: 8,
                heads: 2,
                causal: true,
                gpt2_conv1d: false,
                bias: false,
                rotary: true,
            },
            "blk",
        )
        .unwrap();
        assert_eq!(b.shape(out), &[1, 4, 8]);
        let g = b.finish();
        // rotary inserts a Neg (the Table 2 Llama entry)
        assert!(g.iter().any(|n| n.op == OpKind::Neg));
        Interpreter::default().run(&g).unwrap();
    }

    #[test]
    fn bottleneck_downsamples() {
        let mut b = GraphBuilder::new("bn");
        let x = b.input(&[1, 8, 8, 8]);
        let out = bottleneck(&mut b, x, 8, 4, 16, 2, CnnNorm::Batch, "layer").unwrap();
        assert_eq!(b.shape(out), &[1, 16, 4, 4]);
        Interpreter::default().run(&b.finish()).unwrap();
    }

    #[test]
    fn pre_ln_block_roundtrips_shape() {
        let mut b = GraphBuilder::new("blk");
        let x = b.input(&[1, 6, 12]);
        let out = pre_ln_block(&mut b, x, 1, 6, 12, 3, 24, "enc0").unwrap();
        assert_eq!(b.shape(out), &[1, 6, 12]);
        let g = b.finish();
        assert!(g.iter().any(|n| n.op == OpKind::Gelu));
        Interpreter::default().run(&g).unwrap();
    }
}
