//! The NonGEMM Bench model registry (paper Figure 4, Table 1), including
//! user-pluggable custom models ("Plug Model & Profile", Table 5).

use ngb_graph::Graph;
use ngb_tensor::TensorError;

use crate::nlp::{bert::BertConfig, gpt2::Gpt2Config, llama::LlamaConfig};
use crate::vision::detection::{DetrConfig, RcnnConfig};
use crate::vision::mobilenet::MobileNetV2Config;
use crate::vision::resnet::ResNet50Config;
use crate::vision::segmentation::{MaskformerConfig, SegformerConfig};
use crate::vision::swin::SwinConfig;
use crate::vision::vit::VitConfig;

/// The four task domains of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Task {
    /// ImageNet-style classification.
    ImageClassification,
    /// COCO-style detection.
    ObjectDetection,
    /// COCO/ADE-style segmentation.
    Segmentation,
    /// Causal or masked language modeling.
    LanguageModel,
}

impl Task {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Task::ImageClassification => "Image Classification",
            Task::ObjectDetection => "Object Detection",
            Task::Segmentation => "Segmentation",
            Task::LanguageModel => "Language Models",
        }
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which configuration scale to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// The paper's published configuration (graphs are analyzed
    /// analytically; the largest also execute, just slowly).
    #[default]
    Full,
    /// Structurally identical toy configuration that executes in
    /// milliseconds on the host.
    Tiny,
}

impl Scale {
    /// Stable lowercase name (`"full"` / `"tiny"`), used as a baseline
    /// key by `ngb-regress` — changing these strings invalidates every
    /// committed baseline file.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Tiny => "tiny",
        }
    }

    /// Inverse of [`Scale::name`].
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "full" => Some(Scale::Full),
            "tiny" => Some(Scale::Tiny),
            _ => None,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The 18 models of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ModelId {
    ResNet50,
    MobileNetV2,
    VitBase16,
    VitLarge16,
    VitHuge14,
    SwinTiny,
    SwinSmall,
    SwinBase,
    FasterRcnn,
    MaskRcnn,
    Detr,
    Maskformer,
    Segformer,
    Gpt2,
    Gpt2Large,
    Gpt2Xl,
    Llama2_7b,
    Bert,
}

/// Static description of a registry entry (one row of Table 1).
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Model id.
    pub id: ModelId,
    /// Short alias used in figures (Table 4's "Model Alias" column).
    pub alias: &'static str,
    /// Task domain.
    pub task: Task,
    /// Parameter count reported in Table 1 (0 when the paper leaves it
    /// blank, as for Llama-2-7B's "7B").
    pub params_reported: usize,
    /// Dataset the paper evaluates on.
    pub dataset: &'static str,
}

impl ModelId {
    /// All 18 models in Table 1 order.
    pub fn all() -> &'static [ModelId] {
        use ModelId::*;
        &[
            ResNet50,
            MobileNetV2,
            VitLarge16,
            VitHuge14,
            SwinTiny,
            SwinSmall,
            SwinBase,
            VitBase16,
            FasterRcnn,
            MaskRcnn,
            Detr,
            Maskformer,
            Segformer,
            Gpt2,
            Gpt2Large,
            Gpt2Xl,
            Llama2_7b,
            Bert,
        ]
    }

    /// This model's Table 1 row.
    pub fn spec(self) -> ModelSpec {
        use ModelId::*;
        use Task::*;
        let (alias, task, params, dataset) = match self {
            ResNet50 => ("resnet50", ImageClassification, 25_600_000, "ImageNet"),
            MobileNetV2 => ("mobilenet_v2", ImageClassification, 3_400_000, "ImageNet"),
            VitBase16 => ("vit-b", ImageClassification, 86_000_000, "ImageNet"),
            VitLarge16 => ("vit-l", ImageClassification, 307_000_000, "ImageNet"),
            VitHuge14 => ("vit-h", ImageClassification, 632_000_000, "ImageNet"),
            SwinTiny => ("sw-t", ImageClassification, 29_000_000, "ImageNet"),
            SwinSmall => ("sw-s", ImageClassification, 50_000_000, "ImageNet"),
            SwinBase => ("sw-b", ImageClassification, 88_000_000, "ImageNet"),
            FasterRcnn => ("frcnn", ObjectDetection, 42_000_000, "COCO"),
            MaskRcnn => ("mrcnn", ObjectDetection, 44_000_000, "COCO"),
            Detr => ("detr", ObjectDetection, 41_000_000, "COCO"),
            Maskformer => ("maskformer", Segmentation, 102_000_000, "COCO"),
            Segformer => ("segformer", Segmentation, 3_700_000, "COCO"),
            Gpt2 => ("gpt2", LanguageModel, 117_000_000, "wikitext"),
            Gpt2Large => ("gpt2-l", LanguageModel, 762_000_000, "wikitext"),
            Gpt2Xl => ("gpt2-xl", LanguageModel, 1_500_000_000, "wikitext"),
            Llama2_7b => ("llama2", LanguageModel, 7_000_000_000, "wikitext"),
            Bert => ("bert", LanguageModel, 110_000_000, "wikitext"),
        };
        ModelSpec {
            id: self,
            alias,
            task,
            params_reported: params,
            dataset,
        }
    }

    /// Builds the operator graph for `batch` inputs at `scale`.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference errors (none occur for the shipped
    /// configurations).
    pub fn build(self, batch: usize, scale: Scale) -> Result<Graph, TensorError> {
        use ModelId::*;
        match (self, scale) {
            (ResNet50, Scale::Full) => ResNet50Config::full().build(batch),
            (ResNet50, Scale::Tiny) => ResNet50Config::tiny().build(batch),
            (MobileNetV2, Scale::Full) => MobileNetV2Config::full().build(batch),
            (MobileNetV2, Scale::Tiny) => MobileNetV2Config::tiny().build(batch),
            (VitBase16, Scale::Full) => VitConfig::base16().build(batch),
            (VitLarge16, Scale::Full) => VitConfig::large16().build(batch),
            (VitHuge14, Scale::Full) => VitConfig::huge14().build(batch),
            (VitBase16 | VitLarge16 | VitHuge14, Scale::Tiny) => VitConfig::tiny().build(batch),
            (SwinTiny, Scale::Full) => SwinConfig::tiny_224().build(batch),
            (SwinSmall, Scale::Full) => SwinConfig::small_224().build(batch),
            (SwinBase, Scale::Full) => SwinConfig::base_224().build(batch),
            (SwinTiny | SwinSmall | SwinBase, Scale::Tiny) => SwinConfig::toy().build(batch),
            (FasterRcnn, Scale::Full) => RcnnConfig::faster_rcnn().build(batch),
            (FasterRcnn, Scale::Tiny) => RcnnConfig::toy(false).build(batch),
            (MaskRcnn, Scale::Full) => RcnnConfig::mask_rcnn().build(batch),
            (MaskRcnn, Scale::Tiny) => RcnnConfig::toy(true).build(batch),
            (Detr, Scale::Full) => DetrConfig::full().build(batch),
            (Detr, Scale::Tiny) => DetrConfig::toy().build(batch),
            (Maskformer, Scale::Full) => MaskformerConfig::full().build(batch),
            (Maskformer, Scale::Tiny) => MaskformerConfig::toy().build(batch),
            (Segformer, Scale::Full) => SegformerConfig::b0().build(batch),
            (Segformer, Scale::Tiny) => SegformerConfig::toy().build(batch),
            (Gpt2, Scale::Full) => Gpt2Config::base().build(batch),
            (Gpt2Large, Scale::Full) => Gpt2Config::large().build(batch),
            (Gpt2Xl, Scale::Full) => Gpt2Config::xl().build(batch),
            (Gpt2 | Gpt2Large | Gpt2Xl, Scale::Tiny) => Gpt2Config::toy().build(batch),
            (Llama2_7b, Scale::Full) => LlamaConfig::llama2_7b().build(batch),
            (Llama2_7b, Scale::Tiny) => LlamaConfig::toy().build(batch),
            (Bert, Scale::Full) => BertConfig::base().build(batch),
            (Bert, Scale::Tiny) => BertConfig::toy().build(batch),
        }
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().alias)
    }
}

/// Graph-factory signature for custom registry entries.
pub type GraphFactory = Box<dyn Fn(usize) -> Result<Graph, TensorError> + Send + Sync>;

/// A registry holding the 18 preset models plus any user-plugged custom
/// models — the "Plug Model & Profile" feature of Table 5.
///
/// # Examples
///
/// ```
/// use ngb_models::ModelRegistry;
/// use ngb_graph::{GraphBuilder, OpKind};
///
/// let mut reg = ModelRegistry::with_presets();
/// reg.register("my_mlp", |batch| {
///     let mut b = GraphBuilder::new("my_mlp");
///     let x = b.input(&[batch, 8]);
///     b.push(OpKind::Linear { in_f: 8, out_f: 2, bias: true }, &[x], "fc")?;
///     Ok(b.finish())
/// });
/// assert!(reg.names().iter().any(|n| n == "my_mlp"));
/// let g = reg.build("my_mlp", 4).unwrap();
/// assert_eq!(g.nodes.last().unwrap().out_shape, vec![4, 2]);
/// ```
#[derive(Default)]
pub struct ModelRegistry {
    presets: Vec<ModelId>,
    custom: Vec<(String, GraphFactory)>,
    scale: Scale,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("presets", &self.presets)
            .field(
                "custom",
                &self.custom.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .field("scale", &self.scale)
            .finish()
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// A registry preloaded with all 18 Table 1 models at full scale.
    pub fn with_presets() -> ModelRegistry {
        ModelRegistry {
            presets: ModelId::all().to_vec(),
            custom: Vec::new(),
            scale: Scale::Full,
        }
    }

    /// Sets the scale used for preset builds (builder style).
    pub fn scale(mut self, scale: Scale) -> ModelRegistry {
        self.scale = scale;
        self
    }

    /// Plugs a custom model factory under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(usize) -> Result<Graph, TensorError> + Send + Sync + 'static,
    ) -> &mut Self {
        self.custom.push((name.into(), Box::new(factory)));
        self
    }

    /// All registered names (preset aliases + custom names).
    pub fn names(&self) -> Vec<String> {
        self.presets
            .iter()
            .map(|m| m.spec().alias.to_string())
            .chain(self.custom.iter().map(|(n, _)| n.clone()))
            .collect()
    }

    /// Builds the named model's graph for `batch` inputs.
    ///
    /// # Errors
    ///
    /// Fails when `name` is unknown or the factory fails.
    pub fn build(&self, name: &str, batch: usize) -> Result<Graph, TensorError> {
        if let Some(m) = self.presets.iter().find(|m| m.spec().alias == name) {
            return m.build(batch, self.scale);
        }
        if let Some((_, f)) = self.custom.iter().find(|(n, _)| n == name) {
            return f(batch);
        }
        Err(TensorError::InvalidArgument(format!(
            "unknown model '{name}'"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_models() {
        assert_eq!(ModelId::all().len(), 18);
        let mut seen = std::collections::BTreeSet::new();
        for m in ModelId::all() {
            assert!(
                seen.insert(m.spec().alias),
                "duplicate alias {}",
                m.spec().alias
            );
        }
    }

    #[test]
    fn every_model_builds_tiny_and_validates() {
        for &m in ModelId::all() {
            let g = m
                .build(1, Scale::Tiny)
                .unwrap_or_else(|e| panic!("{m}: {e}"));
            g.validate().unwrap_or_else(|e| panic!("{m}: {e}"));
            assert!(g.len() > 5, "{m} suspiciously small");
        }
    }

    #[test]
    fn task_partitions() {
        use Task::*;
        let by_task = |t: Task| ModelId::all().iter().filter(|m| m.spec().task == t).count();
        assert_eq!(by_task(ImageClassification), 8);
        assert_eq!(by_task(ObjectDetection), 3);
        assert_eq!(by_task(Segmentation), 2);
        assert_eq!(by_task(LanguageModel), 5);
    }

    #[test]
    fn registry_builds_presets_and_rejects_unknown() {
        let reg = ModelRegistry::with_presets().scale(Scale::Tiny);
        let g = reg.build("gpt2", 1).unwrap();
        assert!(g.len() > 10);
        assert!(reg.build("nope", 1).is_err());
        assert_eq!(reg.names().len(), 18);
    }
}
