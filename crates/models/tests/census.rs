//! Operator-census tests: each full-scale model graph must contain exactly
//! the operator population its architecture implies. These pin the graphs
//! against accidental structural drift — the shapes and counts here are
//! what the paper's measurements hang off.

use ngb_models::{ModelId, Scale};

fn histogram(m: ModelId) -> std::collections::BTreeMap<&'static str, usize> {
    m.build(1, Scale::Full).expect("builds").op_histogram()
}

#[test]
fn resnet50_census() {
    let h = histogram(ModelId::ResNet50);
    assert_eq!(h["conv2d"], 53); // 49 + 4 downsample projections
    assert_eq!(h["batch_norm2d"], 53);
    assert_eq!(h["relu"], 49);
    assert_eq!(h["add"], 16); // one residual per bottleneck
    assert_eq!(h["max_pool2d"], 1);
    assert_eq!(h["adaptive_avg_pool2d"], 1);
    assert_eq!(h["linear"], 1);
}

#[test]
fn mobilenet_census() {
    let h = histogram(ModelId::MobileNetV2);
    // 17 inverted residuals: 16 with expansion (3 convs) + 1 without (2) =
    // 50, plus stem + head = 52
    assert_eq!(h["conv2d"], 52);
    assert_eq!(h["relu6"], 35); // stem + head + expand/dw activations
    assert_eq!(h["add"], 10); // stride-1 same-width residuals
}

#[test]
fn vit_b16_census() {
    let h = histogram(ModelId::VitBase16);
    assert_eq!(h["layer_norm"], 2 * 12 + 1);
    assert_eq!(h["gelu"], 12);
    assert_eq!(h["softmax"], 12 + 1); // attention + class probs
    assert_eq!(h["bmm"], 24);
    // 4 attention linears + 2 MLP linears per block + head
    assert_eq!(h["linear"], 6 * 12 + 1);
    assert_eq!(h["conv2d"], 1); // patch embedding
    assert_eq!(h["expand"], 1); // CLS token
    assert_eq!(h["cat"], 1);
}

#[test]
fn swin_t_census() {
    let h = histogram(ModelId::SwinTiny);
    let blocks = 2 + 2 + 6 + 2;
    // 2 LN per block + 1 per patch-merge (3) + embed norm + final
    assert_eq!(h["layer_norm"], 2 * blocks + 3 + 2);
    assert_eq!(h["softmax"], blocks + 1); // attention + class probs
    assert_eq!(h["gelu"], blocks);
    // window partition + reverse contiguous per block, + patch embed &
    // attention internals
    assert!(h["contiguous"] >= 3 * blocks);
}

#[test]
fn gpt2_family_census_scales_with_depth() {
    for (m, layers) in [
        (ModelId::Gpt2, 12),
        (ModelId::Gpt2Large, 36),
        (ModelId::Gpt2Xl, 48),
    ] {
        let h = histogram(m);
        assert_eq!(h["conv1d_gpt2"], 4 * layers, "{m}");
        assert_eq!(h["new_gelu"], layers, "{m}");
        assert_eq!(h["causal_mask"], layers, "{m}");
        assert_eq!(h["layer_norm"], 2 * layers + 1, "{m}");
        assert_eq!(h["slice"], 3 * layers, "{m}"); // qkv split
        assert_eq!(h["embedding"], 1, "{m}");
        assert_eq!(h["softmax"], layers + 1, "{m}"); // attn + lm probs
    }
}

#[test]
fn llama_census() {
    let h = histogram(ModelId::Llama2_7b);
    let layers = 32;
    assert_eq!(h["llama_rms_norm"], 2 * layers + 1);
    assert_eq!(h["silu"], layers);
    // rotary: 2 neg per layer (q and k)
    assert_eq!(h["neg"], 2 * layers);
    assert_eq!(h["cat"], 2 * layers);
    // 4 attention + 3 MLP projections per layer + lm head
    assert_eq!(h["linear"], 7 * layers + 1);
    assert!(!h.contains_key("layer_norm"));
    assert!(!h.contains_key("new_gelu"));
}

#[test]
fn bert_census() {
    let h = histogram(ModelId::Bert);
    assert_eq!(h["layer_norm"], 2 * 12 + 1);
    assert_eq!(h["gelu"], 12);
    assert_eq!(h["linear"], 6 * 12 + 2);
    assert_eq!(h["embedding"], 1);
    assert_eq!(h["sigmoid"], 1); // pooler activation proxy
}

#[test]
fn detection_census() {
    let h = histogram(ModelId::FasterRcnn);
    assert_eq!(h["frozen_batch_norm2d"], 53);
    assert_eq!(h["nms"], 5); // 4 RPN levels + final
    assert_eq!(h["roi_align"], 1);
    assert_eq!(h["sigmoid"], 4);
    assert_eq!(h["topk"], 5);
    assert_eq!(h["interpolate_nearest"], 3); // FPN top-down

    let m = histogram(ModelId::MaskRcnn);
    assert_eq!(m["roi_align"], 2); // box + mask heads
    assert_eq!(m["interpolate_bilinear"], 1); // mask upsample

    let d = histogram(ModelId::Detr);
    assert_eq!(d["frozen_batch_norm2d"], 53);
    assert_eq!(d["box_convert"], 1);
    // 6 encoder (2) + 6 decoder (3) norms + embeddings = 30
    assert_eq!(d["layer_norm"], 30);
}

#[test]
fn segmentation_census() {
    let h = histogram(ModelId::Segformer);
    // depthwise Mix-FFN conv per block (8 blocks) + patch embeds (4) +
    // spatial-reduction convs (2 blocks in each of 3 sr>1 stages) +
    // decode head fuse + classifier (2)
    assert_eq!(h["conv2d"], 8 + 4 + 6 + 2);
    assert_eq!(h["interpolate_bilinear"], 3 + 1); // 3 stage upsamples + final
    assert_eq!(h["argmax"], 1);
    assert_eq!(h["batch_norm2d"], 1);

    let m = histogram(ModelId::Maskformer);
    assert_eq!(m["group_norm"], 4);
    assert!(m["bmm"] >= 13); // decoder attention + mask projection
    assert_eq!(m["sigmoid"], 1);
}

#[test]
fn every_model_keeps_input_arity() {
    // all graphs start from at least one input and every non-input node has
    // at least one producer
    for &m in ModelId::all() {
        let g = m.build(1, Scale::Full).expect("builds");
        let inputs = g
            .iter()
            .filter(|n| {
                matches!(
                    n.op,
                    ngb_graph::OpKind::Input | ngb_graph::OpKind::InputIds { .. }
                )
            })
            .count();
        assert!(inputs >= 1, "{m}");
        for n in g.iter() {
            let is_input = matches!(
                n.op,
                ngb_graph::OpKind::Input | ngb_graph::OpKind::InputIds { .. }
            );
            assert_eq!(n.inputs.is_empty(), is_input, "{m}: node {}", n.name);
        }
    }
}
