//! # ngb-opt
//!
//! Graph-rewrite optimizer: executes the fusions `ngb-analyze` can only
//! flag. [`optimize`] rewrites a [`Graph`] before scheduling, replacing
//! fusable subgraphs with [`OpKind::Fused`] composite nodes:
//!
//! * **Conv + BN (+ activation) folding** — `Conv2d → BatchNorm2d/`
//!   `FrozenBatchNorm2d` collapses into one folded convolution
//!   ([`FusedKind::ConvBnAct`]). Folding reorders floating-point
//!   arithmetic, so this runs only at [`OptLevel::O2`] and is checked
//!   against a tolerance, not bit equality.
//! * **GEMM epilogues** — a unary pointwise op whose single-consumer
//!   producer is GEMM-classified rides in the producer's kernel
//!   ([`FusedKind::GemmEpilogue`]). Bit-identical.
//! * **Element-wise chains** — runs of single-consumer unary pointwise
//!   ops collapse into one loop ([`FusedKind::ElementwiseChain`]).
//!   Bit-identical.
//! * **Attention prologues** — `MatMul/Bmm → scale → (mask) → Softmax`
//!   becomes one node ([`FusedKind::AttentionPrologue`]), mirroring the
//!   analyzer's `fuse-attention` matcher exactly. Bit-identical.
//! * **Layout coalescing** — adjacent `Transpose`/`Permute`/`Reshape`/
//!   `View`/`Contiguous` pairs cancel or compose. Bit-identical.
//! * **Contiguous elision** — a `Contiguous` node is dropped when static
//!   stride propagation proves its input is already dense, or when every
//!   (transitive) consumer declares [`OpKind::stride_capable`] and any
//!   `Reshape`/`View` on the path stays zero-copy under the incoming
//!   strides (checked with [`ngb_tensor::reshape_strides`]). The strided
//!   kernels are bit-identical to their contiguous fast paths, so elision
//!   never changes results. Disable with `NGB_ELIDE=0`.
//!
//! Passes run to a fixpoint; every rewrite strictly shrinks the graph, so
//! the loop terminates. Rewritten nodes carry `seed_hint` (and fused
//! stages carry `seed_id`) so synthetic weights and inputs keep deriving
//! from the *original* node ids — renumbering never changes the numbers a
//! model computes.
//!
//! The level comes from the CLI (`--opt-level`) or the `NGB_OPT`
//! environment variable (see [`OptLevel::from_env`]).
//!
//! # Examples
//!
//! ```
//! use ngb_graph::{GraphBuilder, OpKind};
//! use ngb_opt::{optimize, OptLevel};
//!
//! # fn main() -> Result<(), ngb_tensor::TensorError> {
//! let mut b = GraphBuilder::new("tiny");
//! let x = b.input(&[1, 4]);
//! let h = b.push(OpKind::Linear { in_f: 4, out_f: 4, bias: true }, &[x], "fc")?;
//! b.push(OpKind::Gelu, &[h], "act")?;
//! let (g, report) = optimize(&b.finish(), OptLevel::O1);
//! assert_eq!(report.gemm_epilogue, 1);
//! assert_eq!(g.len(), 2); // input + fused(linear, gelu)
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

use ngb_graph::{FusedKind, FusedOp, FusedStage, Graph, Node, NodeId, OpKind};
use ngb_tensor::{contiguous_strides, num_elements, reshape_strides};
use serde::{Deserialize, Serialize};

/// How aggressively [`optimize`] rewrites a graph.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum OptLevel {
    /// No rewrites: the graph executes exactly as built.
    #[default]
    O0,
    /// Bit-identical fusions only (epilogues, element-wise chains,
    /// attention prologues, layout coalescing).
    O1,
    /// Everything in `O1` plus Conv+BN folding, which reorders
    /// floating-point arithmetic (tolerance-checked, not bitwise).
    O2,
}

impl OptLevel {
    /// Parses `"0"`/`"1"`/`"2"` with an optional `O`/`o` prefix.
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s.trim().trim_start_matches(['O', 'o']) {
            "0" => Some(OptLevel::O0),
            "1" => Some(OptLevel::O1),
            "2" => Some(OptLevel::O2),
            _ => None,
        }
    }

    /// Reads `NGB_OPT`, falling back to [`OptLevel::O0`] when the
    /// variable is unset or unparsable.
    pub fn from_env() -> OptLevel {
        std::env::var("NGB_OPT")
            .ok()
            .and_then(|v| OptLevel::parse(&v))
            .unwrap_or(OptLevel::O0)
    }

    /// Canonical display name (`"O0"`, `"O1"`, `"O2"`).
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What [`optimize`] did to a graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct OptReport {
    /// Node count before rewriting.
    pub nodes_before: usize,
    /// Node count after rewriting.
    pub nodes_after: usize,
    /// Bytes of intermediate tensors that no longer materialize (4 bytes
    /// per eliminated interior element).
    pub intermediate_bytes_saved: usize,
    /// Conv+BN(+activation) folds applied.
    pub conv_bn_act: usize,
    /// Pointwise epilogues absorbed into GEMM-classified producers.
    pub gemm_epilogue: usize,
    /// Element-wise chain merges applied.
    pub elementwise_chain: usize,
    /// Attention prologues fused.
    pub attention: usize,
    /// Layout pairs cancelled or composed.
    pub layout: usize,
    /// `Contiguous` nodes elided because their consumers accept strided
    /// views (or the input was provably dense already).
    pub contiguous_elided: usize,
    /// Bytes of dense copies the elided `Contiguous` nodes would have
    /// materialized (counted only when the incoming layout was strided).
    pub elision_bytes_saved: usize,
}

impl OptReport {
    /// Total kernel-fusion rewrites (everything except layout coalescing).
    pub fn fusions(&self) -> usize {
        self.conv_bn_act + self.gemm_epilogue + self.elementwise_chain + self.attention
    }

    /// Total rewrites of any kind.
    pub fn rewrites(&self) -> usize {
        self.fusions() + self.layout + self.contiguous_elided
    }

    /// Per-rewrite counters as stable `(label, count)` pairs — the
    /// extractor the `ngb-regress` baseline snapshots record. The labels
    /// are part of the baseline schema; renaming one invalidates every
    /// committed baseline file.
    pub fn counters(&self) -> [(&'static str, usize); 6] {
        [
            ("conv_bn_act", self.conv_bn_act),
            ("gemm_epilogue", self.gemm_epilogue),
            ("elementwise_chain", self.elementwise_chain),
            ("attention", self.attention),
            ("layout", self.layout),
            ("contiguous_elided", self.contiguous_elided),
        ]
    }
}

/// Whether contiguous elision is enabled: `NGB_ELIDE` unset or anything
/// other than `"0"` means on.
pub fn elide_enabled() -> bool {
    std::env::var("NGB_ELIDE").map(|v| v != "0").unwrap_or(true)
}

/// Rewrites `graph` at `level`, returning the optimized graph and a
/// report of what changed. At [`OptLevel::O0`] the graph is returned
/// unchanged (a plain clone). Contiguous elision is controlled by the
/// `NGB_ELIDE` environment variable (default on at `O1+`); use
/// [`optimize_with`] to pin it explicitly.
pub fn optimize(graph: &Graph, level: OptLevel) -> (Graph, OptReport) {
    optimize_with(graph, level, elide_enabled())
}

/// [`optimize`] with contiguous elision pinned on or off, independent of
/// the `NGB_ELIDE` environment variable (tests and sweeps use this to
/// avoid process-global env races).
pub fn optimize_with(graph: &Graph, level: OptLevel, elide: bool) -> (Graph, OptReport) {
    let mut report = OptReport {
        nodes_before: graph.len(),
        nodes_after: graph.len(),
        ..OptReport::default()
    };
    if level == OptLevel::O0 {
        return (graph.clone(), report);
    }
    let mut g = graph.clone();
    // Every applied rewrite strictly decreases the node count, so the
    // fixpoint is reached within `nodes_before` iterations; the cap is a
    // belt-and-braces guard, not a tuning knob.
    for _ in 0..graph.len().max(1) {
        let mut changed = false;
        if level >= OptLevel::O2 {
            if let Some(ng) = conv_bn_pass(&g, &mut report) {
                g = ng;
                changed = true;
            }
        }
        if let Some(ng) = attention_pass(&g, &mut report) {
            g = ng;
            changed = true;
        }
        if let Some(ng) = absorb_pass(&g, &mut report) {
            g = ng;
            changed = true;
        }
        if let Some(ng) = layout_pass(&g, &mut report) {
            g = ng;
            changed = true;
        }
        if elide {
            if let Some(ng) = elide_pass(&g, &mut report) {
                g = ng;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    report.nodes_after = g.len();
    (g, report)
}

// ---------------------------------------------------------------- rebuild

/// Per-node rewrite decision, in the *old* id space.
enum Action {
    /// Copy the node through (inputs remapped).
    Keep,
    /// Remove the node; anything still referencing it follows `redirect`
    /// (transitively) to a surviving node.
    Drop { redirect: NodeId },
    /// Substitute a new op and input list (old ids) at this position.
    Replace { op: OpKind, inputs: Vec<NodeId> },
}

/// The RNG identity a node carries through rewrites: its original id in
/// the pre-optimization graph.
fn seed_of(n: &Node) -> usize {
    n.seed_hint.unwrap_or(n.id).0
}

/// A primitive node as a fused stage. Stage 0 of a fused op has no chain
/// value, so all of its operands arrive as extra inputs.
fn primitive_stage(n: &Node) -> FusedStage {
    FusedStage {
        op: n.op.clone(),
        seed_id: seed_of(n),
        extra_inputs: n.inputs.len(),
    }
}

/// How many nodes consume each node (counting repeated edges).
fn consumer_counts(g: &Graph) -> Vec<usize> {
    let mut counts = vec![0usize; g.len()];
    for n in g.iter() {
        for &i in &n.inputs {
            counts[i.0] += 1;
        }
    }
    counts
}

/// One non-overlapping batch of rewrites over a graph.
struct Sweep {
    actions: Vec<Action>,
    used: Vec<bool>,
    changed: bool,
}

impl Sweep {
    fn new(len: usize) -> Sweep {
        Sweep {
            actions: (0..len).map(|_| Action::Keep).collect(),
            used: vec![false; len],
            changed: false,
        }
    }

    /// True when none of `ids` is already part of an earlier match.
    fn free(&self, ids: &[NodeId]) -> bool {
        ids.iter().all(|i| !self.used[i.0])
    }

    fn claim(&mut self, ids: &[NodeId]) {
        for i in ids {
            self.used[i.0] = true;
        }
        self.changed = true;
    }

    fn drop_node(&mut self, id: NodeId, redirect: NodeId) {
        self.actions[id.0] = Action::Drop { redirect };
    }

    fn replace(&mut self, id: NodeId, op: OpKind, inputs: Vec<NodeId>) {
        self.actions[id.0] = Action::Replace { op, inputs };
    }

    /// Applies the batch, renumbering surviving nodes compactly.
    fn finish(self, g: &Graph) -> Option<Graph> {
        if !self.changed {
            return None;
        }
        let actions = self.actions;
        // Redirect chains always point at strictly earlier nodes, so this
        // terminates at a surviving node.
        let resolve = |mut id: NodeId| loop {
            match &actions[id.0] {
                Action::Drop { redirect } => id = *redirect,
                _ => return id,
            }
        };
        let mut new_ids = vec![usize::MAX; g.len()];
        let mut nodes = Vec::with_capacity(g.len());
        for node in g.iter() {
            let (op, inputs) = match &actions[node.id.0] {
                Action::Drop { .. } => continue,
                Action::Keep => (node.op.clone(), node.inputs.clone()),
                Action::Replace { op, inputs } => (op.clone(), inputs.clone()),
            };
            let inputs = inputs
                .iter()
                .map(|&i| NodeId(new_ids[resolve(i).0]))
                .collect();
            new_ids[node.id.0] = nodes.len();
            nodes.push(Node {
                id: NodeId(nodes.len()),
                op,
                inputs,
                out_shape: node.out_shape.clone(),
                name: node.name.clone(),
                seed_hint: Some(NodeId(seed_of(node))),
            });
        }
        Some(Graph {
            nodes,
            name: g.name.clone(),
        })
    }
}

// ------------------------------------------------------------------ passes

/// `Conv2d → BatchNorm2d/FrozenBatchNorm2d` (single-consumer link) folds
/// into one [`FusedKind::ConvBnAct`] node. Any trailing activation is
/// absorbed later by [`absorb_pass`], which appends to existing fused
/// GEMM-classified nodes.
fn conv_bn_pass(g: &Graph, report: &mut OptReport) -> Option<Graph> {
    let consumers = consumer_counts(g);
    let mut sw = Sweep::new(g.len());
    for n in g.iter() {
        if !matches!(
            n.op,
            OpKind::BatchNorm2d { .. } | OpKind::FrozenBatchNorm2d { .. }
        ) {
            continue;
        }
        let [pid] = n.inputs.as_slice() else { continue };
        let p = &g.nodes[pid.0];
        if !matches!(p.op, OpKind::Conv2d { .. })
            || consumers[pid.0] != 1
            || !sw.free(&[*pid, n.id])
        {
            continue;
        }
        let fused = FusedOp {
            kind: FusedKind::ConvBnAct,
            stages: vec![
                primitive_stage(p),
                FusedStage {
                    op: n.op.clone(),
                    seed_id: seed_of(n),
                    extra_inputs: 0,
                },
            ],
        };
        sw.claim(&[*pid, n.id]);
        sw.drop_node(*pid, p.inputs[0]);
        sw.replace(n.id, OpKind::Fused(fused), p.inputs.clone());
        report.conv_bn_act += 1;
        report.intermediate_bytes_saved += 4 * num_elements(&p.out_shape);
    }
    sw.finish(g)
}

/// `MatMul/Bmm → Div/MulScalar → (CausalMask | Add mask) → Softmax`, the
/// analyzer's `fuse-attention` pattern verbatim: the chain always runs
/// through `inputs[0]` and every interior link has exactly one consumer.
fn attention_pass(g: &Graph, report: &mut OptReport) -> Option<Graph> {
    let consumers = consumer_counts(g);
    let mut sw = Sweep::new(g.len());
    for n in g.iter() {
        if !matches!(n.op, OpKind::Softmax { .. }) {
            continue;
        }
        let step = |id: NodeId| (consumers[id.0] == 1).then(|| &g.nodes[id.0]);
        let Some(mut cur) = n.inputs.first().and_then(|&i| step(i)) else {
            continue;
        };
        let mut mask: Option<&Node> = None;
        if matches!(cur.op, OpKind::CausalMask | OpKind::Add) {
            mask = Some(cur);
            match cur.inputs.first().and_then(|&i| step(i)) {
                Some(next) => cur = next,
                None => continue,
            }
        }
        if !matches!(cur.op, OpKind::DivScalar(_) | OpKind::MulScalar(_)) {
            continue;
        }
        let scale = cur;
        let Some(head) = scale.inputs.first().and_then(|&i| step(i)) else {
            continue;
        };
        if !matches!(head.op, OpKind::Matmul | OpKind::Bmm) {
            continue;
        }

        let mut involved = vec![head.id, scale.id, n.id];
        if let Some(m) = mask {
            involved.push(m.id);
        }
        if !sw.free(&involved) {
            continue;
        }

        let mut stages = vec![
            primitive_stage(head),
            FusedStage {
                op: scale.op.clone(),
                seed_id: seed_of(scale),
                extra_inputs: 0,
            },
        ];
        let mut inputs = head.inputs.clone();
        if let Some(m) = mask {
            let extra = if matches!(m.op, OpKind::Add) {
                // The chain value is `Add.inputs[0]`; the mask tensor
                // rides along as one extra fused input.
                let Some(&mask_in) = m.inputs.get(1) else {
                    continue;
                };
                inputs.push(mask_in);
                1
            } else {
                0
            };
            stages.push(FusedStage {
                op: m.op.clone(),
                seed_id: seed_of(m),
                extra_inputs: extra,
            });
        }
        stages.push(FusedStage {
            op: n.op.clone(),
            seed_id: seed_of(n),
            extra_inputs: 0,
        });

        let saved: usize = involved
            .iter()
            .filter(|&&i| i != n.id)
            .map(|&i| num_elements(&g.nodes[i.0].out_shape))
            .sum();
        sw.claim(&involved);
        sw.drop_node(head.id, head.inputs[0]);
        sw.drop_node(scale.id, scale.inputs[0]);
        if let Some(m) = mask {
            sw.drop_node(m.id, m.inputs[0]);
        }
        let fused = FusedOp {
            kind: FusedKind::AttentionPrologue,
            stages,
        };
        sw.replace(n.id, OpKind::Fused(fused), inputs);
        report.attention += 1;
        report.intermediate_bytes_saved += 4 * saved;
    }
    sw.finish(g)
}

/// A node's stages when it rides as an epilogue appended to a producer:
/// a primitive unary pointwise op, or an existing element-wise chain
/// (whose head then takes the chain value instead of an extra input).
fn epilogue_stages(n: &Node) -> Option<Vec<FusedStage>> {
    match &n.op {
        OpKind::Fused(f) if f.kind == FusedKind::ElementwiseChain => {
            let mut stages = f.stages.clone();
            if let Some(first) = stages.first_mut() {
                first.extra_inputs = 0;
            }
            Some(stages)
        }
        op => op.pointwise().map(|_| {
            vec![FusedStage {
                op: op.clone(),
                seed_id: seed_of(n),
                extra_inputs: 0,
            }]
        }),
    }
}

/// Shard-plan machinery is never rewritten: collective / transfer nodes
/// mark `ngb-shard` device cut points, and `LinearShard` must replay the
/// unsplit layer's RNG stream and slice it exactly — fusing into or
/// across any of them would move work between devices or change the
/// math. Every rewrite pass skips matches touching these ops.
fn shard_frozen(op: &OpKind) -> bool {
    op.is_collective() || matches!(op, OpKind::LinearShard { .. })
}

/// Merges a unary pointwise node (or element-wise chain) into its
/// single-consumer producer. A GEMM-classified producer — primitive or
/// already fused — yields a GEMM epilogue (this is what clears the
/// analyzer's `fuse-linear-activation` lint, including re-matches
/// against fused nodes); a pointwise producer yields an element-wise
/// chain.
fn absorb_pass(g: &Graph, report: &mut OptReport) -> Option<Graph> {
    let consumers = consumer_counts(g);
    let mut sw = Sweep::new(g.len());
    for n in g.iter() {
        let Some(tail) = epilogue_stages(n) else {
            continue;
        };
        let [pid] = n.inputs.as_slice() else { continue };
        let p = &g.nodes[pid.0];
        if consumers[pid.0] != 1 || !sw.free(&[*pid, n.id]) {
            continue;
        }
        if shard_frozen(&p.op) || shard_frozen(&n.op) {
            continue;
        }
        let (kind, head) = match &p.op {
            OpKind::Fused(f) => (f.kind, f.stages.clone()),
            op if op.class().is_gemm() => (FusedKind::GemmEpilogue, vec![primitive_stage(p)]),
            op if op.pointwise().is_some() => {
                (FusedKind::ElementwiseChain, vec![primitive_stage(p)])
            }
            _ => continue,
        };
        let mut stages = head;
        stages.extend(tail);
        sw.claim(&[*pid, n.id]);
        sw.drop_node(*pid, p.inputs[0]);
        sw.replace(
            n.id,
            OpKind::Fused(FusedOp { kind, stages }),
            p.inputs.clone(),
        );
        if kind == FusedKind::ElementwiseChain {
            report.elementwise_chain += 1;
        } else {
            report.gemm_epilogue += 1;
        }
        report.intermediate_bytes_saved += 4 * num_elements(&p.out_shape);
    }
    sw.finish(g)
}

/// Coalesces adjacent memory-layout pairs: inverse transposes cancel,
/// permutes compose, reshape/view pairs collapse to one reshape, and
/// double `Contiguous` deduplicates. The first node of a pair must have
/// exactly one consumer; pairs whose removal would delete a graph output
/// are left alone.
fn layout_pass(g: &Graph, report: &mut OptReport) -> Option<Graph> {
    let consumers = consumer_counts(g);
    let mut sw = Sweep::new(g.len());
    for n in g.iter() {
        let [pid] = n.inputs.as_slice() else { continue };
        let p = &g.nodes[pid.0];
        if consumers[pid.0] != 1 || !sw.free(&[*pid, n.id]) {
            continue;
        }
        match (&p.op, &n.op) {
            (OpKind::Transpose { d0: a, d1: b }, OpKind::Transpose { d0: c, d1: d })
                if (a, b) == (c, d) || (a, b) == (d, c) =>
            {
                // The pair is the identity: bypass both. Skip when the
                // second transpose is a graph output (dropping it would
                // remove the output).
                if consumers[n.id.0] == 0 {
                    continue;
                }
                sw.claim(&[*pid, n.id]);
                sw.drop_node(*pid, p.inputs[0]);
                sw.drop_node(n.id, p.inputs[0]);
                report.layout += 1;
            }
            (OpKind::Permute { perm: p1 }, OpKind::Permute { perm: p2 })
                if p1.len() == p2.len() =>
            {
                let composed: Vec<usize> = p2.iter().map(|&i| p1[i]).collect();
                sw.claim(&[*pid, n.id]);
                sw.drop_node(*pid, p.inputs[0]);
                sw.replace(n.id, OpKind::Permute { perm: composed }, p.inputs.clone());
                report.layout += 1;
            }
            (
                OpKind::Reshape { .. } | OpKind::View { .. },
                OpKind::Reshape { .. } | OpKind::View { .. },
            ) => {
                // Row-major copy semantics compose: reshape straight to
                // the final (concrete, already-inferred) shape.
                sw.claim(&[*pid, n.id]);
                sw.drop_node(*pid, p.inputs[0]);
                sw.replace(
                    n.id,
                    OpKind::Reshape {
                        shape: n.out_shape.clone(),
                    },
                    p.inputs.clone(),
                );
                report.layout += 1;
            }
            (OpKind::Contiguous, OpKind::Contiguous) => {
                // The second copy is redundant; keep the first.
                if consumers[n.id.0] == 0 {
                    continue;
                }
                sw.claim(&[*pid, n.id]);
                sw.drop_node(n.id, *pid);
                report.layout += 1;
                report.intermediate_bytes_saved += 4 * num_elements(&n.out_shape);
            }
            _ => {}
        }
    }
    sw.finish(g)
}

// ------------------------------------------------------- contiguous elision

/// `strides` describe a dense row-major layout of `shape` (size-1 dims'
/// strides are irrelevant, mirroring `Tensor::is_contiguous`).
fn is_contig(shape: &[usize], strides: &[isize]) -> bool {
    let mut acc = 1isize;
    for (&dim, &stride) in shape.iter().zip(strides).rev() {
        if dim == 1 {
            continue;
        }
        if stride != acc {
            return false;
        }
        acc *= dim as isize;
    }
    true
}

/// Output strides of `Expand` from (`in_shape`, `in_strides`) to
/// `out_shape`, mirroring `Tensor::expand`: broadcast dims get stride 0.
fn expand_strides(in_shape: &[usize], in_strides: &[isize], out_shape: &[usize]) -> Vec<isize> {
    let pad = out_shape.len().saturating_sub(in_shape.len());
    let mut strides = vec![0isize; out_shape.len()];
    for i in 0..in_shape.len() {
        if in_shape[i] == out_shape[pad + i] {
            strides[pad + i] = in_strides[i];
        }
    }
    strides
}

/// Statically-propagated output strides per node: compute ops and copying
/// layout ops produce dense outputs; metadata ops transform their
/// producer's layout by the same rules the `ngb_tensor` view methods use
/// at runtime. A `Reshape`/`View` that cannot stay zero-copy falls back to
/// dense (that is exactly what `Tensor::reshape` materializes).
fn static_strides(g: &Graph) -> Vec<Vec<isize>> {
    let mut out: Vec<Vec<isize>> = Vec::with_capacity(g.len());
    for n in g.iter() {
        let dense = || contiguous_strides(&n.out_shape);
        let s = match (&n.op, n.inputs.first()) {
            (OpKind::Permute { perm }, Some(pid)) if perm.len() == out[pid.0].len() => {
                perm.iter().map(|&i| out[pid.0][i]).collect()
            }
            (OpKind::Transpose { d0, d1 }, Some(pid))
                if *d0 < out[pid.0].len() && *d1 < out[pid.0].len() =>
            {
                let mut p = out[pid.0].clone();
                p.swap(*d0, *d1);
                p
            }
            (OpKind::Squeeze { dim }, Some(pid)) if *dim < out[pid.0].len() => {
                let mut p = out[pid.0].clone();
                p.remove(*dim);
                p
            }
            (OpKind::Unsqueeze { dim }, Some(pid)) => {
                let mut p = out[pid.0].clone();
                p.insert((*dim).min(p.len()), 0);
                p
            }
            (OpKind::Slice { .. }, Some(pid)) => out[pid.0].clone(),
            (OpKind::Expand { .. }, Some(pid)) => {
                expand_strides(&g.nodes[pid.0].out_shape, &out[pid.0], &n.out_shape)
            }
            (OpKind::Reshape { .. } | OpKind::View { .. }, Some(pid)) => {
                reshape_strides(&g.nodes[pid.0].out_shape, &out[pid.0], &n.out_shape)
                    .unwrap_or_else(dense)
            }
            _ => dense(),
        };
        out.push(s);
    }
    out
}

/// Whether consumer `c` can take a view with `strides` over `shape` in
/// place of a dense copy, recursing through metadata ops (which forward
/// the layout to *their* consumers with the strides transformed the way
/// the runtime view methods transform them).
fn accepts(
    g: &Graph,
    consumers_of: &[Vec<NodeId>],
    c: &Node,
    shape: &[usize],
    strides: &[isize],
) -> bool {
    if is_contig(shape, strides) {
        return true;
    }
    let forward = |ns: Vec<isize>| {
        consumers_of[c.id.0]
            .iter()
            .all(|&x| accepts(g, consumers_of, &g.nodes[x.0], &c.out_shape, &ns))
    };
    match &c.op {
        // An explicit copy downstream absorbs any layout.
        OpKind::Contiguous => true,
        // Zero-copy only when the strides merge; a copying reshape would
        // just relocate the materialization, so refuse and keep the
        // explicit `Contiguous` node honest.
        OpKind::Reshape { .. } | OpKind::View { .. } => {
            match reshape_strides(shape, strides, &c.out_shape) {
                Some(ns) => forward(ns),
                None => false,
            }
        }
        OpKind::Permute { perm } if perm.len() == strides.len() => {
            forward(perm.iter().map(|&i| strides[i]).collect())
        }
        OpKind::Transpose { d0, d1 } if *d0 < strides.len() && *d1 < strides.len() => {
            let mut ns = strides.to_vec();
            ns.swap(*d0, *d1);
            forward(ns)
        }
        OpKind::Squeeze { dim } if *dim < strides.len() => {
            let mut ns = strides.to_vec();
            ns.remove(*dim);
            forward(ns)
        }
        OpKind::Unsqueeze { dim } => {
            let mut ns = strides.to_vec();
            ns.insert((*dim).min(ns.len()), 0);
            forward(ns)
        }
        OpKind::Slice { .. } => forward(strides.to_vec()),
        OpKind::Expand { .. } => forward(expand_strides(shape, strides, &c.out_shape)),
        // Guarded arms above fell through on malformed attributes: refuse
        // rather than trusting the blanket capability bit.
        OpKind::Permute { .. } | OpKind::Transpose { .. } | OpKind::Squeeze { .. } => false,
        op => op.stride_capable(),
    }
}

/// One NodeId list of consumers per node.
fn consumer_lists(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut lists = vec![Vec::new(); g.len()];
    for n in g.iter() {
        for &i in &n.inputs {
            lists[i.0].push(n.id);
        }
    }
    lists
}

/// Drops `Contiguous` nodes whose copy is provably unnecessary: the input
/// is already dense, or every transitive consumer handles the strided
/// layout bit-identically (see [`OpKind::stride_capable`]). Graph outputs
/// are never dropped.
fn elide_pass(g: &Graph, report: &mut OptReport) -> Option<Graph> {
    let strides = static_strides(g);
    let consumers_of = consumer_lists(g);
    let mut sw = Sweep::new(g.len());
    for n in g.iter() {
        if !matches!(n.op, OpKind::Contiguous) || consumers_of[n.id.0].is_empty() {
            continue;
        }
        let [pid] = n.inputs.as_slice() else { continue };
        if !sw.free(&[n.id]) {
            continue;
        }
        let pshape = &g.nodes[pid.0].out_shape;
        let pstrides = &strides[pid.0];
        let dense_already = is_contig(pshape, pstrides);
        if !dense_already
            && !consumers_of[n.id.0]
                .iter()
                .all(|&c| accepts(g, &consumers_of, &g.nodes[c.0], pshape, pstrides))
        {
            continue;
        }
        sw.claim(&[n.id]);
        sw.drop_node(n.id, *pid);
        report.contiguous_elided += 1;
        if !dense_already {
            let bytes = 4 * num_elements(&n.out_shape);
            report.elision_bytes_saved += bytes;
            report.intermediate_bytes_saved += bytes;
        }
    }
    sw.finish(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::GraphBuilder;

    fn linear(in_f: usize, out_f: usize) -> OpKind {
        OpKind::Linear {
            in_f,
            out_f,
            bias: true,
        }
    }

    #[test]
    fn opt_level_parses_and_orders() {
        assert_eq!(OptLevel::parse("0"), Some(OptLevel::O0));
        assert_eq!(OptLevel::parse("O1"), Some(OptLevel::O1));
        assert_eq!(OptLevel::parse(" o2 "), Some(OptLevel::O2));
        assert_eq!(OptLevel::parse("3"), None);
        assert_eq!(OptLevel::parse(""), None);
        assert!(OptLevel::O2 > OptLevel::O1 && OptLevel::O1 > OptLevel::O0);
        assert_eq!(OptLevel::default().name(), "O0");
    }

    #[test]
    fn o0_is_a_no_op() {
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[1, 4]);
        let h = b.push(linear(4, 4), &[x], "fc").unwrap();
        b.push(OpKind::Gelu, &[h], "act").unwrap();
        let g = b.finish();
        let (og, report) = optimize(&g, OptLevel::O0);
        assert_eq!(og.len(), g.len());
        assert_eq!(report.rewrites(), 0);
        assert_eq!(report.nodes_before, report.nodes_after);
    }

    #[test]
    fn gemm_epilogue_absorbs_activation() {
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[1, 4]);
        let h = b.push(linear(4, 8), &[x], "fc").unwrap();
        b.push(OpKind::Gelu, &[h], "act").unwrap();
        let (og, report) = optimize(&b.finish(), OptLevel::O1);
        assert_eq!(report.gemm_epilogue, 1);
        assert_eq!(og.len(), 2);
        let OpKind::Fused(f) = &og.nodes[1].op else {
            panic!("expected fused node, got {:?}", og.nodes[1].op);
        };
        assert_eq!(f.kind, FusedKind::GemmEpilogue);
        assert_eq!(f.stages.len(), 2);
        // Stage seed ids preserve the original node identities.
        assert_eq!(f.stages[0].seed_id, 1);
        assert_eq!(f.stages[1].seed_id, 2);
        og.validate().unwrap();
    }

    #[test]
    fn multi_consumer_producer_is_not_fused() {
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[1, 4]);
        let h = b.push(linear(4, 4), &[x], "fc").unwrap();
        b.push(OpKind::Gelu, &[h], "act").unwrap();
        b.push(OpKind::Relu, &[h], "other").unwrap(); // second consumer of fc
        let (og, report) = optimize(&b.finish(), OptLevel::O2);
        assert_eq!(report.fusions(), 0);
        assert_eq!(og.len(), 4);
    }

    #[test]
    fn elementwise_chain_collapses_runs() {
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[2, 6]);
        let a = b.push(OpKind::Neg, &[x], "neg").unwrap();
        let c = b.push(OpKind::Gelu, &[a], "gelu").unwrap();
        b.push(OpKind::Sigmoid, &[c], "sig").unwrap();
        let (og, report) = optimize(&b.finish(), OptLevel::O1);
        assert!(report.elementwise_chain >= 1);
        assert_eq!(og.len(), 2);
        let OpKind::Fused(f) = &og.nodes[1].op else {
            panic!("expected fused chain");
        };
        assert_eq!(f.kind, FusedKind::ElementwiseChain);
        assert_eq!(f.stages.len(), 3);
        assert_eq!(f.total_inputs(), 1);
        og.validate().unwrap();
    }

    #[test]
    fn conv_bn_relu_folds_at_o2_only() {
        let conv = OpKind::Conv2d {
            in_c: 3,
            out_c: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
            bias: false,
        };
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[1, 3, 8, 8]);
        let c = b.push(conv, &[x], "conv").unwrap();
        let n = b.push(OpKind::BatchNorm2d { c: 4 }, &[c], "bn").unwrap();
        b.push(OpKind::Relu, &[n], "act").unwrap();
        let g = b.finish();

        let (o1, r1) = optimize(&g, OptLevel::O1);
        assert_eq!(r1.conv_bn_act, 0);
        assert_eq!(o1.len(), 4); // bn is not pointwise; nothing fuses at O1

        let (o2, r2) = optimize(&g, OptLevel::O2);
        assert_eq!(r2.conv_bn_act, 1);
        assert_eq!(o2.len(), 2);
        let OpKind::Fused(f) = &o2.nodes[1].op else {
            panic!("expected fused conv");
        };
        assert_eq!(f.kind, FusedKind::ConvBnAct);
        // relu was appended by the absorb pass in a later iteration
        assert_eq!(f.stages.len(), 3);
        assert_eq!(r2.gemm_epilogue, 1);
        o2.validate().unwrap();
    }

    #[test]
    fn attention_prologue_matches_lint_pattern() {
        let mut b = GraphBuilder::new("g");
        let q = b.input(&[2, 4, 8]);
        let k = b.input(&[2, 8, 4]);
        let m = b.input(&[2, 4, 4]);
        let s = b.push(OpKind::Bmm, &[q, k], "scores").unwrap();
        let d = b.push(OpKind::DivScalar(2.828), &[s], "scale").unwrap();
        let a = b.push(OpKind::Add, &[d, m], "mask").unwrap();
        b.push(OpKind::Softmax { dim: 2 }, &[a], "probs").unwrap();
        let (og, report) = optimize(&b.finish(), OptLevel::O1);
        assert_eq!(report.attention, 1);
        assert_eq!(og.len(), 4); // 3 inputs + 1 fused node
        let fused = &og.nodes[3];
        let OpKind::Fused(f) = &fused.op else {
            panic!("expected fused attention");
        };
        assert_eq!(f.kind, FusedKind::AttentionPrologue);
        assert_eq!(f.stages.len(), 4);
        assert_eq!(f.total_inputs(), 3); // q, k, mask
        assert_eq!(fused.inputs.len(), 3);
        og.validate().unwrap();
    }

    #[test]
    fn layout_pairs_cancel_and_compose() {
        // transpose . transpose (inverse) cancels entirely
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[2, 3, 4]);
        let t1 = b
            .push(OpKind::Transpose { d0: 1, d1: 2 }, &[x], "t1")
            .unwrap();
        let t2 = b
            .push(OpKind::Transpose { d0: 2, d1: 1 }, &[t1], "t2")
            .unwrap();
        b.push(OpKind::Relu, &[t2], "act").unwrap();
        let (og, report) = optimize(&b.finish(), OptLevel::O1);
        assert_eq!(report.layout, 1);
        assert_eq!(og.len(), 2);
        og.validate().unwrap();

        // reshape . view composes into one reshape with the final shape
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[2, 3, 4]);
        let r = b
            .push(OpKind::Reshape { shape: vec![6, 4] }, &[x], "r")
            .unwrap();
        b.push(OpKind::View { shape: vec![4, 6] }, &[r], "v")
            .unwrap();
        let (og, report) = optimize(&b.finish(), OptLevel::O1);
        assert_eq!(report.layout, 1);
        assert_eq!(og.len(), 2);
        assert!(matches!(&og.nodes[1].op, OpKind::Reshape { shape } if shape == &vec![4, 6]));
        og.validate().unwrap();

        // permute . permute composes
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[2, 3, 4]);
        let p1 = b
            .push(
                OpKind::Permute {
                    perm: vec![2, 0, 1],
                },
                &[x],
                "p1",
            )
            .unwrap();
        b.push(
            OpKind::Permute {
                perm: vec![1, 2, 0],
            },
            &[p1],
            "p2",
        )
        .unwrap();
        let (og, report) = optimize(&b.finish(), OptLevel::O1);
        assert_eq!(report.layout, 1);
        assert_eq!(og.len(), 2);
        let OpKind::Permute { perm } = &og.nodes[1].op else {
            panic!("expected composed permute");
        };
        // permute(permute(x, [2,0,1]), [1,2,0]) leaves axis i reading
        // x's axis p1[p2[i]] = [0, 1, 2]... composed explicitly:
        assert_eq!(perm, &vec![0, 1, 2]);
        og.validate().unwrap();
    }

    #[test]
    fn output_transposes_are_preserved() {
        // The second transpose IS the graph output: the pair must stay.
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[2, 3, 4]);
        let t1 = b
            .push(OpKind::Transpose { d0: 1, d1: 2 }, &[x], "t1")
            .unwrap();
        b.push(OpKind::Transpose { d0: 1, d1: 2 }, &[t1], "t2")
            .unwrap();
        let (og, report) = optimize(&b.finish(), OptLevel::O1);
        assert_eq!(report.layout, 0);
        assert_eq!(og.len(), 3);
    }

    #[test]
    fn seed_hints_survive_repeated_optimization() {
        // optimize(optimize(g)) must keep pointing at ORIGINAL ids.
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[2, 3, 4]);
        let t1 = b
            .push(OpKind::Transpose { d0: 1, d1: 2 }, &[x], "t1")
            .unwrap();
        let t2 = b
            .push(OpKind::Transpose { d0: 2, d1: 1 }, &[t1], "t2")
            .unwrap();
        let h = b.push(linear(4, 8), &[t2], "fc").unwrap();
        b.push(OpKind::Gelu, &[h], "act").unwrap();
        let g = b.finish();
        let (once, _) = optimize(&g, OptLevel::O2);
        let (twice, again) = optimize(&once, OptLevel::O2);
        assert_eq!(again.rewrites(), 0, "optimization must be idempotent");
        assert_eq!(once.len(), twice.len());
        // The fused tail node sits at position 1 but its linear stage
        // still seeds from original id 3.
        let OpKind::Fused(f) = &twice.nodes[1].op else {
            panic!("expected fused node");
        };
        assert_eq!(f.stages[0].seed_id, 3);
        assert_eq!(twice.nodes[0].seed_hint, Some(NodeId(0)));
    }

    #[test]
    fn contiguous_before_stride_capable_consumer_is_elided() {
        // transpose -> contiguous -> softmax: the softmax kernel walks
        // strided lanes, so the copy goes away.
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[2, 3, 4]);
        let t = b
            .push(OpKind::Transpose { d0: 1, d1: 2 }, &[x], "t")
            .unwrap();
        let c = b.push(OpKind::Contiguous, &[t], "c").unwrap();
        b.push(OpKind::Softmax { dim: 2 }, &[c], "sm").unwrap();
        let (og, report) = optimize_with(&b.finish(), OptLevel::O1, true);
        assert_eq!(report.contiguous_elided, 1);
        assert_eq!(report.elision_bytes_saved, 4 * 24);
        assert_eq!(og.len(), 3);
        assert!(!og.iter().any(|n| matches!(n.op, OpKind::Contiguous)));
        og.validate().unwrap();

        // with elision pinned off the copy stays
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[2, 3, 4]);
        let t = b
            .push(OpKind::Transpose { d0: 1, d1: 2 }, &[x], "t")
            .unwrap();
        let c = b.push(OpKind::Contiguous, &[t], "c").unwrap();
        b.push(OpKind::Softmax { dim: 2 }, &[c], "sm").unwrap();
        let (og, report) = optimize_with(&b.finish(), OptLevel::O1, false);
        assert_eq!(report.contiguous_elided, 0);
        assert!(og.iter().any(|n| matches!(n.op, OpKind::Contiguous)));
    }

    #[test]
    fn contiguous_before_incapable_consumer_stays() {
        // transpose -> contiguous -> topk: the selection kernel still
        // materializes internally, so the explicit copy must survive.
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[4, 4]);
        let t = b
            .push(OpKind::Transpose { d0: 0, d1: 1 }, &[x], "t")
            .unwrap();
        let c = b.push(OpKind::Contiguous, &[t], "c").unwrap();
        b.push(OpKind::TopK { k: 2 }, &[c], "top").unwrap();
        let (og, report) = optimize_with(&b.finish(), OptLevel::O1, true);
        assert_eq!(report.contiguous_elided, 0);
        assert_eq!(og.len(), 4);
    }

    #[test]
    fn shard_machinery_is_never_fused() {
        // linear_shard -> gelu would normally absorb into a GEMM epilogue;
        // shard plans must keep the shard's exact RNG/slice semantics, and
        // the all_gather marks a device cut point no rewrite may cross.
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[2, 8]);
        let s = b
            .push(
                OpKind::LinearShard {
                    in_f: 8,
                    out_f: 8,
                    bias: true,
                    part: 0,
                    parts: 2,
                    row_split: false,
                },
                &[x],
                "fc.shard0",
            )
            .unwrap();
        let a = b.push(OpKind::Gelu, &[s], "act").unwrap();
        let g1 = b
            .push(OpKind::AllGather { dim: 1 }, &[a], "gather")
            .unwrap();
        b.push(OpKind::Relu, &[g1], "post").unwrap();
        let (og, report) = optimize_with(&b.finish(), OptLevel::O2, true);
        assert_eq!(report.gemm_epilogue, 0);
        assert!(og
            .iter()
            .any(|n| matches!(n.op, OpKind::LinearShard { .. })));
        assert!(og.iter().any(|n| matches!(n.op, OpKind::Gelu)));
        assert!(og.iter().any(|n| matches!(n.op, OpKind::AllGather { .. })));
    }

    #[test]
    fn copying_reshape_consumer_blocks_elision() {
        // transpose -> contiguous -> reshape that merges the transposed
        // dims: dropping the copy would only move it into the reshape, so
        // the pass refuses.
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[2, 3, 4]);
        let t = b
            .push(OpKind::Transpose { d0: 1, d1: 2 }, &[x], "t")
            .unwrap();
        let c = b.push(OpKind::Contiguous, &[t], "c").unwrap();
        let r = b
            .push(OpKind::Reshape { shape: vec![8, 3] }, &[c], "r")
            .unwrap();
        b.push(OpKind::Relu, &[r], "act").unwrap();
        let (_, report) = optimize_with(&b.finish(), OptLevel::O1, true);
        assert_eq!(report.contiguous_elided, 0);
    }

    #[test]
    fn zero_copy_reshape_consumer_allows_elision() {
        // batch-1 attention prologue: [1,H,T,hd] permuted view reshaped to
        // [H,T,hd] merges only the size-1 batch dim -> zero-copy, and the
        // consuming bmm packs straight from strides.
        let mut b = GraphBuilder::new("g");
        let q = b.input(&[1, 4, 6, 8]); // [B,T,H,hd] pre-permute
        let k = b.input(&[6, 8, 4]); // side operand for bmm
        let p = b
            .push(
                OpKind::Permute {
                    perm: vec![0, 2, 1, 3],
                },
                &[q],
                "p",
            )
            .unwrap();
        let c = b.push(OpKind::Contiguous, &[p], "c").unwrap();
        let r = b
            .push(
                OpKind::Reshape {
                    shape: vec![6, 4, 8],
                },
                &[c],
                "r",
            )
            .unwrap();
        b.push(OpKind::Bmm, &[r, k], "scores").unwrap();
        let (og, report) = optimize_with(&b.finish(), OptLevel::O1, true);
        assert_eq!(
            report.contiguous_elided, 1,
            "size-1 batch merge is stride-compatible"
        );
        og.validate().unwrap();
    }

    #[test]
    fn output_contiguous_is_preserved() {
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[2, 3]);
        let t = b
            .push(OpKind::Transpose { d0: 0, d1: 1 }, &[x], "t")
            .unwrap();
        b.push(OpKind::Contiguous, &[t], "c").unwrap();
        let (og, report) = optimize_with(&b.finish(), OptLevel::O1, true);
        assert_eq!(report.contiguous_elided, 0);
        assert_eq!(og.len(), 3);
    }

    #[test]
    fn dense_input_contiguous_is_always_elided() {
        // relu output is dense, so the copy is a no-op regardless of the
        // consumer's capability.
        let mut b = GraphBuilder::new("g");
        let x = b.input(&[1, 3, 4, 4]);
        let a = b.push(OpKind::Relu, &[x], "act").unwrap();
        let c = b.push(OpKind::Contiguous, &[a], "c").unwrap();
        b.push(OpKind::InterpolateBilinear { oh: 8, ow: 8 }, &[c], "up")
            .unwrap();
        let (og, report) = optimize_with(&b.finish(), OptLevel::O1, true);
        assert_eq!(report.contiguous_elided, 1);
        assert_eq!(report.elision_bytes_saved, 0, "no copy was happening");
        assert!(!og.iter().any(|n| matches!(n.op, OpKind::Contiguous)));
    }

    #[test]
    fn report_serializes() {
        let r = OptReport {
            nodes_before: 10,
            nodes_after: 7,
            conv_bn_act: 1,
            ..OptReport::default()
        };
        let s = serde_json::to_string(&r).unwrap();
        assert!(s.contains("\"nodes_before\":10"), "got {s}");
    }
}
