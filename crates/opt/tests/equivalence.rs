//! Registry-wide equivalence sweep: every model in the registry must
//! validate after optimization, produce the same outputs as the
//! unoptimized graph (bit-identical unless Conv+BN folding reordered
//! arithmetic, then within the documented tolerance), and carry zero
//! fusion lints at `-O2`.

use ngb_analyze::{Analyzer, Lint};
use ngb_exec::{Engine, Interpreter};
use ngb_models::{ModelId, Scale};
use ngb_opt::{optimize, OptLevel};
use ngb_tensor::{bit_equal, Tolerance};

const FUSION_LINTS: [Lint; 3] = [
    Lint::FuseLinearActivation,
    Lint::FuseAttention,
    Lint::FuseConvBnRelu,
];

/// Outputs of the optimized graph match the unoptimized reference, on
/// the sequential engine and an 8-thread parallel engine.
#[test]
fn optimized_models_match_reference_outputs() {
    for &m in ModelId::all() {
        let alias = m.spec().alias;
        let g = m.build(1, Scale::Tiny).unwrap();
        let (og, report) = optimize(&g, OptLevel::O2);
        og.validate()
            .unwrap_or_else(|e| panic!("{alias}: optimized graph invalid: {e}"));
        assert!(
            report.nodes_after <= report.nodes_before,
            "{alias}: optimization grew the graph"
        );
        if report.rewrites() > 0 {
            assert!(
                report.nodes_after < report.nodes_before,
                "{alias}: rewrites applied but node count did not drop"
            );
        }

        let base = Interpreter::default().run(&g).unwrap();
        for engine in [Engine::Sequential, Engine::Parallel(8)] {
            let opt = Interpreter::default().engine(engine).run(&og).unwrap();
            assert_eq!(
                base.outputs.len(),
                opt.outputs.len(),
                "{alias}: output count changed under {engine:?}"
            );
            for (i, ((_, a), (_, b))) in base.outputs.iter().zip(&opt.outputs).enumerate() {
                if report.conv_bn_act == 0 {
                    // No arithmetic was reordered: bit-identical.
                    assert!(
                        bit_equal(a, b).unwrap(),
                        "{alias}: output {i} not bit-identical under {engine:?}"
                    );
                } else {
                    Tolerance::bn_folding().check(a, b).unwrap_or_else(|e| {
                        panic!("{alias}: output {i} out of tolerance under {engine:?}: {e}")
                    });
                }
            }
        }
    }
}

/// `-O2` executes every fusion the analyzer can flag: the optimized
/// graph re-analyzes with zero fusion findings and no new deny-level
/// findings.
#[test]
fn optimized_models_clear_fusion_lints() {
    let analyzer = Analyzer::new();
    for &m in ModelId::all() {
        let alias = m.spec().alias;
        let g = m.build(1, Scale::Tiny).unwrap();
        let unopt = analyzer.analyze(&g);
        let candidates: usize = FUSION_LINTS.iter().map(|&l| unopt.findings(l).len()).sum();

        let (og, report) = optimize(&g, OptLevel::O2);
        let opt = analyzer.analyze(&og);
        for lint in FUSION_LINTS {
            let left = opt.findings(lint);
            assert!(
                left.is_empty(),
                "{alias}: {} finding(s) of {} survive -O2: {:?}",
                left.len(),
                lint.name(),
                left.first().map(|d| d.to_string())
            );
        }
        assert_eq!(
            opt.deny_count(),
            0,
            "{alias}: optimization introduced deny findings:\n{}",
            opt.to_text(false)
        );
        if candidates > 0 {
            assert!(
                report.fusions() > 0,
                "{alias}: {candidates} fusion candidate(s) flagged but none executed"
            );
            assert!(
                report.intermediate_bytes_saved > 0,
                "{alias}: fusions applied but no intermediate traffic saved"
            );
        }
    }
}

/// At least a meaningful share of the registry actually has fusion
/// work — the sweep is not vacuous.
#[test]
fn registry_has_fusion_candidates() {
    let fused_models = ModelId::all()
        .iter()
        .filter(|m| {
            let g = m.build(1, Scale::Tiny).unwrap();
            optimize(&g, OptLevel::O2).1.fusions() > 0
        })
        .count();
    assert!(
        fused_models >= 6,
        "only {fused_models} of {} models had any fusion",
        ModelId::all().len()
    );
}
