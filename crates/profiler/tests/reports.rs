//! Report-format stability tests: the CSV schema, text layout, and JSON
//! field set are public interfaces that downstream tooling parses.

use ngb_graph::{GraphBuilder, OpKind};
use ngb_platform::Platform;
use ngb_profiler::report::{csv_header, NonGemmReport, PerformanceReport, WorkloadReport};
use ngb_profiler::{profile_analytic, profile_measured};
use ngb_runtime::Flow;

fn sample_graph() -> ngb_graph::Graph {
    let mut b = GraphBuilder::new("report_sample");
    let x = b.input(&[2, 3, 8, 8]);
    let c = b
        .push(
            OpKind::Conv2d {
                in_c: 3,
                out_c: 4,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
                bias: true,
            },
            &[x],
            "conv",
        )
        .unwrap();
    let n = b.push(OpKind::BatchNorm2d { c: 4 }, &[c], "bn").unwrap();
    let a = b.push(OpKind::Relu, &[n], "act").unwrap();
    let p = b
        .push(OpKind::AdaptiveAvgPool2d { oh: 1, ow: 1 }, &[a], "pool")
        .unwrap();
    let f = b
        .push(OpKind::Reshape { shape: vec![2, 4] }, &[p], "flat")
        .unwrap();
    b.push(OpKind::Softmax { dim: 1 }, &[f], "sm").unwrap();
    b.finish()
}

#[test]
fn csv_schema_is_stable() {
    let header = csv_header();
    let expected = [
        "model",
        "platform",
        "flow",
        "batch",
        "latency_ms",
        "energy_j",
        "peak_mem_mb",
        "gemm_frac",
        "normalization_frac",
        "activation_frac",
        "memory_frac",
        "arithmetic_frac",
        "logit_frac",
        "roi_frac",
        "interpolation_frac",
        "pooling_frac",
        "embedding_frac",
        "collective_frac",
        "other_frac",
    ];
    assert_eq!(header.split(',').collect::<Vec<_>>(), expected);
    // every row has exactly the header's column count, regardless of which
    // groups the model actually exercises
    let g = sample_graph();
    for flow in [Flow::Eager, Flow::Ort] {
        let p = profile_analytic(&g, &Platform::workstation(), flow, true, 2);
        let row = PerformanceReport::from_profile(&p).to_csv_row();
        assert_eq!(row.split(',').count(), expected.len(), "{flow}: {row}");
    }
}

#[test]
fn csv_fractions_parse_and_sum_to_one() {
    let g = sample_graph();
    let p = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, 2);
    let row = PerformanceReport::from_profile(&p).to_csv_row();
    let fields: Vec<&str> = row.split(',').collect();
    let fracs: f64 = fields[7..]
        .iter()
        .map(|f| f.parse::<f64>().expect("numeric"))
        .sum();
    assert!((fracs - 1.0).abs() < 0.01, "fractions sum to {fracs}");
}

#[test]
fn text_report_mentions_every_active_group() {
    let g = sample_graph();
    let p = profile_analytic(&g, &Platform::mobile(), Flow::Eager, true, 2);
    let txt = PerformanceReport::from_profile(&p).to_text();
    for label in ["GEMM", "Normalization", "Activation", "Pooling", "Logit"] {
        assert!(txt.contains(label), "missing {label} in:\n{txt}");
    }
    assert!(txt.contains("batch 2"));
}

#[test]
fn json_fields_are_complete() {
    let g = sample_graph();
    let p = profile_analytic(&g, &Platform::data_center(), Flow::Ort, true, 2);
    let perf: serde_json::Value =
        serde_json::to_value(PerformanceReport::from_profile(&p)).expect("serializes");
    for field in [
        "model",
        "platform",
        "flow",
        "batch",
        "latency_ms",
        "energy_j",
        "peak_memory_mb",
        "gemm_frac",
        "group_fracs",
    ] {
        assert!(perf.get(field).is_some(), "missing {field}");
    }
    let wl: serde_json::Value =
        serde_json::to_value(WorkloadReport::from_graph(&g)).expect("serializes");
    assert_eq!(wl["total_ops"], 7);
    let ng: serde_json::Value =
        serde_json::to_value(NonGemmReport::from_graph(&g)).expect("serializes");
    assert_eq!(ng["gemm_ops"], 1);
}

#[test]
fn measured_and_analytic_reports_share_schema() {
    let g = sample_graph();
    let analytic = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, 2);
    let measured = profile_measured(&g, 1, 3).expect("executes");
    let ra = PerformanceReport::from_profile(&analytic).to_csv_row();
    let rm = PerformanceReport::from_profile(&measured).to_csv_row();
    assert_eq!(ra.split(',').count(), rm.split(',').count());
}

#[test]
fn trace_export_composes_with_reports() {
    let g = sample_graph();
    let p = profile_analytic(&g, &Platform::data_center(), Flow::Ort, true, 2);
    let trace = ngb_profiler::trace::to_chrome_trace(&p);
    let v: serde_json::Value = serde_json::from_str(&trace).expect("valid json");
    assert!(!v["traceEvents"].as_array().expect("array").is_empty());
}

#[test]
fn gemm_intensity_dominates_at_model_scale() {
    // at transformer-realistic sizes, GEMM arithmetic intensity towers over
    // the element-wise groups — the paper's reason non-GEMM ops can't ride
    // the tensor cores
    let mut b = GraphBuilder::new("scale");
    let x = b.input(&[1, 128, 768]);
    let l = b
        .push(
            OpKind::Linear {
                in_f: 768,
                out_f: 3072,
                bias: true,
            },
            &[x],
            "up",
        )
        .unwrap();
    b.push(OpKind::Gelu, &[l], "act").unwrap();
    let g = b.finish();
    let r = NonGemmReport::from_graph(&g);
    let gemm_ai = r.group_costs["GEMM"].arithmetic_intensity();
    let act_ai = r.group_costs["Activation"].arithmetic_intensity();
    assert!(
        gemm_ai > 10.0 * act_ai,
        "GEMM {gemm_ai:.1} vs Act {act_ai:.1}"
    );
}
