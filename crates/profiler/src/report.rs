//! The three NonGEMM Bench output reports (paper §3.2.4):
//! performance/cost, workload, and non-GEMM-specific.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ngb_graph::{Graph, NonGemmGroup, OpClass};
use serde::Serialize;

use crate::profile::ModelProfile;

/// Performance/cost report: end-to-end latency with operator-level
/// breakdown, energy, and peak memory.
#[derive(Debug, Clone, Serialize)]
pub struct PerformanceReport {
    /// Model name.
    pub model: String,
    /// Platform label.
    pub platform: String,
    /// Flow label.
    pub flow: String,
    /// Batch size.
    pub batch: usize,
    /// End-to-end latency, milliseconds.
    pub latency_ms: f64,
    /// Energy, joules.
    pub energy_j: f64,
    /// Peak activation memory, megabytes.
    pub peak_memory_mb: f64,
    /// GEMM share of latency (0–1).
    pub gemm_frac: f64,
    /// Non-GEMM share per group (0–1).
    pub group_fracs: BTreeMap<String, f64>,
}

impl PerformanceReport {
    /// Builds the report from a profile.
    pub fn from_profile(p: &ModelProfile) -> PerformanceReport {
        let b = p.breakdown();
        PerformanceReport {
            model: p.model.clone(),
            platform: p.platform.clone(),
            flow: p.flow.clone(),
            batch: p.batch,
            latency_ms: p.total_latency_s() * 1e3,
            energy_j: p.total_energy_j(),
            peak_memory_mb: p.peak_memory_bytes as f64 / 1e6,
            gemm_frac: b.gemm_frac(),
            group_fracs: NonGemmGroup::all()
                .iter()
                .filter_map(|&g| {
                    let f = b.group_frac(g);
                    (f > 0.0).then(|| (g.label().to_string(), f))
                })
                .collect(),
        }
    }

    /// Renders a human-readable block.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} | {} | {} | batch {}",
            self.model, self.platform, self.flow, self.batch
        );
        let _ = writeln!(
            s,
            "  latency {:.3} ms   energy {:.3} J   peak mem {:.1} MB",
            self.latency_ms, self.energy_j, self.peak_memory_mb
        );
        let _ = writeln!(s, "  GEMM {:5.1}%", self.gemm_frac * 100.0);
        for (g, f) in &self.group_fracs {
            let _ = writeln!(s, "  {g:<14} {:5.1}%", f * 100.0);
        }
        s
    }

    /// One CSV row (see [`csv_header`] for the column order).
    pub fn to_csv_row(&self) -> String {
        let mut row = format!(
            "{},{},{},{},{:.6},{:.6},{:.3},{:.4}",
            self.model,
            self.platform.replace(',', ";"),
            self.flow.replace(',', ";"),
            self.batch,
            self.latency_ms,
            self.energy_j,
            self.peak_memory_mb,
            self.gemm_frac
        );
        for g in NonGemmGroup::all() {
            let f = self.group_fracs.get(g.label()).copied().unwrap_or(0.0);
            let _ = write!(row, ",{f:.4}");
        }
        row
    }
}

/// CSV header matching [`PerformanceReport::to_csv_row`].
pub fn csv_header() -> String {
    let mut h = "model,platform,flow,batch,latency_ms,energy_j,peak_mem_mb,gemm_frac".to_string();
    for g in NonGemmGroup::all() {
        let _ = write!(h, ",{}_frac", g.label().to_lowercase());
    }
    h
}

/// Workload report: operator histogram and the tensor shapes captured
/// during inference (paper: "the shape of the tensors captured during
/// inference on realistic data").
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadReport {
    /// Model name.
    pub model: String,
    /// Total operator count.
    pub total_ops: usize,
    /// Parameter count.
    pub params: usize,
    /// Operator name → occurrences.
    pub op_histogram: BTreeMap<String, usize>,
    /// Operator name → example output shapes (up to 3 distinct).
    pub example_shapes: BTreeMap<String, Vec<Vec<usize>>>,
}

impl WorkloadReport {
    /// Builds the report from a graph.
    pub fn from_graph(g: &Graph) -> WorkloadReport {
        let mut shapes: BTreeMap<String, Vec<Vec<usize>>> = BTreeMap::new();
        for n in g.iter() {
            let e = shapes.entry(n.op.name().to_string()).or_default();
            if e.len() < 3 && !e.contains(&n.out_shape) {
                e.push(n.out_shape.clone());
            }
        }
        WorkloadReport {
            model: g.name.clone(),
            total_ops: g.len(),
            params: g.param_count(),
            op_histogram: g
                .op_histogram()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            example_shapes: shapes,
        }
    }
}

/// Compute and traffic totals of one operator group (drives the
/// arithmetic-intensity analysis of why non-GEMM ops resist acceleration).
#[derive(Debug, Clone, Default, Serialize)]
pub struct GroupCost {
    /// Total floating-point operations.
    pub flops: f64,
    /// Total memory traffic in bytes.
    pub bytes: f64,
    /// Total unfused (eager) kernel launches.
    pub kernels: u64,
}

impl GroupCost {
    /// FLOPs per byte of traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes > 0.0 {
            self.flops / self.bytes
        } else {
            0.0
        }
    }
}

/// Non-GEMM-specific report: group counts, operator variants, and
/// dynamicity (paper: "number of operator variants of the same class",
/// "non-GEMM operator trace on different domains").
#[derive(Debug, Clone, Serialize)]
pub struct NonGemmReport {
    /// Model name.
    pub model: String,
    /// Non-GEMM node count.
    pub non_gemm_ops: usize,
    /// GEMM node count.
    pub gemm_ops: usize,
    /// Group label → node count.
    pub group_counts: BTreeMap<String, usize>,
    /// Group label → distinct operator names within the group
    /// (e.g. Normalization: layer_norm, frozen_batch_norm2d, …).
    pub group_variants: BTreeMap<String, Vec<String>>,
    /// Number of data-dependent (dynamic) operators.
    pub dynamic_ops: usize,
    /// Per-group compute/traffic totals ("GEMM" plus the non-GEMM groups).
    pub group_costs: BTreeMap<String, GroupCost>,
}

impl NonGemmReport {
    /// Builds the report from a graph.
    pub fn from_graph(g: &Graph) -> NonGemmReport {
        let mut group_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut group_variants: BTreeMap<String, std::collections::BTreeSet<String>> =
            BTreeMap::new();
        let mut dynamic = 0usize;
        let mut non_gemm = 0usize;
        let mut gemm = 0usize;
        let mut group_costs: BTreeMap<String, GroupCost> = BTreeMap::new();
        for n in g.iter() {
            let cost = g.node_cost(n.id);
            let key = match n.class() {
                OpClass::Gemm => {
                    gemm += 1;
                    "GEMM".to_string()
                }
                OpClass::NonGemm(grp) => {
                    non_gemm += 1;
                    *group_counts.entry(grp.label().to_string()).or_insert(0) += 1;
                    group_variants
                        .entry(grp.label().to_string())
                        .or_default()
                        .insert(n.op.name().to_string());
                    grp.label().to_string()
                }
            };
            let gc = group_costs.entry(key).or_default();
            gc.flops += cost.flops;
            gc.bytes += cost.memory_bytes();
            gc.kernels += cost.kernels as u64;
            if n.op.is_dynamic() {
                dynamic += 1;
            }
        }
        NonGemmReport {
            model: g.name.clone(),
            non_gemm_ops: non_gemm,
            gemm_ops: gemm,
            group_counts,
            group_variants: group_variants
                .into_iter()
                .map(|(k, v)| (k, v.into_iter().collect()))
                .collect(),
            dynamic_ops: dynamic,
            group_costs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_analytic;
    use ngb_graph::{GraphBuilder, OpKind};
    use ngb_platform::Platform;
    use ngb_runtime::Flow;

    fn toy() -> Graph {
        let mut b = GraphBuilder::new("toy");
        let x = b.input(&[1, 16]);
        let l = b
            .push(
                OpKind::Linear {
                    in_f: 16,
                    out_f: 16,
                    bias: true,
                },
                &[x],
                "fc",
            )
            .unwrap();
        let a = b.push(OpKind::Gelu, &[l], "act").unwrap();
        let boxes = b.input(&[8, 4]);
        let scores = b.input(&[8]);
        b.push(
            OpKind::Nms {
                iou_threshold: 0.5,
                nominal_keep: 4,
            },
            &[boxes, scores],
            "nms",
        )
        .unwrap();
        b.push(OpKind::Softmax { dim: 1 }, &[a], "sm").unwrap();
        b.finish()
    }

    #[test]
    fn performance_report_roundtrip() {
        let g = toy();
        let p = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, 1);
        let r = PerformanceReport::from_profile(&p);
        assert!(r.latency_ms > 0.0);
        let txt = r.to_text();
        assert!(txt.contains("GEMM"));
        let csv = r.to_csv_row();
        assert_eq!(csv.matches(',').count(), csv_header().matches(',').count());
        let js = serde_json::to_string(&r).unwrap();
        assert!(js.contains("latency_ms"));
    }

    #[test]
    fn workload_report_counts_and_shapes() {
        let g = toy();
        let w = WorkloadReport::from_graph(&g);
        assert_eq!(w.total_ops, g.len());
        assert_eq!(w.op_histogram["linear"], 1);
        assert_eq!(w.example_shapes["linear"], vec![vec![1, 16]]);
        assert!(w.params > 0);
    }

    #[test]
    fn non_gemm_report_tracks_variants_and_dynamicity() {
        let g = toy();
        let r = NonGemmReport::from_graph(&g);
        assert_eq!(r.gemm_ops, 1);
        assert!(r.non_gemm_ops >= 3);
        assert_eq!(r.dynamic_ops, 1);
        assert!(r.group_counts["RoI"] == 1);
        assert!(r.group_variants["Activation"].contains(&"gelu".to_string()));
        assert!(r.group_costs["GEMM"].flops > 0.0);
        assert!(r.group_costs["GEMM"].kernels >= 1);
        assert!(r.group_costs["Activation"].bytes > 0.0);
        assert!(r.group_costs["Activation"].arithmetic_intensity() > 0.0);
    }
}
