//! # ngb-profiler
//!
//! The end-to-end profiling flow of NonGEMM Bench (paper §3.2.2): given a
//! model graph, a [`ngb_platform::Platform`], and a
//! [`ngb_runtime::Flow`], it produces a per-operator latency/energy
//! profile and aggregates it into the paper's breakdowns — GEMM vs
//! non-GEMM and per non-GEMM operator group.
//!
//! Two profiling backends:
//!
//! * [`profile_analytic`] — evaluates the flow's execution plan on the
//!   analytic device models (the substitution for the paper's physical
//!   GPUs; see DESIGN.md), and
//! * [`profile_measured`] — actually executes the graph on the host CPU
//!   through [`ngb_exec::Interpreter`] and uses wall-clock timings.
//!   [`profile_measured_with_engine`] does the same on the parallel
//!   executor, attributing each node to its worker thread.
//!
//! The three report types of §3.2.4 (performance/cost, workload,
//! non-GEMM) live in [`report`].

#![forbid(unsafe_code)]

mod profile;
pub mod report;
pub mod trace;

pub use profile::{
    breakdown_from_trace, profile_analytic, profile_analytic_with_options, profile_measured,
    profile_measured_checked, profile_measured_configured, profile_measured_with_engine, Breakdown,
    ModelProfile, NodeProfile, StagePhase,
};
