//! Chrome-tracing export: renders a [`ModelProfile`] as a `chrome://tracing`
//! / Perfetto-compatible JSON document, one lane per execution thread (or
//! per device for analytic profiles), so profiles can be inspected visually
//! alongside real PyTorch traces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::profile::ModelProfile;

/// Process id used for all events of one profile.
const PID: usize = 1;

/// Serializes `profile` into the Chrome trace-event JSON format.
///
/// The document starts with `"M"` metadata records naming the process
/// (the model) and every thread lane, followed by complete (`"X"`) events
/// with microsecond timestamps taken from each node's recorded start
/// offset. Every event carries explicit numeric `pid`/`tid` fields;
/// parallel measured profiles therefore render as genuinely overlapping
/// lanes, one per worker thread. Transfers appear on a dedicated `pcie`
/// lane. The result loads directly in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev).
pub fn to_chrome_trace(profile: &ModelProfile) -> String {
    // lane names: worker-N for host threads, the placement for devices
    let mut lanes: BTreeMap<usize, String> = BTreeMap::new();
    for node in &profile.nodes {
        lanes.entry(node.tid).or_insert_with(|| {
            if node.placement == "host" {
                format!("worker-{}", node.tid)
            } else {
                node.placement.to_string()
            }
        });
    }
    let has_transfers = profile.nodes.iter().any(|n| n.transfer_s > 0.0);
    let pcie_tid = lanes.keys().next_back().map_or(0, |&t| t + 1);
    if has_transfers {
        lanes.insert(pcie_tid, "pcie".to_string());
    }

    let mut events = Vec::new();
    let mut meta = String::new();
    let _ = write!(
        meta,
        r#"{{"name":"process_name","ph":"M","pid":{PID},"args":{{"name":{}}}}}"#,
        json_str(&profile.model),
    );
    events.push((f64::NEG_INFINITY, meta));
    for (tid, lane) in &lanes {
        let mut meta = String::new();
        let _ = write!(
            meta,
            r#"{{"name":"thread_name","ph":"M","pid":{PID},"tid":{tid},"args":{{"name":{}}}}}"#,
            json_str(lane),
        );
        events.push((f64::NEG_INFINITY, meta));
    }

    for node in &profile.nodes {
        let ts_us = node.start_s * 1e6;
        let dur_us = node.latency_s * 1e6;
        let class = match node.class {
            ngb_graph::OpClass::Gemm => "GEMM".to_string(),
            ngb_graph::OpClass::NonGemm(g) => g.label().to_string(),
        };
        let mut ev = String::new();
        let _ = write!(
            ev,
            r#"{{"name":{},"cat":{},"ph":"X","ts":{:.3},"dur":{:.3},"pid":{PID},"tid":{},"args":{{"op":{},"placement":{},"shape":{:?}}}}}"#,
            json_str(&node.name),
            json_str(&class),
            ts_us,
            dur_us.max(0.001),
            node.tid,
            json_str(node.op),
            json_str(node.placement),
            node.out_shape,
        );
        events.push((ts_us, ev));
        if node.transfer_s > 0.0 {
            let t_start_us = ts_us + dur_us;
            let t_us = node.transfer_s * 1e6;
            let mut ev = String::new();
            let _ = write!(
                ev,
                r#"{{"name":{},"cat":"transfer","ph":"X","ts":{:.3},"dur":{:.3},"pid":{PID},"tid":{pcie_tid}}}"#,
                json_str(&format!("{}.transfer", node.name)),
                t_start_us,
                t_us.max(0.001),
            );
            events.push((t_start_us, ev));
        }
    }
    // Perfetto wants ascending timestamps; metadata sorts first
    events.sort_by(|a, b| a.0.total_cmp(&b.0));
    let body: Vec<String> = events.into_iter().map(|(_, e)| e).collect();
    format!(
        r#"{{"traceEvents":[{}],"displayTimeUnit":"ms","otherData":{{"model":{},"platform":{},"flow":{}}}}}"#,
        body.join(","),
        json_str(&profile.model),
        json_str(&profile.platform),
        json_str(&profile.flow),
    )
}

fn json_str(s: &str) -> String {
    serde_json::to_string(s).expect("strings always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_analytic, profile_measured_with_engine};
    use ngb_exec::Engine;
    use ngb_graph::{GraphBuilder, OpKind};
    use ngb_platform::Platform;
    use ngb_runtime::Flow;

    fn profile() -> ModelProfile {
        let mut b = GraphBuilder::new("trace_me");
        let x = b.input(&[1, 32]);
        let h = b
            .push(
                OpKind::Linear {
                    in_f: 32,
                    out_f: 32,
                    bias: true,
                },
                &[x],
                "fc",
            )
            .unwrap();
        let v = b
            .push(OpKind::View { shape: vec![32] }, &[h], "view")
            .unwrap();
        b.push(OpKind::Contiguous, &[v], "contig").unwrap();
        let g = b.finish();
        profile_analytic(&g, &Platform::data_center(), Flow::Ort, true, 1)
    }

    #[test]
    fn trace_is_valid_json_with_all_nodes() {
        let p = profile();
        let trace = to_chrome_trace(&p);
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid json");
        let events = v["traceEvents"].as_array().expect("array");
        let x_events = events.iter().filter(|e| e["ph"] == "X").count();
        assert!(x_events >= p.nodes.len());
        assert_eq!(v["otherData"]["model"], "trace_me");
    }

    #[test]
    fn metadata_names_process_and_threads() {
        let trace = to_chrome_trace(&profile());
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid json");
        let events = v["traceEvents"].as_array().expect("array");
        assert_eq!(events[0]["ph"], "M");
        assert_eq!(events[0]["name"], "process_name");
        assert_eq!(events[0]["args"]["name"], "trace_me");
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e["name"] == "thread_name")
            .map(|e| e["args"]["name"].as_str().unwrap())
            .collect();
        assert!(thread_names.contains(&"gpu"), "{thread_names:?}");
        assert!(thread_names.contains(&"pcie"), "{thread_names:?}");
        // every X event's tid has a thread_name record
        let named_tids: Vec<u64> = events
            .iter()
            .filter(|e| e["name"] == "thread_name")
            .map(|e| e["tid"].as_u64().unwrap())
            .collect();
        for e in events.iter().filter(|e| e["ph"] == "X") {
            assert!(named_tids.contains(&e["tid"].as_u64().expect("numeric tid")));
        }
    }

    #[test]
    fn transfers_get_their_own_lane() {
        let p = profile();
        let trace = to_chrome_trace(&p);
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid json");
        let events = v["traceEvents"].as_array().expect("array");
        let pcie_tid = events
            .iter()
            .find(|e| e["name"] == "thread_name" && e["args"]["name"] == "pcie")
            .and_then(|e| e["tid"].as_u64())
            .expect("pcie lane metadata");
        let has_transfer = events
            .iter()
            .any(|e| e["ph"] == "X" && e["tid"] == pcie_tid && e["cat"] == "transfer");
        assert!(has_transfer, "ORT fallback must emit a transfer event");
    }

    #[test]
    fn timestamps_are_monotone() {
        let trace = to_chrome_trace(&profile());
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid json");
        let mut last = -1.0;
        for e in v["traceEvents"].as_array().expect("array") {
            if e["ph"] != "X" {
                continue; // metadata records carry no timestamp
            }
            let ts = e["ts"].as_f64().expect("number");
            assert!(ts >= last);
            last = ts;
        }
    }

    #[test]
    fn parallel_measured_trace_uses_worker_lanes() {
        let mut b = GraphBuilder::new("par_trace");
        let x = b.input(&[2, 16]);
        let l = b.push(OpKind::Gelu, &[x], "left").unwrap();
        let r = b.push(OpKind::Relu, &[x], "right").unwrap();
        b.push(OpKind::Add, &[l, r], "join").unwrap();
        let g = b.finish();
        let p = profile_measured_with_engine(&g, 1, 7, Engine::Parallel(2)).unwrap();
        let trace = to_chrome_trace(&p);
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid json");
        let events = v["traceEvents"].as_array().expect("array");
        let worker_lanes: Vec<&str> = events
            .iter()
            .filter(|e| e["name"] == "thread_name")
            .map(|e| e["args"]["name"].as_str().unwrap())
            .filter(|n| n.starts_with("worker-"))
            .collect();
        assert!(!worker_lanes.is_empty(), "no worker lanes in {trace}");
    }
}
