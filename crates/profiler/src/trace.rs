//! Chrome-tracing export: renders a [`ModelProfile`] as a `chrome://tracing`
//! / Perfetto-compatible JSON document, one lane per device, so profiles
//! can be inspected visually alongside real PyTorch traces.

use std::fmt::Write as _;

use crate::profile::ModelProfile;

/// Serializes `profile` into the Chrome trace-event JSON format.
///
/// Events are complete ("X") events with microsecond timestamps laid out
/// end-to-start in graph order; transfers appear as separate events on a
/// `pcie` lane. The result loads directly in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev).
pub fn to_chrome_trace(profile: &ModelProfile) -> String {
    let mut events = String::from("[");
    let mut cursor_us = 0.0f64;
    let mut first = true;
    for node in &profile.nodes {
        let dur_us = node.latency_s * 1e6;
        let class = match node.class {
            ngb_graph::OpClass::Gemm => "GEMM".to_string(),
            ngb_graph::OpClass::NonGemm(g) => g.label().to_string(),
        };
        if !first {
            events.push(',');
        }
        first = false;
        let _ = write!(
            events,
            r#"{{"name":{},"cat":{},"ph":"X","ts":{:.3},"dur":{:.3},"pid":1,"tid":{},"args":{{"op":{},"shape":{:?}}}}}"#,
            json_str(&node.name),
            json_str(&class),
            cursor_us,
            dur_us.max(0.001),
            json_str(node.placement),
            json_str(node.op),
            node.out_shape,
        );
        cursor_us += dur_us;
        if node.transfer_s > 0.0 {
            let t_us = node.transfer_s * 1e6;
            let _ = write!(
                events,
                r#",{{"name":{},"cat":"transfer","ph":"X","ts":{:.3},"dur":{:.3},"pid":1,"tid":"pcie"}}"#,
                json_str(&format!("{}.transfer", node.name)),
                cursor_us,
                t_us.max(0.001),
            );
            cursor_us += t_us;
        }
    }
    events.push(']');
    format!(
        r#"{{"traceEvents":{events},"displayTimeUnit":"ms","otherData":{{"model":{},"platform":{},"flow":{}}}}}"#,
        json_str(&profile.model),
        json_str(&profile.platform),
        json_str(&profile.flow),
    )
}

fn json_str(s: &str) -> String {
    serde_json::to_string(s).expect("strings always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_analytic;
    use ngb_graph::{GraphBuilder, OpKind};
    use ngb_platform::Platform;
    use ngb_runtime::Flow;

    fn profile() -> ModelProfile {
        let mut b = GraphBuilder::new("trace_me");
        let x = b.input(&[1, 32]);
        let h = b
            .push(
                OpKind::Linear {
                    in_f: 32,
                    out_f: 32,
                    bias: true,
                },
                &[x],
                "fc",
            )
            .unwrap();
        let v = b
            .push(OpKind::View { shape: vec![32] }, &[h], "view")
            .unwrap();
        b.push(OpKind::Contiguous, &[v], "contig").unwrap();
        let g = b.finish();
        profile_analytic(&g, &Platform::data_center(), Flow::Ort, true, 1)
    }

    #[test]
    fn trace_is_valid_json_with_all_nodes() {
        let p = profile();
        let trace = to_chrome_trace(&p);
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid json");
        let events = v["traceEvents"].as_array().expect("array");
        assert!(events.len() >= p.nodes.len());
        assert_eq!(v["otherData"]["model"], "trace_me");
    }

    #[test]
    fn transfers_get_their_own_lane() {
        let p = profile();
        let trace = to_chrome_trace(&p);
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid json");
        let has_pcie = v["traceEvents"]
            .as_array()
            .expect("array")
            .iter()
            .any(|e| e["tid"] == "pcie");
        assert!(has_pcie, "ORT fallback must emit a transfer event");
    }

    #[test]
    fn timestamps_are_monotone() {
        let trace = to_chrome_trace(&profile());
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid json");
        let mut last = -1.0;
        for e in v["traceEvents"].as_array().expect("array") {
            let ts = e["ts"].as_f64().expect("number");
            assert!(ts >= last);
            last = ts;
        }
    }
}
