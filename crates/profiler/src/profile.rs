//! Per-operator profiles and their aggregation.

use std::collections::BTreeMap;

use ngb_exec::{Engine, Interpreter};
use ngb_graph::{Graph, NodeId, NonGemmGroup, OpClass};
use ngb_platform::Platform;
use ngb_runtime::{Flow, Placement};
use serde::Serialize;

/// Which autoregressive stage a profiled node belongs to.
///
/// Profiles of full-sequence graphs default to [`StagePhase::Prefill`]
/// (for non-LM models the whole run is "prefill" in the trivial sense:
/// every input position is processed at once). A decode-step profile is
/// tagged [`StagePhase::Decode`] via [`ModelProfile::with_stage`], and
/// [`ModelProfile::stage_breakdown`] reports the paper's non-GEMM
/// fraction per stage — generation sits even deeper in the non-GEMM
/// regime than prefill because every GEMM shrinks to a matrix-vector
/// product while the normalization/memory chains keep their per-token
/// cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize)]
pub enum StagePhase {
    /// Full-sequence prompt processing (the default).
    #[default]
    Prefill,
    /// Single-token cached generation.
    Decode,
}

impl StagePhase {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            StagePhase::Prefill => "prefill",
            StagePhase::Decode => "decode",
        }
    }
}

/// Profile of one executed operator.
#[derive(Debug, Clone, Serialize)]
pub struct NodeProfile {
    /// Graph node id.
    pub id: NodeId,
    /// Dotted scope name.
    pub name: String,
    /// Operator short name.
    pub op: &'static str,
    /// GEMM / non-GEMM classification.
    pub class: OpClass,
    /// Kernel + dispatch latency, seconds.
    pub latency_s: f64,
    /// Host↔device transfer latency attributed to this node, seconds.
    pub transfer_s: f64,
    /// Energy, joules.
    pub energy_j: f64,
    /// Where the flow placed the op.
    pub placement: &'static str,
    /// Start offset of the kernel from the beginning of the run, seconds.
    /// Analytic profiles lay nodes out end-to-start; measured profiles use
    /// the recorded wall-clock start (which exposes concurrency).
    pub start_s: f64,
    /// Execution lane: the worker thread for measured runs, or a
    /// per-placement lane (cpu=0, gpu=1) for analytic ones.
    pub tid: usize,
    /// Output tensor shape.
    pub out_shape: Vec<usize>,
    /// Intra-op chunks this node's kernels dispatched in the measured run
    /// (a pure function of the tensor shapes; 1 per small serial kernel).
    /// 0 for analytic profiles, which execute nothing.
    pub intra_chunks: usize,
    /// Maximum number of threads that cooperated on one of this node's
    /// intra-op dispatches (1 when serial; 0 for analytic profiles).
    pub intra_parallelism: usize,
    /// Bytes this node's kernels copied into fresh dense buffers to
    /// satisfy a layout requirement (`contiguous()` materializations),
    /// from the final measured iteration. 0 when every kernel consumed
    /// its operands in place — the target state for strided view chains —
    /// and 0 for analytic profiles, which execute nothing.
    pub bytes_materialized: u64,
    /// For [`OpKind::Fused`](ngb_graph::OpKind::Fused) nodes: `(class,
    /// fraction)` pairs splitting this node's time back across the
    /// taxonomy classes of its constituent stages, pro-rated by the
    /// analytic cost model. Empty for primitive nodes (the node's own
    /// `class` owns all of its time).
    pub attribution: Vec<(OpClass, f64)>,
    /// Autoregressive stage this node's time belongs to (prefill unless
    /// the profile was retagged with [`ModelProfile::with_stage`]).
    pub stage: StagePhase,
    /// Simulated device index the node ran on (0 for single-device
    /// profiles; the `ngb-shard` executor numbers devices from its
    /// `--devices` roster).
    pub device: usize,
}

impl NodeProfile {
    /// Total wall time attributed to this node.
    pub fn total_s(&self) -> f64 {
        self.latency_s + self.transfer_s
    }
}

/// Cost-model attribution of a fused node's time back to its stages'
/// classes; empty for primitive nodes.
fn node_attribution(graph: &Graph, node: &ngb_graph::Node) -> Vec<(OpClass, f64)> {
    if let ngb_graph::OpKind::Fused(f) = &node.op {
        let inputs: Vec<Vec<usize>> = node
            .inputs
            .iter()
            .map(|&i| graph.nodes[i.0].out_shape.clone())
            .collect();
        ngb_graph::fused_attribution(f, &inputs)
    } else {
        Vec::new()
    }
}

/// Latency aggregated into the paper's categories.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Breakdown {
    /// End-to-end seconds.
    pub total_s: f64,
    /// Seconds in GEMM-classified operators.
    pub gemm_s: f64,
    /// Seconds per non-GEMM group.
    pub groups: BTreeMap<NonGemmGroup, f64>,
}

impl Breakdown {
    /// Seconds in all non-GEMM operators.
    pub fn non_gemm_s(&self) -> f64 {
        self.groups.values().sum()
    }

    /// Fraction of end-to-end time in GEMM operators.
    pub fn gemm_frac(&self) -> f64 {
        if self.total_s > 0.0 {
            self.gemm_s / self.total_s
        } else {
            0.0
        }
    }

    /// Fraction of end-to-end time in non-GEMM operators.
    pub fn non_gemm_frac(&self) -> f64 {
        if self.total_s > 0.0 {
            self.non_gemm_s() / self.total_s
        } else {
            0.0
        }
    }

    /// Fraction of end-to-end time in one non-GEMM group.
    pub fn group_frac(&self, g: NonGemmGroup) -> f64 {
        if self.total_s > 0.0 {
            self.groups.get(&g).copied().unwrap_or(0.0) / self.total_s
        } else {
            0.0
        }
    }

    /// Per-group seconds as stable `(label, seconds)` pairs in group
    /// order — the extractor the `ngb-regress` baseline snapshots record.
    /// Only groups that were actually charged appear.
    pub fn group_pairs(&self) -> Vec<(&'static str, f64)> {
        self.groups.iter().map(|(&g, &s)| (g.label(), s)).collect()
    }

    /// The most expensive non-GEMM group, with its share of total time
    /// (the paper's Table 4 metric).
    pub fn dominant_group(&self) -> Option<(NonGemmGroup, f64)> {
        self.groups
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite latencies"))
            .map(|(&g, &s)| {
                (
                    g,
                    if self.total_s > 0.0 {
                        s / self.total_s
                    } else {
                        0.0
                    },
                )
            })
    }
}

/// A complete profile of one (model × platform × flow × batch) run.
#[derive(Debug, Clone, Serialize)]
pub struct ModelProfile {
    /// Model name (graph name).
    pub model: String,
    /// Platform label (e.g. `"Data Center (CPU+GPU)"`).
    pub platform: String,
    /// Deployment flow label.
    pub flow: String,
    /// Batch size.
    pub batch: usize,
    /// Per-node profiles in graph order.
    pub nodes: Vec<NodeProfile>,
    /// Estimated peak activation memory, bytes.
    pub peak_memory_bytes: usize,
}

impl ModelProfile {
    /// End-to-end latency in seconds.
    pub fn total_latency_s(&self) -> f64 {
        self.nodes.iter().map(NodeProfile::total_s).sum()
    }

    /// End-to-end energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.nodes.iter().map(|n| n.energy_j).sum()
    }

    /// Total bytes copied into fresh dense buffers across the run
    /// (kernel-internal `contiguous()` materializations). 0 when every
    /// kernel consumed its operands in place, and for analytic profiles.
    pub fn total_bytes_materialized(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_materialized).sum()
    }

    /// Aggregates node latencies into the paper's breakdown. Transfer time
    /// is charged to the node that caused it (so ORT's fallen-back memory
    /// ops carry their PCIe cost, as in §4.2). Fused nodes split their
    /// time across their constituent classes by the recorded
    /// [`NodeProfile::attribution`] fractions, so a fused `linear → gelu`
    /// still contributes to both the GEMM bucket and the Activation group.
    pub fn breakdown(&self) -> Breakdown {
        let mut b = Breakdown::default();
        let charge = |class: OpClass, t: f64, b: &mut Breakdown| match class {
            OpClass::Gemm => b.gemm_s += t,
            OpClass::NonGemm(g) => *b.groups.entry(g).or_insert(0.0) += t,
        };
        for n in &self.nodes {
            let t = n.total_s();
            b.total_s += t;
            if n.attribution.is_empty() {
                charge(n.class, t, &mut b);
            } else {
                for &(class, frac) in &n.attribution {
                    charge(class, t * frac, &mut b);
                }
            }
        }
        b
    }

    /// Retags every node with `stage` (builder style) — used when a
    /// profile of a decode-step graph should report under
    /// [`StagePhase::Decode`].
    #[must_use]
    pub fn with_stage(mut self, stage: StagePhase) -> ModelProfile {
        for n in &mut self.nodes {
            n.stage = stage;
        }
        self
    }

    /// [`ModelProfile::breakdown`] restricted to nodes tagged `stage`.
    /// An empty stage yields a zeroed breakdown (`non_gemm_frac() == 0`).
    pub fn stage_breakdown(&self, stage: StagePhase) -> Breakdown {
        let filtered = ModelProfile {
            nodes: self
                .nodes
                .iter()
                .filter(|n| n.stage == stage)
                .cloned()
                .collect(),
            ..self.clone()
        };
        filtered.breakdown()
    }

    /// Merges another profile's nodes into this one (e.g. a decode-step
    /// profile appended to its prefill profile), keeping each node's
    /// stage tag so [`ModelProfile::stage_breakdown`] can split them
    /// back apart.
    #[must_use]
    pub fn merged_with(mut self, other: ModelProfile) -> ModelProfile {
        self.nodes.extend(other.nodes);
        self
    }

    /// The `k` slowest nodes (for hot-spot reports).
    pub fn hottest(&self, k: usize) -> Vec<&NodeProfile> {
        let mut v: Vec<&NodeProfile> = self.nodes.iter().collect();
        v.sort_by(|a, b| b.total_s().partial_cmp(&a.total_s()).expect("finite"));
        v.truncate(k);
        v
    }
}

/// Profiles `graph` analytically on `platform` under `flow`.
///
/// `use_gpu` requests GPU execution; it is ignored when the platform has no
/// GPU (matching the paper's CPU-only configurations).
pub fn profile_analytic(
    graph: &Graph,
    platform: &Platform,
    flow: Flow,
    use_gpu: bool,
    batch: usize,
) -> ModelProfile {
    profile_analytic_with_options(graph, platform, flow, use_gpu, batch, Default::default())
}

/// [`profile_analytic`] with extra runtime optimization passes
/// (e.g. FlashAttention-style fusion).
pub fn profile_analytic_with_options(
    graph: &Graph,
    platform: &Platform,
    flow: Flow,
    use_gpu: bool,
    batch: usize,
    options: ngb_runtime::RuntimeOptions,
) -> ModelProfile {
    let gpu_active = use_gpu && platform.has_gpu();
    let exec_plan = ngb_runtime::plan_with_options(graph, flow, gpu_active, options);
    let mut nodes = Vec::with_capacity(graph.len());
    let mut cursor_s = 0.0f64;
    for (node, planned) in graph.iter().zip(&exec_plan.nodes) {
        let device = match planned.placement {
            Placement::Gpu => platform.gpu.as_ref().expect("gpu placement requires gpu"),
            Placement::Cpu => &platform.cpu,
        };
        let kernel_s = device.op_latency(&planned.cost, planned.is_gemm);
        let latency_s = kernel_s + planned.dispatch_s;
        // transfers ride the GPU's PCIe link regardless of which side runs
        // the op
        let transfer_s = platform
            .gpu
            .as_ref()
            .map(|g| g.transfer_latency(planned.transfer_bytes))
            .unwrap_or(0.0);
        // utilization: compute-bound ops load the device fully, launch- or
        // bandwidth-bound ops much less
        let util = if planned.is_gemm { 0.9 } else { 0.35 };
        let energy_j = device.energy(latency_s + transfer_s, util);
        let start_s = cursor_s;
        cursor_s += latency_s + transfer_s;
        nodes.push(NodeProfile {
            id: node.id,
            name: node.name.clone(),
            op: node.op.name(),
            class: node.class(),
            latency_s,
            transfer_s,
            energy_j,
            placement: match planned.placement {
                Placement::Gpu => "gpu",
                Placement::Cpu => "cpu",
            },
            start_s,
            tid: match planned.placement {
                Placement::Cpu => 0,
                Placement::Gpu => 1,
            },
            out_shape: node.out_shape.clone(),
            intra_chunks: 0,
            intra_parallelism: 0,
            bytes_materialized: 0,
            attribution: node_attribution(graph, node),
            stage: StagePhase::Prefill,
            device: 0,
        });
    }
    ModelProfile {
        model: graph.name.clone(),
        platform: if gpu_active {
            platform.label()
        } else {
            format!("{} (CPU only)", platform.class)
        },
        flow: flow.label().to_string(),
        batch,
        nodes,
        peak_memory_bytes: graph.peak_activation_bytes(),
    }
}

/// Profiles `graph` by real execution on the host CPU, taking the
/// minimum over `iterations` runs per node (warm caches, like the paper's
/// steady-state iterations).
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn profile_measured(
    graph: &Graph,
    iterations: usize,
    seed: u64,
) -> Result<ModelProfile, ngb_tensor::TensorError> {
    profile_measured_with_engine(graph, iterations, seed, Engine::Sequential)
}

/// [`profile_measured`] on an explicit execution engine. With
/// [`Engine::Parallel`], per-node latencies are still minima over
/// iterations, while start offsets and worker attribution come from the
/// final iteration (so the trace shows one coherent concurrent timeline).
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn profile_measured_with_engine(
    graph: &Graph,
    iterations: usize,
    seed: u64,
    engine: Engine,
) -> Result<ModelProfile, ngb_tensor::TensorError> {
    profile_measured_configured(graph, iterations, seed, engine, None)
}

/// [`profile_measured_with_engine`] with an explicit intra-op parallelism
/// override: `Some(on)` forces the switch, `None` defers to `NGB_INTRAOP`
/// (default on). Per-node profiles record the chunk count and the maximum
/// effective intra-op parallelism observed.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn profile_measured_configured(
    graph: &Graph,
    iterations: usize,
    seed: u64,
    engine: Engine,
    intra_op: Option<bool>,
) -> Result<ModelProfile, ngb_tensor::TensorError> {
    profile_measured_checked(graph, iterations, seed, engine, intra_op, None)
}

/// [`profile_measured_configured`] with an explicit shadow-memory
/// sanitizer override: `Some(on)` forces the switch, `None` defers to
/// `NGB_SANITIZE` (default off). A sanitized run executes the same graph
/// with every buffer read, write, and free checked against the shadow
/// state; a detected hazard aborts profiling with the sanitizer's
/// diagnosis (offending nodes plus a replayable event trace) as the
/// error.
///
/// # Errors
///
/// Propagates interpreter errors, including sanitizer violations.
pub fn profile_measured_checked(
    graph: &Graph,
    iterations: usize,
    seed: u64,
    engine: Engine,
    intra_op: Option<bool>,
    sanitize: Option<bool>,
) -> Result<ModelProfile, ngb_tensor::TensorError> {
    let mut interp = Interpreter::new(seed).engine(engine);
    if let Some(on) = intra_op {
        interp = interp.intra_op(on);
    }
    if let Some(on) = sanitize {
        interp = interp.sanitize(on);
    }
    let iterations = iterations.max(1);
    let mut best: Vec<f64> = vec![f64::INFINITY; graph.len()];
    let mut shapes: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
    let mut starts: Vec<f64> = vec![0.0; graph.len()];
    let mut workers: Vec<usize> = vec![0; graph.len()];
    let mut chunks: Vec<usize> = vec![1; graph.len()];
    let mut intra: Vec<usize> = vec![1; graph.len()];
    let mut bytes_mat: Vec<u64> = vec![0; graph.len()];
    for _ in 0..iterations {
        let trace = interp.run(graph)?;
        for t in &trace.timings {
            best[t.id.0] = best[t.id.0].min(t.elapsed.as_secs_f64());
            shapes[t.id.0] = t.out_shape.clone();
            starts[t.id.0] = t.start.as_secs_f64();
            workers[t.id.0] = t.worker;
            chunks[t.id.0] = t.intra_chunks.max(1);
            intra[t.id.0] = intra[t.id.0].max(t.intra_participants);
            bytes_mat[t.id.0] = t.bytes_materialized;
        }
    }
    let nodes = graph
        .iter()
        .map(|n| NodeProfile {
            id: n.id,
            name: n.name.clone(),
            op: n.op.name(),
            class: n.class(),
            latency_s: best[n.id.0],
            transfer_s: 0.0,
            energy_j: 0.0, // no power telemetry on the host
            placement: "host",
            start_s: starts[n.id.0],
            tid: workers[n.id.0],
            out_shape: shapes[n.id.0].clone(),
            intra_chunks: chunks[n.id.0],
            intra_parallelism: intra[n.id.0],
            bytes_materialized: bytes_mat[n.id.0],
            attribution: node_attribution(graph, n),
            stage: StagePhase::Prefill,
            device: 0,
        })
        .collect();
    let batch = graph
        .iter()
        .next()
        .map(|n| n.out_shape.first().copied().unwrap_or(1))
        .unwrap_or(1);
    Ok(ModelProfile {
        model: graph.name.clone(),
        platform: "Host (measured)".to_string(),
        flow: match engine {
            Engine::Sequential => "interpreter".to_string(),
            Engine::Parallel(n) => format!("interpreter-parallel-{}", n.max(1)),
        },
        batch,
        nodes,
        peak_memory_bytes: graph.peak_activation_bytes(),
    })
}

/// Aggregates one execution trace's per-node timings straight into the
/// paper's taxonomy [`Breakdown`] — the lightweight path for per-request
/// profiling (e.g. a serving layer attaching a breakdown to every response)
/// where building a full [`ModelProfile`] per request would be wasteful.
/// Fused nodes split their time across constituent classes exactly as
/// [`ModelProfile::breakdown`] does.
pub fn breakdown_from_trace(graph: &Graph, timings: &[ngb_exec::NodeTiming]) -> Breakdown {
    let mut b = Breakdown::default();
    let charge = |class: OpClass, t: f64, b: &mut Breakdown| match class {
        OpClass::Gemm => b.gemm_s += t,
        OpClass::NonGemm(g) => *b.groups.entry(g).or_insert(0.0) += t,
    };
    for timing in timings {
        let node = graph.node(timing.id);
        let t = timing.elapsed.as_secs_f64();
        b.total_s += t;
        let attribution = node_attribution(graph, node);
        if attribution.is_empty() {
            charge(node.class(), t, &mut b);
        } else {
            for (class, frac) in attribution {
                charge(class, t * frac, &mut b);
            }
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::{GraphBuilder, OpKind};

    fn transformer_ish() -> Graph {
        let mut b = GraphBuilder::new("t");
        let x = b.input(&[1, 64, 256]);
        let n = b.push(OpKind::LayerNorm { dim: 256 }, &[x], "ln").unwrap();
        let q = b
            .push(
                OpKind::Linear {
                    in_f: 256,
                    out_f: 256,
                    bias: true,
                },
                &[n],
                "q",
            )
            .unwrap();
        let g = b.push(OpKind::NewGelu, &[q], "act").unwrap();
        let v = b
            .push(
                OpKind::View {
                    shape: vec![64, 256],
                },
                &[g],
                "view",
            )
            .unwrap();
        b.push(OpKind::Contiguous, &[v], "contig").unwrap();
        b.finish()
    }

    #[test]
    fn analytic_profile_covers_all_nodes() {
        let g = transformer_ish();
        let p = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, 1);
        assert_eq!(p.nodes.len(), g.len());
        assert!(p.total_latency_s() > 0.0);
        assert!(p.total_energy_j() > 0.0);
        assert!(p.peak_memory_bytes > 0);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let g = transformer_ish();
        let p = profile_analytic(&g, &Platform::workstation(), Flow::Eager, true, 1);
        let b = p.breakdown();
        let total_frac = b.gemm_frac() + b.non_gemm_frac();
        assert!((total_frac - 1.0).abs() < 1e-9, "{total_frac}");
        assert!(b.dominant_group().is_some());
    }

    #[test]
    fn gpu_shifts_time_toward_non_gemm() {
        // the paper's headline effect, on a small but realistic mix
        let g = ngb_models_stub();
        let cpu = profile_analytic(
            &g,
            &Platform::data_center().cpu_only(),
            Flow::Eager,
            false,
            1,
        );
        let gpu = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, 1);
        assert!(
            gpu.breakdown().non_gemm_frac() > cpu.breakdown().non_gemm_frac(),
            "gpu {:.2} vs cpu {:.2}",
            gpu.breakdown().non_gemm_frac(),
            cpu.breakdown().non_gemm_frac()
        );
        assert!(gpu.total_latency_s() < cpu.total_latency_s());
    }

    /// A GEMM-heavy block with a realistic non-GEMM tail.
    fn ngb_models_stub() -> Graph {
        let mut b = GraphBuilder::new("stub");
        let x = b.input(&[1, 128, 1024]);
        let mut h = x;
        for i in 0..4 {
            let n = b
                .push(OpKind::LayerNorm { dim: 1024 }, &[h], &format!("ln{i}"))
                .unwrap();
            let l = b
                .push(
                    OpKind::Linear {
                        in_f: 1024,
                        out_f: 4096,
                        bias: true,
                    },
                    &[n],
                    &format!("up{i}"),
                )
                .unwrap();
            let a = b.push(OpKind::NewGelu, &[l], &format!("act{i}")).unwrap();
            let d = b
                .push(
                    OpKind::Linear {
                        in_f: 4096,
                        out_f: 1024,
                        bias: true,
                    },
                    &[a],
                    &format!("dn{i}"),
                )
                .unwrap();
            h = b.push(OpKind::Add, &[h, d], &format!("res{i}")).unwrap();
        }
        b.finish()
    }

    #[test]
    fn ort_charges_transfers_to_memory_ops() {
        let g = transformer_ish();
        let p = profile_analytic(&g, &Platform::data_center(), Flow::Ort, true, 1);
        // views are native ORT ops and stay on the GPU; the data-moving
        // contiguous falls back to the CPU and pays PCIe transfers
        let view = p.nodes.iter().find(|n| n.name == "view").unwrap();
        assert_eq!(view.placement, "gpu");
        let contig = p.nodes.iter().find(|n| n.name == "contig").unwrap();
        assert!(contig.transfer_s > 0.0);
        assert_eq!(contig.placement, "cpu");
        let q = p.nodes.iter().find(|n| n.name == "q").unwrap();
        assert_eq!(q.placement, "gpu");
        assert_eq!(q.transfer_s, 0.0);
    }

    #[test]
    fn cpu_only_ignores_use_gpu_flag() {
        let g = transformer_ish();
        let p = profile_analytic(&g, &Platform::mobile().cpu_only(), Flow::Eager, true, 1);
        assert!(p.nodes.iter().all(|n| n.placement == "cpu"));
        assert!(p.platform.contains("CPU only"));
    }

    #[test]
    fn measured_profile_times_real_execution() {
        let g = transformer_ish();
        let p = profile_measured(&g, 3, 42).unwrap();
        assert_eq!(p.nodes.len(), g.len());
        assert!(p.total_latency_s() > 0.0);
        assert!(p.nodes.iter().all(|n| n.latency_s.is_finite()));
        // linear on [64, 256] must out-cost the zero-copy view
        let q = p.nodes.iter().find(|n| n.name == "q").unwrap();
        let v = p.nodes.iter().find(|n| n.name == "view").unwrap();
        assert!(q.latency_s > v.latency_s);
    }

    #[test]
    fn measured_parallel_profile_attributes_workers() {
        let g = transformer_ish();
        let p = profile_measured_with_engine(&g, 2, 42, Engine::Parallel(2)).unwrap();
        assert_eq!(p.nodes.len(), g.len());
        assert!(p.nodes.iter().all(|n| n.tid < 2));
        assert!(p.flow.contains("parallel"));
        // start offsets are real wall-clock offsets, so some node after the
        // input must start later than the input
        let input_start = p.nodes[0].start_s;
        assert!(p.nodes.iter().any(|n| n.start_s >= input_start));
    }

    #[test]
    fn measured_profile_records_intra_op_stats() {
        let mut b = GraphBuilder::new("wide");
        let x = b.input(&[1, 64, 2048]); // 128 Ki elems: above the chunk grain
        b.push(OpKind::Gelu, &[x], "act").unwrap();
        let g = b.finish();
        let p = profile_measured_configured(&g, 1, 42, Engine::Sequential, Some(true)).unwrap();
        let act = p.nodes.iter().find(|n| n.name == "act").unwrap();
        // chunk count is a pure function of shape: 128Ki / 32Ki = 4 chunks
        assert_eq!(act.intra_chunks, 4);
        assert!(act.intra_parallelism >= 1);
        // sequential engine installs no runner, so chunks run serially
        assert_eq!(act.intra_parallelism, 1);
        // and the analytic path reports zeros (nothing executed)
        let a = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, 1);
        assert!(a.nodes.iter().all(|n| n.intra_chunks == 0));
    }

    #[test]
    fn measured_profile_records_bytes_materialized() {
        let mut b = GraphBuilder::new("mat");
        let x = b.input(&[1, 8, 16]);
        let t = b
            .push(OpKind::Transpose { d0: 1, d1: 2 }, &[x], "t")
            .unwrap();
        b.push(OpKind::Contiguous, &[t], "contig").unwrap();
        let g = b.finish();
        let p = profile_measured(&g, 1, 42).unwrap();
        let contig = p.nodes.iter().find(|n| n.name == "contig").unwrap();
        // the transposed view is non-dense, so Contiguous copies 8*16 f32s
        assert_eq!(contig.bytes_materialized, 8 * 16 * 4);
        assert_eq!(p.total_bytes_materialized(), 8 * 16 * 4);
        // every other kernel consumes its operand in place
        assert!(p
            .nodes
            .iter()
            .filter(|n| n.name != "contig")
            .all(|n| n.bytes_materialized == 0));
        // analytic profiles execute nothing
        let a = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, 1);
        assert_eq!(a.total_bytes_materialized(), 0);
    }

    #[test]
    fn analytic_profile_lays_nodes_end_to_start() {
        let g = transformer_ish();
        let p = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, 1);
        let mut cursor = 0.0;
        for n in &p.nodes {
            assert!((n.start_s - cursor).abs() < 1e-12, "node {}", n.name);
            cursor += n.latency_s + n.transfer_s;
        }
    }

    #[test]
    fn fused_nodes_attribute_time_across_classes() {
        use ngb_graph::{FusedKind, FusedOp, FusedStage};
        let mut b = GraphBuilder::new("fused");
        let x = b.input(&[8, 64]);
        b.push(
            OpKind::Fused(FusedOp {
                kind: FusedKind::GemmEpilogue,
                stages: vec![
                    FusedStage {
                        op: OpKind::Linear {
                            in_f: 64,
                            out_f: 64,
                            bias: true,
                        },
                        seed_id: 1,
                        extra_inputs: 1,
                    },
                    FusedStage {
                        op: OpKind::Gelu,
                        seed_id: 2,
                        extra_inputs: 0,
                    },
                ],
            }),
            &[x],
            "fc_act",
        )
        .unwrap();
        let g = b.finish();
        let p = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, 1);
        let fused = &p.nodes[1];
        assert!(!fused.attribution.is_empty());
        let sum: f64 = fused.attribution.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
        // the fused node is GEMM-classified, yet the breakdown still
        // charges its gelu stage to the Activation group
        let bd = p.breakdown();
        assert!(bd.gemm_s > 0.0);
        assert!(bd.group_frac(NonGemmGroup::Activation) > 0.0);
        assert!((bd.gemm_frac() + bd.non_gemm_frac() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stage_breakdown_splits_prefill_from_decode() {
        let g = transformer_ish();
        let prefill = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, 1);
        let decode = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, 1)
            .with_stage(StagePhase::Decode);
        assert!(prefill.nodes.iter().all(|n| n.stage == StagePhase::Prefill));
        assert!(decode.nodes.iter().all(|n| n.stage == StagePhase::Decode));
        let merged = prefill.merged_with(decode);
        let p = merged.stage_breakdown(StagePhase::Prefill);
        let d = merged.stage_breakdown(StagePhase::Decode);
        assert!(p.total_s > 0.0);
        assert!(d.total_s > 0.0);
        assert!(
            (p.total_s + d.total_s - merged.breakdown().total_s).abs() < 1e-12,
            "stages partition the merged total"
        );
    }

    #[test]
    fn hottest_sorts_descending() {
        let g = transformer_ish();
        let p = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, 1);
        let h = p.hottest(3);
        assert_eq!(h.len(), 3);
        assert!(h[0].total_s() >= h[1].total_s());
        assert!(h[1].total_s() >= h[2].total_s());
    }
}
