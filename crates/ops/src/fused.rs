//! Building blocks for fused kernels produced by the `ngb-opt` graph
//! rewriter.
//!
//! Fusion here means *loop fusion*: a chain of unary element-wise stages is
//! collapsed into one pass over the data, applying every stage to a value
//! while it is still in a register. Each [`Pointwise`] variant reproduces
//! its standalone kernel's per-element arithmetic **exactly** (same
//! operations, same order), so a fused chain is bit-identical to running
//! the unfused kernels back-to-back — only the interior loads/stores
//! disappear. The one equivalence exception in the optimizer is
//! [`fold_bn`], which algebraically folds an inference batch-norm into the
//! preceding convolution's weights and therefore reorders floating-point
//! arithmetic (checked against a tolerance, not for bit equality).

use ngb_tensor::Tensor;

use crate::activation::erf;
use crate::Result;

/// A unary element-wise stage that can ride in a fused loop.
///
/// Every variant mirrors one executable kernel in [`crate::activation`] or
/// [`crate::arithmetic`]; [`Pointwise::apply`] is that kernel's per-element
/// function, verbatim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pointwise {
    /// `max(0, x)`.
    Relu,
    /// `clamp(x, 0, 6)`.
    Relu6,
    /// Exact (erf) GELU.
    Gelu,
    /// Tanh-approximated GELU.
    GeluTanh,
    /// Hugging Face `NewGELU` (decomposed chain, composed per element).
    NewGelu,
    /// `x * sigmoid(x)`.
    Silu,
    /// Logistic sigmoid.
    Sigmoid,
    /// `x * relu6(x + 3) / 6`.
    Hardswish,
    /// `-x`.
    Neg,
    /// `x + s`.
    AddScalar(f32),
    /// `x * s`.
    MulScalar(f32),
    /// `x / s`.
    DivScalar(f32),
    /// `x.powf(e)`.
    PowScalar(f32),
    /// `sqrt(x)`.
    Sqrt,
}

impl Pointwise {
    /// The per-element function of the corresponding standalone kernel.
    pub fn apply(self, v: f32) -> f32 {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        match self {
            Pointwise::Relu => v.max(0.0),
            Pointwise::Relu6 => v.clamp(0.0, 6.0),
            Pointwise::Gelu => 0.5 * v * (1.0 + erf(v / std::f32::consts::SQRT_2)),
            Pointwise::GeluTanh => 0.5 * v * (1.0 + (C * (v + 0.044_715 * v * v * v)).tanh()),
            Pointwise::NewGelu => {
                // The decomposed eager chain, stage by stage, so the fused
                // value tracks the unfused kernel sequence bit-for-bit.
                let v3 = v * v * v;
                let v3s = 0.044_715 * v3;
                let inner = v + v3s;
                let scaled = C * inner;
                let th = scaled.tanh();
                let one_p = 1.0 + th;
                let half = 0.5 * v;
                half * one_p
            }
            Pointwise::Silu => v / (1.0 + (-v).exp()),
            Pointwise::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            Pointwise::Hardswish => v * ((v + 3.0).clamp(0.0, 6.0)) / 6.0,
            Pointwise::Neg => -v,
            Pointwise::AddScalar(s) => v + s,
            Pointwise::MulScalar(s) => v * s,
            Pointwise::DivScalar(s) => v / s,
            Pointwise::PowScalar(e) => v.powf(e),
            Pointwise::Sqrt => v.sqrt(),
        }
    }
}

/// Applies every stage of `chain` to one value, in order.
pub fn apply_chain(chain: &[Pointwise], v: f32) -> f32 {
    chain.iter().fold(v, |acc, p| p.apply(acc))
}

/// Runs a pointwise chain over a whole tensor in a single pass, reusing the
/// input's buffer when it is uniquely owned (the fused node just consumed
/// its last reference).
///
/// # Errors
///
/// Fails when `x` is not f32.
pub fn map_chain(x: Tensor, chain: &[Pointwise]) -> Result<Tensor> {
    x.map_into(|v| apply_chain(chain, v))
}

/// Folds an inference batch-norm (`gamma`, `beta`, running `mean`/`var`,
/// `eps`) into the preceding convolution's parameters, in place.
///
/// `weight` is the conv's `[out_c, in_c/groups, k, k]` buffer (any layout
/// with a contiguous block per output channel), `bias` its per-channel
/// bias (zeros when the conv had none). Per output channel `c`:
///
/// ```text
/// scale_c = gamma_c / sqrt(var_c + eps)
/// w'      = w * scale_c
/// b'      = (b - mean_c) * scale_c + beta_c
/// ```
///
/// # Panics
///
/// Panics when the parameter lengths disagree or `weight` is not divisible
/// into `out_c` equal blocks.
pub fn fold_bn(
    weight: &mut [f32],
    bias: &mut [f32],
    gamma: &[f32],
    beta: &[f32],
    mean: &[f32],
    var: &[f32],
    eps: f32,
) {
    let out_c = bias.len();
    assert!(out_c > 0, "fold_bn requires at least one channel");
    assert_eq!(gamma.len(), out_c);
    assert_eq!(beta.len(), out_c);
    assert_eq!(mean.len(), out_c);
    assert_eq!(var.len(), out_c);
    assert_eq!(weight.len() % out_c, 0);
    let block = weight.len() / out_c;
    for c in 0..out_c {
        let scale = gamma[c] / (var[c] + eps).sqrt();
        for w in &mut weight[c * block..(c + 1) * block] {
            *w *= scale;
        }
        bias[c] = (bias[c] - mean[c]) * scale + beta[c];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{activation, arithmetic};
    use ngb_tensor::random::TensorRng;

    #[test]
    fn pointwise_matches_standalone_kernels_bitwise() {
        let x = TensorRng::seed(7).normal(&[257]);
        let cases: Vec<(Pointwise, Tensor)> = vec![
            (Pointwise::Relu, activation::relu(&x).unwrap()),
            (Pointwise::Relu6, activation::relu6(&x).unwrap()),
            (Pointwise::Gelu, activation::gelu(&x).unwrap()),
            (Pointwise::GeluTanh, activation::gelu_tanh(&x).unwrap()),
            (Pointwise::NewGelu, activation::new_gelu(&x).unwrap()),
            (Pointwise::Silu, activation::silu(&x).unwrap()),
            (Pointwise::Sigmoid, activation::sigmoid(&x).unwrap()),
            (Pointwise::Hardswish, activation::hardswish(&x).unwrap()),
            (Pointwise::Neg, arithmetic::neg(&x).unwrap()),
            (
                Pointwise::AddScalar(0.25),
                arithmetic::add_scalar(&x, 0.25).unwrap(),
            ),
            (
                Pointwise::MulScalar(1.5),
                arithmetic::mul_scalar(&x, 1.5).unwrap(),
            ),
            (
                Pointwise::DivScalar(3.0),
                arithmetic::div_scalar(&x, 3.0).unwrap(),
            ),
            (
                Pointwise::PowScalar(2.0),
                arithmetic::pow_scalar(&x, 2.0).unwrap(),
            ),
        ];
        let xs = x.to_vec_f32().unwrap();
        for (p, want) in cases {
            let want = want.to_vec_f32().unwrap();
            for (v, w) in xs.iter().zip(&want) {
                assert_eq!(
                    p.apply(*v).to_bits(),
                    w.to_bits(),
                    "{p:?} diverges from its kernel at input {v}"
                );
            }
        }
        // Sqrt on non-negative values
        let pos = TensorRng::seed(8).uniform(&[64], 0.0, 5.0);
        let want = arithmetic::sqrt(&pos).unwrap().to_vec_f32().unwrap();
        for (v, w) in pos.to_vec_f32().unwrap().iter().zip(&want) {
            assert_eq!(Pointwise::Sqrt.apply(*v).to_bits(), w.to_bits());
        }
    }

    #[test]
    fn chain_composes_in_order() {
        let chain = [Pointwise::AddScalar(1.0), Pointwise::MulScalar(2.0)];
        assert_eq!(apply_chain(&chain, 3.0), 8.0); // (3+1)*2, not 3*2+1
    }

    #[test]
    fn map_chain_equals_sequential_maps() {
        let x = TensorRng::seed(9).normal(&[4, 33]);
        let chain = [Pointwise::Gelu, Pointwise::MulScalar(0.5), Pointwise::Silu];
        let mut want = x.clone();
        for p in chain {
            want = want.map(|v| p.apply(v)).unwrap();
        }
        let got = map_chain(x, &chain).unwrap();
        let (a, b) = (got.to_vec_f32().unwrap(), want.to_vec_f32().unwrap());
        assert_eq!(got.shape(), want.shape());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fold_bn_matches_bn_of_conv() {
        // y = bn(conv(x)) must equal conv'(x) with folded params, for a
        // 1x1 "conv" that is just a per-channel dot product.
        let mut rng = TensorRng::seed(11);
        let mut w = rng.normal(&[6]).to_vec_f32().unwrap(); // 2 out-ch, block 3
        let mut b = vec![0.1, -0.2];
        let gamma = [1.1, 0.9];
        let beta = [0.3, -0.4];
        let mean = [0.05, -0.02];
        let var = [0.9, 1.2];
        let eps = 1e-5f32;
        let x = [0.7, -1.3, 0.2];
        let unfused: Vec<f32> = (0..2)
            .map(|c| {
                let y: f32 = w[c * 3..(c + 1) * 3]
                    .iter()
                    .zip(&x)
                    .map(|(wi, xi)| wi * xi)
                    .sum::<f32>()
                    + b[c];
                (y - mean[c]) / (var[c] + eps).sqrt() * gamma[c] + beta[c]
            })
            .collect();
        fold_bn(&mut w, &mut b, &gamma, &beta, &mean, &var, eps);
        for c in 0..2 {
            let y: f32 = w[c * 3..(c + 1) * 3]
                .iter()
                .zip(&x)
                .map(|(wi, xi)| wi * xi)
                .sum::<f32>()
                + b[c];
            assert!(
                (y - unfused[c]).abs() < 1e-5,
                "channel {c}: folded {y} vs unfused {}",
                unfused[c]
            );
        }
    }
}
