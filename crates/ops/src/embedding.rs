//! Embedding lookup and gather — the input-side memory operators of every
//! language model in the suite (token + position embeddings).

use ngb_tensor::{Tensor, TensorError};

use crate::{OpCost, Result, F32_BYTES};

/// Embedding lookup: `table: [V, D]`, `ids: [*]` (i64) → `[*, D]`.
///
/// # Errors
///
/// Fails when `table` is not rank-2 f32, ids are not i64, or an id is out
/// of vocabulary range.
pub fn embedding(table: &Tensor, ids: &Tensor) -> Result<Tensor> {
    if table.rank() != 2 {
        return Err(TensorError::InvalidArgument(
            "embedding table must be [V, D]".into(),
        ));
    }
    let (v, d) = (table.shape()[0], table.shape()[1]);
    let idv = ids.to_vec_i64()?;
    let tc = table.contiguous();
    let ts = tc.as_slice_f32().ok_or(TensorError::DTypeMismatch {
        expected: "f32",
        actual: table.dtype().name(),
        op: "embedding",
    })?;
    let mut out = Vec::with_capacity(idv.len() * d);
    for &id in &idv {
        if id < 0 || id as usize >= v {
            return Err(TensorError::InvalidArgument(format!(
                "embedding id {id} out of range for vocabulary of {v}"
            )));
        }
        out.extend_from_slice(&ts[id as usize * d..(id as usize + 1) * d]);
    }
    let mut shape = ids.shape().to_vec();
    shape.push(d);
    Tensor::from_vec(out, &shape)
}

/// Cost of an embedding lookup producing `tokens × d` floats.
pub fn embedding_cost(tokens: usize, d: usize) -> OpCost {
    OpCost {
        flops: 0.0,
        bytes_read: (tokens * d) as f64 * F32_BYTES + tokens as f64 * 8.0,
        bytes_written: (tokens * d) as f64 * F32_BYTES,
        kernels: 1,
        dynamic: false,
    }
}

/// Gathers values along `dim` using integer `index` of the same rank
/// (simplified `torch.gather`: index shape must match input except along
/// `dim`).
///
/// # Errors
///
/// Fails on rank mismatch, out-of-range dim, or out-of-range indices.
pub fn gather(x: &Tensor, dim: usize, index: &Tensor) -> Result<Tensor> {
    if x.rank() != index.rank() || dim >= x.rank() {
        return Err(TensorError::InvalidArgument(
            "gather requires index of equal rank and valid dim".into(),
        ));
    }
    for (i, (&xd, &id)) in x.shape().iter().zip(index.shape()).enumerate() {
        if i != dim && id > xd {
            return Err(TensorError::ShapeMismatch {
                expected: x.shape().to_vec(),
                actual: index.shape().to_vec(),
                op: "gather",
            });
        }
    }
    let idx = index.to_vec_i64()?;
    let mut out = Vec::with_capacity(index.numel());
    for (flat, ix) in ngb_tensor::IndexIter::new(index.shape()).enumerate() {
        let id = idx[flat];
        if id < 0 || id as usize >= x.shape()[dim] {
            return Err(TensorError::InvalidArgument(format!(
                "gather index {id} out of range on dim {dim}"
            )));
        }
        let mut src_ix = ix.clone();
        src_ix[dim] = id as usize;
        out.push(x.at(&src_ix)?);
    }
    Tensor::from_vec(out, index.shape())
}

/// Cost of a gather producing `out_elems` elements.
pub fn gather_cost(out_elems: usize) -> OpCost {
    OpCost {
        flops: 0.0,
        bytes_read: out_elems as f64 * (F32_BYTES + 8.0),
        bytes_written: out_elems as f64 * F32_BYTES,
        kernels: 1,
        dynamic: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_looks_up_rows() {
        let table = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[4, 2]).unwrap();
        let ids = Tensor::from_i64(vec![3, 0, 3], &[3]).unwrap();
        let e = embedding(&table, &ids).unwrap();
        assert_eq!(e.shape(), &[3, 2]);
        assert_eq!(e.to_vec_f32().unwrap(), vec![6.0, 7.0, 0.0, 1.0, 6.0, 7.0]);
    }

    #[test]
    fn embedding_batched_ids() {
        let table = Tensor::ones(&[10, 4]);
        let ids = Tensor::from_i64(vec![1, 2, 3, 4, 5, 6], &[2, 3]).unwrap();
        assert_eq!(embedding(&table, &ids).unwrap().shape(), &[2, 3, 4]);
    }

    #[test]
    fn embedding_rejects_oov() {
        let table = Tensor::ones(&[4, 2]);
        let ids = Tensor::from_i64(vec![4], &[1]).unwrap();
        assert!(embedding(&table, &ids).is_err());
        let neg = Tensor::from_i64(vec![-1], &[1]).unwrap();
        assert!(embedding(&table, &neg).is_err());
    }

    #[test]
    fn gather_along_dim1() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let idx = Tensor::from_i64(vec![2, 0], &[2, 1]).unwrap();
        let g = gather(&x, 1, &idx).unwrap();
        assert_eq!(g.to_vec_f32().unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn gather_validates() {
        let x = Tensor::zeros(&[2, 3]);
        let idx = Tensor::from_i64(vec![5], &[1, 1]).unwrap();
        assert!(gather(&x, 1, &idx).is_err());
        assert!(gather(&x, 2, &idx).is_err());
        let wrong_rank = Tensor::from_i64(vec![0], &[1]).unwrap();
        assert!(gather(&x, 0, &wrong_rank).is_err());
    }

    #[test]
    fn costs_move_bytes_without_flops() {
        let c = embedding_cost(128, 768);
        assert_eq!(c.flops, 0.0);
        assert!(c.memory_bytes() > 0.0);
        assert_eq!(gather_cost(100).flops, 0.0);
    }
}
