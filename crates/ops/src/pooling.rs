//! Pooling operators over NCHW feature maps: max, average, adaptive
//! average, and global average pooling (used by ResNet/MobileNet heads and
//! the FPN in detection models).

use ngb_tensor::{Tensor, TensorError};

use crate::gemm::conv_out_dim;
use crate::{OpCost, Result, F32_BYTES};

fn check_nchw(x: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if x.rank() != 4 {
        return Err(TensorError::InvalidArgument(format!(
            "{op} requires NCHW input"
        )));
    }
    Ok((x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]))
}

/// Storage offset of element `(b, ch, 0, 0)` plus the per-axis spatial
/// strides, so the pooling loops walk any NCHW view directly — same
/// element values in the same window order as a materialized copy.
#[inline]
fn chan_base(x: &Tensor, b: usize, ch: usize) -> isize {
    x.storage_offset() as isize + b as isize * x.strides()[0] + ch as isize * x.strides()[1]
}

/// 2-D max pooling with square kernel/stride and zero padding
/// (padding contributes `-inf`, like PyTorch).
///
/// # Errors
///
/// Fails on non-NCHW input or zero stride.
pub fn max_pool2d(x: &Tensor, kernel: usize, stride: usize, padding: usize) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(x, "max_pool2d")?;
    if stride == 0 || kernel == 0 {
        return Err(TensorError::InvalidArgument(
            "max_pool2d kernel/stride must be nonzero".into(),
        ));
    }
    let oh = conv_out_dim(h, kernel, stride, padding);
    let ow = conv_out_dim(w, kernel, stride, padding);
    let xs = x.storage_f32().ok_or(TensorError::DTypeMismatch {
        expected: "f32",
        actual: x.dtype().name(),
        op: "max_pool2d",
    })?;
    let (sh, sw) = (x.strides()[2], x.strides()[3]);
    let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            let base = chan_base(x, b, ch);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = oy * stride + ky;
                            let ix = ox * stride + kx;
                            if iy < padding || ix < padding {
                                continue;
                            }
                            let (iy, ix) = (iy - padding, ix - padding);
                            if iy >= h || ix >= w {
                                continue;
                            }
                            best =
                                best.max(xs[(base + iy as isize * sh + ix as isize * sw) as usize]);
                        }
                    }
                    out[((b * c + ch) * oh + oy) * ow + ox] = best;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// 2-D average pooling (count excludes padding, matching PyTorch's
/// `count_include_pad=False` behavior for simplicity).
///
/// # Errors
///
/// Fails on non-NCHW input or zero stride.
pub fn avg_pool2d(x: &Tensor, kernel: usize, stride: usize, padding: usize) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(x, "avg_pool2d")?;
    if stride == 0 || kernel == 0 {
        return Err(TensorError::InvalidArgument(
            "avg_pool2d kernel/stride must be nonzero".into(),
        ));
    }
    let oh = conv_out_dim(h, kernel, stride, padding);
    let ow = conv_out_dim(w, kernel, stride, padding);
    let xs = x.storage_f32().expect("f32 avg_pool2d input");
    let (sh, sw) = (x.strides()[2], x.strides()[3]);
    let mut out = vec![0.0f32; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            let base = chan_base(x, b, ch);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    let mut cnt = 0usize;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = oy * stride + ky;
                            let ix = ox * stride + kx;
                            if iy < padding || ix < padding {
                                continue;
                            }
                            let (iy, ix) = (iy - padding, ix - padding);
                            if iy >= h || ix >= w {
                                continue;
                            }
                            acc += xs[(base + iy as isize * sh + ix as isize * sw) as usize];
                            cnt += 1;
                        }
                    }
                    out[((b * c + ch) * oh + oy) * ow + ox] =
                        if cnt == 0 { 0.0 } else { acc / cnt as f32 };
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Adaptive average pooling to `(out_h, out_w)` (PyTorch bin boundaries).
///
/// # Errors
///
/// Fails on non-NCHW input or zero output dims.
pub fn adaptive_avg_pool2d(x: &Tensor, out_h: usize, out_w: usize) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(x, "adaptive_avg_pool2d")?;
    if out_h == 0 || out_w == 0 {
        return Err(TensorError::InvalidArgument(
            "adaptive_avg_pool2d output dims must be nonzero".into(),
        ));
    }
    let xs = x.storage_f32().expect("f32 adaptive_avg_pool2d input");
    let (sh, sw) = (x.strides()[2], x.strides()[3]);
    let mut out = vec![0.0f32; n * c * out_h * out_w];
    for b in 0..n {
        for ch in 0..c {
            let base = chan_base(x, b, ch);
            for oy in 0..out_h {
                let y0 = oy * h / out_h;
                let y1 = ((oy + 1) * h).div_ceil(out_h);
                for ox in 0..out_w {
                    let x0 = ox * w / out_w;
                    let x1 = ((ox + 1) * w).div_ceil(out_w);
                    let mut acc = 0.0;
                    for iy in y0..y1 {
                        for ix in x0..x1 {
                            acc += xs[(base + iy as isize * sh + ix as isize * sw) as usize];
                        }
                    }
                    out[((b * c + ch) * out_h + oy) * out_w + ox] =
                        acc / ((y1 - y0) * (x1 - x0)) as f32;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, out_h, out_w])
}

/// Global average pooling: [`adaptive_avg_pool2d`] to 1×1.
///
/// # Errors
///
/// Fails on non-NCHW input.
pub fn global_avg_pool(x: &Tensor) -> Result<Tensor> {
    adaptive_avg_pool2d(x, 1, 1)
}

/// Cost of a pooling kernel reading `in_shape` with window `k × k` and
/// producing `out_elems` outputs.
pub fn pool_cost(in_shape: &[usize], k: usize, out_elems: usize) -> OpCost {
    OpCost {
        flops: (out_elems * k * k) as f64,
        bytes_read: ngb_tensor::num_elements(in_shape) as f64 * F32_BYTES,
        bytes_written: out_elems as f64 * F32_BYTES,
        kernels: 1,
        dynamic: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_tensor::random::TensorRng;

    #[test]
    fn max_pool_known() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = max_pool2d(&x, 2, 2, 0).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.to_vec_f32().unwrap(), vec![6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn max_pool_with_padding() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = max_pool2d(&x, 3, 2, 1).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.item().unwrap(), 1.0);
    }

    #[test]
    fn avg_pool_known() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = avg_pool2d(&x, 2, 2, 0).unwrap();
        assert_eq!(y.to_vec_f32().unwrap(), vec![3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn adaptive_pool_divides_evenly() {
        let x = TensorRng::seed(1).normal(&[1, 2, 6, 6]);
        let y = adaptive_avg_pool2d(&x, 3, 3).unwrap();
        assert_eq!(y.shape(), &[1, 2, 3, 3]);
        // top-left bin = mean of x[0,0,0..2,0..2]
        let mut acc = 0.0;
        for iy in 0..2 {
            for ix in 0..2 {
                acc += x.at(&[0, 0, iy, ix]).unwrap();
            }
        }
        assert!((y.at(&[0, 0, 0, 0]).unwrap() - acc / 4.0).abs() < 1e-5);
    }

    #[test]
    fn adaptive_pool_uneven_bins() {
        let x = Tensor::arange(0.0, 5.0, 1.0)
            .reshape(&[1, 1, 1, 5])
            .unwrap();
        let y = adaptive_avg_pool2d(&x, 1, 2).unwrap();
        // bins: [0..3) and [2..5) per ceil boundaries -> [0,1,2] and [2,3,4]
        assert_eq!(y.to_vec_f32().unwrap(), vec![1.0, 3.0]);
    }

    #[test]
    fn global_pool_is_mean() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        assert_eq!(global_avg_pool(&x).unwrap().item().unwrap(), 4.0);
    }

    #[test]
    fn validates_inputs() {
        let x = Tensor::zeros(&[2, 2]);
        assert!(max_pool2d(&x, 2, 2, 0).is_err());
        let x4 = Tensor::zeros(&[1, 1, 4, 4]);
        assert!(max_pool2d(&x4, 2, 0, 0).is_err());
        assert!(adaptive_avg_pool2d(&x4, 0, 1).is_err());
    }

    #[test]
    fn pool_cost_reads_whole_input() {
        let c = pool_cost(&[1, 64, 112, 112], 3, 64 * 56 * 56);
        assert_eq!(c.bytes_read, (64.0 * 112.0 * 112.0) * 4.0);
        assert_eq!(c.kernels, 1);
    }
}
