//! Index-producing reductions: argmax, top-k, and whole-tensor max/sum —
//! the output heads of classifiers and the proposal filters of detectors.

use ngb_tensor::{Tensor, TensorError};

use crate::{OpCost, Result, F32_BYTES};

/// Argmax along `dim` (indices as i64, dim removed).
///
/// # Errors
///
/// Fails when `dim` is out of range or input is not f32.
pub fn argmax(x: &Tensor, dim: usize) -> Result<Tensor> {
    if dim >= x.rank() {
        return Err(TensorError::InvalidDim {
            dim,
            rank: x.rank(),
        });
    }
    let d = x.shape()[dim];
    let mut out_shape: Vec<usize> = x.shape().to_vec();
    out_shape.remove(dim);
    let mut best_val = vec![f32::NEG_INFINITY; ngb_tensor::num_elements(&out_shape)];
    let mut best_ix = vec![0i64; best_val.len()];
    let out_strides = ngb_tensor::contiguous_strides(&out_shape);
    for ix in ngb_tensor::IndexIter::new(x.shape()) {
        let v = x.at(&ix)?;
        let mut oix = ix.clone();
        oix.remove(dim);
        let mut off = 0isize;
        for (&i, &s) in oix.iter().zip(&out_strides) {
            off += i as isize * s;
        }
        let off = off as usize;
        if v > best_val[off] {
            best_val[off] = v;
            best_ix[off] = ix[dim] as i64;
        }
    }
    let _ = d;
    Tensor::from_i64(best_ix, &out_shape)
}

/// Top-k along the **last** dimension, descending; returns
/// `(values, indices)` each shaped `[..., k]`.
///
/// # Errors
///
/// Fails when `k` is zero or exceeds the last dim, or input is not f32.
pub fn topk(x: &Tensor, k: usize) -> Result<(Tensor, Tensor)> {
    let d = *x.shape().last().ok_or_else(|| {
        TensorError::InvalidArgument("topk input must have at least one dim".into())
    })?;
    if k == 0 || k > d {
        return Err(TensorError::InvalidArgument(format!(
            "topk k={k} invalid for last dim of {d}"
        )));
    }
    let rows = x.numel() / d;
    let v = x.to_vec_f32()?;
    let mut vals = Vec::with_capacity(rows * k);
    let mut ids = Vec::with_capacity(rows * k);
    for r in 0..rows {
        let row = &v[r * d..(r + 1) * d];
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| {
            row[b]
                .partial_cmp(&row[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &i in order.iter().take(k) {
            vals.push(row[i]);
            ids.push(i as i64);
        }
    }
    let mut shape = x.shape().to_vec();
    *shape.last_mut().expect("nonempty") = k;
    Ok((
        Tensor::from_vec(vals, &shape)?,
        Tensor::from_i64(ids, &shape)?,
    ))
}

/// Maximum element of the whole tensor.
///
/// # Errors
///
/// Fails on an empty or non-f32 tensor.
pub fn max_all(x: &Tensor) -> Result<f32> {
    let v = x.to_vec_f32()?;
    v.into_iter()
        .reduce(f32::max)
        .ok_or_else(|| TensorError::InvalidArgument("max of empty tensor".into()))
}

/// Sum of the whole tensor.
///
/// # Errors
///
/// Fails on a non-f32 tensor.
pub fn sum_all(x: &Tensor) -> Result<f32> {
    Ok(x.to_vec_f32()?.iter().sum())
}

/// Cost of [`argmax`] on `shape` along `dim`.
pub fn argmax_cost(shape: &[usize], dim: usize) -> OpCost {
    let n = ngb_tensor::num_elements(shape);
    let m = n / shape.get(dim).copied().unwrap_or(1).max(1);
    OpCost::reduction(n, m, 1.0)
}

/// Cost of [`topk`] on `shape` with parameter `k` (sort-based).
pub fn topk_cost(shape: &[usize], k: usize) -> OpCost {
    let n = ngb_tensor::num_elements(shape);
    let d = shape.last().copied().unwrap_or(1).max(1);
    let rows = n / d;
    OpCost {
        flops: rows as f64 * d as f64 * (d as f64).log2().max(1.0),
        bytes_read: n as f64 * F32_BYTES,
        bytes_written: (rows * k) as f64 * (F32_BYTES + 8.0),
        kernels: 2, // sort + gather
        dynamic: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_rows() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 3.0, 9.0, 2.0, 4.0], &[2, 3]).unwrap();
        let a = argmax(&x, 1).unwrap();
        assert_eq!(a.to_vec_i64().unwrap(), vec![1, 0]);
        let a0 = argmax(&x, 0).unwrap();
        assert_eq!(a0.to_vec_i64().unwrap(), vec![1, 0, 1]);
        assert!(argmax(&x, 2).is_err());
    }

    #[test]
    fn topk_descending() {
        let x = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.7], &[1, 4]).unwrap();
        let (v, i) = topk(&x, 2).unwrap();
        assert_eq!(v.to_vec_f32().unwrap(), vec![0.9, 0.7]);
        assert_eq!(i.to_vec_i64().unwrap(), vec![1, 3]);
        assert!(topk(&x, 0).is_err());
        assert!(topk(&x, 5).is_err());
    }

    #[test]
    fn topk_batched() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 6.0, 5.0, 4.0], &[2, 3]).unwrap();
        let (v, _) = topk(&x, 1).unwrap();
        assert_eq!(v.shape(), &[2, 1]);
        assert_eq!(v.to_vec_f32().unwrap(), vec![3.0, 6.0]);
    }

    #[test]
    fn global_reductions() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.5], &[3]).unwrap();
        assert_eq!(max_all(&x).unwrap(), 3.5);
        assert_eq!(sum_all(&x).unwrap(), 2.5);
    }

    #[test]
    fn costs() {
        let c = argmax_cost(&[8, 1000], 1);
        assert_eq!(c.bytes_written, 8.0 * 4.0);
        let t = topk_cost(&[8, 1000], 5);
        assert_eq!(t.kernels, 2);
    }
}
