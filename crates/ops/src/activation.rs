//! Activation operators (paper §2.1.2, Table 2 "Activation" group).
//!
//! Includes both library-fused kernels and Hugging Face's hand-written
//! `NewGELU`, which in PyTorch eager mode decomposes into a chain of
//! element-wise kernels — the exact overhead §4.1.4 blames for GPT-2's
//! activation-dominated GPU profile. The decomposed variant computes the
//! same function but reports a multi-kernel [`OpCost`].

use ngb_tensor::Tensor;

use crate::parallel;
use crate::{OpCost, Result};

/// Rectified Linear Unit: `max(0, x)` element-wise.
///
/// # Errors
///
/// Fails when `x` is not f32.
pub fn relu(x: &Tensor) -> Result<Tensor> {
    parallel::unary(x, |v| v.max(0.0))
}

/// Cost of [`relu`] on `shape`.
pub fn relu_cost(shape: &[usize]) -> OpCost {
    OpCost::elementwise(ngb_tensor::num_elements(shape), 1.0)
}

/// Exact GELU: `x * Phi(x)` with the Gaussian CDF evaluated through `erf`.
///
/// # Errors
///
/// Fails when `x` is not f32.
pub fn gelu(x: &Tensor) -> Result<Tensor> {
    parallel::unary(x, |v| 0.5 * v * (1.0 + erf(v / std::f32::consts::SQRT_2)))
}

/// Cost of the fused [`gelu`] kernel on `shape`.
pub fn gelu_cost(shape: &[usize]) -> OpCost {
    OpCost::elementwise(ngb_tensor::num_elements(shape), 8.0)
}

/// Tanh-approximated GELU (`torch.nn.GELU(approximate="tanh")`).
///
/// # Errors
///
/// Fails when `x` is not f32.
pub fn gelu_tanh(x: &Tensor) -> Result<Tensor> {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    parallel::unary(x, |v| {
        0.5 * v * (1.0 + (C * (v + 0.044_715 * v * v * v)).tanh())
    })
}

/// Cost of the fused [`gelu_tanh`] kernel on `shape`.
pub fn gelu_tanh_cost(shape: &[usize]) -> OpCost {
    OpCost::elementwise(ngb_tensor::num_elements(shape), 10.0)
}

/// Hugging Face `NewGELU`: numerically identical to [`gelu_tanh`] but
/// written as primitive tensor ops, the way
/// `transformers.activations.NewGELUActivation` executes in eager mode.
///
/// The chain is: `pow` → `mul` → `add` → `mul` → `tanh` → `add` → `mul` →
/// `mul`, i.e. **eight** kernel launches and seven intermediate tensors.
///
/// # Errors
///
/// Fails when `x` is not f32.
pub fn new_gelu(x: &Tensor) -> Result<Tensor> {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    let x3 = x.map(|v| v * v * v)?; // pow(x, 3)
    let x3s = x3.map(|v| 0.044_715 * v)?; // mul by const
    let inner = x.zip_map(&x3s, |a, b| a + b)?; // add
    let scaled = inner.map(|v| C * v)?; // mul by const
    let th = scaled.map(f32::tanh)?; // tanh
    let one_p = th.map(|v| 1.0 + v)?; // add const
    let half_x = x.map(|v| 0.5 * v)?; // mul by const
    half_x.zip_map(&one_p, |a, b| a * b) // mul
}

/// Cost of the decomposed [`new_gelu`] chain on `shape`: eight element-wise
/// kernels, each re-reading and re-writing the activation.
pub fn new_gelu_cost(shape: &[usize]) -> OpCost {
    let n = ngb_tensor::num_elements(shape);
    // 6 unary kernels + 2 binary kernels
    let unary: OpCost = (0..6).map(|_| OpCost::elementwise(n, 1.5)).sum();
    let binary: OpCost = (0..2).map(|_| OpCost::elementwise_binary(n, 1.0)).sum();
    unary + binary
}

/// SiLU / swish: `x * sigmoid(x)` — Llama-2's activation.
///
/// # Errors
///
/// Fails when `x` is not f32.
pub fn silu(x: &Tensor) -> Result<Tensor> {
    parallel::unary(x, |v| v / (1.0 + (-v).exp()))
}

/// Cost of the fused [`silu`] kernel on `shape`.
pub fn silu_cost(shape: &[usize]) -> OpCost {
    OpCost::elementwise(ngb_tensor::num_elements(shape), 5.0)
}

/// Logistic sigmoid.
///
/// # Errors
///
/// Fails when `x` is not f32.
pub fn sigmoid(x: &Tensor) -> Result<Tensor> {
    parallel::unary(x, |v| 1.0 / (1.0 + (-v).exp()))
}

/// Cost of [`sigmoid`] on `shape`.
pub fn sigmoid_cost(shape: &[usize]) -> OpCost {
    OpCost::elementwise(ngb_tensor::num_elements(shape), 4.0)
}

/// Hard-swish (MobileNet family): `x * relu6(x + 3) / 6`.
///
/// # Errors
///
/// Fails when `x` is not f32.
pub fn hardswish(x: &Tensor) -> Result<Tensor> {
    parallel::unary(x, |v| v * ((v + 3.0).clamp(0.0, 6.0)) / 6.0)
}

/// Cost of [`hardswish`] on `shape`.
pub fn hardswish_cost(shape: &[usize]) -> OpCost {
    OpCost::elementwise(ngb_tensor::num_elements(shape), 4.0)
}

/// ReLU6: `min(max(x, 0), 6)` (MobileNetV2's activation).
///
/// # Errors
///
/// Fails when `x` is not f32.
pub fn relu6(x: &Tensor) -> Result<Tensor> {
    parallel::unary(x, |v| v.clamp(0.0, 6.0))
}

/// Cost of [`relu6`] on `shape`.
pub fn relu6_cost(shape: &[usize]) -> OpCost {
    OpCost::elementwise(ngb_tensor::num_elements(shape), 2.0)
}

/// Abramowitz–Stegun rational approximation of `erf`, accurate to ~1.5e-7 —
/// ample for f32 activation math. Shared with the fused epilogue kernels so
/// fused GELU stays bit-identical to the standalone kernel.
pub(crate) fn erf(x: f32) -> f32 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_4 * t - 1.453_152_) * t) + 1.421_413_7) * t - 0.284_496_74) * t
            + 0.254_829_6)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_tensor::random::TensorRng;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 3.0], &[4]).unwrap();
        assert_eq!(
            relu(&x).unwrap().to_vec_f32().unwrap(),
            vec![0.0, 0.0, 0.0, 3.0]
        );
    }

    #[test]
    fn gelu_reference_points() {
        // Reference values from torch.nn.functional.gelu
        let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0, 2.0], &[4]).unwrap();
        let y = gelu(&x).unwrap().to_vec_f32().unwrap();
        let expect = [-0.158_655_25, 0.0, 0.841_344_8, 1.954_499_7];
        for (a, b) in y.iter().zip(expect) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn new_gelu_matches_fused_tanh_gelu() {
        let x = TensorRng::seed(1).normal(&[256]);
        let fused = gelu_tanh(&x).unwrap().to_vec_f32().unwrap();
        let decomposed = new_gelu(&x).unwrap().to_vec_f32().unwrap();
        for (a, b) in fused.iter().zip(&decomposed) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn new_gelu_costs_many_kernels() {
        let fused = gelu_tanh_cost(&[1, 8, 6400]);
        let dec = new_gelu_cost(&[1, 8, 6400]);
        assert_eq!(fused.kernels, 1);
        assert_eq!(dec.kernels, 8);
        assert!(dec.memory_bytes() > 5.0 * fused.memory_bytes());
    }

    #[test]
    fn silu_matches_definition() {
        let x = Tensor::from_vec(vec![0.0, 1.0, -1.0], &[3]).unwrap();
        let y = silu(&x).unwrap().to_vec_f32().unwrap();
        assert!((y[0]).abs() < 1e-7);
        assert!((y[1] - 0.731_058_6).abs() < 1e-5);
        assert!((y[2] + 0.268_941_42).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_bounds() {
        let x = TensorRng::seed(2).uniform(&[100], -10.0, 10.0);
        let y = sigmoid(&x).unwrap().to_vec_f32().unwrap();
        assert!(y.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn relu6_and_hardswish() {
        let x = Tensor::from_vec(vec![-5.0, 3.0, 10.0], &[3]).unwrap();
        assert_eq!(
            relu6(&x).unwrap().to_vec_f32().unwrap(),
            vec![0.0, 3.0, 6.0]
        );
        let h = hardswish(&x).unwrap().to_vec_f32().unwrap();
        assert_eq!(h[0], 0.0); // relu6(-2) = 0
        assert_eq!(h[2], 10.0); // saturated: x * 6/6
    }

    #[test]
    fn erf_extremes() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(3.0) - 1.0).abs() < 1e-4);
        assert!((erf(-3.0) + 1.0).abs() < 1e-4);
    }

    #[test]
    fn activation_preserves_shape() {
        let x = TensorRng::seed(3).normal(&[2, 3, 4]);
        for f in [
            relu, gelu, gelu_tanh, new_gelu, silu, sigmoid, hardswish, relu6,
        ] {
            assert_eq!(f(&x).unwrap().shape(), x.shape());
        }
    }
}
