//! Logit-computation operators (Table 2 "Logit Computation" group):
//! numerically-stable softmax and log-softmax over an arbitrary dimension.
//!
//! Both kernels are fused over reduction lanes (one max pass, one
//! exp-and-sum pass, one normalize pass per lane) and lane-parallel
//! across intra-op chunks. Every lane reduction folds in ascending
//! dim-index order — the same order [`Tensor::reduce_dim`] uses — so the
//! fused kernels are bit-identical to the decomposed
//! reduce/zip_map/map chain they replaced.

use ngb_tensor::{DType, LaneMap, Tensor};

use crate::parallel;
use crate::{OpCost, Result, F32_BYTES};

/// Strided-lane body: gathers each reduction lane through a [`LaneMap`]
/// into a per-chunk scratch buffer, then runs the identical per-lane
/// arithmetic as the contiguous kernel — same values, same fold order,
/// bit-identical results, no whole-tensor materialization. Chunking stays
/// `(outer, d * inner)`, so intra-op chunk counts are layout-independent.
fn fused_lane_softmax_strided(
    xs: &[f32],
    map: &LaneMap,
    outer: usize,
    d: usize,
    inner: usize,
    out: &mut [f32],
    log: bool,
) {
    let blk = d * inner;
    let step = map.step();
    parallel::par_rows_out(out, outer, blk, |first_outer, win| {
        let mut lane = vec![0.0f32; d];
        for (o, oblk) in win.chunks_exact_mut(blk.max(1)).enumerate() {
            for l in 0..inner {
                let base = map.lane_base(first_outer + o, l) as isize;
                for (t, v) in lane.iter_mut().enumerate() {
                    *v = xs[(base + t as isize * step) as usize];
                }
                let mut mx = f32::NEG_INFINITY;
                for &v in &lane {
                    mx = mx.max(v);
                }
                if log {
                    let mut sum = 0.0f32;
                    for t in 0..d {
                        let shifted = lane[t] - mx;
                        oblk[t * inner + l] = shifted;
                        sum += shifted.exp();
                    }
                    let log_sum = sum.ln();
                    for t in 0..d {
                        oblk[t * inner + l] -= log_sum;
                    }
                } else {
                    let mut sum = 0.0f32;
                    for t in 0..d {
                        let e = (lane[t] - mx).exp();
                        oblk[t * inner + l] = e;
                        sum += e;
                    }
                    for t in 0..d {
                        oblk[t * inner + l] /= sum;
                    }
                }
            }
        }
    });
}

/// Shared fused body: processes each `(outer, inner)` lane serially,
/// chunk-parallel across outer blocks.
fn fused_lane_softmax(
    xs: &[f32],
    outer: usize,
    d: usize,
    inner: usize,
    out: &mut [f32],
    log: bool,
) {
    let blk = d * inner;
    parallel::par_rows_out(out, outer, blk, |first_outer, win| {
        for (o, oblk) in win.chunks_exact_mut(blk.max(1)).enumerate() {
            let base = (first_outer + o) * blk;
            for l in 0..inner {
                let mut mx = f32::NEG_INFINITY;
                for t in 0..d {
                    mx = mx.max(xs[base + t * inner + l]);
                }
                if log {
                    let mut sum = 0.0f32;
                    for t in 0..d {
                        let shifted = xs[base + t * inner + l] - mx;
                        oblk[t * inner + l] = shifted;
                        sum += shifted.exp();
                    }
                    let log_sum = sum.ln();
                    for t in 0..d {
                        oblk[t * inner + l] -= log_sum;
                    }
                } else {
                    let mut sum = 0.0f32;
                    for t in 0..d {
                        let e = (xs[base + t * inner + l] - mx).exp();
                        oblk[t * inner + l] = e;
                        sum += e;
                    }
                    for t in 0..d {
                        oblk[t * inner + l] /= sum;
                    }
                }
            }
        }
    });
}

/// Numerically stable softmax over dimension `dim`.
///
/// # Errors
///
/// Fails when `dim` is out of range or input is not f32.
///
/// # Examples
///
/// ```
/// use ngb_tensor::Tensor;
/// # fn main() -> Result<(), ngb_tensor::TensorError> {
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3])?;
/// let p = ngb_ops::logit::softmax(&x, 1)?;
/// let s: f32 = p.to_vec_f32()?.iter().sum();
/// assert!((s - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn softmax(x: &Tensor, dim: usize) -> Result<Tensor> {
    fused_softmax_entry(x, dim, false)
}

/// Dispatch shared by [`softmax`]/[`log_softmax`]: contiguous fast path,
/// strided-lane path for any other f32 view, decomposed chain for non-f32
/// (which reports the dtype error).
fn fused_softmax_entry(x: &Tensor, dim: usize, log: bool) -> Result<Tensor> {
    let (outer, d, inner) = x.lane_dims(dim)?;
    if x.dtype() != DType::F32 {
        return if log {
            log_softmax_chain(x, dim)
        } else {
            softmax_chain(x, dim)
        };
    }
    let mut out = vec![0.0f32; x.numel()];
    if let Some(xs) = x.as_slice_f32() {
        fused_lane_softmax(xs, outer, d, inner, &mut out, log);
    } else {
        let xs = x.storage_f32().expect("dtype checked");
        let map = LaneMap::new(x.shape(), x.strides(), x.storage_offset(), dim);
        fused_lane_softmax_strided(xs, &map, outer, d, inner, &mut out, log);
    }
    Tensor::from_vec(out, x.shape())
}

/// The decomposed reduce/zip_map chain, kept as the non-f32 fallback.
fn softmax_chain(x: &Tensor, dim: usize) -> Result<Tensor> {
    let max = x.reduce_dim(dim, true, f32::NEG_INFINITY, f32::max)?;
    let shifted = x.zip_map(&max, |a, m| a - m)?;
    let exp = shifted.map(f32::exp)?;
    let sum = exp.reduce_dim(dim, true, 0.0, |a, v| a + v)?;
    exp.zip_map(&sum, |e, s| e / s)
}

/// Numerically stable log-softmax over dimension `dim`.
///
/// # Errors
///
/// Fails when `dim` is out of range or input is not f32.
pub fn log_softmax(x: &Tensor, dim: usize) -> Result<Tensor> {
    fused_softmax_entry(x, dim, true)
}

/// The decomposed reduce/zip_map chain, kept as the non-f32 fallback.
fn log_softmax_chain(x: &Tensor, dim: usize) -> Result<Tensor> {
    let max = x.reduce_dim(dim, true, f32::NEG_INFINITY, f32::max)?;
    let shifted = x.zip_map(&max, |a, m| a - m)?;
    let exp = shifted.map(f32::exp)?;
    let sum = exp.reduce_dim(dim, true, 0.0, |a, v| a + v)?;
    let log_sum = sum.map(f32::ln)?;
    shifted.zip_map(&log_sum, |a, l| a - l)
}

/// Cost of a fused [`softmax`] kernel on `shape` (max pass, exp pass,
/// normalize pass).
pub fn softmax_cost(shape: &[usize]) -> OpCost {
    let n = ngb_tensor::num_elements(shape);
    OpCost {
        flops: 5.0 * n as f64,
        bytes_read: 3.0 * n as f64 * F32_BYTES,
        bytes_written: n as f64 * F32_BYTES,
        kernels: 1,
        dynamic: false,
    }
}

/// Cost of [`log_softmax`] on `shape`.
pub fn log_softmax_cost(shape: &[usize]) -> OpCost {
    let mut c = softmax_cost(shape);
    c.flops += ngb_tensor::num_elements(shape) as f64;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_tensor::random::TensorRng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = TensorRng::seed(1).normal(&[4, 7]);
        let p = softmax(&x, 1).unwrap();
        for r in 0..4 {
            let row: f32 = p.select(0, r).unwrap().to_vec_f32().unwrap().iter().sum();
            assert!((row - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0, 1002.0], &[1, 3]).unwrap();
        let p = softmax(&x, 1).unwrap().to_vec_f32().unwrap();
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_over_middle_dim() {
        let x = TensorRng::seed(2).normal(&[2, 5, 3]);
        let p = softmax(&x, 1).unwrap();
        assert_eq!(p.shape(), x.shape());
        // sum over dim 1 must be 1 at every (b, k)
        let s = p.reduce_dim(1, false, 0.0, |a, v| a + v).unwrap();
        for v in s.to_vec_f32().unwrap() {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = TensorRng::seed(3).normal(&[3, 6]);
        let ls = log_softmax(&x, 1).unwrap().to_vec_f32().unwrap();
        let p = softmax(&x, 1).unwrap().to_vec_f32().unwrap();
        for (l, q) in ls.iter().zip(&p) {
            assert!((l.exp() - q).abs() < 1e-5);
        }
    }

    #[test]
    fn invalid_dim_rejected() {
        let x = Tensor::zeros(&[2, 2]);
        assert!(softmax(&x, 2).is_err());
    }

    #[test]
    fn fused_lane_kernel_matches_decomposed_chain_bitwise() {
        // inner == 1 (last dim) and inner > 1 (middle dim), both dims
        for (shape, dim) in [(vec![6, 33], 1), (vec![2, 7, 5], 1), (vec![3, 4, 9], 0)] {
            let x = TensorRng::seed(11).normal(&shape);
            let fused = softmax(&x, dim).unwrap().to_vec_f32().unwrap();
            let chain = softmax_chain(&x, dim).unwrap().to_vec_f32().unwrap();
            assert!(
                fused
                    .iter()
                    .zip(&chain)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "softmax {shape:?} dim {dim} diverged from the chain"
            );
            let fused = log_softmax(&x, dim).unwrap().to_vec_f32().unwrap();
            let chain = log_softmax_chain(&x, dim).unwrap().to_vec_f32().unwrap();
            assert!(
                fused
                    .iter()
                    .zip(&chain)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "log_softmax {shape:?} dim {dim} diverged from the chain"
            );
        }
    }

    #[test]
    fn cost_reports_single_fused_kernel() {
        let c = softmax_cost(&[1, 25, 8, 8]);
        assert_eq!(c.kernels, 1);
        assert!(log_softmax_cost(&[4]).flops > softmax_cost(&[4]).flops);
    }
}
