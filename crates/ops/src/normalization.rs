//! Normalization operators (paper Table 2 "Normalization" group).
//!
//! Besides the library kernels (LayerNorm, BatchNorm2d, GroupNorm) this
//! module implements the *custom* variants the paper singles out:
//! `FrozenBatchNorm2d` (detection models re-implement batch norm as a
//! scale-and-shift, bypassing the fused library kernel — §4.1.2) and
//! Llama's `RMSNorm`, whose eager-mode execution decomposes into several
//! kernels (§4.1.4).

use ngb_tensor::{LaneMap, Tensor, TensorError};

use crate::parallel;
use crate::{OpCost, Result, F32_BYTES};

/// Storage offset of logical row-major element `i` of a strided view, via a
/// [`LaneMap`] built over the **last** dim (`last` = that dim's size). The
/// strided branches of the map-wide kernels use this to walk any layout in
/// logical order — same element order as the contiguous fast path, so
/// results stay bit-identical.
#[inline]
fn elem_offset(map: &LaneMap, last: usize, i: usize) -> usize {
    (map.lane_base(i / last, 0) as isize + (i % last) as isize * map.step()) as usize
}

/// Layer normalization over the last dimension:
/// `y = (x - mean) / sqrt(var + eps) * gamma + beta`.
///
/// `gamma`/`beta` have the size of the last dim.
///
/// # Errors
///
/// Fails when the affine parameter shapes do not match the last dim.
pub fn layer_norm(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Result<Tensor> {
    let d = *x.shape().last().ok_or_else(|| {
        TensorError::InvalidArgument("layer_norm input must have at least one dim".into())
    })?;
    if gamma.shape() != [d] || beta.shape() != [d] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![d],
            actual: gamma.shape().to_vec(),
            op: "layer_norm",
        });
    }
    let rows = x.numel() / d;
    let gp = crate::param_f32(gamma);
    let bp = crate::param_f32(beta);
    let (gs, bs) = (&*gp, &*bp);
    let ln_row = |row: &[f32], orow: &mut [f32]| {
        let mean: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for i in 0..d {
            orow[i] = (row[i] - mean) * inv * gs[i] + bs[i];
        }
    };
    let mut out = vec![0.0f32; rows * d];
    // row-parallel: each row's statistics and normalize stay serial
    // within the row, so chunking never changes the reduction order
    if let Some(xs) = x.as_slice_f32() {
        parallel::par_rows_out(&mut out, rows, d, |first_row, win| {
            for (r, orow) in win.chunks_exact_mut(d.max(1)).enumerate() {
                ln_row(&xs[(first_row + r) * d..(first_row + r + 1) * d], orow);
            }
        });
    } else {
        // strided-lane path: rows with unit innermost stride are borrowed
        // in place; anything else gathers one row at a time into a
        // per-chunk scratch buffer (never the whole tensor)
        let xs = x.storage_f32().expect("f32 layer_norm input");
        let map = LaneMap::new(x.shape(), x.strides(), x.storage_offset(), x.rank() - 1);
        let step = map.step();
        parallel::par_rows_out(&mut out, rows, d, |first_row, win| {
            let mut buf = vec![0.0f32; d];
            for (r, orow) in win.chunks_exact_mut(d.max(1)).enumerate() {
                let base = map.lane_base(first_row + r, 0) as isize;
                if step == 1 {
                    ln_row(&xs[base as usize..base as usize + d], orow);
                } else {
                    for (t, v) in buf.iter_mut().enumerate() {
                        *v = xs[(base + t as isize * step) as usize];
                    }
                    ln_row(&buf, orow);
                }
            }
        });
    }
    Tensor::from_vec(out, x.shape())
}

/// Cost of the fused [`layer_norm`] kernel on `shape`.
pub fn layer_norm_cost(shape: &[usize]) -> OpCost {
    let n = ngb_tensor::num_elements(shape);
    // eager CUDA layer norm runs a statistics pass and a normalize pass
    OpCost {
        flops: 8.0 * n as f64,
        bytes_read: 2.0 * n as f64 * F32_BYTES,
        bytes_written: n as f64 * F32_BYTES,
        kernels: 2,
        dynamic: false,
    }
}

/// Root-mean-square norm (Llama): `y = x / rms(x) * gamma` with
/// `rms(x) = sqrt(mean(x^2) + eps)` over the last dim — fused form.
///
/// # Errors
///
/// Fails when `gamma` does not match the last dim.
pub fn rms_norm(x: &Tensor, gamma: &Tensor, eps: f32) -> Result<Tensor> {
    let d = *x.shape().last().ok_or_else(|| {
        TensorError::InvalidArgument("rms_norm input must have at least one dim".into())
    })?;
    if gamma.shape() != [d] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![d],
            actual: gamma.shape().to_vec(),
            op: "rms_norm",
        });
    }
    let rows = x.numel() / d;
    let gp = crate::param_f32(gamma);
    let gs = &*gp;
    let rms_row = |row: &[f32], orow: &mut [f32]| {
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / d as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for i in 0..d {
            orow[i] = row[i] * inv * gs[i];
        }
    };
    let mut out = vec![0.0f32; rows * d];
    if let Some(xs) = x.as_slice_f32() {
        parallel::par_rows_out(&mut out, rows, d, |first_row, win| {
            for (r, orow) in win.chunks_exact_mut(d.max(1)).enumerate() {
                rms_row(&xs[(first_row + r) * d..(first_row + r + 1) * d], orow);
            }
        });
    } else {
        let xs = x.storage_f32().expect("f32 rms_norm input");
        let map = LaneMap::new(x.shape(), x.strides(), x.storage_offset(), x.rank() - 1);
        let step = map.step();
        parallel::par_rows_out(&mut out, rows, d, |first_row, win| {
            let mut buf = vec![0.0f32; d];
            for (r, orow) in win.chunks_exact_mut(d.max(1)).enumerate() {
                let base = map.lane_base(first_row + r, 0) as isize;
                if step == 1 {
                    rms_row(&xs[base as usize..base as usize + d], orow);
                } else {
                    for (t, v) in buf.iter_mut().enumerate() {
                        *v = xs[(base + t as isize * step) as usize];
                    }
                    rms_row(&buf, orow);
                }
            }
        });
    }
    Tensor::from_vec(out, x.shape())
}

/// Cost of the fused [`rms_norm`] kernel on `shape`.
pub fn rms_norm_cost(shape: &[usize]) -> OpCost {
    let n = ngb_tensor::num_elements(shape);
    OpCost {
        flops: 5.0 * n as f64,
        bytes_read: 2.0 * n as f64 * F32_BYTES,
        bytes_written: n as f64 * F32_BYTES,
        kernels: 1,
        dynamic: false,
    }
}

/// `LlamaRMSNorm` as Hugging Face executes it in eager mode: `pow` →
/// `mean` → `add eps` → `rsqrt` → `mul` → `mul gamma`, six kernels with
/// intermediate materialization (the overhead §4.1.4 describes).
///
/// Numerically identical to [`rms_norm`].
///
/// # Errors
///
/// Fails when `gamma` does not match the last dim.
pub fn llama_rms_norm(x: &Tensor, gamma: &Tensor, eps: f32) -> Result<Tensor> {
    let sq = x.map(|v| v * v)?; // pow(2)
    let rank = x.rank();
    let ms = sq.reduce_dim(rank - 1, true, 0.0, |a, v| a + v)?; // mean (sum…
    let d = *x.shape().last().expect("checked nonempty");
    let ms = ms.map(|v| v / d as f32)?; // …/ n)
    let inv = ms.map(|v| 1.0 / (v + eps).sqrt())?; // add + rsqrt
    let normed = x.zip_map(&inv, |a, b| a * b)?; // mul (broadcast)
    normed.zip_map(gamma, |a, g| a * g) // mul gamma
}

/// Cost of the decomposed [`llama_rms_norm`] chain on `shape`.
pub fn llama_rms_norm_cost(shape: &[usize]) -> OpCost {
    let n = ngb_tensor::num_elements(shape);
    let rows = n / shape.last().copied().unwrap_or(1).max(1);
    OpCost::elementwise(n, 1.0) // pow
        + OpCost::reduction(n, rows, 1.0) // mean
        + OpCost::elementwise(rows, 2.0) // add eps + div n
        + OpCost::elementwise(rows, 2.0) // rsqrt
        + OpCost::elementwise_binary(n, 1.0) // mul inv
        + OpCost::elementwise_binary(n, 1.0) // mul gamma
}

/// Inference-mode 2-D batch norm on NCHW using running statistics:
/// `y = (x - mean_c) / sqrt(var_c + eps) * gamma_c + beta_c`.
///
/// # Errors
///
/// Fails when `x` is not rank 4 or per-channel parameters mismatch `C`.
pub fn batch_norm2d(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    running_mean: &Tensor,
    running_var: &Tensor,
    eps: f32,
) -> Result<Tensor> {
    if x.rank() != 4 {
        return Err(TensorError::InvalidArgument(
            "batch_norm2d requires NCHW input".into(),
        ));
    }
    let c = x.shape()[1];
    for (t, name) in [
        (gamma, "gamma"),
        (beta, "beta"),
        (running_mean, "mean"),
        (running_var, "var"),
    ] {
        if t.shape() != [c] {
            return Err(TensorError::InvalidArgument(format!(
                "batch_norm2d {name} must have shape [{c}], got {:?}",
                t.shape()
            )));
        }
    }
    let gp = crate::param_f32(gamma);
    let bp = crate::param_f32(beta);
    let mp = crate::param_f32(running_mean);
    let vp = crate::param_f32(running_var);
    let (gs, bs, ms, vs) = (&*gp, &*bp, &*mp, &*vp);
    let plane = x.shape()[2] * x.shape()[3];
    let mut out = vec![0.0f32; x.numel()];
    // single chunk-parallel pass; the per-element operation order matches
    // the broadcast chain (sub, div-sqrt, mul, add) bit for bit
    if let Some(xs) = x.as_slice_f32() {
        parallel::par_for_out(&mut out, |start, win| {
            for (j, o) in win.iter_mut().enumerate() {
                let i = start + j;
                let ch = (i / plane.max(1)) % c;
                let a = xs[i];
                *o = (a - ms[ch]) / (vs[ch] + eps).sqrt() * gs[ch] + bs[ch];
            }
        });
    } else {
        let xs = x.storage_f32().expect("f32 batch_norm2d input");
        let last = x.shape()[3].max(1);
        let map = LaneMap::new(x.shape(), x.strides(), x.storage_offset(), 3);
        parallel::par_for_out(&mut out, |start, win| {
            for (j, o) in win.iter_mut().enumerate() {
                let i = start + j;
                let ch = (i / plane.max(1)) % c;
                let a = xs[elem_offset(&map, last, i)];
                *o = (a - ms[ch]) / (vs[ch] + eps).sqrt() * gs[ch] + bs[ch];
            }
        });
    }
    Tensor::from_vec(out, x.shape())
}

/// Cost of a fused inference [`batch_norm2d`] kernel on `shape`.
pub fn batch_norm2d_cost(shape: &[usize]) -> OpCost {
    OpCost::elementwise(ngb_tensor::num_elements(shape), 4.0)
}

/// `FrozenBatchNorm2d` — torchvision detection models' hand-rolled batch
/// norm (`(x * scale) + shift` with precomputed per-channel constants).
/// In eager mode this executes as separate `mul` and `add` broadcasts
/// rather than one fused norm kernel — the custom-implementation overhead
/// §4.1.2 identifies as the reason Normalization dominates detection
/// models on GPU.
///
/// # Errors
///
/// Fails when `x` is not rank 4 or parameters mismatch `C`.
pub fn frozen_batch_norm2d(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    running_mean: &Tensor,
    running_var: &Tensor,
    eps: f32,
) -> Result<Tensor> {
    if x.rank() != 4 {
        return Err(TensorError::InvalidArgument(
            "frozen_batch_norm2d requires NCHW input".into(),
        ));
    }
    let c = x.shape()[1];
    // scale = gamma * rsqrt(var + eps); shift = beta - mean * scale
    let scale = gamma.zip_map(running_var, move |g, v| g / (v + eps).sqrt())?;
    let shift = beta.zip_map(&running_mean.zip_map(&scale, |m, s| m * s)?, |b, ms| b - ms)?;
    // zip_map outputs are freshly contiguous, so these are plain borrows
    let ss = scale.as_slice_f32().expect("scale is contiguous f32");
    let shs = shift.as_slice_f32().expect("shift is contiguous f32");
    let plane = x.shape()[2] * x.shape()[3];
    let mut out = vec![0.0f32; x.numel()];
    // the scale-then-shift broadcasts collapse into one chunk-parallel
    // pass; per element this is exactly `x * s` then `+ shift`
    if let Some(xs) = x.as_slice_f32() {
        parallel::par_for_out(&mut out, |start, win| {
            for (j, o) in win.iter_mut().enumerate() {
                let i = start + j;
                let ch = (i / plane.max(1)) % c;
                *o = xs[i] * ss[ch] + shs[ch];
            }
        });
    } else {
        let xs = x.storage_f32().expect("f32 frozen_batch_norm2d input");
        let last = x.shape()[3].max(1);
        let map = LaneMap::new(x.shape(), x.strides(), x.storage_offset(), 3);
        parallel::par_for_out(&mut out, |start, win| {
            for (j, o) in win.iter_mut().enumerate() {
                let i = start + j;
                let ch = (i / plane.max(1)) % c;
                *o = xs[elem_offset(&map, last, i)] * ss[ch] + shs[ch];
            }
        });
    }
    Tensor::from_vec(out, x.shape())
}

/// Cost of the decomposed [`frozen_batch_norm2d`]: four kernels (scale
/// prep ×2 on `C` elements, then `mul` + `add` broadcasts over the map).
pub fn frozen_batch_norm2d_cost(shape: &[usize]) -> OpCost {
    let n = ngb_tensor::num_elements(shape);
    let c = if shape.len() >= 2 { shape[1] } else { 1 };
    // eager torchvision: rsqrt, two per-channel prep kernels, then the
    // broadcast mul and add each re-touch the whole map
    OpCost::elementwise(c, 3.0)
        + OpCost::elementwise(c, 2.0)
        + OpCost::elementwise(c, 2.0)
        + OpCost::elementwise_binary(n, 1.0)
        + OpCost::elementwise_binary(n, 1.0)
}

/// Group normalization on NCHW with `groups` channel groups.
///
/// # Errors
///
/// Fails when `C % groups != 0`, parameters mismatch `C`, or input is not
/// rank 4.
pub fn group_norm(
    x: &Tensor,
    groups: usize,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> Result<Tensor> {
    if x.rank() != 4 {
        return Err(TensorError::InvalidArgument(
            "group_norm requires NCHW input".into(),
        ));
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    if groups == 0 || c % groups != 0 {
        return Err(TensorError::InvalidArgument(format!(
            "group_norm: {groups} groups do not divide {c} channels"
        )));
    }
    if gamma.shape() != [c] || beta.shape() != [c] {
        return Err(TensorError::InvalidArgument(
            "group_norm affine params must have shape [C]".into(),
        ));
    }
    let cg = c / groups;
    let gp = crate::param_f32(gamma);
    let bp = crate::param_f32(beta);
    let (gs, bs) = (&*gp, &*bp);
    let mut out = vec![0.0f32; x.numel()];
    let plane = h * w;
    let seg_len = cg * plane;
    let gn_seg = |g: usize, seg: &[f32], oseg: &mut [f32]| {
        let mean: f32 = seg.iter().sum::<f32>() / seg_len as f32;
        let var: f32 = seg.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / seg_len as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for cc in 0..cg {
            let ch = g * cg + cc;
            for p in 0..plane {
                let i = cc * plane + p;
                oseg[i] = (seg[i] - mean) * inv * gs[ch] + bs[ch];
            }
        }
    };
    // segment-parallel: one (batch, group) segment per work unit, its
    // statistics and normalize serial within the segment
    if let Some(xs) = x.as_slice_f32() {
        parallel::par_rows_out(&mut out, n * groups, seg_len, |first_seg, win| {
            for (s, oseg) in win.chunks_exact_mut(seg_len.max(1)).enumerate() {
                let seg_idx = first_seg + s;
                let start = seg_idx * seg_len;
                gn_seg(seg_idx % groups, &xs[start..start + seg_len], oseg);
            }
        });
    } else {
        // strided path: gather each segment (a row-major-contiguous run of
        // the logical NCHW order) into a per-chunk scratch buffer, then
        // run the identical stats/normalize — bit-identical, and never
        // materializes more than one segment per worker
        let xs = x.storage_f32().expect("f32 group_norm input");
        let last = w.max(1);
        let map = LaneMap::new(x.shape(), x.strides(), x.storage_offset(), 3);
        parallel::par_rows_out(&mut out, n * groups, seg_len, |first_seg, win| {
            let mut buf = vec![0.0f32; seg_len];
            for (s, oseg) in win.chunks_exact_mut(seg_len.max(1)).enumerate() {
                let seg_idx = first_seg + s;
                let start = seg_idx * seg_len;
                for (t, v) in buf.iter_mut().enumerate() {
                    *v = xs[elem_offset(&map, last, start + t)];
                }
                gn_seg(seg_idx % groups, &buf, oseg);
            }
        });
    }
    Tensor::from_vec(out, x.shape())
}

/// Cost of [`group_norm`] on `shape`.
pub fn group_norm_cost(shape: &[usize]) -> OpCost {
    let n = ngb_tensor::num_elements(shape);
    OpCost {
        flops: 8.0 * n as f64,
        bytes_read: 2.0 * n as f64 * F32_BYTES,
        bytes_written: n as f64 * F32_BYTES,
        kernels: 2,
        dynamic: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_tensor::random::TensorRng;

    fn mean_var(v: &[f32]) -> (f32, f32) {
        let mean = v.iter().sum::<f32>() / v.len() as f32;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / v.len() as f32;
        (mean, var)
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let x = TensorRng::seed(1).normal(&[4, 16]);
        let g = Tensor::ones(&[16]);
        let b = Tensor::zeros(&[16]);
        let y = layer_norm(&x, &g, &b, 1e-5).unwrap();
        for r in 0..4 {
            let row = y.select(0, r).unwrap().to_vec_f32().unwrap();
            let (m, v) = mean_var(&row);
            assert!(m.abs() < 1e-5, "row {r} mean {m}");
            assert!((v - 1.0).abs() < 1e-3, "row {r} var {v}");
        }
    }

    #[test]
    fn layer_norm_affine() {
        let x = TensorRng::seed(2).normal(&[2, 8]);
        let g = Tensor::full(&[8], 2.0);
        let b = Tensor::full(&[8], 1.0);
        let y = layer_norm(&x, &g, &b, 1e-5).unwrap();
        let plain = layer_norm(&x, &Tensor::ones(&[8]), &Tensor::zeros(&[8]), 1e-5).unwrap();
        let expect = plain.map(|v| 2.0 * v + 1.0).unwrap();
        for (a, e) in y
            .to_vec_f32()
            .unwrap()
            .iter()
            .zip(expect.to_vec_f32().unwrap())
        {
            assert!((a - e).abs() < 1e-5);
        }
    }

    #[test]
    fn rms_norm_fused_vs_decomposed() {
        let x = TensorRng::seed(3).normal(&[2, 5, 32]);
        let g = TensorRng::seed(4).uniform(&[32], 0.5, 1.5);
        let fused = rms_norm(&x, &g, 1e-6).unwrap();
        let dec = llama_rms_norm(&x, &g, 1e-6).unwrap();
        for (a, b) in fused
            .to_vec_f32()
            .unwrap()
            .iter()
            .zip(dec.to_vec_f32().unwrap())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn rms_norm_unit_rms() {
        let x = TensorRng::seed(5).normal(&[1, 64]);
        let y = rms_norm(&x, &Tensor::ones(&[64]), 0.0)
            .unwrap()
            .to_vec_f32()
            .unwrap();
        let rms = (y.iter().map(|v| v * v).sum::<f32>() / 64.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-4);
    }

    #[test]
    fn llama_rms_norm_costs_six_kernels() {
        let fused = rms_norm_cost(&[1, 10, 4096]);
        let dec = llama_rms_norm_cost(&[1, 10, 4096]);
        assert_eq!(fused.kernels, 1);
        assert_eq!(dec.kernels, 6);
        assert!(dec.memory_bytes() > fused.memory_bytes());
    }

    #[test]
    fn batch_norm_matches_frozen_variant() {
        let mut rng = TensorRng::seed(6);
        let x = rng.normal(&[2, 3, 4, 4]);
        let g = rng.uniform(&[3], 0.5, 1.5);
        let b = rng.normal(&[3]);
        let m = rng.normal(&[3]);
        let v = rng.uniform(&[3], 0.5, 2.0);
        let bn = batch_norm2d(&x, &g, &b, &m, &v, 1e-5).unwrap();
        let fbn = frozen_batch_norm2d(&x, &g, &b, &m, &v, 1e-5).unwrap();
        for (a, c) in bn
            .to_vec_f32()
            .unwrap()
            .iter()
            .zip(fbn.to_vec_f32().unwrap())
        {
            assert!((a - c).abs() < 1e-4, "{a} vs {c}");
        }
    }

    #[test]
    fn frozen_bn_costs_more_kernels() {
        let shape = [1, 1024, 50, 68];
        assert_eq!(batch_norm2d_cost(&shape).kernels, 1);
        assert_eq!(frozen_batch_norm2d_cost(&shape).kernels, 5);
    }

    #[test]
    fn batch_norm_normalizes_with_true_stats() {
        // if running stats equal the data stats, output is ~N(0,1) per channel
        let x = TensorRng::seed(7).normal(&[8, 1, 16, 16]);
        let data = x.to_vec_f32().unwrap();
        let (m, v) = mean_var(&data);
        let y = batch_norm2d(
            &x,
            &Tensor::ones(&[1]),
            &Tensor::zeros(&[1]),
            &Tensor::full(&[1], m),
            &Tensor::full(&[1], v),
            0.0,
        )
        .unwrap();
        let (ym, yv) = mean_var(&y.to_vec_f32().unwrap());
        assert!(ym.abs() < 1e-5);
        assert!((yv - 1.0).abs() < 1e-3);
    }

    #[test]
    fn group_norm_per_group_stats() {
        let x = TensorRng::seed(8).normal(&[1, 4, 3, 3]);
        let y = group_norm(&x, 2, &Tensor::ones(&[4]), &Tensor::zeros(&[4]), 0.0).unwrap();
        let v = y.to_vec_f32().unwrap();
        // each group = 2 channels * 9 = 18 elements, should be ~N(0,1)
        let (m0, v0) = mean_var(&v[0..18]);
        assert!(m0.abs() < 1e-5);
        assert!((v0 - 1.0).abs() < 1e-3);
    }

    #[test]
    fn validation_errors() {
        let x = Tensor::zeros(&[2, 4]);
        assert!(layer_norm(&x, &Tensor::ones(&[3]), &Tensor::zeros(&[4]), 1e-5).is_err());
        assert!(rms_norm(&x, &Tensor::ones(&[5]), 1e-5).is_err());
        let x4 = Tensor::zeros(&[1, 4, 2, 2]);
        assert!(group_norm(&x4, 3, &Tensor::ones(&[4]), &Tensor::zeros(&[4]), 1e-5).is_err());
        assert!(batch_norm2d(
            &Tensor::zeros(&[2, 4]),
            &Tensor::ones(&[4]),
            &Tensor::zeros(&[4]),
            &Tensor::zeros(&[4]),
            &Tensor::ones(&[4]),
            1e-5
        )
        .is_err());
    }
}
