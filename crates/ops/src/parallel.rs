//! Deterministic intra-op data parallelism: fixed-grain chunk
//! partitioning plus a pluggable scoped runner.
//!
//! The contract (DESIGN.md §14): partitioning is a **pure function of the
//! work shape** — never of the thread count, the runner, or any runtime
//! state — and every chunk owns a disjoint slice of the output. All
//! reductions stay serial within their unit (row, lane, segment), so a
//! kernel produces bit-identical results whether it runs serially,
//! chunked on one thread, or chunked across N pool workers.
//!
//! Kernels call [`par_for`] / [`par_rows`] (or the slice-splitting
//! [`par_for_out`] / [`par_rows_out`]); execution engines install an
//! [`IntraOpRunner`] around kernel dispatch via [`with_runner`]. Without
//! a runner the same chunks run serially on the calling thread, which is
//! also the work-budget fallback for small tensors.

use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::sync::Arc;

use ngb_tensor::Tensor;

use crate::Result;

/// Elements per chunk: 32 Ki f32 elements (128 KiB) keeps a chunk's
/// working set cache-resident while amortizing dispatch overhead.
pub const GRAIN_ELEMS: usize = 32 * 1024;

/// Work-budget floor: tensors smaller than this stay serial (one chunk).
/// Overridable via `NGB_INTRAOP_MIN_ELEMS`; the threshold only collapses
/// the chunk count to 1, so changing it never changes results.
pub fn min_intraop_elems() -> usize {
    std::env::var("NGB_INTRAOP_MIN_ELEMS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(GRAIN_ELEMS)
}

// ----------------------------------------------------------------------
// Partitioning: pure functions of (total, row_len) only
// ----------------------------------------------------------------------

/// Number of element chunks for `total` elements under threshold
/// `min_elems`: 1 below the threshold, else `ceil(total / GRAIN_ELEMS)`.
pub fn element_chunks(total: usize, min_elems: usize) -> usize {
    if total < min_elems {
        1
    } else {
        total.div_ceil(GRAIN_ELEMS).max(1)
    }
}

/// Element range of chunk `chunk` out of [`element_chunks`] many.
pub fn element_range(total: usize, chunks: usize, chunk: usize) -> Range<usize> {
    if chunks <= 1 {
        return 0..total;
    }
    let start = chunk * GRAIN_ELEMS;
    start..(start + GRAIN_ELEMS).min(total)
}

/// Rows (generic work units of `row_len` elements) grouped per chunk so a
/// chunk carries roughly [`GRAIN_ELEMS`] elements.
pub fn rows_per_chunk(row_len: usize) -> usize {
    (GRAIN_ELEMS / row_len.max(1)).max(1)
}

/// Number of row chunks for `rows` rows of `row_len` elements.
pub fn row_chunks(rows: usize, row_len: usize, min_elems: usize) -> usize {
    if rows.saturating_mul(row_len) < min_elems {
        1
    } else {
        rows.div_ceil(rows_per_chunk(row_len)).max(1)
    }
}

/// Row range of chunk `chunk` out of [`row_chunks`] many.
pub fn row_range(rows: usize, row_len: usize, chunks: usize, chunk: usize) -> Range<usize> {
    if chunks <= 1 {
        return 0..rows;
    }
    let per = rows_per_chunk(row_len);
    let start = chunk * per;
    start..(start + per).min(rows)
}

/// The complete element decomposition `par_elems` dispatches for `total`
/// elements: every chunk's range, in chunk order. This is the metadata the
/// `ngb-sanitize` disjointness check certifies — it must stay an exact,
/// pairwise-disjoint cover of `0..total` and a pure function of shape.
pub fn element_partition(total: usize, min_elems: usize) -> Vec<Range<usize>> {
    let chunks = element_chunks(total, min_elems);
    (0..chunks)
        .map(|c| element_range(total, chunks, c))
        .collect()
}

/// The complete row decomposition `par_rows` dispatches for `rows` rows of
/// `row_len` elements; same exact-cover contract as [`element_partition`]
/// over `0..rows`.
pub fn row_partition(rows: usize, row_len: usize, min_elems: usize) -> Vec<Range<usize>> {
    let chunks = row_chunks(rows, row_len, min_elems);
    (0..chunks)
        .map(|c| row_range(rows, row_len, chunks, c))
        .collect()
}

// ----------------------------------------------------------------------
// Runner plumbing
// ----------------------------------------------------------------------

/// Executes `job(chunk)` for every chunk in `0..chunks`, possibly on
/// helper threads, returning once all chunks are done. Implementations
/// must guarantee completion before returning (scoped join) and report
/// how many threads participated (≥ 1, the caller included).
pub trait IntraOpRunner: Send + Sync {
    /// Runs all `chunks` chunks to completion and returns the number of
    /// threads that executed at least one chunk.
    fn run(&self, chunks: usize, job: &(dyn Fn(usize) + Sync)) -> usize;
}

/// Per-dispatch intra-op statistics, accumulated per thread between
/// [`reset_stats`] and [`take_stats`] (engines sample them around each
/// node's kernel call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntraOpStats {
    /// Total chunks dispatched (1 per serial kernel call).
    pub chunks: usize,
    /// Maximum number of threads that cooperated on one dispatch.
    pub max_participants: usize,
}

thread_local! {
    static RUNNER: RefCell<Option<Arc<dyn IntraOpRunner>>> = const { RefCell::new(None) };
    static STATS: Cell<IntraOpStats> = const { Cell::new(IntraOpStats { chunks: 0, max_participants: 0 }) };
}

/// Installs `runner` for intra-op dispatch while `f` runs on this thread,
/// restoring the previous runner afterwards (panic-safe).
pub fn with_runner<R>(runner: Arc<dyn IntraOpRunner>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<dyn IntraOpRunner>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            RUNNER.with(|r| *r.borrow_mut() = prev);
        }
    }
    let prev = RUNNER.with(|r| r.borrow_mut().replace(runner));
    let _restore = Restore(prev);
    f()
}

/// Clears this thread's intra-op counters.
pub fn reset_stats() {
    STATS.with(|s| s.set(IntraOpStats::default()));
}

/// Returns and clears this thread's intra-op counters.
pub fn take_stats() -> IntraOpStats {
    STATS.with(|s| s.replace(IntraOpStats::default()))
}

fn record(chunks: usize, participants: usize) {
    STATS.with(|s| {
        let mut v = s.get();
        v.chunks += chunks;
        v.max_participants = v.max_participants.max(participants);
        s.set(v);
    });
}

/// Dispatches `chunks` chunks through the installed runner, or serially
/// on this thread when none is installed (or only one chunk exists).
/// Returns the participant count.
fn run_chunks(chunks: usize, job: &(dyn Fn(usize) + Sync)) -> usize {
    if chunks > 1 {
        if let Some(runner) = RUNNER.with(|r| r.borrow().clone()) {
            return runner.run(chunks, job);
        }
    }
    for c in 0..chunks {
        job(c);
    }
    1
}

// ----------------------------------------------------------------------
// par_for / par_rows
// ----------------------------------------------------------------------

/// Runs `job` over disjoint element ranges that exactly partition
/// `0..total`. The split depends only on `total` (and the env threshold),
/// never on thread count.
pub fn par_for(total: usize, job: impl Fn(Range<usize>) + Sync) {
    let chunks = element_chunks(total, min_intraop_elems());
    let participants = run_chunks(chunks, &|c| job(element_range(total, chunks, c)));
    record(chunks, participants);
}

/// Runs `job` over disjoint row ranges that exactly partition `0..rows`,
/// where each row is a work unit of `row_len` elements. The split depends
/// only on `(rows, row_len)` (and the env threshold).
pub fn par_rows(rows: usize, row_len: usize, job: impl Fn(Range<usize>) + Sync) {
    let chunks = row_chunks(rows, row_len, min_intraop_elems());
    let participants = run_chunks(chunks, &|c| job(row_range(rows, row_len, chunks, c)));
    record(chunks, participants);
}

// ----------------------------------------------------------------------
// Disjoint output-slice dispatch
// ----------------------------------------------------------------------

/// Raw pointer wrapper for handing an output buffer to chunk jobs that
/// write disjoint regions. Confined to this module; the scoped-join
/// guarantee of [`IntraOpRunner::run`] keeps the borrow alive for every
/// dereference.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr(pub(crate) *mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Mutable sub-slice `range` of the wrapped buffer.
    ///
    /// # Safety
    ///
    /// `range` must be in bounds and disjoint from every other range
    /// sliced out while the buffer is shared across chunk jobs.
    pub(crate) unsafe fn slice(self, range: Range<usize>) -> &'static mut [f32] {
        std::slice::from_raw_parts_mut(self.0.add(range.start), range.len())
    }
}

/// Element-chunked variant of [`par_for`] that splits `out` into disjoint
/// slices: `job(start, slice)` receives the chunk's first element index
/// and its mutable window of `out`.
pub fn par_for_out(out: &mut [f32], job: impl Fn(usize, &mut [f32]) + Sync) {
    let total = out.len();
    let ptr = SendPtr(out.as_mut_ptr());
    par_for(total, |r| {
        let start = r.start;
        // SAFETY: ranges from `par_for` partition 0..total disjointly and
        // the scoped join keeps `out` borrowed until every job returns.
        job(start, unsafe { ptr.slice(r) });
    });
}

/// Row-chunked variant of [`par_rows`] that splits `out` (of length
/// `rows * row_len`) into disjoint row windows: `job(first_row, slice)`.
pub fn par_rows_out(
    out: &mut [f32],
    rows: usize,
    row_len: usize,
    job: impl Fn(usize, &mut [f32]) + Sync,
) {
    debug_assert_eq!(out.len(), rows * row_len);
    let ptr = SendPtr(out.as_mut_ptr());
    par_rows(rows, row_len, |r| {
        let elems = r.start * row_len..r.end * row_len;
        // SAFETY: row ranges partition 0..rows disjointly, so element
        // windows are disjoint; the scoped join outlives every job.
        job(r.start, unsafe { ptr.slice(elems) });
    });
}

// ----------------------------------------------------------------------
// Element-wise kernel helpers
// ----------------------------------------------------------------------

/// Allocates an uninitialized f32 vec and fills it chunk-parallel via
/// `fill(start, out_window)`; every element must be written (guaranteed
/// because chunks partition the full range).
fn alloc_filled(n: usize, fill: impl Fn(usize, &mut [f32]) + Sync) -> Vec<f32> {
    let mut out: Vec<f32> = Vec::with_capacity(n);
    let ptr = SendPtr(out.as_mut_ptr());
    par_for(n, |r| {
        let start = r.start;
        // SAFETY: disjoint windows of the reserved capacity; set_len runs
        // only after the scoped join wrote all n elements.
        fill(start, unsafe { ptr.slice(r) });
    });
    // SAFETY: par_for's chunks partition 0..n, so all n elements are
    // initialized once it returns.
    unsafe { out.set_len(n) };
    out
}

/// Chunk-parallel element-wise unary kernel: identical per-element math
/// to [`Tensor::map`] (bit-for-bit), with the contiguous fast path split
/// across chunks. Falls back to `map` for strided views.
pub fn unary(x: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Result<Tensor> {
    let Some(src) = x.as_slice_f32() else {
        return x.map(f);
    };
    let data = alloc_filled(src.len(), |start, out| {
        let xs = &src[start..start + out.len()];
        for (o, &v) in out.iter_mut().zip(xs) {
            *o = f(v);
        }
    });
    Tensor::from_vec(data, x.shape())
}

/// Chunk-parallel element-wise binary kernel for same-shape contiguous
/// operands: identical per-element math to [`Tensor::zip_map`]
/// (bit-for-bit). Broadcasting falls back to `zip_map`.
pub fn binary(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Result<Tensor> {
    if a.shape() == b.shape() {
        if let (Some(av), Some(bv)) = (a.as_slice_f32(), b.as_slice_f32()) {
            let data = alloc_filled(av.len(), |start, out| {
                let (xs, ys) = (&av[start..start + out.len()], &bv[start..start + out.len()]);
                for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
                    *o = f(x, y);
                }
            });
            return Tensor::from_vec(data, a.shape());
        }
    }
    a.zip_map(b, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Test-only scoped runner on raw `std::thread::scope` threads, so the
    /// ops crate exercises multi-thread dispatch without depending on
    /// `ngb-exec`.
    struct ScopedTestRunner {
        threads: usize,
    }

    impl IntraOpRunner for ScopedTestRunner {
        fn run(&self, chunks: usize, job: &(dyn Fn(usize) + Sync)) -> usize {
            let next = AtomicUsize::new(0);
            let participants = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..self.threads.max(1).min(chunks) {
                    s.spawn(|| {
                        let mut claimed = false;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= chunks {
                                break;
                            }
                            claimed = true;
                            job(i);
                        }
                        if claimed {
                            participants.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            participants.load(Ordering::Relaxed).max(1)
        }
    }

    fn with_test_runner<R>(threads: usize, f: impl FnOnce() -> R) -> R {
        with_runner(Arc::new(ScopedTestRunner { threads }), f)
    }

    #[test]
    fn element_partition_is_exact_and_disjoint() {
        for total in [
            0usize,
            1,
            7,
            GRAIN_ELEMS - 1,
            GRAIN_ELEMS,
            GRAIN_ELEMS + 1,
            5 * GRAIN_ELEMS + 13,
        ] {
            let chunks = element_chunks(total, 1);
            let mut next = 0usize;
            for c in 0..chunks {
                let r = element_range(total, chunks, c);
                assert_eq!(r.start, next, "total={total} chunk={c}");
                next = r.end;
            }
            assert_eq!(next, total, "ranges must cover 0..{total}");
        }
    }

    #[test]
    fn row_partition_is_exact_and_disjoint() {
        for (rows, row_len) in [
            (0usize, 5usize),
            (1, 1),
            (3, 100),
            (1000, 777),
            (4, GRAIN_ELEMS * 2),
        ] {
            let chunks = row_chunks(rows, row_len, 1);
            let mut next = 0usize;
            for c in 0..chunks {
                let r = row_range(rows, row_len, chunks, c);
                assert_eq!(r.start, next, "rows={rows} len={row_len} chunk={c}");
                next = r.end;
            }
            assert_eq!(next, rows);
        }
    }

    #[test]
    fn partitioning_is_a_pure_function_of_shape() {
        // same shape => same chunk layout, with or without a runner, on
        // repeated calls, and independent of the runner's thread count
        let total = 3 * GRAIN_ELEMS + 17;
        let layout = |label: &str| {
            let chunks = element_chunks(total, 1);
            let ranges: Vec<_> = (0..chunks)
                .map(|c| element_range(total, chunks, c))
                .collect();
            (label.to_string(), chunks, ranges)
        };
        let base = layout("serial");
        for threads in [1usize, 2, 8] {
            let under = with_test_runner(threads, || layout("runner"));
            assert_eq!(base.1, under.1, "chunk count moved with thread count");
            assert_eq!(base.2, under.2, "chunk ranges moved with thread count");
        }
    }

    #[test]
    fn threshold_only_collapses_to_one_chunk() {
        assert_eq!(element_chunks(100, 1000), 1);
        assert_eq!(element_chunks(100, 1), 1); // still under one grain
        assert_eq!(element_chunks(GRAIN_ELEMS * 3, usize::MAX), 1);
        assert_eq!(element_chunks(GRAIN_ELEMS * 3, 1), 3);
        assert_eq!(row_chunks(10, GRAIN_ELEMS, usize::MAX), 1);
        assert_eq!(row_chunks(10, GRAIN_ELEMS, 1), 10);
    }

    #[test]
    fn par_for_out_writes_every_element_bit_identically() {
        let n = 2 * GRAIN_ELEMS + 3;
        let f = |i: usize| (i as f32).sin();
        let mut serial = vec![0.0f32; n];
        for (i, v) in serial.iter_mut().enumerate() {
            *v = f(i);
        }
        for threads in [1usize, 2, 8] {
            let mut out = vec![0.0f32; n];
            with_test_runner(threads, || {
                par_for_out(&mut out, |start, win| {
                    for (j, v) in win.iter_mut().enumerate() {
                        *v = f(start + j);
                    }
                });
            });
            assert!(
                serial
                    .iter()
                    .zip(&out)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn unary_and_binary_match_tensor_combinators_bitwise() {
        let n = GRAIN_ELEMS + 100;
        let a = Tensor::from_vec((0..n).map(|i| (i as f32) * 0.37 - 50.0).collect(), &[n]).unwrap();
        let b = Tensor::from_vec((0..n).map(|i| (i as f32).cos()).collect(), &[n]).unwrap();
        let f = |x: f32| (x * 1.5).tanh();
        let g = |x: f32, y: f32| x * y + 0.25;
        let want_u = a.map(f).unwrap().to_vec_f32().unwrap();
        let want_b = a.zip_map(&b, g).unwrap().to_vec_f32().unwrap();
        for threads in [1usize, 4] {
            let (got_u, got_b) = with_test_runner(threads, || {
                (
                    unary(&a, f).unwrap().to_vec_f32().unwrap(),
                    binary(&a, &b, g).unwrap().to_vec_f32().unwrap(),
                )
            });
            assert!(want_u
                .iter()
                .zip(&got_u)
                .all(|(x, y)| x.to_bits() == y.to_bits()));
            assert!(want_b
                .iter()
                .zip(&got_b)
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn strided_views_fall_back_to_map_semantics() {
        let a = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[4, 6]).unwrap();
        let t = a.permute(&[1, 0]).unwrap(); // non-contiguous view
        let got = unary(&t, |x| x + 1.0).unwrap();
        assert_eq!(got, t.map(|x| x + 1.0).unwrap());
    }

    #[test]
    fn stats_track_chunks_and_participants() {
        reset_stats();
        par_for(10, |_r| {});
        let s = take_stats();
        assert_eq!(s.chunks, 1, "small op stays one chunk");
        assert_eq!(s.max_participants, 1);

        with_test_runner(4, || {
            reset_stats();
            par_for(4 * GRAIN_ELEMS, |_r| {
                std::thread::yield_now();
            });
            let s = take_stats();
            assert_eq!(s.chunks, 4);
            assert!(s.max_participants >= 1);
        });
    }

    #[test]
    fn runner_scope_restores_on_exit() {
        assert!(RUNNER.with(|r| r.borrow().is_none()));
        with_test_runner(2, || {
            assert!(RUNNER.with(|r| r.borrow().is_some()));
        });
        assert!(RUNNER.with(|r| r.borrow().is_none()));
    }
}
