//! RoI selection operators (Table 2 "RoI Selection"): non-maximum
//! suppression, box IoU, and RoIAlign — the data-dependent ("dynamic")
//! operators of the R-CNN detection family (paper Figure 2 (a)).

use ngb_tensor::{Tensor, TensorError};

use crate::{OpCost, Result, F32_BYTES};

/// Intersection-over-Union for every box pair.
///
/// `a: [N, 4]`, `b: [M, 4]` in `(x1, y1, x2, y2)` corner format; returns
/// `[N, M]`.
///
/// # Errors
///
/// Fails when either input is not `[*, 4]` f32.
pub fn box_iou(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    for t in [a, b] {
        if t.rank() != 2 || t.shape()[1] != 4 {
            return Err(TensorError::InvalidArgument(
                "box_iou inputs must be [N, 4]".into(),
            ));
        }
    }
    let (n, m) = (a.shape()[0], b.shape()[0]);
    let av = a.to_vec_f32()?;
    let bv = b.to_vec_f32()?;
    let area = |v: &[f32]| ((v[2] - v[0]).max(0.0)) * ((v[3] - v[1]).max(0.0));
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        let ba = &av[i * 4..i * 4 + 4];
        let aa = area(ba);
        for j in 0..m {
            let bb = &bv[j * 4..j * 4 + 4];
            let ab = area(bb);
            let ix1 = ba[0].max(bb[0]);
            let iy1 = ba[1].max(bb[1]);
            let ix2 = ba[2].min(bb[2]);
            let iy2 = ba[3].min(bb[3]);
            let inter = (ix2 - ix1).max(0.0) * (iy2 - iy1).max(0.0);
            let union = aa + ab - inter;
            out[i * m + j] = if union > 0.0 { inter / union } else { 0.0 };
        }
    }
    Tensor::from_vec(out, &[n, m])
}

/// Non-maximum suppression (the paper's flagship dynamic non-GEMM
/// operator, Figure 2 (a)).
///
/// `boxes: [N, 4]` corner format, `scores: [N]`. Returns the **indices of
/// kept boxes** (i64, descending score order): greedy NMS identical to
/// `torchvision.ops.nms`.
///
/// # Errors
///
/// Fails when shapes disagree or inputs are not f32.
pub fn nms(boxes: &Tensor, scores: &Tensor, iou_threshold: f32) -> Result<Tensor> {
    if boxes.rank() != 2
        || boxes.shape()[1] != 4
        || scores.rank() != 1
        || boxes.shape()[0] != scores.shape()[0]
    {
        return Err(TensorError::InvalidArgument(
            "nms requires boxes [N, 4] and scores [N]".into(),
        ));
    }
    let n = boxes.shape()[0];
    let bv = boxes.to_vec_f32()?;
    let sv = scores.to_vec_f32()?;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        sv[b]
            .partial_cmp(&sv[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let area = |i: usize| {
        let b = &bv[i * 4..i * 4 + 4];
        ((b[2] - b[0]).max(0.0)) * ((b[3] - b[1]).max(0.0))
    };
    let mut keep: Vec<i64> = Vec::new();
    let mut suppressed = vec![false; n];
    for (oi, &i) in order.iter().enumerate() {
        if suppressed[i] {
            continue;
        }
        keep.push(i as i64);
        let bi = &bv[i * 4..i * 4 + 4];
        let ai = area(i);
        for &j in &order[oi + 1..] {
            if suppressed[j] {
                continue;
            }
            let bj = &bv[j * 4..j * 4 + 4];
            let ix1 = bi[0].max(bj[0]);
            let iy1 = bi[1].max(bj[1]);
            let ix2 = bi[2].min(bj[2]);
            let iy2 = bi[3].min(bj[3]);
            let inter = (ix2 - ix1).max(0.0) * (iy2 - iy1).max(0.0);
            let union = ai + area(j) - inter;
            if union > 0.0 && inter / union > iou_threshold {
                suppressed[j] = true;
            }
        }
    }
    let k = keep.len();
    Tensor::from_i64(keep, &[k])
}

/// Cost of greedy NMS over `n` boxes: sort + worst-case pairwise IoU.
/// Marked `dynamic` — the output size depends on the data.
pub fn nms_cost(n: usize) -> OpCost {
    let nf = n as f64;
    OpCost {
        flops: nf * nf.max(1.0).log2() + 16.0 * nf * nf / 2.0,
        bytes_read: nf * 5.0 * F32_BYTES * nf.sqrt().max(1.0),
        bytes_written: nf * 8.0,
        kernels: 3, // sort + iou matrix + gather
        dynamic: true,
    }
}

/// RoIAlign: bilinear sampling of `features [C, H, W]` inside each RoI to a
/// fixed `out × out` grid, one sample per bin center (sampling_ratio = 1).
///
/// `rois: [R, 4]` in feature-map coordinates, `spatial_scale` maps box
/// coordinates onto the feature map. Returns `[R, C, out, out]`.
///
/// # Errors
///
/// Fails when shapes are not `[C, H, W]` and `[R, 4]`.
pub fn roi_align(
    features: &Tensor,
    rois: &Tensor,
    out: usize,
    spatial_scale: f32,
) -> Result<Tensor> {
    if features.rank() != 3 || rois.rank() != 2 || rois.shape()[1] != 4 || out == 0 {
        return Err(TensorError::InvalidArgument(
            "roi_align requires features [C, H, W] and rois [R, 4]".into(),
        ));
    }
    let (c, h, w) = (
        features.shape()[0],
        features.shape()[1],
        features.shape()[2],
    );
    let r = rois.shape()[0];
    // Walk the feature map's own strides (like the pooling kernels): the
    // scattered bilinear taps read permuted or sliced views in place.
    let fs = features.storage_f32().ok_or(TensorError::DTypeMismatch {
        expected: "f32",
        actual: features.dtype().name(),
        op: "roi_align",
    })?;
    let fbase = features.storage_offset() as isize;
    let (sc, sh, sw) = (
        features.strides()[0],
        features.strides()[1],
        features.strides()[2],
    );
    let rv = rois.to_vec_f32()?;
    let mut outv = vec![0.0f32; r * c * out * out];
    let bilinear = |ch: usize, y: f32, x: f32| -> f32 {
        let y = y.clamp(0.0, (h - 1) as f32);
        let x = x.clamp(0.0, (w - 1) as f32);
        let (y0, x0) = (y.floor() as usize, x.floor() as usize);
        let (y1, x1) = ((y0 + 1).min(h - 1), (x0 + 1).min(w - 1));
        let (dy, dx) = (y - y0 as f32, x - x0 as f32);
        let at = |yy: usize, xx: usize| {
            fs[(fbase + ch as isize * sc + yy as isize * sh + xx as isize * sw) as usize]
        };
        at(y0, x0) * (1.0 - dy) * (1.0 - dx)
            + at(y0, x1) * (1.0 - dy) * dx
            + at(y1, x0) * dy * (1.0 - dx)
            + at(y1, x1) * dy * dx
    };
    for ri in 0..r {
        let b = &rv[ri * 4..ri * 4 + 4];
        let (x1, y1, x2, y2) = (
            b[0] * spatial_scale,
            b[1] * spatial_scale,
            b[2] * spatial_scale,
            b[3] * spatial_scale,
        );
        let bw = (x2 - x1).max(1e-3) / out as f32;
        let bh = (y2 - y1).max(1e-3) / out as f32;
        for ch in 0..c {
            for oy in 0..out {
                for ox in 0..out {
                    let sy = y1 + (oy as f32 + 0.5) * bh;
                    let sx = x1 + (ox as f32 + 0.5) * bw;
                    outv[((ri * c + ch) * out + oy) * out + ox] = bilinear(ch, sy, sx);
                }
            }
        }
    }
    Tensor::from_vec(outv, &[r, c, out, out])
}

/// Cost of [`roi_align`] over `r` RoIs, `c` channels, `out × out` bins.
pub fn roi_align_cost(r: usize, c: usize, out: usize) -> OpCost {
    let samples = (r * c * out * out) as f64;
    OpCost {
        flops: 11.0 * samples,
        bytes_read: 4.0 * samples * F32_BYTES,
        bytes_written: samples * F32_BYTES,
        kernels: 1,
        dynamic: true, // R depends on upstream proposal filtering
    }
}

/// Converts `(cx, cy, w, h)` boxes to corner format `(x1, y1, x2, y2)`
/// (DETR's output head).
///
/// # Errors
///
/// Fails when input is not `[N, 4]` f32.
pub fn box_cxcywh_to_xyxy(boxes: &Tensor) -> Result<Tensor> {
    if boxes.rank() != 2 || boxes.shape()[1] != 4 {
        return Err(TensorError::InvalidArgument("expected boxes [N, 4]".into()));
    }
    let v = boxes.to_vec_f32()?;
    let mut out = vec![0.0f32; v.len()];
    for i in 0..boxes.shape()[0] {
        let (cx, cy, w, h) = (v[i * 4], v[i * 4 + 1], v[i * 4 + 2], v[i * 4 + 3]);
        out[i * 4] = cx - w / 2.0;
        out[i * 4 + 1] = cy - h / 2.0;
        out[i * 4 + 2] = cx + w / 2.0;
        out[i * 4 + 3] = cy + h / 2.0;
    }
    Tensor::from_vec(out, boxes.shape())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_tensor::random::TensorRng;

    fn boxes(v: &[[f32; 4]]) -> Tensor {
        Tensor::from_vec(v.iter().flatten().copied().collect(), &[v.len(), 4]).unwrap()
    }

    #[test]
    fn iou_identity_and_disjoint() {
        let a = boxes(&[[0.0, 0.0, 2.0, 2.0], [10.0, 10.0, 12.0, 12.0]]);
        let iou = box_iou(&a, &a).unwrap();
        assert!((iou.at(&[0, 0]).unwrap() - 1.0).abs() < 1e-6);
        assert_eq!(iou.at(&[0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = boxes(&[[0.0, 0.0, 2.0, 2.0]]);
        let b = boxes(&[[1.0, 0.0, 3.0, 2.0]]);
        // intersection 2, union 6
        assert!((box_iou(&a, &b).unwrap().item().unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn nms_suppresses_overlapping_lower_scores() {
        let b = boxes(&[
            [0.0, 0.0, 10.0, 10.0],   // score .9 — kept
            [1.0, 1.0, 10.5, 10.5],   // heavy overlap with 0 — suppressed
            [20.0, 20.0, 30.0, 30.0], // disjoint — kept
        ]);
        let s = Tensor::from_vec(vec![0.9, 0.8, 0.7], &[3]).unwrap();
        let keep = nms(&b, &s, 0.5).unwrap();
        assert_eq!(keep.to_vec_i64().unwrap(), vec![0, 2]);
    }

    #[test]
    fn nms_keeps_all_below_threshold() {
        let b = boxes(&[
            [0.0, 0.0, 1.0, 1.0],
            [5.0, 5.0, 6.0, 6.0],
            [9.0, 9.0, 10.0, 10.0],
        ]);
        let s = Tensor::from_vec(vec![0.1, 0.9, 0.5], &[3]).unwrap();
        let keep = nms(&b, &s, 0.5).unwrap();
        // all disjoint: kept in descending score order
        assert_eq!(keep.to_vec_i64().unwrap(), vec![1, 2, 0]);
    }

    #[test]
    fn nms_kept_set_is_an_antichain() {
        let mut rng = TensorRng::seed(9);
        let xy = rng.uniform(&[50, 2], 0.0, 50.0);
        let wh = rng.uniform(&[50, 2], 5.0, 20.0);
        let mut v = Vec::with_capacity(200);
        for i in 0..50 {
            let (x, y) = (xy.at(&[i, 0]).unwrap(), xy.at(&[i, 1]).unwrap());
            let (w, h) = (wh.at(&[i, 0]).unwrap(), wh.at(&[i, 1]).unwrap());
            v.extend_from_slice(&[x, y, x + w, y + h]);
        }
        let b = Tensor::from_vec(v, &[50, 4]).unwrap();
        let s = rng.uniform(&[50], 0.0, 1.0);
        let keep = nms(&b, &s, 0.4).unwrap().to_vec_i64().unwrap();
        // no two kept boxes may exceed the IoU threshold
        let iou = box_iou(&b, &b).unwrap();
        for (ai, &i) in keep.iter().enumerate() {
            for &j in &keep[ai + 1..] {
                assert!(
                    iou.at(&[i as usize, j as usize]).unwrap() <= 0.4 + 1e-6,
                    "kept boxes {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn nms_cost_is_dynamic() {
        assert!(nms_cost(4663).dynamic);
        assert!(nms_cost(100).flops < nms_cost(1000).flops);
    }

    #[test]
    fn roi_align_constant_field() {
        // constant feature map -> every aligned value equals the constant
        let f = Tensor::full(&[2, 8, 8], 3.5);
        let r = boxes(&[[0.0, 0.0, 4.0, 4.0], [2.0, 2.0, 7.0, 7.0]]);
        let y = roi_align(&f, &r, 3, 1.0).unwrap();
        assert_eq!(y.shape(), &[2, 2, 3, 3]);
        assert!(y
            .to_vec_f32()
            .unwrap()
            .iter()
            .all(|&v| (v - 3.5).abs() < 1e-6));
    }

    #[test]
    fn roi_align_interpolates_gradient() {
        // linear ramp in x: sampled value ~ x coordinate
        let mut f = Tensor::zeros(&[1, 4, 8]);
        for y in 0..4 {
            for x in 0..8 {
                f.set(&[0, y, x], x as f32).unwrap();
            }
        }
        let r = boxes(&[[0.0, 0.0, 8.0, 4.0]]);
        let y = roi_align(&f, &r, 4, 1.0).unwrap();
        // bin centers at x = 1, 3, 5, 7
        let row = y
            .select(0, 0)
            .unwrap()
            .select(0, 0)
            .unwrap()
            .select(0, 0)
            .unwrap();
        let vals = row.to_vec_f32().unwrap();
        assert!((vals[0] - 1.0).abs() < 0.1, "{vals:?}");
        assert!((vals[3] - 7.0).abs() < 0.3, "{vals:?}");
    }

    #[test]
    fn box_convert_roundtrip_center() {
        let cx = boxes(&[[5.0, 5.0, 4.0, 2.0]]);
        let xy = box_cxcywh_to_xyxy(&cx).unwrap();
        assert_eq!(xy.to_vec_f32().unwrap(), vec![3.0, 4.0, 7.0, 6.0]);
    }

    #[test]
    fn validation() {
        let b = Tensor::zeros(&[3, 3]);
        assert!(box_iou(&b, &b).is_err());
        assert!(nms(&b, &Tensor::zeros(&[3]), 0.5).is_err());
        assert!(roi_align(&Tensor::zeros(&[1, 2, 2]), &b, 2, 1.0).is_err());
        assert!(box_cxcywh_to_xyxy(&b).is_err());
    }
}
