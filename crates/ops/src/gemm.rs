//! GEMM-based operators: Linear, matmul, batched matmul, Conv2d, Conv1D.
//!
//! These are the operators the paper classifies as *GEMM operators*
//! (§2.1.1): each reduces to a perfectly nested multiply–accumulate loop
//! and is the target of GPU tensor-core acceleration. `conv2d` is lowered
//! through `im2col` exactly as the cuDNN lineage does, and the direct
//! (sliding-window) implementation is kept as a cross-check oracle.

use ngb_tensor::{Tensor, TensorError};

use crate::parallel::{self, SendPtr};
use crate::{OpCost, Result, F32_BYTES};

/// Register-block height: rows of C computed together by the micro-kernel.
const MR: usize = 4;
/// Register-block width: one packed B panel is `NR` output columns.
const NR: usize = 8;

/// Length of the packed-panel buffer for a `[k, n]` B operand.
fn packed_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * k * NR
}

/// A rank-2 operand as (full storage, base offset, row stride, col stride):
/// the packing and micro-kernel layer consumes views in this form directly,
/// so transposed/permuted/narrowed operands never materialize — the stride
/// walk is folded into the pack loop that copies anyway.
#[derive(Clone, Copy)]
struct Mat<'a> {
    data: &'a [f32],
    base: usize,
    rs: isize,
    cs: isize,
}

impl<'a> Mat<'a> {
    /// Views a rank-2 f32 tensor. Panics on non-f32 storage (the same
    /// contract the dense path had).
    fn of(t: &'a Tensor) -> Mat<'a> {
        debug_assert_eq!(t.rank(), 2);
        Mat {
            data: t.storage_f32().expect("f32 gemm operand"),
            base: t.storage_offset(),
            rs: t.strides()[0],
            cs: t.strides()[1],
        }
    }

    /// Storage offset of element `(i, j)`.
    #[inline]
    fn at(&self, i: usize, j: usize) -> usize {
        (self.base as isize + i as isize * self.rs + j as isize * self.cs) as usize
    }
}

/// Packs `B[k, n]` (any strides) into `[panel][k][NR]` panels so the
/// micro-kernel's inner loop reads B with unit stride. Tail-panel lanes
/// beyond `n` are written as zeros (the buffer is reusable across calls).
///
/// Row-contiguous operands (`cs == 1`, which includes dense row-major B)
/// take a memcpy lane path; anything else — a transposed Linear weight, a
/// permuted bmm operand — is gathered element-wise in a cache-friendly
/// order without ever materializing the view.
fn pack_b_mat(b: Mat<'_>, k: usize, n: usize, packed: &mut [f32]) {
    debug_assert_eq!(packed.len(), packed_len(k, n));
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let dst = &mut packed[p * k * NR..(p + 1) * k * NR];
        if b.cs == 1 && b.rs >= 0 {
            for kk in 0..k {
                let row = b.at(kk, j0);
                let lane = &mut dst[kk * NR..(kk + 1) * NR];
                lane[..w].copy_from_slice(&b.data[row..row + w]);
                lane[w..].fill(0.0);
            }
        } else {
            if w < NR {
                dst.fill(0.0);
            }
            // column-outer order: for B = w^T this walks each weight row
            // sequentially, matching the old dedicated transpose packer
            for jj in 0..w {
                for kk in 0..k {
                    dst[kk * NR + jj] = b.data[b.at(kk, j0 + jj)];
                }
            }
        }
    }
}

/// Whether the AVX2+FMA micro-kernel can run on this host. Detection is
/// a cached CPUID probe — a pure function of the hardware, never of
/// thread count or intra-op mode, so kernel selection cannot break the
/// bit-identity guarantee on a given machine.
fn fma_tile_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Full `MR x NR` tile against one packed panel: each of the `MR` rows
/// accumulates in one YMM register via fused multiply-add over ascending
/// `kk`. FMA rounds once per multiply-add (vs twice in the portable
/// loop), so absolute values differ across hosts — but every element is
/// computed by exactly one deterministic path, keeping results
/// bit-stable across runs, thread counts, and intra-op modes.
///
/// # Safety
///
/// Caller must check [`fma_tile_available`]; `arows` must hold `MR` full
/// k-contiguous rows spaced `stride` elements apart starting at
/// `arows[0]` (i.e. `arows.len() >= (MR - 1) * stride + k`), `panel` must
/// be `k * NR` long.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tile_fma(
    arows: &[f32],
    stride: usize,
    k: usize,
    panel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    use std::arch::x86_64::*;
    debug_assert!(arows.len() >= (MR - 1) * stride + k && panel.len() == k * NR);
    let mut c = [_mm256_setzero_ps(); MR];
    for kk in 0..k {
        let b = _mm256_loadu_ps(panel.as_ptr().add(kk * NR));
        for (ii, cr) in c.iter_mut().enumerate() {
            let a = _mm256_set1_ps(*arows.get_unchecked(ii * stride + kk));
            *cr = _mm256_fmadd_ps(a, b, *cr);
        }
    }
    for (dst, cr) in acc.iter_mut().zip(c) {
        _mm256_storeu_ps(dst.as_mut_ptr(), cr);
    }
}

/// Portable tile: per-element private accumulators summed over ascending
/// `kk`; handles partial row blocks (`mr < MR`). Rows start at
/// `av[abase]` and are k-contiguous, spaced `stride` apart.
fn tile_portable(
    av: &[f32],
    abase: usize,
    stride: usize,
    mr: usize,
    k: usize,
    panel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    for kk in 0..k {
        let bp = &panel[kk * NR..(kk + 1) * NR];
        for (ii, accr) in acc.iter_mut().enumerate().take(mr) {
            let aik = av[abase + ii * stride + kk];
            for (a, &b) in accr.iter_mut().zip(bp) {
                *a += aik * b;
            }
        }
    }
}

/// The row blocks `gemm_into` assigns to the micro-kernel for an
/// `m`-row output: block `ib` covers rows `ib*MR .. min(ib*MR+MR, m)`.
/// Exposed so `ngb-sanitize` can certify the blocks are a pairwise-
/// disjoint exact cover of `0..m` for every suite shape.
pub fn tile_row_blocks(m: usize) -> Vec<std::ops::Range<usize>> {
    (0..m.div_ceil(MR))
        .map(|ib| ib * MR..(ib * MR + MR).min(m))
        .collect()
}

/// The `(rows, row_len)` pair `gemm_into` hands to `par_rows` for an
/// `[m, n]` output: row blocks as work units, each `MR * n` elements
/// heavy. Chunk-level disjointness over these units composes with
/// [`tile_row_blocks`] to cover the whole output.
pub fn tile_chunk_grain(m: usize, n: usize) -> (usize, usize) {
    (m.div_ceil(MR), MR * n)
}

/// `C[m, n] = A[m, k] @ packed_B (+ bias)` with `MR x NR` register
/// blocking; row blocks fan out across intra-op chunks.
///
/// Every output element is one private accumulator summed over `kk` in
/// ascending order, so results are bit-identical regardless of how row
/// blocks are chunked across threads (kernel selection depends only on
/// host CPU features, never on the chunking).
///
/// The previous i-k-j loop skipped `aik == 0.0` terms. That branch only
/// pays off on sparse inputs; every workload in this suite is dense,
/// where it costs a compare+branch per multiply-add and blocks
/// vectorization of the inner loop, so the micro-kernel is branch-free.
fn gemm_into(
    a: Mat<'_>,
    m: usize,
    k: usize,
    n: usize,
    packed: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), m * n);
    if k == 0 {
        // empty reduction: zeros (+ bias), as the naive loop produced
        for row in out.chunks_exact_mut(n.max(1)) {
            match bias {
                Some(bs) => row.copy_from_slice(&bs[..row.len()]),
                None => row.fill(0.0),
            }
        }
        return;
    }
    let blocks = m.div_ceil(MR);
    let fma = fma_tile_available();
    // Rows already k-contiguous (dense, or a row-major view with padded
    // row stride) feed the tiles in place; otherwise each block's rows
    // are gathered into a small pack buffer — either way the tile (and
    // its FMA selection) sees identical values in identical order, so
    // results stay bit-identical across layouts.
    let a_direct = a.cs == 1 && a.rs >= 0;
    let ptr = SendPtr(out.as_mut_ptr());
    parallel::par_rows(blocks, MR * n, |block_range| {
        let mut abuf: Vec<f32> = Vec::new();
        let mut padbuf: Vec<f32> = Vec::new();
        for ib in block_range {
            let i0 = ib * MR;
            let mr = MR.min(m - i0);
            // SAFETY: row blocks are disjoint; the scoped join keeps
            // `out` borrowed until every chunk returns.
            let crows = unsafe { ptr.slice(i0 * n..(i0 + mr) * n) };
            let (mut av, mut abase, mut astride) = if a_direct {
                (a.data, a.at(i0, 0), a.rs as usize)
            } else {
                abuf.resize(mr * k, 0.0);
                for ii in 0..mr {
                    for (kk, dst) in abuf[ii * k..(ii + 1) * k].iter_mut().enumerate() {
                        *dst = a.data[a.at(i0 + ii, kk)];
                    }
                }
                (abuf.as_slice(), 0, k)
            };
            // Partial tail blocks (mr < MR) are zero-padded up to MR rows
            // so the FMA tile handles them too. Without this, a row's
            // rounding path would depend on whether it lands in a full or
            // partial block — i.e. on the total row count m — and the same
            // logical row would produce different bits at different batch
            // or sequence lengths. Padding keeps every row on the
            // single-rounding FMA path, making per-row results
            // M-independent; the padded rows' accumulators are discarded
            // by the `take(mr)` write-back below.
            let padded = fma && mr < MR;
            if padded {
                padbuf.clear();
                padbuf.resize(MR * k, 0.0);
                for ii in 0..mr {
                    padbuf[ii * k..(ii + 1) * k]
                        .copy_from_slice(&av[abase + ii * astride..abase + ii * astride + k]);
                }
                (av, abase, astride) = (padbuf.as_slice(), 0, k);
            }
            for (p, panel) in packed.chunks_exact(k * NR).enumerate() {
                let j0 = p * NR;
                let w = NR.min(n - j0);
                let mut acc = [[0.0f32; NR]; MR];
                match () {
                    // SAFETY: feature bits checked by fma_tile_available;
                    // a full (or zero-padded) block has MR complete
                    // k-contiguous A rows spaced astride apart starting
                    // at av[abase].
                    #[cfg(target_arch = "x86_64")]
                    () if fma && (mr == MR || padded) => unsafe {
                        tile_fma(&av[abase..], astride, k, panel, &mut acc)
                    },
                    _ => tile_portable(av, abase, astride, mr, k, panel, &mut acc),
                }
                for (ii, accr) in acc.iter().enumerate().take(mr) {
                    let dst = &mut crows[ii * n + j0..ii * n + j0 + w];
                    match bias {
                        Some(bs) => {
                            for (d, (&a, &b)) in
                                dst.iter_mut().zip(accr.iter().zip(&bs[j0..j0 + w]))
                            {
                                *d = a + b;
                            }
                        }
                        None => dst.copy_from_slice(&accr[..w]),
                    }
                }
            }
        }
    });
}

/// `C[M,N] = A[M,K] @ B[K,N]` on contiguous row-major buffers.
///
/// # Errors
///
/// Fails when either input is not rank-2 f32 or inner dims disagree.
///
/// # Examples
///
/// ```
/// use ngb_tensor::Tensor;
/// # fn main() -> Result<(), ngb_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(ngb_ops::gemm::matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::InvalidArgument(format!(
            "matmul requires rank-2 inputs, got ranks {} and {}",
            a.rank(),
            b.rank()
        )));
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, k],
            actual: vec![k2, n],
            op: "matmul",
        });
    }
    let mut packed = vec![0.0f32; packed_len(k, n)];
    pack_b_mat(Mat::of(b), k, n, &mut packed);
    let mut out = vec![0.0f32; m * n];
    gemm_into(Mat::of(a), m, k, n, &packed, None, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Analytic cost of `[m,k] @ [k,n]`.
pub fn matmul_cost(m: usize, k: usize, n: usize) -> OpCost {
    OpCost {
        flops: 2.0 * m as f64 * k as f64 * n as f64,
        bytes_read: ((m * k) + (k * n)) as f64 * F32_BYTES,
        bytes_written: (m * n) as f64 * F32_BYTES,
        kernels: 1,
        dynamic: false,
    }
}

/// Batched matmul: `[B,M,K] @ [B,K,N] -> [B,M,N]` (like `torch.bmm`).
///
/// # Errors
///
/// Fails on non-rank-3 inputs or mismatched batch/inner dims.
pub fn bmm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 3 || b.rank() != 3 || a.shape()[0] != b.shape()[0] {
        return Err(TensorError::ShapeMismatch {
            expected: a.shape().to_vec(),
            actual: b.shape().to_vec(),
            op: "bmm",
        });
    }
    let (batch, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let (k2, n) = (b.shape()[1], b.shape()[2]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, k],
            actual: vec![k2, n],
            op: "matmul",
        });
    }
    let av = a.storage_f32().expect("f32 gemm operand");
    let bv = b.storage_f32().expect("f32 gemm operand");
    // one packed-panel buffer reused across the batch, one flat output:
    // no per-batch select/unsqueeze/cat traffic. Batch slices are plain
    // stride walks, so attention's `bmm(q, k^T)` on permuted views packs
    // straight from the views without materializing either operand.
    let mut packed = vec![0.0f32; packed_len(k, n)];
    let mut out = vec![0.0f32; batch * m * n];
    for i in 0..batch {
        let bi = Mat {
            data: bv,
            base: (b.storage_offset() as isize + i as isize * b.strides()[0]) as usize,
            rs: b.strides()[1],
            cs: b.strides()[2],
        };
        let ai = Mat {
            data: av,
            base: (a.storage_offset() as isize + i as isize * a.strides()[0]) as usize,
            rs: a.strides()[1],
            cs: a.strides()[2],
        };
        pack_b_mat(bi, k, n, &mut packed);
        gemm_into(
            ai,
            m,
            k,
            n,
            &packed,
            None,
            &mut out[i * m * n..(i + 1) * m * n],
        );
    }
    Tensor::from_vec(out, &[batch, m, n])
}

/// Analytic cost of `[b,m,k] @ [b,k,n]`.
pub fn bmm_cost(b: usize, m: usize, k: usize, n: usize) -> OpCost {
    let per = matmul_cost(m, k, n);
    OpCost {
        flops: per.flops * b as f64,
        bytes_read: per.bytes_read * b as f64,
        bytes_written: per.bytes_written * b as f64,
        kernels: 1,
        dynamic: false,
    }
}

/// Fully-connected layer: `y = x @ w^T + bias` with `x: [..., in]`,
/// `w: [out, in]`, `bias: [out]` (like `torch.nn.Linear`).
///
/// # Errors
///
/// Fails when the trailing dim of `x` differs from `w`'s `in` dim or the
/// bias length differs from `out`.
pub fn linear(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    linear_impl(x, w, bias, false)
}

/// Shared Linear/Conv1D body. `w_in_out` selects the weight layout:
/// `false` packs `B = w^T` from `[out, in]`, `true` packs `w` directly
/// from GPT-2's `[in, out]` layout — either way without materializing a
/// transposed copy. Crate-visible so the int8 path in [`crate::quant`]
/// can ride the same packed micro-kernel with a quantized weight tensor.
pub(crate) fn linear_impl(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    w_in_out: bool,
) -> Result<Tensor> {
    if w.rank() != 2 {
        return Err(TensorError::InvalidArgument(
            "linear weight must be rank 2".into(),
        ));
    }
    let (out_f, in_f) = if w_in_out {
        (w.shape()[1], w.shape()[0])
    } else {
        (w.shape()[0], w.shape()[1])
    };
    let x_in = *x.shape().last().ok_or_else(|| {
        TensorError::InvalidArgument("linear input must have at least one dim".into())
    })?;
    if x_in != in_f {
        return Err(TensorError::ShapeMismatch {
            expected: vec![in_f],
            actual: vec![x_in],
            op: "linear",
        });
    }
    if let Some(b) = bias {
        if b.shape() != [out_f] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![out_f],
                actual: b.shape().to_vec(),
                op: "linear",
            });
        }
    }
    let rows = x.numel() / x_in;
    // Flatten leading dims into a rank-2 view: stride-compatible layouts
    // (including the contiguous case and attention's permuted prologues at
    // batch 1) stay zero-copy; only genuinely incompatible layouts fall
    // back to one counted materialization inside `reshape`.
    let x2 = x.reshape(&[rows, x_in])?;
    // B is `w` (GPT-2's [in, out]) or `w^T` ([out, in]); either is just a
    // stride assignment over the same storage — no transpose copy, and a
    // permuted weight view packs directly too.
    let wv = w.storage_f32().expect("f32 linear weight");
    let (brs, bcs) = if w_in_out {
        (w.strides()[0], w.strides()[1])
    } else {
        (w.strides()[1], w.strides()[0])
    };
    let wb = Mat {
        data: wv,
        base: w.storage_offset(),
        rs: brs,
        cs: bcs,
    };
    let mut packed = vec![0.0f32; packed_len(in_f, out_f)];
    pack_b_mat(wb, in_f, out_f, &mut packed);
    let bc;
    let bs = match bias {
        Some(b) => {
            bc = crate::param_f32(b);
            Some(&*bc)
        }
        None => None,
    };
    let mut out = vec![0.0f32; rows * out_f];
    gemm_into(Mat::of(&x2), rows, in_f, out_f, &packed, bs, &mut out);
    let mut out_shape = x.shape().to_vec();
    *out_shape.last_mut().expect("nonempty") = out_f;
    Tensor::from_vec(out, &out_shape)
}

/// Analytic cost of a linear layer over `rows` rows.
pub fn linear_cost(rows: usize, in_f: usize, out_f: usize, bias: bool) -> OpCost {
    let mut c = matmul_cost(rows, in_f, out_f);
    if bias {
        c.flops += (rows * out_f) as f64;
        c.bytes_read += out_f as f64 * F32_BYTES;
    }
    c
}

/// GPT-2's `Conv1D` (a Linear with transposed weight layout `w: [in, out]`),
/// kept as its own entry point because Hugging Face traces report it as a
/// distinct operator.
///
/// # Errors
///
/// Same conditions as [`linear`].
pub fn conv1d_gpt2(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    linear_impl(x, w, bias, true)
}

/// 2-D convolution on NCHW input via im2col + GEMM.
///
/// `x: [N, C, H, W]`, `w: [F, C/groups, KH, KW]`, optional `bias: [F]`.
/// Supports stride, zero padding, and grouped convolution (depthwise when
/// `groups == C`).
///
/// # Errors
///
/// Fails on rank or channel mismatches, zero stride, or when `groups` does
/// not divide both `C` and `F`.
pub fn conv2d(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    padding: usize,
    groups: usize,
) -> Result<Tensor> {
    if x.rank() != 4 || w.rank() != 4 {
        return Err(TensorError::InvalidArgument(
            "conv2d requires NCHW x and FCHW w".into(),
        ));
    }
    if stride == 0 || groups == 0 {
        return Err(TensorError::InvalidArgument(
            "conv2d stride/groups must be nonzero".into(),
        ));
    }
    let (n, c, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (f, cg, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    if c % groups != 0 || f % groups != 0 || cg != c / groups {
        return Err(TensorError::ShapeMismatch {
            expected: vec![f, c / groups.max(1), kh, kw],
            actual: w.shape().to_vec(),
            op: "conv2d",
        });
    }
    let oh = (h + 2 * padding)
        .checked_sub(kh)
        .map(|v| v / stride + 1)
        .ok_or_else(|| {
            TensorError::InvalidArgument("conv2d kernel larger than padded input".into())
        })?;
    let ow = (wd + 2 * padding)
        .checked_sub(kw)
        .map(|v| v / stride + 1)
        .ok_or_else(|| {
            TensorError::InvalidArgument("conv2d kernel larger than padded input".into())
        })?;

    // im2col gathers element-wise anyway, so it reads the input through
    // its strides directly — a sliced/permuted NCHW view never
    // materializes. (Weights keep a declared contiguous() fallback: they
    // are dense in every flow, making it a free clone.)
    let xs = x.storage_f32().expect("f32 conv2d input");
    let xbase = x.storage_offset() as isize;
    let (xs0, xs1, xs2, xs3) = (
        x.strides()[0],
        x.strides()[1],
        x.strides()[2],
        x.strides()[3],
    );
    let wc = w.contiguous();
    let wv = wc.as_slice_f32().expect("contiguous f32");
    let fg = f / groups;
    let cols_rows = cg * kh * kw;
    let cols_cols = n * oh * ow;
    let mut out = vec![0.0f32; n * f * oh * ow];

    // im2col, packed-panel, and GEMM-output buffers are allocated once
    // and reused across groups; the im2col pass writes every element
    // (padding positions included), so no re-zeroing is needed.
    let mut cols = vec![0.0f32; cols_rows * cols_cols];
    let mut packed = vec![0.0f32; packed_len(cols_rows, cols_cols)];
    let mut y = vec![0.0f32; fg * cols_cols];
    for g in 0..groups {
        // im2col for this group: [cg*kh*kw, N*oh*ow], chunk-parallel by
        // row (each row is one (channel, ky, kx) tap — disjoint writes)
        parallel::par_rows_out(&mut cols, cols_rows, cols_cols, |first_row, win| {
            for (r, rowbuf) in win.chunks_exact_mut(cols_cols.max(1)).enumerate() {
                let row = first_row + r;
                let kx = row % kw;
                let ky = (row / kw) % kh;
                let cc = row / (kh * kw);
                let ch = g * cg + cc;
                for b in 0..n {
                    for oy in 0..oh {
                        let dst = &mut rowbuf[(b * oh + oy) * ow..(b * oh + oy + 1) * ow];
                        let iy = oy * stride + ky;
                        if iy < padding || iy >= h + padding {
                            dst.fill(0.0);
                            continue;
                        }
                        let iy = iy - padding;
                        let row = xbase + b as isize * xs0 + ch as isize * xs1 + iy as isize * xs2;
                        if xs3 == 1 {
                            let src = &xs[row as usize..row as usize + wd];
                            for (ox, d) in dst.iter_mut().enumerate() {
                                let ix = ox * stride + kx;
                                *d = if ix < padding || ix >= wd + padding {
                                    0.0
                                } else {
                                    src[ix - padding]
                                };
                            }
                        } else {
                            for (ox, d) in dst.iter_mut().enumerate() {
                                let ix = ox * stride + kx;
                                *d = if ix < padding || ix >= wd + padding {
                                    0.0
                                } else {
                                    xs[(row + (ix - padding) as isize * xs3) as usize]
                                };
                            }
                        }
                    }
                }
            }
        });
        // weights for this group are a contiguous [fg, cg*kh*kw] slice
        let wg = Mat {
            data: wv,
            base: g * fg * cols_rows,
            rs: cols_rows as isize,
            cs: 1,
        };
        let colm = Mat {
            data: &cols,
            base: 0,
            rs: cols_cols as isize,
            cs: 1,
        };
        pack_b_mat(colm, cols_rows, cols_cols, &mut packed);
        gemm_into(wg, fg, cols_rows, cols_cols, &packed, None, &mut y); // [fg, N*oh*ow]
        for ff in 0..fg {
            for b in 0..n {
                let src = &y[ff * cols_cols + b * oh * ow..ff * cols_cols + (b + 1) * oh * ow];
                out[((b * f + g * fg + ff) * oh * ow)..][..oh * ow].copy_from_slice(src);
            }
        }
    }
    let mut y = Tensor::from_vec(out, &[n, f, oh, ow])?;
    if let Some(bt) = bias {
        if bt.shape() != [f] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![f],
                actual: bt.shape().to_vec(),
                op: "conv2d",
            });
        }
        let b4 = bt.reshape(&[1, f, 1, 1])?;
        y = y.zip_map(&b4, |a, c| a + c)?;
    }
    Ok(y)
}

/// Direct (sliding-window) conv2d used as a numerical oracle for the
/// im2col path in tests.
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_direct(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    padding: usize,
    groups: usize,
) -> Result<Tensor> {
    let (n, c, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (f, cg, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    if stride == 0 || groups == 0 || c % groups != 0 || f % groups != 0 || cg != c / groups {
        return Err(TensorError::InvalidArgument(
            "conv2d_direct invalid configuration".into(),
        ));
    }
    let oh = (h + 2 * padding - kh) / stride + 1;
    let ow = (wd + 2 * padding - kw) / stride + 1;
    let fg = f / groups;
    let mut out = Tensor::zeros(&[n, f, oh, ow]);
    for b in 0..n {
        for ff in 0..f {
            let g = ff / fg;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.map(|bt| bt.at(&[ff]).unwrap_or(0.0)).unwrap_or(0.0);
                    for cc in 0..cg {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = oy * stride + ky;
                                let ix = ox * stride + kx;
                                if iy < padding || ix < padding {
                                    continue;
                                }
                                let (iy, ix) = (iy - padding, ix - padding);
                                if iy >= h || ix >= wd {
                                    continue;
                                }
                                acc +=
                                    x.at(&[b, g * cg + cc, iy, ix])? * w.at(&[ff, cc, ky, kx])?;
                            }
                        }
                    }
                    out.set(&[b, ff, oy, ox], acc)?;
                }
            }
        }
    }
    Ok(out)
}

/// Analytic cost of a conv2d with output `[n, f, oh, ow]` and kernel
/// `[f, c/groups, kh, kw]`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_cost(
    n: usize,
    c: usize,
    f: usize,
    oh: usize,
    ow: usize,
    kh: usize,
    kw: usize,
    groups: usize,
) -> OpCost {
    let cg = c / groups.max(1);
    let macs = (n * f * oh * ow) as f64 * (cg * kh * kw) as f64;
    OpCost {
        flops: 2.0 * macs,
        // input is read ~kh*kw/stride^2 times logically; count logical
        // im2col traffic once plus weights once.
        bytes_read: ((n * f * oh * ow * cg * kh * kw) as f64 / f as f64
            + (f * cg * kh * kw) as f64)
            * F32_BYTES,
        bytes_written: (n * f * oh * ow) as f64 * F32_BYTES,
        kernels: 1,
        dynamic: false,
    }
}

/// Output spatial size of a conv/pool window.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    (input + 2 * padding - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_tensor::random::TensorRng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        let av = a.to_vec_f32().unwrap();
        let bv = b.to_vec_f32().unwrap();
        assert_eq!(a.shape(), b.shape());
        for (i, (x, y)) in av.iter().zip(&bv).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "elem {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.to_vec_f32().unwrap(), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &Tensor::zeros(&[2, 3])).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn matmul_handles_transposed_views() {
        let mut rng = TensorRng::seed(1);
        let a = rng.normal(&[4, 5]);
        let b = rng.normal(&[6, 5]);
        let c = matmul(&a, &b.transpose(0, 1).unwrap()).unwrap();
        assert_eq!(c.shape(), &[4, 6]);
        // oracle: element [1,2] = dot(a[1,:], b[2,:])
        let mut dot = 0.0;
        for k in 0..5 {
            dot += a.at(&[1, k]).unwrap() * b.at(&[2, k]).unwrap();
        }
        assert!((c.at(&[1, 2]).unwrap() - dot).abs() < 1e-4);
    }

    #[test]
    fn bmm_batches_independently() {
        let mut rng = TensorRng::seed(2);
        let a = rng.normal(&[3, 2, 4]);
        let b = rng.normal(&[3, 4, 5]);
        let c = bmm(&a, &b).unwrap();
        assert_eq!(c.shape(), &[3, 2, 5]);
        let c1 = matmul(&a.select(0, 1).unwrap(), &b.select(0, 1).unwrap()).unwrap();
        assert_close(&c.select(0, 1).unwrap(), &c1, 1e-5);
    }

    #[test]
    fn linear_matches_manual() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.5, 0.5, 0.5], &[3]).unwrap();
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.to_vec_f32().unwrap(), vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn linear_keeps_leading_dims() {
        let mut rng = TensorRng::seed(3);
        let x = rng.normal(&[2, 5, 8]);
        let w = rng.normal(&[16, 8]);
        let y = linear(&x, &w, None).unwrap();
        assert_eq!(y.shape(), &[2, 5, 16]);
    }

    #[test]
    fn conv1d_gpt2_equals_linear_with_transpose() {
        let mut rng = TensorRng::seed(4);
        let x = rng.normal(&[1, 3, 8]);
        let w = rng.normal(&[8, 12]); // [in, out] layout
        let y = conv1d_gpt2(&x, &w, None).unwrap();
        let y2 = linear(&x, &w.transpose(0, 1).unwrap().contiguous(), None).unwrap();
        assert_close(&y, &y2, 1e-6);
    }

    #[test]
    fn conv2d_im2col_matches_direct() {
        let mut rng = TensorRng::seed(5);
        for (stride, padding, groups) in [(1, 0, 1), (2, 1, 1), (1, 1, 2)] {
            let x = rng.normal(&[2, 4, 7, 7]);
            let w = rng.normal(&[6, 4 / groups, 3, 3]);
            let b = rng.normal(&[6]);
            let fast = conv2d(&x, &w, Some(&b), stride, padding, groups).unwrap();
            let slow = conv2d_direct(&x, &w, Some(&b), stride, padding, groups).unwrap();
            assert_close(&fast, &slow, 1e-4);
        }
    }

    #[test]
    fn depthwise_conv() {
        let mut rng = TensorRng::seed(6);
        let x = rng.normal(&[1, 4, 5, 5]);
        let w = rng.normal(&[4, 1, 3, 3]);
        let y = conv2d(&x, &w, None, 1, 1, 4).unwrap();
        assert_eq!(y.shape(), &[1, 4, 5, 5]);
        let slow = conv2d_direct(&x, &w, None, 1, 1, 4).unwrap();
        assert_close(&y, &slow, 1e-4);
    }

    #[test]
    fn conv2d_validates() {
        let x = Tensor::zeros(&[1, 3, 5, 5]);
        let w = Tensor::zeros(&[4, 3, 3, 3]);
        assert!(conv2d(&x, &w, None, 0, 0, 1).is_err());
        assert!(conv2d(&x, &Tensor::zeros(&[4, 2, 3, 3]), None, 1, 0, 1).is_err());
        assert!(conv2d(&x, &w, Some(&Tensor::zeros(&[5])), 1, 0, 1).is_err());
    }

    #[test]
    fn costs_scale_as_expected() {
        let c1 = matmul_cost(64, 64, 64);
        let c2 = matmul_cost(128, 64, 64);
        assert_eq!(c2.flops, 2.0 * c1.flops);
        assert_eq!(c1.flops, 2.0 * 64.0 * 64.0 * 64.0);
        let lc = linear_cost(10, 4, 8, true);
        assert!(lc.flops > matmul_cost(10, 4, 8).flops);
        let bc = bmm_cost(4, 2, 3, 5);
        assert_eq!(bc.flops, 4.0 * matmul_cost(2, 3, 5).flops);
        assert!(conv2d_cost(1, 3, 8, 16, 16, 3, 3, 1).flops > 0.0);
    }

    #[test]
    fn conv_out_dim_formula() {
        assert_eq!(conv_out_dim(224, 7, 2, 3), 112);
        assert_eq!(conv_out_dim(5, 3, 1, 1), 5);
    }
}
