//! Memory (layout) operators and their costs (Table 2 "Memory" group).
//!
//! The executable semantics live on [`ngb_tensor::Tensor`]; this module adds
//! the cost view that distinguishes *metadata-only* operators (`view`,
//! `permute`, `expand`, `squeeze`, `split` — zero traffic, zero kernels)
//! from *copying* operators (`contiguous`, `cat` — full traffic). That
//! distinction is exactly what changes between deployment flows: ORT's CPU
//! fallback turns cheap layout ops into device transfers (§4.2).

use ngb_tensor::Tensor;

use crate::{OpCost, Result};

/// Reshape that preserves PyTorch semantics: views when contiguous, copies
/// otherwise (re-exported here so callers see the whole memory-op family in
/// one place).
///
/// # Errors
///
/// Fails when element counts differ.
pub fn reshape(x: &Tensor, shape: &[usize]) -> Result<Tensor> {
    x.reshape(shape)
}

/// Zero-copy `view`; fails on non-contiguous inputs like PyTorch.
///
/// # Errors
///
/// Fails on non-contiguous input or element-count mismatch.
pub fn view(x: &Tensor, shape: &[usize]) -> Result<Tensor> {
    x.view(shape)
}

/// Zero-copy axis permutation.
///
/// # Errors
///
/// Fails when `perm` is not a permutation of the rank.
pub fn permute(x: &Tensor, perm: &[usize]) -> Result<Tensor> {
    x.permute(perm)
}

/// Zero-copy transpose of two dims.
///
/// # Errors
///
/// Fails when a dim is out of range.
pub fn transpose(x: &Tensor, d0: isize, d1: isize) -> Result<Tensor> {
    x.transpose(d0, d1)
}

/// Materializes a dense row-major copy.
pub fn contiguous(x: &Tensor) -> Tensor {
    x.contiguous()
}

/// Zero-copy broadcast expansion.
///
/// # Errors
///
/// Fails when a non-1 dim differs from the target.
pub fn expand(x: &Tensor, shape: &[usize]) -> Result<Tensor> {
    x.expand(shape)
}

/// Removes a size-1 dim.
///
/// # Errors
///
/// Fails when the dim is not size 1.
pub fn squeeze(x: &Tensor, dim: isize) -> Result<Tensor> {
    x.squeeze(dim)
}

/// Inserts a size-1 dim.
///
/// # Errors
///
/// Fails when `dim > rank`.
pub fn unsqueeze(x: &Tensor, dim: usize) -> Result<Tensor> {
    x.unsqueeze(dim)
}

/// Zero-copy split into chunks along `dim`.
///
/// # Errors
///
/// Fails when `size` is zero or `dim` out of range.
pub fn split(x: &Tensor, size: usize, dim: usize) -> Result<Vec<Tensor>> {
    x.split(size, dim)
}

/// Copying concatenation along `dim`.
///
/// # Errors
///
/// Fails when shapes disagree off-dim.
pub fn cat(xs: &[Tensor], dim: usize) -> Result<Tensor> {
    Tensor::cat(xs, dim)
}

/// Cyclically rolls the tensor by `shift` positions along `dim`
/// (`torch.roll`) — the memory operator behind Swin's shifted windows.
///
/// # Errors
///
/// Fails when `dim` is out of range or the input is not f32.
pub fn roll(x: &Tensor, shift: isize, dim: usize) -> Result<Tensor> {
    if dim >= x.rank() {
        return Err(ngb_tensor::TensorError::InvalidDim {
            dim,
            rank: x.rank(),
        });
    }
    let d = x.shape()[dim];
    if d == 0 {
        return Ok(x.clone());
    }
    let s = shift.rem_euclid(d as isize) as usize;
    if s == 0 {
        return Ok(x.contiguous());
    }
    // roll = cat(tail, head) along dim
    let head = x.narrow(dim, 0, d - s)?;
    let tail = x.narrow(dim, d - s, s)?;
    Tensor::cat(&[tail, head], dim)
}

/// Cost of [`roll`] on `shape`: a full copy (one kernel).
pub fn roll_cost(shape: &[usize]) -> OpCost {
    OpCost::copy(ngb_tensor::num_elements(shape))
}

/// Cost of any metadata-only layout op (`view`, `permute`, `transpose`,
/// `expand`, `squeeze`, `unsqueeze`, `split`): a header rewrite, no
/// traffic, no kernel. Eager frameworks still pay dispatch overhead, which
/// the platform model adds per *node*, not per kernel.
pub fn metadata_cost() -> OpCost {
    OpCost::metadata()
}

/// Cost of `contiguous` on `shape`: a full copy when the input is assumed
/// non-contiguous (the conservative, paper-relevant case).
pub fn contiguous_cost(shape: &[usize]) -> OpCost {
    OpCost::copy(ngb_tensor::num_elements(shape))
}

/// Cost of `reshape` given whether the input is contiguous.
pub fn reshape_cost(shape: &[usize], input_contiguous: bool) -> OpCost {
    if input_contiguous {
        OpCost::metadata()
    } else {
        contiguous_cost(shape)
    }
}

/// Cost of `cat` producing `out_elems` total elements.
pub fn cat_cost(out_elems: usize) -> OpCost {
    OpCost::copy(out_elems)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrappers_delegate() {
        let x = Tensor::arange(0.0, 6.0, 1.0);
        let r = reshape(&x, &[2, 3]).unwrap();
        assert_eq!(r.shape(), &[2, 3]);
        let p = permute(&r, &[1, 0]).unwrap();
        assert_eq!(p.shape(), &[3, 2]);
        let t = transpose(&r, 0, 1).unwrap();
        assert_eq!(t.shape(), p.shape());
        let c = contiguous(&p);
        assert!(c.is_contiguous());
        let e = expand(&Tensor::ones(&[1, 3]), &[4, 3]).unwrap();
        assert_eq!(e.shape(), &[4, 3]);
        let u = unsqueeze(&x, 0).unwrap();
        assert_eq!(squeeze(&u, 0).unwrap().shape(), x.shape());
        assert_eq!(split(&x, 2, 0).unwrap().len(), 3);
        assert_eq!(cat(&[x.clone(), x], 0).unwrap().shape(), &[12]);
        assert_eq!(view(&r, &[6]).unwrap().shape(), &[6]);
    }

    #[test]
    fn roll_is_cyclic() {
        let x = Tensor::arange(0.0, 6.0, 1.0).reshape(&[2, 3]).unwrap();
        let r = roll(&x, 1, 1).unwrap();
        assert_eq!(r.to_vec_f32().unwrap(), vec![2.0, 0.0, 1.0, 5.0, 3.0, 4.0]);
        let neg = roll(&x, -1, 1).unwrap();
        assert_eq!(
            neg.to_vec_f32().unwrap(),
            vec![1.0, 2.0, 0.0, 4.0, 5.0, 3.0]
        );
        // full-period roll is the identity
        let full = roll(&x, 3, 1).unwrap();
        assert_eq!(full.to_vec_f32().unwrap(), x.to_vec_f32().unwrap());
        // inverse shifts round-trip
        let rt = roll(&roll(&x, 2, 0).unwrap(), -2, 0).unwrap();
        assert_eq!(rt.to_vec_f32().unwrap(), x.to_vec_f32().unwrap());
        assert!(roll(&x, 1, 5).is_err());
        assert_eq!(roll_cost(&[2, 3]).kernels, 1);
    }

    #[test]
    fn metadata_ops_are_free_copies_are_not() {
        assert_eq!(metadata_cost().memory_bytes(), 0.0);
        assert_eq!(metadata_cost().kernels, 0);
        let c = contiguous_cost(&[2, 850, 256]);
        assert!(c.memory_bytes() > 0.0);
        assert_eq!(c.kernels, 1);
        assert_eq!(reshape_cost(&[4, 4], true).kernels, 0);
        assert_eq!(reshape_cost(&[4, 4], false).kernels, 1);
        assert_eq!(cat_cost(100).bytes_written, 400.0);
    }
}
