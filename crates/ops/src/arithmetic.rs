//! Element-wise and scalar arithmetic operators (Table 2 "Arithmetic").
//!
//! These are the `add`/`mul`/`div`/`neg` tensor ops that dominate language
//! models' non-GEMM time in eager mode (§4.1.4): individually trivial, but
//! memory-bound and frequent.

use ngb_tensor::Tensor;

use crate::parallel;
use crate::{OpCost, Result};

/// Broadcasting element-wise addition.
///
/// # Errors
///
/// Fails when shapes cannot broadcast or inputs are not f32.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    parallel::binary(a, b, |x, y| x + y)
}

/// Broadcasting element-wise subtraction.
///
/// # Errors
///
/// Fails when shapes cannot broadcast or inputs are not f32.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    parallel::binary(a, b, |x, y| x - y)
}

/// Broadcasting element-wise multiplication.
///
/// # Errors
///
/// Fails when shapes cannot broadcast or inputs are not f32.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    parallel::binary(a, b, |x, y| x * y)
}

/// Broadcasting element-wise ("true") division.
///
/// # Errors
///
/// Fails when shapes cannot broadcast or inputs are not f32.
pub fn div(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    parallel::binary(a, b, |x, y| x / y)
}

/// Element-wise negation.
///
/// # Errors
///
/// Fails when input is not f32.
pub fn neg(a: &Tensor) -> Result<Tensor> {
    parallel::unary(a, |x| -x)
}

/// Adds a scalar to every element.
///
/// # Errors
///
/// Fails when input is not f32.
pub fn add_scalar(a: &Tensor, s: f32) -> Result<Tensor> {
    parallel::unary(a, |x| x + s)
}

/// Multiplies every element by a scalar (attention's `1/sqrt(d)` scale).
///
/// # Errors
///
/// Fails when input is not f32.
pub fn mul_scalar(a: &Tensor, s: f32) -> Result<Tensor> {
    parallel::unary(a, |x| x * s)
}

/// Divides every element by a scalar.
///
/// # Errors
///
/// Fails when input is not f32 or `s` is zero.
pub fn div_scalar(a: &Tensor, s: f32) -> Result<Tensor> {
    if s == 0.0 {
        return Err(ngb_tensor::TensorError::InvalidArgument(
            "div_scalar by zero".into(),
        ));
    }
    parallel::unary(a, |x| x / s)
}

/// Element-wise power with scalar exponent.
///
/// # Errors
///
/// Fails when input is not f32.
pub fn pow_scalar(a: &Tensor, e: f32) -> Result<Tensor> {
    parallel::unary(a, |x| x.powf(e))
}

/// Element-wise square root.
///
/// # Errors
///
/// Fails when input is not f32.
pub fn sqrt(a: &Tensor) -> Result<Tensor> {
    parallel::unary(a, f32::sqrt)
}

/// Element-wise reciprocal square root.
///
/// # Errors
///
/// Fails when input is not f32.
pub fn rsqrt(a: &Tensor) -> Result<Tensor> {
    parallel::unary(a, |x| 1.0 / x.sqrt())
}

/// Clamps every element into `[lo, hi]`.
///
/// # Errors
///
/// Fails when input is not f32.
pub fn clamp(a: &Tensor, lo: f32, hi: f32) -> Result<Tensor> {
    parallel::unary(a, move |x| x.clamp(lo, hi))
}

/// Mean over dimension `dim` (keepdim optional).
///
/// # Errors
///
/// Fails when `dim` is out of range or input is not f32.
pub fn mean_dim(a: &Tensor, dim: usize, keepdim: bool) -> Result<Tensor> {
    let n = a
        .shape()
        .get(dim)
        .copied()
        .ok_or(ngb_tensor::TensorError::InvalidDim {
            dim,
            rank: a.rank(),
        })? as f32;
    a.reduce_dim(dim, keepdim, 0.0, |acc, v| acc + v)?
        .map(|v| v / n)
}

/// Sum over dimension `dim`.
///
/// # Errors
///
/// Fails when `dim` is out of range or input is not f32.
pub fn sum_dim(a: &Tensor, dim: usize, keepdim: bool) -> Result<Tensor> {
    a.reduce_dim(dim, keepdim, 0.0, |acc, v| acc + v)
}

/// Replaces elements where `mask` is `true` with `value`
/// (`torch.masked_fill`, used for causal attention masks).
///
/// # Errors
///
/// Fails when shapes differ or dtypes are wrong.
pub fn masked_fill(a: &Tensor, mask: &Tensor, value: f32) -> Result<Tensor> {
    if a.shape() != mask.shape() {
        return Err(ngb_tensor::TensorError::ShapeMismatch {
            expected: a.shape().to_vec(),
            actual: mask.shape().to_vec(),
            op: "masked_fill",
        });
    }
    let m = mask.to_vec_bool()?;
    let v = a.to_vec_f32()?;
    let out: Vec<f32> = v
        .into_iter()
        .zip(m)
        .map(|(x, keep)| if keep { value } else { x })
        .collect();
    Tensor::from_vec(out, a.shape())
}

/// Ternary select: `cond ? a : b`, element-wise with equal shapes
/// (`torch.where`).
///
/// # Errors
///
/// Fails when shapes differ or dtypes are wrong.
pub fn where_cond(cond: &Tensor, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape() != b.shape() || a.shape() != cond.shape() {
        return Err(ngb_tensor::TensorError::ShapeMismatch {
            expected: a.shape().to_vec(),
            actual: cond.shape().to_vec(),
            op: "where",
        });
    }
    let c = cond.to_vec_bool()?;
    let av = a.to_vec_f32()?;
    let bv = b.to_vec_f32()?;
    let out: Vec<f32> = c
        .into_iter()
        .zip(av.into_iter().zip(bv))
        .map(|(k, (x, y))| if k { x } else { y })
        .collect();
    Tensor::from_vec(out, a.shape())
}

/// Cost of a unary element-wise arithmetic kernel on `shape`.
pub fn unary_cost(shape: &[usize]) -> OpCost {
    OpCost::elementwise(ngb_tensor::num_elements(shape), 1.0)
}

/// Cost of a binary element-wise arithmetic kernel producing `out_shape`.
pub fn binary_cost(out_shape: &[usize]) -> OpCost {
    OpCost::elementwise_binary(ngb_tensor::num_elements(out_shape), 1.0)
}

/// Cost of a reduction (`mean`/`sum`) from `shape` along `dim`.
pub fn reduce_cost(shape: &[usize], dim: usize) -> OpCost {
    let n = ngb_tensor::num_elements(shape);
    let m = n / shape.get(dim).copied().unwrap_or(1).max(1);
    OpCost::reduction(n, m, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap()
    }

    #[test]
    fn binary_ops() {
        let a = v(&[1.0, 2.0, 3.0]);
        let b = v(&[4.0, 5.0, 6.0]);
        assert_eq!(
            add(&a, &b).unwrap().to_vec_f32().unwrap(),
            vec![5.0, 7.0, 9.0]
        );
        assert_eq!(
            sub(&b, &a).unwrap().to_vec_f32().unwrap(),
            vec![3.0, 3.0, 3.0]
        );
        assert_eq!(
            mul(&a, &b).unwrap().to_vec_f32().unwrap(),
            vec![4.0, 10.0, 18.0]
        );
        assert_eq!(
            div(&b, &a).unwrap().to_vec_f32().unwrap(),
            vec![4.0, 2.5, 2.0]
        );
    }

    #[test]
    fn broadcast_add_bias() {
        let x = Tensor::zeros(&[2, 3]);
        let bias = v(&[1.0, 2.0, 3.0]);
        let y = add(&x, &bias).unwrap();
        assert_eq!(y.to_vec_f32().unwrap(), vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = v(&[4.0, 9.0]);
        assert_eq!(neg(&a).unwrap().to_vec_f32().unwrap(), vec![-4.0, -9.0]);
        assert_eq!(
            add_scalar(&a, 1.0).unwrap().to_vec_f32().unwrap(),
            vec![5.0, 10.0]
        );
        assert_eq!(
            mul_scalar(&a, 0.5).unwrap().to_vec_f32().unwrap(),
            vec![2.0, 4.5]
        );
        assert_eq!(
            div_scalar(&a, 2.0).unwrap().to_vec_f32().unwrap(),
            vec![2.0, 4.5]
        );
        assert!(div_scalar(&a, 0.0).is_err());
        assert_eq!(sqrt(&a).unwrap().to_vec_f32().unwrap(), vec![2.0, 3.0]);
        assert_eq!(
            rsqrt(&a).unwrap().to_vec_f32().unwrap(),
            vec![0.5, 1.0 / 3.0]
        );
        assert_eq!(
            pow_scalar(&a, 2.0).unwrap().to_vec_f32().unwrap(),
            vec![16.0, 81.0]
        );
        assert_eq!(
            clamp(&a, 5.0, 8.0).unwrap().to_vec_f32().unwrap(),
            vec![5.0, 8.0]
        );
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(
            mean_dim(&a, 1, false).unwrap().to_vec_f32().unwrap(),
            vec![1.5, 3.5]
        );
        assert_eq!(sum_dim(&a, 0, true).unwrap().shape(), &[1, 2]);
        assert!(mean_dim(&a, 2, false).is_err());
    }

    #[test]
    fn masked_fill_and_where() {
        let a = v(&[1.0, 2.0, 3.0]);
        let m = Tensor::from_bool(vec![true, false, true], &[3]).unwrap();
        let f = masked_fill(&a, &m, -1e9).unwrap();
        assert_eq!(f.to_vec_f32().unwrap(), vec![-1e9, 2.0, -1e9]);
        let b = v(&[10.0, 20.0, 30.0]);
        let w = where_cond(&m, &a, &b).unwrap();
        assert_eq!(w.to_vec_f32().unwrap(), vec![1.0, 20.0, 3.0]);
        let bad = Tensor::from_bool(vec![true], &[1]).unwrap();
        assert!(masked_fill(&a, &bad, 0.0).is_err());
    }

    #[test]
    fn cost_helpers() {
        assert_eq!(unary_cost(&[10]).flops, 10.0);
        assert_eq!(binary_cost(&[10]).bytes_read, 80.0);
        let rc = reduce_cost(&[4, 8], 1);
        assert_eq!(rc.bytes_written, 4.0 * 4.0);
    }
}
