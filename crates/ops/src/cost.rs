//! The analytic operator cost descriptor.

/// Work and traffic of one operator invocation, independent of any device.
///
/// `ngb-platform` turns an `OpCost` into latency via a roofline model:
/// compute-limited time from `flops`, memory-limited time from
/// `bytes_read + bytes_written`, plus `kernels` launch overheads. The
/// paper's key eager-mode effect — Hugging Face's hand-written GELU and
/// Llama's RMSNorm decomposing into many small kernels — is captured by
/// `kernels > 1`.
///
/// # Examples
///
/// ```
/// use ngb_ops::OpCost;
/// let a = OpCost::elementwise(1024, 1.0);
/// assert_eq!(a.flops, 1024.0);
/// assert_eq!(a.memory_bytes(), 1024.0 * 8.0); // read + write f32
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCost {
    /// Floating-point (or comparable scalar) operations performed.
    pub flops: f64,
    /// Bytes read from memory (logical traffic; caches are the device
    /// model's concern).
    pub bytes_read: f64,
    /// Bytes written to memory.
    pub bytes_written: f64,
    /// Number of device kernels this op launches in unfused (PyTorch eager)
    /// execution. Zero for pure metadata ops (view/permute/…).
    pub kernels: u32,
    /// Whether the op's output shape/behavior depends on input *data*
    /// (e.g. NMS), which defeats static scheduling — Table 2's
    /// "Dynamicity" column.
    pub dynamic: bool,
}

impl OpCost {
    /// A cost of zero work: pure metadata operators (view, permute,
    /// squeeze, …) that only rewrite the tensor header.
    pub fn metadata() -> OpCost {
        OpCost::default()
    }

    /// Cost of an element-wise kernel over `n` f32 elements performing
    /// `flops_per_elem` operations each (one read + one write).
    pub fn elementwise(n: usize, flops_per_elem: f64) -> OpCost {
        OpCost {
            flops: n as f64 * flops_per_elem,
            bytes_read: n as f64 * 4.0,
            bytes_written: n as f64 * 4.0,
            kernels: 1,
            dynamic: false,
        }
    }

    /// Cost of a binary element-wise kernel over `n` output elements
    /// (two reads + one write).
    pub fn elementwise_binary(n: usize, flops_per_elem: f64) -> OpCost {
        OpCost {
            flops: n as f64 * flops_per_elem,
            bytes_read: 2.0 * n as f64 * 4.0,
            bytes_written: n as f64 * 4.0,
            kernels: 1,
            dynamic: false,
        }
    }

    /// Cost of a pure copy of `n` f32 elements (cat/contiguous/transfers).
    pub fn copy(n: usize) -> OpCost {
        OpCost {
            flops: 0.0,
            bytes_read: n as f64 * 4.0,
            bytes_written: n as f64 * 4.0,
            kernels: 1,
            dynamic: false,
        }
    }

    /// Cost of a reduction over `n` inputs producing `m` outputs with
    /// `flops_per_elem` work per input element.
    pub fn reduction(n: usize, m: usize, flops_per_elem: f64) -> OpCost {
        OpCost {
            flops: n as f64 * flops_per_elem,
            bytes_read: n as f64 * 4.0,
            bytes_written: m as f64 * 4.0,
            kernels: 1,
            dynamic: false,
        }
    }

    /// Total memory traffic in bytes.
    pub fn memory_bytes(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// FLOPs per byte of traffic; `f64::INFINITY` for zero-traffic compute,
    /// `0` for pure movement.
    pub fn arithmetic_intensity(&self) -> f64 {
        let mem = self.memory_bytes();
        if mem == 0.0 {
            if self.flops == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.flops / mem
        }
    }

    /// Marks the cost as data-dependent (builder style).
    pub fn dynamic(mut self) -> OpCost {
        self.dynamic = true;
        self
    }

    /// Overrides the unfused kernel-launch count (builder style).
    pub fn with_kernels(mut self, kernels: u32) -> OpCost {
        self.kernels = kernels;
        self
    }

    /// Cost of running `stages` as one fused kernel: the sum of the parts
    /// minus the traffic of the interior activations that never reach
    /// memory. `interior_elems` holds the element count of each fused-away
    /// boundary; every one saves a 4-byte write (producer side) and a
    /// 4-byte read (consumer side). FLOPs are unchanged — fusion saves
    /// traffic and launches, not arithmetic — and the result is a single
    /// kernel.
    pub fn fused(stages: &[OpCost], interior_elems: &[usize]) -> OpCost {
        let total: OpCost = stages.iter().copied().sum();
        let saved: f64 = interior_elems.iter().map(|&n| n as f64 * 4.0).sum();
        OpCost {
            flops: total.flops,
            bytes_read: (total.bytes_read - saved).max(0.0),
            bytes_written: (total.bytes_written - saved).max(0.0),
            kernels: 1,
            dynamic: total.dynamic,
        }
    }

    /// Sums two costs — used when an operator decomposes into sub-kernels.
    pub fn and_then(self, other: OpCost) -> OpCost {
        OpCost {
            flops: self.flops + other.flops,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            kernels: self.kernels + other.kernels,
            dynamic: self.dynamic || other.dynamic,
        }
    }
}

impl std::ops::Add for OpCost {
    type Output = OpCost;

    fn add(self, rhs: OpCost) -> OpCost {
        self.and_then(rhs)
    }
}

impl std::iter::Sum for OpCost {
    fn sum<I: Iterator<Item = OpCost>>(iter: I) -> OpCost {
        iter.fold(OpCost::default(), OpCost::and_then)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_is_free() {
        let c = OpCost::metadata();
        assert_eq!(c.flops, 0.0);
        assert_eq!(c.memory_bytes(), 0.0);
        assert_eq!(c.kernels, 0);
        assert_eq!(c.arithmetic_intensity(), 0.0);
    }

    #[test]
    fn elementwise_traffic() {
        let c = OpCost::elementwise(10, 2.0);
        assert_eq!(c.flops, 20.0);
        assert_eq!(c.bytes_read, 40.0);
        assert_eq!(c.bytes_written, 40.0);
        let b = OpCost::elementwise_binary(10, 1.0);
        assert_eq!(b.bytes_read, 80.0);
    }

    #[test]
    fn sum_accumulates_kernels() {
        let total: OpCost = (0..3).map(|_| OpCost::copy(4)).sum();
        assert_eq!(total.kernels, 3);
        assert_eq!(total.memory_bytes(), 3.0 * 32.0);
    }

    #[test]
    fn dynamic_and_kernels_builders() {
        let c = OpCost::copy(1).dynamic().with_kernels(5);
        assert!(c.dynamic);
        assert_eq!(c.kernels, 5);
    }

    #[test]
    fn fused_subtracts_interior_traffic() {
        // linear-ish producer feeding an element-wise epilogue of 10 elems
        let gemm = OpCost {
            flops: 1000.0,
            bytes_read: 400.0,
            bytes_written: 40.0,
            kernels: 1,
            dynamic: false,
        };
        let act = OpCost::elementwise(10, 1.0);
        let f = OpCost::fused(&[gemm, act], &[10]);
        assert_eq!(f.flops, 1010.0);
        assert_eq!(f.bytes_read, 400.0); // epilogue's read came from registers
        assert_eq!(f.bytes_written, 40.0); // producer's write never hit memory
        assert_eq!(f.kernels, 1);
        // still covers the true operands + output (no underflow)
        assert!(f.memory_bytes() >= 400.0 + 40.0);
    }

    #[test]
    fn fused_clamps_and_propagates_dynamic() {
        let tiny = OpCost::copy(1).dynamic();
        let f = OpCost::fused(&[tiny], &[1000]);
        assert_eq!(f.bytes_read, 0.0);
        assert_eq!(f.bytes_written, 0.0);
        assert!(f.dynamic);
    }

    #[test]
    fn intensity_edge_cases() {
        assert_eq!(
            OpCost {
                flops: 5.0,
                ..OpCost::default()
            }
            .arithmetic_intensity(),
            f64::INFINITY
        );
        let c = OpCost::reduction(100, 1, 1.0);
        assert!(c.arithmetic_intensity() > 0.0 && c.arithmetic_intensity() < 1.0);
    }
}
