//! # ngb-ops
//!
//! Executable CPU kernels and analytic cost descriptors for every operator
//! that appears in the NonGEMM Bench model suite.
//!
//! The crate is organized by the paper's operator taxonomy (§2.1, Table 2):
//!
//! * [`gemm`] — the GEMM-based operators (Linear, Conv2d, BMM, …),
//! * [`activation`] — ReLU, GELU (fused and Hugging Face's decomposed
//!   `NewGELU`), SiLU, …,
//! * [`normalization`] — LayerNorm, BatchNorm2d, FrozenBatchNorm2d, RMSNorm
//!   (fused and the decomposed Llama variant), GroupNorm,
//! * [`memory`] — layout manipulation (reshape/view/permute/…/cat/split),
//! * [`arithmetic`] — element-wise and reduction arithmetic,
//! * [`logit`] — softmax-family logit computation,
//! * [`pooling`] — max/avg/adaptive pooling,
//! * [`roi`] — RoI selection (NMS, RoIAlign, box utilities),
//! * [`interpolate`] — nearest/bilinear resampling,
//! * [`embedding`] — table lookup and gather,
//! * [`reduction`] — argmax/top-k/sum/max,
//! * [`parallel`] — deterministic intra-op chunk partitioning and the
//!   pluggable scoped runner the execution engines install.
//!
//! Every kernel has two faces:
//!
//! 1. an **execute** function that really computes on [`ngb_tensor::Tensor`]s
//!    (used by tests, the microbench flow, and host-measured profiling), and
//! 2. a **cost** function returning an [`OpCost`] (FLOPs, bytes moved,
//!    unfused kernel-launch count, dynamicity) that the analytic device
//!    models in `ngb-platform` convert into latency/energy.
//!
//! # Examples
//!
//! ```
//! use ngb_tensor::Tensor;
//! use ngb_ops::activation;
//!
//! # fn main() -> Result<(), ngb_tensor::TensorError> {
//! let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3])?;
//! let y = activation::relu(&x)?;
//! assert_eq!(y.to_vec_f32()?, vec![0.0, 0.0, 2.0]);
//! let cost = activation::relu_cost(&[3]);
//! assert_eq!(cost.kernels, 1);
//! # Ok(())
//! # }
//! ```

pub mod activation;
pub mod arithmetic;
mod cost;
pub mod embedding;
pub mod fused;
pub mod gemm;
pub mod interpolate;
pub mod logit;
pub mod memory;
pub mod normalization;
pub mod parallel;
pub mod pooling;
pub mod quant;
pub mod reduction;
pub mod roi;

pub use cost::OpCost;
pub use quant::Quant;

/// Result alias shared by all kernels.
pub type Result<T> = std::result::Result<T, ngb_tensor::TensorError>;

pub(crate) const F32_BYTES: f64 = 4.0;

/// Borrows a parameter tensor (gamma/beta/bias/running stats) as a dense
/// f32 slice, copying only when the view is non-contiguous. Parameters are
/// contiguous in every model flow, so the hot path is a plain borrow — no
/// per-invocation `contiguous()` clone.
///
/// # Panics
///
/// Panics on non-f32 storage, matching the dense kernels' contract.
pub(crate) fn param_f32(t: &ngb_tensor::Tensor) -> std::borrow::Cow<'_, [f32]> {
    match t.as_slice_f32() {
        Some(s) => std::borrow::Cow::Borrowed(s),
        None => std::borrow::Cow::Owned(t.to_vec_f32().expect("f32 parameter")),
    }
}
