//! Int8 weight-only quantization for the GEMM-family layers.
//!
//! The deployment flow quantizes Linear / GPT-2 Conv1D weights to int8
//! with **per-output-channel absmax scales**: for output channel `j`,
//! `scale_j = absmax(w[j, :]) / 127` and `q_ij = round(w_ij / scale_j)`
//! clamped to `[-127, 127]`. Activations stay f32. The quantized values
//! are stored as f32 (every integer in `[-127, 127]` is exactly
//! representable), so the product rides the existing 4×8 packed
//! micro-kernel unchanged — `y_q = x @ Q^T` — followed by a dequant
//! epilogue `y[r, j] = y_q[r, j] * scale_j + bias_j`.
//!
//! # Error bound
//!
//! Per-element quantization error is at most `scale_j / 2`, so each
//! output element obeys `|y_int8 - y_f32| <= (scale_j / 2) * Σ_i |x_i|`
//! up to f32 rounding — tight enough that tiny-model logits match to a
//! few percent, loose enough that greedy argmax can legitimately differ.
//! Tests and the decode CI gate compare against this analytic bound
//! rather than an arbitrary epsilon.

use ngb_tensor::{Tensor, TensorError};

use crate::gemm::linear_impl;
use crate::Result;

/// Weight-quantization mode for a deployment flow. `None` is the f32
/// reference path; `Int8` quantizes Linear/Conv1D weights per output
/// channel at execution time. Selected via `--quantize int8` or
/// `NGB_QUANT=int8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Quant {
    /// Full-precision f32 weights (the default).
    #[default]
    None,
    /// Int8 weight-only quantization with per-output-channel absmax
    /// scales and an f32 dequant epilogue.
    Int8,
}

impl Quant {
    /// Parses a CLI/env spelling. Accepts `none`/`off`/`fp32`/`f32` and
    /// `int8`/`i8`; anything else is `None` (the Option, i.e. invalid).
    pub fn parse(s: &str) -> Option<Quant> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" | "off" | "fp32" | "f32" | "" => Some(Quant::None),
            "int8" | "i8" => Some(Quant::Int8),
            _ => None,
        }
    }

    /// Stable label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Quant::None => "none",
            Quant::Int8 => "int8",
        }
    }
}

/// Quantizes a rank-2 weight tensor to the int8 grid, returning the
/// quantized values (as f32, same shape and logical layout as `w`) and
/// the per-output-channel scales. `w_in_out == false` means `w` is
/// `[out, in]` (Linear); `true` means `[in, out]` (GPT-2 Conv1D) — the
/// output channel is the row in the first case and the column in the
/// second.
///
/// An all-zero channel gets `scale = 0.0` and all-zero codes, which the
/// epilogue maps back to exact zeros.
///
/// # Errors
///
/// Fails when `w` is not rank-2 f32.
pub fn quantize_weights_absmax(w: &Tensor, w_in_out: bool) -> Result<(Tensor, Vec<f32>)> {
    if w.rank() != 2 {
        return Err(TensorError::InvalidArgument(
            "quantize_weights_absmax expects a rank-2 weight".into(),
        ));
    }
    let (rows, cols) = (w.shape()[0], w.shape()[1]);
    let dense = w.to_vec_f32()?;
    let out_f = if w_in_out { cols } else { rows };
    let mut scales = vec![0.0f32; out_f];
    for (idx, &v) in dense.iter().enumerate() {
        let j = if w_in_out { idx % cols } else { idx / cols };
        scales[j] = scales[j].max(v.abs());
    }
    for s in &mut scales {
        *s /= 127.0;
    }
    let mut q = vec![0.0f32; dense.len()];
    for (idx, (&v, dst)) in dense.iter().zip(&mut q).enumerate() {
        let j = if w_in_out { idx % cols } else { idx / cols };
        let s = scales[j];
        *dst = if s == 0.0 {
            0.0
        } else {
            (v / s).round().clamp(-127.0, 127.0)
        };
    }
    Ok((Tensor::from_vec(q, &[rows, cols])?, scales))
}

/// Shared int8 Linear/Conv1D body: quantize, GEMM on the integer grid,
/// dequant epilogue.
fn linear_q8(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, w_in_out: bool) -> Result<Tensor> {
    let (wq, scales) = quantize_weights_absmax(w, w_in_out)?;
    let out_f = scales.len();
    if let Some(b) = bias {
        if b.shape() != [out_f] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![out_f],
                actual: b.shape().to_vec(),
                op: "linear_int8",
            });
        }
    }
    let yq = linear_impl(x, &wq, None, w_in_out)?;
    let mut out = yq.to_vec_f32()?;
    let bc = bias.map(crate::param_f32);
    for row in out.chunks_exact_mut(out_f) {
        match &bc {
            Some(bs) => {
                for ((d, &s), &b) in row.iter_mut().zip(&scales).zip(bs.iter()) {
                    *d = *d * s + b;
                }
            }
            None => {
                for (d, &s) in row.iter_mut().zip(&scales) {
                    *d *= s;
                }
            }
        }
    }
    Tensor::from_vec(out, yq.shape())
}

/// Int8 weight-quantized [`crate::gemm::linear`]: `y = x @ dequant(Q)^T + bias`
/// with `w: [out, in]`.
///
/// # Errors
///
/// Same conditions as [`crate::gemm::linear`].
pub fn linear_int8(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    linear_q8(x, w, bias, false)
}

/// Int8 weight-quantized [`crate::gemm::conv1d_gpt2`] (GPT-2's `[in, out]`
/// weight layout).
///
/// # Errors
///
/// Same conditions as [`crate::gemm::conv1d_gpt2`].
pub fn conv1d_gpt2_int8(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    linear_q8(x, w, bias, true)
}

/// Analytic per-element error bound for [`linear_int8`] given the inputs
/// it actually saw: `max_j scale_j / 2 * max_rows Σ_i |x_i|`. Used by the
/// tests and the decode gate to assert the int8 path is within tolerance
/// without hardcoding an epsilon.
///
/// # Errors
///
/// Fails when the operands are not f32 or `w` is not rank-2.
pub fn int8_error_bound(x: &Tensor, w: &Tensor, w_in_out: bool) -> Result<f32> {
    let (_, scales) = quantize_weights_absmax(w, w_in_out)?;
    let max_scale = scales.iter().fold(0.0f32, |a, &s| a.max(s));
    let in_f = *x.shape().last().unwrap_or(&0);
    let xs = x.to_vec_f32()?;
    let max_l1 = xs
        .chunks_exact(in_f.max(1))
        .map(|row| row.iter().map(|v| v.abs()).sum::<f32>())
        .fold(0.0f32, f32::max);
    Ok(0.5 * max_scale * max_l1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{conv1d_gpt2, linear};
    use ngb_tensor::random::TensorRng;

    #[test]
    fn parse_roundtrips_spellings() {
        assert_eq!(Quant::parse("int8"), Some(Quant::Int8));
        assert_eq!(Quant::parse("I8"), Some(Quant::Int8));
        assert_eq!(Quant::parse("none"), Some(Quant::None));
        assert_eq!(Quant::parse("fp32"), Some(Quant::None));
        assert_eq!(Quant::parse("int4"), None);
        assert_eq!(Quant::default().label(), "none");
    }

    #[test]
    fn grid_aligned_weights_quantize_exactly() {
        // weights already on the int8 grid with absmax 127 => scale 1.0,
        // so the quantized GEMM is bit-identical to the f32 one
        let w = Tensor::from_vec(vec![127.0, -3.0, 5.0, 0.0, 64.0, -127.0], &[2, 3]).unwrap();
        let x = TensorRng::seed(7).normal(&[4, 3]);
        let b = TensorRng::seed(8).normal(&[2]);
        let exact = linear(&x, &w, Some(&b)).unwrap().to_vec_f32().unwrap();
        let q = linear_int8(&x, &w, Some(&b)).unwrap().to_vec_f32().unwrap();
        assert!(exact
            .iter()
            .zip(&q)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn linear_int8_within_analytic_bound() {
        let x = TensorRng::seed(21).normal(&[5, 16]);
        let w = TensorRng::seed(22).normal(&[9, 16]);
        let b = TensorRng::seed(23).normal(&[9]);
        let exact = linear(&x, &w, Some(&b)).unwrap().to_vec_f32().unwrap();
        let q = linear_int8(&x, &w, Some(&b)).unwrap().to_vec_f32().unwrap();
        let bound = int8_error_bound(&x, &w, false).unwrap() + 1e-5;
        for (a, b) in exact.iter().zip(&q) {
            assert!((a - b).abs() <= bound, "|{a} - {b}| > {bound}");
        }
    }

    #[test]
    fn conv1d_int8_within_analytic_bound() {
        let x = TensorRng::seed(31).normal(&[2, 4, 8]);
        let w = TensorRng::seed(32).normal(&[8, 6]); // [in, out]
        let b = TensorRng::seed(33).normal(&[6]);
        let exact = conv1d_gpt2(&x, &w, Some(&b)).unwrap().to_vec_f32().unwrap();
        let q = conv1d_gpt2_int8(&x, &w, Some(&b))
            .unwrap()
            .to_vec_f32()
            .unwrap();
        let bound = int8_error_bound(&x, &w, true).unwrap() + 1e-5;
        for (a, b) in exact.iter().zip(&q) {
            assert!((a - b).abs() <= bound, "|{a} - {b}| > {bound}");
        }
    }

    #[test]
    fn zero_channel_dequantizes_to_exact_zero() {
        let w = Tensor::from_vec(vec![0.0, 0.0, 1.0, -2.0], &[2, 2]).unwrap();
        let x = TensorRng::seed(41).normal(&[3, 2]);
        let q = linear_int8(&x, &w, None).unwrap().to_vec_f32().unwrap();
        for r in 0..3 {
            assert_eq!(q[r * 2].to_bits(), 0.0f32.to_bits());
        }
    }
}
