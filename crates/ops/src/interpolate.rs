//! Interpolation operators (Table 2 "Interpolation"): nearest and bilinear
//! up/down-sampling of NCHW maps, as used by SegFormer's decode head and
//! MaskRCNN's FPN.

use ngb_tensor::{Tensor, TensorError};

use crate::{OpCost, Result, F32_BYTES};

/// Nearest-neighbor resize of `x: [N, C, H, W]` to `(out_h, out_w)`.
///
/// # Errors
///
/// Fails on non-NCHW input or zero output size.
pub fn interpolate_nearest(x: &Tensor, out_h: usize, out_w: usize) -> Result<Tensor> {
    let (n, c, h, w) = nchw(x, "interpolate_nearest")?;
    if out_h == 0 || out_w == 0 {
        return Err(TensorError::InvalidArgument(
            "interpolate output must be nonzero".into(),
        ));
    }
    let xs = x.storage_f32().ok_or(TensorError::DTypeMismatch {
        expected: "f32",
        actual: x.dtype().name(),
        op: "interpolate_nearest",
    })?;
    let (sh, sw) = (x.strides()[2], x.strides()[3]);
    let mut out = vec![0.0f32; n * c * out_h * out_w];
    for b in 0..n {
        for ch in 0..c {
            let base = chan_base(x, b, ch);
            for oy in 0..out_h {
                let iy = (oy * h) / out_h;
                for ox in 0..out_w {
                    let ix = (ox * w) / out_w;
                    out[((b * c + ch) * out_h + oy) * out_w + ox] =
                        xs[(base + iy as isize * sh + ix as isize * sw) as usize];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, out_h, out_w])
}

/// Bilinear resize of `x: [N, C, H, W]` to `(out_h, out_w)` with
/// `align_corners=false` (PyTorch default) coordinate mapping.
///
/// # Errors
///
/// Fails on non-NCHW input or zero output size.
pub fn interpolate_bilinear(x: &Tensor, out_h: usize, out_w: usize) -> Result<Tensor> {
    let (n, c, h, w) = nchw(x, "interpolate_bilinear")?;
    if out_h == 0 || out_w == 0 {
        return Err(TensorError::InvalidArgument(
            "interpolate output must be nonzero".into(),
        ));
    }
    let xs = x.storage_f32().ok_or(TensorError::DTypeMismatch {
        expected: "f32",
        actual: x.dtype().name(),
        op: "interpolate_bilinear",
    })?;
    let (sh, sw) = (x.strides()[2], x.strides()[3]);
    let scale_y = h as f32 / out_h as f32;
    let scale_x = w as f32 / out_w as f32;
    let mut out = vec![0.0f32; n * c * out_h * out_w];
    for b in 0..n {
        for ch in 0..c {
            let base = chan_base(x, b, ch);
            let at = |yy: usize, xx: usize| -> f32 {
                xs[(base + yy as isize * sh + xx as isize * sw) as usize]
            };
            for oy in 0..out_h {
                let sy = ((oy as f32 + 0.5) * scale_y - 0.5).clamp(0.0, (h - 1) as f32);
                let y0 = sy.floor() as usize;
                let y1 = (y0 + 1).min(h - 1);
                let dy = sy - y0 as f32;
                for ox in 0..out_w {
                    let sx = ((ox as f32 + 0.5) * scale_x - 0.5).clamp(0.0, (w - 1) as f32);
                    let x0 = sx.floor() as usize;
                    let x1 = (x0 + 1).min(w - 1);
                    let dx = sx - x0 as f32;
                    let v = at(y0, x0) * (1.0 - dy) * (1.0 - dx)
                        + at(y0, x1) * (1.0 - dy) * dx
                        + at(y1, x0) * dy * (1.0 - dx)
                        + at(y1, x1) * dy * dx;
                    out[((b * c + ch) * out_h + oy) * out_w + ox] = v;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, out_h, out_w])
}

/// Storage offset of `x[b, ch, 0, 0]` — resamplers walk the input's own
/// strides, so permuted or sliced feature maps read without a copy.
fn chan_base(x: &Tensor, b: usize, ch: usize) -> isize {
    x.storage_offset() as isize + b as isize * x.strides()[0] + ch as isize * x.strides()[1]
}

fn nchw(x: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if x.rank() != 4 {
        return Err(TensorError::InvalidArgument(format!(
            "{op} requires NCHW input"
        )));
    }
    Ok((x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]))
}

/// Cost of an interpolation producing `out_elems` elements with
/// `flops_per_out` work each (1 for nearest, 11 for bilinear).
pub fn interpolate_cost(in_shape: &[usize], out_elems: usize, bilinear: bool) -> OpCost {
    OpCost {
        flops: out_elems as f64 * if bilinear { 11.0 } else { 1.0 },
        bytes_read: ngb_tensor::num_elements(in_shape) as f64 * F32_BYTES,
        bytes_written: out_elems as f64 * F32_BYTES,
        kernels: 1,
        dynamic: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_tensor::random::TensorRng;

    #[test]
    fn nearest_doubling_replicates() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = interpolate_nearest(&x, 4, 4).unwrap();
        assert_eq!(y.at(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert_eq!(y.at(&[0, 0, 0, 1]).unwrap(), 1.0);
        assert_eq!(y.at(&[0, 0, 3, 3]).unwrap(), 4.0);
    }

    #[test]
    fn bilinear_preserves_constant() {
        let x = Tensor::full(&[1, 2, 3, 3], 2.5);
        let y = interpolate_bilinear(&x, 7, 5).unwrap();
        assert!(y
            .to_vec_f32()
            .unwrap()
            .iter()
            .all(|&v| (v - 2.5).abs() < 1e-6));
    }

    #[test]
    fn bilinear_identity_when_same_size() {
        let x = TensorRng::seed(1).normal(&[1, 1, 4, 4]);
        let y = interpolate_bilinear(&x, 4, 4).unwrap();
        for (a, b) in x.to_vec_f32().unwrap().iter().zip(y.to_vec_f32().unwrap()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn bilinear_monotone_on_ramp() {
        let x = Tensor::arange(0.0, 4.0, 1.0)
            .reshape(&[1, 1, 1, 4])
            .unwrap();
        let y = interpolate_bilinear(&x, 1, 8)
            .unwrap()
            .to_vec_f32()
            .unwrap();
        for w in y.windows(2) {
            assert!(w[1] >= w[0], "{y:?} not monotone");
        }
    }

    #[test]
    fn downsample_shapes() {
        let x = TensorRng::seed(2).normal(&[2, 3, 8, 8]);
        assert_eq!(
            interpolate_nearest(&x, 2, 2).unwrap().shape(),
            &[2, 3, 2, 2]
        );
        assert_eq!(
            interpolate_bilinear(&x, 3, 5).unwrap().shape(),
            &[2, 3, 3, 5]
        );
    }

    #[test]
    fn validates() {
        assert!(interpolate_nearest(&Tensor::zeros(&[2, 2]), 2, 2).is_err());
        assert!(interpolate_bilinear(&Tensor::zeros(&[1, 1, 2, 2]), 0, 2).is_err());
    }

    #[test]
    fn cost_bilinear_exceeds_nearest() {
        let a = interpolate_cost(&[2, 256, 128, 128], 2 * 256 * 512 * 512, true);
        let b = interpolate_cost(&[2, 256, 128, 128], 2 * 256 * 512 * 512, false);
        assert!(a.flops > b.flops);
        assert_eq!(a.bytes_read, b.bytes_read);
    }
}
