//! Property-based tests for kernel invariants.

use ngb_ops::{activation, arithmetic, gemm, logit, normalization, parallel, roi};
use ngb_tensor::Tensor;
use proptest::prelude::*;

fn tensor_1d(max: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-50.0f32..50.0, 1..=max).prop_map(|v| {
        let n = v.len();
        Tensor::from_vec(v, &[n]).unwrap()
    })
}

proptest! {
    /// softmax output is a probability distribution for any input row.
    #[test]
    fn softmax_is_distribution(v in prop::collection::vec(-30.0f32..30.0, 1..40)) {
        let n = v.len();
        let x = Tensor::from_vec(v, &[1, n]).unwrap();
        let p = logit::softmax(&x, 1).unwrap().to_vec_f32().unwrap();
        prop_assert!(p.iter().all(|&q| (0.0..=1.0 + 1e-6).contains(&q)));
        let s: f32 = p.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-4, "sum {s}");
    }

    /// softmax is invariant to adding a constant to all logits.
    #[test]
    fn softmax_shift_invariant(v in prop::collection::vec(-10.0f32..10.0, 2..20), c in -5.0f32..5.0) {
        let n = v.len();
        let x = Tensor::from_vec(v.clone(), &[1, n]).unwrap();
        let xs = Tensor::from_vec(v.iter().map(|a| a + c).collect(), &[1, n]).unwrap();
        let p = logit::softmax(&x, 1).unwrap().to_vec_f32().unwrap();
        let ps = logit::softmax(&xs, 1).unwrap().to_vec_f32().unwrap();
        for (a, b) in p.iter().zip(&ps) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// relu is idempotent and monotone.
    #[test]
    fn relu_idempotent(x in tensor_1d(64)) {
        let once = activation::relu(&x).unwrap();
        let twice = activation::relu(&once).unwrap();
        prop_assert_eq!(once.to_vec_f32().unwrap(), twice.to_vec_f32().unwrap());
    }

    /// layer_norm output has ~zero mean and ~unit variance per row.
    #[test]
    fn layer_norm_standardizes(v in prop::collection::vec(-20.0f32..20.0, 8..64)) {
        let n = v.len();
        // skip degenerate constant rows (variance ~0 amplifies eps effects)
        let mean0 = v.iter().sum::<f32>() / n as f32;
        let var0 = v.iter().map(|a| (a - mean0).powi(2)).sum::<f32>() / n as f32;
        prop_assume!(var0 > 1e-3);
        let x = Tensor::from_vec(v, &[1, n]).unwrap();
        let y = normalization::layer_norm(&x, &Tensor::ones(&[n]), &Tensor::zeros(&[n]), 1e-5)
            .unwrap()
            .to_vec_f32()
            .unwrap();
        let mean = y.iter().sum::<f32>() / n as f32;
        let var = y.iter().map(|a| (a - mean).powi(2)).sum::<f32>() / n as f32;
        prop_assert!(mean.abs() < 1e-3, "mean {mean}");
        prop_assert!((var - 1.0).abs() < 1e-2, "var {var}");
    }

    /// matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributive(seed in 0u64..1000) {
        let mut rng = ngb_tensor::random::TensorRng::seed(seed);
        let a = rng.uniform(&[3, 4], -2.0, 2.0);
        let b = rng.uniform(&[4, 5], -2.0, 2.0);
        let c = rng.uniform(&[4, 5], -2.0, 2.0);
        let lhs = gemm::matmul(&a, &arithmetic::add(&b, &c).unwrap()).unwrap();
        let rhs = arithmetic::add(
            &gemm::matmul(&a, &b).unwrap(),
            &gemm::matmul(&a, &c).unwrap(),
        ).unwrap();
        for (x, y) in lhs.to_vec_f32().unwrap().iter().zip(rhs.to_vec_f32().unwrap()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// linear with identity weight is the identity map.
    #[test]
    fn linear_identity(v in prop::collection::vec(-10.0f32..10.0, 4..=4)) {
        let x = Tensor::from_vec(v.clone(), &[1, 4]).unwrap();
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 { eye.set(&[i, i], 1.0).unwrap(); }
        let y = gemm::linear(&x, &eye, None).unwrap();
        prop_assert_eq!(y.to_vec_f32().unwrap(), v);
    }

    /// NMS keep-list is sorted by descending score and is a subset of inputs.
    #[test]
    fn nms_output_valid(seed in 0u64..500, thresh in 0.1f32..0.9) {
        let mut rng = ngb_tensor::random::TensorRng::seed(seed);
        let n = 20;
        let xy = rng.uniform(&[n, 2], 0.0, 30.0).to_vec_f32().unwrap();
        let wh = rng.uniform(&[n, 2], 1.0, 10.0).to_vec_f32().unwrap();
        let mut bx = Vec::with_capacity(n * 4);
        for i in 0..n {
            bx.extend_from_slice(&[xy[i*2], xy[i*2+1], xy[i*2] + wh[i*2], xy[i*2+1] + wh[i*2+1]]);
        }
        let boxes = Tensor::from_vec(bx, &[n, 4]).unwrap();
        let scores = rng.uniform(&[n], 0.0, 1.0);
        let keep = roi::nms(&boxes, &scores, thresh).unwrap().to_vec_i64().unwrap();
        prop_assert!(!keep.is_empty() && keep.len() <= n);
        let sv = scores.to_vec_f32().unwrap();
        for w in keep.windows(2) {
            prop_assert!(sv[w[0] as usize] >= sv[w[1] as usize]);
        }
        // highest-score box always kept
        let best = sv.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        prop_assert!(keep.contains(&(best as i64)));
    }

    /// add/mul are commutative element-wise.
    #[test]
    fn arithmetic_commutative(a in tensor_1d(32), seed in 0u64..100) {
        let b = ngb_tensor::random::TensorRng::seed(seed).uniform(a.shape(), -5.0, 5.0);
        prop_assert_eq!(
            arithmetic::add(&a, &b).unwrap().to_vec_f32().unwrap(),
            arithmetic::add(&b, &a).unwrap().to_vec_f32().unwrap()
        );
        prop_assert_eq!(
            arithmetic::mul(&a, &b).unwrap().to_vec_f32().unwrap(),
            arithmetic::mul(&b, &a).unwrap().to_vec_f32().unwrap()
        );
    }
}

proptest! {
    /// Bilinear interpolation never leaves the input's value range
    /// (convex combination of corners).
    #[test]
    fn bilinear_stays_in_range(
        h in 1usize..6, w in 1usize..6, oh in 1usize..10, ow in 1usize..10, seed in 0u64..200,
    ) {
        let x = ngb_tensor::random::TensorRng::seed(seed).uniform(&[1, 1, h, w], -5.0, 5.0);
        let v = x.to_vec_f32().unwrap();
        let (lo, hi) = v.iter().fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h2), &a| {
            (l.min(a), h2.max(a))
        });
        let y = ngb_ops::interpolate::interpolate_bilinear(&x, oh, ow).unwrap();
        for q in y.to_vec_f32().unwrap() {
            prop_assert!(q >= lo - 1e-4 && q <= hi + 1e-4, "{q} outside [{lo}, {hi}]");
        }
    }

    /// Max pooling dominates average pooling element-wise.
    #[test]
    fn max_pool_dominates_avg_pool(seed in 0u64..200, k in 1usize..4) {
        let x = ngb_tensor::random::TensorRng::seed(seed).uniform(&[1, 2, 6, 6], -3.0, 3.0);
        let mx = ngb_ops::pooling::max_pool2d(&x, k, k, 0).unwrap();
        let av = ngb_ops::pooling::avg_pool2d(&x, k, k, 0).unwrap();
        for (m, a) in mx.to_vec_f32().unwrap().iter().zip(av.to_vec_f32().unwrap()) {
            prop_assert!(m >= &(a - 1e-5), "max {m} < avg {a}");
        }
    }

    /// IoU is symmetric, bounded in [0, 1], and 1 on the diagonal for
    /// non-degenerate boxes.
    #[test]
    fn iou_matrix_properties(seed in 0u64..200, n in 1usize..8) {
        let mut rng = ngb_tensor::random::TensorRng::seed(seed);
        let xy = rng.uniform(&[n, 2], 0.0, 20.0).to_vec_f32().unwrap();
        let wh = rng.uniform(&[n, 2], 0.5, 10.0).to_vec_f32().unwrap();
        let mut v = Vec::with_capacity(n * 4);
        for i in 0..n {
            v.extend_from_slice(&[xy[i*2], xy[i*2+1], xy[i*2] + wh[i*2], xy[i*2+1] + wh[i*2+1]]);
        }
        let b = Tensor::from_vec(v, &[n, 4]).unwrap();
        let iou = ngb_ops::roi::box_iou(&b, &b).unwrap();
        for i in 0..n {
            prop_assert!((iou.at(&[i, i]).unwrap() - 1.0).abs() < 1e-5);
            for j in 0..n {
                let a = iou.at(&[i, j]).unwrap();
                prop_assert!((0.0..=1.0 + 1e-6).contains(&a));
                prop_assert!((a - iou.at(&[j, i]).unwrap()).abs() < 1e-6);
            }
        }
    }

    /// Raising the NMS IoU threshold can only keep more boxes.
    #[test]
    fn nms_monotone_in_threshold(seed in 0u64..100) {
        let mut rng = ngb_tensor::random::TensorRng::seed(seed);
        let n = 24;
        let xy = rng.uniform(&[n, 2], 0.0, 20.0).to_vec_f32().unwrap();
        let wh = rng.uniform(&[n, 2], 1.0, 10.0).to_vec_f32().unwrap();
        let mut v = Vec::with_capacity(n * 4);
        for i in 0..n {
            v.extend_from_slice(&[xy[i*2], xy[i*2+1], xy[i*2] + wh[i*2], xy[i*2+1] + wh[i*2+1]]);
        }
        let boxes = Tensor::from_vec(v, &[n, 4]).unwrap();
        let scores = rng.uniform(&[n], 0.0, 1.0);
        let mut prev = 0usize;
        for thresh in [0.1f32, 0.3, 0.5, 0.7, 0.9] {
            let kept = roi::nms(&boxes, &scores, thresh).unwrap().numel();
            prop_assert!(kept >= prev, "threshold {thresh}: {kept} < {prev}");
            prev = kept;
        }
    }

    /// Embedding lookup is exactly a row gather: looked-up vectors match
    /// the table rows.
    #[test]
    fn embedding_is_row_gather(seed in 0u64..100, vocab in 2usize..20, d in 1usize..8) {
        let mut rng = ngb_tensor::random::TensorRng::seed(seed);
        let table = rng.normal(&[vocab, d]);
        let ids = rng.uniform_i64(&[5], 0, vocab as i64);
        let e = ngb_ops::embedding::embedding(&table, &ids).unwrap();
        for (row, &id) in ids.to_vec_i64().unwrap().iter().enumerate() {
            for col in 0..d {
                prop_assert_eq!(
                    e.at(&[row, col]).unwrap(),
                    table.at(&[id as usize, col]).unwrap()
                );
            }
        }
    }

    /// Conv2d is linear in its input: conv(a*x) == a * conv(x).
    #[test]
    fn conv_is_linear_in_input(seed in 0u64..100, scale in 0.25f32..4.0) {
        let mut rng = ngb_tensor::random::TensorRng::seed(seed);
        let x = rng.normal(&[1, 2, 5, 5]);
        let w = rng.normal(&[3, 2, 3, 3]);
        let base = gemm::conv2d(&x, &w, None, 1, 1, 1).unwrap();
        let scaled_in = arithmetic::mul_scalar(&x, scale).unwrap();
        let scaled_out = gemm::conv2d(&scaled_in, &w, None, 1, 1, 1).unwrap();
        for (a, b) in base.to_vec_f32().unwrap().iter().zip(scaled_out.to_vec_f32().unwrap()) {
            prop_assert!((a * scale - b).abs() < 1e-3 * (1.0 + a.abs() * scale.abs()));
        }
    }

    /// Roll composes additively: roll(roll(x, a), b) == roll(x, a + b).
    #[test]
    fn roll_composes(seed in 0u64..100, a in -5isize..5, b2 in -5isize..5) {
        let x = ngb_tensor::random::TensorRng::seed(seed).normal(&[3, 7]);
        let twice = ngb_ops::memory::roll(&ngb_ops::memory::roll(&x, a, 1).unwrap(), b2, 1).unwrap();
        let once = ngb_ops::memory::roll(&x, a + b2, 1).unwrap();
        prop_assert_eq!(twice.to_vec_f32().unwrap(), once.to_vec_f32().unwrap());
    }
}

/// Asserts `ranges` is a sorted, pairwise-disjoint, exact cover of
/// `0..total` with no empty chunks (the intra-op safety contract: chunk
/// jobs write disjoint slices that together fill the output).
fn assert_exact_cover(
    ranges: &[std::ops::Range<usize>],
    total: usize,
) -> Result<(), proptest::TestCaseError> {
    if total == 0 {
        // a zero-length decomposition is a single empty range
        prop_assert_eq!(ranges.len(), 1);
        prop_assert_eq!(ranges[0].clone(), 0..0);
        return Ok(());
    }
    let mut next = 0usize;
    for r in ranges {
        prop_assert_eq!(r.start, next, "gap or overlap at {}", r.start);
        prop_assert!(r.end > r.start, "empty chunk {r:?}");
        next = r.end;
    }
    prop_assert_eq!(next, total, "cover stops short of {total}");
    Ok(())
}

proptest! {
    /// Element chunking is a pairwise-disjoint exact cover of the flat
    /// output for arbitrary sizes and grain thresholds.
    #[test]
    fn element_partition_is_exact_cover(total in 0usize..300_000, min in 1usize..100_000) {
        assert_exact_cover(&parallel::element_partition(total, min), total)?;
    }

    /// Row chunking is a pairwise-disjoint exact cover of the row space
    /// for arbitrary row counts and widths.
    #[test]
    fn row_partition_is_exact_cover(
        rows in 0usize..5_000, row_len in 0usize..3_000, min in 1usize..100_000,
    ) {
        assert_exact_cover(&parallel::row_partition(rows, row_len, min), rows)?;
    }

    /// Shape purity: the decomposition is a function of (shape, grain)
    /// only — installing intra-op runners with different thread counts
    /// must not change it (thread count only changes who runs a chunk).
    #[test]
    fn partition_is_independent_of_thread_count(
        total in 1usize..200_000, row_len in 1usize..2_000, min in 1usize..100_000,
    ) {
        let elems_base = parallel::element_partition(total, min);
        let rows_base = parallel::row_partition(total.min(4_000), row_len, min);
        for threads in [1usize, 2, 8] {
            let runner = std::sync::Arc::new(CountingRunner { threads });
            let (elems, rows) = parallel::with_runner(runner, || {
                (
                    parallel::element_partition(total, min),
                    parallel::row_partition(total.min(4_000), row_len, min),
                )
            });
            prop_assert_eq!(&elems, &elems_base, "{threads} threads changed element chunks");
            prop_assert_eq!(&rows, &rows_base, "{threads} threads changed row chunks");
        }
    }

    /// GEMM register-tile row blocks exactly cover the output rows, and
    /// the chunk-level grain composes with the blocks to cover every row.
    #[test]
    fn gemm_tile_blocks_are_exact_cover(m in 1usize..2_000, n in 1usize..300) {
        let blocks = gemm::tile_row_blocks(m);
        assert_exact_cover(&blocks, m)?;

        let (units, unit_len) = gemm::tile_chunk_grain(m, n);
        prop_assert_eq!(units, blocks.len());
        prop_assert!(unit_len >= n);
        // chunk-of-blocks → rows: expanding each chunk's blocks must
        // re-cover 0..m exactly
        let mut rows_covered = 0usize;
        for chunk in parallel::row_partition(units, unit_len, parallel::min_intraop_elems()) {
            for ib in chunk {
                prop_assert_eq!(blocks[ib].start, rows_covered);
                rows_covered = blocks[ib].end;
            }
        }
        prop_assert_eq!(rows_covered, m);
    }
}

/// Builds a non-contiguous view of a fresh random NCHW tensor plus its
/// materialized copy: `(view, dense)`. The pair is bit-identical
/// element-for-element, so every stride-capable kernel must produce
/// bit-identical outputs on both.
fn strided_pair(seed: u64, shape: [usize; 4], kind: u8) -> (Tensor, Tensor) {
    let mut rng = ngb_tensor::random::TensorRng::seed(seed);
    let view = match kind % 3 {
        // inner transpose: classic attention / sw layout
        0 => {
            let base = rng.normal(&[shape[0], shape[1], shape[3], shape[2]]);
            base.transpose(-1, -2).unwrap()
        }
        // NHWC-permuted storage read as NCHW
        1 => {
            let base = rng.normal(&[shape[0], shape[2], shape[3], shape[1]]);
            base.permute(&[0, 3, 1, 2]).unwrap()
        }
        // interior window of a larger buffer (offset + wide row stride)
        _ => {
            let base = rng.normal(&[shape[0], shape[1], shape[2] + 2, shape[3] + 3]);
            base.narrow(2, 1, shape[2])
                .unwrap()
                .narrow(3, 2, shape[3])
                .unwrap()
        }
    };
    assert!(!view.is_contiguous() || view.numel() <= 1);
    let dense = view.contiguous();
    (view, dense)
}

proptest! {
    /// Stride-capable kernels are bit-identical on a strided view and on
    /// its materialized copy — the contract the contiguous-elision pass
    /// and the strided GEMM/norm/softmax/pool paths rest on.
    #[test]
    fn strided_kernels_match_materialized(seed in 0u64..300, kind in 0u8..3) {
        let (v, d) = strided_pair(seed, [2, 3, 4, 5], kind);

        // GEMM family: bmm over the trailing 2-D panels of a merged view
        let vm = v.reshape(&[6, 4, 5]).unwrap();
        let dm = d.reshape(&[6, 4, 5]).unwrap();
        let rhs = ngb_tensor::random::TensorRng::seed(seed ^ 0xb33f).normal(&[6, 5, 4]);
        prop_assert_eq!(
            gemm::bmm(&vm, &rhs).unwrap().to_vec_f32().unwrap(),
            gemm::bmm(&dm, &rhs).unwrap().to_vec_f32().unwrap()
        );

        // softmax over the last dim (fused strided-lane path)
        prop_assert_eq!(
            logit::softmax(&v, 3).unwrap().to_vec_f32().unwrap(),
            logit::softmax(&d, 3).unwrap().to_vec_f32().unwrap()
        );

        // row-parallel norms
        let (gamma, beta) = (Tensor::ones(&[5]), Tensor::zeros(&[5]));
        prop_assert_eq!(
            normalization::layer_norm(&v, &gamma, &beta, 1e-5).unwrap().to_vec_f32().unwrap(),
            normalization::layer_norm(&d, &gamma, &beta, 1e-5).unwrap().to_vec_f32().unwrap()
        );
        prop_assert_eq!(
            normalization::rms_norm(&v, &gamma, 1e-5).unwrap().to_vec_f32().unwrap(),
            normalization::rms_norm(&d, &gamma, 1e-5).unwrap().to_vec_f32().unwrap()
        );
        let (g3, b3) = (Tensor::ones(&[3]), Tensor::zeros(&[3]));
        prop_assert_eq!(
            normalization::batch_norm2d(&v, &g3, &b3, &Tensor::zeros(&[3]), &Tensor::ones(&[3]), 1e-5)
                .unwrap().to_vec_f32().unwrap(),
            normalization::batch_norm2d(&d, &g3, &b3, &Tensor::zeros(&[3]), &Tensor::ones(&[3]), 1e-5)
                .unwrap().to_vec_f32().unwrap()
        );
        prop_assert_eq!(
            normalization::group_norm(&v, 3, &g3, &b3, 1e-5).unwrap().to_vec_f32().unwrap(),
            normalization::group_norm(&d, 3, &g3, &b3, 1e-5).unwrap().to_vec_f32().unwrap()
        );

        // pooling walks NCHW strides directly
        prop_assert_eq!(
            ngb_ops::pooling::max_pool2d(&v, 2, 2, 1).unwrap().to_vec_f32().unwrap(),
            ngb_ops::pooling::max_pool2d(&d, 2, 2, 1).unwrap().to_vec_f32().unwrap()
        );
        prop_assert_eq!(
            ngb_ops::pooling::adaptive_avg_pool2d(&v, 2, 3).unwrap().to_vec_f32().unwrap(),
            ngb_ops::pooling::adaptive_avg_pool2d(&d, 2, 3).unwrap().to_vec_f32().unwrap()
        );

        // element-wise unary (map fallback) and binary (zip_map fallback)
        prop_assert_eq!(
            activation::gelu(&v).unwrap().to_vec_f32().unwrap(),
            activation::gelu(&d).unwrap().to_vec_f32().unwrap()
        );
        prop_assert_eq!(
            arithmetic::add(&v, &d).unwrap().to_vec_f32().unwrap(),
            arithmetic::add(&d, &d).unwrap().to_vec_f32().unwrap()
        );
    }

    /// Linear on a transposed weight view matches the materialized
    /// weight — the permuted-weight fast path never changes results.
    #[test]
    fn linear_on_permuted_weight_matches(seed in 0u64..300) {
        let mut rng = ngb_tensor::random::TensorRng::seed(seed);
        let x = rng.normal(&[4, 8]);
        let wt = rng.normal(&[8, 6]); // stored [in, out], viewed as [out, in]
        let w_view = wt.transpose(0, 1).unwrap();
        let w_dense = w_view.contiguous();
        let bias = rng.normal(&[6]);
        prop_assert_eq!(
            gemm::linear(&x, &w_view, Some(&bias)).unwrap().to_vec_f32().unwrap(),
            gemm::linear(&x, &w_dense, Some(&bias)).unwrap().to_vec_f32().unwrap()
        );
        // and a strided activation against both weights
        let xs = rng.normal(&[8, 4]).transpose(0, 1).unwrap();
        prop_assert_eq!(
            gemm::linear(&xs, &w_view, Some(&bias)).unwrap().to_vec_f32().unwrap(),
            gemm::linear(&xs.contiguous(), &w_dense, Some(&bias)).unwrap().to_vec_f32().unwrap()
        );
    }
}

/// Dummy runner: runs chunks serially but advertises a thread count, so
/// the purity test exercises the runner-installed code path.
struct CountingRunner {
    threads: usize,
}

impl parallel::IntraOpRunner for CountingRunner {
    fn run(&self, chunks: usize, job: &(dyn Fn(usize) + Sync)) -> usize {
        for c in 0..chunks {
            job(c);
        }
        self.threads.min(chunks).max(1)
    }
}
