//! Shadow-memory execution sanitizer.
//!
//! [`ShadowMemory`] mirrors one run's value table with per-slot state
//! tags (unwritten / written / freed) plus an owner id and reader count,
//! and checks every executor access against them:
//!
//! - **read-before-write** — a consumer gathered an input its producer
//!   never wrote (a scheduling bug: the data edge was not ordered);
//! - **write-write overlap** — two nodes wrote the same slot (an id
//!   aliasing or double-execution bug);
//! - **use-after-free** — a value was read after, or freed while, the
//!   liveness plan had (or concurrent readers still held) it.
//!
//! Every transition appends to a bounded event ring, so a violation
//! reports the offending node ids *and* the recent history of the slot's
//! accesses — enough to replay the interleaving that produced it. All
//! checks sit behind one mutex; the sanitizer is a debugging mode
//! (`--sanitize` / `NGB_SANITIZE`), not a fast path, and when disabled
//! the executors hold no [`ShadowMemory`] at all (zero overhead).

use std::collections::VecDeque;
use std::sync::Mutex;

use ngb_tensor::TensorError;

/// Events kept per shadow memory for violation reports.
const TRACE_CAP: usize = 64;

/// What an executor did to a slot, as recorded in the trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Write,
    BeginRead,
    EndRead,
    Free,
}

impl Action {
    fn name(self) -> &'static str {
        match self {
            Action::Write => "write",
            Action::BeginRead => "begin-read",
            Action::EndRead => "end-read",
            Action::Free => "free",
        }
    }
}

/// One recorded access: at logical time `epoch`, node `actor` performed
/// `action` on the slot of value `value`.
#[derive(Debug, Clone, Copy)]
struct Event {
    epoch: u64,
    action: Action,
    value: usize,
    actor: usize,
}

/// Shadow tag of one value slot.
#[derive(Debug, Clone, Copy)]
enum SlotState {
    /// No producer has written yet.
    Unwritten,
    /// Written by `writer` at `epoch`; `readers` nodes are mid-read.
    Written {
        writer: usize,
        epoch: u64,
        readers: usize,
    },
    /// Written by `writer`, then freed by `freed_by` at `epoch`.
    Freed {
        writer: usize,
        freed_by: usize,
        epoch: u64,
    },
}

#[derive(Debug)]
struct ShadowInner {
    slots: Vec<SlotState>,
    epoch: u64,
    trace: VecDeque<Event>,
}

/// Per-run shadow of the executor's value table (see module docs).
///
/// Slot indices are graph positions; actors are the node positions
/// performing the access. All methods are callable from any worker
/// thread.
#[derive(Debug)]
pub struct ShadowMemory {
    inner: Mutex<ShadowInner>,
}

impl ShadowMemory {
    /// A shadow for a graph of `len` values, all unwritten.
    pub fn new(len: usize) -> ShadowMemory {
        ShadowMemory {
            inner: Mutex::new(ShadowInner {
                slots: vec![SlotState::Unwritten; len],
                epoch: 0,
                trace: VecDeque::with_capacity(TRACE_CAP),
            }),
        }
    }

    /// Records node `writer` defining value `value`.
    ///
    /// # Errors
    ///
    /// Write-write overlap (slot already written) or write-after-free.
    pub fn write(&self, value: usize, writer: usize) -> Result<(), TensorError> {
        let mut inner = self.lock();
        inner.record(Action::Write, value, writer);
        match inner.slots[value] {
            SlotState::Unwritten => {
                let epoch = inner.epoch;
                inner.slots[value] = SlotState::Written {
                    writer,
                    epoch,
                    readers: 0,
                };
                Ok(())
            }
            SlotState::Written {
                writer: prev,
                epoch,
                ..
            } => Err(inner.violation(format!(
                "write-write overlap on value %{value}: node %{writer} wrote a slot \
                 node %{prev} already wrote at t{epoch}"
            ))),
            SlotState::Freed {
                freed_by, epoch, ..
            } => Err(inner.violation(format!(
                "write-after-free on value %{value}: node %{writer} wrote a slot \
                 node %{freed_by} freed at t{epoch}"
            ))),
        }
    }

    /// Records node `reader` starting to consume value `value` (gathering
    /// it as a kernel input). Pair with [`ShadowMemory::end_read`].
    ///
    /// # Errors
    ///
    /// Read-before-write (slot unwritten: an unordered or missing data
    /// edge let the consumer run early) or use-after-free.
    pub fn begin_read(&self, value: usize, reader: usize) -> Result<(), TensorError> {
        let mut inner = self.lock();
        inner.record(Action::BeginRead, value, reader);
        match &mut inner.slots[value] {
            SlotState::Unwritten => Err(inner.violation(format!(
                "read-before-write on value %{value}: node %{reader} consumed it \
                 before its producer executed (unordered or missing data edge)"
            ))),
            SlotState::Written { readers, .. } => {
                *readers += 1;
                Ok(())
            }
            SlotState::Freed {
                writer,
                freed_by,
                epoch,
            } => {
                let (writer, freed_by, epoch) = (*writer, *freed_by, *epoch);
                Err(inner.violation(format!(
                    "use-after-free on value %{value} (produced by node %{writer}): \
                     node %{reader} read a slot node %{freed_by} freed at t{epoch} \
                     (lifetime ended too early)"
                )))
            }
        }
    }

    /// Records node `reader` finishing with value `value`. Infallible:
    /// an unmatched end-read can only follow an already-reported
    /// violation, so it is recorded but not re-reported.
    pub fn end_read(&self, value: usize, reader: usize) {
        let mut inner = self.lock();
        inner.record(Action::EndRead, value, reader);
        if let SlotState::Written { readers, .. } = &mut inner.slots[value] {
            *readers = readers.saturating_sub(1);
        }
    }

    /// Records node `freer` releasing value `value` (drop-at-last-use).
    ///
    /// # Errors
    ///
    /// Freeing an unwritten slot, double free, or freeing while another
    /// node is mid-read (a use-after-free race the liveness plan missed).
    pub fn free(&self, value: usize, freer: usize) -> Result<(), TensorError> {
        let mut inner = self.lock();
        inner.record(Action::Free, value, freer);
        match inner.slots[value] {
            SlotState::Unwritten => Err(inner.violation(format!(
                "free-before-write on value %{value}: node %{freer} freed a slot \
                 that was never produced"
            ))),
            SlotState::Written {
                writer, readers, ..
            } if readers > 0 => Err(inner.violation(format!(
                "use-after-free race on value %{value}: node %{freer} freed it while \
                 {readers} reader(s) were still consuming (producer %{writer})"
            ))),
            SlotState::Written { writer, .. } => {
                let epoch = inner.epoch;
                inner.slots[value] = SlotState::Freed {
                    writer,
                    freed_by: freer,
                    epoch,
                };
                Ok(())
            }
            SlotState::Freed {
                freed_by, epoch, ..
            } => Err(inner.violation(format!(
                "double free on value %{value}: node %{freer} freed a slot \
                 node %{freed_by} already freed at t{epoch}"
            ))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShadowInner> {
        self.inner.lock().expect("shadow memory lock")
    }
}

impl ShadowInner {
    fn record(&mut self, action: Action, value: usize, actor: usize) {
        self.epoch += 1;
        if self.trace.len() == TRACE_CAP {
            self.trace.pop_front();
        }
        self.trace.push_back(Event {
            epoch: self.epoch,
            action,
            value,
            actor,
        });
    }

    /// Builds the violation error: message plus the replayable access
    /// trace (most recent last).
    fn violation(&self, message: String) -> TensorError {
        let mut text = format!("sanitizer: {message}; trace:");
        for e in &self.trace {
            text.push_str(&format!(
                " [t{} %{} {} %{}]",
                e.epoch,
                e.actor,
                e.action.name(),
                e.value
            ));
        }
        TensorError::InvalidArgument(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(r: Result<(), TensorError>) -> String {
        r.unwrap_err().to_string()
    }

    #[test]
    fn clean_produce_consume_free_cycle_passes() {
        let s = ShadowMemory::new(3);
        s.write(0, 0).unwrap();
        s.begin_read(0, 1).unwrap();
        s.write(1, 1).unwrap();
        s.end_read(0, 1);
        s.free(0, 1).unwrap();
        s.begin_read(1, 2).unwrap();
        s.write(2, 2).unwrap();
        s.end_read(1, 2);
        s.free(1, 2).unwrap();
    }

    #[test]
    fn read_before_write_is_reported_with_both_nodes() {
        let s = ShadowMemory::new(2);
        let m = msg(s.begin_read(0, 1));
        assert!(m.contains("read-before-write"), "{m}");
        assert!(m.contains("%1"), "{m}");
        assert!(m.contains("trace:"), "{m}");
    }

    #[test]
    fn write_write_overlap_names_both_writers() {
        let s = ShadowMemory::new(1);
        s.write(0, 0).unwrap();
        let m = msg(s.write(0, 5));
        assert!(m.contains("write-write overlap"), "{m}");
        assert!(m.contains("%5") && m.contains("%0"), "{m}");
    }

    #[test]
    fn use_after_free_on_read() {
        let s = ShadowMemory::new(2);
        s.write(0, 0).unwrap();
        s.free(0, 1).unwrap();
        let m = msg(s.begin_read(0, 2));
        assert!(m.contains("use-after-free"), "{m}");
        assert!(m.contains("%2"), "{m}");
    }

    #[test]
    fn freeing_under_active_readers_is_a_race() {
        let s = ShadowMemory::new(2);
        s.write(0, 0).unwrap();
        s.begin_read(0, 1).unwrap();
        let m = msg(s.free(0, 1));
        assert!(m.contains("use-after-free race"), "{m}");
        // after the reader finishes, the free succeeds
        let s2 = ShadowMemory::new(2);
        s2.write(0, 0).unwrap();
        s2.begin_read(0, 1).unwrap();
        s2.end_read(0, 1);
        s2.free(0, 1).unwrap();
    }

    #[test]
    fn double_free_and_free_before_write() {
        let s = ShadowMemory::new(2);
        s.write(0, 0).unwrap();
        s.free(0, 1).unwrap();
        assert!(msg(s.free(0, 2)).contains("double free"));
        assert!(msg(s.free(1, 2)).contains("free-before-write"));
    }

    #[test]
    fn write_after_free_is_reported() {
        let s = ShadowMemory::new(1);
        s.write(0, 0).unwrap();
        s.free(0, 0).unwrap();
        assert!(msg(s.write(0, 0)).contains("write-after-free"));
    }

    #[test]
    fn trace_ring_is_bounded() {
        let s = ShadowMemory::new(1);
        s.write(0, 0).unwrap();
        for _ in 0..(TRACE_CAP * 2) {
            s.begin_read(0, 0).unwrap();
            s.end_read(0, 0);
        }
        let inner = s.lock();
        assert_eq!(inner.trace.len(), TRACE_CAP);
        assert!(inner.epoch > TRACE_CAP as u64);
    }
}
