//! Execution of [`OpKind::Fused`] composite nodes.
//!
//! Two strategies, chosen by [`FusedKind`]:
//!
//! * **Conv+BN folding** ([`FusedKind::ConvBnAct`]): the batch-norm's
//!   scale/shift is folded into the convolution's weights and bias before
//!   the single conv kernel runs, then any activation epilogue is applied
//!   in one pass. Folding reorders floating-point arithmetic, so outputs
//!   match the unfused graph within a tolerance, not bitwise.
//! * **Stage pipeline** (everything else): stages execute in order, with
//!   consecutive unary pointwise stages collapsed into one fused loop
//!   ([`ngb_ops::fused::map_chain`]) and every other stage dispatched
//!   through the interpreter's regular [`execute_node`] under a synthetic
//!   node carrying the stage's original seed id. Per-stage arithmetic is
//!   therefore identical to the unfused kernels — outputs are
//!   bit-identical to `-O0`.

use ngb_graph::{FusedKind, FusedOp, FusedStage, Node, NodeId, OpKind};
use ngb_ops::fused::{map_chain, Pointwise};
use ngb_tensor::{Tensor, TensorError};

use crate::bufplan::Arena;
use crate::interp::{execute_node, rng_for};

type Result<T> = std::result::Result<T, TensorError>;

/// Executes one fused node given the gathered input tensors.
pub(crate) fn execute_fused(
    seed: u64,
    f: &FusedOp,
    args: &[Tensor],
    arena: &Arena,
    quant: ngb_ops::Quant,
) -> Result<Tensor> {
    match f.kind {
        FusedKind::ConvBnAct => conv_bn_act(seed, f, args, arena),
        FusedKind::GemmEpilogue | FusedKind::ElementwiseChain | FusedKind::AttentionPrologue => {
            pipeline(seed, f, args, arena, quant)
        }
    }
}

fn bad(msg: impl Into<String>) -> TensorError {
    TensorError::InvalidArgument(msg.into())
}

fn take_arg(args: &[Tensor], i: usize) -> Result<&Tensor> {
    args.get(i)
        .ok_or_else(|| bad(format!("fused node is missing input {i}")))
}

/// `Conv2d → BatchNorm2d/FrozenBatchNorm2d [→ pointwise...]` as a single
/// folded convolution.
fn conv_bn_act(seed: u64, f: &FusedOp, args: &[Tensor], arena: &Arena) -> Result<Tensor> {
    let [conv_stage, bn_stage, rest @ ..] = f.stages.as_slice() else {
        return Err(bad("conv_bn_act requires at least conv + bn stages"));
    };
    let OpKind::Conv2d {
        in_c,
        out_c,
        kernel,
        stride,
        padding,
        groups,
        bias,
    } = &conv_stage.op
    else {
        return Err(bad("conv_bn_act stage 0 must be Conv2d"));
    };

    // Conv parameters: the exact draw sequence of the unfused Conv2d arm,
    // keyed by the stage's original node id.
    let mut rng = rng_for(seed, NodeId(conv_stage.seed_id));
    let fan_in = (in_c / groups) * kernel * kernel;
    let shape = [*out_c, in_c / groups, *kernel, *kernel];
    let numel = shape.iter().product();
    let w = rng.kaiming_into(arena.take(numel), &shape, fan_in.max(1));
    let b = bias.then(|| rng.normal(&[*out_c]));
    let mut wv = w.to_vec_f32()?;
    arena.reclaim(w);
    let mut bv = match b {
        Some(t) => t.to_vec_f32()?,
        None => vec![0.0; *out_c],
    };

    // BN parameters: the exact draw sequence of the unfused BN arm.
    let (OpKind::BatchNorm2d { c } | OpKind::FrozenBatchNorm2d { c }) = &bn_stage.op else {
        return Err(bad("conv_bn_act stage 1 must be a 2-d batch norm"));
    };
    let mut rng = rng_for(seed, NodeId(bn_stage.seed_id));
    let (g, beta) = (rng.uniform(&[*c], 0.9, 1.1), rng.uniform(&[*c], -0.1, 0.1));
    let (m, v) = (rng.uniform(&[*c], -0.1, 0.1), rng.uniform(&[*c], 0.8, 1.2));

    ngb_ops::fused::fold_bn(
        &mut wv,
        &mut bv,
        &g.to_vec_f32()?,
        &beta.to_vec_f32()?,
        &m.to_vec_f32()?,
        &v.to_vec_f32()?,
        1e-5,
    );
    let w = Tensor::from_vec(wv, &shape)?;
    let folded_bias = Tensor::from_vec(bv, &[*out_c])?;
    let out = ngb_ops::gemm::conv2d(
        take_arg(args, 0)?,
        &w,
        Some(&folded_bias),
        *stride,
        *padding,
        *groups,
    )?;

    let chain: Vec<Pointwise> = rest
        .iter()
        .map(|s| {
            s.op.pointwise().ok_or_else(|| {
                bad(format!(
                    "conv_bn_act epilogue '{}' is not pointwise",
                    s.op.name()
                ))
            })
        })
        .collect::<Result<_>>()?;
    if chain.is_empty() {
        Ok(out)
    } else {
        map_chain(out, &chain)
    }
}

fn synthetic_node(stage: &FusedStage) -> Node {
    Node {
        id: NodeId(stage.seed_id),
        op: stage.op.clone(),
        inputs: Vec::new(),
        out_shape: Vec::new(),
        name: String::new(),
        seed_hint: None,
    }
}

/// Generic stage pipeline: pointwise runs collapse into single fused
/// loops; every other stage runs through the shared kernel dispatch.
fn pipeline(
    seed: u64,
    f: &FusedOp,
    args: &[Tensor],
    arena: &Arena,
    quant: ngb_ops::Quant,
) -> Result<Tensor> {
    let mut cursor = 0usize;
    let mut chain: Option<Tensor> = None;
    let mut pending: Vec<Pointwise> = Vec::new();
    for stage in &f.stages {
        match (chain.is_some(), stage.op.pointwise(), stage.extra_inputs) {
            (true, Some(p), 0) => pending.push(p),
            (false, Some(p), 1) => {
                chain = Some(take_arg(args, cursor)?.clone());
                cursor += 1;
                pending.push(p);
            }
            _ => {
                if let Some(t) = chain.take() {
                    chain = Some(flush(t, &mut pending)?);
                }
                let mut stage_args: Vec<Tensor> = Vec::with_capacity(stage.extra_inputs + 1);
                if let Some(t) = chain.take() {
                    stage_args.push(t);
                }
                for k in 0..stage.extra_inputs {
                    stage_args.push(take_arg(args, cursor + k)?.clone());
                }
                cursor += stage.extra_inputs;
                let synth = synthetic_node(stage);
                chain = Some(execute_node(seed, &synth, &stage_args, None, arena, quant)?);
            }
        }
    }
    let t = chain.ok_or_else(|| bad("fused node has no stages"))?;
    flush(t, &mut pending)
}

fn flush(t: Tensor, pending: &mut Vec<Pointwise>) -> Result<Tensor> {
    if pending.is_empty() {
        return Ok(t);
    }
    let out = map_chain(t, pending)?;
    pending.clear();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;
    use ngb_graph::{GraphBuilder, OpKind};
    use ngb_tensor::{bit_equal, Tolerance};

    fn stage(op: OpKind, seed_id: usize, extra_inputs: usize) -> FusedStage {
        FusedStage {
            op,
            seed_id,
            extra_inputs,
        }
    }

    /// Hand-builds `linear -> gelu` unfused and as one fused node, checking
    /// bit-identical outputs (same seed ids -> same weights).
    #[test]
    fn fused_gemm_epilogue_is_bit_identical() {
        let mut b = GraphBuilder::new("unfused");
        let x = b.input(&[3, 8]);
        let h = b
            .push(
                OpKind::Linear {
                    in_f: 8,
                    out_f: 16,
                    bias: true,
                },
                &[x],
                "fc",
            )
            .unwrap();
        b.push(OpKind::Gelu, &[h], "act").unwrap();
        let unfused = b.finish();

        let mut b = GraphBuilder::new("fused");
        let x = b.input(&[3, 8]);
        b.push(
            OpKind::Fused(ngb_graph::FusedOp {
                kind: FusedKind::GemmEpilogue,
                stages: vec![
                    stage(
                        OpKind::Linear {
                            in_f: 8,
                            out_f: 16,
                            bias: true,
                        },
                        1,
                        1,
                    ),
                    stage(OpKind::Gelu, 2, 0),
                ],
            }),
            &[x],
            "fc_act",
        )
        .unwrap();
        let fused = b.finish();

        let a = Interpreter::default().run(&unfused).unwrap();
        let f = Interpreter::default().run(&fused).unwrap();
        assert!(bit_equal(&a.outputs[0].1, &f.outputs[0].1).unwrap());
    }

    /// `conv -> bn -> relu` folded: equal within the documented tolerance.
    #[test]
    fn fused_conv_bn_relu_matches_within_tolerance() {
        let conv = OpKind::Conv2d {
            in_c: 3,
            out_c: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
            bias: true,
        };
        let mut b = GraphBuilder::new("unfused");
        let x = b.input(&[2, 3, 8, 8]);
        let c = b.push(conv.clone(), &[x], "conv").unwrap();
        let n = b.push(OpKind::BatchNorm2d { c: 8 }, &[c], "bn").unwrap();
        b.push(OpKind::Relu, &[n], "act").unwrap();
        let unfused = b.finish();

        let mut b = GraphBuilder::new("fused");
        let x = b.input(&[2, 3, 8, 8]);
        b.push(
            OpKind::Fused(ngb_graph::FusedOp {
                kind: FusedKind::ConvBnAct,
                stages: vec![
                    stage(conv, 1, 1),
                    stage(OpKind::BatchNorm2d { c: 8 }, 2, 0),
                    stage(OpKind::Relu, 3, 0),
                ],
            }),
            &[x],
            "conv_bn_act",
        )
        .unwrap();
        let fused = b.finish();

        let a = Interpreter::default().run(&unfused).unwrap();
        let f = Interpreter::default().run(&fused).unwrap();
        Tolerance::bn_folding()
            .check(&a.outputs[0].1, &f.outputs[0].1)
            .unwrap();
    }

    /// The attention prologue (`bmm -> scale -> mask-add -> softmax`) with a
    /// non-pointwise interior stage taking an extra input.
    #[test]
    fn fused_attention_prologue_is_bit_identical() {
        let mut b = GraphBuilder::new("unfused");
        let q = b.input(&[2, 4, 8]);
        let k = b.input(&[2, 8, 4]);
        let m = b.input(&[2, 4, 4]);
        let s = b.push(OpKind::Bmm, &[q, k], "scores").unwrap();
        let d = b.push(OpKind::DivScalar(2.828), &[s], "scale").unwrap();
        let a = b.push(OpKind::Add, &[d, m], "mask").unwrap();
        b.push(OpKind::Softmax { dim: 2 }, &[a], "probs").unwrap();
        let unfused = b.finish();

        let mut b = GraphBuilder::new("fused");
        let q = b.input(&[2, 4, 8]);
        let k = b.input(&[2, 8, 4]);
        let m = b.input(&[2, 4, 4]);
        b.push(
            OpKind::Fused(ngb_graph::FusedOp {
                kind: FusedKind::AttentionPrologue,
                stages: vec![
                    stage(OpKind::Bmm, 3, 2),
                    stage(OpKind::DivScalar(2.828), 4, 0),
                    stage(OpKind::Add, 5, 1),
                    stage(OpKind::Softmax { dim: 2 }, 6, 0),
                ],
            }),
            &[q, k, m],
            "attn",
        )
        .unwrap();
        let fused = b.finish();

        let a = Interpreter::default().run(&unfused).unwrap();
        let f = Interpreter::default().run(&fused).unwrap();
        assert!(bit_equal(&a.outputs[0].1, &f.outputs[0].1).unwrap());
    }
}
