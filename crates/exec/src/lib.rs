//! # ngb-exec
//!
//! Graph execution engines for NonGEMM Bench. The crate owns everything
//! between an [`ngb_graph::Graph`] and an [`ExecutionTrace`]:
//!
//! * [`Interpreter`] — the sequential reference engine: runs nodes in
//!   topological order with reproducible synthetic weights, drops each
//!   activation at its last use, and recycles weight storage through a
//!   size-bucketed [`Arena`].
//! * [`ParallelExecutor`] — the parallel engine: a [`Schedule`] (Kahn
//!   wavefronts + critical-path priorities) feeds a dependency-counted
//!   ready queue drained by a std-only [`ThreadPool`]. Outputs are
//!   **bit-identical** to the sequential engine because weights and inputs
//!   derive from per-node RNG seeds, never from execution order.
//! * [`BufferPlan`] — the static liveness pass both engines share.
//! * [`PoolRunner`] — scoped intra-op dispatch: kernels partition work
//!   into shape-pure chunks (`ngb_ops::parallel`) that fan out across
//!   idle pool workers, sharing one pool with node-level scheduling.
//!
//! The thread count comes from the `NGB_THREADS` environment variable (see
//! [`env_threads`]) or explicit [`Engine::Parallel`] selection; the
//! intra-op switch from `NGB_INTRAOP` (see [`env_intraop`], default on).
//!
//! # Examples
//!
//! ```
//! use ngb_exec::{Engine, Interpreter};
//! use ngb_graph::{GraphBuilder, OpKind};
//!
//! # fn main() -> Result<(), ngb_tensor::TensorError> {
//! let mut b = GraphBuilder::new("tiny");
//! let x = b.input(&[1, 4]);
//! let h = b.push(OpKind::Linear { in_f: 4, out_f: 4, bias: true }, &[x], "fc")?;
//! b.push(OpKind::Relu, &[h], "act")?;
//! let graph = b.finish();
//!
//! let seq = Interpreter::default().run(&graph)?;
//! let par = Interpreter::default().engine(Engine::Parallel(2)).run(&graph)?;
//! assert_eq!(seq.outputs[0].1, par.outputs[0].1); // bit-identical
//! # Ok(())
//! # }
//! ```

mod bufplan;
mod fused;
mod interp;
mod intraop;
mod parallel;
mod pool;
mod sanitizer;
mod schedule;

pub use bufplan::{Arena, ArenaStats, BufferPlan};
pub use interp::{
    preflight_check, run_node, synth_input, Engine, ExecutionTrace, Interpreter, NodeTiming,
};
pub use intraop::PoolRunner;
pub use ngb_ops::Quant;
pub use parallel::ParallelExecutor;
pub use pool::ThreadPool;
pub use sanitizer::ShadowMemory;
pub use schedule::{Schedule, ScheduleStats};

/// Reads the worker-thread count from `NGB_THREADS`, falling back to
/// `fallback` when the variable is unset, unparsable, or zero.
pub fn env_threads(fallback: usize) -> usize {
    std::env::var("NGB_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(fallback)
}

/// Reads the intra-op parallelism switch from `NGB_INTRAOP`: `0`, `off`,
/// or `false` disable it, anything else enables it, and `fallback` applies
/// when the variable is unset.
pub fn env_intraop(fallback: bool) -> bool {
    match std::env::var("NGB_INTRAOP") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
        Err(_) => fallback,
    }
}

/// Reads the execution-sanitizer switch from `NGB_SANITIZE`: `0`, `off`,
/// or `false` disable it, anything else enables it, and `fallback` applies
/// when the variable is unset (the sanitizer defaults to off).
pub fn env_sanitize(fallback: bool) -> bool {
    match std::env::var("NGB_SANITIZE") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
        Err(_) => fallback,
    }
}

/// Reads the weight-quantization mode from `NGB_QUANT` (`int8`/`i8`
/// select int8; `none`/`off`/`fp32` select full precision); `fallback`
/// applies when the variable is unset or unparsable.
pub fn env_quant(fallback: Quant) -> Quant {
    std::env::var("NGB_QUANT")
        .ok()
        .and_then(|v| Quant::parse(&v))
        .unwrap_or(fallback)
}

/// Default worker count: `NGB_THREADS` if set, else the host's available
/// parallelism (1 when that cannot be determined).
pub fn default_threads() -> usize {
    env_threads(
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_threads_is_positive() {
        assert!(super::default_threads() >= 1);
        assert!(super::env_threads(3) >= 1);
    }
}
