//! Intra-op dispatch onto the shared [`ThreadPool`]: a scoped-join
//! runner that lets one node's kernel fan its chunks out across idle
//! pool workers.
//!
//! [`PoolRunner`] implements [`ngb_ops::parallel::IntraOpRunner`]. A
//! dispatch spawns up to `threads - 1` helper jobs at the *front* of the
//! pool queue (ahead of queued node tickets) and then drains chunks on
//! the calling thread too, so the scope always completes even when every
//! helper is busy elsewhere — there is no cyclic wait. The caller blocks
//! until all chunks are done (scoped join), which is what makes the
//! borrowed chunk closure safe to share, and re-raises the first chunk
//! panic on the calling thread afterwards.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};

use ngb_ops::parallel::IntraOpRunner;

use crate::pool::ThreadPool;

/// Scoped intra-op runner over the engine's [`ThreadPool`].
pub struct PoolRunner {
    pool: Weak<ThreadPool>,
    threads: usize,
}

impl std::fmt::Debug for PoolRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolRunner")
            .field("threads", &self.threads)
            .finish()
    }
}

impl PoolRunner {
    /// A runner dispatching helper chunks onto `pool`. Holds only a weak
    /// handle: if the pool is gone the runner degrades to serial, and it
    /// can never keep worker threads alive past their pool's drop.
    pub fn new(pool: &Arc<ThreadPool>) -> PoolRunner {
        PoolRunner {
            threads: pool.threads(),
            pool: Arc::downgrade(pool),
        }
    }
}

/// Lifetime-erased pointer to the borrowed chunk closure. Only
/// dereferenced between a successful chunk claim and the matching `done`
/// increment; the caller cannot leave [`IntraOpRunner::run`] until every
/// claimed chunk reported done, so the borrow is live for every deref.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for JobPtr {}
unsafe impl Sync for JobPtr {}

/// One scoped dispatch: claim counter + completion latch + panic slot.
struct Scope {
    job: JobPtr,
    chunks: usize,
    next: AtomicUsize,
    participants: AtomicUsize,
    done: Mutex<usize>,
    joined: Condvar,
    panic: Mutex<Option<String>>,
}

impl Scope {
    /// Claims and runs chunks until none remain. Every claimed chunk
    /// increments `done` exactly once, panic or not, so the join latch
    /// always releases.
    fn drain(&self) {
        let mut claimed = 0usize;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks {
                break;
            }
            claimed += 1;
            // SAFETY: i < chunks, so the caller is still blocked in
            // `run` waiting for this chunk's `done` increment below; the
            // closure behind the pointer is therefore alive.
            let job = unsafe { &*self.job.0 };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(i)));
            if let Err(panic) = outcome {
                let msg = crate::parallel::panic_message(&*panic);
                let mut slot = self.panic.lock().expect("intra-op panic slot");
                slot.get_or_insert(msg);
            }
            let mut done = self.done.lock().expect("intra-op join latch");
            *done += 1;
            if *done == self.chunks {
                self.joined.notify_all();
            }
        }
        if claimed > 0 {
            self.participants.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl IntraOpRunner for PoolRunner {
    fn run(&self, chunks: usize, job: &(dyn Fn(usize) + Sync)) -> usize {
        let pool = self.pool.upgrade();
        if chunks <= 1 || self.threads <= 1 || pool.is_none() {
            for c in 0..chunks {
                job(c);
            }
            return 1;
        }
        let pool = pool.expect("checked above");
        // SAFETY: erases the borrow's lifetime; `Scope::drain` only
        // dereferences it for claimed chunks, and this function does not
        // return until `done == chunks`, so the borrow outlives every use.
        let job: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
        let scope = Arc::new(Scope {
            job: JobPtr(job),
            chunks,
            next: AtomicUsize::new(0),
            participants: AtomicUsize::new(0),
            done: Mutex::new(0),
            joined: Condvar::new(),
            panic: Mutex::new(None),
        });
        for _ in 0..(self.threads - 1).min(chunks - 1) {
            let scope = Arc::clone(&scope);
            pool.spawn_front(move |_worker| scope.drain());
        }
        scope.drain(); // the caller participates: the scope completes even with zero helpers
        let mut done = scope.done.lock().expect("intra-op join latch");
        while *done < chunks {
            done = scope.joined.wait(done).expect("intra-op join latch");
        }
        drop(done);
        if let Some(msg) = scope.panic.lock().expect("intra-op panic slot").take() {
            std::panic::resume_unwind(Box::new(msg));
        }
        scope.participants.load(Ordering::Relaxed).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_ops::parallel::{self, with_runner};

    #[test]
    fn dispatches_chunks_across_pool_workers() {
        let pool = Arc::new(ThreadPool::new(4));
        let runner = Arc::new(PoolRunner::new(&pool));
        let n = 4 * parallel::GRAIN_ELEMS;
        let mut out = vec![0.0f32; n];
        let mut want = vec![0.0f32; n];
        for (i, v) in want.iter_mut().enumerate() {
            *v = (i as f32).sqrt();
        }
        with_runner(runner, || {
            parallel::par_for_out(&mut out, |start, win| {
                for (j, v) in win.iter_mut().enumerate() {
                    *v = ((start + j) as f32).sqrt();
                }
            });
        });
        assert!(want
            .iter()
            .zip(&out)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn single_thread_pool_degrades_to_serial() {
        let pool = Arc::new(ThreadPool::new(1));
        let runner = PoolRunner::new(&pool);
        let hits = AtomicUsize::new(0);
        let got = runner.run(8, &|_c| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        assert_eq!(got, 1);
    }

    #[test]
    fn chunk_panic_is_reraised_on_the_caller_after_join() {
        let pool = Arc::new(ThreadPool::new(2));
        let runner = PoolRunner::new(&pool);
        let completed = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner.run(6, &|c| {
                if c == 3 {
                    panic!("chunk 3 exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
            });
        }));
        let err = caught.expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(msg.contains("chunk 3 exploded"), "{msg}");
        // the join still ran to completion: every other chunk executed
        assert_eq!(completed.load(Ordering::Relaxed), 5);
        // and the pool is still usable
        let (tx, rx) = std::sync::mpsc::channel();
        pool.spawn(move |w| tx.send(w).unwrap());
        rx.recv().unwrap();
    }

    #[test]
    fn concurrent_scoped_dispatches_share_the_pool() {
        // four caller threads each run many scoped dispatches against one
        // pool; helpers of different scopes interleave through the shared
        // front-of-queue, and every scope must still claim exactly its own
        // chunks (no cross-scope leaks, no lost chunks, no cyclic wait)
        let pool = Arc::new(ThreadPool::new(4));
        let mut callers = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            callers.push(std::thread::spawn(move || {
                let runner = PoolRunner::new(&pool);
                for _ in 0..50 {
                    let hits = AtomicUsize::new(0);
                    let participants = runner.run(16, &|_c| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                    assert_eq!(hits.load(Ordering::Relaxed), 16);
                    assert!(participants >= 1);
                }
            }));
        }
        for c in callers {
            c.join().unwrap();
        }
    }

    #[test]
    fn pool_drop_races_scoped_join() {
        // the pool's last strong handle drops while a caller thread is
        // mid-dispatch: in-flight scopes hold their own upgraded handle
        // until the join completes, later dispatches degrade to serial,
        // and every chunk of every scope still runs exactly once
        for round in 0..16 {
            let pool = Arc::new(ThreadPool::new(3));
            let runner = PoolRunner::new(&pool);
            let caller = std::thread::spawn(move || {
                let mut total = 0usize;
                for _ in 0..32 {
                    let hits = AtomicUsize::new(0);
                    runner.run(8, &|_c| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                    assert_eq!(hits.load(Ordering::Relaxed), 8);
                    total += 8;
                }
                total
            });
            drop(pool); // races the scoped joins above
            assert_eq!(caller.join().unwrap(), 32 * 8, "round {round}");
        }
    }

    #[test]
    fn dropped_pool_degrades_to_serial() {
        let pool = Arc::new(ThreadPool::new(4));
        let runner = PoolRunner::new(&pool);
        drop(pool);
        let hits = AtomicUsize::new(0);
        assert_eq!(
            runner.run(5, &|_c| {
                hits.fetch_add(1, Ordering::Relaxed);
            }),
            1
        );
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }
}
