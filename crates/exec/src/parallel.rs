//! Dependency-scheduled parallel graph execution.
//!
//! [`ParallelExecutor`] runs a graph on a [`ThreadPool`], dispatching nodes
//! as their producers complete, highest critical-path priority first. It
//! produces the same [`ExecutionTrace`] as the sequential interpreter with
//! **bit-identical outputs**: every node's weights and synthetic inputs
//! come from an RNG keyed on the node id (never on execution order), and
//! kernels are pure functions of their input tensors.
//!
//! Scheduling is *ticket-based*: each ready node enqueues one short pool
//! job (a ticket) that pops the highest-priority ready node, executes it,
//! and enqueues tickets for newly-ready successors. Workers are free
//! between tickets, which is what lets intra-op helper chunks (spawned by
//! kernels through [`crate::PoolRunner`] when `intra_op` is on) interleave
//! on the same pool instead of starving behind long-lived node loops.
//!
//! A kernel error (or panic) aborts the run cleanly: the first failure is
//! recorded, remaining tickets drain without executing, in-flight kernels
//! finish and discard their results, and the pool stays reusable.

use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use ngb_graph::{Graph, NodeId};
use ngb_ops::parallel::{self as intra, IntraOpRunner, IntraOpStats};
use ngb_tensor::{Tensor, TensorError};

use crate::bufplan::{Arena, BufferPlan};
use crate::interp::{
    collect_outputs, execute_node, gather_args, planner_bytes, ExecutionTrace, NodeTiming,
};
use crate::intraop::PoolRunner;
use crate::pool::ThreadPool;
use crate::schedule::Schedule;

/// Parallel engine: owns a worker pool, reusable across runs and graphs.
#[derive(Debug)]
pub struct ParallelExecutor {
    seed: u64,
    preflight: bool,
    intra_op: bool,
    sanitize: bool,
    quant: ngb_ops::Quant,
    pool: Arc<ThreadPool>,
}

impl ParallelExecutor {
    /// Creates an executor with `threads.max(1)` workers deriving weights
    /// from `seed`. Intra-op parallelism defaults to the `NGB_INTRAOP`
    /// environment setting (on when unset); the execution sanitizer to
    /// `NGB_SANITIZE` (off when unset).
    pub fn new(seed: u64, threads: usize) -> ParallelExecutor {
        ParallelExecutor {
            seed,
            preflight: false,
            intra_op: crate::env_intraop(true),
            sanitize: crate::env_sanitize(false),
            quant: crate::env_quant(ngb_ops::Quant::None),
            pool: Arc::new(ThreadPool::new(threads)),
        }
    }

    /// Creates an executor running on a caller-owned pool. Lets several
    /// executors (or a server's scheduler) share one set of workers instead
    /// of each spinning up their own.
    pub fn with_pool(seed: u64, pool: Arc<ThreadPool>) -> ParallelExecutor {
        ParallelExecutor {
            seed,
            preflight: false,
            intra_op: crate::env_intraop(true),
            sanitize: crate::env_sanitize(false),
            quant: crate::env_quant(ngb_ops::Quant::None),
            pool,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// A shared handle to the executor's worker pool (for backpressure
    /// counters or graceful shutdown coordination).
    pub fn pool(&self) -> Arc<ThreadPool> {
        Arc::clone(&self.pool)
    }

    /// Enables the same preflight check as the sequential interpreter.
    #[must_use]
    pub fn preflight(mut self, enabled: bool) -> ParallelExecutor {
        self.preflight = enabled;
        self
    }

    /// Enables or disables intra-op parallelism (kernels fanning chunks
    /// out across idle pool workers). Partitioning is a pure function of
    /// shape, so this switch never changes results — only where chunks run.
    #[must_use]
    pub fn intra_op(mut self, enabled: bool) -> ParallelExecutor {
        self.intra_op = enabled;
        self
    }

    /// Whether kernels dispatch intra-op chunks onto the pool.
    pub fn intra_op_enabled(&self) -> bool {
        self.intra_op
    }

    /// Enables or disables the shadow-memory execution sanitizer (see
    /// [`crate::ShadowMemory`]): every value-table access is tagged and
    /// checked, and hazards abort the run with the offending node ids and
    /// an access trace. Results are unchanged; when off, no shadow state
    /// exists at all.
    #[must_use]
    pub fn sanitize(mut self, enabled: bool) -> ParallelExecutor {
        self.sanitize = enabled;
        self
    }

    /// Selects the weight-quantization mode for GEMM-family layers
    /// (same contract as [`crate::Interpreter::quantize`]).
    #[must_use]
    pub fn quantize(mut self, quant: ngb_ops::Quant) -> ParallelExecutor {
        self.quant = quant;
        self
    }

    /// The effective weight-quantization mode.
    pub fn quant(&self) -> ngb_ops::Quant {
        self.quant
    }

    /// Whether value-table accesses are checked against a shadow memory.
    pub fn sanitize_enabled(&self) -> bool {
        self.sanitize
    }

    /// Runs the graph with synthetic inputs.
    ///
    /// # Errors
    ///
    /// Returns the first kernel error; the run aborts without deadlocking
    /// and the executor remains usable.
    pub fn run(&self, graph: &Graph) -> Result<ExecutionTrace, TensorError> {
        self.run_with_inputs(graph, &HashMap::new())
    }

    /// Runs the graph with caller-provided input overrides.
    ///
    /// # Errors
    ///
    /// Returns structural errors (same contract as the sequential engine)
    /// or the first kernel error.
    pub fn run_with_inputs(
        &self,
        graph: &Graph,
        inputs: &HashMap<NodeId, Tensor>,
    ) -> Result<ExecutionTrace, TensorError> {
        if self.preflight {
            crate::interp::preflight_check(graph)?;
        }
        let len = graph.len();
        // same structural contract (and messages) as the sequential engine
        for node in graph.iter() {
            for &i in &node.inputs {
                if i.0 >= len {
                    return Err(TensorError::InvalidArgument(format!(
                        "node {} consumes nonexistent node {i}",
                        node.id
                    )));
                }
            }
        }
        for (pos, node) in graph.iter().enumerate() {
            if node.id.0 != pos {
                return Err(TensorError::InvalidArgument(format!(
                    "node at position {pos} has id {}",
                    node.id
                )));
            }
        }
        let sched = Schedule::new(graph);
        if !sched.is_complete() {
            return Err(TensorError::InvalidArgument(format!(
                "graph has a dependency cycle: only {} of {} nodes schedulable",
                sched.wavefronts.iter().map(Vec::len).sum::<usize>(),
                len
            )));
        }
        let plan = BufferPlan::new(graph);
        self.run_prepared(graph, inputs, sched, plan)
    }

    /// Runs the graph under a caller-supplied [`Schedule`] and
    /// [`BufferPlan`] instead of recomputing them — the fault-injection
    /// hook the sanitizer's seeded-fault tests use to execute
    /// deliberately corrupted parts and assert the shadow memory catches
    /// the resulting hazard.
    ///
    /// The caller is responsible for parts whose dependency counts drain
    /// (every node must eventually become ready); the normal entry points
    /// guarantee this via [`Schedule::is_complete`].
    ///
    /// # Errors
    ///
    /// Returns the first kernel or sanitizer error.
    pub fn run_with_parts(
        &self,
        graph: &Graph,
        sched: Schedule,
        plan: BufferPlan,
    ) -> Result<ExecutionTrace, TensorError> {
        self.run_prepared(graph, &HashMap::new(), sched, plan)
    }

    fn run_prepared(
        &self,
        graph: &Graph,
        inputs: &HashMap<NodeId, Tensor>,
        sched: Schedule,
        plan: BufferPlan,
    ) -> Result<ExecutionTrace, TensorError> {
        let len = graph.len();
        let mut ready = BinaryHeap::new();
        for (pos, &deg) in sched.indegree.iter().enumerate() {
            if deg == 0 {
                ready.push(ReadyItem {
                    priority: sched.priority[pos],
                    pos,
                });
            }
        }
        let initial = ready.len();
        let indegree = sched.indegree.clone();
        let runner = (self.intra_op && self.pool.threads() > 1)
            .then(|| Arc::new(PoolRunner::new(&self.pool)));
        let shared = Arc::new(RunState {
            graph: Arc::new(graph.clone()),
            overrides: inputs.clone(),
            seed: self.seed,
            quant: self.quant,
            sched,
            is_output: (0..len).map(|i| plan.is_output(i)).collect(),
            arena: Arena::default(),
            shadow: self.sanitize.then(|| crate::ShadowMemory::new(len)),
            started_at: Instant::now(),
            pool: Arc::downgrade(&self.pool),
            runner,
            inner: Mutex::new(Inner {
                ready,
                indegree,
                uses: plan.uses,
                values: vec![None; len],
                timings: (0..len).map(|_| None).collect(),
                completed: 0,
                inflight: initial,
                live_bytes: 0,
                peak_live_bytes: 0,
                error: None,
            }),
            progress: Condvar::new(),
        });

        for _ in 0..initial {
            let state = Arc::clone(&shared);
            self.pool.spawn(move |worker| state.run_ticket(worker));
        }

        // Wait for every ticket to fully retire (not just for the last
        // node to complete): a ticket briefly upgrades the pool Weak to
        // spawn successors, and returning while one is still in flight
        // would let that worker drop — and self-join — the pool.
        let mut inner = shared.inner.lock().expect("run lock");
        while !(inner.inflight == 0 && (inner.completed == len || inner.error.is_some())) {
            inner = shared.progress.wait(inner).expect("run lock");
        }
        if let Some(err) = inner.error.take() {
            return Err(err);
        }
        let timings = inner
            .timings
            .iter_mut()
            .map(|t| t.take().expect("every node timed on success"))
            .collect();
        let mut values = std::mem::take(&mut inner.values);
        let peak_live_bytes = inner.peak_live_bytes;
        drop(inner);
        let outputs = collect_outputs(graph, &shared.is_output, &mut values)?;
        Ok(ExecutionTrace {
            outputs,
            timings,
            peak_live_bytes,
            arena: shared.arena.stats(),
        })
    }
}

/// Everything a ticket needs, shared behind one `Arc`.
struct RunState {
    graph: Arc<Graph>,
    overrides: HashMap<NodeId, Tensor>,
    seed: u64,
    quant: ngb_ops::Quant,
    sched: Schedule,
    is_output: Vec<bool>,
    arena: Arena,
    /// Present only in sanitize mode: the shadow of `Inner::values`.
    shadow: Option<crate::ShadowMemory>,
    started_at: Instant,
    /// Weak so a ticket finishing after the waiter returned can never be
    /// the one to drop (and join) the pool from a worker thread.
    pool: Weak<ThreadPool>,
    /// Installed around every kernel when intra-op parallelism is on.
    runner: Option<Arc<PoolRunner>>,
    inner: Mutex<Inner>,
    progress: Condvar,
}

/// Mutable run state, guarded by `RunState::inner`.
struct Inner {
    ready: BinaryHeap<ReadyItem>,
    indegree: Vec<usize>,
    uses: Vec<usize>,
    values: Vec<Option<Tensor>>,
    timings: Vec<Option<NodeTiming>>,
    completed: usize,
    /// Tickets spawned but not yet finished — the abort path waits for
    /// this to reach zero so in-flight kernels drain before returning.
    inflight: usize,
    live_bytes: usize,
    peak_live_bytes: usize,
    error: Option<TensorError>,
}

/// Ready-queue entry: max-heap on priority, ties broken toward the lower
/// node id so pop order is deterministic.
#[derive(Debug, PartialEq)]
struct ReadyItem {
    priority: f64,
    pos: usize,
}

impl Eq for ReadyItem {}

impl Ord for ReadyItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.pos.cmp(&self.pos))
    }
}

impl PartialOrd for ReadyItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl RunState {
    /// One ticket: pop the best ready node, execute it, release
    /// successors, and enqueue their tickets. Every ticket decrements
    /// `inflight` exactly once.
    fn run_ticket(self: &Arc<Self>, worker: usize) {
        let mut inner = self.inner.lock().expect("run lock");
        if inner.error.is_some() {
            inner.inflight -= 1;
            self.progress.notify_all();
            return;
        }
        let Some(item) = inner.ready.pop() else {
            // defensive: tickets are 1:1 with ready pushes, so this only
            // happens if a sibling over-drained — never leak the ticket
            inner.inflight -= 1;
            self.progress.notify_all();
            return;
        };
        let node = &self.graph.nodes[item.pos];
        // shadow reads are tagged under the same lock the gather holds, so
        // the shadow observes exactly the executor's interleaving of
        // gathers against frees; read-before-write outranks the gather's
        // own missing-input error
        let read_check = self.shadow.as_ref().map_or(Ok(()), |s| {
            node.inputs
                .iter()
                .try_for_each(|&i| s.begin_read(i.0, item.pos))
        });
        let gathered = read_check.and_then(|()| gather_args(node, &inner.values));
        drop(inner);

        let outcome = gathered.and_then(|args| {
            let kernel_start = Instant::now();
            intra::reset_stats();
            // contiguous-copy telemetry is thread-local; the node's copies
            // all happen on this worker thread (intra-op chunk jobs never
            // materialize), so reset/take brackets exactly this node
            ngb_tensor::telemetry::reset_bytes_materialized();
            let exec_once = || {
                execute_node(
                    self.seed,
                    node,
                    &args,
                    self.overrides.get(&node.id),
                    &self.arena,
                    self.quant,
                )
            };
            let result = catch_unwind(AssertUnwindSafe(|| match &self.runner {
                Some(r) => intra::with_runner(Arc::clone(r) as Arc<dyn IntraOpRunner>, exec_once),
                None => exec_once(),
            }));
            let stats = intra::take_stats();
            let bytes_materialized = ngb_tensor::telemetry::take_bytes_materialized();
            let elapsed = kernel_start.elapsed();
            let start = kernel_start.duration_since(self.started_at);
            match result {
                Ok(Ok(out)) => Ok((out, start, elapsed, stats, bytes_materialized)),
                Ok(Err(e)) => Err(e),
                Err(panic) => Err(TensorError::InvalidArgument(format!(
                    "node {} ({}) kernel panicked: {}",
                    node.id,
                    node.name,
                    panic_message(&*panic)
                ))),
            }
        });

        let mut newly_ready = 0usize;
        let mut inner = self.inner.lock().expect("run lock");
        match outcome {
            Err(e) => {
                if inner.error.is_none() {
                    inner.error = Some(e);
                }
            }
            Ok(_) if inner.error.is_some() => {} // stale result of an aborted run
            Ok((out, start, elapsed, stats, bytes_materialized)) => {
                match self.finish_node(
                    &mut inner,
                    item.pos,
                    out,
                    start,
                    elapsed,
                    worker,
                    stats,
                    bytes_materialized,
                ) {
                    Ok(n) => newly_ready = n,
                    Err(e) => {
                        if inner.error.is_none() {
                            inner.error = Some(e);
                        }
                    }
                }
            }
        }
        // account successor tickets before releasing the lock so the
        // waiter can never observe inflight == 0 with work outstanding
        inner.inflight += newly_ready;
        drop(inner);

        // Spawn successors while this ticket is still counted in
        // `inflight`: the waiter cannot return yet, so the executor (and
        // its pool) are still alive and the Arc upgraded here can never
        // be the last one — otherwise a completed run could race this
        // block, leaving a worker to drop (and self-join) the pool.
        if newly_ready > 0 {
            let pool = self
                .pool
                .upgrade()
                .expect("executor (and its pool) outlive the run");
            for _ in 0..newly_ready {
                let state = Arc::clone(self);
                pool.spawn(move |w| state.run_ticket(w));
            }
        }

        let mut inner = self.inner.lock().expect("run lock");
        inner.inflight -= 1;
        self.progress.notify_all();
    }

    /// Records a completed node and releases newly ready/dead state,
    /// returning how many successors became ready. Caller holds the run
    /// lock and spawns one ticket per newly-ready successor.
    ///
    /// # Errors
    ///
    /// In sanitize mode, a shadow-memory violation (the run aborts).
    #[allow(clippy::too_many_arguments)]
    fn finish_node(
        &self,
        inner: &mut Inner,
        pos: usize,
        out: Tensor,
        start: Duration,
        elapsed: Duration,
        worker: usize,
        stats: IntraOpStats,
        bytes_materialized: u64,
    ) -> Result<usize, TensorError> {
        let node = &self.graph.nodes[pos];
        if let Some(s) = &self.shadow {
            s.write(pos, pos)?;
            for &i in &node.inputs {
                s.end_read(i.0, pos);
            }
        }
        inner.live_bytes += planner_bytes(out.shape());
        inner.peak_live_bytes = inner.peak_live_bytes.max(inner.live_bytes);
        inner.timings[pos] = Some(NodeTiming {
            id: node.id,
            elapsed,
            start,
            worker,
            out_shape: out.shape().to_vec(),
            intra_chunks: stats.chunks,
            intra_participants: stats.max_participants.max(1),
            bytes_materialized,
        });
        inner.values[pos] = Some(out);
        let mut newly_ready = 0;
        for &succ in &self.sched.successors[pos] {
            inner.indegree[succ] -= 1;
            if inner.indegree[succ] == 0 {
                inner.ready.push(ReadyItem {
                    priority: self.sched.priority[succ],
                    pos: succ,
                });
                newly_ready += 1;
            }
        }
        for &input in &node.inputs {
            let i = input.0;
            inner.uses[i] -= 1;
            if inner.uses[i] == 0 && !self.is_output[i] {
                if let Some(dead) = inner.values[i].take() {
                    if let Some(s) = &self.shadow {
                        s.free(i, pos)?;
                    }
                    inner.live_bytes -= planner_bytes(dead.shape());
                    self.arena.reclaim(dead);
                }
            }
        }
        inner.completed += 1;
        Ok(newly_ready)
    }
}

pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::{GraphBuilder, OpKind};

    fn branchy_graph() -> Graph {
        // input fans out to 4 linear branches that are summed pairwise
        let mut b = GraphBuilder::new("branchy");
        let x = b.input(&[4, 32]);
        let branches: Vec<NodeId> = (0..4)
            .map(|i| {
                b.push(
                    OpKind::Linear {
                        in_f: 32,
                        out_f: 32,
                        bias: true,
                    },
                    &[x],
                    &format!("fc{i}"),
                )
                .unwrap()
            })
            .collect();
        let a = b
            .push(OpKind::Add, &[branches[0], branches[1]], "a")
            .unwrap();
        let c = b
            .push(OpKind::Add, &[branches[2], branches[3]], "c")
            .unwrap();
        b.push(OpKind::Add, &[a, c], "sum").unwrap();
        b.finish()
    }

    #[test]
    fn matches_sequential_bit_for_bit() {
        let g = branchy_graph();
        let seq = crate::Interpreter::new(42).run(&g).unwrap();
        for threads in [1, 2, 4] {
            let par = ParallelExecutor::new(42, threads).run(&g).unwrap();
            assert_eq!(seq.outputs.len(), par.outputs.len());
            for ((id_s, t_s), (id_p, t_p)) in seq.outputs.iter().zip(&par.outputs) {
                assert_eq!(id_s, id_p);
                assert_eq!(t_s, t_p, "threads={threads}");
            }
            assert_eq!(par.timings.len(), g.len());
            for (node, timing) in g.iter().zip(&par.timings) {
                assert_eq!(node.id, timing.id);
                assert!(timing.worker < threads.max(1));
            }
        }
    }

    #[test]
    fn intra_op_switch_never_changes_results() {
        let g = branchy_graph();
        let seq = crate::Interpreter::new(42).run(&g).unwrap();
        for threads in [1, 4] {
            for on in [false, true] {
                let par = ParallelExecutor::new(42, threads)
                    .intra_op(on)
                    .run(&g)
                    .unwrap();
                for ((id_s, t_s), (id_p, t_p)) in seq.outputs.iter().zip(&par.outputs) {
                    assert_eq!(id_s, id_p);
                    assert_eq!(t_s, t_p, "threads={threads} intra_op={on}");
                }
            }
        }
    }

    #[test]
    fn executor_is_reusable_across_graphs_and_runs() {
        let exec = ParallelExecutor::new(7, 2);
        let g = branchy_graph();
        let a = exec.run(&g).unwrap();
        let b = exec.run(&g).unwrap();
        assert_eq!(a.outputs[0].1, b.outputs[0].1);
        // and across a different graph
        let mut gb = GraphBuilder::new("other");
        let x = gb.input(&[2, 2]);
        gb.push(OpKind::Relu, &[x], "r").unwrap();
        assert!(exec.run(&gb.finish()).is_ok());
    }

    #[test]
    fn structural_errors_match_sequential_contract() {
        let mut g = branchy_graph();
        g.nodes[2].inputs = vec![NodeId(99)];
        let err = ParallelExecutor::new(0, 2).run(&g).unwrap_err();
        assert!(err.to_string().contains("nonexistent node %99"), "{err}");

        let mut g2 = branchy_graph();
        g2.nodes[1].id = NodeId(3);
        let err2 = ParallelExecutor::new(0, 2).run(&g2).unwrap_err();
        assert!(err2.to_string().contains("position 1 has id %3"), "{err2}");
    }

    #[test]
    fn cycle_is_rejected_not_deadlocked() {
        let mut g = branchy_graph();
        let last = g.len() - 1;
        g.nodes[last].inputs = vec![NodeId(last)]; // self-loop
        let err = ParallelExecutor::new(0, 2).run(&g).unwrap_err();
        assert!(err.to_string().contains("dependency cycle"), "{err}");
    }

    #[test]
    fn create_run_drop_cycle_never_joins_pool_from_a_worker() {
        // Regression: a ticket that spawned successors used to hold its
        // upgraded Arc<ThreadPool> past the point where the waiter could
        // return; dropping the executor right after run() then let a
        // worker drop — and self-join — the pool ("Resource deadlock
        // avoided"). Worker panics are caught by the pool, so detect via
        // a counting panic hook instead of the run result.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static JOIN_PANICS: AtomicUsize = AtomicUsize::new(0);
        std::panic::set_hook(Box::new(|info| {
            if info.to_string().contains("failed to join thread") {
                JOIN_PANICS.fetch_add(1, Ordering::SeqCst);
            }
        }));
        let g = branchy_graph();
        for _ in 0..100 {
            // executor (and pool) dropped immediately after the run
            ParallelExecutor::new(1, 4).run(&g).unwrap();
        }
        std::thread::sleep(Duration::from_millis(20));
        let _ = std::panic::take_hook(); // restore the default hook
        assert_eq!(JOIN_PANICS.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn peak_live_bytes_is_tracked() {
        let g = branchy_graph();
        let t = ParallelExecutor::new(0, 2).run(&g).unwrap();
        assert!(t.peak_live_bytes >= 4 * 32 * 4); // at least one activation
    }
}
