//! Liveness-based buffer planning and the runtime storage arena.
//!
//! [`BufferPlan`] is the static half: a liveness pass over a [`Graph`]
//! computing consumer counts, last uses, and the planned peak of a
//! drop-at-last-use execution. [`Arena`] is the dynamic half: a
//! size-bucketed pool of freed `Vec<f32>` backing buffers that the
//! executors recycle for weight materialization instead of hitting the
//! allocator once per parameterized node.

use std::collections::BTreeMap;
use std::sync::Mutex;

use ngb_graph::Graph;
use ngb_tensor::Tensor;

/// Static liveness analysis of one graph.
#[derive(Debug, Clone)]
pub struct BufferPlan {
    /// Consumer count per node (one per consumption, so a node used twice
    /// by the same consumer counts twice). Zero means graph output.
    pub uses: Vec<usize>,
    /// Position of each node's last consumer (`None` for outputs).
    pub last_use: Vec<Option<usize>>,
    /// Peak live activation bytes of a sequential drop-at-last-use run
    /// (f32-equivalent metric: elements × 4).
    pub planned_peak_bytes: usize,
    /// Sum of all activation bytes — what a run that never frees holds.
    pub naive_bytes: usize,
    /// Input references pointing outside the graph that the liveness pass
    /// had to skip. Nonzero means the graph is corrupt and this plan's
    /// counts/lifetimes describe only the in-range structure — check
    /// [`BufferPlan::is_complete`] before trusting the plan.
    pub dropped_edges: usize,
}

impl BufferPlan {
    /// Runs the liveness pass. Out-of-range input ids are ignored (corrupt
    /// graphs are the executors' concern; the plan stays total).
    pub fn new(graph: &Graph) -> BufferPlan {
        let len = graph.len();
        let mut uses = vec![0usize; len];
        let mut last_use: Vec<Option<usize>> = vec![None; len];
        let mut dropped_edges = 0usize;
        for (pos, node) in graph.iter().enumerate() {
            for &i in &node.inputs {
                if i.0 < len {
                    uses[i.0] += 1;
                    last_use[i.0] = Some(pos);
                } else {
                    dropped_edges += 1;
                }
            }
        }

        let bytes: Vec<usize> = graph
            .iter()
            .map(|n| ngb_tensor::num_elements(&n.out_shape) * 4)
            .collect();
        let naive_bytes = bytes.iter().sum();

        // simulate the sequential engine: allocate at definition, free
        // after the last consumer executes
        let mut remaining = uses.clone();
        let mut live = 0usize;
        let mut planned_peak_bytes = 0usize;
        for (pos, node) in graph.iter().enumerate() {
            live += bytes[pos];
            planned_peak_bytes = planned_peak_bytes.max(live);
            for &i in &node.inputs {
                if i.0 < len && i.0 != pos {
                    remaining[i.0] -= 1;
                    if remaining[i.0] == 0 {
                        live -= bytes[i.0];
                    }
                }
            }
        }

        BufferPlan {
            uses,
            last_use,
            planned_peak_bytes,
            naive_bytes,
            dropped_edges,
        }
    }

    /// Whether the liveness pass covered every input edge (false means the
    /// graph referenced nodes outside itself and the plan is partial).
    pub fn is_complete(&self) -> bool {
        self.dropped_edges == 0
    }

    /// Whether node `i` is a graph output (no consumers).
    pub fn is_output(&self, i: usize) -> bool {
        self.uses[i] == 0
    }

    /// How much smaller the planned peak is than never freeing
    /// (1.0 = no savings; higher is better).
    pub fn reuse_factor(&self) -> f64 {
        if self.planned_peak_bytes == 0 {
            1.0
        } else {
            self.naive_bytes as f64 / self.planned_peak_bytes as f64
        }
    }
}

/// Counters describing one run's use of an [`Arena`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// `take` calls served from a recycled buffer.
    pub hits: u64,
    /// `take` calls that had to allocate fresh.
    pub misses: u64,
    /// Dead tensors whose storage was recovered into the arena.
    pub reclaimed: u64,
    /// Bytes currently parked in the arena's free lists.
    pub retained_bytes: usize,
}

/// A thread-safe pool of freed f32 buffers, bucketed by power-of-two
/// capacity.
///
/// Invariant: every buffer parked in bucket `b` has capacity ≥ `b`
/// (buffers land in the largest power-of-two bucket not exceeding their
/// capacity), and `take(n)` only searches buckets ≥ `n` rounded up — so a
/// hit always has enough capacity.
#[derive(Debug, Default)]
pub struct Arena {
    inner: Mutex<ArenaInner>,
}

#[derive(Debug, Default)]
struct ArenaInner {
    buckets: BTreeMap<usize, Vec<Vec<f32>>>,
    stats: ArenaStats,
}

/// Cap on bytes parked in a single arena; beyond it, freed buffers go back
/// to the allocator. Generous for the benchmark's models while bounding
/// worst-case retention.
const MAX_RETAINED_BYTES: usize = 256 << 20;

impl Arena {
    /// Fetches a cleared buffer with capacity ≥ `n`, recycling a freed one
    /// when possible.
    pub fn take(&self, n: usize) -> Vec<f32> {
        if n == 0 {
            return Vec::new();
        }
        let want = n.next_power_of_two();
        let mut inner = self.inner.lock().expect("arena lock");
        let found = inner
            .buckets
            .range(want..)
            .find(|(_, q)| !q.is_empty())
            .map(|(&b, _)| b);
        match found {
            Some(bucket) => {
                let buf = inner
                    .buckets
                    .get_mut(&bucket)
                    .and_then(Vec::pop)
                    .expect("bucket nonempty by find");
                inner.stats.retained_bytes -= buf.capacity() * 4;
                inner.stats.hits += 1;
                buf
            }
            None => {
                inner.stats.misses += 1;
                Vec::with_capacity(n)
            }
        }
    }

    /// Parks a freed buffer for reuse (dropped instead when the arena is
    /// at its retention cap or the buffer has no capacity).
    pub fn give(&self, mut buf: Vec<f32>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("arena lock");
        if inner.stats.retained_bytes + cap * 4 > MAX_RETAINED_BYTES {
            return; // lock released, then buf drops to the allocator
        }
        buf.clear();
        // floor to power of two so the bucket key never overstates capacity
        let bucket = prev_power_of_two(cap);
        inner.stats.retained_bytes += cap * 4;
        inner.buckets.entry(bucket).or_default().push(buf);
    }

    /// Recovers a dead tensor's storage into the arena when this was the
    /// last reference to a full contiguous f32 buffer; otherwise the
    /// tensor just drops.
    pub fn reclaim(&self, dead: Tensor) {
        if let Some(buf) = dead.try_reclaim_f32() {
            {
                let mut inner = self.inner.lock().expect("arena lock");
                inner.stats.reclaimed += 1;
            }
            self.give(buf);
        }
    }

    /// Snapshot of the arena's counters.
    pub fn stats(&self) -> ArenaStats {
        self.inner.lock().expect("arena lock").stats
    }
}

fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        n
    } else {
        n.next_power_of_two() >> 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::{GraphBuilder, OpKind};

    #[test]
    fn plan_matches_graph_planner_on_a_chain() {
        let mut b = GraphBuilder::new("chain");
        let mut cur = b.input(&[8, 8]);
        for i in 0..4 {
            cur = b.push(OpKind::Gelu, &[cur], &format!("g{i}")).unwrap();
        }
        let g = b.finish();
        let plan = BufferPlan::new(&g);
        assert_eq!(plan.planned_peak_bytes, g.peak_activation_bytes());
        assert_eq!(plan.naive_bytes, 5 * 8 * 8 * 4);
        assert!(plan.reuse_factor() > 2.0);
        assert_eq!(plan.uses, vec![1, 1, 1, 1, 0]);
        assert_eq!(
            plan.last_use,
            vec![Some(1), Some(2), Some(3), Some(4), None]
        );
        assert!(plan.is_output(4));
        assert!(!plan.is_output(0));
    }

    #[test]
    fn out_of_range_edges_are_counted_not_silently_dropped() {
        let mut b = GraphBuilder::new("chain");
        let x = b.input(&[4]);
        b.push(OpKind::Gelu, &[x], "g").unwrap();
        let mut g = b.finish();
        assert!(BufferPlan::new(&g).is_complete());

        g.nodes[1].inputs = vec![ngb_graph::NodeId(0), ngb_graph::NodeId(9)];
        let plan = BufferPlan::new(&g);
        assert!(!plan.is_complete());
        assert_eq!(plan.dropped_edges, 1);
        // the in-range edge still counts
        assert_eq!(plan.uses[0], 1);
    }

    #[test]
    fn take_returns_cleared_buffer_with_enough_capacity() {
        let arena = Arena::default();
        let mut big = Vec::with_capacity(100);
        big.push(1.0f32);
        arena.give(big);
        // smaller request is served by the bigger parked buffer
        let buf = arena.take(50);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 64, "capacity {}", buf.capacity());
        let stats = arena.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.retained_bytes, 0);
        // nothing left: next take allocates fresh
        let fresh = arena.take(10);
        assert!(fresh.capacity() >= 10);
        assert_eq!(arena.stats().misses, 1);
    }

    #[test]
    fn undersized_parked_buffers_are_not_returned() {
        let arena = Arena::default();
        arena.give(Vec::with_capacity(16));
        let buf = arena.take(64);
        assert!(buf.capacity() >= 64);
        assert_eq!(arena.stats().misses, 1);
        assert_eq!(arena.stats().hits, 0);
    }

    #[test]
    fn reclaim_recovers_unique_contiguous_storage_only() {
        let arena = Arena::default();
        let t = Tensor::zeros(&[4, 4]);
        arena.reclaim(t);
        assert_eq!(arena.stats().reclaimed, 1);
        assert!(arena.take(16).capacity() >= 16);
        assert_eq!(arena.stats().hits, 1);

        // a live clone blocks reclamation
        let t = Tensor::zeros(&[4, 4]);
        let alias = t.clone();
        arena.reclaim(t);
        assert_eq!(arena.stats().reclaimed, 1);
        drop(alias);
    }

    #[test]
    fn zero_sized_requests_do_not_touch_the_pool() {
        let arena = Arena::default();
        assert_eq!(arena.take(0).capacity(), 0);
        arena.give(Vec::new());
        let stats = arena.stats();
        assert_eq!(stats.hits + stats.misses, 0);
        assert_eq!(stats.retained_bytes, 0);
    }
}
