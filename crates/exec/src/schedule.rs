//! Deterministic dependency scheduling for operator graphs.
//!
//! [`Schedule`] converts a [`Graph`] into the data a parallel executor
//! needs: per-node dependency counts, successor lists, a critical-path
//! priority (so the longest chain of expensive work starts first), and the
//! Kahn wavefront decomposition that bounds the graph's exploitable
//! inter-operator parallelism.

use ngb_graph::{Graph, NodeId};

/// Static schedule of one graph: dependency structure plus wavefronts.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Number of distinct in-graph producers each node waits on
    /// (duplicate uses of the same producer count once).
    pub indegree: Vec<usize>,
    /// For each node, the nodes that consume it (one entry per consuming
    /// node, deduplicated per consumer).
    pub successors: Vec<Vec<usize>>,
    /// Critical-path-to-sink weight of each node under the device-independent
    /// cost model: a node's own cost plus the costliest downstream chain.
    /// Higher means "on the longer critical path" and should run first.
    pub priority: Vec<f64>,
    /// Kahn levels: wavefront `k` holds every node whose longest dependency
    /// chain has `k` predecessors. All nodes of one wavefront could run
    /// concurrently with unlimited workers.
    pub wavefronts: Vec<Vec<NodeId>>,
    /// Input references pointing outside the graph that the constructor
    /// had to drop. Nonzero means the graph is corrupt and this schedule
    /// covers only the in-range dependency structure — the `ngb-analyze`
    /// hazard pass and `ngb-sanitize` refuse to certify such a schedule.
    pub dropped_edges: usize,
    scheduled: usize,
    len: usize,
}

impl Schedule {
    /// Builds the schedule. Robust to corrupt graphs: out-of-range edges
    /// are ignored and cycles leave nodes unscheduled — check
    /// [`Schedule::is_complete`] before executing.
    pub fn new(graph: &Graph) -> Schedule {
        let len = graph.len();
        let mut indegree = vec![0usize; len];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); len];
        let mut dropped_edges = 0usize;
        for (pos, node) in graph.iter().enumerate() {
            dropped_edges += node.inputs.iter().filter(|i| i.0 >= len).count();
            // self-edges stay in: they give the node an indegree that can
            // never drain, so the cycle shows up as an incomplete schedule
            let mut deps: Vec<usize> = node
                .inputs
                .iter()
                .map(|i| i.0)
                .filter(|&i| i < len)
                .collect();
            deps.sort_unstable();
            deps.dedup();
            indegree[pos] = deps.len();
            for dep in deps {
                successors[dep].push(pos);
            }
        }

        // critical path to sink; ids are topological for well-formed
        // graphs, so a reverse sweep sees every successor first (corrupt
        // graphs get an approximation, which is all a heuristic needs)
        let mut priority = vec![0.0f64; len];
        for pos in (0..len).rev() {
            let downstream = successors[pos]
                .iter()
                .map(|&s| priority[s])
                .fold(0.0f64, f64::max);
            priority[pos] = node_weight(graph, pos) + downstream;
        }

        // Kahn wavefronts
        let mut remaining = indegree.clone();
        let mut current: Vec<usize> = (0..len).filter(|&i| remaining[i] == 0).collect();
        let mut wavefronts = Vec::new();
        let mut scheduled = 0;
        while !current.is_empty() {
            scheduled += current.len();
            let mut next = Vec::new();
            for &u in &current {
                for &s in &successors[u] {
                    remaining[s] -= 1;
                    if remaining[s] == 0 {
                        next.push(s);
                    }
                }
            }
            next.sort_unstable();
            wavefronts.push(current.iter().map(|&i| NodeId(i)).collect());
            current = next;
        }

        Schedule {
            indegree,
            successors,
            priority,
            wavefronts,
            dropped_edges,
            scheduled,
            len,
        }
    }

    /// Whether every node was scheduled (false means a cycle or self-loop).
    pub fn is_complete(&self) -> bool {
        self.scheduled == self.len
    }

    /// Number of wavefronts == length of the longest dependency chain.
    pub fn depth(&self) -> usize {
        self.wavefronts.len()
    }

    /// Widest wavefront: the graph's peak inter-operator parallelism.
    pub fn max_width(&self) -> usize {
        self.wavefronts.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean wavefront width: average exploitable parallelism over the
    /// whole graph (1.0 for a pure chain).
    pub fn mean_width(&self) -> f64 {
        if self.wavefronts.is_empty() {
            0.0
        } else {
            self.scheduled as f64 / self.wavefronts.len() as f64
        }
    }

    /// All wavefront statistics in one value — the stable extractor the
    /// `ngb-regress` baseline snapshots record.
    pub fn stats(&self) -> ScheduleStats {
        ScheduleStats {
            depth: self.depth(),
            max_width: self.max_width(),
            mean_width: self.mean_width(),
            complete: self.is_complete(),
        }
    }
}

/// Summary of a [`Schedule`]'s wavefront decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleStats {
    /// Number of wavefronts (longest dependency chain).
    pub depth: usize,
    /// Widest wavefront.
    pub max_width: usize,
    /// Mean wavefront width.
    pub mean_width: f64,
    /// Whether every node was scheduled (no cycles).
    pub complete: bool,
}

/// Scheduling weight of one node: FLOPs plus logical memory traffic, with
/// a floor of 1 so metadata ops still contribute chain length. Nodes with
/// out-of-range inputs (corrupt graphs) get the floor weight instead of
/// panicking inside the cost model.
fn node_weight(graph: &Graph, pos: usize) -> f64 {
    let node = &graph.nodes[pos];
    let mut input_shapes = Vec::with_capacity(node.inputs.len());
    for &i in &node.inputs {
        match graph.nodes.get(i.0) {
            Some(producer) => input_shapes.push(producer.out_shape.clone()),
            None => return 1.0,
        }
    }
    let c = ngb_graph::op_cost(&node.op, &input_shapes, &node.out_shape);
    (c.flops + c.bytes_read + c.bytes_written).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::{GraphBuilder, OpKind};

    /// A diamond: input feeds two parallel gelu branches that re-join.
    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("diamond");
        let x = b.input(&[4, 4]);
        let l = b.push(OpKind::Gelu, &[x], "left").unwrap();
        let r = b.push(OpKind::Relu, &[x], "right").unwrap();
        b.push(OpKind::Add, &[l, r], "join").unwrap();
        b.finish()
    }

    #[test]
    fn wavefronts_of_a_diamond() {
        let s = Schedule::new(&diamond());
        assert!(s.is_complete());
        assert_eq!(s.depth(), 3);
        assert_eq!(s.max_width(), 2);
        assert_eq!(s.wavefronts[0], vec![NodeId(0)]);
        assert_eq!(s.wavefronts[1], vec![NodeId(1), NodeId(2)]);
        assert_eq!(s.wavefronts[2], vec![NodeId(3)]);
        assert!((s.mean_width() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stats_mirror_the_accessors() {
        let s = Schedule::new(&diamond());
        let st = s.stats();
        assert_eq!(st.depth, s.depth());
        assert_eq!(st.max_width, s.max_width());
        assert!((st.mean_width - s.mean_width()).abs() < 1e-12);
        assert!(st.complete);
    }

    #[test]
    fn indegree_counts_distinct_producers() {
        let mut b = GraphBuilder::new("square");
        let x = b.input(&[4]);
        b.push(OpKind::Mul, &[x, x], "sq").unwrap(); // same producer twice
        let s = Schedule::new(&b.finish());
        assert_eq!(s.indegree, vec![0, 1]);
        assert_eq!(s.successors[0], vec![1]);
        assert!(s.is_complete());
    }

    #[test]
    fn priority_decreases_along_the_chain() {
        let mut b = GraphBuilder::new("chain");
        let x = b.input(&[8, 8]);
        let a = b.push(OpKind::Gelu, &[x], "a").unwrap();
        b.push(OpKind::Gelu, &[a], "b").unwrap();
        let s = Schedule::new(&b.finish());
        assert!(s.priority[0] > s.priority[1]);
        assert!(s.priority[1] > s.priority[2]);
        assert!(s.priority[2] >= 1.0);
    }

    #[test]
    fn costlier_branch_gets_higher_priority() {
        let mut b = GraphBuilder::new("branchy");
        let x = b.input(&[4, 64]);
        // cheap branch: one activation; costly branch: a big linear
        let cheap = b.push(OpKind::Relu, &[x], "cheap").unwrap();
        let costly = b
            .push(
                OpKind::Linear {
                    in_f: 64,
                    out_f: 64,
                    bias: false,
                },
                &[x],
                "costly",
            )
            .unwrap();
        let j = b.push(OpKind::Add, &[cheap, costly], "join").unwrap();
        let _ = j;
        let s = Schedule::new(&b.finish());
        assert!(
            s.priority[costly.0] > s.priority[cheap.0],
            "linear branch should outrank relu branch"
        );
    }

    #[test]
    fn corrupt_graphs_are_detected_not_panicked_on() {
        // out-of-range edge: ignored, rest schedules
        let mut g = diamond();
        g.nodes[3].inputs = vec![NodeId(1), NodeId(99)];
        let s = Schedule::new(&g);
        assert!(s.is_complete());

        // self-loop: node never becomes ready
        let mut g2 = diamond();
        g2.nodes[3].inputs = vec![NodeId(3)];
        let s2 = Schedule::new(&g2);
        assert!(!s2.is_complete());
    }

    #[test]
    fn out_of_range_edges_are_counted_not_silently_dropped() {
        assert_eq!(Schedule::new(&diamond()).dropped_edges, 0);

        let mut g = diamond();
        g.nodes[3].inputs = vec![NodeId(1), NodeId(99), NodeId(77)];
        let s = Schedule::new(&g);
        // the in-range structure still schedules, but the corruption is
        // surfaced instead of masked
        assert!(s.is_complete());
        assert_eq!(s.dropped_edges, 2);
    }

    #[test]
    fn empty_graph_schedules_trivially() {
        let s = Schedule::new(&Graph::default());
        assert!(s.is_complete());
        assert_eq!(s.depth(), 0);
        assert_eq!(s.max_width(), 0);
        assert_eq!(s.mean_width(), 0.0);
    }
}
