//! A reusable std-only worker thread pool.
//!
//! Plain `std::thread` workers draining a `Mutex<VecDeque>` job queue under
//! a `Condvar`. Jobs receive their worker's index (useful for trace
//! attribution) and run under `catch_unwind`, so a panicking job poisons
//! neither the queue nor its worker — the pool stays usable.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce(usize) + Send + 'static>;

struct Shared {
    state: Mutex<State>,
    work_available: Condvar,
    idle: Condvar,
}

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
    running: usize,
}

/// A fixed-size pool of named worker threads.
///
/// Dropping the pool drains the remaining queue, then joins every worker.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool of `threads.max(1)` workers named `ngb-worker-N`.
    pub fn new(threads: usize) -> ThreadPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
                running: 0,
            }),
            work_available: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ngb-worker-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; some worker will run it with its worker index.
    /// A panic inside the job is swallowed (the worker survives) — jobs
    /// that need failure reporting should communicate through channels or
    /// shared state.
    pub fn spawn(&self, job: impl FnOnce(usize) + Send + 'static) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.queue.push_back(Box::new(job));
        }
        self.shared.work_available.notify_one();
    }

    /// Enqueues a job at the *front* of the queue, ahead of pending work.
    /// Intra-op helper chunks use this so they start before queued node
    /// tickets: the node that spawned them is already executing, and its
    /// successors cannot run until it finishes anyway.
    pub fn spawn_front(&self, job: impl FnOnce(usize) + Send + 'static) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.queue.push_front(Box::new(job));
        }
        self.shared.work_available.notify_one();
    }

    /// Number of jobs queued but not yet picked up by a worker. A
    /// point-in-time backpressure signal for callers reporting load.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("pool lock").queue.len()
    }

    /// Number of jobs currently executing on workers.
    pub fn in_flight(&self) -> usize {
        self.shared.state.lock().expect("pool lock").running
    }

    /// Blocks until every queued and running job has finished. Workers stay
    /// alive afterwards (unlike `Drop`), so the pool remains usable — this
    /// is the graceful-drain half of shutdown, letting a server quiesce
    /// in-flight work before releasing its last pool handle.
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().expect("pool lock");
        while !state.queue.is_empty() || state.running > 0 {
            state = self.shared.idle.wait(state).expect("pool lock");
        }
    }

    /// Graceful shutdown: drains all pending and in-flight work, then wakes
    /// workers so they exit instead of sleeping on the empty queue. Callers
    /// must stop spawning first — a job enqueued after workers have exited
    /// only runs if a live worker is still draining. `Drop` joins the
    /// (already finished) workers cheaply afterwards.
    pub fn shutdown(&self) {
        self.drain();
        self.shared.state.lock().expect("pool lock").shutdown = true;
        self.shared.work_available.notify_all();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool lock").shutdown = true;
        self.shared.work_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.running += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work_available.wait(state).expect("pool lock");
            }
        };
        // isolate panics: the job's own coordination layer reports failure
        let _ = catch_unwind(AssertUnwindSafe(|| job(idx)));
        let mut state = shared.state.lock().expect("pool lock");
        state.running -= 1;
        if state.queue.is_empty() && state.running == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_jobs_on_all_workers() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.spawn(move |worker| {
                assert!(worker < 4);
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(worker).unwrap();
            });
        }
        let workers: Vec<usize> = rx.iter().take(64).collect();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(workers.len(), 64);
    }

    #[test]
    fn workers_run_jobs_concurrently() {
        // all four jobs rendezvous at one barrier: this completes only if
        // four workers are genuinely in flight at the same time (a pool
        // that serialized jobs would deadlock here)
        let pool = ThreadPool::new(4);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let (tx, rx) = mpsc::channel();
        for _ in 0..4 {
            let barrier = Arc::clone(&barrier);
            let tx = tx.clone();
            pool.spawn(move |worker| {
                barrier.wait();
                tx.send(worker).unwrap();
            });
        }
        let mut workers: Vec<usize> = rx.iter().take(4).collect();
        workers.sort_unstable();
        assert_eq!(workers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_thread_request_still_gets_one_worker() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = mpsc::channel();
        pool.spawn(move |w| tx.send(w).unwrap());
        assert_eq!(rx.recv().unwrap(), 0);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = ThreadPool::new(1);
        pool.spawn(|_| panic!("job blew up"));
        // the same single worker must still process later jobs
        let (tx, rx) = mpsc::channel();
        pool.spawn(move |w| tx.send(w).unwrap());
        assert_eq!(rx.recv().unwrap(), 0);
    }

    #[test]
    fn spawn_front_jumps_the_queue() {
        let pool = ThreadPool::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (tx, rx) = mpsc::channel();
        // occupy the single worker until both jobs are queued
        pool.spawn(move |_| gate_rx.recv().unwrap());
        let tx_a = tx.clone();
        pool.spawn(move |_| tx_a.send("back").unwrap());
        let tx_b = tx;
        pool.spawn_front(move |_| tx_b.send("front").unwrap());
        gate_tx.send(()).unwrap();
        assert_eq!(rx.recv().unwrap(), "front");
        assert_eq!(rx.recv().unwrap(), "back");
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..32 {
                let counter = Arc::clone(&counter);
                pool.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop joins after the queue drains
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn counters_track_queue_and_in_flight() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(pool.in_flight(), 0);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.spawn(move |_| {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        });
        started_rx.recv().unwrap();
        // the single worker is now occupied; queue two more behind it
        pool.spawn(|_| {});
        pool.spawn(|_| {});
        assert_eq!(pool.in_flight(), 1);
        assert_eq!(pool.queue_depth(), 2);
        gate_tx.send(()).unwrap();
        pool.drain();
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn drain_keeps_pool_usable() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.spawn(move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        // drain (unlike shutdown) leaves workers alive for more jobs
        let (tx, rx) = mpsc::channel();
        pool.spawn(move |w| tx.send(w).unwrap());
        assert!(rx.recv().unwrap() < 2);
    }

    #[test]
    fn shutdown_runs_every_queued_job_before_returning() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.spawn(move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
        drop(pool); // join is instant: workers already exited
    }

    #[test]
    fn shutdown_races_concurrent_spawns() {
        // four spawner threads hammer the pool while the Arc handles drop
        // at staggered times; whichever thread drops last runs the
        // shutdown-join mid-traffic. Every spawned job must still execute
        // (drop drains the queue) with no deadlock or lost job.
        for round in 0..8usize {
            let pool = Arc::new(ThreadPool::new(2));
            let counter = Arc::new(AtomicUsize::new(0));
            let mut spawners = Vec::new();
            for t in 0..4usize {
                let pool = Arc::clone(&pool);
                let counter = Arc::clone(&counter);
                spawners.push(std::thread::spawn(move || {
                    for _ in 0..(8 * (t + 1) + round) {
                        let counter = Arc::clone(&counter);
                        pool.spawn(move |_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    // the thread's pool handle drops here
                }));
            }
            drop(pool); // main's handle is gone before the spawners finish
            for s in spawners {
                s.join().unwrap();
            }
            let total: usize = (0..4).map(|t| 8 * (t + 1) + round).sum();
            assert_eq!(counter.load(Ordering::SeqCst), total, "round {round}");
        }
    }
}
