//! Graph interpreter: executes an operator graph on real tensors.
//!
//! Weights are materialized lazily from a seeded RNG keyed by node id, so a
//! graph is a complete, reproducible executable artifact. The interpreter
//! also records per-node wall-clock time, which is the *measured* (host
//! CPU) profiling mode of the benchmark.
//!
//! Execution is engine-selectable: [`Engine::Sequential`] runs nodes one by
//! one on the calling thread, [`Engine::Parallel`] hands the graph to the
//! [`crate::ParallelExecutor`]. Both engines share the same per-node kernel
//! dispatch ([`execute_node`]) and per-node RNG seeding, so their outputs
//! are bit-identical.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ngb_tensor::random::TensorRng;
use ngb_tensor::{Tensor, TensorError};

use ngb_graph::{Graph, Node, NodeId, OpKind};
use ngb_ops::Quant;

use crate::bufplan::{Arena, ArenaStats};

/// Which execution engine [`Interpreter::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// One node at a time on the calling thread.
    Sequential,
    /// Dependency-scheduled execution on a pool of N worker threads
    /// (see [`crate::ParallelExecutor`]). `Parallel(1)` still exercises the
    /// scheduler and pool with a single worker.
    Parallel(usize),
}

impl Engine {
    /// A parallel engine sized by [`crate::default_threads`]
    /// (`NGB_THREADS` or the host's available parallelism).
    pub fn auto() -> Engine {
        Engine::Parallel(crate::default_threads())
    }

    /// Worker-thread count of this engine (1 for sequential).
    pub fn threads(&self) -> usize {
        match *self {
            Engine::Sequential => 1,
            Engine::Parallel(n) => n.max(1),
        }
    }
}

/// Per-node record of one executed inference.
#[derive(Debug, Clone)]
pub struct NodeTiming {
    /// Executed node.
    pub id: NodeId,
    /// Wall-clock execution time of the kernel on the host.
    pub elapsed: Duration,
    /// Offset of the kernel's start from the beginning of the run (lets
    /// traces reconstruct the concurrency structure of a parallel run).
    pub start: Duration,
    /// Worker thread that executed the node (0 for sequential runs).
    pub worker: usize,
    /// Actual output shape (may differ from the static shape after dynamic
    /// ops like NMS).
    pub out_shape: Vec<usize>,
    /// Intra-op chunks the node's kernels dispatched (1 per serial kernel
    /// call; a pure function of shape, never of thread count).
    pub intra_chunks: usize,
    /// Maximum number of threads that cooperated on one of the node's
    /// intra-op dispatches (1 when everything ran serially).
    pub intra_participants: usize,
    /// Bytes of dense copies the node's kernels materialized from strided
    /// views (`Tensor::contiguous` copy path, sampled from the executing
    /// thread's counter). Zero for every layout chain the strided kernels
    /// consume in place.
    pub bytes_materialized: u64,
}

/// Result of executing a graph.
#[derive(Debug)]
pub struct ExecutionTrace {
    /// Values of the graph's terminal nodes (no consumers), in id order.
    pub outputs: Vec<(NodeId, Tensor)>,
    /// Per-node timings in node-id order.
    pub timings: Vec<NodeTiming>,
    /// High-water mark of live activation memory during the run, in the
    /// planner's f32-equivalent metric (elements × 4 bytes, actual shapes).
    /// For sequential runs this is bounded by
    /// [`Graph::peak_activation_bytes`]; parallel runs may exceed it because
    /// concurrent wavefronts keep more values live at once.
    pub peak_live_bytes: usize,
    /// Storage-recycling counters of the run's buffer arena.
    pub arena: ArenaStats,
}

impl ExecutionTrace {
    /// Total measured execution time (sum of per-node kernel times; for a
    /// parallel run this is the *work*, not the wall-clock).
    pub fn total_time(&self) -> Duration {
        self.timings.iter().map(|t| t.elapsed).sum()
    }

    /// Wall-clock span of the run: latest kernel end minus first start.
    pub fn span(&self) -> Duration {
        self.timings
            .iter()
            .map(|t| t.start + t.elapsed)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Total bytes of dense copies materialized from strided views across
    /// the run (sum of per-node counters).
    pub fn bytes_materialized(&self) -> u64 {
        self.timings.iter().map(|t| t.bytes_materialized).sum()
    }
}

/// Executes graphs with reproducible synthetic weights.
#[derive(Debug, Clone)]
pub struct Interpreter {
    seed: u64,
    preflight: bool,
    engine: Engine,
    intra_op: Option<bool>,
    sanitize: Option<bool>,
    quant: Quant,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter::new(0x5eed)
    }
}

impl Interpreter {
    /// Creates a sequential interpreter whose weights derive from `seed`.
    pub fn new(seed: u64) -> Interpreter {
        Interpreter {
            seed,
            preflight: false,
            engine: Engine::Sequential,
            intra_op: None,
            sanitize: None,
            quant: crate::env_quant(Quant::None),
        }
    }

    /// Selects the execution engine (builder style).
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Interpreter {
        self.engine = engine;
        self
    }

    /// Forces intra-op parallelism on or off for the parallel engine.
    /// The default (`None`) honors `NGB_INTRAOP` (on when unset). The
    /// switch never changes results — chunk partitioning is a pure
    /// function of shape — only where chunks execute.
    #[must_use]
    pub fn intra_op(mut self, enabled: bool) -> Interpreter {
        self.intra_op = Some(enabled);
        self
    }

    /// The effective intra-op setting (explicit override or `NGB_INTRAOP`).
    pub fn intra_op_enabled(&self) -> bool {
        self.intra_op.unwrap_or_else(|| crate::env_intraop(true))
    }

    /// Forces the shadow-memory execution sanitizer on or off. The default
    /// (`None`) honors `NGB_SANITIZE` (off when unset). When enabled, every
    /// value-table access is checked against a [`crate::ShadowMemory`] and
    /// hazards fail the run with the offending node ids and an access
    /// trace; results are unchanged (the sanitizer only observes).
    #[must_use]
    pub fn sanitize(mut self, enabled: bool) -> Interpreter {
        self.sanitize = Some(enabled);
        self
    }

    /// The effective sanitizer setting (explicit override or `NGB_SANITIZE`).
    pub fn sanitize_enabled(&self) -> bool {
        self.sanitize.unwrap_or_else(|| crate::env_sanitize(false))
    }

    /// Selects the weight-quantization mode for GEMM-family layers. The
    /// default honors `NGB_QUANT` (`none` when unset). `Quant::Int8`
    /// quantizes Linear / GPT-2 Conv1D weights per output channel at
    /// execution time; all other operators are unaffected.
    #[must_use]
    pub fn quantize(mut self, quant: Quant) -> Interpreter {
        self.quant = quant;
        self
    }

    /// The effective weight-quantization mode.
    pub fn quant(&self) -> Quant {
        self.quant
    }

    /// The RNG seed this interpreter derives synthetic weights and
    /// inputs from (what [`synth_input`] needs to reproduce them).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Enables (or disables) the opt-in preflight check: before executing,
    /// the graph's structural invariants are verified and every node's
    /// stored shape is re-inferred, so corruption surfaces as one clear
    /// [`TensorError`] instead of a mid-execution kernel failure.
    #[must_use]
    pub fn preflight(mut self, enabled: bool) -> Interpreter {
        self.preflight = enabled;
        self
    }

    /// Runs the preflight checks on `graph` without executing it.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect or shape-conformance mismatch.
    pub fn check(&self, graph: &Graph) -> Result<(), TensorError> {
        preflight_check(graph)
    }

    /// Runs the graph end to end with synthetic inputs, timing every node.
    ///
    /// # Errors
    ///
    /// Propagates any kernel error (a structurally valid graph built through
    /// [`ngb_graph::GraphBuilder`] executes without error).
    pub fn run(&self, graph: &Graph) -> Result<ExecutionTrace, TensorError> {
        self.run_with_inputs(graph, &HashMap::new())
    }

    /// Runs the graph, overriding selected input nodes with caller-provided
    /// tensors (e.g. preprocessed dataset samples).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors, including shape mismatches from overridden
    /// inputs.
    pub fn run_with_inputs(
        &self,
        graph: &Graph,
        inputs: &HashMap<NodeId, Tensor>,
    ) -> Result<ExecutionTrace, TensorError> {
        if self.preflight {
            self.check(graph)?;
        }
        match self.engine {
            Engine::Sequential => self.run_sequential(graph, inputs),
            Engine::Parallel(n) => crate::ParallelExecutor::new(self.seed, n.max(1))
                .intra_op(self.intra_op_enabled())
                .sanitize(self.sanitize_enabled())
                .quantize(self.quant)
                .run_with_inputs(graph, inputs),
        }
    }

    fn run_sequential(
        &self,
        graph: &Graph,
        inputs: &HashMap<NodeId, Tensor>,
    ) -> Result<ExecutionTrace, TensorError> {
        let len = graph.len();
        let mut values: Vec<Option<Tensor>> = vec![None; len];
        let mut timings = Vec::with_capacity(len);
        // remaining-consumer counts drive drop-at-last-use; a node that
        // starts at zero is an output and is never dropped
        let mut uses = vec![0usize; len];
        for node in graph.iter() {
            for &i in &node.inputs {
                match uses.get_mut(i.0) {
                    Some(slot) => *slot += 1,
                    None => {
                        return Err(TensorError::InvalidArgument(format!(
                            "node {} consumes nonexistent node {i}",
                            node.id
                        )))
                    }
                }
            }
        }
        let is_output: Vec<bool> = uses.iter().map(|&u| u == 0).collect();
        let arena = Arena::default();
        let shadow = self
            .sanitize_enabled()
            .then(|| crate::ShadowMemory::new(len));
        let mut live_bytes = 0usize;
        let mut peak_live_bytes = 0usize;
        let t0 = Instant::now();
        for (pos, node) in graph.iter().enumerate() {
            if node.id.0 != pos {
                return Err(TensorError::InvalidArgument(format!(
                    "node at position {pos} has id {}",
                    node.id
                )));
            }
            if let Some(s) = &shadow {
                for &i in &node.inputs {
                    s.begin_read(i.0, pos)?;
                }
            }
            let args = gather_args(node, &values)?;
            let started = Instant::now();
            // no intra-op runner here: the same shape-pure chunks run
            // serially, so outputs match the parallel engine bit for bit
            ngb_ops::parallel::reset_stats();
            ngb_tensor::telemetry::reset_bytes_materialized();
            let out = execute_node(
                self.seed,
                node,
                &args,
                inputs.get(&node.id),
                &arena,
                self.quant,
            )?;
            let stats = ngb_ops::parallel::take_stats();
            let bytes_materialized = ngb_tensor::telemetry::take_bytes_materialized();
            let elapsed = started.elapsed();
            drop(args); // release input clones so last-use reclaim sees unique storage
            if let Some(s) = &shadow {
                s.write(pos, pos)?;
                for &i in &node.inputs {
                    s.end_read(i.0, pos);
                }
            }
            live_bytes += planner_bytes(out.shape());
            peak_live_bytes = peak_live_bytes.max(live_bytes);
            timings.push(NodeTiming {
                id: node.id,
                elapsed,
                start: started.duration_since(t0),
                worker: 0,
                out_shape: out.shape().to_vec(),
                intra_chunks: stats.chunks,
                intra_participants: stats.max_participants.max(1),
                bytes_materialized,
            });
            values[pos] = Some(out);
            for &i in &node.inputs {
                uses[i.0] -= 1;
                if uses[i.0] == 0 {
                    if let Some(dead) = values[i.0].take() {
                        if let Some(s) = &shadow {
                            s.free(i.0, pos)?;
                        }
                        live_bytes -= planner_bytes(dead.shape());
                        arena.reclaim(dead);
                    }
                }
            }
        }
        let outputs = collect_outputs(graph, &is_output, &mut values)?;
        Ok(ExecutionTrace {
            outputs,
            timings,
            peak_live_bytes,
            arena: arena.stats(),
        })
    }
}

/// Executes one node outside the engines, with caller-gathered input
/// tensors — the `ngb-shard` executor drives plan nodes on per-device
/// threads through this entry point. Dispatch, RNG seeding (via
/// `seed_hint`), and arena recycling are exactly the engines' own, so
/// results are bit-identical to [`Interpreter::run`] node for node.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn run_node(
    seed: u64,
    node: &Node,
    args: &[Tensor],
    override_input: Option<&Tensor>,
    arena: &Arena,
    quant: Quant,
) -> Result<Tensor, TensorError> {
    execute_node(seed, node, args, override_input, arena, quant)
}

/// Structural + shape-conformance preflight shared by both engines.
///
/// # Errors
///
/// Returns the first structural defect or shape mismatch found.
pub fn preflight_check(graph: &Graph) -> Result<(), TensorError> {
    if let Some(issue) = graph.structural_issues().first() {
        return Err(TensorError::InvalidArgument(format!("preflight: {issue}")));
    }
    for node in graph.iter() {
        if matches!(node.op, OpKind::Input | OpKind::InputIds { .. }) {
            continue;
        }
        let input_shapes: Vec<Vec<usize>> = node
            .inputs
            .iter()
            .map(|&i| graph.node(i).out_shape.clone())
            .collect();
        let inferred = ngb_graph::infer_shape(&node.op, &input_shapes).map_err(|e| {
            TensorError::InvalidArgument(format!(
                "preflight: node {} ({}) fails shape inference: {e}",
                node.id, node.name
            ))
        })?;
        if inferred != node.out_shape {
            return Err(TensorError::InvalidArgument(format!(
                "preflight: node {} ({}) stores shape {:?} but infers {:?}",
                node.id, node.name, node.out_shape, inferred
            )));
        }
    }
    Ok(())
}

/// Bytes of one value in the planner's metric: element count × 4 (the
/// f32-equivalent accounting [`Graph::peak_activation_bytes`] uses).
pub(crate) fn planner_bytes(shape: &[usize]) -> usize {
    ngb_tensor::num_elements(shape) * 4
}

/// Clones the input tensors of `node` out of the value table.
pub(crate) fn gather_args(
    node: &Node,
    values: &[Option<Tensor>],
) -> Result<Vec<Tensor>, TensorError> {
    node.inputs
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            values
                .get(id.0)
                .and_then(|v| v.clone())
                .ok_or_else(|| missing_input(node, i))
        })
        .collect()
}

fn missing_input(node: &Node, i: usize) -> TensorError {
    TensorError::InvalidArgument(format!(
        "node {} ({}) is missing input {i}",
        node.id, node.name
    ))
}

/// Drains output values (nodes without consumers) in id order.
pub(crate) fn collect_outputs(
    graph: &Graph,
    is_output: &[bool],
    values: &mut [Option<Tensor>],
) -> Result<Vec<(NodeId, Tensor)>, TensorError> {
    graph
        .iter()
        .filter(|n| is_output[n.id.0])
        .map(|n| {
            let v = values[n.id.0].take().ok_or_else(|| {
                TensorError::InvalidArgument(format!("output node {} never executed", n.id))
            })?;
            Ok((n.id, v))
        })
        .collect()
}

/// The per-node weight/input RNG: keyed on node id (never execution
/// order), which is what makes parallel execution bit-identical to
/// sequential.
pub(crate) fn rng_for(seed: u64, node: NodeId) -> TensorRng {
    TensorRng::seed(seed ^ ((node.0 as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Generates the synthetic input tensor an input node would receive when no
/// override is supplied — public so callers (e.g. a serving layer that
/// batches per-request inputs) can reproduce exactly what
/// `Interpreter::run` with seed `seed` would feed the node.
pub fn synth_input(seed: u64, node: &Node) -> Tensor {
    let mut rng = rng_for(seed, node.seed_hint.unwrap_or(node.id));
    match &node.op {
        OpKind::InputIds { vocab } => rng.uniform_i64(&node.out_shape, 0, (*vocab).max(1) as i64),
        _ => rng.uniform(&node.out_shape, -1.0, 1.0),
    }
}

/// Executes one node given its already-gathered input tensors.
///
/// Shared by the sequential and parallel engines. Weight tensors for the
/// large parameterized ops draw their backing buffers from `arena` and are
/// returned to it after the kernel runs, so steady-state execution recycles
/// weight storage instead of allocating it fresh per node.
///
/// # Errors
///
/// Propagates kernel errors.
pub(crate) fn execute_node(
    seed: u64,
    node: &Node,
    args: &[Tensor],
    override_input: Option<&Tensor>,
    arena: &Arena,
    quant: Quant,
) -> Result<Tensor, TensorError> {
    let arg = |i: usize| -> Result<&Tensor, TensorError> {
        args.get(i).ok_or_else(|| missing_input(node, i))
    };
    // Rewritten graphs renumber nodes; the seed hint preserves the
    // original id so weights stay bit-identical across optimization levels.
    let mut rng = rng_for(seed, node.seed_hint.unwrap_or(node.id));
    match &node.op {
        OpKind::Input | OpKind::InputIds { .. } => Ok(override_input
            .cloned()
            .unwrap_or_else(|| synth_input(seed, node))),

        OpKind::Linear { in_f, out_f, bias } => {
            let w = rng.kaiming_into(arena.take(out_f * in_f), &[*out_f, *in_f], *in_f);
            let b = bias.then(|| rng.normal(&[*out_f]));
            let out = match quant {
                Quant::None => ngb_ops::gemm::linear(arg(0)?, &w, b.as_ref()),
                Quant::Int8 => ngb_ops::quant::linear_int8(arg(0)?, &w, b.as_ref()),
            };
            arena.reclaim(w);
            out
        }
        OpKind::Conv1dGpt2 { in_f, out_f } => {
            let w = rng.kaiming_into(arena.take(in_f * out_f), &[*in_f, *out_f], *in_f);
            let b = rng.normal(&[*out_f]);
            let out = match quant {
                Quant::None => ngb_ops::gemm::conv1d_gpt2(arg(0)?, &w, Some(&b)),
                Quant::Int8 => ngb_ops::quant::conv1d_gpt2_int8(arg(0)?, &w, Some(&b)),
            };
            arena.reclaim(w);
            out
        }
        OpKind::Conv2d {
            in_c,
            out_c,
            kernel,
            stride,
            padding,
            groups,
            bias,
        } => {
            let fan_in = (in_c / groups) * kernel * kernel;
            let shape = [*out_c, in_c / groups, *kernel, *kernel];
            let numel = shape.iter().product();
            let w = rng.kaiming_into(arena.take(numel), &shape, fan_in.max(1));
            let b = bias.then(|| rng.normal(&[*out_c]));
            let out = ngb_ops::gemm::conv2d(arg(0)?, &w, b.as_ref(), *stride, *padding, *groups);
            arena.reclaim(w);
            out
        }
        OpKind::Matmul => ngb_ops::gemm::matmul(arg(0)?, arg(1)?),
        OpKind::Bmm => ngb_ops::gemm::bmm(arg(0)?, arg(1)?),

        OpKind::Relu => ngb_ops::activation::relu(arg(0)?),
        OpKind::Relu6 => ngb_ops::activation::relu6(arg(0)?),
        OpKind::Gelu => ngb_ops::activation::gelu(arg(0)?),
        OpKind::GeluTanh => ngb_ops::activation::gelu_tanh(arg(0)?),
        OpKind::NewGelu => ngb_ops::activation::new_gelu(arg(0)?),
        OpKind::Silu => ngb_ops::activation::silu(arg(0)?),
        OpKind::Sigmoid => ngb_ops::activation::sigmoid(arg(0)?),
        OpKind::Hardswish => ngb_ops::activation::hardswish(arg(0)?),

        OpKind::LayerNorm { dim } => {
            let g = rng.uniform(&[*dim], 0.9, 1.1);
            let b = rng.uniform(&[*dim], -0.1, 0.1);
            ngb_ops::normalization::layer_norm(arg(0)?, &g, &b, 1e-5)
        }
        OpKind::RmsNorm { dim } => {
            let g = rng.uniform(&[*dim], 0.9, 1.1);
            ngb_ops::normalization::rms_norm(arg(0)?, &g, 1e-6)
        }
        OpKind::LlamaRmsNorm { dim } => {
            let g = rng.uniform(&[*dim], 0.9, 1.1);
            ngb_ops::normalization::llama_rms_norm(arg(0)?, &g, 1e-6)
        }
        OpKind::BatchNorm2d { c } => {
            let (g, b) = (rng.uniform(&[*c], 0.9, 1.1), rng.uniform(&[*c], -0.1, 0.1));
            let (m, v) = (rng.uniform(&[*c], -0.1, 0.1), rng.uniform(&[*c], 0.8, 1.2));
            ngb_ops::normalization::batch_norm2d(arg(0)?, &g, &b, &m, &v, 1e-5)
        }
        OpKind::FrozenBatchNorm2d { c } => {
            let (g, b) = (rng.uniform(&[*c], 0.9, 1.1), rng.uniform(&[*c], -0.1, 0.1));
            let (m, v) = (rng.uniform(&[*c], -0.1, 0.1), rng.uniform(&[*c], 0.8, 1.2));
            ngb_ops::normalization::frozen_batch_norm2d(arg(0)?, &g, &b, &m, &v, 1e-5)
        }
        OpKind::GroupNorm { groups, c } => {
            let (g, b) = (rng.uniform(&[*c], 0.9, 1.1), rng.uniform(&[*c], -0.1, 0.1));
            ngb_ops::normalization::group_norm(arg(0)?, *groups, &g, &b, 1e-5)
        }

        OpKind::Reshape { shape } => arg(0)?.reshape(&resolve(shape, arg(0)?.numel())),
        OpKind::View { shape } => {
            // views on non-contiguous values fall back to reshape; real
            // models insert `.contiguous()` where PyTorch requires it,
            // and the runtime cost model charges that there.
            arg(0)?.reshape(&resolve(shape, arg(0)?.numel()))
        }
        OpKind::Permute { perm } => arg(0)?.permute(perm),
        OpKind::Transpose { d0, d1 } => arg(0)?.transpose(*d0 as isize, *d1 as isize),
        OpKind::Contiguous => Ok(arg(0)?.contiguous()),
        OpKind::Expand { shape } => arg(0)?.expand(shape),
        OpKind::Squeeze { dim } => arg(0)?.squeeze(*dim as isize),
        OpKind::Unsqueeze { dim } => arg(0)?.unsqueeze(*dim),
        OpKind::Slice { dim, start, len } => arg(0)?.narrow(*dim, *start, *len),
        OpKind::Roll { shift, dim } => ngb_ops::memory::roll(arg(0)?, *shift, *dim),
        OpKind::Cat { dim } => {
            let tensors: Vec<Tensor> = (0..node.inputs.len())
                .map(|i| arg(i).cloned())
                .collect::<Result<_, _>>()?;
            Tensor::cat(&tensors, *dim)
        }

        OpKind::Add => ngb_ops::arithmetic::add(arg(0)?, arg(1)?),
        OpKind::Sub => ngb_ops::arithmetic::sub(arg(0)?, arg(1)?),
        OpKind::Mul => ngb_ops::arithmetic::mul(arg(0)?, arg(1)?),
        OpKind::Div => ngb_ops::arithmetic::div(arg(0)?, arg(1)?),
        OpKind::Neg => ngb_ops::arithmetic::neg(arg(0)?),
        OpKind::AddScalar(s) => ngb_ops::arithmetic::add_scalar(arg(0)?, *s),
        OpKind::MulScalar(s) => ngb_ops::arithmetic::mul_scalar(arg(0)?, *s),
        OpKind::DivScalar(s) => ngb_ops::arithmetic::div_scalar(arg(0)?, *s),
        OpKind::PowScalar(e) => ngb_ops::arithmetic::pow_scalar(arg(0)?, *e),
        OpKind::Sqrt => ngb_ops::arithmetic::sqrt(arg(0)?),
        OpKind::MeanDim { dim, keepdim } => ngb_ops::arithmetic::mean_dim(arg(0)?, *dim, *keepdim),
        OpKind::CausalMask => causal_mask(arg(0)?),

        OpKind::Softmax { dim } => ngb_ops::logit::softmax(arg(0)?, *dim),
        OpKind::LogSoftmax { dim } => ngb_ops::logit::log_softmax(arg(0)?, *dim),

        OpKind::MaxPool2d {
            kernel,
            stride,
            padding,
        } => ngb_ops::pooling::max_pool2d(arg(0)?, *kernel, *stride, *padding),
        OpKind::AvgPool2d {
            kernel,
            stride,
            padding,
        } => ngb_ops::pooling::avg_pool2d(arg(0)?, *kernel, *stride, *padding),
        OpKind::AdaptiveAvgPool2d { oh, ow } => {
            ngb_ops::pooling::adaptive_avg_pool2d(arg(0)?, *oh, *ow)
        }

        OpKind::Nms { iou_threshold, .. } => {
            let boxes = arg(0)?;
            let scores = if node.inputs.len() > 1 {
                arg(1)?.clone()
            } else {
                rng.uniform(&[boxes.shape()[0]], 0.0, 1.0)
            };
            ngb_ops::roi::nms(boxes, &scores, *iou_threshold)
        }
        OpKind::RoiAlign { out, spatial_scale } => {
            ngb_ops::roi::roi_align(arg(0)?, arg(1)?, *out, *spatial_scale)
        }
        OpKind::BoxConvert => ngb_ops::roi::box_cxcywh_to_xyxy(arg(0)?),

        OpKind::InterpolateNearest { oh, ow } => {
            ngb_ops::interpolate::interpolate_nearest(arg(0)?, *oh, *ow)
        }
        OpKind::InterpolateBilinear { oh, ow } => {
            ngb_ops::interpolate::interpolate_bilinear(arg(0)?, *oh, *ow)
        }

        OpKind::Embedding { vocab, dim } => {
            let table = rng.normal_into(arena.take(vocab * dim), &[*vocab, *dim]);
            let out = ngb_ops::embedding::embedding(&table, arg(0)?);
            arena.reclaim(table);
            out
        }

        // Collectives run as ordinary kernels on whichever device owns
        // them; the sharded executor charges interconnect latency around
        // them, never by changing their math.
        OpKind::AllReduce => {
            // rank-order accumulation: deterministic for a fixed plan
            let mut acc = arg(0)?.clone();
            for i in 1..node.inputs.len() {
                acc = ngb_ops::arithmetic::add(&acc, arg(i)?)?;
            }
            Ok(acc)
        }
        OpKind::AllGather { dim } => {
            let shards: Vec<Tensor> = (0..node.inputs.len())
                .map(|i| arg(i).cloned())
                .collect::<Result<_, _>>()?;
            Tensor::cat(&shards, *dim)
        }
        OpKind::Transfer => Ok(arg(0)?.contiguous()),
        OpKind::LinearShard {
            in_f,
            out_f,
            bias,
            part,
            parts,
            row_split,
        } => {
            // Replay the *full* layer's parameter stream (weight, then
            // bias — the same order as the Linear arm, keyed by the
            // original node via seed_hint) and slice this shard's view,
            // so shard weights are bitwise slices of the unsplit layer.
            let w = rng.kaiming_into(arena.take(out_f * in_f), &[*out_f, *in_f], *in_f);
            let b = bias.then(|| rng.normal(&[*out_f]));
            let (start, len) =
                ngb_graph::shard_span(if *row_split { *in_f } else { *out_f }, *part, *parts);
            let (ws, bs) = if *row_split {
                // row-parallel: slice input features; only part 0 adds
                // the bias (the AllReduce sums partials exactly once).
                (w.narrow(1, start, len)?, b.filter(|_| *part == 0))
            } else {
                let bs = match b {
                    Some(full) => Some(full.narrow(0, start, len)?),
                    None => None,
                };
                (w.narrow(0, start, len)?, bs)
            };
            let out = ngb_ops::gemm::linear(arg(0)?, &ws, bs.as_ref());
            drop(ws);
            drop(bs);
            arena.reclaim(w);
            out
        }

        OpKind::Argmax { dim } => ngb_ops::reduction::argmax(arg(0)?, *dim),
        OpKind::TopK { k } => ngb_ops::reduction::topk(arg(0)?, *k).map(|(v, _)| v),

        OpKind::Fused(f) => crate::fused::execute_fused(seed, f, args, arena, quant),
    }
}

fn resolve(shape: &[usize], numel: usize) -> Vec<usize> {
    if shape.contains(&usize::MAX) {
        let known: usize = shape.iter().filter(|&&d| d != usize::MAX).product();
        shape
            .iter()
            .map(|&d| {
                if d == usize::MAX {
                    numel / known.max(1)
                } else {
                    d
                }
            })
            .collect()
    } else {
        shape.to_vec()
    }
}

/// Fills the strict upper triangle of the trailing `[T, T]` dims with a
/// large negative value (causal attention masking).
fn causal_mask(x: &Tensor) -> Result<Tensor, TensorError> {
    let rank = x.rank();
    if rank < 2 {
        return Err(TensorError::InvalidArgument(
            "causal mask requires rank >= 2".into(),
        ));
    }
    let (tq, tk) = (x.shape()[rank - 2], x.shape()[rank - 1]);
    let v = x.to_vec_f32()?;
    let rows = x.numel() / (tq * tk);
    let mut out = v;
    for r in 0..rows {
        for q in 0..tq {
            for k in 0..tk {
                // allow attending to positions <= q (aligned to the right
                // for tk >= tq, matching decoder caches)
                let limit = k as isize - (tk as isize - tq as isize);
                if limit > q as isize {
                    out[r * tq * tk + q * tk + k] = -1e9;
                }
            }
        }
    }
    Tensor::from_vec(out, x.shape())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::GraphBuilder;

    fn mlp_graph() -> Graph {
        let mut b = GraphBuilder::new("mlp");
        let x = b.input(&[2, 16]);
        let h = b
            .push(
                OpKind::Linear {
                    in_f: 16,
                    out_f: 32,
                    bias: true,
                },
                &[x],
                "fc1",
            )
            .unwrap();
        let a = b.push(OpKind::Gelu, &[h], "act").unwrap();
        let o = b
            .push(
                OpKind::Linear {
                    in_f: 32,
                    out_f: 4,
                    bias: true,
                },
                &[a],
                "fc2",
            )
            .unwrap();
        b.push(OpKind::Softmax { dim: 1 }, &[o], "probs").unwrap();
        b.finish()
    }

    #[test]
    fn runs_and_times_every_node() {
        let g = mlp_graph();
        let trace = Interpreter::default().run(&g).unwrap();
        assert_eq!(trace.timings.len(), g.len());
        assert_eq!(trace.outputs.len(), 1);
        let (_, probs) = &trace.outputs[0];
        assert_eq!(probs.shape(), &[2, 4]);
        let sums = probs.reduce_dim(1, false, 0.0, |a, v| a + v).unwrap();
        for s in sums.to_vec_f32().unwrap() {
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(trace.total_time() > Duration::ZERO);
        assert!(trace.span() >= trace.timings.last().unwrap().elapsed);
    }

    #[test]
    fn execution_is_deterministic_per_seed() {
        let g = mlp_graph();
        let a = Interpreter::new(7).run(&g).unwrap();
        let b = Interpreter::new(7).run(&g).unwrap();
        let c = Interpreter::new(8).run(&g).unwrap();
        assert_eq!(a.outputs[0].1, b.outputs[0].1);
        assert_ne!(a.outputs[0].1, c.outputs[0].1);
    }

    #[test]
    fn engine_knob_dispatches_to_the_parallel_executor() {
        let g = mlp_graph();
        let seq = Interpreter::new(7).run(&g).unwrap();
        let par = Interpreter::new(7)
            .engine(Engine::Parallel(2))
            .run(&g)
            .unwrap();
        assert_eq!(seq.outputs[0].1, par.outputs[0].1);
        assert_eq!(Engine::Sequential.threads(), 1);
        assert_eq!(Engine::Parallel(4).threads(), 4);
        assert!(Engine::auto().threads() >= 1);
    }

    #[test]
    fn input_override_is_used() {
        let g = mlp_graph();
        let x = Tensor::zeros(&[2, 16]);
        let mut inputs = HashMap::new();
        inputs.insert(NodeId(0), x);
        let t = Interpreter::default().run_with_inputs(&g, &inputs).unwrap();
        // zero input -> both rows identical
        let p = t.outputs[0].1.to_vec_f32().unwrap();
        assert_eq!(&p[0..4], &p[4..8]);
    }

    #[test]
    fn static_shapes_match_actual_for_static_ops() {
        let g = mlp_graph();
        let t = Interpreter::default().run(&g).unwrap();
        for (node, timing) in g.iter().zip(&t.timings) {
            assert_eq!(node.out_shape, timing.out_shape, "node {}", node.name);
        }
    }

    #[test]
    fn intermediates_are_dropped_at_last_use() {
        // a long unary chain: live set is never more than two values, so
        // the measured peak must track the planner, not the sum of all
        // intermediates
        let mut b = GraphBuilder::new("chain");
        let mut cur = b.input(&[64, 64]);
        for i in 0..16 {
            cur = b.push(OpKind::Gelu, &[cur], &format!("g{i}")).unwrap();
        }
        let g = b.finish();
        let t = Interpreter::default().run(&g).unwrap();
        assert!(t.peak_live_bytes > 0);
        assert!(
            t.peak_live_bytes <= g.peak_activation_bytes(),
            "measured {} > planned {}",
            t.peak_live_bytes,
            g.peak_activation_bytes()
        );
        // the planner says two live values; the naive sum is 17
        assert_eq!(g.peak_activation_bytes(), 2 * 64 * 64 * 4);
        // dead activations were recycled through the arena
        assert!(t.arena.reclaimed > 0, "{:?}", t.arena);
    }

    #[test]
    fn weight_buffers_recycle_through_the_arena() {
        // two same-shaped linears: the second one's weight buffer should be
        // an arena hit from the first one's reclaim
        let mut b = GraphBuilder::new("two_fc");
        let x = b.input(&[2, 32]);
        let h = b
            .push(
                OpKind::Linear {
                    in_f: 32,
                    out_f: 32,
                    bias: false,
                },
                &[x],
                "fc1",
            )
            .unwrap();
        b.push(
            OpKind::Linear {
                in_f: 32,
                out_f: 32,
                bias: false,
            },
            &[h],
            "fc2",
        )
        .unwrap();
        let t = Interpreter::default().run(&b.finish()).unwrap();
        assert!(t.arena.hits >= 1, "{:?}", t.arena);
    }

    #[test]
    fn dynamic_nms_subgraph_executes() {
        let mut b = GraphBuilder::new("det");
        let boxes = b.input(&[64, 4]);
        let scores = b.input(&[64]);
        let keep = b
            .push(
                OpKind::Nms {
                    iou_threshold: 0.5,
                    nominal_keep: 32,
                },
                &[boxes, scores],
                "nms",
            )
            .unwrap();
        let g = b.finish();
        let t = Interpreter::default().run(&g).unwrap();
        let kept = &t.outputs.iter().find(|(id, _)| *id == keep).unwrap().1;
        assert!(kept.numel() <= 64);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut b = GraphBuilder::new("mask");
        let x = b.input(&[1, 2, 3, 3]);
        b.push(OpKind::CausalMask, &[x], "mask").unwrap();
        let g = b.finish();
        let mut inputs = HashMap::new();
        inputs.insert(NodeId(0), Tensor::ones(&[1, 2, 3, 3]));
        let t = Interpreter::default().run_with_inputs(&g, &inputs).unwrap();
        let m = &t.outputs[0].1;
        assert_eq!(m.at(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert!(m.at(&[0, 0, 0, 1]).unwrap() < -1e8);
        assert!(m.at(&[0, 0, 1, 2]).unwrap() < -1e8);
        assert_eq!(m.at(&[0, 0, 2, 2]).unwrap(), 1.0);
    }

    #[test]
    fn corrupted_graph_errors_instead_of_panicking() {
        // dangling input id: typed error, not an index panic
        let mut g = mlp_graph();
        g.nodes[2].inputs = vec![NodeId(99)];
        let err = Interpreter::default().run(&g).unwrap_err();
        assert!(err.to_string().contains("nonexistent node %99"), "{err}");

        // id out of step with position: typed error, not a slot mix-up
        let mut g2 = mlp_graph();
        g2.nodes[1].id = NodeId(3);
        let err2 = Interpreter::default().run(&g2).unwrap_err();
        assert!(err2.to_string().contains("position 1 has id %3"), "{err2}");
    }

    #[test]
    fn preflight_rejects_wrong_stored_shape_before_execution() {
        let mut g = mlp_graph();
        g.nodes[2].out_shape = vec![2, 33]; // gelu output lies about its shape
                                            // without preflight this silently executes (the kernel recomputes)
        assert!(Interpreter::default().run(&g).is_ok());
        let err = Interpreter::default().preflight(true).run(&g).unwrap_err();
        assert!(err.to_string().contains("preflight"), "{err}");
        assert!(err.to_string().contains("[2, 33]"), "{err}");
        // a clean graph passes preflight
        assert!(Interpreter::default()
            .preflight(true)
            .run(&mlp_graph())
            .is_ok());
    }

    #[test]
    fn embedding_pipeline_executes() {
        let mut b = GraphBuilder::new("emb");
        let ids = b.input_ids(&[1, 6], 100);
        let e = b
            .push(OpKind::Embedding { vocab: 100, dim: 8 }, &[ids], "wte")
            .unwrap();
        b.push(OpKind::LayerNorm { dim: 8 }, &[e], "ln").unwrap();
        let g = b.finish();
        let t = Interpreter::default().run(&g).unwrap();
        assert_eq!(t.outputs[0].1.shape(), &[1, 6, 8]);
    }
}
