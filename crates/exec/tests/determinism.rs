//! Determinism contract of the parallel engine: for every registry model,
//! any thread count, and any run, outputs are bit-identical to the
//! sequential interpreter. The engine earns this with per-node RNG seeding
//! and pure kernels — scheduling order never touches the math.

use ngb_exec::{Engine, Interpreter};
use ngb_models::{ModelId, Scale};

/// Output bit patterns: NaN-safe equality (`NaN != NaN` under `f32` eq).
/// Integer/bool outputs (token ids, NMS keeps) widen into the same space.
fn bits(trace: &ngb_exec::ExecutionTrace) -> Vec<(usize, Vec<usize>, Vec<u64>)> {
    trace
        .outputs
        .iter()
        .map(|(id, t)| {
            let b = if let Ok(v) = t.to_vec_f32() {
                v.iter().map(|x| u64::from(x.to_bits())).collect()
            } else if let Ok(v) = t.to_vec_i64() {
                v.iter().map(|&x| x as u64).collect()
            } else {
                t.to_vec_bool()
                    .expect("f32, i64, or bool outputs")
                    .iter()
                    .map(|&x| u64::from(x))
                    .collect()
            };
            (id.0, t.shape().to_vec(), b)
        })
        .collect()
}

#[test]
fn every_model_is_bit_identical_across_thread_counts() {
    for &model in ModelId::all() {
        let g = model
            .build(1, Scale::Tiny)
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        let seq = Interpreter::default()
            .run(&g)
            .unwrap_or_else(|e| panic!("{model} (sequential): {e}"));
        let want = bits(&seq);
        assert!(!want.is_empty(), "{model}: no outputs");
        for threads in [1usize, 2, 8] {
            let par = Interpreter::default()
                .engine(Engine::Parallel(threads))
                .run(&g)
                .unwrap_or_else(|e| panic!("{model} ({threads} threads): {e}"));
            assert_eq!(want, bits(&par), "{model}: {threads} threads diverged");
        }
    }
}

#[test]
fn repeated_parallel_runs_are_identical() {
    // scheduling races may reorder execution, never change results
    for &model in &[ModelId::VitBase16, ModelId::FasterRcnn, ModelId::Gpt2] {
        let g = model.build(1, Scale::Tiny).unwrap();
        let interp = Interpreter::default().engine(Engine::Parallel(4));
        let first = bits(&interp.run(&g).unwrap());
        for _ in 0..3 {
            assert_eq!(first, bits(&interp.run(&g).unwrap()), "{model}");
        }
    }
}

#[test]
fn parallel_timings_cover_every_node_once() {
    let g = ModelId::SwinTiny.build(1, Scale::Tiny).unwrap();
    let threads = 4usize;
    let trace = Interpreter::default()
        .engine(Engine::Parallel(threads))
        .run(&g)
        .unwrap();
    assert_eq!(trace.timings.len(), g.len());
    let mut seen = vec![false; g.len()];
    for t in &trace.timings {
        assert!(!seen[t.id.0], "node {} timed twice", t.id);
        seen[t.id.0] = true;
        assert!(t.worker < threads, "worker {} out of range", t.worker);
    }
    // liveness accounting ran: some bytes were live at the peak
    assert!(trace.peak_live_bytes > 0);
}
