//! Property-based tests over randomly assembled operator graphs: shape
//! inference must agree with real execution (on both engines), and layout
//! round trips must preserve values.

use ngb_exec::{Engine, Interpreter};
use ngb_graph::{GraphBuilder, OpKind};
use proptest::prelude::*;

/// A random unary, shape-preserving operator.
fn unary_op() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::Relu),
        Just(OpKind::Relu6),
        Just(OpKind::Gelu),
        Just(OpKind::GeluTanh),
        Just(OpKind::NewGelu),
        Just(OpKind::Silu),
        Just(OpKind::Sigmoid),
        Just(OpKind::Hardswish),
        Just(OpKind::Neg),
        Just(OpKind::Sqrt),
        (-2.0f32..2.0).prop_map(OpKind::AddScalar),
        (0.1f32..3.0).prop_map(OpKind::MulScalar),
        (0.5f32..4.0).prop_map(OpKind::DivScalar),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chain of unary ops built through the GraphBuilder executes, and
    /// every static shape matches the actual tensor shape.
    #[test]
    fn random_unary_chains_execute_with_correct_shapes(
        ops in prop::collection::vec(unary_op(), 1..8),
        rows in 1usize..4,
        cols in 1usize..12,
    ) {
        let mut b = GraphBuilder::new("chain");
        let mut cur = b.input(&[rows, cols]);
        for (i, op) in ops.iter().enumerate() {
            cur = b.push(op.clone(), &[cur], &format!("op{i}")).unwrap();
        }
        let g = b.finish();
        prop_assert!(g.validate().is_ok());
        let trace = Interpreter::new(1).run(&g).unwrap();
        for (node, timing) in g.iter().zip(&trace.timings) {
            prop_assert_eq!(&node.out_shape, &timing.out_shape, "node {}", &node.name);
        }
        // a sequential drop-at-last-use run must respect the static plan
        prop_assert!(trace.peak_live_bytes <= g.peak_activation_bytes());
        // sqrt of negatives produces NaN — restrict the finite check to
        // graphs without sqrt
        if !ops.contains(&OpKind::Sqrt) {
            let out = &trace.outputs[0].1;
            prop_assert!(out.to_vec_f32().unwrap().iter().all(|v| v.is_finite()));
        }
    }

    /// Reshape/permute round trips through the graph builder preserve the
    /// executed values.
    #[test]
    fn layout_roundtrip_through_graph(
        d0 in 1usize..5,
        d1 in 1usize..5,
        d2 in 1usize..5,
    ) {
        let mut b = GraphBuilder::new("layout");
        let x = b.input(&[d0, d1, d2]);
        let p = b.push(OpKind::Permute { perm: vec![2, 0, 1] }, &[x], "p").unwrap();
        let c = b.push(OpKind::Contiguous, &[p], "c").unwrap();
        let back = b.push(OpKind::Permute { perm: vec![1, 2, 0] }, &[c], "back").unwrap();
        let r = b.push(OpKind::Reshape { shape: vec![d0 * d1 * d2] }, &[back], "flat").unwrap();
        let _ = r;
        let g = b.finish();
        let t = Interpreter::new(2).run(&g).unwrap();
        // the round trip equals the flattened input; re-generate the input
        // deterministically through a second run
        let t2 = Interpreter::new(2).run(&g).unwrap();
        prop_assert_eq!(
            t.outputs[0].1.to_vec_f32().unwrap(),
            t2.outputs[0].1.to_vec_f32().unwrap()
        );
        prop_assert_eq!(t.outputs[0].1.shape(), &[d0 * d1 * d2]);
    }

    /// The parallel engine's outputs equal the sequential engine's on a
    /// random fan-out/fan-in graph, for any thread count.
    #[test]
    fn parallel_matches_sequential_on_random_fanouts(
        branch_ops in prop::collection::vec(unary_op(), 2..6),
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut b = GraphBuilder::new("fanout");
        let x = b.input(&[3, 8]);
        let branches: Vec<_> = branch_ops
            .iter()
            .enumerate()
            .map(|(i, op)| b.push(op.clone(), &[x], &format!("b{i}")).unwrap())
            .collect();
        let mut acc = branches[0];
        for (i, &br) in branches.iter().enumerate().skip(1) {
            acc = b.push(OpKind::Add, &[acc, br], &format!("j{i}")).unwrap();
        }
        let g = b.finish();
        let seq = Interpreter::new(seed).run(&g).unwrap();
        let par = Interpreter::new(seed)
            .engine(Engine::Parallel(threads))
            .run(&g)
            .unwrap();
        prop_assert_eq!(seq.outputs.len(), par.outputs.len());
        for (s, p) in seq.outputs.iter().zip(&par.outputs) {
            prop_assert_eq!(s.0, p.0);
            prop_assert_eq!(s.1.shape(), p.1.shape());
            // compare bit patterns so NaN == NaN (sqrt of negatives)
            let sb: Vec<u32> = s.1.to_vec_f32().unwrap().iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = p.1.to_vec_f32().unwrap().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(sb, pb);
        }
    }
}
