//! Failure behavior of the parallel engine: a mid-graph kernel error or a
//! panicking kernel must abort the run cleanly — an `Err` comes back, no
//! worker deadlocks or leaks, and the same executor keeps working on the
//! next (valid) graph.

use ngb_exec::{Engine, Interpreter, ParallelExecutor};
use ngb_graph::{Graph, GraphBuilder, OpKind};

/// A graph with parallel branches plus a matmul; `break_matmul` corrupts
/// one matmul operand's stored shape so the kernel fails mid-run while
/// other branches are still in flight.
fn branchy_matmul_graph() -> Graph {
    let mut b = GraphBuilder::new("robust");
    let x = b.input(&[4, 8]);
    let y = b.input(&[8, 4]);
    let m = b.push(OpKind::Matmul, &[x, y], "mm").unwrap();
    let mut joins = Vec::new();
    for i in 0..4 {
        let h = b.push(OpKind::Gelu, &[x], &format!("branch{i}")).unwrap();
        joins.push(b.push(OpKind::Relu, &[h], &format!("act{i}")).unwrap());
    }
    b.push(OpKind::Softmax { dim: 1 }, &[m], "sm").unwrap();
    let s = b.push(OpKind::Add, &[joins[0], joins[1]], "j01").unwrap();
    b.push(OpKind::Add, &[s, joins[2]], "j012").unwrap();
    b.finish()
}

fn break_matmul(g: &mut Graph) {
    // input %1 now produces [7, 4]: matmul([4,8], [7,4]) has mismatched
    // inner dimensions and must fail with a TensorError, not a panic
    g.nodes[1].out_shape = vec![7, 4];
}

#[test]
fn kernel_error_aborts_the_parallel_run_cleanly() {
    let mut g = branchy_matmul_graph();
    break_matmul(&mut g);
    for threads in [1usize, 2, 8] {
        let err = Interpreter::default()
            .engine(Engine::Parallel(threads))
            .run(&g)
            .expect_err("corrupted matmul must fail");
        // both engines agree the graph is broken
        let seq_err = Interpreter::default().run(&g).expect_err("fails");
        let _ = (err, seq_err);
    }
}

#[test]
fn executor_survives_a_failed_run_and_stays_usable() {
    let exec = ParallelExecutor::new(0x5eed, 4);
    let mut bad = branchy_matmul_graph();
    break_matmul(&mut bad);
    let good = branchy_matmul_graph();
    let want = Interpreter::default().run(&good).unwrap();
    // alternate failures and successes on the same pool
    for _ in 0..3 {
        assert!(exec.run(&bad).is_err());
        let trace = exec.run(&good).expect("pool still works after failure");
        assert_eq!(trace.outputs.len(), want.outputs.len());
        for (a, b) in want.outputs.iter().zip(&trace.outputs) {
            assert_eq!(a, b);
        }
    }
}

#[test]
fn panicking_kernel_is_reported_as_an_error_not_a_crash() {
    let mut g = branchy_matmul_graph();
    // Linear with in_f = 0 hits the weight initializer's nonzero-fan-in
    // assert: a genuine kernel panic inside a worker thread
    g.nodes[2] = ngb_graph::Node {
        id: g.nodes[2].id,
        op: OpKind::Linear {
            in_f: 0,
            out_f: 4,
            bias: false,
        },
        inputs: vec![g.nodes[0].id],
        out_shape: vec![4, 4],
        name: "poison".into(),
        seed_hint: None,
    };
    let exec = ParallelExecutor::new(0x5eed, 2);
    let err = exec.run(&g).expect_err("panicking kernel must surface");
    let msg = err.to_string();
    assert!(msg.contains("panicked"), "unexpected error: {msg}");
    // the pool's workers survived the panic
    let good = branchy_matmul_graph();
    assert!(exec.run(&good).is_ok());
}
