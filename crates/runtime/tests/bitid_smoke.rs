use ngb_exec::Interpreter;
use ngb_models::{decode_bundle, ModelId, Scale};
use ngb_runtime::decode::{greedy_decode, greedy_reference, synth_prompt, DecodeSession};
use ngb_tensor::bit_equal;

#[test]
fn smoke_gpt2_bit_identity() {
    let total = 12usize;
    let bundle = decode_bundle(ModelId::Gpt2, Scale::Tiny, 1, total)
        .unwrap()
        .unwrap();
    let prompt = synth_prompt(0x5eed, &bundle.reference, 4).unwrap();
    let interp = Interpreter::default();
    let mut session = DecodeSession::new(
        bundle.decode.clone(),
        &bundle.reference,
        Interpreter::default(),
    )
    .unwrap();
    let cached = greedy_decode(&mut session, &prompt, 8).unwrap();
    let refr = greedy_reference(&bundle.reference, &interp, &prompt, 8).unwrap();
    assert_eq!(cached.tokens, refr.tokens, "tokens diverge");
    for (i, (a, b)) in cached.step_probs.iter().zip(&refr.step_probs).enumerate() {
        assert!(bit_equal(a, b).unwrap(), "step {i} probs not bit-identical");
    }
}

#[test]
fn smoke_llama_bit_identity() {
    let total = 10usize;
    let bundle = decode_bundle(ModelId::Llama2_7b, Scale::Tiny, 1, total)
        .unwrap()
        .unwrap();
    let prompt = synth_prompt(0x5eed, &bundle.reference, 3).unwrap();
    let interp = Interpreter::default();
    let mut session = DecodeSession::new(
        bundle.decode.clone(),
        &bundle.reference,
        Interpreter::default(),
    )
    .unwrap();
    let cached = greedy_decode(&mut session, &prompt, 7).unwrap();
    let refr = greedy_reference(&bundle.reference, &interp, &prompt, 7).unwrap();
    assert_eq!(cached.tokens, refr.tokens, "tokens diverge");
    for (i, (a, b)) in cached.step_probs.iter().zip(&refr.step_probs).enumerate() {
        assert!(bit_equal(a, b).unwrap(), "step {i} probs not bit-identical");
    }
}
