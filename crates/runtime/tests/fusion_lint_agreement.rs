//! The analyzer's fusion-opportunity lints and the runtime's optimization
//! passes look for the same patterns; these tests pin them together so the
//! two implementations cannot drift apart silently.

use ngb_analyze::{Analyzer, Lint};
use ngb_graph::{Graph, GraphBuilder, OpKind};
use ngb_models::{ModelId, Scale};
use ngb_runtime::{plan, plan_with_options, Flow, RuntimeOptions};

/// bmm -> scale -> mask -> softmax -> bmm, the chain `fuse_attention` rewrites.
fn attention_graph() -> Graph {
    let mut b = GraphBuilder::new("attn");
    let q = b.input(&[4, 16, 8]);
    let k = b.input(&[4, 8, 16]);
    let v = b.input(&[4, 16, 8]);
    let s = b.push(OpKind::Bmm, &[q, k], "scores").unwrap();
    let sc = b.push(OpKind::DivScalar(2.83), &[s], "scale").unwrap();
    let m = b.push(OpKind::CausalMask, &[sc], "mask").unwrap();
    let p = b.push(OpKind::Softmax { dim: 2 }, &[m], "softmax").unwrap();
    b.push(OpKind::Bmm, &[p, v], "context").unwrap();
    b.finish()
}

#[test]
fn attention_lint_fires_exactly_where_the_runtime_fuses() {
    let g = attention_graph();
    let report = Analyzer::new().analyze(&g);
    let lints = report.findings(Lint::FuseAttention);
    assert_eq!(lints.len(), 1, "one attention prologue expected");

    let base = plan(&g, Flow::Dynamo, true);
    let fused = plan_with_options(
        &g,
        Flow::Dynamo,
        true,
        RuntimeOptions {
            fuse_attention: true,
        },
    );
    let rewritten = fused.nodes.iter().filter(|n| n.fused_into_prev).count()
        - base.nodes.iter().filter(|n| n.fused_into_prev).count();
    assert!(
        rewritten > 0,
        "the runtime must also fuse the chain the lint flagged"
    );
}

#[test]
fn non_matching_chain_fires_neither() {
    let mut b = GraphBuilder::new("plain");
    let a = b.input(&[2, 4, 4]);
    let c = b.input(&[2, 4, 4]);
    let s = b.push(OpKind::Bmm, &[a, c], "mm").unwrap();
    b.push(OpKind::Relu, &[s], "act").unwrap();
    let g = b.finish();

    assert!(Analyzer::new()
        .analyze(&g)
        .findings(Lint::FuseAttention)
        .is_empty());
    let base = plan(&g, Flow::Eager, true);
    let opt = plan_with_options(
        &g,
        Flow::Eager,
        true,
        RuntimeOptions {
            fuse_attention: true,
        },
    );
    assert_eq!(base.total_kernels(), opt.total_kernels());
}

#[test]
fn gpt2_lint_count_matches_runtime_fusion_sites() {
    // every per-layer attention block should be seen by both systems
    let g = ModelId::Gpt2.build(1, Scale::Tiny).unwrap();
    let lint_sites = Analyzer::new()
        .analyze(&g)
        .findings(Lint::FuseAttention)
        .len();
    assert!(lint_sites > 0);

    let base = plan(&g, Flow::Eager, true);
    let fused = plan_with_options(
        &g,
        Flow::Eager,
        true,
        RuntimeOptions {
            fuse_attention: true,
        },
    );
    let heads = fused
        .nodes
        .iter()
        .zip(&base.nodes)
        .filter(|(f, b)| f.cost.kernels == 1 && f.cost.flops > b.cost.flops)
        .count();
    assert_eq!(
        lint_sites, heads,
        "lint sites and fused attention heads must agree"
    );
}
