//! Built-graph cache for steady-state serving.
//!
//! Building and optimizing a model graph is pure — the same (model, scale,
//! opt-level, batch) tuple always yields the same graph — so a server can
//! build once and share the result across every request that needs it.
//! [`GraphCache`] is that memoization: a mutex-guarded map from [`GraphKey`]
//! to `Arc<Graph>` with hit/miss counters, safe to call from many
//! connection threads at once.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ngb_graph::Graph;

/// Identity of a built-and-optimized graph. String fields (rather than the
/// model/scale/opt enums) keep this crate's dependency set unchanged and
/// make the key printable for logs as-is.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GraphKey {
    /// Model alias, e.g. `"bert"`.
    pub model: String,
    /// Scale name, e.g. `"tiny"`.
    pub scale: String,
    /// Optimization level name, e.g. `"O2"`.
    pub opt_level: String,
    /// Batch size the graph was built for.
    pub batch: usize,
}

impl std::fmt::Display for GraphKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{}/b{}",
            self.model, self.scale, self.opt_level, self.batch
        )
    }
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Graphs currently cached.
    pub entries: usize,
}

/// Thread-safe memoization of built graphs (see module docs).
#[derive(Debug, Default)]
pub struct GraphCache {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    graphs: HashMap<GraphKey, Arc<Graph>>,
    hits: u64,
    misses: u64,
}

impl GraphCache {
    /// Creates an empty cache.
    pub fn new() -> GraphCache {
        GraphCache::default()
    }

    /// Returns the cached graph for `key`, building it with `build` on the
    /// first lookup. The lock is *not* held across `build`, so a slow build
    /// never blocks lookups of other keys; if two threads race to build the
    /// same key, the first insert wins and the loser's graph is dropped
    /// (builds are pure, so both are identical).
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; nothing is cached on failure.
    pub fn get_or_build<E>(
        &self,
        key: &GraphKey,
        build: impl FnOnce() -> Result<Graph, E>,
    ) -> Result<Arc<Graph>, E> {
        {
            let mut inner = self.inner.lock().expect("graph cache lock");
            if let Some(g) = inner.graphs.get(key) {
                let g = Arc::clone(g);
                inner.hits += 1;
                return Ok(g);
            }
        }
        let built = Arc::new(build()?);
        let mut inner = self.inner.lock().expect("graph cache lock");
        inner.misses += 1;
        let g = Arc::clone(inner.graphs.entry(key.clone()).or_insert(built));
        Ok(g)
    }

    /// Current hit/miss/entry counters.
    pub fn stats(&self) -> GraphCacheStats {
        let inner = self.inner.lock().expect("graph cache lock");
        GraphCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.graphs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::GraphBuilder;

    fn key(batch: usize) -> GraphKey {
        GraphKey {
            model: "toy".into(),
            scale: "tiny".into(),
            opt_level: "O1".into(),
            batch,
        }
    }

    fn toy(batch: usize) -> Graph {
        let mut b = GraphBuilder::new("toy");
        b.input(&[batch, 4]);
        b.finish()
    }

    #[test]
    fn second_lookup_hits_and_shares_the_graph() {
        let cache = GraphCache::new();
        let a = cache.get_or_build::<()>(&key(1), || Ok(toy(1))).unwrap();
        let b = cache
            .get_or_build::<()>(&key(1), || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_batches_are_distinct_entries() {
        let cache = GraphCache::new();
        cache.get_or_build::<()>(&key(1), || Ok(toy(1))).unwrap();
        cache.get_or_build::<()>(&key(4), || Ok(toy(4))).unwrap();
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn build_failure_caches_nothing() {
        let cache = GraphCache::new();
        assert!(cache.get_or_build(&key(1), || Err("boom")).is_err());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 0);
        // a later successful build still works
        cache.get_or_build::<()>(&key(1), || Ok(toy(1))).unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn key_displays_compactly() {
        assert_eq!(key(8).to_string(), "toy/tiny/O1/b8");
    }
}
