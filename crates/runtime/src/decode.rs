//! Autoregressive decode driver: KV cache + greedy generation.
//!
//! The decode-step graph (built by `ngb-models`' `build_decode`) is
//! **built once and re-executed per token**. This module owns everything
//! around it at runtime:
//!
//! * [`KvCache`] — per-layer K/V storage at fixed capacity, appended one
//!   row per step, with reuse counters ([`KvCacheStats`]).
//! * [`DecodeSession`] — discovers the graph's cache slots, mask, and
//!   position inputs purely by node-name convention (`*.kv.k_cache`,
//!   `*.kv.v_cache`, `mask`, `pos`), feeds them each step, and harvests
//!   the fresh `*.kv.k_out` / `*.kv.v_out` rows back into the cache.
//! * [`greedy_decode`] / [`greedy_reference`] — cached generation vs. the
//!   uncached full-sequence recompute. With the same seed the two produce
//!   **bit-identical** probability rows and tokens: empty cache slots hold
//!   exact-zero rows, masked by the same `-1e9` the reference's
//!   `CausalMask` writes, and the GEMM micro-kernel pads partial row
//!   blocks so each output row's bits are independent of sequence length.
//!
//! Why the slots line up: the decode step's `Cat` places the self token
//! *last*, after `capacity` cache slots, so step `t` sees
//! `[rows 0..t, zeros, self]` while reference row `t` sees
//! `[rows 0..t, self, future]`. Zero-probability slots contribute exact
//! `+0.0` terms wherever they sit, so both fold orders sum identically.

use std::collections::HashMap;

use ngb_exec::{synth_input, Interpreter};
use ngb_graph::{Graph, NodeId, OpKind};
use ngb_tensor::{Tensor, TensorError};

type Result<T> = std::result::Result<T, TensorError>;

/// The additive mask value for not-yet-live cache slots — the same
/// constant `CausalMask` writes, so cached and uncached paths agree
/// bitwise.
const MASK_NEG: f32 = -1e9;

fn bad(msg: impl Into<String>) -> TensorError {
    TensorError::InvalidArgument(msg.into())
}

/// Reuse counters for one decode session's KV cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvCacheStats {
    /// Rows appended across all layers (one per layer per step).
    pub appended_rows: u64,
    /// Cached rows read back instead of recomputed (per layer per step,
    /// the number of live slots at that step).
    pub reused_rows: u64,
}

impl KvCacheStats {
    /// Fraction of K/V rows served from the cache:
    /// `reused / (reused + appended)`. Zero before any step runs.
    pub fn hit_rate(&self) -> f64 {
        let total = self.reused_rows + self.appended_rows;
        if total == 0 {
            return 0.0;
        }
        self.reused_rows as f64 / total as f64
    }
}

/// Fixed-capacity per-layer K/V storage for one decode session.
///
/// Each layer holds `rows × capacity × head_dim` f32 slots per tensor
/// (`rows = batch × heads`). Slots beyond [`KvCache::len`] stay **exactly
/// zero** — the decode graph's additive mask relies on that to keep
/// not-yet-live slots' attention scores at exact `0.0` before masking.
#[derive(Debug, Clone)]
pub struct KvCache {
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    rows: usize,
    capacity: usize,
    head_dim: usize,
    len: usize,
    stats: KvCacheStats,
}

impl KvCache {
    /// Creates a zeroed cache for `layers` layers.
    pub fn new(layers: usize, rows: usize, capacity: usize, head_dim: usize) -> KvCache {
        let slot = vec![0.0; rows * capacity * head_dim];
        KvCache {
            k: vec![slot.clone(); layers],
            v: vec![slot; layers],
            rows,
            capacity,
            head_dim,
            len: 0,
            stats: KvCacheStats::default(),
        }
    }

    /// Number of layers cached.
    pub fn layers(&self) -> usize {
        self.k.len()
    }

    /// Live (filled) slots per layer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slots are live yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum slots per layer.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reuse counters so far.
    pub fn stats(&self) -> KvCacheStats {
        self.stats
    }

    /// The K tensor for `layer` in the decode graph's cache-input shape
    /// `[rows, capacity, head_dim]`.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range layer.
    pub fn k_tensor(&self, layer: usize) -> Result<Tensor> {
        let data = self.k.get(layer).ok_or_else(|| bad("layer out of range"))?;
        Tensor::from_vec(data.clone(), &[self.rows, self.capacity, self.head_dim])
    }

    /// The V tensor for `layer` (see [`KvCache::k_tensor`]).
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range layer.
    pub fn v_tensor(&self, layer: usize) -> Result<Tensor> {
        let data = self.v.get(layer).ok_or_else(|| bad("layer out of range"))?;
        Tensor::from_vec(data.clone(), &[self.rows, self.capacity, self.head_dim])
    }

    /// Appends one step's fresh K/V rows (`[rows, 1, head_dim]` each) for
    /// `layer` into the next free slot. Call once per layer per step, then
    /// [`KvCache::commit`] to advance the live length.
    ///
    /// # Errors
    ///
    /// Fails when the cache is full or the row tensors have the wrong
    /// element count.
    pub fn append(&mut self, layer: usize, k_row: &Tensor, v_row: &Tensor) -> Result<()> {
        if self.len >= self.capacity {
            return Err(bad(format!(
                "KV cache full: capacity {} exhausted",
                self.capacity
            )));
        }
        let (rows, hd, cap, at) = (self.rows, self.head_dim, self.capacity, self.len);
        let write = |store: &mut Vec<f32>, t: &Tensor| -> Result<()> {
            let data = t.to_vec_f32()?;
            if data.len() != rows * hd {
                return Err(bad(format!(
                    "cache row has {} elements, expected {}",
                    data.len(),
                    rows * hd
                )));
            }
            for r in 0..rows {
                let dst = r * cap * hd + at * hd;
                store[dst..dst + hd].copy_from_slice(&data[r * hd..(r + 1) * hd]);
            }
            Ok(())
        };
        let (ks, vs) = (&mut self.k, &mut self.v);
        write(
            ks.get_mut(layer).ok_or_else(|| bad("layer out of range"))?,
            k_row,
        )?;
        write(
            vs.get_mut(layer).ok_or_else(|| bad("layer out of range"))?,
            v_row,
        )?;
        Ok(())
    }

    /// Advances the live length after all layers appended this step, and
    /// records reuse statistics.
    pub fn commit(&mut self) {
        let layers = self.layers() as u64;
        self.stats.reused_rows += layers * self.len as u64;
        self.stats.appended_rows += layers;
        self.len += 1;
    }

    /// Records a full-cache step (every slot reused, nothing appended).
    fn note_full_reuse(&mut self) {
        self.stats.reused_rows += self.layers() as u64 * self.len as u64;
    }
}

/// One transformer layer's cache plumbing in the decode graph.
#[derive(Debug, Clone)]
struct LayerSlots {
    k_cache: NodeId,
    v_cache: NodeId,
    k_out: NodeId,
    v_out: NodeId,
}

/// A reusable decode session: one decode-step graph, its discovered
/// input/output plumbing, and the KV cache. Stepping the session executes
/// the graph with the current cache and appends the fresh rows.
#[derive(Debug)]
pub struct DecodeSession {
    decode: Graph,
    interp: Interpreter,
    cache: KvCache,
    ids: NodeId,
    pos: Option<NodeId>,
    mask: NodeId,
    layers: Vec<LayerSlots>,
    probs: NodeId,
    /// Full positional table `[1, seq, d]` synthesized from the reference
    /// graph's `pos` input (empty when the model has none).
    pos_table: Vec<f32>,
    pos_dim: usize,
    batch: usize,
    /// Positions consumed so far (equals the cache length until the
    /// final, cache-full step).
    consumed: usize,
}

impl DecodeSession {
    /// Builds a session around `decode` (a `build_decode` graph). The
    /// `reference` full-sequence graph supplies the positional table for
    /// models that have one; `interp` fixes seed, engine, and quantization
    /// for every step.
    ///
    /// # Errors
    ///
    /// Fails when the graph does not follow the decode-step naming
    /// convention (`*.kv.{k,v}_cache`, `*.kv.{k,v}_out`, `mask`).
    pub fn new(decode: Graph, reference: &Graph, interp: Interpreter) -> Result<DecodeSession> {
        let ids = decode
            .iter()
            .find(|n| matches!(n.op, OpKind::InputIds { .. }))
            .ok_or_else(|| bad("decode graph has no InputIds node"))?
            .id;
        let pos = decode.iter().find(|n| n.name == "pos").map(|n| n.id);
        let mask = decode
            .iter()
            .find(|n| n.name == "mask")
            .ok_or_else(|| bad("decode graph has no mask input"))?
            .id;

        let find = |suffix: &str, layer_prefix: &str| -> Option<NodeId> {
            decode
                .iter()
                .find(|n| n.name == format!("{layer_prefix}{suffix}"))
                .map(|n| n.id)
        };
        let mut layers = Vec::new();
        for node in decode.iter() {
            let Some(prefix) = node.name.strip_suffix("kv.k_cache") else {
                continue;
            };
            let slots = LayerSlots {
                k_cache: node.id,
                v_cache: find("kv.v_cache", prefix)
                    .ok_or_else(|| bad(format!("{prefix}kv.v_cache missing")))?,
                k_out: find("kv.k_out", prefix)
                    .ok_or_else(|| bad(format!("{prefix}kv.k_out missing")))?,
                v_out: find("kv.v_out", prefix)
                    .ok_or_else(|| bad(format!("{prefix}kv.v_out missing")))?,
            };
            layers.push(slots);
        }
        if layers.is_empty() {
            return Err(bad("decode graph has no *.kv.k_cache inputs"));
        }

        let cache_shape = decode.node(layers[0].k_cache).out_shape.clone();
        let [rows, capacity, head_dim] = cache_shape.as_slice() else {
            return Err(bad("cache inputs must be rank-3 [rows, past, head_dim]"));
        };
        let batch = decode.node(ids).out_shape[0];

        // the probability output is the terminal node that is not a
        // K/V-row output
        let kv_outs: Vec<NodeId> = layers.iter().flat_map(|l| [l.k_out, l.v_out]).collect();
        let mut consumed = vec![false; decode.len()];
        for n in decode.iter() {
            for &i in &n.inputs {
                consumed[i.0] = true;
            }
        }
        let probs = decode
            .iter()
            .filter(|n| !consumed[n.id.0] && !kv_outs.contains(&n.id))
            .map(|n| n.id)
            .next_back()
            .ok_or_else(|| bad("decode graph has no probability output"))?;

        // positional table: reproduce exactly what the reference graph's
        // executor would synthesize for its `pos` input
        let (pos_table, pos_dim) = match reference.iter().find(|n| n.name == "pos") {
            Some(n) => {
                let t = synth_input(interp.seed(), n);
                let d = *n.out_shape.last().unwrap_or(&0);
                (t.to_vec_f32()?, d)
            }
            None => (Vec::new(), 0),
        };

        let cache = KvCache::new(layers.len(), *rows, *capacity, *head_dim);
        Ok(DecodeSession {
            decode,
            interp,
            cache,
            ids,
            pos,
            mask,
            layers,
            probs,
            pos_table,
            pos_dim,
            batch,
            consumed: 0,
        })
    }

    /// Batch rows per step.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Positions already consumed (prompt + generated so far).
    pub fn position(&self) -> usize {
        self.consumed
    }

    /// Total positions the session can consume.
    pub fn max_positions(&self) -> usize {
        self.cache.capacity() + 1
    }

    /// Cache reuse counters.
    pub fn cache_stats(&self) -> KvCacheStats {
        self.cache.stats()
    }

    /// Feeds one token per batch row at the current position, returns the
    /// next-token probabilities `[batch, 1, vocab]`, and appends the
    /// step's K/V rows to the cache.
    ///
    /// # Errors
    ///
    /// Fails when the session is at capacity, `tokens.len() != batch`, or
    /// execution fails.
    pub fn step(&mut self, tokens: &[i64]) -> Result<Tensor> {
        if self.consumed >= self.max_positions() {
            return Err(bad("decode session is at capacity"));
        }
        if tokens.len() != self.batch {
            return Err(bad(format!(
                "step got {} tokens for batch {}",
                tokens.len(),
                self.batch
            )));
        }
        let t = self.consumed;
        let cap = self.cache.capacity();
        let mut inputs: HashMap<NodeId, Tensor> = HashMap::new();
        inputs.insert(
            self.ids,
            Tensor::from_i64(tokens.to_vec(), &[self.batch, 1])?,
        );
        if let Some(pos) = self.pos {
            let row = self
                .pos_table
                .get(t * self.pos_dim..(t + 1) * self.pos_dim)
                .ok_or_else(|| bad(format!("position {t} beyond the positional table")))?;
            inputs.insert(pos, Tensor::from_vec(row.to_vec(), &[1, 1, self.pos_dim])?);
        }
        // live slots and the final self slot stay open; everything else
        // is masked with the CausalMask constant
        let mut mask = vec![MASK_NEG; cap + 1];
        mask[..t].fill(0.0);
        mask[cap] = 0.0;
        inputs.insert(self.mask, Tensor::from_vec(mask, &[1, 1, cap + 1])?);
        for layer in 0..self.layers.len() {
            inputs.insert(self.layers[layer].k_cache, self.cache.k_tensor(layer)?);
            inputs.insert(self.layers[layer].v_cache, self.cache.v_tensor(layer)?);
        }

        let trace = self.interp.run_with_inputs(&self.decode, &inputs)?;
        let by_id: HashMap<NodeId, &Tensor> =
            trace.outputs.iter().map(|(id, t)| (*id, t)).collect();
        let fetch = |id: NodeId| -> Result<&Tensor> {
            by_id
                .get(&id)
                .copied()
                .ok_or_else(|| bad(format!("decode output {id} missing from trace")))
        };
        if self.cache.len() < cap {
            for (layer, slots) in self.layers.iter().enumerate() {
                let (k_row, v_row) = (fetch(slots.k_out)?, fetch(slots.v_out)?);
                self.cache.append(layer, k_row, v_row)?;
            }
            self.cache.commit();
        } else {
            self.cache.note_full_reuse();
        }
        self.consumed += 1;
        fetch(self.probs).cloned()
    }
}

/// Per-step record of a greedy generation run.
#[derive(Debug)]
pub struct GenerateReport {
    /// Generated tokens, one `Vec` per batch row, `max_new` long.
    pub tokens: Vec<Vec<i64>>,
    /// Next-token probability tensors `[batch, 1, vocab]`, one per
    /// generated token, for bitwise comparison against the reference.
    pub step_probs: Vec<Tensor>,
    /// Cache reuse counters (all zero for the uncached reference).
    pub cache: KvCacheStats,
}

/// Greedy argmax over one batch row's probability slice; ties resolve to
/// the lowest index so cached/uncached agree even on exact ties.
fn argmax(row: &[f32]) -> i64 {
    let mut best = 0usize;
    for (i, &p) in row.iter().enumerate() {
        if p > row[best] {
            best = i;
        }
    }
    best as i64
}

fn next_tokens(probs: &Tensor, batch: usize) -> Result<Vec<i64>> {
    let data = probs.to_vec_f32()?;
    let vocab = data.len() / batch.max(1);
    Ok((0..batch)
        .map(|b| argmax(&data[b * vocab..(b + 1) * vocab]))
        .collect())
}

/// Runs a cached greedy generation: prefill consumes the prompt one
/// position at a time (building the cache), then `max_new` tokens are
/// generated from the argmax of each step's probabilities.
///
/// # Errors
///
/// Fails when the prompt is empty, prompt + `max_new` exceeds the
/// session's capacity, or a step fails.
pub fn greedy_decode(
    session: &mut DecodeSession,
    prompt: &[Vec<i64>],
    max_new: usize,
) -> Result<GenerateReport> {
    let prompt_len = prompt.first().map(Vec::len).unwrap_or(0);
    if prompt_len == 0 {
        return Err(bad("greedy_decode requires a non-empty prompt"));
    }
    if prompt.len() != session.batch() || prompt.iter().any(|p| p.len() != prompt_len) {
        return Err(bad("prompt must be rectangular with one row per batch"));
    }
    if prompt_len + max_new > session.max_positions() {
        return Err(bad(format!(
            "prompt {} + max_new {} exceeds session capacity {}",
            prompt_len,
            max_new,
            session.max_positions()
        )));
    }
    let mut tokens: Vec<Vec<i64>> = vec![Vec::with_capacity(max_new); session.batch()];
    let mut step_probs = Vec::with_capacity(max_new);
    // prefill: feed the prompt one position at a time through the same
    // decode step, so every prompt row lands in the cache
    let mut last = Tensor::zeros(&[0]);
    for t in 0..prompt_len {
        let ids: Vec<i64> = prompt.iter().map(|p| p[t]).collect();
        last = session.step(&ids)?;
    }
    while step_probs.len() < max_new {
        let ids = next_tokens(&last, session.batch())?;
        for (row, &tok) in tokens.iter_mut().zip(&ids) {
            row.push(tok);
        }
        step_probs.push(last.clone());
        if step_probs.len() == max_new {
            break;
        }
        last = session.step(&ids)?;
    }
    Ok(GenerateReport {
        tokens,
        step_probs,
        cache: session.cache_stats(),
    })
}

/// Runs the uncached reference: for each generated token the **full
/// sequence** is recomputed through `reference` (a fixed-`seq` graph) and
/// the probability row at the last live position is read out. Future
/// positions hold placeholder tokens; the causal mask keeps them from
/// affecting live rows.
///
/// # Errors
///
/// Fails when the prompt is empty or longer than the graph's sequence.
pub fn greedy_reference(
    reference: &Graph,
    interp: &Interpreter,
    prompt: &[Vec<i64>],
    max_new: usize,
) -> Result<GenerateReport> {
    let ids_node = reference
        .iter()
        .find(|n| matches!(n.op, OpKind::InputIds { .. }))
        .ok_or_else(|| bad("reference graph has no InputIds node"))?;
    let [batch, seq] = ids_node.out_shape.as_slice() else {
        return Err(bad("reference ids must be rank-2 [batch, seq]"));
    };
    let (batch, seq) = (*batch, *seq);
    let prompt_len = prompt.first().map(Vec::len).unwrap_or(0);
    if prompt_len == 0 || prompt.len() != batch {
        return Err(bad("prompt must be non-empty with one row per batch"));
    }
    if prompt_len + max_new > seq {
        return Err(bad(format!(
            "prompt {prompt_len} + max_new {max_new} exceeds reference seq {seq}"
        )));
    }
    let probs_id = reference
        .iter()
        .last()
        .map(|n| n.id)
        .ok_or_else(|| bad("empty reference graph"))?;

    let mut ids = vec![0i64; batch * seq];
    for (b, row) in prompt.iter().enumerate() {
        ids[b * seq..b * seq + prompt_len].copy_from_slice(row);
    }
    let mut tokens: Vec<Vec<i64>> = vec![Vec::with_capacity(max_new); batch];
    let mut step_probs = Vec::with_capacity(max_new);
    for step in 0..max_new {
        let live = prompt_len + step; // tokens known so far
        let inputs: HashMap<NodeId, Tensor> =
            [(ids_node.id, Tensor::from_i64(ids.clone(), &[batch, seq])?)].into();
        let trace = interp.run_with_inputs(reference, &inputs)?;
        let probs = trace
            .outputs
            .iter()
            .find(|(id, _)| *id == probs_id)
            .map(|(_, t)| t)
            .ok_or_else(|| bad("reference probabilities missing from trace"))?;
        // row `live - 1`: the next-token distribution after the prefix
        let data = probs.to_vec_f32()?;
        let vocab = data.len() / (batch * seq);
        let mut row = Vec::with_capacity(batch * vocab);
        for b in 0..batch {
            let at = (b * seq + (live - 1)) * vocab;
            row.extend_from_slice(&data[at..at + vocab]);
        }
        let row = Tensor::from_vec(row, &[batch, 1, vocab])?;
        let ids_next = next_tokens(&row, batch)?;
        for (b, &tok) in ids_next.iter().enumerate() {
            tokens[b].push(tok);
            if live < seq {
                ids[b * seq + live] = tok;
            }
        }
        step_probs.push(row);
    }
    Ok(GenerateReport {
        tokens,
        step_probs,
        cache: KvCacheStats::default(),
    })
}

/// Reproduces the prompt a seeded run would draw for `reference`'s ids
/// input: the first `prompt_len` columns of the synthetic token tensor.
///
/// # Errors
///
/// Fails when the graph has no ids input or the prompt is longer than its
/// sequence.
pub fn synth_prompt(seed: u64, reference: &Graph, prompt_len: usize) -> Result<Vec<Vec<i64>>> {
    let ids_node = reference
        .iter()
        .find(|n| matches!(n.op, OpKind::InputIds { .. }))
        .ok_or_else(|| bad("reference graph has no InputIds node"))?;
    let [batch, seq] = ids_node.out_shape.as_slice() else {
        return Err(bad("reference ids must be rank-2 [batch, seq]"));
    };
    if prompt_len == 0 || prompt_len > *seq {
        return Err(bad(format!(
            "prompt_len {prompt_len} out of range for seq {seq}"
        )));
    }
    let all = synth_input(seed, ids_node).to_vec_i64()?;
    Ok((0..*batch)
        .map(|b| all[b * seq..b * seq + prompt_len].to_vec())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_appends_and_masks_empty_slots() {
        let mut c = KvCache::new(2, 3, 4, 2);
        assert_eq!(c.len(), 0);
        let row = Tensor::from_vec(vec![1.0; 6], &[3, 1, 2]).unwrap();
        for layer in 0..2 {
            c.append(layer, &row, &row).unwrap();
        }
        c.commit();
        assert_eq!(c.len(), 1);
        let k = c.k_tensor(0).unwrap().to_vec_f32().unwrap();
        // slot 0 filled, slots 1..4 exactly zero
        assert_eq!(&k[0..2], &[1.0, 1.0]);
        assert!(k[2..8].iter().all(|&x| x == 0.0));
        assert_eq!(c.stats().appended_rows, 2);
        assert_eq!(c.stats().reused_rows, 0);
    }

    #[test]
    fn cache_rejects_overflow() {
        let mut c = KvCache::new(1, 1, 1, 2);
        let row = Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 2]).unwrap();
        c.append(0, &row, &row).unwrap();
        c.commit();
        assert!(c.append(0, &row, &row).is_err());
    }

    #[test]
    fn hit_rate_grows_with_steps() {
        let mut s = KvCacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.appended_rows = 4;
        s.reused_rows = 12;
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[0.5, 0.5, 0.1]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
    }
}
