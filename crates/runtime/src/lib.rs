//! # ngb-runtime
//!
//! Deployment-flow models: how the *same* operator graph executes under
//! different software stacks (paper §3.2.1 "Deployment Flow" and §4.2).
//!
//! A [`Flow`] turns a graph into an [`ExecutionPlan`] of per-node
//! [`PlannedNode`]s — which device each operator runs on, how many kernels
//! it launches, what framework dispatch overhead it pays, and what
//! host↔device transfer traffic it induces. The four flows model:
//!
//! * [`Flow::Eager`] — PyTorch eager: high per-op dispatch, and custom
//!   operators (NewGELU, LlamaRMSNorm, FrozenBatchNorm2d) execute as their
//!   decomposed multi-kernel chains (§4.1.4's overhead).
//! * [`Flow::TorchScript`] — the same kernels behind a cheaper static
//!   dispatcher.
//! * [`Flow::Dynamo`] — `torch.compile`: cheap dispatch plus fusion of
//!   element-wise chains into single kernels (intermediates stay in
//!   registers).
//! * [`Flow::Ort`] — ONNX Runtime with the CUDA execution provider: graph
//!   optimizations fuse decomposed ops into library kernels, **but Memory
//!   operators are not supported on the CUDA EP and fall back to the CPU**,
//!   paying PCIe transfers both ways — the mechanism §4.2 identifies as
//!   making Memory ops dominate every ORT profile.

#![forbid(unsafe_code)]

mod cache;
pub mod decode;

pub use cache::{GraphCache, GraphCacheStats, GraphKey};
pub use decode::{
    greedy_decode, greedy_reference, synth_prompt, DecodeSession, GenerateReport, KvCache,
    KvCacheStats,
};

use ngb_graph::{Graph, NodeId, NonGemmGroup, OpClass, OpKind};
use ngb_ops::OpCost;

/// A deployment software flow (paper Figure 4 "Deployment Flow" input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Flow {
    /// PyTorch eager mode.
    Eager,
    /// TorchScript.
    TorchScript,
    /// TorchDynamo / `torch.compile`.
    Dynamo,
    /// ONNX Runtime (CUDA EP on GPU platforms, CPU EP otherwise).
    Ort,
}

impl Flow {
    /// All flows in report order.
    pub fn all() -> &'static [Flow] {
        &[Flow::Eager, Flow::TorchScript, Flow::Dynamo, Flow::Ort]
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Flow::Eager => "PyTorch (Eager)",
            Flow::TorchScript => "TorchScript",
            Flow::Dynamo => "TorchDynamo",
            Flow::Ort => "ONNX Runtime",
        }
    }

    /// Per-node framework dispatch overhead in seconds.
    pub fn dispatch_s(self) -> f64 {
        match self {
            Flow::Eager => 14.0e-6,
            Flow::TorchScript => 2.5e-6,
            Flow::Dynamo => 1.2e-6,
            Flow::Ort => 1.5e-6,
        }
    }
}

impl std::fmt::Display for Flow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which device a planned operator executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Host CPU.
    Cpu,
    /// Attached GPU.
    Gpu,
}

/// One operator as scheduled by a flow.
#[derive(Debug, Clone)]
pub struct PlannedNode {
    /// The graph node.
    pub id: NodeId,
    /// Flow-adjusted cost (fusion may rewrite the eager cost).
    pub cost: OpCost,
    /// Where it runs.
    pub placement: Placement,
    /// Framework dispatch overhead paid by this node, seconds.
    pub dispatch_s: f64,
    /// Host↔device bytes moved because of placement (ORT CPU fallback).
    pub transfer_bytes: f64,
    /// Whether the op is GEMM-classified (selects the device throughput).
    pub is_gemm: bool,
    /// Whether Dynamo fused this node into its predecessor (no dispatch,
    /// no launch, no intermediate materialization).
    pub fused_into_prev: bool,
}

/// A flow's schedule for a whole graph.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// The flow that produced this plan.
    pub flow: Flow,
    /// Whether a GPU was targeted.
    pub gpu: bool,
    /// Per-node schedule, in graph order.
    pub nodes: Vec<PlannedNode>,
}

impl ExecutionPlan {
    /// Total kernels launched across the plan.
    pub fn total_kernels(&self) -> u64 {
        self.nodes.iter().map(|n| n.cost.kernels as u64).sum()
    }

    /// Number of nodes placed on the CPU.
    pub fn cpu_fallback_count(&self) -> usize {
        if self.gpu {
            self.nodes
                .iter()
                .filter(|n| n.placement == Placement::Cpu)
                .count()
        } else {
            0
        }
    }
}

/// Whether a flow's optimizer can fuse this op into an element-wise chain.
fn is_fusible(op: &OpKind) -> bool {
    matches!(
        op.class(),
        OpClass::NonGemm(
            NonGemmGroup::Activation | NonGemmGroup::Arithmetic | NonGemmGroup::Normalization
        )
    )
}

/// Replaces a decomposed custom op's cost with its fused-library-kernel
/// equivalent (what ORT's graph optimizer and Dynamo's compiler emit).
fn fused_cost(node: &ngb_graph::Node, graph: &Graph) -> OpCost {
    let shape = graph
        .node(node.inputs.first().copied().unwrap_or(node.id))
        .out_shape
        .clone();
    match &node.op {
        OpKind::NewGelu => ngb_ops::activation::gelu_tanh_cost(&shape),
        OpKind::LlamaRmsNorm { .. } => ngb_ops::normalization::rms_norm_cost(&shape),
        OpKind::FrozenBatchNorm2d { .. } => ngb_ops::normalization::batch_norm2d_cost(&shape),
        _ => {
            let mut c = graph.node_cost(node.id);
            c.kernels = c.kernels.min(1);
            c
        }
    }
}

fn io_bytes(graph: &Graph, node: &ngb_graph::Node) -> f64 {
    let inputs: f64 = node
        .inputs
        .iter()
        .map(|&i| ngb_tensor_bytes(&graph.node(i).out_shape))
        .sum();
    inputs + ngb_tensor_bytes(&node.out_shape)
}

fn ngb_tensor_bytes(shape: &[usize]) -> f64 {
    shape.iter().product::<usize>() as f64 * 4.0
}

/// Optional optimization passes layered on top of a flow — the
/// "non-GEMM-operator-oriented system optimizations" the paper's registry
/// exists to guide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Fuse the attention pattern `Bmm → scale → (mask) → Softmax → Bmm`
    /// into one FlashAttention-style kernel: the `[B, T, T]` score and
    /// probability intermediates never touch memory, and the five launches
    /// collapse into one.
    pub fuse_attention: bool,
}

/// Schedules `graph` under `flow` with extra optimization passes.
pub fn plan_with_options(
    graph: &Graph,
    flow: Flow,
    gpu: bool,
    options: RuntimeOptions,
) -> ExecutionPlan {
    let mut exec_plan = plan(graph, flow, gpu);
    if options.fuse_attention {
        fuse_attention(graph, &mut exec_plan);
    }
    exec_plan
}

/// Pattern-matches attention blocks and rewrites their plan entries into a
/// single fused kernel (see [`RuntimeOptions::fuse_attention`]).
///
/// The head `Bmm` keeps the combined FLOPs of both matmuls plus the softmax
/// chain, reads only q/k/v, and writes only the context; the interior nodes
/// become free fused continuations.
fn fuse_attention(graph: &Graph, exec_plan: &mut ExecutionPlan) {
    // single-consumer map so we only fuse linear chains
    let mut consumers = vec![0usize; graph.len()];
    for node in graph.iter() {
        for &i in &node.inputs {
            consumers[i.0] += 1;
        }
    }
    let single = |id: NodeId| consumers[id.0] == 1;
    let feeds = |a: NodeId, b: &ngb_graph::Node| b.inputs.first() == Some(&a);

    for start in graph.iter() {
        if start.op != OpKind::Bmm {
            continue;
        }
        // walk: scale -> optional mask -> softmax -> bmm
        let mut chain = vec![start.id];
        let mut cur = start.id;
        let next = |cur: NodeId| graph.iter().find(|n| feeds(cur, n)).map(|n| n.id);
        let Some(scale) = next(cur).filter(|&id| {
            matches!(
                graph.node(id).op,
                OpKind::DivScalar(_) | OpKind::MulScalar(_)
            ) && single(cur)
        }) else {
            continue;
        };
        chain.push(scale);
        cur = scale;
        if let Some(mask) =
            next(cur).filter(|&id| graph.node(id).op == OpKind::CausalMask && single(cur))
        {
            chain.push(mask);
            cur = mask;
        }
        let Some(softmax) = next(cur)
            .filter(|&id| matches!(graph.node(id).op, OpKind::Softmax { .. }) && single(cur))
        else {
            continue;
        };
        chain.push(softmax);
        cur = softmax;
        let Some(bmm2) = next(cur).filter(|&id| graph.node(id).op == OpKind::Bmm && single(cur))
        else {
            continue;
        };
        chain.push(bmm2);

        // rewrite: head gets everything, interior nodes become free
        let combined: OpCost = chain.iter().map(|&id| exec_plan.nodes[id.0].cost).sum();
        let qkv_bytes: f64 = start
            .inputs
            .iter()
            .chain(graph.node(bmm2).inputs.get(1))
            .map(|&i| ngb_tensor_bytes(&graph.node(i).out_shape))
            .sum();
        let out_bytes = ngb_tensor_bytes(&graph.node(bmm2).out_shape);
        let head = &mut exec_plan.nodes[start.id.0];
        head.cost = OpCost {
            flops: combined.flops,
            bytes_read: qkv_bytes,
            bytes_written: out_bytes,
            kernels: 1,
            dynamic: false,
        };
        head.dispatch_s = exec_plan.flow.dispatch_s();
        for &id in &chain[1..] {
            let n = &mut exec_plan.nodes[id.0];
            n.cost = OpCost::metadata();
            n.dispatch_s = 0.0;
            n.fused_into_prev = true;
        }
    }
}

/// Schedules `graph` under `flow`, targeting the GPU when `gpu` is true.
pub fn plan(graph: &Graph, flow: Flow, gpu: bool) -> ExecutionPlan {
    let mut nodes = Vec::with_capacity(graph.len());
    let mut prev_fusible_consumer: Option<NodeId> = None;
    for node in graph.iter() {
        // inputs are free: they model data already resident
        if matches!(node.op, OpKind::Input | OpKind::InputIds { .. }) {
            nodes.push(PlannedNode {
                id: node.id,
                cost: OpCost::metadata(),
                placement: if gpu { Placement::Gpu } else { Placement::Cpu },
                dispatch_s: 0.0,
                transfer_bytes: 0.0,
                is_gemm: false,
                fused_into_prev: false,
            });
            prev_fusible_consumer = None;
            continue;
        }
        let is_gemm = node.class().is_gemm();
        let eager_cost = graph.node_cost(node.id);
        let (mut cost, mut placement, mut transfer, mut dispatch, mut fused) = (
            eager_cost,
            if gpu { Placement::Gpu } else { Placement::Cpu },
            0.0f64,
            flow.dispatch_s(),
            false,
        );
        match flow {
            Flow::Eager | Flow::TorchScript => {
                // every kernel of a decomposed custom op (NewGELU,
                // LlamaRMSNorm, FrozenBatchNorm2d) is a separate framework
                // op in eager execution, each paying full dispatch —
                // the overhead §4.1.4 describes
                dispatch = flow.dispatch_s() * cost.kernels.max(1) as f64;
            }
            Flow::Dynamo => {
                if is_fusible(&node.op) {
                    cost = fused_cost(node, graph);
                    // chain fusion: a fusible node feeding straight from the
                    // previous fusible node joins its kernel
                    let feeds_from_prev = node
                        .inputs
                        .first()
                        .is_some_and(|&i| prev_fusible_consumer == Some(i));
                    if feeds_from_prev {
                        fused = true;
                        dispatch = 0.0;
                        cost.kernels = 0;
                        // intermediate stays in registers: drop one read+write
                        cost.bytes_read = (cost.bytes_read - cost.bytes_written).max(0.0);
                    }
                    prev_fusible_consumer = Some(node.id);
                } else {
                    prev_fusible_consumer = None;
                }
            }
            Flow::Ort => {
                cost = fused_cost(node, graph);
                // Reshape/View are first-class (zero-cost) ORT ops; the
                // unsupported subset is the data-moving layout ops
                let falls_back = node.class().group() == Some(NonGemmGroup::Memory)
                    && !matches!(node.op, OpKind::Reshape { .. } | OpKind::View { .. });
                if gpu && falls_back {
                    // unsupported on the CUDA EP: run on host, pay transfers
                    placement = Placement::Cpu;
                    transfer = io_bytes(graph, node);
                }
            }
        }
        if flow != Flow::Dynamo {
            prev_fusible_consumer = None;
        }
        // pure-metadata ops (views, permutes, ...) skip the kernel
        // dispatcher entirely; they only pay the cheaper Python/framework
        // call overhead
        if cost.kernels == 0 && !fused {
            dispatch = flow.dispatch_s() * 0.25;
        }
        nodes.push(PlannedNode {
            id: node.id,
            cost,
            placement,
            dispatch_s: dispatch,
            transfer_bytes: transfer,
            is_gemm,
            fused_into_prev: fused,
        });
    }
    ExecutionPlan { flow, gpu, nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::{GraphBuilder, OpKind};

    fn toy_graph() -> Graph {
        let mut b = GraphBuilder::new("toy");
        let x = b.input(&[1, 8, 64]);
        let n = b
            .push(OpKind::LlamaRmsNorm { dim: 64 }, &[x], "norm")
            .unwrap();
        let l = b
            .push(
                OpKind::Linear {
                    in_f: 64,
                    out_f: 64,
                    bias: false,
                },
                &[n],
                "fc",
            )
            .unwrap();
        let a = b.push(OpKind::NewGelu, &[l], "act").unwrap();
        let v = b
            .push(OpKind::View { shape: vec![8, 64] }, &[a], "view")
            .unwrap();
        let p = b
            .push(OpKind::Permute { perm: vec![1, 0] }, &[v], "perm")
            .unwrap();
        b.push(OpKind::Contiguous, &[p], "contig").unwrap();
        b.finish()
    }

    #[test]
    fn eager_keeps_decomposed_kernels() {
        let g = toy_graph();
        let plan = plan(&g, Flow::Eager, true);
        let act = plan
            .nodes
            .iter()
            .find(|n| g.node(n.id).name == "act")
            .unwrap();
        assert_eq!(act.cost.kernels, 8); // NewGELU chain
        let norm = plan
            .nodes
            .iter()
            .find(|n| g.node(n.id).name == "norm")
            .unwrap();
        assert_eq!(norm.cost.kernels, 6); // LlamaRMSNorm chain
        assert!(plan.nodes.iter().all(|n| n.transfer_bytes == 0.0));
    }

    #[test]
    fn ort_fuses_custom_ops() {
        let g = toy_graph();
        let plan = plan(&g, Flow::Ort, true);
        let act = plan
            .nodes
            .iter()
            .find(|n| g.node(n.id).name == "act")
            .unwrap();
        assert_eq!(act.cost.kernels, 1);
        let norm = plan
            .nodes
            .iter()
            .find(|n| g.node(n.id).name == "norm")
            .unwrap();
        assert_eq!(norm.cost.kernels, 1);
    }

    #[test]
    fn ort_gpu_falls_back_memory_ops_to_cpu_with_transfers() {
        let g = toy_graph();
        let p = plan(&g, Flow::Ort, true);
        // view is a native ORT Reshape and stays resident; the data-moving
        // layout ops fall back with transfers
        let view = p
            .nodes
            .iter()
            .find(|n| g.node(n.id).name == "view")
            .unwrap();
        assert_eq!(view.placement, Placement::Gpu);
        for name in ["perm", "contig"] {
            let n = p.nodes.iter().find(|n| g.node(n.id).name == name).unwrap();
            assert_eq!(n.placement, Placement::Cpu, "{name} should fall back");
            assert!(n.transfer_bytes > 0.0, "{name} should pay transfers");
        }
        // GEMM stays on GPU
        let fc = p.nodes.iter().find(|n| g.node(n.id).name == "fc").unwrap();
        assert_eq!(fc.placement, Placement::Gpu);
        assert!(p.cpu_fallback_count() >= 2);
    }

    #[test]
    fn ort_cpu_only_has_no_transfers() {
        let g = toy_graph();
        let p = plan(&g, Flow::Ort, false);
        assert!(p.nodes.iter().all(|n| n.transfer_bytes == 0.0));
        assert!(p.nodes.iter().all(|n| n.placement == Placement::Cpu));
    }

    #[test]
    fn dynamo_fuses_elementwise_chains() {
        let mut b = GraphBuilder::new("chain");
        let x = b.input(&[1024]);
        let a = b.push(OpKind::Relu, &[x], "a").unwrap();
        let c = b.push(OpKind::Sigmoid, &[a], "b").unwrap();
        b.push(OpKind::Sqrt, &[c], "c").unwrap();
        let g = b.finish();
        let p = plan(&g, Flow::Dynamo, true);
        let fused: Vec<bool> = p.nodes.iter().map(|n| n.fused_into_prev).collect();
        // input, head-of-chain, then two fused continuations
        assert_eq!(fused, vec![false, false, true, true]);
        assert!(p.total_kernels() < super::plan(&g, Flow::Eager, true).total_kernels());
    }

    #[test]
    fn attention_fusion_collapses_the_pattern() {
        // build the bmm -> scale -> mask -> softmax -> bmm chain
        let mut b = GraphBuilder::new("attn");
        let q = b.input(&[4, 16, 8]);
        let k = b.input(&[4, 8, 16]);
        let v = b.input(&[4, 16, 8]);
        let s = b.push(OpKind::Bmm, &[q, k], "scores").unwrap();
        let sc = b.push(OpKind::DivScalar(2.83), &[s], "scale").unwrap();
        let m = b.push(OpKind::CausalMask, &[sc], "mask").unwrap();
        let p = b.push(OpKind::Softmax { dim: 2 }, &[m], "softmax").unwrap();
        b.push(OpKind::Bmm, &[p, v], "context").unwrap();
        let g = b.finish();

        let base = plan(&g, Flow::Dynamo, true);
        let fused = plan_with_options(
            &g,
            Flow::Dynamo,
            true,
            RuntimeOptions {
                fuse_attention: true,
            },
        );
        assert!(fused.total_kernels() < base.total_kernels());
        // interior nodes are free, head keeps the combined flops
        let head = &fused.nodes[s.0];
        assert_eq!(head.cost.kernels, 1);
        let base_flops: f64 = base.nodes.iter().map(|n| n.cost.flops).sum();
        let fused_flops: f64 = fused.nodes.iter().map(|n| n.cost.flops).sum();
        assert!((base_flops - fused_flops).abs() / base_flops < 1e-9);
        // traffic shrinks: the [4, 16, 16] intermediates are never stored
        let base_bytes: f64 = base.nodes.iter().map(|n| n.cost.memory_bytes()).sum();
        let fused_bytes: f64 = fused.nodes.iter().map(|n| n.cost.memory_bytes()).sum();
        assert!(fused_bytes < base_bytes);
        let interior = &fused.nodes[p.0];
        assert!(interior.fused_into_prev);
    }

    #[test]
    fn attention_fusion_ignores_non_matching_chains() {
        // a bmm followed by something else must be left alone
        let mut b = GraphBuilder::new("plain");
        let a = b.input(&[2, 4, 4]);
        let c = b.input(&[2, 4, 4]);
        let s = b.push(OpKind::Bmm, &[a, c], "mm").unwrap();
        b.push(OpKind::Relu, &[s], "act").unwrap();
        let g = b.finish();
        let base = plan(&g, Flow::Eager, true);
        let opt = plan_with_options(
            &g,
            Flow::Eager,
            true,
            RuntimeOptions {
                fuse_attention: true,
            },
        );
        assert_eq!(base.total_kernels(), opt.total_kernels());
    }

    #[test]
    fn dispatch_ordering_across_flows() {
        assert!(Flow::Eager.dispatch_s() > Flow::TorchScript.dispatch_s());
        assert!(Flow::TorchScript.dispatch_s() > Flow::Dynamo.dispatch_s());
        assert_eq!(Flow::all().len(), 4);
    }
}
