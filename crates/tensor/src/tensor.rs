//! The [`Tensor`] type: shared storage + shape + strides + offset.

use std::sync::Arc;

use crate::index::{offset_of, IndexIter};
use crate::shape::{broadcast_shapes, broadcast_strides, contiguous_strides, num_elements};
use crate::storage::{DType, Storage};
use crate::{Result, TensorError};

/// A dense n-dimensional array with PyTorch-style view semantics.
///
/// A `Tensor` is a *view* over reference-counted [`Storage`]: cloning is
/// cheap, layout operators (`permute`, `expand`, …) re-stride without
/// copying, and [`Tensor::contiguous`] materializes a view into fresh
/// row-major storage — the distinction the paper's *memory operator*
/// analysis relies on.
///
/// # Examples
///
/// ```
/// use ngb_tensor::Tensor;
/// let a = Tensor::zeros(&[2, 3]);
/// assert_eq!(a.numel(), 6);
/// assert!(a.is_contiguous());
/// ```
#[derive(Debug, Clone)]
pub struct Tensor {
    pub(crate) storage: Storage,
    pub(crate) shape: Vec<usize>,
    pub(crate) strides: Vec<isize>,
    pub(crate) offset: usize,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates an f32 tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor::full(shape, 0.0)
    }

    /// Creates an f32 tensor of ones.
    pub fn ones(shape: &[usize]) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Creates an f32 tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Tensor {
        let data = vec![value; num_elements(shape)];
        Tensor::from_vec(data, shape).expect("full: length matches by construction")
    }

    /// Creates a rank-0 (scalar) f32 tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::from_vec(vec![value], &[]).expect("scalar storage length is 1")
    }

    /// Creates an f32 tensor from `data` in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `data.len()` does not equal
    /// the element count of `shape`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ngb_tensor::Tensor;
    /// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// assert_eq!(t.at(&[1, 0])?, 3.0);
    /// # Ok::<(), ngb_tensor::TensorError>(())
    /// ```
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Tensor> {
        Self::from_storage(Storage::from(data), shape)
    }

    /// Creates an i64 tensor from `data` in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a length/shape disagreement.
    pub fn from_i64(data: Vec<i64>, shape: &[usize]) -> Result<Tensor> {
        Self::from_storage(Storage::from(data), shape)
    }

    /// Creates a bool tensor from `data` in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a length/shape disagreement.
    pub fn from_bool(data: Vec<bool>, shape: &[usize]) -> Result<Tensor> {
        Self::from_storage(Storage::from(data), shape)
    }

    fn from_storage(storage: Storage, shape: &[usize]) -> Result<Tensor> {
        if storage.len() != num_elements(shape) {
            return Err(TensorError::ShapeMismatch {
                expected: vec![num_elements(shape)],
                actual: vec![storage.len()],
                op: "from_vec",
            });
        }
        Ok(Tensor {
            storage,
            strides: contiguous_strides(shape),
            shape: shape.to_vec(),
            offset: 0,
        })
    }

    /// Creates a 1-D f32 tensor with values `start, start+step, …` up to but
    /// excluding `end`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or does not move from `start` toward `end`.
    pub fn arange(start: f32, end: f32, step: f32) -> Tensor {
        assert!(step != 0.0, "arange step must be nonzero");
        assert!(
            (end - start) * step >= 0.0,
            "arange step must move from start toward end"
        );
        let n = ((end - start) / step).ceil().max(0.0) as usize;
        let data: Vec<f32> = (0..n).map(|i| start + i as f32 * step).collect();
        Tensor::from_vec(data, &[n]).expect("arange length matches")
    }

    // ------------------------------------------------------------------
    // Metadata
    // ------------------------------------------------------------------

    /// The logical shape of this view.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Per-dimension strides in elements (may be 0 for expanded dims).
    pub fn strides(&self) -> &[isize] {
        &self.strides
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Number of logical elements.
    pub fn numel(&self) -> usize {
        num_elements(&self.shape)
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.storage.dtype()
    }

    /// Logical size in bytes (elements × element size), as used by the
    /// analytic memory-traffic model.
    pub fn size_bytes(&self) -> usize {
        self.numel() * self.dtype().size_bytes()
    }

    /// Whether this view is dense row-major over its storage region.
    ///
    /// Size-0 and size-1 tensors are trivially contiguous.
    pub fn is_contiguous(&self) -> bool {
        let mut acc = 1isize;
        for (&dim, &stride) in self.shape.iter().zip(&self.strides).rev() {
            if dim == 1 {
                continue; // stride of a size-1 dim is irrelevant
            }
            if stride != acc {
                return false;
            }
            acc *= dim as isize;
        }
        true
    }

    /// Attempts to reclaim this tensor's f32 heap buffer for reuse.
    ///
    /// Succeeds only when the tensor is a contiguous, zero-offset, full view
    /// of uniquely owned f32 storage — i.e. dropping it would free the
    /// buffer anyway. Execution engines use this to recycle dead activation
    /// and weight storage through an arena instead of round-tripping every
    /// buffer through the global allocator.
    ///
    /// Returns `None` (dropping the tensor normally) when the storage is
    /// shared, non-f32, or viewed through a nontrivial layout.
    pub fn try_reclaim_f32(self) -> Option<Vec<f32>> {
        if self.offset != 0 || !self.is_contiguous() {
            return None;
        }
        match self.storage {
            Storage::F32(arc) if arc.len() == num_elements(&self.shape) => {
                Arc::try_unwrap(arc).ok()
            }
            _ => None,
        }
    }

    /// Whether this view aliases the same storage as `other`.
    ///
    /// Used in tests to verify which memory operators copy and which do not.
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        match (&self.storage, &other.storage) {
            (Storage::F32(a), Storage::F32(b)) => Arc::ptr_eq(a, b),
            (Storage::I64(a), Storage::I64(b)) => Arc::ptr_eq(a, b),
            (Storage::Bool(a), Storage::Bool(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Element access
    // ------------------------------------------------------------------

    fn check_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() || index.iter().zip(&self.shape).any(|(&i, &d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            });
        }
        Ok(offset_of(index, &self.strides, self.offset))
    }

    /// Reads the f32 element at `index`.
    ///
    /// # Errors
    ///
    /// Fails when the index is out of bounds or the tensor is not f32.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        let off = self.check_index(index)?;
        self.storage
            .as_f32()
            .map(|s| s[off])
            .ok_or(TensorError::DTypeMismatch {
                expected: "f32",
                actual: self.dtype().name(),
                op: "at",
            })
    }

    /// Reads the i64 element at `index`.
    ///
    /// # Errors
    ///
    /// Fails when the index is out of bounds or the tensor is not i64.
    pub fn at_i64(&self, index: &[usize]) -> Result<i64> {
        let off = self.check_index(index)?;
        self.storage
            .as_i64()
            .map(|s| s[off])
            .ok_or(TensorError::DTypeMismatch {
                expected: "i64",
                actual: self.dtype().name(),
                op: "at_i64",
            })
    }

    /// Reads the bool element at `index`.
    ///
    /// # Errors
    ///
    /// Fails when the index is out of bounds or the tensor is not bool.
    pub fn at_bool(&self, index: &[usize]) -> Result<bool> {
        let off = self.check_index(index)?;
        self.storage
            .as_bool()
            .map(|s| s[off])
            .ok_or(TensorError::DTypeMismatch {
                expected: "bool",
                actual: self.dtype().name(),
                op: "at_bool",
            })
    }

    /// Writes `value` at `index`, copying the storage first if it is shared
    /// (copy-on-write).
    ///
    /// # Errors
    ///
    /// Fails when the index is out of bounds or the tensor is not f32.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.check_index(index)?;
        match &mut self.storage {
            Storage::F32(v) => {
                Arc::make_mut(v)[off] = value;
                Ok(())
            }
            _ => Err(TensorError::DTypeMismatch {
                expected: "f32",
                actual: self.dtype().name(),
                op: "set",
            }),
        }
    }

    /// The single value of a rank-0 or single-element f32 tensor.
    ///
    /// # Errors
    ///
    /// Fails when the tensor has more than one element or is not f32.
    pub fn item(&self) -> Result<f32> {
        if self.numel() != 1 {
            return Err(TensorError::InvalidArgument(format!(
                "item() requires exactly one element, tensor has {}",
                self.numel()
            )));
        }
        let ix = vec![0; self.rank()];
        self.at(&ix)
    }

    /// Borrows the raw f32 buffer if this view is contiguous f32 starting at
    /// offset 0 of storage that exactly covers it — the fast path used by
    /// hot kernels.
    pub fn as_slice_f32(&self) -> Option<&[f32]> {
        if self.dtype() == DType::F32 && self.is_contiguous() {
            self.storage
                .as_f32()
                .map(|s| &s[self.offset..self.offset + self.numel()])
        } else {
            None
        }
    }

    /// Borrows the **entire** backing f32 storage, regardless of layout.
    ///
    /// Unlike [`Tensor::as_slice_f32`] this does not require contiguity: it
    /// is the raw buffer strided kernels index into via
    /// [`Tensor::storage_offset`] and [`Tensor::strides`] (or a
    /// [`LaneMap`](crate::LaneMap)). Returns `None` for non-f32 storage.
    pub fn storage_f32(&self) -> Option<&[f32]> {
        self.storage.as_f32()
    }

    /// This view's base offset into its backing storage, in elements.
    pub fn storage_offset(&self) -> usize {
        self.offset
    }

    /// Copies the logical contents (row-major) into a `Vec<f32>`.
    ///
    /// # Errors
    ///
    /// Fails when the tensor is not f32.
    pub fn to_vec_f32(&self) -> Result<Vec<f32>> {
        if let Some(s) = self.as_slice_f32() {
            return Ok(s.to_vec());
        }
        let src = self.storage.as_f32().ok_or(TensorError::DTypeMismatch {
            expected: "f32",
            actual: self.dtype().name(),
            op: "to_vec_f32",
        })?;
        Ok(IndexIter::new(&self.shape)
            .map(|ix| src[offset_of(&ix, &self.strides, self.offset)])
            .collect())
    }

    /// Copies the logical contents (row-major) into a `Vec<i64>`.
    ///
    /// # Errors
    ///
    /// Fails when the tensor is not i64.
    pub fn to_vec_i64(&self) -> Result<Vec<i64>> {
        let src = self.storage.as_i64().ok_or(TensorError::DTypeMismatch {
            expected: "i64",
            actual: self.dtype().name(),
            op: "to_vec_i64",
        })?;
        Ok(IndexIter::new(&self.shape)
            .map(|ix| src[offset_of(&ix, &self.strides, self.offset)])
            .collect())
    }

    /// Copies the logical contents (row-major) into a `Vec<bool>`.
    ///
    /// # Errors
    ///
    /// Fails when the tensor is not bool.
    pub fn to_vec_bool(&self) -> Result<Vec<bool>> {
        let src = self.storage.as_bool().ok_or(TensorError::DTypeMismatch {
            expected: "bool",
            actual: self.dtype().name(),
            op: "to_vec_bool",
        })?;
        Ok(IndexIter::new(&self.shape)
            .map(|ix| src[offset_of(&ix, &self.strides, self.offset)])
            .collect())
    }

    // ------------------------------------------------------------------
    // Functional combinators used by the op kernels
    // ------------------------------------------------------------------

    /// Applies `f` element-wise, returning a new contiguous f32 tensor.
    ///
    /// # Errors
    ///
    /// Fails when the tensor is not f32.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Result<Tensor> {
        let data = self.to_vec_f32()?;
        Tensor::from_vec(data.into_iter().map(f).collect(), &self.shape)
    }

    /// Applies `f` element-wise, mutating the storage in place when this
    /// tensor is the unique owner of a dense buffer — the zero-allocation
    /// path fused kernels take for their epilogue loops. Falls back to
    /// [`Tensor::map`] semantics (one new buffer) when the storage is
    /// shared or viewed through a nontrivial layout.
    ///
    /// # Errors
    ///
    /// Fails when the tensor is not f32.
    pub fn map_into(self, f: impl Fn(f32) -> f32) -> Result<Tensor> {
        if self.offset != 0 || !self.is_contiguous() {
            return self.map(f);
        }
        let Tensor {
            storage,
            shape,
            strides,
            offset,
        } = self;
        match storage {
            Storage::F32(arc) if arc.len() == num_elements(&shape) => match Arc::try_unwrap(arc) {
                Ok(mut data) => {
                    for v in &mut data {
                        *v = f(*v);
                    }
                    Ok(Tensor {
                        storage: Storage::F32(Arc::new(data)),
                        shape,
                        strides,
                        offset,
                    })
                }
                Err(arc) => Tensor {
                    storage: Storage::F32(arc),
                    shape,
                    strides,
                    offset,
                }
                .map(f),
            },
            other => Tensor {
                storage: other,
                shape,
                strides,
                offset,
            }
            .map(f),
        }
    }

    /// Applies `f` pairwise with NumPy-style broadcasting, returning a new
    /// contiguous f32 tensor of the broadcast shape.
    ///
    /// # Errors
    ///
    /// Fails when shapes cannot broadcast or either tensor is not f32.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        let out_shape = broadcast_shapes(&self.shape, &other.shape)?;
        let ls = self.storage.as_f32().ok_or(TensorError::DTypeMismatch {
            expected: "f32",
            actual: self.dtype().name(),
            op: "zip_map",
        })?;
        let rs = other.storage.as_f32().ok_or(TensorError::DTypeMismatch {
            expected: "f32",
            actual: other.dtype().name(),
            op: "zip_map",
        })?;
        // Fast path: identical contiguous shapes.
        if self.shape == other.shape {
            if let (Some(a), Some(b)) = (self.as_slice_f32(), other.as_slice_f32()) {
                let data: Vec<f32> = a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect();
                return Tensor::from_vec(data, &out_shape);
            }
        }
        // Fast path: contiguous lhs with rhs broadcast over a trailing
        // suffix (bias adds, per-channel affine transforms) — the pattern
        // every normalization and residual in the model suite hits.
        if out_shape == self.shape && other.numel() > 0 {
            if let (Some(a), Some(b)) = (self.as_slice_f32(), other.as_slice_f32()) {
                let suffix = other.numel();
                if self.numel().is_multiple_of(suffix) {
                    let pad = out_shape.len() - other.shape.len();
                    let trailing_match = other
                        .shape
                        .iter()
                        .zip(&out_shape[pad..])
                        .all(|(&o, &s)| o == s);
                    if trailing_match {
                        let mut data = Vec::with_capacity(self.numel());
                        for chunk in a.chunks_exact(suffix) {
                            data.extend(chunk.iter().zip(b).map(|(&x, &y)| f(x, y)));
                        }
                        return Tensor::from_vec(data, &out_shape);
                    }
                }
            }
        }
        // Fast path: contiguous lhs with rhs broadcast from a single axis
        // (`[1, C, 1, 1]`-style per-channel parameters in batch norms).
        if out_shape == self.shape {
            if let (Some(a), Some(b)) = (self.as_slice_f32(), other.as_slice_f32()) {
                let pad = out_shape.len() - other.shape.len();
                let non_unit: Vec<usize> = other
                    .shape
                    .iter()
                    .enumerate()
                    .filter(|&(_, &d)| d != 1)
                    .map(|(i, _)| i)
                    .collect();
                if non_unit.len() == 1 {
                    let axis = pad + non_unit[0];
                    let c = other.shape[non_unit[0]];
                    if out_shape[axis] == c {
                        let plane: usize = out_shape[axis + 1..].iter().product();
                        let mut data = Vec::with_capacity(self.numel());
                        for (i, &x) in a.iter().enumerate() {
                            data.push(f(x, b[(i / plane) % c]));
                        }
                        return Tensor::from_vec(data, &out_shape);
                    }
                }
            }
        }
        let lstr = broadcast_strides(&self.shape, &self.strides, &out_shape);
        let rstr = broadcast_strides(&other.shape, &other.strides, &out_shape);
        let data: Vec<f32> = IndexIter::new(&out_shape)
            .map(|ix| {
                f(
                    ls[offset_of(&ix, &lstr, self.offset)],
                    rs[offset_of(&ix, &rstr, other.offset)],
                )
            })
            .collect();
        Tensor::from_vec(data, &out_shape)
    }

    /// Splits the shape around `dim` into `(outer, d, inner)`: the product
    /// of the dims before `dim`, the size of `dim` itself, and the product
    /// of the dims after it. In a contiguous row-major buffer, reduction
    /// lane `(o, l)` then occupies elements `o * d * inner + t * inner + l`
    /// for `t in 0..d` — the decomposition fused lane kernels (softmax and
    /// friends) iterate over.
    ///
    /// # Errors
    ///
    /// Fails when `dim` is out of range.
    pub fn lane_dims(&self, dim: usize) -> Result<(usize, usize, usize)> {
        if dim >= self.rank() {
            return Err(TensorError::InvalidDim {
                dim,
                rank: self.rank(),
            });
        }
        let outer: usize = self.shape[..dim].iter().product();
        let inner: usize = self.shape[dim + 1..].iter().product();
        Ok((outer, self.shape[dim], inner))
    }

    /// Reduces dimension `dim` with `fold`, starting from `init` for every
    /// output lane. When `keepdim` is true the reduced dim is kept as size 1.
    ///
    /// # Errors
    ///
    /// Fails when `dim` is out of range or the tensor is not f32.
    pub fn reduce_dim(
        &self,
        dim: usize,
        keepdim: bool,
        init: f32,
        fold: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        if dim >= self.rank() {
            return Err(TensorError::InvalidDim {
                dim,
                rank: self.rank(),
            });
        }
        let src = self.storage.as_f32().ok_or(TensorError::DTypeMismatch {
            expected: "f32",
            actual: self.dtype().name(),
            op: "reduce_dim",
        })?;
        let mut out_shape = self.shape.clone();
        out_shape[dim] = 1;
        let mut out = vec![init; num_elements(&out_shape)];
        let out_strides = contiguous_strides(&out_shape);
        for ix in IndexIter::new(&self.shape) {
            let v = src[offset_of(&ix, &self.strides, self.offset)];
            let mut oix = ix.clone();
            oix[dim] = 0;
            let o = offset_of(&oix, &out_strides, 0);
            out[o] = fold(out[o], v);
        }
        let t = Tensor::from_vec(out, &out_shape)?;
        if keepdim {
            Ok(t)
        } else {
            let squeezed: Vec<usize> = out_shape
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != dim)
                .map(|(_, &d)| d)
                .collect();
            t.reshape(&squeezed)
        }
    }
}

impl PartialEq for Tensor {
    /// Logical equality: same dtype, shape, and element values (views with
    /// different strides over the same values compare equal).
    fn eq(&self, other: &Self) -> bool {
        if self.dtype() != other.dtype() || self.shape != other.shape {
            return false;
        }
        match self.dtype() {
            DType::F32 => self.to_vec_f32().unwrap() == other.to_vec_f32().unwrap(),
            DType::I64 => self.to_vec_i64().unwrap() == other.to_vec_i64().unwrap(),
            DType::Bool => self.to_vec_bool().unwrap() == other.to_vec_bool().unwrap(),
        }
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor<{}>{:?}", self.dtype(), self.shape)?;
        if self.numel() <= 16 {
            match self.dtype() {
                DType::F32 => write!(f, " {:?}", self.to_vec_f32().map_err(|_| std::fmt::Error)?),
                DType::I64 => write!(f, " {:?}", self.to_vec_i64().map_err(|_| std::fmt::Error)?),
                DType::Bool => write!(f, " {:?}", self.to_vec_bool().map_err(|_| std::fmt::Error)?),
            }
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).to_vec_f32().unwrap(), vec![0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).to_vec_f32().unwrap(), vec![1.0; 3]);
        assert_eq!(Tensor::scalar(7.0).item().unwrap(), 7.0);
        let a = Tensor::arange(0.0, 5.0, 2.0);
        assert_eq!(a.to_vec_f32().unwrap(), vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn indexing_and_set_cow() {
        let mut a = Tensor::zeros(&[2, 2]);
        let b = a.clone();
        a.set(&[0, 1], 9.0).unwrap();
        assert_eq!(a.at(&[0, 1]).unwrap(), 9.0);
        // b must be unaffected: set() copied on write.
        assert_eq!(b.at(&[0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn index_out_of_bounds() {
        let a = Tensor::zeros(&[2, 2]);
        assert!(a.at(&[2, 0]).is_err());
        assert!(a.at(&[0]).is_err());
    }

    #[test]
    fn dtype_mismatch_reported() {
        let a = Tensor::from_i64(vec![1, 2], &[2]).unwrap();
        assert!(matches!(a.at(&[0]), Err(TensorError::DTypeMismatch { .. })));
        assert_eq!(a.at_i64(&[1]).unwrap(), 2);
    }

    #[test]
    fn zip_map_broadcasts() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        let c = a.zip_map(&b, |x, y| x + y).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(
            c.to_vec_f32().unwrap(),
            vec![11.0, 21.0, 12.0, 22.0, 13.0, 23.0]
        );
    }

    #[test]
    fn reduce_dim_sums() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let s = a.reduce_dim(1, false, 0.0, |acc, v| acc + v).unwrap();
        assert_eq!(s.shape(), &[2]);
        assert_eq!(s.to_vec_f32().unwrap(), vec![6.0, 15.0]);
        let k = a.reduce_dim(0, true, f32::NEG_INFINITY, f32::max).unwrap();
        assert_eq!(k.shape(), &[1, 3]);
        assert_eq!(k.to_vec_f32().unwrap(), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn logical_equality_ignores_strides() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = a.permute(&[1, 0]).unwrap().permute(&[1, 0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn size_bytes_counts_logical_elements() {
        let a = Tensor::zeros(&[2, 3]);
        assert_eq!(a.size_bytes(), 24);
    }

    #[test]
    fn display_nonempty() {
        let t = Tensor::scalar(1.0);
        assert!(!format!("{t}").is_empty());
        let big = Tensor::zeros(&[100]);
        assert!(format!("{big}").contains("[100]"));
    }

    #[test]
    fn lane_dims_decomposes_around_the_dim() {
        let t = Tensor::zeros(&[2, 5, 3]);
        assert_eq!(t.lane_dims(0).unwrap(), (1, 2, 15));
        assert_eq!(t.lane_dims(1).unwrap(), (2, 5, 3));
        assert_eq!(t.lane_dims(2).unwrap(), (10, 3, 1));
        assert!(t.lane_dims(3).is_err());
        assert!(Tensor::scalar(1.0).lane_dims(0).is_err());
    }

    #[test]
    fn reclaim_succeeds_only_on_unique_full_views() {
        // uniquely owned contiguous tensor: buffer comes back
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let v = t.try_reclaim_f32().expect("unique owner reclaims");
        assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0]);

        // shared storage: reclaim refuses while a clone is alive
        let t = Tensor::zeros(&[4]);
        let alias = t.clone();
        assert!(t.try_reclaim_f32().is_none());
        assert!(alias.try_reclaim_f32().is_some()); // last owner wins

        // nontrivial view: transposed 2x3 is not reclaimable
        let t = Tensor::from_vec(vec![0.0; 6], &[2, 3])
            .unwrap()
            .permute(&[1, 0])
            .unwrap();
        assert!(t.try_reclaim_f32().is_none());

        // i64 storage is not an f32 buffer
        let ids = Tensor::from_i64(vec![1, 2], &[2]).unwrap();
        assert!(ids.try_reclaim_f32().is_none());
    }
}
