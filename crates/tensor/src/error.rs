use std::fmt;

/// Error type returned by all fallible tensor operations.
///
/// Each variant carries enough context to diagnose the failing call without
/// a debugger; messages follow the lowercase, no-trailing-punctuation
/// convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (element count or per-dim) did not.
    ShapeMismatch {
        /// Shape expected by the operation.
        expected: Vec<usize>,
        /// Shape actually supplied.
        actual: Vec<usize>,
        /// Operation that raised the error.
        op: &'static str,
    },
    /// A multi-dimensional index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// Offending index.
        index: Vec<usize>,
        /// Shape indexed into.
        shape: Vec<usize>,
    },
    /// A dimension argument exceeded the tensor rank.
    InvalidDim {
        /// Requested dimension.
        dim: usize,
        /// Tensor rank.
        rank: usize,
    },
    /// A `view` was requested on a non-contiguous tensor whose strides
    /// cannot express the new shape without a copy (PyTorch raises the
    /// same error and models call `.contiguous()` first, which is exactly
    /// the overhead NonGEMM Bench wants to observe).
    NonContiguousView {
        /// Shape of the view that was requested.
        requested: Vec<usize>,
    },
    /// An axis permutation was not a permutation of `0..rank`.
    InvalidPermutation {
        /// The offending permutation.
        perm: Vec<usize>,
    },
    /// The element type of the tensor did not match what the operation needs.
    DTypeMismatch {
        /// Expected element type name.
        expected: &'static str,
        /// Actual element type name.
        actual: &'static str,
        /// Operation that raised the error.
        op: &'static str,
    },
    /// Two shapes could not be broadcast together.
    BroadcastError {
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// Any other invalid argument, with a human-readable description.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                expected,
                actual,
                op,
            } => write!(
                f,
                "shape mismatch in {op}: expected {expected:?}, got {actual:?}"
            ),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidDim { dim, rank } => {
                write!(f, "dimension {dim} invalid for tensor of rank {rank}")
            }
            TensorError::NonContiguousView { requested } => write!(
                f,
                "cannot view non-contiguous tensor as {requested:?}; call contiguous() first"
            ),
            TensorError::InvalidPermutation { perm } => {
                write!(f, "{perm:?} is not a valid axis permutation")
            }
            TensorError::DTypeMismatch {
                expected,
                actual,
                op,
            } => {
                write!(
                    f,
                    "dtype mismatch in {op}: expected {expected}, got {actual}"
                )
            }
            TensorError::BroadcastError { lhs, rhs } => {
                write!(f, "cannot broadcast shapes {lhs:?} and {rhs:?}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = TensorError::ShapeMismatch {
            expected: vec![2, 3],
            actual: vec![3, 2],
            op: "matmul",
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
