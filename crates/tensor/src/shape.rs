//! Shape and stride arithmetic shared by the whole crate.

use crate::TensorError;

/// Returns the number of elements implied by `shape`.
///
/// An empty shape denotes a scalar and has one element.
///
/// # Examples
///
/// ```
/// assert_eq!(ngb_tensor::num_elements(&[2, 3, 4]), 24);
/// assert_eq!(ngb_tensor::num_elements(&[]), 1);
/// ```
pub fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Computes row-major ("C order") strides for `shape`, in **elements**.
///
/// # Examples
///
/// ```
/// assert_eq!(ngb_tensor::contiguous_strides(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
pub fn contiguous_strides(shape: &[usize]) -> Vec<isize> {
    let mut strides = vec![1isize; shape.len()];
    let mut acc = 1isize;
    for (i, &dim) in shape.iter().enumerate().rev() {
        strides[i] = acc;
        acc *= dim as isize;
    }
    strides
}

/// Broadcasts two shapes following the NumPy/PyTorch rules: trailing
/// dimensions must be equal or one of them must be `1`.
///
/// # Errors
///
/// Returns [`TensorError::BroadcastError`] when a trailing dimension pair is
/// incompatible.
///
/// # Examples
///
/// ```
/// let s = ngb_tensor::broadcast_shapes(&[8, 1, 6], &[7, 1]).unwrap();
/// assert_eq!(s, vec![8, 7, 6]);
/// ```
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>, TensorError> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let l = if i < rank - lhs.len() {
            1
        } else {
            lhs[i - (rank - lhs.len())]
        };
        let r = if i < rank - rhs.len() {
            1
        } else {
            rhs[i - (rank - rhs.len())]
        };
        out[i] = if l == r || r == 1 {
            l
        } else if l == 1 {
            r
        } else {
            return Err(TensorError::BroadcastError {
                lhs: lhs.to_vec(),
                rhs: rhs.to_vec(),
            });
        };
    }
    Ok(out)
}

/// Strides to iterate a tensor of `shape`/`strides` as if it had been
/// broadcast to `target` (size-1 dims get stride 0).
///
/// Callers must have validated broadcastability via [`broadcast_shapes`].
pub(crate) fn broadcast_strides(
    shape: &[usize],
    strides: &[isize],
    target: &[usize],
) -> Vec<isize> {
    let pad = target.len() - shape.len();
    let mut out = vec![0isize; target.len()];
    for i in 0..shape.len() {
        out[pad + i] = if shape[i] == 1 && target[pad + i] != 1 {
            0
        } else {
            strides[i]
        };
    }
    out
}

/// Resolves one `-1`-style wildcard in a reshape target.
///
/// `target` entries are `usize::MAX` for the inferred dimension. Returns the
/// fully resolved shape.
///
/// # Errors
///
/// Fails if more than one wildcard is present or element counts do not match.
pub(crate) fn resolve_reshape(numel: usize, target: &[usize]) -> Result<Vec<usize>, TensorError> {
    let wildcards = target.iter().filter(|&&d| d == usize::MAX).count();
    if wildcards > 1 {
        return Err(TensorError::InvalidArgument(
            "reshape target may contain at most one inferred dimension".into(),
        ));
    }
    let mut out = target.to_vec();
    if wildcards == 1 {
        let known: usize = target.iter().filter(|&&d| d != usize::MAX).product();
        if known == 0 || !numel.is_multiple_of(known) {
            return Err(TensorError::ShapeMismatch {
                expected: vec![numel],
                actual: target
                    .iter()
                    .map(|&d| if d == usize::MAX { 0 } else { d })
                    .collect(),
                op: "reshape",
            });
        }
        for d in out.iter_mut() {
            if *d == usize::MAX {
                *d = numel / known;
            }
        }
    }
    if num_elements(&out) != numel {
        return Err(TensorError::ShapeMismatch {
            expected: vec![numel],
            actual: out,
            op: "reshape",
        });
    }
    Ok(out)
}

/// Computes strides that let a view of `target` alias the same storage as a
/// tensor of `shape`/`strides`, or `None` when no such aliasing exists and a
/// reshape must copy.
///
/// This is PyTorch's `computeStride` check: the input is scanned back-to-front
/// in maximal chunks of dimensions that are laid out contiguously relative to
/// each other; each chunk may be merged/split freely into target dims, but a
/// target dim can never span two chunks.
///
/// `shape` and `target` must describe the same element count.
///
/// # Examples
///
/// ```
/// use ngb_tensor::reshape_strides;
/// // contiguous [2,3,4] -> [6,4] merges cleanly
/// assert_eq!(reshape_strides(&[2, 3, 4], &[12, 4, 1], &[6, 4]), Some(vec![4, 1]));
/// // a full transpose cannot be viewed
/// assert_eq!(reshape_strides(&[2, 3], &[1, 2], &[6]), None);
/// ```
pub fn reshape_strides(shape: &[usize], strides: &[isize], target: &[usize]) -> Option<Vec<isize>> {
    debug_assert_eq!(num_elements(shape), num_elements(target));
    if shape.is_empty() || num_elements(shape) == 0 {
        // Scalars and empty tensors view freely; strides are arbitrary.
        return Some(contiguous_strides(target));
    }
    let mut out = vec![0isize; target.len()];
    let mut view_d = target.len() as isize - 1;
    let mut chunk_base_stride = *strides.last().expect("non-empty shape");
    let mut tensor_numel: usize = 1;
    let mut view_numel: usize = 1;
    for d in (0..shape.len()).rev() {
        tensor_numel *= shape[d];
        // A chunk ends where the next-outer dim is not contiguous with it
        // (size-1 dims never break a chunk: their stride is irrelevant).
        let chunk_end = d == 0
            || (shape[d - 1] != 1 && strides[d - 1] != tensor_numel as isize * chunk_base_stride);
        if chunk_end {
            while view_d >= 0 && (view_numel < tensor_numel || target[view_d as usize] == 1) {
                out[view_d as usize] = view_numel as isize * chunk_base_stride;
                view_numel *= target[view_d as usize];
                view_d -= 1;
            }
            if view_numel != tensor_numel {
                return None;
            }
            if d > 0 {
                chunk_base_stride = strides[d - 1];
                tensor_numel = 1;
                view_numel = 1;
            }
        }
    }
    if view_d != -1 {
        return None;
    }
    Some(out)
}

/// Normalizes a possibly-negative dimension index (`-1` = last) into `0..rank`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidDim`] when out of range.
pub fn normalize_dim(dim: isize, rank: usize) -> Result<usize, TensorError> {
    let d = if dim < 0 { dim + rank as isize } else { dim };
    if d < 0 || d as usize >= rank {
        Err(TensorError::InvalidDim {
            dim: dim.unsigned_abs(),
            rank,
        })
    } else {
        Ok(d as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_of_scalar_are_empty() {
        assert!(contiguous_strides(&[]).is_empty());
        assert_eq!(num_elements(&[]), 1);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(contiguous_strides(&[4]), vec![1]);
        assert_eq!(contiguous_strides(&[2, 3]), vec![3, 1]);
        assert_eq!(contiguous_strides(&[5, 1, 2]), vec![2, 2, 1]);
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[3, 1], &[1, 4]).unwrap(), vec![3, 4]);
        assert_eq!(broadcast_shapes(&[1], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[2]).unwrap(), vec![2]);
    }

    #[test]
    fn broadcast_incompatible() {
        assert!(broadcast_shapes(&[2, 3], &[4, 3]).is_err());
    }

    #[test]
    fn broadcast_strides_zero_out_expanded_dims() {
        let s = broadcast_strides(&[3, 1], &[1, 1], &[3, 4]);
        assert_eq!(s, vec![1, 0]);
        let s = broadcast_strides(&[4], &[1], &[2, 3, 4]);
        assert_eq!(s, vec![0, 0, 1]);
    }

    #[test]
    fn reshape_wildcard() {
        assert_eq!(resolve_reshape(12, &[3, usize::MAX]).unwrap(), vec![3, 4]);
        assert_eq!(resolve_reshape(12, &[12]).unwrap(), vec![12]);
        assert!(resolve_reshape(12, &[5, usize::MAX]).is_err());
        assert!(resolve_reshape(12, &[usize::MAX, usize::MAX]).is_err());
        assert!(resolve_reshape(12, &[3, 5]).is_err());
    }

    #[test]
    fn reshape_strides_contiguous_merge_split() {
        // merge middle dims of a contiguous tensor
        assert_eq!(
            reshape_strides(&[2, 3, 4], &[12, 4, 1], &[2, 12]),
            Some(vec![12, 1])
        );
        // split a dim of a contiguous tensor
        assert_eq!(
            reshape_strides(&[6, 4], &[4, 1], &[2, 3, 4]),
            Some(vec![12, 4, 1])
        );
    }

    #[test]
    fn reshape_strides_permuted_batch_merge() {
        // [1, H, T, hd] permuted view with strides of [1, T, H, hd] source:
        // merging the size-1 batch into H stays a view.
        let (h, t, hd) = (2usize, 3usize, 4usize);
        let strides = [
            (t * h * hd) as isize, // batch (size 1)
            hd as isize,           // H after permute
            (h * hd) as isize,     // T after permute
            1,
        ];
        assert_eq!(
            reshape_strides(&[1, h, t, hd], &strides, &[h, t, hd]),
            Some(vec![hd as isize, (h * hd) as isize, 1])
        );
    }

    #[test]
    fn reshape_strides_rejects_chunk_spanning_merge() {
        // transpose of [2,3]: merging both dims would span two chunks
        assert_eq!(reshape_strides(&[2, 3], &[1, 2], &[6]), None);
        // merging H and T of a permuted [H, T, hd] view is incompatible
        assert_eq!(reshape_strides(&[2, 3, 4], &[4, 8, 1], &[6, 4]), None);
    }

    #[test]
    fn reshape_strides_size_one_dims_are_free() {
        // inserting/removing size-1 dims never copies
        assert_eq!(
            reshape_strides(&[2, 3], &[3, 1], &[2, 1, 3, 1]),
            Some(vec![3, 3, 1, 1])
        );
        assert_eq!(
            reshape_strides(&[2, 1, 3], &[3, 99, 1], &[2, 3]),
            Some(vec![3, 1])
        );
    }

    #[test]
    fn reshape_strides_scalar_and_empty() {
        assert_eq!(reshape_strides(&[], &[], &[1, 1]), Some(vec![1, 1]));
        assert_eq!(reshape_strides(&[2, 0], &[0, 1], &[0, 2]), Some(vec![2, 1]));
    }

    #[test]
    fn normalize_dim_handles_negative() {
        assert_eq!(normalize_dim(-1, 3).unwrap(), 2);
        assert_eq!(normalize_dim(0, 3).unwrap(), 0);
        assert!(normalize_dim(3, 3).is_err());
        assert!(normalize_dim(-4, 3).is_err());
    }
}
