//! Layout ("memory") operators: views, copies, concatenation and splitting.
//!
//! These are the tensor-level primitives behind the paper's **Memory**
//! operator group (Table 2): `view`, `reshape`, `permute`, `expand`,
//! `squeeze`, `contiguous`, `split`, `cat`. Zero-copy operators return a new
//! `Tensor` header over shared storage; copying operators allocate.

use crate::index::{offset_of, IndexIter};
use crate::shape::{
    contiguous_strides, normalize_dim, num_elements, reshape_strides, resolve_reshape,
};
use crate::storage::{DType, Storage};
use crate::tensor::Tensor;
use crate::{Result, TensorError};

impl Tensor {
    /// Returns a dense row-major copy of this tensor; returns a cheap clone
    /// when the view is already contiguous (like `torch.Tensor.contiguous`).
    pub fn contiguous(&self) -> Tensor {
        if self.is_contiguous() && self.offset == 0 && self.storage.len() == self.numel() {
            return self.clone();
        }
        crate::telemetry::note_materialized(self.numel() * self.dtype().size_bytes());
        let storage: Storage = match self.dtype() {
            DType::F32 => self.to_vec_f32().expect("dtype checked").into(),
            DType::I64 => self.to_vec_i64().expect("dtype checked").into(),
            DType::Bool => self.to_vec_bool().expect("dtype checked").into(),
        };
        Tensor {
            storage,
            strides: contiguous_strides(&self.shape),
            shape: self.shape.clone(),
            offset: 0,
        }
    }

    /// Zero-copy reshape of a **contiguous** tensor, mirroring
    /// `torch.Tensor.view`. Use [`Tensor::reshape`] when the tensor may not
    /// be contiguous.
    ///
    /// Pass `usize::MAX` for at most one dimension to infer it (`-1` in
    /// PyTorch).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NonContiguousView`] on a non-contiguous input
    /// and [`TensorError::ShapeMismatch`] when element counts differ.
    pub fn view(&self, shape: &[usize]) -> Result<Tensor> {
        let resolved = resolve_reshape(self.numel(), shape)?;
        if !self.is_contiguous() {
            return Err(TensorError::NonContiguousView {
                requested: resolved,
            });
        }
        Ok(Tensor {
            storage: self.storage.clone(),
            strides: contiguous_strides(&resolved),
            shape: resolved,
            offset: self.offset,
        })
    }

    /// Reshape that views when possible and copies otherwise, mirroring
    /// `torch.reshape`.
    ///
    /// Unlike [`Tensor::view`], non-contiguous inputs stay zero-copy whenever
    /// the target shape only merges/splits dims whose strides are compatible
    /// (PyTorch's `computeStride` check, see
    /// [`reshape_strides`](crate::reshape_strides)); only stride-incompatible
    /// reshapes materialize a dense copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        let resolved = resolve_reshape(self.numel(), shape)?;
        if self.is_contiguous() {
            return Ok(Tensor {
                storage: self.storage.clone(),
                strides: contiguous_strides(&resolved),
                shape: resolved,
                offset: self.offset,
            });
        }
        if let Some(strides) = reshape_strides(&self.shape, &self.strides, &resolved) {
            return Ok(Tensor {
                storage: self.storage.clone(),
                strides,
                shape: resolved,
                offset: self.offset,
            });
        }
        self.contiguous().view(&resolved)
    }

    /// Flattens dims `start..=end` into one (like `torch.flatten`).
    ///
    /// # Errors
    ///
    /// Fails when `start > end` or `end` is out of range.
    pub fn flatten(&self, start: usize, end: usize) -> Result<Tensor> {
        if start > end || end >= self.rank() {
            return Err(TensorError::InvalidDim {
                dim: end,
                rank: self.rank(),
            });
        }
        let mut shape: Vec<usize> = self.shape[..start].to_vec();
        shape.push(self.shape[start..=end].iter().product());
        shape.extend_from_slice(&self.shape[end + 1..]);
        self.reshape(&shape)
    }

    /// Zero-copy axis permutation (like `torch.permute`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPermutation`] when `perm` is not a
    /// permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        let rank = self.rank();
        let mut seen = vec![false; rank];
        if perm.len() != rank
            || perm
                .iter()
                .any(|&p| p >= rank || std::mem::replace(&mut seen[p], true))
        {
            return Err(TensorError::InvalidPermutation {
                perm: perm.to_vec(),
            });
        }
        Ok(Tensor {
            storage: self.storage.clone(),
            shape: perm.iter().map(|&p| self.shape[p]).collect(),
            strides: perm.iter().map(|&p| self.strides[p]).collect(),
            offset: self.offset,
        })
    }

    /// Zero-copy swap of two dimensions (like `torch.transpose`). Negative
    /// dims count from the end.
    ///
    /// # Errors
    ///
    /// Fails when either dim is out of range.
    pub fn transpose(&self, dim0: isize, dim1: isize) -> Result<Tensor> {
        let d0 = normalize_dim(dim0, self.rank())?;
        let d1 = normalize_dim(dim1, self.rank())?;
        let mut perm: Vec<usize> = (0..self.rank()).collect();
        perm.swap(d0, d1);
        self.permute(&perm)
    }

    /// Zero-copy broadcast of size-1 dims to `shape` (like `torch.expand`);
    /// expanded dims get stride 0.
    ///
    /// # Errors
    ///
    /// Fails when a non-1 dim differs from the target or ranks mismatch
    /// (after implicit left-padding).
    pub fn expand(&self, shape: &[usize]) -> Result<Tensor> {
        if shape.len() < self.rank() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: shape.to_vec(),
                op: "expand",
            });
        }
        let pad = shape.len() - self.rank();
        let mut strides = vec![0isize; shape.len()];
        for i in 0..self.rank() {
            let (own, tgt) = (self.shape[i], shape[pad + i]);
            if own == tgt {
                strides[pad + i] = self.strides[i];
            } else if own == 1 {
                strides[pad + i] = 0;
            } else {
                return Err(TensorError::ShapeMismatch {
                    expected: self.shape.clone(),
                    actual: shape.to_vec(),
                    op: "expand",
                });
            }
        }
        Ok(Tensor {
            storage: self.storage.clone(),
            shape: shape.to_vec(),
            strides,
            offset: self.offset,
        })
    }

    /// Removes dimension `dim` if it has size 1; errors otherwise
    /// (like `torch.squeeze(dim)`).
    ///
    /// # Errors
    ///
    /// Fails when `dim` is out of range or not size 1.
    pub fn squeeze(&self, dim: isize) -> Result<Tensor> {
        let d = normalize_dim(dim, self.rank())?;
        if self.shape[d] != 1 {
            return Err(TensorError::InvalidArgument(format!(
                "cannot squeeze dim {d} of size {}",
                self.shape[d]
            )));
        }
        let shape: Vec<usize> = self
            .shape
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != d)
            .map(|(_, &s)| s)
            .collect();
        let strides: Vec<isize> = self
            .strides
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != d)
            .map(|(_, &s)| s)
            .collect();
        Ok(Tensor {
            storage: self.storage.clone(),
            shape,
            strides,
            offset: self.offset,
        })
    }

    /// Inserts a size-1 dimension at `dim` (like `torch.unsqueeze`).
    /// `dim` may equal `rank` to append.
    ///
    /// # Errors
    ///
    /// Fails when `dim > rank`.
    pub fn unsqueeze(&self, dim: usize) -> Result<Tensor> {
        if dim > self.rank() {
            return Err(TensorError::InvalidDim {
                dim,
                rank: self.rank(),
            });
        }
        let mut shape = self.shape.clone();
        let mut strides = self.strides.clone();
        shape.insert(dim, 1);
        strides.insert(dim, 0);
        Ok(Tensor {
            storage: self.storage.clone(),
            shape,
            strides,
            offset: self.offset,
        })
    }

    /// Zero-copy slice of `len` elements starting at `start` along `dim`
    /// (like `torch.narrow`).
    ///
    /// # Errors
    ///
    /// Fails when the range exceeds the dimension.
    pub fn narrow(&self, dim: usize, start: usize, len: usize) -> Result<Tensor> {
        if dim >= self.rank() {
            return Err(TensorError::InvalidDim {
                dim,
                rank: self.rank(),
            });
        }
        if start + len > self.shape[dim] {
            return Err(TensorError::InvalidArgument(format!(
                "narrow range {start}..{} exceeds dim {dim} of size {}",
                start + len,
                self.shape[dim]
            )));
        }
        let mut shape = self.shape.clone();
        shape[dim] = len;
        let offset = (self.offset as isize + start as isize * self.strides[dim]) as usize;
        Ok(Tensor {
            storage: self.storage.clone(),
            shape,
            strides: self.strides.clone(),
            offset,
        })
    }

    /// Selects index `i` along `dim`, dropping that dim (like
    /// `torch.select` / integer indexing).
    ///
    /// # Errors
    ///
    /// Fails when `dim` or `i` is out of range.
    pub fn select(&self, dim: usize, i: usize) -> Result<Tensor> {
        self.narrow(dim, i, 1)?.squeeze(dim as isize)
    }

    /// Splits into chunks of size `size` along `dim` (last chunk may be
    /// smaller), zero-copy (like `torch.split`).
    ///
    /// # Errors
    ///
    /// Fails when `size == 0` or `dim` is out of range.
    pub fn split(&self, size: usize, dim: usize) -> Result<Vec<Tensor>> {
        if size == 0 {
            return Err(TensorError::InvalidArgument(
                "split size must be nonzero".into(),
            ));
        }
        if dim >= self.rank() {
            return Err(TensorError::InvalidDim {
                dim,
                rank: self.rank(),
            });
        }
        let total = self.shape[dim];
        let mut out = Vec::with_capacity(total.div_ceil(size));
        let mut start = 0;
        while start < total {
            let len = size.min(total - start);
            out.push(self.narrow(dim, start, len)?);
            start += len;
        }
        Ok(out)
    }

    /// Splits into `n` equal chunks along `dim`.
    ///
    /// # Errors
    ///
    /// Fails when the dim is not divisible by `n`.
    pub fn chunk(&self, n: usize, dim: usize) -> Result<Vec<Tensor>> {
        if n == 0 || dim >= self.rank() || !self.shape[dim].is_multiple_of(n) {
            return Err(TensorError::InvalidArgument(format!(
                "cannot chunk dim {dim} of size {} into {n} equal parts",
                self.shape.get(dim).copied().unwrap_or(0)
            )));
        }
        self.split(self.shape[dim] / n, dim)
    }

    /// Concatenates tensors along `dim`, allocating new storage
    /// (like `torch.cat`). All inputs must share one dtype (f32, i64, or
    /// bool) and agree on every other dimension.
    ///
    /// # Errors
    ///
    /// Fails on an empty input list, rank/shape disagreement, or mixed
    /// dtypes.
    pub fn cat(tensors: &[Tensor], dim: usize) -> Result<Tensor> {
        let first = tensors.first().ok_or_else(|| {
            TensorError::InvalidArgument("cat requires at least one tensor".into())
        })?;
        let rank = first.rank();
        if dim >= rank {
            return Err(TensorError::InvalidDim { dim, rank });
        }
        let mut out_shape = first.shape().to_vec();
        out_shape[dim] = 0;
        for t in tensors {
            if t.rank() != rank
                || t.shape()
                    .iter()
                    .enumerate()
                    .any(|(i, &d)| i != dim && d != out_shape[i] && out_shape[i] != 0)
            {
                return Err(TensorError::ShapeMismatch {
                    expected: first.shape().to_vec(),
                    actual: t.shape().to_vec(),
                    op: "cat",
                });
            }
            if t.dtype() != first.dtype() {
                return Err(TensorError::DTypeMismatch {
                    expected: first.dtype().name(),
                    actual: t.dtype().name(),
                    op: "cat",
                });
            }
            out_shape[dim] += t.shape()[dim];
        }
        match first.dtype() {
            DType::F32 => {
                let data = cat_copy(tensors, dim, &out_shape, 0.0f32, |t| {
                    t.storage.as_f32().expect("dtype checked")
                });
                Tensor::from_vec(data, &out_shape)
            }
            DType::I64 => {
                let data = cat_copy(tensors, dim, &out_shape, 0i64, |t| {
                    t.storage.as_i64().expect("dtype checked")
                });
                Tensor::from_i64(data, &out_shape)
            }
            DType::Bool => {
                let data = cat_copy(tensors, dim, &out_shape, false, |t| {
                    t.storage.as_bool().expect("dtype checked")
                });
                Tensor::from_bool(data, &out_shape)
            }
        }
    }

    /// Stacks tensors along a new leading `dim` (like `torch.stack`).
    ///
    /// # Errors
    ///
    /// Fails when shapes disagree or the list is empty.
    pub fn stack(tensors: &[Tensor], dim: usize) -> Result<Tensor> {
        let unsqueezed: Result<Vec<Tensor>> = tensors.iter().map(|t| t.unsqueeze(dim)).collect();
        Tensor::cat(&unsqueezed?, dim)
    }
}

/// Dtype-generic copy loop behind [`Tensor::cat`]: gathers every input's
/// elements into a dense row-major buffer shaped `out_shape`, offsetting
/// indices along `dim`. Callers guarantee all inputs share one dtype.
fn cat_copy<T: Copy>(
    tensors: &[Tensor],
    dim: usize,
    out_shape: &[usize],
    fill: T,
    slice_of: impl Fn(&Tensor) -> &[T],
) -> Vec<T> {
    let mut data = vec![fill; num_elements(out_shape)];
    let out_strides = contiguous_strides(out_shape);
    let mut base = 0usize;
    for t in tensors {
        let src = slice_of(t);
        for ix in IndexIter::new(t.shape()) {
            let mut oix = ix.clone();
            oix[dim] += base;
            data[offset_of(&oix, &out_strides, 0)] = src[offset_of(&ix, t.strides(), t.offset)];
        }
        base += t.shape()[dim];
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2x3() -> Tensor {
        Tensor::arange(0.0, 6.0, 1.0).reshape(&[2, 3]).unwrap()
    }

    #[test]
    fn view_is_zero_copy_and_checks_contiguity() {
        let a = t2x3();
        let v = a.view(&[3, 2]).unwrap();
        assert!(v.shares_storage(&a));
        let p = a.permute(&[1, 0]).unwrap();
        assert!(matches!(
            p.view(&[6]),
            Err(TensorError::NonContiguousView { .. })
        ));
    }

    #[test]
    fn view_infers_wildcard() {
        let a = t2x3();
        let v = a.view(&[usize::MAX, 2]).unwrap();
        assert_eq!(v.shape(), &[3, 2]);
    }

    #[test]
    fn reshape_copies_when_needed() {
        let a = t2x3().permute(&[1, 0]).unwrap();
        let r = a.reshape(&[6]).unwrap();
        assert_eq!(r.to_vec_f32().unwrap(), vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        assert!(!r.shares_storage(&a));
    }

    #[test]
    fn reshape_stays_zero_copy_on_compatible_strides() {
        // splitting the last dim of a transposed view never copies
        let a = Tensor::arange(0.0, 24.0, 1.0)
            .reshape(&[2, 3, 4])
            .unwrap()
            .transpose(0, 1)
            .unwrap(); // [3, 2, 4], strides [4, 12, 1]
        let r = a.reshape(&[3, 2, 2, 2]).unwrap();
        assert!(r.shares_storage(&a));
        assert_eq!(
            r.to_vec_f32().unwrap(),
            a.contiguous().to_vec_f32().unwrap()
        );

        // the attention-prologue merge: [1, H, T, hd] permuted view flattens
        // its size-1 batch into the heads dim without materializing
        let q = Tensor::arange(0.0, 24.0, 1.0)
            .reshape(&[1, 3, 2, 4])
            .unwrap()
            .permute(&[0, 2, 1, 3])
            .unwrap(); // [1, 2, 3, 4]
        let heads = q.reshape(&[2, 3, 4]).unwrap();
        assert!(heads.shares_storage(&q));
        assert_eq!(
            heads.to_vec_f32().unwrap(),
            q.contiguous().to_vec_f32().unwrap()
        );
    }

    #[test]
    fn reshape_of_narrowed_view_keeps_offset() {
        let a = t2x3().narrow(0, 1, 1).unwrap(); // [1,3] at offset 3, contiguous
        let r = a.reshape(&[3]).unwrap();
        assert!(r.shares_storage(&a));
        assert_eq!(r.to_vec_f32().unwrap(), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn permute_reads_transposed() {
        let a = t2x3();
        let p = a.permute(&[1, 0]).unwrap();
        assert_eq!(p.shape(), &[3, 2]);
        assert_eq!(p.at(&[2, 1]).unwrap(), 5.0);
        assert!(!p.is_contiguous());
        assert_eq!(
            p.contiguous().to_vec_f32().unwrap(),
            vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]
        );
    }

    #[test]
    fn transpose_negative_dims() {
        let a = Tensor::zeros(&[2, 3, 4]);
        let t = a.transpose(-1, -2).unwrap();
        assert_eq!(t.shape(), &[2, 4, 3]);
    }

    #[test]
    fn invalid_permutation_rejected() {
        let a = t2x3();
        assert!(a.permute(&[0, 0]).is_err());
        assert!(a.permute(&[0]).is_err());
        assert!(a.permute(&[0, 2]).is_err());
    }

    #[test]
    fn expand_zero_stride() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        let e = a.expand(&[2, 3]).unwrap();
        assert!(e.shares_storage(&a));
        assert_eq!(e.to_vec_f32().unwrap(), vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        // expand can also left-pad rank
        let b = Tensor::from_vec(vec![5.0], &[1]).unwrap();
        let e2 = b.expand(&[2, 2, 1]).unwrap();
        assert_eq!(e2.numel(), 4);
        assert!(a.expand(&[3, 3]).is_err());
    }

    #[test]
    fn squeeze_unsqueeze_roundtrip() {
        let a = Tensor::zeros(&[2, 1, 3]);
        let s = a.squeeze(1).unwrap();
        assert_eq!(s.shape(), &[2, 3]);
        assert!(a.squeeze(0).is_err());
        let u = s.unsqueeze(1).unwrap();
        assert_eq!(u.shape(), &[2, 1, 3]);
        assert!(u.shares_storage(&a));
    }

    #[test]
    fn narrow_and_select() {
        let a = t2x3();
        let n = a.narrow(1, 1, 2).unwrap();
        assert_eq!(n.shape(), &[2, 2]);
        assert_eq!(n.to_vec_f32().unwrap(), vec![1.0, 2.0, 4.0, 5.0]);
        let row = a.select(0, 1).unwrap();
        assert_eq!(row.to_vec_f32().unwrap(), vec![3.0, 4.0, 5.0]);
        assert!(a.narrow(1, 2, 2).is_err());
    }

    #[test]
    fn split_sizes() {
        let a = Tensor::arange(0.0, 10.0, 1.0);
        let parts = a.split(4, 0).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[2].shape(), &[2]);
        assert!(parts.iter().all(|p| p.shares_storage(&a)));
        assert!(a.split(0, 0).is_err());
    }

    #[test]
    fn chunk_requires_divisibility() {
        let a = Tensor::arange(0.0, 9.0, 1.0);
        assert_eq!(a.chunk(3, 0).unwrap().len(), 3);
        assert!(a.chunk(2, 0).is_err());
    }

    #[test]
    fn cat_allocates_and_concatenates() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap();
        let c = Tensor::cat(&[a.clone(), b], 0).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert!(!c.shares_storage(&a));
        assert_eq!(c.to_vec_f32().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        let d = Tensor::cat(&[c.clone(), c.clone()], 1).unwrap();
        assert_eq!(d.shape(), &[2, 4]);
    }

    #[test]
    fn cat_validates() {
        assert!(Tensor::cat(&[], 0).is_err());
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(Tensor::cat(&[a.clone(), b], 0).is_err());
        assert!(Tensor::cat(&[a], 5).is_err());
    }

    #[test]
    fn cat_i64_and_bool() {
        let a = Tensor::from_i64(vec![1, 2, 3], &[1, 3]).unwrap();
        let b = Tensor::from_i64(vec![4, 5, 6], &[1, 3]).unwrap();
        let c = Tensor::cat(&[a, b], 0).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.to_vec_i64().unwrap(), vec![1, 2, 3, 4, 5, 6]);

        let t = Tensor::from_bool(vec![true, false], &[2, 1]).unwrap();
        let u = Tensor::from_bool(vec![false, true], &[2, 1]).unwrap();
        let v = Tensor::cat(&[t, u], 1).unwrap();
        assert_eq!(v.shape(), &[2, 2]);
        assert_eq!(v.to_vec_bool().unwrap(), vec![true, false, false, true]);
    }

    #[test]
    fn cat_rejects_mixed_dtypes() {
        let a = Tensor::ones(&[2]);
        let b = Tensor::from_i64(vec![1, 2], &[2]).unwrap();
        assert!(matches!(
            Tensor::cat(&[a, b], 0),
            Err(TensorError::DTypeMismatch { op: "cat", .. })
        ));
    }

    #[test]
    fn stack_adds_dim() {
        let a = Tensor::ones(&[2, 3]);
        let s = Tensor::stack(&[a.clone(), a.clone(), a], 0).unwrap();
        assert_eq!(s.shape(), &[3, 2, 3]);
    }

    #[test]
    fn narrow_then_contiguous_compacts() {
        let a = t2x3();
        let n = a.narrow(1, 1, 1).unwrap();
        let c = n.contiguous();
        assert!(!c.shares_storage(&a));
        assert_eq!(c.to_vec_f32().unwrap(), vec![1.0, 4.0]);
    }
}
