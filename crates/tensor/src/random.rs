//! Seeded random tensor initialization.
//!
//! All synthetic inputs and weights in the benchmark are produced here so
//! every experiment is bit-reproducible from a seed.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{num_elements, Tensor};

/// Deterministic tensor generator wrapping a seeded [`StdRng`].
///
/// # Examples
///
/// ```
/// use ngb_tensor::random::TensorRng;
/// let mut rng = TensorRng::seed(42);
/// let a = rng.normal(&[2, 2]);
/// let b = TensorRng::seed(42).normal(&[2, 2]);
/// assert_eq!(a, b); // same seed, same tensor
/// ```
#[derive(Debug)]
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates a generator from `seed`.
    pub fn seed(seed: u64) -> TensorRng {
        TensorRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Standard-normal f32 tensor (Box–Muller over a uniform source).
    pub fn normal(&mut self, shape: &[usize]) -> Tensor {
        self.normal_into(Vec::new(), shape)
    }

    /// [`TensorRng::normal`] writing into a recycled buffer.
    ///
    /// Consumes the generator state identically to `normal`, so a run that
    /// mixes fresh and recycled buffers stays bit-reproducible. `buf` is
    /// cleared first; only its capacity is reused.
    pub fn normal_into(&mut self, buf: Vec<f32>, shape: &[usize]) -> Tensor {
        let buf = self.fill_normal(buf, num_elements(shape));
        Tensor::from_vec(buf, shape).expect("length matches by construction")
    }

    /// Fills `buf` with `n` standard-normal samples, reusing its capacity.
    fn fill_normal(&mut self, mut buf: Vec<f32>, n: usize) -> Vec<f32> {
        let uni = Uniform::new(f32::EPSILON, 1.0f32);
        buf.clear();
        buf.reserve(n);
        for _ in 0..n {
            let u1: f32 = uni.sample(&mut self.rng);
            let u2: f32 = uni.sample(&mut self.rng);
            buf.push((-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos());
        }
        buf
    }

    /// Uniform f32 tensor in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        self.uniform_into(Vec::new(), shape, lo, hi)
    }

    /// [`TensorRng::uniform`] writing into a recycled buffer (see
    /// [`TensorRng::normal_into`] for the reuse contract).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_into(&mut self, mut buf: Vec<f32>, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        assert!(lo < hi, "uniform requires lo < hi");
        let n = num_elements(shape);
        let uni = Uniform::new(lo, hi);
        buf.clear();
        buf.reserve(n);
        for _ in 0..n {
            buf.push(uni.sample(&mut self.rng));
        }
        Tensor::from_vec(buf, shape).expect("length matches by construction")
    }

    /// Uniform i64 tensor in `[lo, hi)` — e.g. synthetic token ids.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_i64(&mut self, shape: &[usize], lo: i64, hi: i64) -> Tensor {
        assert!(lo < hi, "uniform_i64 requires lo < hi");
        let n = num_elements(shape);
        let uni = Uniform::new(lo, hi);
        let data: Vec<i64> = (0..n).map(|_| uni.sample(&mut self.rng)).collect();
        Tensor::from_i64(data, shape).expect("length matches by construction")
    }

    /// Kaiming-style scaled normal for weight init: `N(0, sqrt(2/fan_in))`.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in` is zero.
    pub fn kaiming(&mut self, shape: &[usize], fan_in: usize) -> Tensor {
        self.kaiming_into(Vec::new(), shape, fan_in)
    }

    /// [`TensorRng::kaiming`] writing into a recycled buffer (see
    /// [`TensorRng::normal_into`] for the reuse contract).
    ///
    /// # Panics
    ///
    /// Panics if `fan_in` is zero.
    pub fn kaiming_into(&mut self, buf: Vec<f32>, shape: &[usize], fan_in: usize) -> Tensor {
        assert!(fan_in > 0, "kaiming requires nonzero fan_in");
        let scale = (2.0 / fan_in as f32).sqrt();
        let mut buf = self.fill_normal(buf, num_elements(shape));
        for v in &mut buf {
            *v *= scale;
        }
        Tensor::from_vec(buf, shape).expect("length matches by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = TensorRng::seed(7).uniform(&[16], -1.0, 1.0);
        let b = TensorRng::seed(7).uniform(&[16], -1.0, 1.0);
        let c = TensorRng::seed(8).uniform(&[16], -1.0, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let t = TensorRng::seed(1).normal(&[10_000]);
        let v = t.to_vec_f32().unwrap();
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = TensorRng::seed(2).uniform(&[1000], 3.0, 4.0);
        assert!(t
            .to_vec_f32()
            .unwrap()
            .iter()
            .all(|&x| (3.0..4.0).contains(&x)));
        let ti = TensorRng::seed(2).uniform_i64(&[1000], 0, 50);
        assert!(ti
            .to_vec_i64()
            .unwrap()
            .iter()
            .all(|&x| (0..50).contains(&x)));
    }

    #[test]
    fn into_variants_match_allocating_variants_bitwise() {
        let shape = [3, 7];
        let recycled = vec![9.0f32; 64]; // stale contents must not leak through
        let a = TensorRng::seed(11).normal(&shape);
        let b = TensorRng::seed(11).normal_into(recycled.clone(), &shape);
        assert_eq!(a, b);
        let a = TensorRng::seed(11).uniform(&shape, -2.0, 2.0);
        let b = TensorRng::seed(11).uniform_into(recycled.clone(), &shape, -2.0, 2.0);
        assert_eq!(a, b);
        let a = TensorRng::seed(11).kaiming(&shape, 21);
        let b = TensorRng::seed(11).kaiming_into(recycled, &shape, 21);
        assert_eq!(a, b);

        // and the generator state advances identically: the *next* draw
        // after an into-variant matches the next draw after the original
        let mut r1 = TensorRng::seed(5);
        let mut r2 = TensorRng::seed(5);
        let _ = r1.normal(&shape);
        let _ = r2.normal_into(Vec::new(), &shape);
        assert_eq!(r1.uniform(&[4], 0.0, 1.0), r2.uniform(&[4], 0.0, 1.0));
    }

    #[test]
    fn kaiming_scales_down_with_fan_in() {
        let big = TensorRng::seed(3).kaiming(&[4096], 10_000);
        let v = big.to_vec_f32().unwrap();
        let var: f32 = v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32;
        assert!(var < 0.001, "var {var} should be ~2/10000");
    }
}
