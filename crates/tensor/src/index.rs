//! Multi-dimensional index iteration.

/// Iterator over every multi-dimensional index of a shape, in row-major
/// order.
///
/// Used by strided (non-contiguous) kernels; contiguous fast paths bypass it.
///
/// # Examples
///
/// ```
/// use ngb_tensor::IndexIter;
/// let ix: Vec<Vec<usize>> = IndexIter::new(&[2, 2]).collect();
/// assert_eq!(ix, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
/// ```
#[derive(Debug, Clone)]
pub struct IndexIter {
    shape: Vec<usize>,
    current: Vec<usize>,
    remaining: usize,
}

impl IndexIter {
    /// Creates an iterator over all indices of `shape`.
    ///
    /// A scalar shape (`[]`) yields exactly one empty index.
    pub fn new(shape: &[usize]) -> Self {
        let remaining = crate::num_elements(shape);
        IndexIter {
            shape: shape.to_vec(),
            current: vec![0; shape.len()],
            remaining,
        }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.remaining == 0 {
            return None;
        }
        let out = self.current.clone();
        self.remaining -= 1;
        // Advance odometer-style from the last axis.
        for ax in (0..self.shape.len()).rev() {
            self.current[ax] += 1;
            if self.current[ax] < self.shape[ax] {
                break;
            }
            self.current[ax] = 0;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for IndexIter {}

/// Maps the `(outer, lane)` coordinates of a lane decomposition onto storage
/// offsets of an arbitrarily-strided view.
///
/// A lane decomposition splits a tensor around one dimension `dim` into
/// `(outer, d, inner)` — see `Tensor::lane_dims` — so every reduction/softmax
/// lane is `d` elements at a fixed `(outer, inner)` coordinate. For a
/// contiguous tensor the lane at `(o, l)` starts at `o * d * inner + l` and
/// steps by `inner`; this type generalizes that walk to any strides, letting
/// kernels consume permuted/narrowed/expanded views without materializing
/// them first.
///
/// Kernels should keep their contiguous fast path and use `LaneMap` only on
/// the strided branch: `lane_base` costs one multiply-add per dimension.
#[derive(Debug, Clone)]
pub struct LaneMap {
    base: usize,
    outer_shape: Vec<usize>,
    outer_strides: Vec<isize>,
    inner_shape: Vec<usize>,
    inner_strides: Vec<isize>,
    step: isize,
}

impl LaneMap {
    /// Builds the map for a view described by `shape`/`strides`/`offset`,
    /// with lanes running along `dim`.
    pub fn new(shape: &[usize], strides: &[isize], offset: usize, dim: usize) -> LaneMap {
        assert!(dim < shape.len(), "lane dim out of range");
        LaneMap {
            base: offset,
            outer_shape: shape[..dim].to_vec(),
            outer_strides: strides[..dim].to_vec(),
            inner_shape: shape[dim + 1..].to_vec(),
            inner_strides: strides[dim + 1..].to_vec(),
            step: strides[dim],
        }
    }

    /// Storage stride between consecutive elements of a lane.
    #[inline]
    pub fn step(&self) -> isize {
        self.step
    }

    /// Storage offset of element 0 of the lane at `(outer, lane)`, where
    /// `outer` enumerates the dims before `dim` and `lane` the dims after it,
    /// both row-major.
    #[inline]
    pub fn lane_base(&self, outer: usize, lane: usize) -> usize {
        let off = self.base as isize
            + unravel_offset(outer, &self.outer_shape, &self.outer_strides)
            + unravel_offset(lane, &self.inner_shape, &self.inner_strides);
        debug_assert!(off >= 0, "negative storage offset");
        off as usize
    }
}

/// Storage offset of row-major linear index `i` within `shape`/`strides`.
#[inline]
fn unravel_offset(mut i: usize, shape: &[usize], strides: &[isize]) -> isize {
    let mut off = 0isize;
    for d in (0..shape.len()).rev() {
        let s = shape[d];
        off += (i % s) as isize * strides[d];
        i /= s;
    }
    off
}

/// Converts a multi-index into a linear storage offset given strides and a
/// base offset.
#[inline]
pub fn offset_of(index: &[usize], strides: &[isize], base: usize) -> usize {
    let mut off = base as isize;
    for (&i, &s) in index.iter().zip(strides) {
        off += i as isize * s;
    }
    debug_assert!(off >= 0, "negative storage offset");
    off as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_yields_one_empty_index() {
        let all: Vec<_> = IndexIter::new(&[]).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn zero_sized_dim_yields_nothing() {
        assert_eq!(IndexIter::new(&[2, 0, 3]).count(), 0);
    }

    #[test]
    fn count_matches_numel() {
        assert_eq!(IndexIter::new(&[3, 4, 5]).count(), 60);
        let it = IndexIter::new(&[3, 4]);
        assert_eq!(it.len(), 12);
    }

    #[test]
    fn offsets_follow_strides() {
        // shape [2,3], transposed strides [1,2], base 5
        assert_eq!(offset_of(&[1, 2], &[1, 2], 5), 5 + 1 + 4);
    }

    #[test]
    fn lane_map_matches_contiguous_walk() {
        // contiguous [2,3,4], lanes along dim 1: base = o*12 + l, step 4
        let shape = [2usize, 3, 4];
        let strides = [12isize, 4, 1];
        let m = LaneMap::new(&shape, &strides, 0, 1);
        assert_eq!(m.step(), 4);
        for o in 0..2 {
            for l in 0..4 {
                assert_eq!(m.lane_base(o, l), o * 12 + l);
            }
        }
    }

    #[test]
    fn lane_map_strided_view() {
        // transposed [3,2] view of contiguous [2,3] (strides [1,3]), lanes
        // along dim 0: lane l starts at column l's base, steps by 1.
        let m = LaneMap::new(&[3, 2], &[1, 3], 5, 0);
        assert_eq!(m.step(), 1);
        assert_eq!(m.lane_base(0, 0), 5);
        assert_eq!(m.lane_base(0, 1), 8);
        // multi-dim outer: shape [2,2,3], strides [1,6,2], dim 2
        let m = LaneMap::new(&[2, 2, 3], &[1, 6, 2], 0, 2);
        assert_eq!(m.lane_base(3, 0), 1 + 6); // outer index 3 = (1,1)
        assert_eq!(m.step(), 2);
    }
}
