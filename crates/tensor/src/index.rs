//! Multi-dimensional index iteration.

/// Iterator over every multi-dimensional index of a shape, in row-major
/// order.
///
/// Used by strided (non-contiguous) kernels; contiguous fast paths bypass it.
///
/// # Examples
///
/// ```
/// use ngb_tensor::IndexIter;
/// let ix: Vec<Vec<usize>> = IndexIter::new(&[2, 2]).collect();
/// assert_eq!(ix, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
/// ```
#[derive(Debug, Clone)]
pub struct IndexIter {
    shape: Vec<usize>,
    current: Vec<usize>,
    remaining: usize,
}

impl IndexIter {
    /// Creates an iterator over all indices of `shape`.
    ///
    /// A scalar shape (`[]`) yields exactly one empty index.
    pub fn new(shape: &[usize]) -> Self {
        let remaining = crate::num_elements(shape);
        IndexIter {
            shape: shape.to_vec(),
            current: vec![0; shape.len()],
            remaining,
        }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.remaining == 0 {
            return None;
        }
        let out = self.current.clone();
        self.remaining -= 1;
        // Advance odometer-style from the last axis.
        for ax in (0..self.shape.len()).rev() {
            self.current[ax] += 1;
            if self.current[ax] < self.shape[ax] {
                break;
            }
            self.current[ax] = 0;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for IndexIter {}

/// Converts a multi-index into a linear storage offset given strides and a
/// base offset.
#[inline]
pub(crate) fn offset_of(index: &[usize], strides: &[isize], base: usize) -> usize {
    let mut off = base as isize;
    for (&i, &s) in index.iter().zip(strides) {
        off += i as isize * s;
    }
    debug_assert!(off >= 0, "negative storage offset");
    off as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_yields_one_empty_index() {
        let all: Vec<_> = IndexIter::new(&[]).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn zero_sized_dim_yields_nothing() {
        assert_eq!(IndexIter::new(&[2, 0, 3]).count(), 0);
    }

    #[test]
    fn count_matches_numel() {
        assert_eq!(IndexIter::new(&[3, 4, 5]).count(), 60);
        let it = IndexIter::new(&[3, 4]);
        assert_eq!(it.len(), 12);
    }

    #[test]
    fn offsets_follow_strides() {
        // shape [2,3], transposed strides [1,2], base 5
        assert_eq!(offset_of(&[1, 2], &[1, 2], 5), 5 + 1 + 4);
    }
}
