//! Backing storage for tensors.

use std::sync::Arc;

/// Element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE-754 float — the working precision of the benchmark.
    F32,
    /// 64-bit signed integer — indices (argmax, top-k, token ids).
    I64,
    /// Boolean — masks produced by comparisons and NMS keep-lists.
    Bool,
}

impl DType {
    /// Size of one element in bytes, used by the analytic memory-traffic model.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::I64 => 8,
            DType::Bool => 1,
        }
    }

    /// Lowercase type name, as it appears in reports.
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::I64 => "i64",
            DType::Bool => "bool",
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reference-counted, immutable-once-shared element buffer.
///
/// Views share the same `Arc`ed storage; mutation goes through
/// copy-on-write in [`crate::Tensor`].
#[derive(Debug, Clone)]
pub enum Storage {
    /// f32 buffer.
    F32(Arc<Vec<f32>>),
    /// i64 buffer.
    I64(Arc<Vec<i64>>),
    /// bool buffer.
    Bool(Arc<Vec<bool>>),
}

impl Storage {
    /// The element type held by this storage.
    pub fn dtype(&self) -> DType {
        match self {
            Storage::F32(_) => DType::F32,
            Storage::I64(_) => DType::I64,
            Storage::Bool(_) => DType::Bool,
        }
    }

    /// Number of elements in the underlying buffer (not the logical view).
    pub fn len(&self) -> usize {
        match self {
            Storage::F32(v) => v.len(),
            Storage::I64(v) => v.len(),
            Storage::Bool(v) => v.len(),
        }
    }

    /// Whether the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the f32 buffer, if this is f32 storage.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            Storage::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the i64 buffer, if this is i64 storage.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Storage::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the bool buffer, if this is bool storage.
    pub fn as_bool(&self) -> Option<&[bool]> {
        match self {
            Storage::Bool(v) => Some(v),
            _ => None,
        }
    }
}

impl From<Vec<f32>> for Storage {
    fn from(v: Vec<f32>) -> Self {
        Storage::F32(Arc::new(v))
    }
}

impl From<Vec<i64>> for Storage {
    fn from(v: Vec<i64>) -> Self {
        Storage::I64(Arc::new(v))
    }
}

impl From<Vec<bool>> for Storage {
    fn from(v: Vec<bool>) -> Self {
        Storage::Bool(Arc::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn storage_roundtrip() {
        let s: Storage = vec![1.0f32, 2.0].into();
        assert_eq!(s.dtype(), DType::F32);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.as_f32().unwrap()[1], 2.0);
        assert!(s.as_i64().is_none());
    }

    #[test]
    fn dtype_display() {
        assert_eq!(DType::Bool.to_string(), "bool");
    }
}
