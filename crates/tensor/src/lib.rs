//! # ngb-tensor
//!
//! A small, dependency-light dense tensor library that underpins the
//! NonGEMM Bench reproduction. It provides exactly the tensor semantics the
//! benchmark's operators need:
//!
//! * dense storage for `f32`, `i64`, and `bool` elements,
//! * shape/stride **views** so that the paper's *memory operators*
//!   (`reshape`, `view`, `permute`, `expand`, `squeeze`, …) can be modeled
//!   with their real zero-copy/copy behavior,
//! * copy operators (`contiguous`, `cat`, `split`, `stack`),
//! * broadcasting element-wise iteration used by the arithmetic kernels, and
//! * seeded random initialization so every experiment is reproducible.
//!
//! The design intentionally mirrors the PyTorch tensor model (storage +
//! shape + strides + offset) because the paper characterizes PyTorch
//! workloads: whether an operator allocates or merely re-strides is part of
//! what NonGEMM Bench measures.
//!
//! # Examples
//!
//! ```
//! use ngb_tensor::Tensor;
//!
//! # fn main() -> Result<(), ngb_tensor::TensorError> {
//! let t = Tensor::arange(0.0, 6.0, 1.0).reshape(&[2, 3])?;
//! let p = t.permute(&[1, 0])?;          // zero-copy transpose view
//! assert_eq!(p.shape(), &[3, 2]);
//! assert_eq!(p.at(&[2, 1])?, 5.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod compare;
mod error;
mod index;
mod shape;
mod storage;
mod tensor;
mod view;

pub mod random;
pub mod telemetry;

pub use compare::{bit_equal, max_abs_err, max_rel_err, Tolerance};
pub use error::TensorError;
pub use index::{offset_of, IndexIter, LaneMap};
pub use shape::{broadcast_shapes, contiguous_strides, num_elements, reshape_strides};
pub use storage::{DType, Storage};
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
