//! Thread-local layout-copy telemetry.
//!
//! Counts the bytes physically copied by materialization: the copying path of
//! [`Tensor::contiguous`](crate::Tensor::contiguous) (which also backs
//! stride-incompatible `reshape`) and any kernel fallback that gathers a
//! strided operand into dense storage. Engines sample the counter around each
//! node execution to attribute layout copies to the node that incurred them —
//! the copy always happens on the thread dispatching the node, never inside
//! intra-op worker chunks, so a thread-local is exact.

use std::cell::Cell;

thread_local! {
    static BYTES_MATERIALIZED: Cell<u64> = const { Cell::new(0) };
}

/// Adds `bytes` to this thread's materialization counter.
///
/// Called by the tensor layer when a copy is unavoidable; strided kernel
/// paths that consume views in place never report here.
#[inline]
pub fn note_materialized(bytes: usize) {
    BYTES_MATERIALIZED.with(|c| c.set(c.get() + bytes as u64));
}

/// Current value of this thread's materialization counter, in bytes.
pub fn bytes_materialized() -> u64 {
    BYTES_MATERIALIZED.with(|c| c.get())
}

/// Resets this thread's materialization counter to zero.
pub fn reset_bytes_materialized() {
    BYTES_MATERIALIZED.with(|c| c.set(0));
}

/// Returns the counter and resets it — the sampling primitive used by
/// execution engines around each node.
pub fn take_bytes_materialized() -> u64 {
    BYTES_MATERIALIZED.with(|c| c.replace(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn contiguous_copy_is_counted() {
        reset_bytes_materialized();
        let a = Tensor::arange(0.0, 6.0, 1.0).reshape(&[2, 3]).unwrap();
        let _free = a.contiguous(); // already dense: no copy
        assert_eq!(take_bytes_materialized(), 0);
        let p = a.permute(&[1, 0]).unwrap();
        let _copy = p.contiguous();
        assert_eq!(take_bytes_materialized(), 6 * 4);
        // take() reset the counter
        assert_eq!(bytes_materialized(), 0);
    }
}
