//! Numeric tensor comparison: error metrics and tolerance policies.
//!
//! The graph-rewrite optimizer's equivalence harness needs two regimes:
//! **bit-exact** for rewrites that preserve floating-point evaluation order
//! (loop fusion of pointwise chains) and **tolerance-based** for rewrites
//! that reorder arithmetic (batch-norm folding). This module provides the
//! shared vocabulary for both.

use crate::storage::DType;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// Maximum absolute element-wise error between two same-shape f32 tensors.
///
/// Returns `f32::INFINITY` when any compared pair contains a NaN (NaN is
/// never close to anything).
///
/// # Errors
///
/// Fails when shapes differ or either tensor is not f32.
pub fn max_abs_err(a: &Tensor, b: &Tensor) -> Result<f32> {
    fold_err(a, b, |x, y| (x - y).abs())
}

/// Maximum relative element-wise error `|a-b| / max(|a|, |b|, 1e-12)`.
///
/// The denominator floor keeps near-zero pairs from reporting huge relative
/// error for absolutely-negligible differences; combine with
/// [`max_abs_err`] (as [`Tolerance`] does) rather than using alone.
///
/// # Errors
///
/// Fails when shapes differ or either tensor is not f32.
pub fn max_rel_err(a: &Tensor, b: &Tensor) -> Result<f32> {
    fold_err(a, b, |x, y| (x - y).abs() / x.abs().max(y.abs()).max(1e-12))
}

fn fold_err(a: &Tensor, b: &Tensor, err: impl Fn(f32, f32) -> f32) -> Result<f32> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            expected: a.shape().to_vec(),
            actual: b.shape().to_vec(),
            op: "compare",
        });
    }
    let (av, bv) = (a.to_vec_f32()?, b.to_vec_f32()?);
    let mut worst = 0.0f32;
    for (&x, &y) in av.iter().zip(&bv) {
        if x.is_nan() || y.is_nan() {
            return Ok(f32::INFINITY);
        }
        worst = worst.max(err(x, y));
    }
    Ok(worst)
}

/// Whether two tensors are equal bit-for-bit (same shape and dtype, every
/// element the same bit pattern — `-0.0` differs from `0.0`, `NaN`
/// payloads count). Integer and boolean tensors compare by value, which
/// is the same thing for those dtypes.
pub fn bit_equal(a: &Tensor, b: &Tensor) -> Result<bool> {
    if a.shape() != b.shape() || a.dtype() != b.dtype() {
        return Ok(false);
    }
    if a.dtype() != DType::F32 {
        return Ok(a == b);
    }
    let (av, bv) = (a.to_vec_f32()?, b.to_vec_f32()?);
    Ok(av.iter().zip(&bv).all(|(x, y)| x.to_bits() == y.to_bits()))
}

/// An equivalence policy: a pair of error bounds a comparison must satisfy.
///
/// # Examples
///
/// ```
/// use ngb_tensor::{Tensor, Tolerance};
/// let a = Tensor::from_vec(vec![1.0, 2.0], &[2])?;
/// let b = Tensor::from_vec(vec![1.0 + 1e-6, 2.0], &[2])?;
/// assert!(Tolerance::bn_folding().check(&a, &b).is_ok());
/// assert!(Tolerance::exact().check(&a, &b).is_err());
/// # Ok::<(), ngb_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Largest allowed absolute element-wise error.
    pub max_abs: f32,
    /// Largest allowed relative element-wise error.
    pub max_rel: f32,
}

impl Tolerance {
    /// Zero tolerance: every element must match exactly (still value
    /// equality, not bit equality — use [`bit_equal`] to distinguish
    /// signed zeros).
    pub fn exact() -> Tolerance {
        Tolerance {
            max_abs: 0.0,
            max_rel: 0.0,
        }
    }

    /// The documented policy for batch-norm folding, which reorders f32
    /// arithmetic: per-element scale/shift against rsqrt-normalized values
    /// accumulates a few ULP across the conv reduction.
    pub fn bn_folding() -> Tolerance {
        Tolerance {
            max_abs: 1e-4,
            max_rel: 1e-3,
        }
    }

    /// Checks `a` against `b`, passing when **either** bound holds for
    /// every element pair (the usual `allclose` semantics: small values
    /// judged absolutely, large values relatively).
    ///
    /// # Errors
    ///
    /// Fails with a descriptive [`TensorError::InvalidArgument`] when both
    /// bounds are exceeded, and propagates shape/dtype mismatches.
    pub fn check(&self, a: &Tensor, b: &Tensor) -> Result<()> {
        // Tolerances only make sense for floats; indices, token ids, and
        // masks must survive any rewrite exactly.
        if a.dtype() != DType::F32 || b.dtype() != DType::F32 {
            if a == b {
                return Ok(());
            }
            return Err(TensorError::InvalidArgument(format!(
                "non-float tensors ({:?} vs {:?}) must match exactly",
                a.dtype(),
                b.dtype()
            )));
        }
        let abs = max_abs_err(a, b)?;
        if abs <= self.max_abs {
            return Ok(());
        }
        let rel = max_rel_err(a, b)?;
        if rel <= self.max_rel {
            return Ok(());
        }
        Err(TensorError::InvalidArgument(format!(
            "tensors differ: max_abs_err {abs:e} > {:e} and max_rel_err {rel:e} > {:e}",
            self.max_abs, self.max_rel
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_and_rel_errors() {
        let a = Tensor::from_vec(vec![1.0, 100.0, 0.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![1.1, 100.0, 0.0], &[3]).unwrap();
        let abs = max_abs_err(&a, &b).unwrap();
        assert!((abs - 0.1).abs() < 1e-6);
        let rel = max_rel_err(&a, &b).unwrap();
        assert!((rel - 0.1 / 1.1).abs() < 1e-6);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(max_abs_err(&a, &b).is_err());
        assert!(!bit_equal(&a, &b).unwrap());
    }

    #[test]
    fn nan_is_never_close() {
        let a = Tensor::from_vec(vec![f32::NAN], &[1]).unwrap();
        let b = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        assert_eq!(max_abs_err(&a, &b).unwrap(), f32::INFINITY);
        assert!(Tolerance::bn_folding().check(&a, &b).is_err());
    }

    #[test]
    fn bit_equality_is_strict() {
        let a = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        let b = Tensor::from_vec(vec![-0.0], &[1]).unwrap();
        assert!(!bit_equal(&a, &b).unwrap());
        assert!(bit_equal(&a, &a).unwrap());
        // value-exact tolerance accepts signed-zero differences
        assert!(Tolerance::exact().check(&a, &b).is_ok());
    }

    #[test]
    fn tolerance_either_bound_passes() {
        // big values: abs error large, rel error small
        let a = Tensor::from_vec(vec![1e6], &[1]).unwrap();
        let b = Tensor::from_vec(vec![1e6 + 100.0], &[1]).unwrap();
        assert!(Tolerance {
            max_abs: 1e-4,
            max_rel: 1e-3
        }
        .check(&a, &b)
        .is_ok());
        // tiny values: rel error large, abs error small
        let c = Tensor::from_vec(vec![1e-8], &[1]).unwrap();
        let d = Tensor::from_vec(vec![2e-8], &[1]).unwrap();
        assert!(Tolerance {
            max_abs: 1e-4,
            max_rel: 1e-3
        }
        .check(&c, &d)
        .is_ok());
        // both exceeded
        let e = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let f = Tensor::from_vec(vec![1.5], &[1]).unwrap();
        assert!(Tolerance {
            max_abs: 1e-4,
            max_rel: 1e-3
        }
        .check(&e, &f)
        .is_err());
    }

    #[test]
    fn integer_tensors_compare_exactly() {
        let a = Tensor::from_i64(vec![3, 1, 4], &[3]).unwrap();
        let b = Tensor::from_i64(vec![3, 1, 4], &[3]).unwrap();
        let c = Tensor::from_i64(vec![3, 1, 5], &[3]).unwrap();
        assert!(bit_equal(&a, &b).unwrap());
        assert!(!bit_equal(&a, &c).unwrap());
        assert!(Tolerance::bn_folding().check(&a, &b).is_ok());
        assert!(Tolerance::bn_folding().check(&a, &c).is_err());
        // dtype mismatch is never equal
        let f = Tensor::from_vec(vec![3.0, 1.0, 4.0], &[3]).unwrap();
        assert!(!bit_equal(&a, &f).unwrap());
        assert!(Tolerance::bn_folding().check(&a, &f).is_err());
    }

    #[test]
    fn map_into_reuses_unique_storage() {
        let t = Tensor::from_vec(vec![1.0, 4.0, 9.0], &[3]).unwrap();
        let r = t.map_into(|v| v.sqrt()).unwrap();
        assert_eq!(r.to_vec_f32().unwrap(), vec![1.0, 2.0, 3.0]);
        // shared storage falls back to a fresh buffer, leaving the clone alone
        let t = Tensor::from_vec(vec![2.0], &[1]).unwrap();
        let keep = t.clone();
        let r = t.map_into(|v| v * 10.0).unwrap();
        assert_eq!(r.to_vec_f32().unwrap(), vec![20.0]);
        assert_eq!(keep.to_vec_f32().unwrap(), vec![2.0]);
    }
}
