//! Property-based tests for tensor view/layout invariants.

use ngb_tensor::{broadcast_shapes, Tensor};
use proptest::prelude::*;

/// Strategy: a small shape of rank 1..=4 with dims 1..=5.
fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=5, 1..=4)
}

/// Strategy: a shape plus data filling it.
fn shaped_tensor() -> impl Strategy<Value = Tensor> {
    small_shape().prop_flat_map(|shape| {
        let n: usize = shape.iter().product();
        prop::collection::vec(-100.0f32..100.0, n..=n)
            .prop_map(move |data| Tensor::from_vec(data, &shape).unwrap())
    })
}

proptest! {
    /// contiguous() never changes the logical contents.
    #[test]
    fn contiguous_preserves_values(t in shaped_tensor(), perm_seed in 0usize..24) {
        let rank = t.rank();
        let mut perm: Vec<usize> = (0..rank).collect();
        // derive some permutation from the seed
        perm.rotate_left(perm_seed % rank.max(1));
        let p = t.permute(&perm).unwrap();
        let c = p.contiguous();
        prop_assert_eq!(c.to_vec_f32().unwrap(), p.to_vec_f32().unwrap());
        prop_assert!(c.is_contiguous());
    }

    /// reshape to flat and back is the identity.
    #[test]
    fn reshape_roundtrip(t in shaped_tensor()) {
        let flat = t.reshape(&[t.numel()]).unwrap();
        let back = flat.reshape(t.shape()).unwrap();
        prop_assert_eq!(back.to_vec_f32().unwrap(), t.to_vec_f32().unwrap());
    }

    /// permute twice with inverse permutation is the identity view.
    #[test]
    fn permute_inverse_roundtrip(t in shaped_tensor()) {
        let rank = t.rank();
        let perm: Vec<usize> = (0..rank).rev().collect();
        let mut inv = vec![0usize; rank];
        for (i, &p) in perm.iter().enumerate() { inv[p] = i; }
        let round = t.permute(&perm).unwrap().permute(&inv).unwrap();
        prop_assert_eq!(round.shape(), t.shape());
        prop_assert_eq!(round.to_vec_f32().unwrap(), t.to_vec_f32().unwrap());
    }

    /// split followed by cat along the same dim reconstructs the tensor.
    #[test]
    fn split_cat_roundtrip(t in shaped_tensor(), size in 1usize..=3) {
        let dim = t.rank() - 1;
        let parts = t.split(size, dim).unwrap();
        let sum: usize = parts.iter().map(|p| p.shape()[dim]).sum();
        prop_assert_eq!(sum, t.shape()[dim]);
        let whole = Tensor::cat(&parts, dim).unwrap();
        prop_assert_eq!(whole.to_vec_f32().unwrap(), t.to_vec_f32().unwrap());
    }

    /// expand never changes values read back at broadcast indices.
    #[test]
    fn expand_replicates(v in prop::collection::vec(-10.0f32..10.0, 1..5), reps in 1usize..4) {
        let n = v.len();
        let t = Tensor::from_vec(v.clone(), &[n, 1]).unwrap();
        let e = t.expand(&[n, reps]).unwrap();
        for (i, x) in v.iter().enumerate() {
            for j in 0..reps {
                prop_assert_eq!(e.at(&[i, j]).unwrap(), *x);
            }
        }
    }

    /// broadcast_shapes is commutative and idempotent against itself.
    #[test]
    fn broadcast_commutative(a in small_shape(), b in small_shape()) {
        let ab = broadcast_shapes(&a, &b);
        let ba = broadcast_shapes(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(&x, &y);
                prop_assert_eq!(broadcast_shapes(&x, &a).unwrap(), x.clone());
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "broadcast not symmetric"),
        }
    }

    /// cat of single-element splits equals contiguous copy (exercises
    /// strided reads in cat).
    #[test]
    fn narrow_views_tile_the_tensor(t in shaped_tensor()) {
        let dim = 0;
        let slices: Vec<Tensor> =
            (0..t.shape()[dim]).map(|i| t.narrow(dim, i, 1).unwrap()).collect();
        let whole = Tensor::cat(&slices, dim).unwrap();
        prop_assert_eq!(whole.to_vec_f32().unwrap(), t.to_vec_f32().unwrap());
    }
}

/// Reference broadcast implementation against which the zip_map fast paths
/// are checked.
fn zip_map_reference(a: &Tensor, b: &Tensor) -> Vec<f32> {
    let out = broadcast_shapes(a.shape(), b.shape()).unwrap();
    let read = |t: &Tensor, ix: &[usize]| {
        let pad = out.len() - t.rank();
        let tix: Vec<usize> = ix[pad..]
            .iter()
            .zip(t.shape())
            .map(|(&i, &d)| if d == 1 { 0 } else { i })
            .collect();
        t.at(&tix).unwrap()
    };
    ngb_tensor::IndexIter::new(&out)
        .map(|ix| read(a, &ix) + read(b, &ix))
        .collect()
}

proptest! {
    /// zip_map (with its suffix- and single-axis fast paths) must agree
    /// with the naive broadcast reference for every shape pair.
    #[test]
    fn zip_map_matches_reference(
        lhs_shape in prop::collection::vec(1usize..=4, 1..=4),
        mask in prop::collection::vec(prop::bool::ANY, 4),
    ) {
        // rhs: same rank with a random subset of dims collapsed to 1
        let rhs_shape: Vec<usize> = lhs_shape
            .iter()
            .zip(&mask)
            .map(|(&d, &keep)| if keep { d } else { 1 })
            .collect();
        let n_l: usize = lhs_shape.iter().product();
        let n_r: usize = rhs_shape.iter().product();
        let a = Tensor::from_vec((0..n_l).map(|i| i as f32).collect(), &lhs_shape).unwrap();
        let b = Tensor::from_vec((0..n_r).map(|i| (i * 7) as f32).collect(), &rhs_shape).unwrap();
        let fast = a.zip_map(&b, |x, y| x + y).unwrap();
        prop_assert_eq!(fast.to_vec_f32().unwrap(), zip_map_reference(&a, &b));
        // and with a lower-rank rhs (drop leading dims)
        if rhs_shape.len() > 1 && rhs_shape[0] == 1 {
            let b2 = b.reshape(&rhs_shape[1..]).unwrap();
            let fast2 = a.zip_map(&b2, |x, y| x + y).unwrap();
            prop_assert_eq!(fast2.to_vec_f32().unwrap(), zip_map_reference(&a, &b2));
        }
    }
}
