//! Storage-interference soundness.
//!
//! [`BufferPlan`]'s drop-at-last-use lifetimes define a value interval
//! per node; treating those intervals as an interference graph, two
//! values may share a storage slot only if their lifetimes are disjoint
//! *and* the reuse is ordered by happens-before (the first value's last
//! read must complete before the second's definition can write). This
//! module:
//!
//! 1. recomputes consumer counts, last uses, and the simulated peak from
//!    the graph and diffs them against the plan (a truncated lifetime is
//!    a future use-after-free; an extended one corrupts the peak
//!    accounting);
//! 2. greedily colors the plan's lifetimes into slots, reusing a slot
//!    only across a happens-before edge — mirroring how the executors'
//!    arena can recycle one value's storage into another;
//! 3. re-checks the resulting assignment against the *graph-derived*
//!    truth: any same-slot pair whose true lifetimes overlap or whose
//!    reuse is unordered is reported.
//!
//! Today's executors index values by node id (no static aliasing), so
//! step 3 certifies the plan/arena contract that zero-copy views and
//! copy-on-write storage (ROADMAP items 2 and 4) will rely on.

use ngb_exec::BufferPlan;
use ngb_graph::{Graph, NodeId};

use crate::hazard::{HazardKind, SanitizeReport};
use crate::hb::HappensBefore;

/// Per-value ground truth recomputed from the graph.
struct Truth {
    uses: Vec<usize>,
    last_use: Vec<Option<usize>>,
    peak: usize,
}

fn recompute(graph: &Graph) -> Truth {
    let len = graph.len();
    let mut uses = vec![0usize; len];
    let mut last_use: Vec<Option<usize>> = vec![None; len];
    for (pos, node) in graph.iter().enumerate() {
        for &i in &node.inputs {
            if i.0 < len {
                uses[i.0] += 1;
                last_use[i.0] = Some(pos);
            }
        }
    }
    let bytes: Vec<usize> = graph
        .iter()
        .map(|n| ngb_tensor::num_elements(&n.out_shape) * 4)
        .collect();
    let mut remaining = uses.clone();
    let mut live = 0usize;
    let mut peak = 0usize;
    for (pos, node) in graph.iter().enumerate() {
        live += bytes[pos];
        peak = peak.max(live);
        for &i in &node.inputs {
            if i.0 < len && i.0 != pos {
                remaining[i.0] -= 1;
                if remaining[i.0] == 0 {
                    live -= bytes[i.0];
                }
            }
        }
    }
    Truth {
        uses,
        last_use,
        peak,
    }
}

/// Proves the plan's lifetimes sound against the graph and the schedule's
/// happens-before relation; hazards are appended to `report`.
pub fn verify_interference(
    graph: &Graph,
    plan: &BufferPlan,
    hb: &HappensBefore,
    report: &mut SanitizeReport,
) {
    let len = graph.len();
    if plan.dropped_edges > 0 {
        report.push(
            HazardKind::DroppedEdge,
            Vec::new(),
            format!(
                "buffer plan dropped {} out-of-range input reference(s); \
                 its lifetimes cover only the in-range structure",
                plan.dropped_edges
            ),
        );
        return;
    }
    let truth = recompute(graph);
    for pos in 0..len {
        if plan.uses[pos] != truth.uses[pos] {
            report.push(
                HazardKind::UsesMismatch,
                vec![NodeId(pos)],
                format!(
                    "value %{pos} is freed after {} read(s) but the graph has \
                     {} consumption(s)",
                    plan.uses[pos], truth.uses[pos]
                ),
            );
        }
        match (plan.last_use[pos], truth.last_use[pos]) {
            (a, b) if a == b => {}
            (Some(p), Some(t)) if p < t => report.push(
                HazardKind::LifetimeTruncated,
                vec![NodeId(pos), NodeId(t)],
                format!(
                    "value %{pos}'s planned lifetime ends at node %{p} but node \
                     %{t} still reads it — a use-after-free once executed"
                ),
            ),
            (Some(p), None) => report.push(
                HazardKind::LifetimeTruncated,
                vec![NodeId(pos), NodeId(p)],
                format!(
                    "value %{pos} is a graph output but the plan frees it after \
                     node %{p} — output collection reads freed storage"
                ),
            ),
            (planned, _) => report.push(
                HazardKind::LifetimeExtended,
                vec![NodeId(pos)],
                format!(
                    "value %{pos}'s planned lifetime ({planned:?}) extends past \
                     its true last consumer ({:?}) — peak accounting is wrong",
                    truth.last_use[pos]
                ),
            ),
        }
    }
    if plan.planned_peak_bytes != truth.peak {
        report.push(
            HazardKind::PeakMismatch,
            Vec::new(),
            format!(
                "planned peak {} bytes != {} bytes recomputed from the graph",
                plan.planned_peak_bytes, truth.peak
            ),
        );
    }

    check_slot_assignment(plan, &truth, hb, report, len);
}

/// Greedy HB-ordered slot coloring of the plan's lifetimes, validated
/// against the graph-derived truth.
fn check_slot_assignment(
    plan: &BufferPlan,
    truth: &Truth,
    hb: &HappensBefore,
    report: &mut SanitizeReport,
    len: usize,
) {
    // slot -> history of (value, freed_at-per-plan) in assignment order
    let mut slots: Vec<Vec<(usize, Option<usize>)>> = Vec::new();
    // free list: (slot, position whose completion freed it)
    let mut free: Vec<(usize, usize)> = Vec::new();
    let mut remaining = plan.uses.clone();
    for pos in 0..len {
        // allocate pos's output: reuse a slot only across a HB edge
        let reusable = free
            .iter()
            .position(|&(_, freed_at)| hb.ordered(freed_at, pos));
        let slot = match reusable {
            Some(i) => free.swap_remove(i).0,
            None => {
                slots.push(Vec::new());
                slots.len() - 1
            }
        };
        slots[slot].push((pos, plan.last_use[pos]));
        // return the slots of values whose planned lifetime ends here
        free_dead_inputs(plan, &mut remaining, &slots, &mut free, pos);
    }
    report.stats.slots_assigned = slots.len();

    // validate every same-slot pair against the truth
    for history in &slots {
        for pair in history.windows(2) {
            let ((a, planned_last_a), (b, _)) = (pair[0], pair[1]);
            match truth.last_use[a] {
                None => report.push(
                    HazardKind::SlotConflict,
                    vec![NodeId(a), NodeId(b)],
                    format!(
                        "value %{a} is a graph output (live forever) but its \
                         slot is reused for value %{b}"
                    ),
                ),
                Some(t) => {
                    // sound iff a's true last read is ordered before b's
                    // definition (or coincides with the freeing position
                    // the reuse was already ordered against)
                    let ok = planned_last_a == Some(t) || hb.ordered(t, b);
                    if ok {
                        report.stats.reuse_pairs_proved += 1;
                    } else if hb.ordered(b, t) {
                        report.push(
                            HazardKind::SlotConflict,
                            vec![NodeId(a), NodeId(b)],
                            format!(
                                "values %{a} and %{b} share a slot but %{b} is \
                                 defined before %{a}'s true last read (node %{t}): \
                                 simultaneously live"
                            ),
                        );
                    } else {
                        report.push(
                            HazardKind::UnorderedReuse,
                            vec![NodeId(a), NodeId(b)],
                            format!(
                                "values %{a} and %{b} share a slot without a \
                                 happens-before edge from %{a}'s true last read \
                                 (node %{t}) to %{b}'s definition"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// After `pos` completes, returns to the free list the slot of every
/// value whose planned consumer count drains at `pos`.
fn free_dead_inputs(
    plan: &BufferPlan,
    remaining: &mut [usize],
    slots: &[Vec<(usize, Option<usize>)>],
    free: &mut Vec<(usize, usize)>,
    pos: usize,
) {
    for (value, rem) in remaining.iter_mut().enumerate() {
        if plan.last_use[value] == Some(pos) && *rem > 0 {
            *rem = 0;
            if let Some(slot) = slots
                .iter()
                .position(|h| h.last().is_some_and(|&(v, _)| v == value))
            {
                free.push((slot, pos));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_exec::Schedule;
    use ngb_graph::{GraphBuilder, OpKind};

    fn chain(n: usize) -> Graph {
        let mut b = GraphBuilder::new("chain");
        let mut cur = b.input(&[8, 8]);
        for i in 0..n {
            cur = b.push(OpKind::Gelu, &[cur], &format!("g{i}")).unwrap();
        }
        b.finish()
    }

    fn verify(graph: &Graph, plan: &BufferPlan) -> SanitizeReport {
        let sched = Schedule::new(graph);
        let hb = HappensBefore::new(&sched);
        let mut report = SanitizeReport::new(&graph.name);
        verify_interference(graph, plan, &hb, &mut report);
        report
    }

    #[test]
    fn clean_chain_reuses_slots_with_proof() {
        let g = chain(6);
        let report = verify(&g, &BufferPlan::new(&g));
        assert!(report.is_clean(), "{}", report.to_text());
        // a chain alternates between two slots (live set of two)
        assert_eq!(report.stats.slots_assigned, 2);
        assert!(report.stats.reuse_pairs_proved >= 4);
    }

    #[test]
    fn diamond_branches_get_distinct_slots() {
        let mut b = GraphBuilder::new("diamond");
        let x = b.input(&[4, 4]);
        let l = b.push(OpKind::Gelu, &[x], "l").unwrap();
        let r = b.push(OpKind::Relu, &[x], "r").unwrap();
        b.push(OpKind::Add, &[l, r], "j").unwrap();
        let g = b.finish();
        let report = verify(&g, &BufferPlan::new(&g));
        assert!(report.is_clean(), "{}", report.to_text());
        // x, l, r are simultaneously live around the join: three slots
        // (the join's output can only reuse across a HB edge)
        assert!(report.stats.slots_assigned >= 3);
    }

    #[test]
    fn truncated_lifetime_is_flagged() {
        let g = chain(4);
        let mut plan = BufferPlan::new(&g);
        // pretend value 1 dies at its own definition site's successor
        plan.uses[1] = 0;
        plan.last_use[1] = None;
        let report = verify(&g, &plan);
        assert!(
            report.count(HazardKind::UsesMismatch) >= 1,
            "{}",
            report.to_text()
        );
        assert!(
            report.count(HazardKind::LifetimeExtended) >= 1,
            "{}",
            report.to_text()
        );
    }

    #[test]
    fn shrunk_last_use_is_a_truncation() {
        let g = chain(4);
        let mut plan = BufferPlan::new(&g);
        let v = 1usize; // consumed by node 2
        plan.last_use[v] = Some(v); // claim it dies immediately
        let report = verify(&g, &plan);
        assert!(
            report.count(HazardKind::LifetimeTruncated) >= 1,
            "{}",
            report.to_text()
        );
    }

    #[test]
    fn wrong_peak_is_flagged() {
        let g = chain(4);
        let mut plan = BufferPlan::new(&g);
        plan.planned_peak_bytes += 1;
        let report = verify(&g, &plan);
        assert_eq!(report.count(HazardKind::PeakMismatch), 1);
    }
}
