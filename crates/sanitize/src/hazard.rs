//! Hazard taxonomy and the verifier's report type.

use ngb_graph::NodeId;

/// Class of a statically detected (or runtime-observed) hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HazardKind {
    /// The schedule left nodes unscheduled (cycle or self-loop).
    IncompleteSchedule,
    /// The schedule or plan dropped out-of-range input references — the
    /// graph is corrupt and the coverage proofs do not apply.
    DroppedEdge,
    /// A data edge of the graph is absent from the schedule's successor
    /// lists: nothing orders the consumer after its producer.
    MissingEdge,
    /// A data edge (or wavefront placement) is not ordered by
    /// happens-before: producer and consumer could run concurrently.
    UnorderedPair,
    /// A node's dependency count disagrees with its distinct producers,
    /// so it becomes ready too early or never.
    IndegreeMismatch,
    /// The plan's consumer count for a value disagrees with the graph:
    /// the value is freed after the wrong number of reads.
    UsesMismatch,
    /// The plan ends a value's lifetime before its true last consumer
    /// (a use-after-free once executed).
    LifetimeTruncated,
    /// The plan extends a value's lifetime past its true last consumer
    /// (memory-safety-preserving, but the peak accounting is wrong).
    LifetimeExtended,
    /// The plan's simulated peak disagrees with a recomputation from the
    /// graph.
    PeakMismatch,
    /// Two values share a storage slot without a happens-before edge
    /// between the first's last read and the second's definition.
    UnorderedReuse,
    /// Two provably simultaneously-live values share a storage slot.
    SlotConflict,
    /// Two intra-op chunks of one decomposition cover the same indices.
    PartitionOverlap,
    /// An intra-op decomposition leaves part of the output uncovered.
    PartitionGap,
    /// An intra-op chunk extends past the output it partitions.
    PartitionOutOfBounds,
    /// Reported by the shadow-memory sanitizer during execution.
    Runtime,
}

impl HazardKind {
    /// Stable kebab-case name (report and JSON key).
    pub fn name(self) -> &'static str {
        match self {
            HazardKind::IncompleteSchedule => "incomplete-schedule",
            HazardKind::DroppedEdge => "dropped-edge",
            HazardKind::MissingEdge => "missing-edge",
            HazardKind::UnorderedPair => "unordered-pair",
            HazardKind::IndegreeMismatch => "indegree-mismatch",
            HazardKind::UsesMismatch => "uses-mismatch",
            HazardKind::LifetimeTruncated => "lifetime-truncated",
            HazardKind::LifetimeExtended => "lifetime-extended",
            HazardKind::PeakMismatch => "peak-mismatch",
            HazardKind::UnorderedReuse => "unordered-reuse",
            HazardKind::SlotConflict => "slot-conflict",
            HazardKind::PartitionOverlap => "partition-overlap",
            HazardKind::PartitionGap => "partition-gap",
            HazardKind::PartitionOutOfBounds => "partition-out-of-bounds",
            HazardKind::Runtime => "runtime",
        }
    }
}

/// One detected hazard: its class, the nodes involved, and a message
/// precise enough to locate the defect.
#[derive(Debug, Clone)]
pub struct Hazard {
    /// Hazard class.
    pub kind: HazardKind,
    /// Nodes involved (producer/consumer pair, partitioned node, ...).
    pub nodes: Vec<NodeId>,
    /// Human-readable description with the offending positions.
    pub message: String,
}

/// What the verifier proved, so a clean report is evidence of coverage
/// rather than of skipped work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Nodes in the verified graph.
    pub nodes: usize,
    /// Data edges checked for schedule coverage and ordering.
    pub edges_checked: usize,
    /// Producer→consumer pairs proved ordered by happens-before.
    pub ordered_pairs_proved: usize,
    /// Storage-reuse pairs proved ordered and lifetime-disjoint.
    pub reuse_pairs_proved: usize,
    /// Distinct storage slots of the interference-based assignment.
    pub slots_assigned: usize,
    /// Chunk decompositions checked for disjoint exact cover.
    pub partitions_checked: usize,
    /// Total chunks across all checked decompositions.
    pub chunks_checked: usize,
}

/// Result of verifying one graph.
#[derive(Debug, Clone)]
pub struct SanitizeReport {
    /// Name of the verified graph.
    pub graph_name: String,
    /// Detected hazards, in detection order.
    pub hazards: Vec<Hazard>,
    /// Proof-coverage counters.
    pub stats: VerifyStats,
}

impl SanitizeReport {
    /// An empty report for `graph_name`.
    pub fn new(graph_name: &str) -> SanitizeReport {
        SanitizeReport {
            graph_name: graph_name.to_string(),
            hazards: Vec::new(),
            stats: VerifyStats::default(),
        }
    }

    /// Records one hazard.
    pub fn push(&mut self, kind: HazardKind, nodes: Vec<NodeId>, message: String) {
        self.hazards.push(Hazard {
            kind,
            nodes,
            message,
        });
    }

    /// Whether no hazard of any class was detected.
    pub fn is_clean(&self) -> bool {
        self.hazards.is_empty()
    }

    /// Count of hazards of one class.
    pub fn count(&self, kind: HazardKind) -> usize {
        self.hazards.iter().filter(|h| h.kind == kind).count()
    }

    /// Plain-text rendering: one summary line, then one line per hazard.
    pub fn to_text(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "{}: {} [{} nodes, {} edges, {} ordered pairs, {} reuse pairs, \
             {} slots, {} partitions / {} chunks]\n",
            self.graph_name,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} hazard(s)", self.hazards.len())
            },
            s.nodes,
            s.edges_checked,
            s.ordered_pairs_proved,
            s.reuse_pairs_proved,
            s.slots_assigned,
            s.partitions_checked,
            s.chunks_checked,
        );
        for h in &self.hazards {
            out.push_str(&format!("  [{}] {}\n", h.kind.name(), h.message));
        }
        out
    }

    /// Minimal JSON rendering (stable keys; no external dependencies).
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let hazards: Vec<String> = self
            .hazards
            .iter()
            .map(|h| {
                let nodes: Vec<String> = h.nodes.iter().map(|n| n.0.to_string()).collect();
                format!(
                    "{{\"kind\":\"{}\",\"nodes\":[{}],\"message\":{}}}",
                    h.kind.name(),
                    nodes.join(","),
                    json_string(&h.message)
                )
            })
            .collect();
        format!(
            "{{\"graph\":{},\"clean\":{},\"stats\":{{\"nodes\":{},\"edges_checked\":{},\
             \"ordered_pairs_proved\":{},\"reuse_pairs_proved\":{},\"slots_assigned\":{},\
             \"partitions_checked\":{},\"chunks_checked\":{}}},\"hazards\":[{}]}}",
            json_string(&self.graph_name),
            self.is_clean(),
            s.nodes,
            s.edges_checked,
            s.ordered_pairs_proved,
            s.reuse_pairs_proved,
            s.slots_assigned,
            s.partitions_checked,
            s.chunks_checked,
            hazards.join(",")
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_unique_and_kebab() {
        let kinds = [
            HazardKind::IncompleteSchedule,
            HazardKind::DroppedEdge,
            HazardKind::MissingEdge,
            HazardKind::UnorderedPair,
            HazardKind::IndegreeMismatch,
            HazardKind::UsesMismatch,
            HazardKind::LifetimeTruncated,
            HazardKind::LifetimeExtended,
            HazardKind::PeakMismatch,
            HazardKind::UnorderedReuse,
            HazardKind::SlotConflict,
            HazardKind::PartitionOverlap,
            HazardKind::PartitionGap,
            HazardKind::PartitionOutOfBounds,
            HazardKind::Runtime,
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'), "{n}");
        }
    }

    #[test]
    fn report_renders_text_and_json() {
        let mut r = SanitizeReport::new("g");
        assert!(r.is_clean());
        r.push(
            HazardKind::MissingEdge,
            vec![NodeId(1), NodeId(2)],
            "edge %1 -> %2 missing \"here\"".to_string(),
        );
        assert!(!r.is_clean());
        assert_eq!(r.count(HazardKind::MissingEdge), 1);
        assert_eq!(r.count(HazardKind::Runtime), 0);
        let text = r.to_text();
        assert!(text.contains("1 hazard(s)"), "{text}");
        assert!(text.contains("[missing-edge]"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"kind\":\"missing-edge\""), "{json}");
        assert!(json.contains("\"nodes\":[1,2]"), "{json}");
        assert!(json.contains("\\\"here\\\""), "{json}");
    }
}
