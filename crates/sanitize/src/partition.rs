//! Partition disjointness.
//!
//! Intra-op kernels hand disjoint output slices to concurrent chunk jobs
//! through raw pointers (`ngb_ops::parallel`), so the memory-safety
//! argument rests entirely on the chunk decomposition being a pairwise-
//! disjoint, exact cover of the output. This module re-derives every
//! decomposition an operator can dispatch for its static output shape —
//! flat element chunks, row chunks, and the GEMM register-tile row
//! blocks — and symbolically checks the cover, per node, for the shapes
//! actually present in the graph.

use std::ops::Range;

use ngb_graph::{Graph, NodeId, OpKind};
use ngb_ops::{gemm, parallel};

use crate::hazard::{HazardKind, SanitizeReport};

/// Checks that `ranges` is a sorted, pairwise-disjoint, exact cover of
/// `0..total`; violations are appended to `report` attributed to `node`.
/// Returns true when the cover is exact.
pub fn verify_ranges(
    label: &str,
    ranges: &[Range<usize>],
    total: usize,
    node: NodeId,
    report: &mut SanitizeReport,
) -> bool {
    report.stats.partitions_checked += 1;
    report.stats.chunks_checked += ranges.len();
    let mut clean = true;
    let mut next = 0usize;
    for (c, r) in ranges.iter().enumerate() {
        if r.end > total {
            report.push(
                HazardKind::PartitionOutOfBounds,
                vec![node],
                format!(
                    "node %{node}: {label} chunk {c} ({r:?}) extends past the \
                     output ({total})",
                    node = node.0
                ),
            );
            clean = false;
        }
        if r.start < next {
            report.push(
                HazardKind::PartitionOverlap,
                vec![node],
                format!(
                    "node %{node}: {label} chunks {prev} and {c} overlap on \
                     {overlap_start}..{overlap_end} — concurrent jobs would \
                     write the same elements",
                    node = node.0,
                    prev = c.saturating_sub(1),
                    overlap_start = r.start,
                    overlap_end = next.min(r.end),
                ),
            );
            clean = false;
        } else if r.start > next {
            report.push(
                HazardKind::PartitionGap,
                vec![node],
                format!(
                    "node %{node}: {label} chunk {c} starts at {start} leaving \
                     {next}..{start} uncovered",
                    node = node.0,
                    start = r.start,
                ),
            );
            clean = false;
        }
        next = next.max(r.end);
    }
    if next != total {
        report.push(
            HazardKind::PartitionGap,
            vec![node],
            format!(
                "node %{node}: {label} decomposition covers 0..{next} of \
                 0..{total}",
                node = node.0
            ),
        );
        clean = false;
    }
    clean
}

/// Symbolically checks every decomposition each node's kernels can
/// dispatch for the node's static output shape.
pub fn verify_partitions(graph: &Graph, report: &mut SanitizeReport) {
    let min = parallel::min_intraop_elems();
    for node in graph.iter() {
        let numel = ngb_tensor::num_elements(&node.out_shape);
        verify_ranges(
            "element",
            &parallel::element_partition(numel, min),
            numel,
            node.id,
            report,
        );
        if let Some(&row_len) = node.out_shape.last() {
            if node.out_shape.len() >= 2 && row_len > 0 {
                let rows = numel / row_len;
                verify_ranges(
                    "row",
                    &parallel::row_partition(rows, row_len, min),
                    rows,
                    node.id,
                    report,
                );
            }
        }
        if let Some((m, n)) = gemm_dims(node.op.clone(), &node.out_shape) {
            verify_gemm_tiles(m, n, min, node.id, report);
        }
    }
}

/// The `(m, n)` of the `gemm_into` call(s) a node dispatches, from its
/// static output shape; `None` for non-GEMM operators.
fn gemm_dims(op: OpKind, out_shape: &[usize]) -> Option<(usize, usize)> {
    let numel = ngb_tensor::num_elements(out_shape);
    match op {
        OpKind::Matmul if out_shape.len() == 2 => Some((out_shape[0], out_shape[1])),
        // bmm runs one gemm per batch, all with the same (m, n)
        OpKind::Bmm if out_shape.len() == 3 => Some((out_shape[1], out_shape[2])),
        OpKind::Linear { out_f, .. } | OpKind::Conv1dGpt2 { out_f, .. } if out_f > 0 => {
            Some((numel / out_f, out_f))
        }
        _ => None,
    }
}

/// Checks the GEMM register-tile decomposition for an `[m, n]` output:
/// row blocks must exactly cover `0..m`, and the chunk-level grain must
/// compose with the blocks to re-cover every row.
fn verify_gemm_tiles(m: usize, n: usize, min: usize, node: NodeId, report: &mut SanitizeReport) {
    if m == 0 || n == 0 {
        return;
    }
    let blocks = gemm::tile_row_blocks(m);
    if !verify_ranges("gemm-tile", &blocks, m, node, report) {
        return;
    }
    let (units, unit_len) = gemm::tile_chunk_grain(m, n);
    if units != blocks.len() {
        report.push(
            HazardKind::PartitionGap,
            vec![node],
            format!(
                "node %{}: gemm dispatches {units} tile units but has {} row \
                 blocks",
                node.0,
                blocks.len()
            ),
        );
        return;
    }
    // expanding each chunk's blocks must re-cover 0..m in order
    report.stats.partitions_checked += 1;
    let mut covered = 0usize;
    for chunk in parallel::row_partition(units, unit_len, min) {
        report.stats.chunks_checked += 1;
        for ib in chunk {
            if blocks[ib].start != covered {
                report.push(
                    HazardKind::PartitionGap,
                    vec![node],
                    format!(
                        "node %{}: gemm chunk composition breaks at row block \
                         {ib} (rows {:?}, expected start {covered})",
                        node.0, blocks[ib]
                    ),
                );
                return;
            }
            covered = blocks[ib].end;
        }
    }
    if covered != m {
        report.push(
            HazardKind::PartitionGap,
            vec![node],
            format!(
                "node %{}: gemm chunk composition covers 0..{covered} of 0..{m}",
                node.0
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::GraphBuilder;

    #[test]
    fn overlap_gap_and_bounds_are_distinguished() {
        let node = NodeId(0);
        let mut r = SanitizeReport::new("t");
        assert!(verify_ranges("t", &[0..4, 4..9], 9, node, &mut r));
        assert!(r.is_clean());

        let mut r = SanitizeReport::new("t");
        assert!(!verify_ranges("t", &[0..5, 4..9], 9, node, &mut r));
        assert_eq!(r.count(HazardKind::PartitionOverlap), 1);

        let mut r = SanitizeReport::new("t");
        assert!(!verify_ranges("t", &[0..3, 4..9], 9, node, &mut r));
        assert_eq!(r.count(HazardKind::PartitionGap), 1);

        let mut r = SanitizeReport::new("t");
        assert!(!verify_ranges("t", &[0..4, 4..10], 9, node, &mut r));
        assert_eq!(r.count(HazardKind::PartitionOutOfBounds), 1);

        let mut r = SanitizeReport::new("t");
        assert!(!verify_ranges(
            "t",
            std::slice::from_ref(&(0..4)),
            9,
            node,
            &mut r
        ));
        assert_eq!(r.count(HazardKind::PartitionGap), 1);
    }

    #[test]
    fn real_graph_partitions_verify_clean() {
        let mut b = GraphBuilder::new("mlp");
        let x = b.input(&[3, 70_000]);
        let h = b
            .push(
                OpKind::Linear {
                    in_f: 70_000,
                    out_f: 96,
                    bias: true,
                },
                &[x],
                "fc",
            )
            .unwrap();
        b.push(OpKind::Gelu, &[h], "act").unwrap();
        let g = b.finish();
        let mut report = SanitizeReport::new(&g.name);
        verify_partitions(&g, &mut report);
        assert!(report.is_clean(), "{}", report.to_text());
        assert!(report.stats.partitions_checked >= 6);
        assert!(report.stats.chunks_checked > report.stats.partitions_checked);
    }
}
