//! Seeded fault injection for the verifier's own detection-power tests.
//!
//! Each mutator corrupts a schedule, plan, or chunk decomposition the way
//! a real scheduling/liveness bug would, deterministically from a seed,
//! and returns what it broke so a test can assert the exact hazard is
//! caught — by the static verifier (`verify_parts`) or by the runtime
//! shadow-memory sanitizer when the corrupted parts are executed through
//! `ParallelExecutor::run_with_parts`.

use std::ops::Range;

use ngb_exec::{BufferPlan, Schedule};
use ngb_graph::Graph;

/// Deterministic index in `0..len` derived from `seed` (xorshift mix; no
/// global RNG state, so fault placement is reproducible).
fn pick(seed: u64, len: usize) -> usize {
    debug_assert!(len > 0);
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    (s % len as u64) as usize
}

/// Removes one data edge `(u, v)` from the schedule — the consumer no
/// longer waits for the producer — and boosts the consumer's priority so
/// the corrupted order manifests deterministically when executed.
/// Returns the dropped edge, or `None` if the graph has no edges.
pub fn drop_edge(sched: &mut Schedule, graph: &Graph, seed: u64) -> Option<(usize, usize)> {
    let len = graph.len();
    let edges: Vec<(usize, usize)> = graph
        .iter()
        .enumerate()
        .flat_map(|(pos, node)| {
            node.inputs
                .iter()
                .filter(move |i| i.0 < len && i.0 != pos)
                .map(move |i| (i.0, pos))
        })
        .collect();
    if edges.is_empty() {
        return None;
    }
    let (u, v) = edges[pick(seed, edges.len())];
    sched.successors[u].retain(|&s| s != v);
    sched.indegree[v] = sched.indegree[v].saturating_sub(1);
    // a real scheduler bug that loses an edge also mis-ranks the consumer;
    // ranking it first makes the race deterministic instead of timing-luck
    let top = sched.priority.iter().copied().fold(0.0f64, f64::max);
    sched.priority[v] = top + 1.0;
    Some((u, v))
}

/// Shrinks one value's planned consumer count by one, so the executor
/// frees it while a consumer still has a read outstanding (dynamic
/// use-after-free). Returns the value, or `None` if nothing has two or
/// more planned reads.
pub fn truncate_lifetime(plan: &mut BufferPlan, seed: u64) -> Option<usize> {
    let candidates: Vec<usize> = (0..plan.uses.len())
        .filter(|&v| plan.uses[v] >= 2)
        .collect();
    let v = *candidates.get(pick(seed, candidates.len().max(1)) % candidates.len().max(1))?;
    plan.uses[v] -= 1;
    Some(v)
}

/// Moves one value's planned last use back to its own definition site —
/// the static signature of a premature free. Returns the value, or
/// `None` if nothing is consumed after its definition.
pub fn premature_free(plan: &mut BufferPlan, seed: u64) -> Option<usize> {
    let candidates: Vec<usize> = (0..plan.uses.len())
        .filter(|&v| plan.last_use[v].is_some_and(|lu| lu > v))
        .collect();
    let v = *candidates.get(pick(seed, candidates.len().max(1)) % candidates.len().max(1))?;
    plan.last_use[v] = Some(v);
    Some(v)
}

/// Extends one chunk of a decomposition into its neighbor (or past the
/// end, for a single chunk), producing an overlap/out-of-bounds hazard.
/// Returns the mutated chunk index, or `None` for an empty decomposition.
pub fn overlap_chunks(ranges: &mut [Range<usize>], seed: u64) -> Option<usize> {
    if ranges.is_empty() {
        return None;
    }
    let c = pick(seed, ranges.len());
    ranges[c].end += 1;
    Some(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::{GraphBuilder, OpKind};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("diamond");
        let x = b.input(&[4, 4]);
        let l = b.push(OpKind::Gelu, &[x], "l").unwrap();
        let r = b.push(OpKind::Relu, &[x], "r").unwrap();
        b.push(OpKind::Add, &[l, r], "j").unwrap();
        b.finish()
    }

    #[test]
    fn mutators_are_deterministic_per_seed() {
        let g = diamond();
        for seed in 0..16u64 {
            let mut s1 = Schedule::new(&g);
            let mut s2 = Schedule::new(&g);
            assert_eq!(drop_edge(&mut s1, &g, seed), drop_edge(&mut s2, &g, seed));
            assert_eq!(s1.successors, s2.successors);

            let mut p1 = BufferPlan::new(&g);
            let mut p2 = BufferPlan::new(&g);
            assert_eq!(
                truncate_lifetime(&mut p1, seed),
                truncate_lifetime(&mut p2, seed)
            );
            assert_eq!(premature_free(&mut p1, seed), premature_free(&mut p2, seed));
            assert_eq!(p1.uses, p2.uses);
            assert_eq!(p1.last_use, p2.last_use);
        }
    }

    #[test]
    fn drop_edge_removes_exactly_one_dependency() {
        let g = diamond();
        let clean = Schedule::new(&g);
        let mut sched = Schedule::new(&g);
        let (u, v) = drop_edge(&mut sched, &g, 3).unwrap();
        assert!(!sched.successors[u].contains(&v));
        assert_eq!(sched.indegree[v] + 1, clean.indegree[v]);
        assert!(sched.priority[v] > clean.priority.iter().copied().fold(0.0, f64::max));
    }

    #[test]
    fn lifetime_faults_target_real_values() {
        let g = diamond();
        let mut plan = BufferPlan::new(&g);
        // only the input (consumed twice) qualifies for truncation
        assert_eq!(truncate_lifetime(&mut plan, 9), Some(0));
        assert_eq!(plan.uses[0], 1);

        let mut plan = BufferPlan::new(&g);
        let v = premature_free(&mut plan, 9).unwrap();
        assert_eq!(plan.last_use[v], Some(v));
    }

    #[test]
    fn overlap_chunks_extends_one_range() {
        let mut ranges = vec![0..4, 4..8];
        let c = overlap_chunks(&mut ranges, 1).unwrap();
        assert_eq!(ranges[c].end, [0..4, 4..8][c].end + 1);
        assert!(overlap_chunks(&mut [], 1).is_none());
    }
}
