//! # ngb-sanitize
//!
//! Static schedule/memory hazard verifier for NonGEMM Bench, proving
//! three safety properties per graph before the parallel executor (and,
//! later, aliasing storage) is trusted with it:
//!
//! 1. **Happens-before coverage** ([`HappensBefore`]) — the ordering
//!    relation reconstructed from [`Schedule`] successors/wavefronts
//!    covers and orders every data edge; unordered pairs are statically
//!    detected races.
//! 2. **Storage-interference soundness** — [`BufferPlan`]'s
//!    drop-at-last-use lifetimes, checked against graph-derived truth
//!    and colored into storage slots such that no two simultaneously
//!    live values ever share one without a happens-before edge.
//! 3. **Partition disjointness** — every intra-op chunk decomposition an
//!    operator can dispatch for its static shape (element chunks, row
//!    chunks, GEMM register-tile blocks) is a pairwise-disjoint exact
//!    cover of its output.
//!
//! The dynamic counterpart is the shadow-memory sanitizer in `ngb-exec`
//! ([`ngb_exec::ShadowMemory`], `--sanitize` / `NGB_SANITIZE`); the
//! [`faults`] module provides the seeded mutators that prove both halves
//! actually detect each hazard class.
//!
//! # Examples
//!
//! ```
//! use ngb_graph::{GraphBuilder, OpKind};
//!
//! let mut b = GraphBuilder::new("tiny");
//! let x = b.input(&[1, 8]);
//! b.push(OpKind::Gelu, &[x], "act").unwrap();
//! let report = ngb_sanitize::verify_graph(&b.finish());
//! assert!(report.is_clean(), "{}", report.to_text());
//! ```

#![forbid(unsafe_code)]

pub mod faults;
mod hazard;
mod hb;
mod interference;
mod partition;

pub use hazard::{Hazard, HazardKind, SanitizeReport, VerifyStats};
pub use hb::HappensBefore;
pub use partition::verify_ranges;

use ngb_exec::{BufferPlan, Schedule};
use ngb_graph::Graph;

/// Verifies all three safety properties of `graph` under its canonical
/// [`Schedule`] and [`BufferPlan`].
pub fn verify_graph(graph: &Graph) -> SanitizeReport {
    let sched = Schedule::new(graph);
    let plan = BufferPlan::new(graph);
    verify_parts(graph, &sched, &plan)
}

/// Verifies `graph` under caller-supplied parts — the entry point the
/// seeded-fault tests use to check that a corrupted [`Schedule`] or
/// [`BufferPlan`] is caught.
pub fn verify_parts(graph: &Graph, sched: &Schedule, plan: &BufferPlan) -> SanitizeReport {
    let mut report = SanitizeReport::new(&graph.name);
    report.stats.nodes = graph.len();
    hb::verify_happens_before(graph, sched, &mut report);
    // interference proofs need a valid ordering relation; a cyclic or
    // corrupt schedule is already fatal and would only cascade here
    if sched.is_complete() && sched.dropped_edges == 0 {
        let hb = HappensBefore::new(sched);
        interference::verify_interference(graph, plan, &hb, &mut report);
    }
    partition::verify_partitions(graph, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::{GraphBuilder, OpKind};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("diamond");
        let x = b.input(&[4, 4]);
        let l = b.push(OpKind::Gelu, &[x], "l").unwrap();
        let r = b.push(OpKind::Relu, &[x], "r").unwrap();
        b.push(OpKind::Add, &[l, r], "j").unwrap();
        b.finish()
    }

    #[test]
    fn clean_graph_verifies_clean_with_coverage() {
        let report = verify_graph(&diamond());
        assert!(report.is_clean(), "{}", report.to_text());
        assert_eq!(report.stats.nodes, 4);
        assert_eq!(report.stats.edges_checked, 4);
        assert_eq!(report.stats.ordered_pairs_proved, 4);
        assert!(report.stats.partitions_checked >= 4);
    }

    #[test]
    fn every_fault_class_is_caught_statically() {
        let g = diamond();

        // dropped edge -> missing-edge (+ indegree)
        let mut sched = Schedule::new(&g);
        let (u, v) = faults::drop_edge(&mut sched, &g, 7).unwrap();
        let report = verify_parts(&g, &sched, &BufferPlan::new(&g));
        assert!(
            report
                .hazards
                .iter()
                .any(|h| h.kind == HazardKind::MissingEdge
                    && h.nodes == vec![ngb_graph::NodeId(u), ngb_graph::NodeId(v)]),
            "{}",
            report.to_text()
        );

        // truncated consumer count -> uses-mismatch
        let mut plan = BufferPlan::new(&g);
        let t = faults::truncate_lifetime(&mut plan, 7).unwrap();
        let report = verify_parts(&g, &Schedule::new(&g), &plan);
        assert!(
            report
                .hazards
                .iter()
                .any(|h| h.kind == HazardKind::UsesMismatch
                    && h.nodes.contains(&ngb_graph::NodeId(t))),
            "{}",
            report.to_text()
        );

        // premature free -> lifetime-truncated
        let mut plan = BufferPlan::new(&g);
        let p = faults::premature_free(&mut plan, 7).unwrap();
        let report = verify_parts(&g, &Schedule::new(&g), &plan);
        assert!(
            report
                .hazards
                .iter()
                .any(|h| h.kind == HazardKind::LifetimeTruncated
                    && h.nodes.contains(&ngb_graph::NodeId(p))),
            "{}",
            report.to_text()
        );

        // overlapping chunks -> partition-overlap (or out-of-bounds)
        let mut ranges = ngb_ops::parallel::element_partition(100_000, 1);
        faults::overlap_chunks(&mut ranges, 7).unwrap();
        let mut report = SanitizeReport::new("chunks");
        assert!(!verify_ranges(
            "element",
            &ranges,
            100_000,
            ngb_graph::NodeId(0),
            &mut report
        ));
    }
}
