//! Happens-before reconstruction and data-edge coverage.
//!
//! The ordering relation of a run is exactly what [`Schedule`] encodes:
//! node `v` starts only after every producer in `successors[·] → v` has
//! completed (the executor's dependency counts enforce it). This module
//! rebuilds that relation as a reachability bitset plus the wavefront
//! level of each node, then proves every data edge of the graph is
//! covered and ordered by it — anything unordered is a statically
//! detected race.

use ngb_exec::Schedule;
use ngb_graph::{Graph, NodeId};

use crate::hazard::{HazardKind, SanitizeReport};

/// The happens-before relation of one schedule.
///
/// `ordered(u, v)` is true iff `v` is reachable from `u` through the
/// schedule's successor lists — i.e. the executor cannot start `v`
/// before `u` completed. The relation is irreflexive (`ordered(u, u)` is
/// false) and, for well-formed schedules, a strict partial order.
#[derive(Debug)]
pub struct HappensBefore {
    /// Wavefront level per node (`usize::MAX` for unscheduled nodes).
    pub level: Vec<usize>,
    /// Reachability bitset: `reach[u]` has bit `v` iff `u` happens
    /// before `v`.
    reach: Vec<Vec<u64>>,
    len: usize,
}

impl HappensBefore {
    /// Builds the relation from a schedule's successors and wavefronts.
    ///
    /// Node ids are topological for well-formed graphs, so one reverse
    /// sweep closes the relation; corrupt back-edges (`successor <= u`)
    /// are skipped here and reported by the edge checks instead.
    pub fn new(sched: &Schedule) -> HappensBefore {
        let len = sched.indegree.len();
        let words = len.div_ceil(64);
        let mut level = vec![usize::MAX; len];
        for (l, wave) in sched.wavefronts.iter().enumerate() {
            for id in wave {
                if id.0 < len {
                    level[id.0] = l;
                }
            }
        }
        let mut reach = vec![vec![0u64; words]; len];
        for u in (0..len).rev() {
            for &s in &sched.successors[u] {
                if s <= u || s >= len {
                    continue;
                }
                // reach[u] |= reach[s] | bit(s), without aliasing borrows
                let (head, tail) = reach.split_at_mut(s);
                let src = &tail[0];
                let dst = &mut head[u];
                for (d, &w) in dst.iter_mut().zip(src.iter()) {
                    *d |= w;
                }
                dst[s / 64] |= 1u64 << (s % 64);
            }
        }
        HappensBefore { level, reach, len }
    }

    /// Whether `before` is ordered strictly before `after`.
    pub fn ordered(&self, before: usize, after: usize) -> bool {
        before < self.len
            && after < self.len
            && self.reach[before][after / 64] & (1u64 << (after % 64)) != 0
    }
}

/// Proves happens-before coverage of every data edge; hazards are
/// appended to `report`.
///
/// An incomplete schedule (cycle) or dropped edges short-circuit the
/// per-edge checks — those defects already invalidate the relation, and
/// re-reporting every downstream edge would bury the root cause.
pub fn verify_happens_before(graph: &Graph, sched: &Schedule, report: &mut SanitizeReport) {
    let len = graph.len();
    if sched.dropped_edges > 0 {
        report.push(
            HazardKind::DroppedEdge,
            Vec::new(),
            format!(
                "schedule dropped {} out-of-range input reference(s); \
                 the graph is corrupt and coverage cannot be certified",
                sched.dropped_edges
            ),
        );
    }
    if !sched.is_complete() {
        report.push(
            HazardKind::IncompleteSchedule,
            Vec::new(),
            format!(
                "schedule covers only {} of {len} nodes (dependency cycle)",
                sched.wavefronts.iter().map(Vec::len).sum::<usize>()
            ),
        );
        return;
    }
    if sched.dropped_edges > 0 {
        return;
    }

    let hb = HappensBefore::new(sched);
    for (pos, node) in graph.iter().enumerate() {
        // distinct in-range producers must match the schedule's count
        let mut deps: Vec<usize> = node
            .inputs
            .iter()
            .map(|i| i.0)
            .filter(|&i| i < len)
            .collect();
        deps.sort_unstable();
        deps.dedup();
        if sched.indegree[pos] != deps.len() {
            report.push(
                HazardKind::IndegreeMismatch,
                vec![NodeId(pos)],
                format!(
                    "node %{pos} waits on {} producer(s) but has {} distinct \
                     data dependencies — it becomes ready {}",
                    sched.indegree[pos],
                    deps.len(),
                    if sched.indegree[pos] < deps.len() {
                        "too early"
                    } else {
                        "never (or late)"
                    }
                ),
            );
        }
        for &u in &deps {
            report.stats.edges_checked += 1;
            if !sched.successors[u].contains(&pos) {
                report.push(
                    HazardKind::MissingEdge,
                    vec![NodeId(u), NodeId(pos)],
                    format!(
                        "data edge %{u} -> %{pos} is not in the schedule: \
                         nothing orders the consumer after its producer"
                    ),
                );
                continue;
            }
            if !hb.ordered(u, pos) || hb.level[u] >= hb.level[pos] {
                report.push(
                    HazardKind::UnorderedPair,
                    vec![NodeId(u), NodeId(pos)],
                    format!(
                        "data edge %{u} -> %{pos} is not ordered by happens-before \
                         (levels {} and {}): the pair could run concurrently",
                        hb.level[u], hb.level[pos]
                    ),
                );
                continue;
            }
            report.stats.ordered_pairs_proved += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::{GraphBuilder, OpKind};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("diamond");
        let x = b.input(&[4, 4]);
        let l = b.push(OpKind::Gelu, &[x], "l").unwrap();
        let r = b.push(OpKind::Relu, &[x], "r").unwrap();
        b.push(OpKind::Add, &[l, r], "j").unwrap();
        b.finish()
    }

    #[test]
    fn happens_before_matches_the_diamond() {
        let g = diamond();
        let hb = HappensBefore::new(&Schedule::new(&g));
        assert!(hb.ordered(0, 1) && hb.ordered(0, 2) && hb.ordered(0, 3));
        assert!(hb.ordered(1, 3) && hb.ordered(2, 3));
        // the parallel branches are NOT ordered against each other
        assert!(!hb.ordered(1, 2) && !hb.ordered(2, 1));
        // irreflexive, never inverted
        for u in 0..4 {
            assert!(!hb.ordered(u, u));
        }
        assert!(!hb.ordered(3, 0));
        assert_eq!(hb.level, vec![0, 1, 1, 2]);
    }

    #[test]
    fn clean_graph_proves_every_edge() {
        let g = diamond();
        let mut report = SanitizeReport::new(&g.name);
        verify_happens_before(&g, &Schedule::new(&g), &mut report);
        assert!(report.is_clean(), "{}", report.to_text());
        assert_eq!(report.stats.edges_checked, 4);
        assert_eq!(report.stats.ordered_pairs_proved, 4);
    }

    #[test]
    fn removed_successor_is_a_missing_edge() {
        let g = diamond();
        let mut sched = Schedule::new(&g);
        sched.successors[1].retain(|&s| s != 3);
        sched.indegree[3] -= 1;
        let mut report = SanitizeReport::new(&g.name);
        verify_happens_before(&g, &sched, &mut report);
        assert_eq!(report.count(HazardKind::MissingEdge), 1);
        assert_eq!(report.count(HazardKind::IndegreeMismatch), 1);
    }

    #[test]
    fn cycle_reports_incomplete_without_cascading() {
        let mut g = diamond();
        g.nodes[3].inputs = vec![NodeId(3)];
        let mut report = SanitizeReport::new(&g.name);
        verify_happens_before(&g, &Schedule::new(&g), &mut report);
        assert_eq!(report.hazards.len(), 1);
        assert_eq!(report.hazards[0].kind, HazardKind::IncompleteSchedule);
    }

    #[test]
    fn dropped_edges_are_reported() {
        let mut g = diamond();
        g.nodes[3].inputs = vec![NodeId(1), NodeId(99)];
        let mut report = SanitizeReport::new(&g.name);
        verify_happens_before(&g, &Schedule::new(&g), &mut report);
        assert_eq!(report.count(HazardKind::DroppedEdge), 1);
    }
}
