//! # ngb-platform
//!
//! Analytic hardware models for the paper's Table 3 platforms.
//!
//! The original study measures on four physical CPUs and GPUs. This
//! reproduction substitutes roofline-style device models parameterized
//! from public spec sheets (see DESIGN.md §2): an operator's latency is
//!
//! ```text
//! t = max(flops / throughput, bytes / bandwidth) + kernels × launch
//! ```
//!
//! where `throughput` is the GEMM-engine rate for GEMM-classified ops and
//! the vector rate otherwise. The model deliberately captures the two
//! effects the paper's analysis rests on:
//!
//! 1. GPUs accelerate GEMMs by 1–2 orders of magnitude more than they
//!    accelerate memory-bound non-GEMM ops (compute vs bandwidth ratios),
//!    which shifts the Amdahl's-law balance toward non-GEMM operators; and
//! 2. every GPU kernel pays a launch overhead, so operators that decompose
//!    into many small kernels (NewGELU, LlamaRMSNorm, FrozenBatchNorm2d)
//!    are disproportionately expensive at small batch sizes.
//!
//! Energy integrates a TDP-based power model over the same latency.

#![forbid(unsafe_code)]

use ngb_ops::OpCost;
use serde::{Deserialize, Serialize};

/// What kind of execution engine a device is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A host CPU.
    Cpu,
    /// A discrete GPU with a kernel-launch model and a PCIe link.
    Gpu,
    /// An NPU-class accelerator: a systolic GEMM engine behind a thin
    /// vector unit — strong matmul throughput, weak non-GEMM coverage
    /// (the "When NPUs Are Not Always Faster" regime).
    Npu,
}

/// Roofline parameters of one device.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceModel {
    /// Marketing name (Table 3).
    pub name: &'static str,
    /// CPU or GPU.
    pub kind: DeviceKind,
    /// Peak sustained GEMM throughput in TFLOP/s (tensor cores on GPUs,
    /// AVX-512/AMX-class FMA on CPUs), already derated to achievable rates.
    pub gemm_tflops: f64,
    /// Peak sustained element-wise/vector throughput in TFLOP/s.
    pub vector_tflops: f64,
    /// Memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Per-kernel launch overhead in microseconds (≈0 on CPUs).
    pub kernel_launch_us: f64,
    /// Host↔device transfer bandwidth in GB/s (PCIe; unused for CPUs).
    pub pcie_gbs: f64,
    /// Fixed per-transfer latency in microseconds (driver + sync).
    pub transfer_fixed_us: f64,
    /// Board/package power at full load, watts.
    pub tdp_watts: f64,
    /// Idle power, watts.
    pub idle_watts: f64,
}

impl DeviceModel {
    /// NVIDIA A100 (data-center GPU).
    pub fn a100() -> Self {
        DeviceModel {
            name: "NVIDIA A100",
            kind: DeviceKind::Gpu,
            gemm_tflops: 120.0, // TF32 tensor cores, derated from 156 peak
            vector_tflops: 15.0,
            mem_bw_gbs: 1555.0,
            kernel_launch_us: 4.0,
            pcie_gbs: 25.0,
            transfer_fixed_us: 6.0,
            tdp_watts: 400.0,
            idle_watts: 55.0,
        }
    }

    /// NVIDIA RTX 4090 (workstation GPU).
    pub fn rtx4090() -> Self {
        DeviceModel {
            name: "NVIDIA RTX 4090",
            kind: DeviceKind::Gpu,
            gemm_tflops: 70.0,
            vector_tflops: 12.0,
            mem_bw_gbs: 1008.0,
            kernel_launch_us: 3.5,
            pcie_gbs: 25.0,
            transfer_fixed_us: 6.0,
            tdp_watts: 450.0,
            idle_watts: 25.0,
        }
    }

    /// NVIDIA RTX 4060 Mobile (laptop GPU).
    pub fn rtx4060m() -> Self {
        DeviceModel {
            name: "NVIDIA RTX 4060m",
            kind: DeviceKind::Gpu,
            gemm_tflops: 14.0,
            vector_tflops: 3.5,
            mem_bw_gbs: 256.0,
            kernel_launch_us: 5.0,
            pcie_gbs: 12.0,
            transfer_fixed_us: 8.0,
            tdp_watts: 115.0,
            idle_watts: 10.0,
        }
    }

    /// AMD EPYC 7763 (data-center CPU, 64 cores).
    pub fn epyc7763() -> Self {
        DeviceModel {
            name: "AMD EPYC 7763",
            kind: DeviceKind::Cpu,
            gemm_tflops: 2.8,
            vector_tflops: 0.9,
            mem_bw_gbs: 205.0,
            kernel_launch_us: 0.2,
            pcie_gbs: 0.0,
            transfer_fixed_us: 0.0,
            tdp_watts: 280.0,
            idle_watts: 95.0,
        }
    }

    /// Intel i9-13900K (workstation CPU).
    pub fn i9_13900k() -> Self {
        DeviceModel {
            name: "Intel i9-13900K",
            kind: DeviceKind::Cpu,
            gemm_tflops: 1.6,
            vector_tflops: 0.55,
            mem_bw_gbs: 89.0,
            kernel_launch_us: 0.15,
            pcie_gbs: 0.0,
            transfer_fixed_us: 0.0,
            tdp_watts: 253.0,
            idle_watts: 28.0,
        }
    }

    /// Intel i7-13700H (mobile CPU).
    pub fn i7_13700h() -> Self {
        DeviceModel {
            name: "Intel i7-13700H",
            kind: DeviceKind::Cpu,
            gemm_tflops: 0.8,
            vector_tflops: 0.3,
            mem_bw_gbs: 62.0,
            kernel_launch_us: 0.15,
            pcie_gbs: 0.0,
            transfer_fixed_us: 0.0,
            tdp_watts: 115.0,
            idle_watts: 12.0,
        }
    }

    /// Edge NPU (40 TOPS class): GEMM throughput near a mobile GPU's but
    /// an order of magnitude less vector throughput, so non-GEMM
    /// operators dominate even harder than on GPUs.
    pub fn edge_npu() -> Self {
        DeviceModel {
            name: "Edge NPU 40T",
            kind: DeviceKind::Npu,
            gemm_tflops: 16.0,
            vector_tflops: 0.4,
            mem_bw_gbs: 120.0,
            kernel_launch_us: 8.0,
            pcie_gbs: 8.0,
            transfer_fixed_us: 10.0,
            tdp_watts: 30.0,
            idle_watts: 3.0,
        }
    }

    /// Latency in **seconds** of one operator with `cost`, classified GEMM
    /// or not, on this device.
    pub fn op_latency(&self, cost: &OpCost, is_gemm: bool) -> f64 {
        let tput = if is_gemm {
            self.gemm_tflops
        } else {
            self.vector_tflops
        } * 1e12;
        let compute = if tput > 0.0 { cost.flops / tput } else { 0.0 };
        let memory = cost.memory_bytes() / (self.mem_bw_gbs * 1e9);
        compute.max(memory) + cost.kernels as f64 * self.kernel_launch_us * 1e-6
    }

    /// Latency in seconds of moving `bytes` across the host link (zero for
    /// CPUs, which share memory with the host).
    pub fn transfer_latency(&self, bytes: f64) -> f64 {
        if self.kind == DeviceKind::Cpu || bytes <= 0.0 {
            return 0.0;
        }
        self.transfer_fixed_us * 1e-6 + bytes / (self.pcie_gbs * 1e9)
    }

    /// Energy in **joules** consumed running a kernel for `seconds` at
    /// `utilization` (0–1) of full load.
    pub fn energy(&self, seconds: f64, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        (self.idle_watts + (self.tdp_watts - self.idle_watts) * u) * seconds
    }
}

/// Table 3's three hardware classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HardwareClass {
    /// Laptop-class.
    Mobile,
    /// Desktop workstation.
    Workstation,
    /// Server.
    DataCenter,
}

impl std::fmt::Display for HardwareClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HardwareClass::Mobile => "Mobile",
            HardwareClass::Workstation => "Workstation",
            HardwareClass::DataCenter => "Data Center",
        })
    }
}

/// A CPU (+ optional GPU) pair, one row of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Platform {
    /// Hardware class.
    pub class: HardwareClass,
    /// Host CPU model.
    pub cpu: DeviceModel,
    /// Attached GPU, when present.
    pub gpu: Option<DeviceModel>,
}

impl Platform {
    /// Data center: EPYC 7763 + A100.
    pub fn data_center() -> Self {
        Platform {
            class: HardwareClass::DataCenter,
            cpu: DeviceModel::epyc7763(),
            gpu: Some(DeviceModel::a100()),
        }
    }

    /// Workstation: i9-13900K + RTX 4090.
    pub fn workstation() -> Self {
        Platform {
            class: HardwareClass::Workstation,
            cpu: DeviceModel::i9_13900k(),
            gpu: Some(DeviceModel::rtx4090()),
        }
    }

    /// Mobile: i7-13700H + RTX 4060m.
    pub fn mobile() -> Self {
        Platform {
            class: HardwareClass::Mobile,
            cpu: DeviceModel::i7_13700h(),
            gpu: Some(DeviceModel::rtx4060m()),
        }
    }

    /// The same platform with the GPU removed (CPU-only configuration).
    pub fn cpu_only(mut self) -> Self {
        self.gpu = None;
        self
    }

    /// Whether a GPU is attached.
    pub fn has_gpu(&self) -> bool {
        self.gpu.is_some()
    }

    /// Short display name, e.g. `"Data Center (CPU+GPU)"`.
    pub fn label(&self) -> String {
        format!(
            "{} ({})",
            self.class,
            if self.has_gpu() {
                "CPU+GPU"
            } else {
                "CPU only"
            }
        )
    }

    /// All three Table 3 platforms with GPUs.
    pub fn all_gpu() -> Vec<Platform> {
        vec![
            Platform::mobile(),
            Platform::workstation(),
            Platform::data_center(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_cost() -> OpCost {
        ngb_ops::gemm::matmul_cost(1024, 1024, 1024)
    }

    #[test]
    fn gpu_accelerates_gemm_far_more_than_elementwise() {
        let cpu = DeviceModel::epyc7763();
        let gpu = DeviceModel::a100();
        let g = gemm_cost();
        let e = OpCost::elementwise(1024 * 1024, 1.0);
        let gemm_speedup = cpu.op_latency(&g, true) / gpu.op_latency(&g, true);
        let ew_speedup = cpu.op_latency(&e, false) / gpu.op_latency(&e, false);
        assert!(
            gemm_speedup > 5.0 * ew_speedup,
            "gemm {gemm_speedup:.1}x vs ew {ew_speedup:.1}x"
        );
    }

    #[test]
    fn launch_overhead_dominates_tiny_gpu_kernels() {
        let gpu = DeviceModel::a100();
        let tiny = OpCost::elementwise(128, 1.0);
        let t = gpu.op_latency(&tiny, false);
        assert!(t >= 4.0e-6, "tiny kernel should pay the launch: {t}");
        // 8-kernel NewGELU on the same data costs ~8x the launches
        let decomposed = ngb_ops::activation::new_gelu_cost(&[128]);
        assert!(gpu.op_latency(&decomposed, false) > 7.0 * t);
    }

    #[test]
    fn memory_bound_ops_track_bandwidth() {
        let gpu = DeviceModel::a100();
        let big = OpCost::copy(100_000_000); // 800 MB traffic
        let t = gpu.op_latency(&big, false);
        let expected = 8.0e8 / (1555.0 * 1e9);
        assert!(
            (t - expected - 4.0e-6).abs() / expected < 0.05,
            "{t} vs {expected}"
        );
    }

    #[test]
    fn transfer_latency_only_on_gpus() {
        assert_eq!(DeviceModel::epyc7763().transfer_latency(1e6), 0.0);
        let t = DeviceModel::a100().transfer_latency(1e6);
        assert!(t > 1e-5, "{t}");
        assert_eq!(DeviceModel::a100().transfer_latency(0.0), 0.0);
    }

    #[test]
    fn energy_scales_with_time_and_load() {
        let d = DeviceModel::rtx4090();
        assert!(d.energy(1.0, 1.0) > d.energy(1.0, 0.1));
        assert!((d.energy(2.0, 0.5) - 2.0 * d.energy(1.0, 0.5)).abs() < 1e-9);
        assert_eq!(d.energy(0.0, 1.0), 0.0);
    }

    #[test]
    fn platform_rosters_match_table3() {
        let dc = Platform::data_center();
        assert_eq!(dc.cpu.name, "AMD EPYC 7763");
        assert_eq!(dc.gpu.as_ref().unwrap().name, "NVIDIA A100");
        let ws = Platform::workstation();
        assert_eq!(ws.gpu.as_ref().unwrap().name, "NVIDIA RTX 4090");
        let mb = Platform::mobile();
        assert_eq!(mb.cpu.name, "Intel i7-13700H");
        assert!(!mb.clone().cpu_only().has_gpu());
        assert_eq!(Platform::all_gpu().len(), 3);
    }

    #[test]
    fn device_hierarchy_is_ordered() {
        // faster classes must be strictly faster on the same op
        let c = gemm_cost();
        let t_dc = DeviceModel::a100().op_latency(&c, true);
        let t_ws = DeviceModel::rtx4090().op_latency(&c, true);
        let t_mb = DeviceModel::rtx4060m().op_latency(&c, true);
        assert!(t_dc < t_ws && t_ws < t_mb);
        let t_cpu_dc = DeviceModel::epyc7763().op_latency(&c, true);
        let t_cpu_ws = DeviceModel::i9_13900k().op_latency(&c, true);
        let t_cpu_mb = DeviceModel::i7_13700h().op_latency(&c, true);
        assert!(t_cpu_dc < t_cpu_ws && t_cpu_ws < t_cpu_mb);
    }
}
