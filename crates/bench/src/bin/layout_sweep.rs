//! Layout sweep: what contiguous elision and strided kernel consumption
//! buy per model. Every registry model at tiny scale is executed twice —
//! the unoptimized graph (O0) and the rewritten one (O2, elision on) —
//! and the sweep reports measured bytes materialized (dense copies made
//! by kernels at run time), the static `Contiguous` copy bound, and the
//! Memory-group share of measured latency for both.
//!
//! ```text
//! layout_sweep [--model <alias>]... [--iters N] [--out PATH]
//! ```
//!
//! Writes the table to `--out` (default `BENCH_LAYOUT.json`) and prints
//! it. Latencies are minima over `--iters` measured runs; run in release
//! mode — debug-build kernels are too slow to be meaningful.

use nongemm::graph::NonGemmGroup;
use nongemm::{optimize_with, ModelId, OptLevel, Scale};
use serde::Serialize;

struct Args {
    models: Vec<String>,
    iters: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        models: Vec::new(),
        iters: 3,
        out: "BENCH_LAYOUT.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{arg} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--model" => {
                let v = value();
                args.models.push(v);
            }
            "--iters" => {
                args.iters = value().parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--iters requires a positive integer");
                    std::process::exit(2);
                })
            }
            "--out" => args.out = value(),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: layout_sweep [--model <alias>]... [--iters N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One optimization level's measurements for one model.
#[derive(Serialize)]
struct LevelRow {
    nodes: usize,
    static_contiguous_bytes: u64,
    measured_bytes_materialized: u64,
    total_us: f64,
    memory_us: f64,
}

/// One model's O0-vs-O2 comparison.
#[derive(Serialize)]
struct ModelRow {
    model: &'static str,
    contiguous_elided: usize,
    elision_bytes_saved: usize,
    o0: LevelRow,
    o2: LevelRow,
}

/// The whole artifact (`BENCH_LAYOUT.json`).
#[derive(Serialize)]
struct LayoutDoc {
    scale: &'static str,
    iters: usize,
    models: Vec<ModelRow>,
}

fn measure(graph: &nongemm::Graph, iters: usize) -> LevelRow {
    let profile = nongemm::profiler::profile_measured(graph, iters, 0x5eed)
        .expect("registry models execute on the host");
    let b = profile.breakdown();
    LevelRow {
        nodes: graph.len(),
        static_contiguous_bytes: graph.contiguous_copy_bytes(),
        measured_bytes_materialized: profile.total_bytes_materialized(),
        total_us: b.total_s * 1e6,
        memory_us: b.groups.get(&NonGemmGroup::Memory).copied().unwrap_or(0.0) * 1e6,
    }
}

fn main() {
    let args = parse_args();
    let models: Vec<ModelId> = if args.models.is_empty() {
        ModelId::all().to_vec()
    } else {
        ModelId::all()
            .iter()
            .copied()
            .filter(|m| args.models.iter().any(|a| a == m.spec().alias))
            .collect()
    };
    if models.is_empty() {
        eprintln!("no models matched");
        std::process::exit(2);
    }

    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "model", "bytes O0", "bytes O2", "elided", "mem% O0", "mem% O2", "us O0", "us O2"
    );
    let mut rows = Vec::new();
    for model in models {
        let base = model
            .build(1, Scale::Tiny)
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        let (g0, _) = optimize_with(&base, OptLevel::O0, true);
        let (g2, report) = optimize_with(&base, OptLevel::O2, true);
        let o0 = measure(&g0, args.iters);
        let o2 = measure(&g2, args.iters);
        println!(
            "{:<14} {:>12} {:>12} {:>8} {:>8.1}% {:>8.1}% {:>8.0} {:>8.0}",
            model.spec().alias,
            o0.measured_bytes_materialized,
            o2.measured_bytes_materialized,
            report.contiguous_elided,
            100.0 * o0.memory_us / o0.total_us.max(f64::MIN_POSITIVE),
            100.0 * o2.memory_us / o2.total_us.max(f64::MIN_POSITIVE),
            o0.total_us,
            o2.total_us,
        );
        rows.push(ModelRow {
            model: model.spec().alias,
            contiguous_elided: report.contiguous_elided,
            elision_bytes_saved: report.elision_bytes_saved,
            o0,
            o2,
        });
    }
    let doc = LayoutDoc {
        scale: "tiny",
        iters: args.iters,
        models: rows,
    };
    std::fs::write(
        &args.out,
        serde_json::to_string_pretty(&doc).expect("serializable") + "\n",
    )
    .unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {}", args.out);
}
