//! Decode throughput sweep + the CI decode gate.
//!
//! For each autoregressive LM at tiny scale this binary (1) asserts the
//! cached decode path is **bit-identical** to the uncached full-sequence
//! recompute over a greedy generation, (2) asserts the int8
//! weight-quantized path stays within the documented probability
//! tolerance of fp32 on the same token stream, and (3) sweeps batch size
//! 1–64 reporting cached tokens/sec and KV-cache hit rates.
//!
//! ```text
//! decode_sweep [--model <alias>]... [--tokens N] [--prompt N]
//!              [--max-batch N] [--out PATH]
//! ```
//!
//! Writes the sweep to `--out` (default `BENCH_DECODE.json`) and prints
//! it; exits non-zero when any gate fails. Run in release mode.

use std::time::Instant;

use nongemm::models::decode_bundle;
use nongemm::ops::Quant;
use nongemm::runtime::{greedy_decode, greedy_reference, synth_prompt, DecodeSession};
use nongemm::tensor::{bit_equal, max_abs_err};
use nongemm::{Interpreter, ModelId, Scale};
use serde::Serialize;

/// Documented end-to-end int8 tolerance: maximum absolute deviation of
/// any next-token probability from the fp32 run on the same token
/// stream. Per-GEMM error is bounded analytically by
/// `ngb_ops::quant::int8_error_bound`; after layer norms and a softmax
/// the tiny-scale models stay well inside this envelope.
const INT8_PROB_TOL: f32 = 5e-2;

const SEED: u64 = 0x5eed;

struct Args {
    models: Vec<String>,
    tokens: usize,
    prompt: usize,
    max_batch: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        models: Vec::new(),
        tokens: 32,
        prompt: 4,
        max_batch: 64,
        out: "BENCH_DECODE.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{arg} requires a value");
                std::process::exit(2);
            })
        };
        let positive = |flag: &str, v: String| -> usize {
            v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                eprintln!("{flag} requires a positive integer");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--model" => {
                let v = value();
                args.models.push(v);
            }
            "--tokens" => args.tokens = positive("--tokens", value()),
            "--prompt" => args.prompt = positive("--prompt", value()),
            "--max-batch" => args.max_batch = positive("--max-batch", value()),
            "--out" => args.out = value(),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: decode_sweep [--model <alias>]... [--tokens N] \
                     [--prompt N] [--max-batch N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.models.is_empty() {
        args.models = vec!["gpt2".to_string(), "llama2".to_string()];
    }
    args
}

#[derive(Serialize)]
struct BatchPoint {
    batch: usize,
    tokens_generated: usize,
    wall_s: f64,
    tokens_per_sec: f64,
    cache_hit_rate: f64,
    appended_rows: u64,
    reused_rows: u64,
}

#[derive(Serialize)]
struct ModelSweep {
    model: String,
    prompt_len: usize,
    new_tokens: usize,
    bit_identical: bool,
    int8_max_abs_err: f32,
    int8_tolerance: f32,
    points: Vec<BatchPoint>,
}

#[derive(Serialize)]
struct Doc {
    schema: u64,
    scale: String,
    sweeps: Vec<ModelSweep>,
}

/// Re-runs a session on a fixed token stream (the fp32 run's choices)
/// and returns the per-step probability tensors, so quantized and fp32
/// paths are compared on identical inputs.
fn forced_probs(
    session: &mut DecodeSession,
    prompt: &[Vec<i64>],
    driven: &[Vec<Vec<i64>>],
) -> Result<Vec<nongemm::tensor::Tensor>, nongemm::tensor::TensorError> {
    let prompt_len = prompt.first().map(Vec::len).unwrap_or(0);
    let mut last = session.step(&prompt.iter().map(|p| p[0]).collect::<Vec<_>>())?;
    for t in 1..prompt_len {
        last = session.step(&prompt.iter().map(|p| p[t]).collect::<Vec<_>>())?;
    }
    let mut probs = vec![last];
    for ids in driven {
        let flat: Vec<i64> = ids.iter().map(|row| row[0]).collect();
        probs.push(session.step(&flat)?);
    }
    Ok(probs)
}

fn run_model(alias: &str, args: &Args) -> Result<ModelSweep, String> {
    let id = ModelId::all()
        .iter()
        .copied()
        .find(|m| m.spec().alias == alias)
        .ok_or_else(|| format!("unknown model '{alias}'"))?;
    let total = args.prompt + args.tokens;
    let make_bundle = |batch: usize| {
        decode_bundle(id, Scale::Tiny, batch, total)
            .ok_or_else(|| format!("{alias} is not an autoregressive LM"))?
            .map_err(|e| format!("{alias}: {e}"))
    };

    // gate 1: cached decode is bit-identical to the uncached recompute
    let bundle = make_bundle(1)?;
    let prompt = synth_prompt(SEED, &bundle.reference, args.prompt).map_err(|e| e.to_string())?;
    let interp = Interpreter::new(SEED).quantize(Quant::None);
    let mut session = DecodeSession::new(bundle.decode.clone(), &bundle.reference, interp.clone())
        .map_err(|e| e.to_string())?;
    let cached = greedy_decode(&mut session, &prompt, args.tokens).map_err(|e| e.to_string())?;
    let uncached = greedy_reference(&bundle.reference, &interp, &prompt, args.tokens)
        .map_err(|e| e.to_string())?;
    let bit_identical = cached.tokens == uncached.tokens
        && cached.step_probs.len() == uncached.step_probs.len()
        && cached
            .step_probs
            .iter()
            .zip(&uncached.step_probs)
            .all(|(a, b)| bit_equal(a, b).unwrap_or(false));
    if !bit_identical {
        return Err(format!(
            "{alias}: cached decode diverged from the uncached reference"
        ));
    }

    // gate 2: int8 weight-quantized decode tracks fp32 on the same stream
    let driven: Vec<Vec<Vec<i64>>> = (0..args.tokens.saturating_sub(1))
        .map(|t| cached.tokens.iter().map(|row| vec![row[t]]).collect())
        .collect();
    let mut fp32 = DecodeSession::new(bundle.decode.clone(), &bundle.reference, interp.clone())
        .map_err(|e| e.to_string())?;
    let fp32_probs = forced_probs(&mut fp32, &prompt, &driven).map_err(|e| e.to_string())?;
    let mut int8 = DecodeSession::new(
        bundle.decode.clone(),
        &bundle.reference,
        interp.clone().quantize(Quant::Int8),
    )
    .map_err(|e| e.to_string())?;
    let int8_probs = forced_probs(&mut int8, &prompt, &driven).map_err(|e| e.to_string())?;
    let int8_max_abs_err = fp32_probs
        .iter()
        .zip(&int8_probs)
        .map(|(a, b)| max_abs_err(a, b).unwrap_or(f32::INFINITY))
        .fold(0.0f32, f32::max);
    if int8_max_abs_err > INT8_PROB_TOL {
        return Err(format!(
            "{alias}: int8 probability error {int8_max_abs_err:.3e} exceeds {INT8_PROB_TOL:.0e}"
        ));
    }

    // sweep: cached greedy throughput at batch 1..=max_batch
    let mut points = Vec::new();
    let mut batch = 1usize;
    while batch <= args.max_batch {
        let bundle = make_bundle(batch)?;
        let prompt =
            synth_prompt(SEED, &bundle.reference, args.prompt).map_err(|e| e.to_string())?;
        let mut session = DecodeSession::new(bundle.decode, &bundle.reference, interp.clone())
            .map_err(|e| e.to_string())?;
        let start = Instant::now();
        let report =
            greedy_decode(&mut session, &prompt, args.tokens).map_err(|e| e.to_string())?;
        let wall_s = start.elapsed().as_secs_f64();
        let generated = batch * args.tokens;
        let tokens_per_sec = if wall_s > 0.0 {
            generated as f64 / wall_s
        } else {
            0.0
        };
        if tokens_per_sec <= 0.0 {
            return Err(format!("{alias}: non-positive decode throughput"));
        }
        points.push(BatchPoint {
            batch,
            tokens_generated: generated,
            wall_s,
            tokens_per_sec,
            cache_hit_rate: report.cache.hit_rate(),
            appended_rows: report.cache.appended_rows,
            reused_rows: report.cache.reused_rows,
        });
        batch *= 2;
    }

    Ok(ModelSweep {
        model: alias.to_string(),
        prompt_len: args.prompt,
        new_tokens: args.tokens,
        bit_identical,
        int8_max_abs_err,
        int8_tolerance: INT8_PROB_TOL,
        points,
    })
}

fn main() {
    let args = parse_args();
    let mut sweeps = Vec::new();
    for alias in &args.models {
        match run_model(alias, &args) {
            Ok(sweep) => {
                println!(
                    "{}: bit-identical over {} tokens, int8 err {:.2e} (tol {:.0e})",
                    alias, args.tokens, sweep.int8_max_abs_err, sweep.int8_tolerance
                );
                for p in &sweep.points {
                    println!(
                        "  batch {:>3}: {:>10.0} tok/s  cache hit {:>5.1}%",
                        p.batch,
                        p.tokens_per_sec,
                        p.cache_hit_rate * 100.0
                    );
                }
                sweeps.push(sweep);
            }
            Err(e) => {
                eprintln!("decode gate FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    let doc = Doc {
        schema: 1,
        scale: "tiny".to_string(),
        sweeps,
    };
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("output directory");
        }
    }
    std::fs::write(
        &args.out,
        serde_json::to_string_pretty(&doc).expect("serializable") + "\n",
    )
    .expect("write output");
    println!("wrote {}", args.out);
}
