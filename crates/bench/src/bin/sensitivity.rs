//! Sensitivity study: the Amdahl's-law argument of §1, made quantitative.
//! Sweeps (a) GEMM-engine throughput and (b) kernel-launch overhead of the
//! data-center GPU, showing that the faster the GEMM engine, the more the
//! non-GEMM operators dominate — and that launch overhead drives the
//! small-kernel models.

use nongemm::profiler::profile_analytic;
use nongemm::{Flow, ModelId, Platform, Scale};

fn non_gemm_pct(g: &ngb_graph::Graph, platform: &Platform) -> f64 {
    profile_analytic(g, platform, Flow::Eager, true, 1)
        .breakdown()
        .non_gemm_frac()
        * 100.0
}

fn main() {
    let models = [ModelId::VitLarge16, ModelId::Gpt2Xl, ModelId::FasterRcnn];
    let graphs: Vec<_> = models
        .iter()
        .map(|m| m.build(1, Scale::Full).expect("suite models build"))
        .collect();

    println!("Sweep A: non-GEMM share (%) vs GEMM-engine speed (A100 = 1x)\n");
    print!("{:<12}", "model");
    let factors = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    for f in factors {
        print!("{f:>8}x");
    }
    println!();
    for (m, g) in models.iter().zip(&graphs) {
        print!("{:<12}", m.spec().alias);
        let mut prev = -1.0;
        for f in factors {
            let mut p = Platform::data_center();
            if let Some(gpu) = &mut p.gpu {
                gpu.gemm_tflops *= f;
            }
            let ng = non_gemm_pct(g, &p);
            print!("{ng:>8.1}%");
            assert!(
                ng + 1e-9 >= prev,
                "{m}: faster GEMM engine must not lower the non-GEMM share"
            );
            prev = ng;
        }
        println!();
    }

    println!("\nSweep B: non-GEMM share (%) vs kernel-launch overhead (A100 = 4 us)\n");
    print!("{:<12}", "model");
    let launches = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0];
    for l in launches {
        print!("{l:>7}us");
    }
    println!();
    for (m, g) in models.iter().zip(&graphs) {
        print!("{:<12}", m.spec().alias);
        let mut shares = Vec::new();
        for l in launches {
            let mut p = Platform::data_center();
            if let Some(gpu) = &mut p.gpu {
                gpu.kernel_launch_us = l;
            }
            let ng = non_gemm_pct(g, &p);
            print!("{ng:>8.1}%");
            shares.push(ng);
        }
        println!();
        // GEMM nodes launch kernels too; the share is near-flat for fused
        // transformer stacks (ViT) and rises for models with decomposed
        // multi-kernel ops (GPT-2's NewGELU, detection's FrozenBatchNorm)
        let (first, last) = (shares[0], *shares.last().expect("swept"));
        assert!(last >= first - 1.0, "{m}: {first:.1} -> {last:.1}");
    }
    println!(
        "\nSweep A is the Amdahl's-law story: every generation of GEMM\n\
         acceleration makes the non-GEMM side more dominant, saturating once\n\
         GEMMs are effectively free. Sweep B shows launch overhead taxes the\n\
         decomposed multi-kernel ops (GPT-2, FasterRCNN) hardest."
    );
}
