//! Per-kernel throughput sweep at the paper's full-scale shapes: the hot
//! GEMM and non-GEMM kernels measured standalone (outside any graph), with
//! the pre-optimization reference loops kept inline so the win of the
//! cache-blocked / fused kernels is reproducible from one binary.
//!
//! ```text
//! kernel_sweep [--iters N]
//! ```
//!
//! Variants per kernel:
//!
//! * `matmul` — `naive-branchy` is the original i-k-j loop including its
//!   `aik == 0.0` skip (a branch that only ever mispredicts on dense
//!   activations), `naive` is the same loop branch-free, `blocked` is the
//!   shipping MR×NR register-blocked kernel with packed B panels;
//! * `bmm` — per-batch naive loop vs the shipping packed kernel;
//! * `softmax` — the decomposed reduce/zip_map/map chain the harness used
//!   before lane fusion vs the shipping fused kernel;
//! * `layer_norm` / `gelu` / `add` — shipping kernels only (their serial
//!   row/element math is unchanged; intra-op chunking is the only delta).
//!
//! Latency per variant is the minimum over `--iters` runs; throughput is
//! derived from the analytic FLOP/byte counts of the shape. Run in release
//! mode — debug-build kernels are too slow to be meaningful. Honors
//! `NGB_THREADS`, `NGB_INTRAOP`, and `NGB_INTRAOP_MIN_ELEMS`; when CSV
//! collection is wanted set `NGB_OUT_DIR` (see [`ngb_bench::maybe_write_csv`]).

use std::sync::Arc;
use std::time::Instant;

use ngb_bench::maybe_write_csv;
use nongemm::exec::{env_intraop, env_threads, PoolRunner, ThreadPool};
use nongemm::ops::parallel::{self, IntraOpRunner};
use nongemm::ops::{activation, arithmetic, gemm, logit, normalization};
use nongemm::tensor::random::TensorRng;
use nongemm::tensor::Tensor;

fn parse_iters() -> usize {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut iters = 5usize;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--iters requires a positive integer");
                        std::process::exit(2);
                    })
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: kernel_sweep [--iters N]");
                std::process::exit(2);
            }
        }
    }
    iters
}

fn best_of(iters: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The pre-optimization matmul: i-k-j with the dense-hostile zero skip.
fn matmul_naive_branchy(av: &[f32], bv: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let aik = av[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[kk * n..(kk + 1) * n];
            let crow = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
    out
}

/// Same loop, branch-free (the first step of the optimization).
fn matmul_naive(av: &[f32], bv: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let aik = av[i * k + kk];
            let brow = &bv[kk * n..(kk + 1) * n];
            let crow = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
    out
}

/// The decomposed softmax chain the harness shipped before lane fusion.
fn softmax_chain(x: &Tensor, dim: usize) -> Tensor {
    let max = x
        .reduce_dim(dim, true, f32::NEG_INFINITY, f32::max)
        .expect("sweep shapes reduce");
    let shifted = x.zip_map(&max, |a, m| a - m).expect("sweep shapes zip");
    let exp = shifted.map(f32::exp).expect("sweep shapes map");
    let sum = exp
        .reduce_dim(dim, true, 0.0, |a, v| a + v)
        .expect("sweep shapes reduce");
    exp.zip_map(&sum, |e, s| e / s).expect("sweep shapes zip")
}

struct Row {
    kernel: &'static str,
    variant: &'static str,
    secs: f64,
    flops: f64,
    bytes: f64,
}

fn print_row(r: &Row) {
    let gflops = if r.flops > 0.0 {
        format!("{:>9.2}", r.flops / r.secs / 1e9)
    } else {
        format!("{:>9}", "-")
    };
    println!(
        "{:<22}{:<16}{:>9.2}{gflops}{:>8.2}",
        r.kernel,
        r.variant,
        r.secs * 1e3,
        r.bytes / r.secs / 1e9
    );
}

fn sweep(iters: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut rng = TensorRng::seed(0x5eed);

    // matmul at the paper's GPT-2 attention/MLP projection shapes.
    for (m, k, n) in [(512usize, 768usize, 768usize), (512, 768, 3072)] {
        let a = rng.normal(&[m, k]);
        let b = rng.normal(&[k, n]);
        let av = a.to_vec_f32().expect("f32");
        let bv = b.to_vec_f32().expect("f32");
        let kernel: &'static str = match n {
            768 => "matmul 512x768x768",
            _ => "matmul 512x768x3072",
        };
        let flops = 2.0 * (m * k * n) as f64;
        let bytes = 4.0 * (m * k + k * n + m * n) as f64;
        let secs = best_of(iters, || {
            std::hint::black_box(matmul_naive_branchy(&av, &bv, m, k, n));
        });
        rows.push(Row {
            kernel,
            variant: "naive-branchy",
            secs,
            flops,
            bytes,
        });
        let secs = best_of(iters, || {
            std::hint::black_box(matmul_naive(&av, &bv, m, k, n));
        });
        rows.push(Row {
            kernel,
            variant: "naive",
            secs,
            flops,
            bytes,
        });
        let secs = best_of(iters, || {
            std::hint::black_box(gemm::matmul(&a, &b).expect("sweep shapes multiply"));
        });
        rows.push(Row {
            kernel,
            variant: "blocked",
            secs,
            flops,
            bytes,
        });
    }

    // bmm at the per-head attention score shape (12 heads, seq 512, d 64).
    let (bb, m, k, n) = (12usize, 512usize, 64usize, 512usize);
    let a = rng.normal(&[bb, m, k]);
    let b = rng.normal(&[bb, k, n]);
    let av = a.to_vec_f32().expect("f32");
    let bv = b.to_vec_f32().expect("f32");
    let flops = 2.0 * (bb * m * k * n) as f64;
    let bytes = 4.0 * (bb * (m * k + k * n + m * n)) as f64;
    let secs = best_of(iters, || {
        for bi in 0..bb {
            std::hint::black_box(matmul_naive(
                &av[bi * m * k..(bi + 1) * m * k],
                &bv[bi * k * n..(bi + 1) * k * n],
                m,
                k,
                n,
            ));
        }
    });
    rows.push(Row {
        kernel: "bmm 12x512x64x512",
        variant: "naive",
        secs,
        flops,
        bytes,
    });
    let secs = best_of(iters, || {
        std::hint::black_box(gemm::bmm(&a, &b).expect("sweep shapes multiply"));
    });
    rows.push(Row {
        kernel: "bmm 12x512x64x512",
        variant: "blocked",
        secs,
        flops,
        bytes,
    });

    // softmax over the attention-score lanes.
    let x = rng.normal(&[12, 512, 512]);
    let nel = 12 * 512 * 512;
    let flops = 5.0 * nel as f64;
    let bytes = 4.0 * (2 * nel) as f64;
    let secs = best_of(iters, || {
        std::hint::black_box(softmax_chain(&x, 2));
    });
    rows.push(Row {
        kernel: "softmax 12x512x512",
        variant: "chain",
        secs,
        flops,
        bytes,
    });
    let secs = best_of(iters, || {
        std::hint::black_box(logit::softmax(&x, 2).expect("sweep shapes softmax"));
    });
    rows.push(Row {
        kernel: "softmax 12x512x512",
        variant: "fused",
        secs,
        flops,
        bytes,
    });

    // layer_norm / gelu / add at the transformer hidden shapes.
    let x = rng.normal(&[512, 1024]);
    let gamma = rng.normal(&[1024]);
    let beta = rng.normal(&[1024]);
    let nel = 512 * 1024;
    let secs = best_of(iters, || {
        std::hint::black_box(
            normalization::layer_norm(&x, &gamma, &beta, 1e-5).expect("sweep shapes normalize"),
        );
    });
    rows.push(Row {
        kernel: "layer_norm 512x1024",
        variant: "rows",
        secs,
        flops: 8.0 * nel as f64,
        bytes: 4.0 * (2 * nel) as f64,
    });

    let x = rng.normal(&[512, 3072]);
    let y = rng.normal(&[512, 3072]);
    let nel = 512 * 3072;
    let secs = best_of(iters, || {
        std::hint::black_box(activation::gelu(&x).expect("sweep shapes activate"));
    });
    rows.push(Row {
        kernel: "gelu 512x3072",
        variant: "chunks",
        secs,
        flops: 8.0 * nel as f64,
        bytes: 4.0 * (2 * nel) as f64,
    });
    let secs = best_of(iters, || {
        std::hint::black_box(arithmetic::add(&x, &y).expect("sweep shapes add"));
    });
    rows.push(Row {
        kernel: "add 512x3072",
        variant: "chunks",
        secs,
        flops: nel as f64,
        bytes: 4.0 * (3 * nel) as f64,
    });

    rows
}

fn main() {
    let iters = parse_iters();
    let threads = env_threads(1);
    let intra_op = env_intraop(true) && threads > 1;
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    println!(
        "Kernel sweep: full-scale paper shapes, best of {iters} runs\n\
         intra-op: {} ({threads} thread(s), min chunk elems {}), {cores} host core(s)\n",
        if intra_op { "on" } else { "off" },
        parallel::min_intraop_elems()
    );
    if intra_op && cores < 2 {
        println!(
            "warning: intra-op is on but this host exposes a single core;\n\
             chunked kernels will run at ~1x. Single-thread blocking/fusion\n\
             gains below are still meaningful.\n"
        );
    }
    println!(
        "{:<22}{:<16}{:>9}{:>9}{:>8}",
        "kernel", "variant", "ms", "GFLOP/s", "GB/s"
    );

    let rows = if intra_op {
        let pool = Arc::new(ThreadPool::new(threads));
        let runner: Arc<dyn IntraOpRunner> = Arc::new(PoolRunner::new(&pool));
        parallel::with_runner(runner, || sweep(iters))
    } else {
        sweep(iters)
    };
    for r in &rows {
        print_row(r);
    }

    let mut csv = String::from("kernel,variant,ms,gflops,gbs\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3}\n",
            r.kernel,
            r.variant,
            r.secs * 1e3,
            r.flops / r.secs / 1e9,
            r.bytes / r.secs / 1e9
        ));
    }
    maybe_write_csv("kernel_sweep", &csv);

    println!(
        "\n(naive-branchy is the pre-optimization matmul including its\n\
         aik == 0.0 skip; `blocked` speedup over it is the headline\n\
         single-thread win. On a single-core host intra-op chunking adds\n\
         nothing on top — rerun with NGB_THREADS > 1 on a multi-core\n\
         machine for the parallel column to move.)"
    );
}
