//! Energy report (§3.2.2 profiles energy via nvidia-smi / uProf; this
//! reproduction integrates the TDP-based power model): per-model energy per
//! inference and its GEMM / non-GEMM split on the three platforms.

use nongemm::profiler::profile_analytic;
use nongemm::{Flow, ModelId, OpClass, Platform, Scale};

fn main() {
    println!("Energy per inference (eager, batch 1)\n");
    println!(
        "{:<14}{:>22}{:>22}{:>22}",
        "model", "Mobile (J, ng%)", "Workstation (J, ng%)", "Data Center (J, ng%)"
    );
    for &model in ModelId::all() {
        let g = model.build(1, Scale::Full).expect("suite models build");
        print!("{:<14}", model.spec().alias);
        for platform in Platform::all_gpu() {
            let p = profile_analytic(&g, &platform, Flow::Eager, true, 1);
            let total: f64 = p.nodes.iter().map(|n| n.energy_j).sum();
            let non_gemm: f64 = p
                .nodes
                .iter()
                .filter(|n| !matches!(n.class, OpClass::Gemm))
                .map(|n| n.energy_j)
                .sum();
            assert!(total > 0.0);
            print!("{:>15.3} {:>5.1}%", total, non_gemm / total * 100.0);
        }
        println!();
    }
    println!(
        "\nEnergy follows the latency breakdowns: after GPU acceleration the\n\
         non-GEMM operators consume the majority of the per-inference energy\n\
         as well, since they hold the (high-idle-power) devices longest."
    );
}
