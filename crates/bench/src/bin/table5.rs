//! Table 5: feature comparison of NonGEMM Bench against MLPerf, LongTail
//! Bench, and TorchBench.

use nongemm::comparison_table;

fn check(b: bool) -> &'static str {
    if b {
        "x"
    } else {
        ""
    }
}

fn main() {
    println!("Table 5: benchmark feature comparison\n");
    println!(
        "{:<28}{:>12}{:>12}{:>14}{:>16}",
        "Benchmark", "Real Usage", "NonGEMM", "Real Dataset", "Plug & Profile"
    );
    for b in comparison_table() {
        println!(
            "{:<28}{:>12}{:>12}{:>14}{:>16}",
            b.name,
            check(b.real_usage_driven),
            check(b.non_gemm_focused),
            check(b.real_dataset_driven),
            check(b.plug_model_and_profile)
        );
    }
}
