//! Thread-count sweep over the parallel execution engine: every registry
//! model at tiny scale, executed end-to-end on 1/2/4/8 worker threads,
//! reporting wall-clock speedup over the sequential interpreter next to the
//! graph's max wavefront width (the ceiling any thread count can reach).
//!
//! ```text
//! threads_sweep [--model <alias>]... [--batch N] [--iters N]
//! ```
//!
//! Latency per configuration is the minimum over `--iters` runs. Run in
//! release mode — debug-build kernels are too slow to be meaningful.

use std::time::Instant;

use nongemm::exec::{Engine, Interpreter, Schedule};
use nongemm::{ModelId, Scale};

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Args {
    models: Vec<String>,
    batch: usize,
    iters: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        models: Vec::new(),
        batch: 4,
        iters: 3,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a positive integer");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--model" => {
                let v = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--model requires a value");
                    std::process::exit(2);
                });
                args.models.push(v);
            }
            "--batch" => args.batch = value("--batch"),
            "--iters" => args.iters = value("--iters"),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: threads_sweep [--model <alias>]... [--batch N] [--iters N]");
                std::process::exit(2);
            }
        }
    }
    args
}

fn best_of(iters: usize, run: impl Fn()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = parse_args();
    let models: Vec<ModelId> = if args.models.is_empty() {
        ModelId::all().to_vec()
    } else {
        ModelId::all()
            .iter()
            .copied()
            .filter(|m| args.models.iter().any(|n| n == m.spec().alias))
            .collect()
    };
    if models.is_empty() {
        eprintln!("no models matched the selection");
        std::process::exit(2);
    }

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let intra_op = nongemm::exec::env_intraop(true);
    println!(
        "Thread sweep: tiny presets, batch {}, best of {} runs, {cores} host core(s)",
        args.batch, args.iters
    );
    println!(
        "intra-op: {} (NGB_INTRAOP; min chunk elems {})\n",
        if intra_op { "on" } else { "off" },
        nongemm::ops::parallel::min_intraop_elems()
    );
    if cores < 2 {
        println!(
            "warning: this host exposes a single core — every configuration\n\
             below will report ~1x regardless of threads or intra-op mode;\n\
             the sweep only measures scheduling overhead here. Rerun on a\n\
             multi-core machine for meaningful scaling numbers.\n"
        );
    }
    print!("{:<14}{:>6}{:>10}", "model", "width", "seq ms");
    for t in THREADS {
        print!("{:>8}", format!("x{t}"));
    }
    println!();

    for model in models {
        let graph = model
            .build(args.batch, Scale::Tiny)
            .expect("suite models build");
        let width = Schedule::new(&graph).max_width();
        let interp = Interpreter::default();
        let seq_s = best_of(args.iters, || {
            interp.run(&graph).expect("tiny models execute");
        });
        print!(
            "{:<14}{:>6}{:>10.2}",
            model.spec().alias,
            width,
            seq_s * 1e3
        );
        for t in THREADS {
            let par = Interpreter::default().engine(Engine::Parallel(t));
            let par_s = best_of(args.iters, || {
                par.run(&graph).expect("tiny models execute");
            });
            print!("{:>7.2}x", seq_s / par_s);
        }
        println!();
    }
    println!(
        "\n(Speedup is bounded by min(wavefront width, host cores); chains stay at\n\
         ~1x while branchy graphs — detection, Swin — scale until the width runs\n\
         out. A single-core host caps every row at ~1x regardless of threads.)"
    );
    if cores < *THREADS.last().unwrap_or(&1) {
        println!(
            "note: this host exposes only {cores} core(s); rerun on a multi-core\n\
             machine to observe width-limited scaling."
        );
    }
}
