//! Table 2: characterization of non-GEMM operators harvested from the
//! eight model variants the paper samples (DETR, ViT, GPT2-XL, Llama-2,
//! Segformer, MaskRCNN), with the paper's property columns and example
//! input shapes.

use nongemm::{ModelId, OpClass, OperatorRegistry, Scale};

fn check(b: bool) -> &'static str {
    if b {
        "x"
    } else {
        ""
    }
}

fn main() {
    println!("Table 2: non-GEMM operators in popular model variants\n");
    let sampled = [
        ModelId::Detr,
        ModelId::VitLarge16,
        ModelId::VitBase16,
        ModelId::Gpt2Xl,
        ModelId::Llama2_7b,
        ModelId::Segformer,
        ModelId::MaskRcnn,
        ModelId::Bert,
    ];
    let mut registry = OperatorRegistry::new();
    for m in sampled {
        // Segformer is profiled at batch 2 in the paper's Table 2 shapes
        let batch = if m == ModelId::Segformer { 2 } else { 1 };
        let g = m.build(batch, Scale::Full).expect("suite models build");
        registry.harvest(&g);
    }

    println!(
        "{:<15}{:<22}{:<12}{:>7}{:>7}{:>7}{:>5}{:>5}  Example input shape",
        "Group", "Operator", "Model", "1-op", "1-arg", "NonLin", "Dyn", "Red"
    );
    // one representative row per (group, op, model)
    let mut seen = std::collections::BTreeSet::new();
    let mut rows = 0;
    for rec in registry.iter() {
        let group = match rec.op.class() {
            OpClass::NonGemm(g) => g,
            OpClass::Gemm => continue,
        };
        let key = (group, rec.op.name(), rec.model.clone());
        if !seen.insert(key) {
            continue;
        }
        println!(
            "{:<15}{:<22}{:<12}{:>7}{:>7}{:>7}{:>5}{:>5}  {:?}",
            group.label(),
            rec.op.name(),
            rec.model,
            check(rec.op.is_single_operation()),
            check(rec.op.is_single_operand()),
            check(rec.op.is_nonlinear()),
            check(rec.op.is_dynamic()),
            check(rec.op.is_reduction()),
            rec.input_shapes.first().map(Vec::as_slice).unwrap_or(&[])
        );
        rows += 1;
    }
    println!(
        "\n{} distinct (group, operator, model) rows; {} registry records",
        rows,
        registry.len()
    );
    assert!(rows >= 28, "Table 2 has at least 28 rows in the paper");
}
