//! Figure 5: execution-time breakdown across operator groups for every
//! NonGEMM Bench model on the Data Center configuration, CPU-only vs
//! CPU+GPU (PyTorch eager), batch 1 plus the paper's batch-8 IC rows.

use ngb_bench::{
    assert_partition, csv_breakdown_row, figure_groups, maybe_write_csv, percent_header,
    percent_row,
};
use nongemm::{BenchConfig, Flow, ModelId, NonGemmBench, Platform, Scale, Task};

fn main() {
    let groups = figure_groups();
    let mut csv = vec![format!(
        "config,model,batch,gemm,{}",
        groups
            .iter()
            .map(|g| g.label().to_lowercase())
            .collect::<Vec<_>>()
            .join(",")
    )];
    println!("Figure 5: Data Center breakdown across operator groups (eager)\n");
    for (label, platform, gpu) in [
        ("CPU only", Platform::data_center().cpu_only(), false),
        ("CPU + GPU", Platform::data_center(), true),
    ] {
        println!("== {label} ==");
        println!("{:<16}{:>5} {}", "model", "batch", percent_header(&groups));
        for &model in ModelId::all() {
            let mut batches = vec![1usize];
            // the paper also reports batch 8 for image classification
            if model.spec().task == Task::ImageClassification {
                batches.push(8);
            }
            for batch in batches {
                let bench = NonGemmBench::new(BenchConfig {
                    models: vec![model.spec().alias.into()],
                    platform: platform.clone(),
                    use_gpu: gpu,
                    flow: Flow::Eager,
                    batch,
                    scale: Scale::Full,
                    ..BenchConfig::default()
                });
                let p = &bench.run_end_to_end().expect("suite models build")[0];
                assert_partition(p);
                println!(
                    "{:<16}{:>5} {}",
                    model.spec().alias,
                    batch,
                    percent_row(&p.breakdown(), &groups)
                );
                csv.push(csv_breakdown_row(
                    &format!("{label},{},{batch}", model.spec().alias),
                    &p.breakdown(),
                    &groups,
                ));
            }
        }
        println!();
    }
    maybe_write_csv("fig5", &csv.join("\n"));
}
