//! MicroBench flow (§3.2.3): harvests every non-GEMM operator instance of
//! the 18-model suite into the operator registry (the paper ships 1460
//! instances), prints registry statistics, and replays representative
//! operators both measured (host) and analytically (A100 / EPYC).

use nongemm::{DeviceModel, ModelId, OperatorRegistry, Scale};

fn main() {
    println!("NonGEMM Bench microbenchmark flow\n");
    let mut registry = OperatorRegistry::new();
    for &m in ModelId::all() {
        let g = m.build(1, Scale::Full).expect("suite models build");
        let added = registry.harvest(&g);
        println!(
            "{:<14} +{added:>5} unique non-GEMM operator instances",
            m.spec().alias
        );
    }
    println!(
        "\nregistry: {} unique non-GEMM operator instances (paper: 1460)",
        registry.len()
    );
    println!("\nper-group instance counts:");
    for (group, count) in registry.group_stats() {
        println!("  {group:<16}{count:>6}");
    }
    println!("\noperator variants per group:");
    for (group, count) in registry.variant_stats() {
        println!("  {group:<16}{count:>6}");
    }

    // aggregate analytic latency per group on the data-center GPU — the
    // microbench view of the end-to-end group breakdowns
    println!("\naggregate standalone latency per group (A100 analytic):");
    let by_group = registry.group_latency(&DeviceModel::a100());
    let total: f64 = by_group.values().sum();
    for (group, secs) in &by_group {
        println!(
            "  {group:<16}{:>9.3} ms ({:>5.1}%)",
            secs * 1e3,
            secs / total * 100.0
        );
    }

    // replay a representative slice standalone (measured on the host +
    // analytic on the paper's devices)
    println!("\nstandalone replay (one instance per operator kind):");
    println!(
        "{:<22}{:<12}{:>14}{:>12}{:>12}  shapes",
        "op", "model", "host (meas)", "A100", "EPYC 7763"
    );
    let a100 = DeviceModel::a100();
    let epyc = DeviceModel::epyc7763();
    let mut seen = std::collections::BTreeSet::new();
    let mut replayed = 0;
    for rec in registry.iter() {
        if !seen.insert(rec.op.name()) {
            continue;
        }
        // replay only instances small enough to execute quickly on the host
        let elems: usize = rec
            .input_shapes
            .iter()
            .map(|s| s.iter().product::<usize>())
            .sum();
        if elems > 2_000_000 {
            continue;
        }
        match registry.replay(rec, 3, &a100) {
            Ok(res) => {
                let cpu = registry.evaluate(rec, &epyc);
                println!(
                    "{:<22}{:<12}{:>12.1}us{:>10.1}us{:>10.1}us  {:?}",
                    res.op,
                    res.model,
                    res.measured_s.unwrap_or(0.0) * 1e6,
                    res.analytic_s * 1e6,
                    cpu.analytic_s * 1e6,
                    rec.input_shapes
                );
                replayed += 1;
            }
            Err(e) => println!("{:<22}{:<12}replay failed: {e}", rec.op.name(), rec.model),
        }
    }
    assert!(
        replayed > 15,
        "expected a broad operator replay, got {replayed}"
    );
    assert!(
        registry.len() > 400,
        "registry suspiciously small: {}",
        registry.len()
    );
}
