//! Figure 8: latency breakdown of ONNX Runtime inference on two platform
//! configurations — Mobile (RTX 4060m) and Data Center (A100).

use ngb_bench::{
    assert_partition, csv_breakdown_row, figure_groups, maybe_write_csv, percent_header,
    percent_row,
};
use nongemm::{BenchConfig, Flow, ModelId, NonGemmBench, Platform, Scale};

fn main() {
    let groups = figure_groups();
    let mut csv = vec![format!(
        "config,model,batch,gemm,{}",
        groups
            .iter()
            .map(|g| g.label().to_lowercase())
            .collect::<Vec<_>>()
            .join(",")
    )];
    println!("Figure 8: ONNX Runtime breakdown, Mobile vs Data Center GPUs (batch 1)\n");
    for (label, platform) in [
        ("Mobile (RTX 4060m)", Platform::mobile()),
        ("Data Center (A100)", Platform::data_center()),
    ] {
        println!("== {label} ==");
        println!("{:<16}{}", "model", percent_header(&groups));
        for &model in ModelId::all() {
            let bench = NonGemmBench::new(BenchConfig {
                models: vec![model.spec().alias.into()],
                platform: platform.clone(),
                use_gpu: true,
                flow: Flow::Ort,
                batch: 1,
                scale: Scale::Full,
                ..BenchConfig::default()
            });
            let p = &bench.run_end_to_end().expect("suite models build")[0];
            assert_partition(p);
            println!(
                "{:<16}{}",
                model.spec().alias,
                percent_row(&p.breakdown(), &groups)
            );
            csv.push(csv_breakdown_row(
                &format!("{label},{},1", model.spec().alias),
                &p.breakdown(),
                &groups,
            ));
        }
        println!();
    }
    maybe_write_csv("fig8", &csv.join("\n"));
}
