//! §4.3 headline numbers: the cross-suite averages the paper's "Key
//! Observations and Insights" section reports, recomputed over this
//! reproduction.

use ngb_bench::assert_partition;
use nongemm::{BenchConfig, Flow, ModelId, NonGemmBench, NonGemmGroup, Platform, Scale, Task};

fn avg(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn profile_frac(model: ModelId, platform: Platform, gpu: bool, flow: Flow) -> nongemm::Breakdown {
    let bench = NonGemmBench::new(BenchConfig {
        models: vec![model.spec().alias.into()],
        platform,
        use_gpu: gpu,
        flow,
        batch: 1,
        scale: Scale::Full,
        ..BenchConfig::default()
    });
    let p = &bench.run_end_to_end().expect("suite models build")[0];
    assert_partition(p);
    p.breakdown()
}

fn main() {
    println!("NonGEMM Bench §4.3 headline averages (this reproduction vs paper)\n");

    // 1. CPU-only vs CPU+GPU non-GEMM share, averaged over models × platforms
    let mut cpu = Vec::new();
    let mut gpu = Vec::new();
    for platform in Platform::all_gpu() {
        for &m in ModelId::all() {
            cpu.push(
                profile_frac(m, platform.clone().cpu_only(), false, Flow::Eager).non_gemm_frac(),
            );
            gpu.push(profile_frac(m, platform.clone(), true, Flow::Eager).non_gemm_frac());
        }
    }
    let (cpu_avg, gpu_avg) = (avg(&cpu) * 100.0, avg(&gpu) * 100.0);
    println!(
        "non-GEMM share of execution time, all models x 3 platforms:\n  \
         CPU-only {cpu_avg:.1}%  ->  CPU+GPU {gpu_avg:.1}%   (paper: 27% -> 55%)"
    );
    assert!(
        gpu_avg > cpu_avg + 15.0,
        "GPU must shift the balance to non-GEMM"
    );

    // 2. dominant groups per task on the data-center GPU
    let mut ic_norm = Vec::new();
    let mut lm_act = Vec::new();
    let mut lm_arith = Vec::new();
    for &m in ModelId::all() {
        let b = profile_frac(m, Platform::data_center(), true, Flow::Eager);
        match m.spec().task {
            Task::ImageClassification => ic_norm.push(b.group_frac(NonGemmGroup::Normalization)),
            Task::LanguageModel => {
                lm_act.push(b.group_frac(NonGemmGroup::Activation));
                lm_arith.push(b.group_frac(NonGemmGroup::Arithmetic));
            }
            _ => {}
        }
    }
    println!(
        "\nimage classification, avg Normalization share: {:.1}%  (paper: 18.4%)",
        avg(&ic_norm) * 100.0
    );
    println!(
        "language models, avg Activation share: {:.1}%  (paper: 17.75%)",
        avg(&lm_act) * 100.0
    );
    println!(
        "language models, avg Arithmetic share: {:.1}%  (paper: 17.6%)",
        avg(&lm_arith) * 100.0
    );

    // 3. ORT: memory dominance and the eager -> ORT non-GEMM shift
    let mut ort_mem = Vec::new();
    let mut ort_ng = Vec::new();
    let mut eager_ng = Vec::new();
    for &m in ModelId::all() {
        let e = profile_frac(m, Platform::data_center(), true, Flow::Eager);
        let o = profile_frac(m, Platform::data_center(), true, Flow::Ort);
        eager_ng.push(e.non_gemm_frac());
        ort_ng.push(o.non_gemm_frac());
        ort_mem.push(o.group_frac(NonGemmGroup::Memory));
    }
    println!(
        "\nONNX Runtime on A100: avg Memory-group share {:.1}%  (paper: 56%)",
        avg(&ort_mem) * 100.0
    );
    println!(
        "non-GEMM share, eager {:.1}% -> ORT {:.1}%  (paper: 52% -> 73%)",
        avg(&eager_ng) * 100.0,
        avg(&ort_ng) * 100.0
    );
    assert!(
        avg(&ort_ng) > avg(&eager_ng),
        "ORT must increase the non-GEMM share"
    );
}
