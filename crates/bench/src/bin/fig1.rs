//! Figure 1: latency breakdown into GEMM and non-GEMM operators for
//! (a) GPT2-XL and (b) ViT-L/16 at batch 1 on the data-center platform
//! (AMD EPYC 7763 vs + NVIDIA A100).

use ngb_bench::assert_partition;
use nongemm::{BenchConfig, Flow, NonGemmBench, Platform, Scale};

fn main() {
    println!("Figure 1: GEMM vs non-GEMM latency, EPYC 7763 vs +A100 (batch 1, eager)\n");
    println!(
        "{:<10}{:<14}{:>12}{:>10}{:>12}",
        "model", "config", "latency", "GEMM", "non-GEMM"
    );
    for alias in ["gpt2-xl", "vit-l"] {
        for (label, platform, gpu) in [
            ("CPU only", Platform::data_center().cpu_only(), false),
            ("CPU + GPU", Platform::data_center(), true),
        ] {
            let bench = NonGemmBench::new(BenchConfig {
                models: vec![alias.into()],
                platform,
                use_gpu: gpu,
                flow: Flow::Eager,
                batch: 1,
                scale: Scale::Full,
                ..BenchConfig::default()
            });
            let profile = &bench.run_end_to_end().expect("suite models build")[0];
            assert_partition(profile);
            let b = profile.breakdown();
            println!(
                "{:<10}{:<14}{:>10.2}ms{:>9.1}%{:>11.1}%",
                alias,
                label,
                profile.total_latency_s() * 1e3,
                b.gemm_frac() * 100.0,
                b.non_gemm_frac() * 100.0
            );
        }
        println!();
    }
    println!(
        "Paper shape: GEMM dominates on the CPU; after GPU acceleration the\n\
         absolute latency collapses and the non-GEMM share roughly triples."
    );
}
