//! Internal calibration sweep: prints GEMM/non-GEMM fractions for every
//! model on data-center CPU vs GPU (eager) and ORT, to tune device models.

use ngb_bench::{figure_groups, percent_header, percent_row};
use nongemm::{BenchConfig, Flow, NonGemmBench, Platform, Scale};

fn main() {
    let groups = figure_groups();
    println!("{:<14}{:<18}{}", "model", "config", percent_header(&groups));
    for (label, platform, gpu, flow) in [
        (
            "dc-cpu",
            Platform::data_center().cpu_only(),
            false,
            Flow::Eager,
        ),
        ("dc-gpu", Platform::data_center(), true, Flow::Eager),
        ("dc-gpu-ort", Platform::data_center(), true, Flow::Ort),
    ] {
        let bench = NonGemmBench::new(BenchConfig {
            platform,
            use_gpu: gpu,
            flow,
            scale: Scale::Full,
            ..BenchConfig::default()
        });
        for p in bench.run_end_to_end().unwrap() {
            let b = p.breakdown();
            println!(
                "{:<14}{:<18}{}  ng={:>5.1}% {:8.2}ms",
                p.model,
                label,
                percent_row(&b, &groups),
                b.non_gemm_frac() * 100.0,
                p.total_latency_s() * 1e3
            );
        }
        println!();
    }
}
