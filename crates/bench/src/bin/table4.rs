//! Table 4: the most expensive non-GEMM operator group for selected models
//! and batch sizes on the data-center GPU (A100, eager).

use ngb_bench::assert_partition;
use nongemm::{BenchConfig, Flow, NonGemmBench, Platform, Scale};

fn main() {
    println!("Table 4: most expensive non-GEMM group per model/batch on the A100 (eager)\n");
    println!(
        "{:<14}{:>6}  {:<16}{:>12}",
        "model", "batch", "top group", "% of time"
    );
    // (alias, batch) rows as in the paper's Table 4
    let rows: &[(&str, usize)] = &[
        ("vit-b", 1),
        ("vit-b", 8),
        ("vit-l", 1),
        ("vit-l", 8),
        ("sw-t", 1),
        ("sw-t", 8),
        ("sw-s", 1),
        ("sw-s", 8),
        ("sw-b", 1),
        ("sw-b", 8),
        ("frcnn", 1),
        ("frcnn", 2),
        ("frcnn", 8),
        ("mrcnn", 1),
        ("mrcnn", 2),
        ("mrcnn", 8),
        ("detr", 2),
        ("gpt2", 1),
        ("gpt2", 64),
        ("gpt2-xl", 1),
        ("gpt2-xl", 64),
        ("llama2", 1),
        ("bert", 1),
        ("bert", 64),
    ];
    for &(alias, batch) in rows {
        let bench = NonGemmBench::new(BenchConfig {
            models: vec![alias.into()],
            platform: Platform::data_center(),
            use_gpu: true,
            flow: Flow::Eager,
            batch,
            scale: Scale::Full,
            ..BenchConfig::default()
        });
        let p = &bench.run_end_to_end().expect("suite models build")[0];
        assert_partition(p);
        let (group, frac) = p.breakdown().dominant_group().expect("non-GEMM ops exist");
        println!(
            "{:<14}{:>6}  {:<16}{:>11.1}%",
            alias,
            batch,
            group.label(),
            frac * 100.0
        );
    }
}
