//! Figure 6: execution-time breakdown across operator groups on the
//! Workstation configuration (i9-13900K vs + RTX 4090), PyTorch eager.

use ngb_bench::{
    assert_partition, csv_breakdown_row, figure_groups, maybe_write_csv, percent_header,
    percent_row,
};
use nongemm::{BenchConfig, Flow, ModelId, NonGemmBench, Platform, Scale};

fn main() {
    let groups = figure_groups();
    let mut csv = vec![format!(
        "config,model,batch,gemm,{}",
        groups
            .iter()
            .map(|g| g.label().to_lowercase())
            .collect::<Vec<_>>()
            .join(",")
    )];
    println!("Figure 6: Workstation breakdown across operator groups (eager, batch 1)\n");
    for (label, platform, gpu) in [
        ("CPU only", Platform::workstation().cpu_only(), false),
        ("CPU + GPU", Platform::workstation(), true),
    ] {
        println!("== {label} ==");
        println!("{:<16}{}", "model", percent_header(&groups));
        for &model in ModelId::all() {
            let bench = NonGemmBench::new(BenchConfig {
                models: vec![model.spec().alias.into()],
                platform: platform.clone(),
                use_gpu: gpu,
                flow: Flow::Eager,
                batch: 1,
                scale: Scale::Full,
                ..BenchConfig::default()
            });
            let p = &bench.run_end_to_end().expect("suite models build")[0];
            assert_partition(p);
            println!(
                "{:<16}{}",
                model.spec().alias,
                percent_row(&p.breakdown(), &groups)
            );
            csv.push(csv_breakdown_row(
                &format!("{label},{},1", model.spec().alias),
                &p.breakdown(),
                &groups,
            ));
        }
        println!();
    }
    maybe_write_csv("fig6", &csv.join("\n"));
}
