//! Extension experiment: what happens to the paper's non-GEMM bottleneck
//! if attention is fused FlashAttention-style? The registry exists to
//! guide exactly this kind of "non-GEMM-operator-oriented optimization";
//! this binary quantifies the payoff on the transformer suite.

use nongemm::profiler::profile_analytic_with_options;
use nongemm::runtime::RuntimeOptions;
use nongemm::{Flow, ModelId, NonGemmGroup, Platform, Scale};

fn main() {
    println!("FlashAttention-style fusion on the A100 (eager dispatch, batch 1)\n");
    println!(
        "{:<12}{:>12}{:>12}{:>10}{:>14}{:>14}",
        "model", "baseline", "fused", "speedup", "logit% before", "logit% after"
    );
    for model in [
        ModelId::VitBase16,
        ModelId::VitLarge16,
        ModelId::SwinSmall,
        ModelId::Gpt2,
        ModelId::Gpt2Xl,
        ModelId::Bert,
        ModelId::Detr,
    ] {
        let g = model.build(1, Scale::Full).expect("suite models build");
        let platform = Platform::data_center();
        let base = profile_analytic_with_options(
            &g,
            &platform,
            Flow::Eager,
            true,
            1,
            RuntimeOptions::default(),
        );
        let fused = profile_analytic_with_options(
            &g,
            &platform,
            Flow::Eager,
            true,
            1,
            RuntimeOptions {
                fuse_attention: true,
            },
        );
        let (tb, tf) = (base.total_latency_s(), fused.total_latency_s());
        assert!(tf < tb, "{model}: fusion must help");
        println!(
            "{:<12}{:>10.2}ms{:>10.2}ms{:>9.2}x{:>13.1}%{:>13.1}%",
            model.spec().alias,
            tb * 1e3,
            tf * 1e3,
            tb / tf,
            base.breakdown().group_frac(NonGemmGroup::LogitComputation) * 100.0,
            fused.breakdown().group_frac(NonGemmGroup::LogitComputation) * 100.0,
        );
    }
    println!(
        "\nFusing the bmm-scale-mask-softmax-bmm chain removes the softmax and\n\
         scale kernels (the Logit/Arithmetic share) and the [B, T, T] score\n\
         materialization — directly attacking the non-GEMM bottleneck the\n\
         paper identifies."
    );
}
