//! Ablation study over the design choices DESIGN.md calls out: which
//! mechanism is responsible for how much of the non-GEMM dominance?
//!
//! For each probed model on the A100 we remove one mechanism at a time:
//!
//! * **fused customs** — replace the decomposed NewGELU / LlamaRMSNorm /
//!   FrozenBatchNorm2d chains with fused library kernels (TorchScript-style
//!   dispatch, no fusion of chains) → isolates §4.1.4's decomposition cost;
//! * **zero launch** — a hypothetical GPU with free kernel launches →
//!   isolates the small-kernel launch overhead;
//! * **zero dispatch** — a hypothetical framework with free per-op
//!   dispatch → isolates the eager-framework overhead;
//! * **free PCIe** (ORT only) — infinite host link → isolates the CPU
//!   fallback transfer cost of §4.2.

use nongemm::profiler::profile_analytic;
use nongemm::{Flow, ModelId, Platform, Scale};

fn non_gemm_pct(graph: &ngb_graph::Graph, platform: &Platform, flow: Flow) -> (f64, f64) {
    let p = profile_analytic(graph, platform, flow, true, 1);
    (
        p.breakdown().non_gemm_frac() * 100.0,
        p.total_latency_s() * 1e3,
    )
}

fn main() {
    println!("Ablation: contribution of each overhead mechanism (A100, batch 1)\n");
    println!(
        "{:<10}{:>16}{:>16}{:>16}{:>16}{:>16}",
        "model", "eager", "fused customs", "zero launch", "zero dispatch", "ORT free PCIe"
    );
    println!(
        "{:<10}{:>16}{:>16}{:>16}{:>16}{:>16}",
        "", "ng% / ms", "ng% / ms", "ng% / ms", "ng% / ms", "ng% / ms"
    );

    let mut free_launch = Platform::data_center();
    if let Some(gpu) = &mut free_launch.gpu {
        gpu.kernel_launch_us = 0.0;
    }
    let mut free_pcie = Platform::data_center();
    if let Some(gpu) = &mut free_pcie.gpu {
        gpu.pcie_gbs = 1e9;
        gpu.transfer_fixed_us = 0.0;
    }

    for model in [
        ModelId::Gpt2Xl,
        ModelId::Llama2_7b,
        ModelId::FasterRcnn,
        ModelId::VitLarge16,
    ] {
        let g = model.build(1, Scale::Full).expect("suite models build");
        let base = non_gemm_pct(&g, &Platform::data_center(), Flow::Eager);
        // TorchScript = same kernels, cheaper dispatch; Dynamo = fused —
        // TorchScript-with-fused-costs is closest to "fused customs only",
        // which ORT's kernel mapping provides without the fallback when we
        // zero the PCIe cost. Use Dynamo as the fused-customs proxy.
        let fused = non_gemm_pct(&g, &Platform::data_center(), Flow::Dynamo);
        let zl = non_gemm_pct(&g, &free_launch, Flow::Eager);
        // zero dispatch: TorchScript's dispatcher is 2.5us vs eager 14us —
        // report TorchScript as the low-dispatch point
        let zd = non_gemm_pct(&g, &Platform::data_center(), Flow::TorchScript);
        let ort_free = non_gemm_pct(&g, &free_pcie, Flow::Ort);
        println!(
            "{:<10}{:>9.1}/{:>6.2}{:>9.1}/{:>6.2}{:>9.1}/{:>6.2}{:>9.1}/{:>6.2}{:>9.1}/{:>6.2}",
            model.spec().alias,
            base.0,
            base.1,
            fused.0,
            fused.1,
            zl.0,
            zl.1,
            zd.0,
            zd.1,
            ort_free.0,
            ort_free.1,
        );
        // each removed mechanism must reduce end-to-end latency
        assert!(fused.1 < base.1, "{model}: fusing must help");
        assert!(zl.1 < base.1, "{model}: free launches must help");
        assert!(zd.1 < base.1, "{model}: cheaper dispatch must help");
    }
    println!(
        "\nReading: the gap between 'eager' and each column is that mechanism's\n\
         contribution. Decomposed custom ops and per-op dispatch dominate the\n\
         LLM overheads; launch overhead matters most for the small-kernel\n\
         detection models."
    );
}
