//! Extension experiment: autoregressive **decode** (generation) profiles.
//! The paper profiles prefill-style forward passes; single-token decode
//! steps with a KV cache push even deeper into the non-GEMM regime — every
//! GEMM degenerates to a matrix–vector product while the operator count
//! stays constant.

use nongemm::models::gpt2::Gpt2Config;
use nongemm::profiler::profile_analytic;
use nongemm::{Flow, NonGemmGroup, Platform, Scale};

fn main() {
    println!("GPT-2 prefill vs decode on the A100 (eager, batch 1)\n");
    println!(
        "{:<12}{:<16}{:>12}{:>10}{:>10}{:>10}{:>10}",
        "model", "mode", "latency", "GEMM", "Act", "Memory", "non-GEMM"
    );
    for (alias, cfg) in [
        ("gpt2", Gpt2Config::base()),
        ("gpt2-l", Gpt2Config::large()),
        ("gpt2-xl", Gpt2Config::xl()),
    ] {
        let platform = Platform::data_center();
        let prefill = cfg.build(1).expect("suite models build");
        let p = profile_analytic(&prefill, &platform, Flow::Eager, true, 1);
        let mut rows = vec![("prefill (seq 8)".to_string(), p)];
        for past in [64usize, 512] {
            let decode = cfg.build_decode(1, past).expect("suite models build");
            let d = profile_analytic(&decode, &platform, Flow::Eager, true, 1);
            rows.push((format!("decode (past {past})"), d));
        }
        let prefill_ng = rows[0].1.breakdown().non_gemm_frac();
        for (mode, profile) in &rows {
            let b = profile.breakdown();
            println!(
                "{:<12}{:<16}{:>10.2}ms{:>9.1}%{:>9.1}%{:>9.1}%{:>9.1}%",
                alias,
                mode,
                profile.total_latency_s() * 1e3,
                b.gemm_frac() * 100.0,
                b.group_frac(NonGemmGroup::Activation) * 100.0,
                b.group_frac(NonGemmGroup::Memory) * 100.0,
                b.non_gemm_frac() * 100.0
            );
        }
        let decode_ng = rows[1].1.breakdown().non_gemm_frac();
        assert!(
            decode_ng >= prefill_ng - 0.05,
            "{alias}: decode should be at least as non-GEMM-bound as prefill"
        );
        println!();
    }
    // sanity: the tiny decode graph really executes
    let g = Gpt2Config::toy().build_decode(1, 8).expect("builds");
    nongemm::exec::Interpreter::default()
        .run(&g)
        .expect("decode step executes");
    let _ = Scale::Tiny;
    println!(
        "Generation is the worst case for the paper's thesis: one token of\n\
         GEMM work carries a full graph of non-GEMM overhead every step."
    );
}
