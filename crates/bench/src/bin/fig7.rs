//! Figure 7: the impact of the deployment toolchain on the latency
//! breakdown — GPT2-XL and Llama-2-7B under (a) PyTorch eager and
//! (b) ONNX Runtime, both on the data-center A100.

use ngb_bench::{assert_partition, figure_groups, percent_header, percent_row};
use nongemm::{BenchConfig, Flow, NonGemmBench, NonGemmGroup, Platform, Scale};

fn main() {
    let groups = figure_groups();
    println!("Figure 7: deployment flow impact on A100 (batch 1)\n");
    println!("{:<12}{:<18}{}", "model", "flow", percent_header(&groups));
    for alias in ["gpt2-xl", "llama2"] {
        let mut memory_frac = Vec::new();
        for flow in [Flow::Eager, Flow::Ort] {
            let bench = NonGemmBench::new(BenchConfig {
                models: vec![alias.into()],
                platform: Platform::data_center(),
                use_gpu: true,
                flow,
                batch: 1,
                scale: Scale::Full,
                ..BenchConfig::default()
            });
            let p = &bench.run_end_to_end().expect("suite models build")[0];
            assert_partition(p);
            let b = p.breakdown();
            memory_frac.push(b.group_frac(NonGemmGroup::Memory));
            println!(
                "{:<12}{:<18}{}",
                alias,
                flow.label(),
                percent_row(&b, &groups)
            );
        }
        assert!(
            memory_frac[1] > memory_frac[0],
            "{alias}: ORT must grow the Memory share (CPU fallback + transfers)"
        );
        println!();
    }
    println!(
        "Paper shape: moving from eager to ORT shifts the bottleneck to the\n\
         Memory group — unsupported layout ops fall back to the CPU and pay\n\
         PCIe transfers."
    );
}
