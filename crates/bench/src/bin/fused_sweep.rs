//! Fused-vs-unfused sweep: every registry model at tiny scale, executed
//! end-to-end unoptimized (`-O0`) and through the `ngb-opt` rewriter
//! (`-O2`), reporting executed-node counts, intermediate bytes the fusions
//! eliminated, and wall-clock speedup.
//!
//! ```text
//! fused_sweep [--model <alias>]... [--batch N] [--iters N] [--threads N]
//! ```
//!
//! Latency per configuration is the minimum over `--iters` runs. Run in
//! release mode — debug-build kernels are too slow to be meaningful.

use std::time::Instant;

use nongemm::exec::{Engine, Interpreter};
use nongemm::opt::{optimize, OptLevel};
use nongemm::{ModelId, Scale};

struct Args {
    models: Vec<String>,
    batch: usize,
    iters: usize,
    threads: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        models: Vec::new(),
        batch: 4,
        iters: 3,
        threads: 1,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a positive integer");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--model" => {
                let v = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--model requires a value");
                    std::process::exit(2);
                });
                args.models.push(v);
            }
            "--batch" => args.batch = value("--batch"),
            "--iters" => args.iters = value("--iters"),
            "--threads" => args.threads = value("--threads"),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: fused_sweep [--model <alias>]... [--batch N] [--iters N] [--threads N]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn best_of(iters: usize, run: impl Fn()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = parse_args();
    let models: Vec<ModelId> = if args.models.is_empty() {
        ModelId::all().to_vec()
    } else {
        ModelId::all()
            .iter()
            .copied()
            .filter(|m| args.models.iter().any(|n| n == m.spec().alias))
            .collect()
    };
    if models.is_empty() {
        eprintln!("no models matched the selection");
        std::process::exit(2);
    }

    let engine = match args.threads {
        0 | 1 => Engine::Sequential,
        n => Engine::Parallel(n),
    };
    println!(
        "Fusion sweep: tiny presets, batch {}, best of {} runs, {} thread(s)\n",
        args.batch, args.iters, args.threads
    );
    println!(
        "{:<14}{:>7}{:>7}{:>9}{:>10}{:>10}{:>9}",
        "model", "nodes", "-O2", "fusions", "saved KiB", "-O0 ms", "speedup"
    );

    let mut total_saved = 0usize;
    for model in models {
        let graph = model
            .build(args.batch, Scale::Tiny)
            .expect("suite models build");
        let (opt_graph, report) = optimize(&graph, OptLevel::O2);
        total_saved += report.intermediate_bytes_saved;

        let interp = Interpreter::default().engine(engine);
        let base_s = best_of(args.iters, || {
            interp.run(&graph).expect("tiny models execute");
        });
        let opt_s = best_of(args.iters, || {
            interp.run(&opt_graph).expect("optimized models execute");
        });
        println!(
            "{:<14}{:>7}{:>7}{:>9}{:>10.1}{:>10.2}{:>8.2}x",
            model.spec().alias,
            report.nodes_before,
            report.nodes_after,
            report.fusions(),
            report.intermediate_bytes_saved as f64 / 1024.0,
            base_s * 1e3,
            base_s / opt_s
        );
    }
    println!(
        "\n{:.1} MiB of intermediate tensors eliminated across the suite.",
        total_saved as f64 / (1024.0 * 1024.0)
    );
    println!(
        "(Speedup tracks how much of a model's time sat in fusable epilogues\n\
         and conv+bn pairs; attention-heavy and conv-heavy models gain the\n\
         most, layout-dominated ones the least.)"
    );
}
