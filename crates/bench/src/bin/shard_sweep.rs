//! Multi-device sharding sweep + the CI shard gate.
//!
//! For every benchmark model at tiny scale this binary partitions the
//! graph across each requested device roster with both the pipeline- and
//! tensor-parallel strategies, **executes** the plan on per-device
//! threads (real collective/transfer kernels), asserts the sharded
//! outputs are bit-identical to single-device execution, and records
//! modeled + executed stage times, bubble fractions, and transfer bytes.
//!
//! ```text
//! shard_sweep [--model <alias>]... [--devices <spec>]...
//!             [--microbatches N] [--out PATH]
//! ```
//!
//! Writes the sweep to `--out` (default `BENCH_SHARD.json`) and prints a
//! summary; exits non-zero when any plan fails to reproduce the
//! single-device bits. Run in release mode.

use std::time::Instant;

use nongemm::shard::{execute, partition, DeviceSpec, ShardOptions, Strategy};
use nongemm::tensor::bit_equal;
use nongemm::{Interpreter, ModelId, Scale};
use serde::Serialize;

const SEED: u64 = 0x5eed;

struct Args {
    models: Vec<String>,
    devices: Vec<String>,
    microbatches: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        models: Vec::new(),
        devices: Vec::new(),
        microbatches: 4,
        out: "BENCH_SHARD.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{arg} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--model" => {
                let v = value();
                args.models.push(v);
            }
            "--devices" => {
                let v = value();
                args.devices.push(v);
            }
            "--microbatches" => {
                args.microbatches = value().parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--microbatches requires a positive integer");
                    std::process::exit(2);
                })
            }
            "--out" => args.out = value(),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: shard_sweep [--model <alias>]... [--devices <spec>]... \
                     [--microbatches N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.models.is_empty() {
        args.models = ModelId::all()
            .iter()
            .map(|m| m.spec().alias.to_string())
            .collect();
    }
    if args.devices.is_empty() {
        args.devices = vec!["2xgpu".to_string(), "4xgpu".to_string()];
    }
    args
}

#[derive(Serialize)]
struct StageReport {
    device: usize,
    nodes: usize,
    modeled_s: f64,
    executed_busy_s: f64,
}

#[derive(Serialize)]
struct ConfigReport {
    devices: String,
    strategy: &'static str,
    microbatches: usize,
    splits: usize,
    bit_identical: bool,
    plan_nodes: usize,
    collective_nodes: usize,
    stages: Vec<StageReport>,
    modeled_wall_s: f64,
    modeled_speedup: f64,
    modeled_bubble: f64,
    modeled_transfer_s: f64,
    executed_wall_s: f64,
    executed_bubble: f64,
    transfer_bytes_per_microbatch: u64,
    executed_transfer_bytes: u64,
}

#[derive(Serialize)]
struct ModelSweep {
    model: String,
    graph_nodes: usize,
    configs: Vec<ConfigReport>,
}

#[derive(Serialize)]
struct Doc {
    schema: u64,
    scale: String,
    sweeps: Vec<ModelSweep>,
}

fn run_model(alias: &str, args: &Args) -> Result<ModelSweep, String> {
    let id = ModelId::all()
        .iter()
        .copied()
        .find(|m| m.spec().alias == alias)
        .ok_or_else(|| format!("unknown model '{alias}'"))?;
    let graph = id
        .build(1, Scale::Tiny)
        .map_err(|e| format!("{alias}: {e}"))?;
    let reference = Interpreter::new(SEED)
        .run(&graph)
        .map_err(|e| format!("{alias}: reference run: {e}"))?;

    let mut configs = Vec::new();
    for spec_text in &args.devices {
        let spec = DeviceSpec::parse(spec_text)
            .ok_or_else(|| format!("invalid device spec '{spec_text}'"))?;
        let devices = spec.roster();
        for strategy in [Strategy::Pipeline, Strategy::Tensor] {
            let plan = partition(&graph, &devices, strategy, &ShardOptions::default())
                .map_err(|e| format!("{alias} {spec_text} {strategy}: partition: {e}"))?;
            let est = plan.modeled(args.microbatches);
            let start = Instant::now();
            let run = execute(&plan, SEED, args.microbatches)
                .map_err(|e| format!("{alias} {spec_text} {strategy}: execute: {e}"))?;
            let executed_wall_s = start.elapsed().as_secs_f64();
            let bit_identical = run.outputs.len() == reference.outputs.len()
                && run
                    .outputs
                    .iter()
                    .zip(&reference.outputs)
                    .all(|((si, sv), (ri, rv))| si == ri && bit_equal(sv, rv).unwrap_or(false));
            if !bit_identical {
                return Err(format!(
                    "{alias} {spec_text} {strategy}: sharded outputs diverge from \
                     single-device execution"
                ));
            }
            let stages = plan
                .stages()
                .into_iter()
                .map(|s| StageReport {
                    device: s.device,
                    nodes: s.nodes,
                    modeled_s: s.modeled_s,
                    executed_busy_s: run.busy_s[s.device],
                })
                .collect();
            configs.push(ConfigReport {
                devices: spec.label(),
                strategy: strategy.name(),
                microbatches: run.microbatches,
                splits: plan.splits,
                bit_identical,
                plan_nodes: plan.graph.len(),
                collective_nodes: plan.graph.iter().filter(|n| n.op.is_collective()).count(),
                stages,
                modeled_wall_s: est.wall_s,
                modeled_speedup: est.speedup,
                modeled_bubble: est.bubble_fraction,
                modeled_transfer_s: est.transfer_s,
                executed_wall_s,
                executed_bubble: run.bubble_fraction,
                transfer_bytes_per_microbatch: est.transfer_bytes,
                executed_transfer_bytes: run.transfer_bytes,
            });
        }
    }
    Ok(ModelSweep {
        model: alias.to_string(),
        graph_nodes: graph.len(),
        configs,
    })
}

fn main() {
    let args = parse_args();
    let mut sweeps = Vec::new();
    for alias in &args.models {
        match run_model(alias, &args) {
            Ok(sweep) => {
                for c in &sweep.configs {
                    println!(
                        "{:<14} {:<10} {:<8} bit-identical  modeled {:.2}x \
                         (bubble {:>4.1}%)  executed bubble {:>4.1}%  moved {} B",
                        sweep.model,
                        c.devices,
                        c.strategy,
                        c.modeled_speedup,
                        c.modeled_bubble * 100.0,
                        c.executed_bubble * 100.0,
                        c.executed_transfer_bytes,
                    );
                }
                sweeps.push(sweep);
            }
            Err(e) => {
                eprintln!("shard gate FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    let doc = Doc {
        schema: 1,
        scale: "tiny".to_string(),
        sweeps,
    };
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("output directory");
        }
    }
    std::fs::write(
        &args.out,
        serde_json::to_string_pretty(&doc).expect("serializable") + "\n",
    )
    .expect("write output");
    println!("wrote {}", args.out);
}
