//! Batch-size sweep (§4.1.1's batch discussion, extended): the non-GEMM
//! share as a function of batch size on the A100, per representative model.
//! Larger batches amortize dispatch/launch overheads and grow GEMM work,
//! shifting time back toward GEMM — except where GEMMs are weight-streaming
//! bound (small-sequence LLMs), where the crossover needs larger batches.

use nongemm::profiler::profile_analytic;
use nongemm::{Flow, ModelId, Platform, Scale};

fn main() {
    println!("Batch sweep: non-GEMM share (%) on the A100, eager\n");
    let batches = [1usize, 2, 4, 8, 16, 32, 64];
    print!("{:<14}", "model");
    for b in batches {
        print!("{b:>8}");
    }
    println!();
    for model in [
        ModelId::ResNet50,
        ModelId::VitBase16,
        ModelId::VitHuge14,
        ModelId::SwinSmall,
        ModelId::Gpt2,
        ModelId::Gpt2Xl,
        ModelId::Bert,
    ] {
        print!("{:<14}", model.spec().alias);
        let mut shares = Vec::new();
        for &batch in &batches {
            let g = model.build(batch, Scale::Full).expect("suite models build");
            let p = profile_analytic(&g, &Platform::data_center(), Flow::Eager, true, batch);
            let ng = p.breakdown().non_gemm_frac() * 100.0;
            shares.push(ng);
            print!("{ng:>7.1}%");
        }
        println!();
        // overall trend: batch 64 must be more GEMM-heavy than batch 1
        assert!(
            shares.last().expect("swept") < shares.first().expect("swept"),
            "{model}: non-GEMM share should fall with batch size"
        );
    }
    println!("\n(The paper reports the same trend for its batch 1 -> 8 / 64 pairs.)");
}
