//! # ngb-bench
//!
//! Figure/table regeneration binaries for the NonGEMM Bench reproduction,
//! plus the Criterion kernel benches. Each binary prints the rows/series
//! of one paper artifact (see DESIGN.md §4 for the index):
//!
//! * `fig1` — GPT2-XL & ViT-L/16 GEMM vs non-GEMM, CPU vs +A100
//! * `fig5` / `fig6` — data-center / workstation group breakdowns
//! * `fig7` — eager vs ORT on A100 for GPT2-XL & Llama-2
//! * `fig8` — ORT breakdowns on mobile vs data center
//! * `table2` — harvested non-GEMM operator characterization
//! * `table4` — most expensive non-GEMM group per model/batch
//! * `table5` — benchmark feature comparison
//! * `summary` — the §4.3 headline averages
//! * `microbench` — the standalone operator registry replay

#![forbid(unsafe_code)]

use nongemm::{Breakdown, ModelProfile, NonGemmGroup};

/// Formats a breakdown as a fixed-width percentage row over the given
/// groups.
pub fn percent_row(b: &Breakdown, groups: &[NonGemmGroup]) -> String {
    let mut s = format!("{:>6.1}%", b.gemm_frac() * 100.0);
    for &g in groups {
        s.push_str(&format!(" {:>7.1}%", b.group_frac(g) * 100.0));
    }
    s
}

/// The group columns used by the figure outputs (the paper's legend).
pub fn figure_groups() -> Vec<NonGemmGroup> {
    vec![
        NonGemmGroup::Normalization,
        NonGemmGroup::Activation,
        NonGemmGroup::Memory,
        NonGemmGroup::Arithmetic,
        NonGemmGroup::LogitComputation,
        NonGemmGroup::RoiSelection,
        NonGemmGroup::Interpolation,
        NonGemmGroup::Pooling,
        NonGemmGroup::Embedding,
        NonGemmGroup::Other,
    ]
}

/// Header matching [`percent_row`] (labels truncated to the column width).
pub fn percent_header(groups: &[NonGemmGroup]) -> String {
    let mut s = format!("{:>7}", "GEMM");
    for &g in groups {
        let label = &g.label()[..g.label().len().min(8)];
        s.push_str(&format!(" {label:>8}"));
    }
    s
}

/// Sanity check used by every figure binary: the printed fractions must
/// partition the total.
///
/// # Panics
///
/// Panics when GEMM + non-GEMM fractions do not sum to 1.
pub fn assert_partition(profile: &ModelProfile) {
    let b = profile.breakdown();
    let sum = b.gemm_frac() + b.non_gemm_frac();
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "{}: fractions sum to {sum}, not 1",
        profile.model
    );
}

/// Writes `content` to `$NGB_OUT_DIR/<name>.csv` when the `NGB_OUT_DIR`
/// environment variable is set, so figure data can be collected by scripts;
/// silently does nothing otherwise. Returns whether a file was written.
pub fn maybe_write_csv(name: &str, content: &str) -> bool {
    let Ok(dir) = std::env::var("NGB_OUT_DIR") else {
        return false;
    };
    let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
    match std::fs::write(&path, content) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            true
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            false
        }
    }
}

/// CSV row of a breakdown: `label,gemm,<groups...>` fractions.
pub fn csv_breakdown_row(label: &str, b: &Breakdown, groups: &[NonGemmGroup]) -> String {
    let mut s = format!("{label},{:.4}", b.gemm_frac());
    for &g in groups {
        s.push_str(&format!(",{:.4}", b.group_frac(g)));
    }
    s
}

#[cfg(test)]
mod tests {
    use nongemm::{BenchConfig, NonGemmBench, Scale};

    #[test]
    fn helpers_render() {
        let b = NonGemmBench::new(BenchConfig {
            models: vec!["gpt2".into()],
            scale: Scale::Tiny,
            ..BenchConfig::default()
        });
        let p = &b.run_end_to_end().unwrap()[0];
        super::assert_partition(p);
        let groups = super::figure_groups();
        let row = super::percent_row(&p.breakdown(), &groups);
        assert!(row.contains('%'));
        assert_eq!(
            super::percent_header(&groups).split_whitespace().count(),
            groups.len() + 1
        );
    }
}
