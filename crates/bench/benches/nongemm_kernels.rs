//! Criterion benches for the non-GEMM operator kernels at Table-2-realistic
//! shapes, including the paper's key ablations: fused vs decomposed
//! activations (GELU vs NewGELU) and norms (RMSNorm vs LlamaRMSNorm,
//! BatchNorm2d vs FrozenBatchNorm2d).

use criterion::{criterion_group, criterion_main, Criterion};
use nongemm::ops::{
    activation, arithmetic, embedding, interpolate, logit, memory, normalization, pooling,
    reduction, roi,
};
use nongemm::tensor::random::TensorRng;
use nongemm::tensor::Tensor;

fn bench_activations(c: &mut Criterion) {
    // GPT2-XL's Table 2 GELU shape, scaled to keep host iterations fast
    let x = TensorRng::seed(1).normal(&[1, 8, 6400]);
    let mut g = c.benchmark_group("activation");
    g.bench_function("relu", |b| b.iter(|| activation::relu(&x).expect("f32")));
    g.bench_function("gelu_fused", |b| {
        b.iter(|| activation::gelu_tanh(&x).expect("f32"))
    });
    g.bench_function("new_gelu_decomposed", |b| {
        b.iter(|| activation::new_gelu(&x).expect("f32"))
    });
    g.bench_function("silu", |b| b.iter(|| activation::silu(&x).expect("f32")));
    g.finish();
}

fn bench_normalization(c: &mut Criterion) {
    let mut rng = TensorRng::seed(2);
    let x = rng.normal(&[1, 10, 4096]); // Llama's Table 2 shape
    let gamma = rng.uniform(&[4096], 0.9, 1.1);
    let beta = rng.uniform(&[4096], -0.1, 0.1);
    let mut g = c.benchmark_group("normalization");
    g.bench_function("layer_norm", |b| {
        b.iter(|| normalization::layer_norm(&x, &gamma, &beta, 1e-5).expect("valid"))
    });
    g.bench_function("rms_norm_fused", |b| {
        b.iter(|| normalization::rms_norm(&x, &gamma, 1e-6).expect("valid"))
    });
    g.bench_function("llama_rms_norm_decomposed", |b| {
        b.iter(|| normalization::llama_rms_norm(&x, &gamma, 1e-6).expect("valid"))
    });
    let map = rng.normal(&[1, 64, 28, 28]);
    let (gc, bc) = (rng.uniform(&[64], 0.9, 1.1), rng.uniform(&[64], -0.1, 0.1));
    let (mc, vc) = (rng.normal(&[64]), rng.uniform(&[64], 0.8, 1.2));
    g.bench_function("batch_norm2d", |b| {
        b.iter(|| normalization::batch_norm2d(&map, &gc, &bc, &mc, &vc, 1e-5).expect("valid"))
    });
    g.bench_function("frozen_batch_norm2d", |b| {
        b.iter(|| {
            normalization::frozen_batch_norm2d(&map, &gc, &bc, &mc, &vc, 1e-5).expect("valid")
        })
    });
    g.finish();
}

fn bench_memory_ops(c: &mut Criterion) {
    let x = TensorRng::seed(3).normal(&[1, 8, 25, 64]); // GPT2-XL head layout
    let mut g = c.benchmark_group("memory");
    g.bench_function("permute_view_zero_copy", |b| {
        b.iter(|| memory::permute(&x, &[0, 2, 1, 3]).expect("valid"))
    });
    let p = memory::permute(&x, &[0, 2, 1, 3]).expect("valid");
    g.bench_function("contiguous_copy", |b| b.iter(|| memory::contiguous(&p)));
    let parts: Vec<Tensor> = (0..4)
        .map(|_| TensorRng::seed(4).normal(&[1, 64, 128]))
        .collect();
    g.bench_function("cat_dim1", |b| {
        b.iter(|| memory::cat(&parts, 1).expect("valid"))
    });
    g.bench_function("split", |b| {
        b.iter(|| memory::split(&x, 2, 1).expect("valid"))
    });
    g.finish();
}

fn bench_logit_and_reduction(c: &mut Criterion) {
    let x = TensorRng::seed(5).normal(&[25, 8, 8]); // GPT2-XL attention scores
    c.bench_function("softmax_attention", |b| {
        b.iter(|| logit::softmax(&x, 2).expect("valid"))
    });
    let logits = TensorRng::seed(6).normal(&[8, 1000]);
    c.bench_function("argmax_classifier", |b| {
        b.iter(|| reduction::argmax(&logits, 1).expect("valid"))
    });
    c.bench_function("topk5", |b| {
        b.iter(|| reduction::topk(&logits, 5).expect("valid"))
    });
}

fn bench_roi_and_interp(c: &mut Criterion) {
    let mut rng = TensorRng::seed(7);
    // NMS at a few box counts (the paper's MaskRCNN instance is 4663 boxes)
    let mut g = c.benchmark_group("nms");
    for n in [64usize, 256, 1024] {
        let xy = rng.uniform(&[n, 2], 0.0, 100.0).to_vec_f32().expect("f32");
        let wh = rng.uniform(&[n, 2], 2.0, 20.0).to_vec_f32().expect("f32");
        let mut v = Vec::with_capacity(n * 4);
        for i in 0..n {
            v.extend_from_slice(&[
                xy[i * 2],
                xy[i * 2 + 1],
                xy[i * 2] + wh[i * 2],
                xy[i * 2 + 1] + wh[i * 2 + 1],
            ]);
        }
        let boxes = Tensor::from_vec(v, &[n, 4]).expect("length");
        let scores = rng.uniform(&[n], 0.0, 1.0);
        g.bench_function(format!("boxes_{n}"), |b| {
            b.iter(|| roi::nms(&boxes, &scores, 0.5).expect("valid"))
        });
    }
    g.finish();

    let feat = rng.normal(&[16, 50, 68]);
    let rois = rng.uniform(&[32, 4], 0.0, 40.0);
    c.bench_function("roi_align", |b| {
        b.iter(|| roi::roi_align(&feat, &rois, 7, 1.0).expect("valid"))
    });
    let map = rng.normal(&[1, 16, 64, 64]);
    c.bench_function("interpolate_bilinear_2x", |b| {
        b.iter(|| interpolate::interpolate_bilinear(&map, 128, 128).expect("valid"))
    });
    c.bench_function("max_pool2d", |b| {
        b.iter(|| pooling::max_pool2d(&map, 3, 2, 1).expect("valid"))
    });
}

fn bench_arith_and_embedding(c: &mut Criterion) {
    let mut rng = TensorRng::seed(8);
    let a = rng.normal(&[1, 10, 11008]); // Llama's gated-MLP shape
    let b2 = rng.normal(&[1, 10, 11008]);
    c.bench_function("mul_gated_mlp", |b| {
        b.iter(|| arithmetic::mul(&a, &b2).expect("valid"))
    });
    let bias = rng.normal(&[11008]);
    c.bench_function("add_broadcast_bias", |b| {
        b.iter(|| arithmetic::add(&a, &bias).expect("valid"))
    });
    let table = rng.normal(&[5000, 256]);
    let ids = rng.uniform_i64(&[1, 128], 0, 5000);
    c.bench_function("embedding_lookup", |b| {
        b.iter(|| embedding::embedding(&table, &ids).expect("valid"))
    });
}

criterion_group!(
    benches,
    bench_activations,
    bench_normalization,
    bench_memory_ops,
    bench_logit_and_reduction,
    bench_roi_and_interp,
    bench_arith_and_embedding
);
criterion_main!(benches);
